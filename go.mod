module nimbus

go 1.22
