// Quickstart: the smallest end-to-end Nimbus marketplace.
//
// A seller lists a dataset, the broker trains the optimal linear-regression
// instance and prices noisy versions of it, and a buyer purchases the most
// accurate version their budget affords.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nimbus"
)

func main() {
	// The seller's product: a synthetic regression dataset, split 75/25.
	data := nimbus.Simulated1(nimbus.GenConfig{Rows: 5000, Seed: 1})
	pair, err := nimbus.NewPair(data, nimbus.NewRand(2))
	if err != nil {
		log.Fatal(err)
	}

	// Market research: buyers value accurate models more, demand is flat.
	seller, err := nimbus.NewSeller(pair, nimbus.Research{
		Value:  func(e float64) float64 { return 100 / (1 + e) },
		Demand: func(e float64) float64 { return 1 },
	})
	if err != nil {
		log.Fatal(err)
	}

	// The broker trains once, derives the price-error curve, and opens shop.
	broker := nimbus.NewBroker(3)
	offering, err := broker.List(nimbus.OfferingConfig{
		Seller: seller,
		Model:  nimbus.LinearRegression{Ridge: 1e-4},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("listed %s (expected revenue %.2f)\n\n", offering.Name, offering.ExpectedRevenue)

	curve, err := offering.Curve("squared")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("price-error menu (every 10th version):")
	pts := curve.Points()
	for i := 0; i < len(pts); i += 10 {
		fmt.Printf("  quality %6.2f  expected error %8.4f  price %7.2f\n", pts[i].X, pts[i].Error, pts[i].Price)
	}

	// A buyer with a mid-range budget buys the best version they can
	// afford: enough for an entry tier, not for the top one.
	budget := (pts[0].Price + pts[len(pts)-1].Price) / 2
	buyer, err := nimbus.NewBuyer("alice", budget)
	if err != nil {
		log.Fatal(err)
	}
	purchase, err := buyer.BuyBest(broker, offering.Name, "squared")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nalice paid %.2f for a model with expected error %.4f (NCP δ=%.4f)\n",
		purchase.Price, purchase.ExpectedError, purchase.NCP)
	fmt.Printf("received %d coefficients; remaining budget %.2f\n", len(purchase.Weights), buyer.Budget)

	// Evaluate what alice actually got on the test set.
	testErr := nimbus.SquaredLoss{}.Eval(purchase.Weights, pair.Test)
	fmt.Printf("realized test error of the delivered instance: %.4f\n", testErr)
}
