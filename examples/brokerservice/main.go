// Broker service: the Nimbus demo in one process.
//
// Starts the HTTP broker on a local port, then drives it with the Go
// client the way the SIGMOD demo walks its audience through the system:
// browse the menu, inspect a price-error curve, and buy through all three
// purchase options.
//
//	go run ./examples/brokerservice
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"nimbus"
)

func main() {
	// Seller side: one classification dataset listed on a fresh broker.
	data := nimbus.Simulated2(nimbus.GenConfig{Rows: 4000, Seed: 31})
	pair, err := nimbus.NewPair(data, nimbus.NewRand(32))
	if err != nil {
		log.Fatal(err)
	}
	seller, err := nimbus.NewSeller(pair, nimbus.Research{
		Value:  func(e float64) float64 { return 80 / (1 + 4*e) },
		Demand: func(e float64) float64 { return 1 },
	})
	if err != nil {
		log.Fatal(err)
	}
	broker := nimbus.NewBroker(33)
	if _, err := broker.List(nimbus.OfferingConfig{
		Seller:  seller,
		Model:   nimbus.LogisticRegression{Ridge: 1e-4},
		Samples: 150,
		Seed:    34,
	}); err != nil {
		log.Fatal(err)
	}

	// Serve the marketplace over HTTP (an in-process listener keeps the
	// example self-contained; `cmd/nimbusd` is the standalone daemon).
	srv := httptest.NewServer(nimbus.NewServer(broker))
	defer srv.Close()
	fmt.Printf("nimbus broker serving on %s\n\n", srv.URL)

	ctx := context.Background()
	client := nimbus.NewClient(srv.URL)

	// 1. Browse the menu.
	menu, err := client.Menu(ctx)
	if err != nil {
		log.Fatal(err)
	}
	offering := menu.Offerings[0]
	fmt.Printf("menu: %s (model %s, losses %v, %d train rows)\n",
		offering.Name, offering.Model, offering.Losses, offering.TrainRows)

	// 2. Inspect the zero-one price-error curve.
	curve, err := client.Curve(ctx, offering.Name, "zero-one")
	if err != nil {
		log.Fatal(err)
	}
	first, last := curve.Points[0], curve.Points[len(curve.Points)-1]
	fmt.Printf("curve: error %.4f @ %.2f ... error %.4f @ %.2f\n",
		first.Error, first.Price, last.Error, last.Price)

	// 3. Buy through each of the paper's three options.
	for _, req := range []nimbus.BuyRequest{
		{Offering: offering.Name, Loss: "zero-one", Option: "quality", Value: 10},
		{Offering: offering.Name, Loss: "zero-one", Option: "error-budget", Value: first.Error * 0.7},
		{Offering: offering.Name, Loss: "zero-one", Option: "price-budget", Value: last.Price},
	} {
		p, err := client.Buy(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bought via %-13s: price %7.2f, expected error %.4f, δ=%.4f\n",
			req.Option, p.Price, p.ExpectedError, p.NCP)
	}

	fmt.Printf("\nbroker ledger: %d sales, revenue %.2f\n", len(broker.Sales()), broker.TotalRevenue())
}
