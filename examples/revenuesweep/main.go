// Revenue sweep: a seller-side tool comparing pricing strategies.
//
// Before listing a dataset, a seller wants to know how much revenue the
// arbitrage-free dynamic program recovers compared with the naive
// strategies the paper evaluates (linear and constant pricing), across
// different assumptions about the buyer population.
//
//	go run ./examples/revenuesweep
package main

import (
	"fmt"
	"log"
	"math"

	"nimbus"
)

// scenario is one assumption about the buyer population: how valuations
// grow with quality x = 1/NCP ∈ [1, 100], and where the buyer mass sits.
type scenario struct {
	name   string
	value  func(x float64) float64
	demand func(x float64) float64
}

func main() {
	scenarios := []scenario{
		{
			name:   "enterprise (convex value, uniform demand)",
			value:  func(x float64) float64 { return x * x / 100 },
			demand: func(x float64) float64 { return 1 },
		},
		{
			name:   "commodity (concave value, uniform demand)",
			value:  func(x float64) float64 { return 100 * math.Sqrt(x/100) },
			demand: func(x float64) float64 { return 1 },
		},
		{
			name:   "mid-market (sigmoid value, centered demand)",
			value:  func(x float64) float64 { return 100 / (1 + math.Exp(-(x-50)/10)) },
			demand: func(x float64) float64 { d := (x - 50) / 15; return math.Exp(-d * d / 2) },
		},
		{
			name:  "barbell (linear value, demand at the extremes)",
			value: func(x float64) float64 { return x },
			demand: func(x float64) float64 {
				lo := (x - 5) / 10
				hi := (x - 95) / 10
				return math.Exp(-lo*lo/2) + math.Exp(-hi*hi/2)
			},
		},
	}

	const n = 100
	for _, sc := range scenarios {
		points := make([]nimbus.BuyerPoint, n)
		for i := 0; i < n; i++ {
			x := 1 + 99*float64(i)/float64(n-1)
			points[i] = nimbus.BuyerPoint{X: x, Value: sc.value(x), Mass: sc.demand(x)}
		}
		prob, err := nimbus.NewRevenueProblem(nimbus.Monotonize(points))
		if err != nil {
			log.Fatal(err)
		}

		mbp, mbpRev, err := nimbus.MaximizeRevenueDP(prob)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", sc.name)
		fmt.Printf("  %-6s %12s %14s\n", "method", "revenue", "affordability")
		fmt.Printf("  %-6s %12.2f %14.3f\n", "MBP", mbpRev, prob.Affordability(mbp.Price))

		baselines := map[string]func(*nimbus.RevenueProblem) (*nimbus.PriceFunction, error){
			"Lin": nimbus.Lin, "MaxC": nimbus.MaxC, "MedC": nimbus.MedC, "OptC": nimbus.OptC,
		}
		for _, name := range []string{"Lin", "MaxC", "MedC", "OptC"} {
			f, err := baselines[name](prob)
			if err != nil {
				log.Fatal(err)
			}
			rev := prob.Revenue(f.Price)
			gain := "∞"
			if rev > 0 {
				gain = fmt.Sprintf("%.1fx", mbpRev/rev)
			}
			fmt.Printf("  %-6s %12.2f %14.3f   (MBP gain %s)\n",
				name, rev, prob.Affordability(f.Price), gain)
		}
	}

	fmt.Println("\nMBP dominates in every scenario; the gap is largest when the value")
	fmt.Println("curve is convex or demand sits where flat prices cannot reach.")
}
