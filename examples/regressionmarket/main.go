// Regression market: tiered buyers on a protein-structure dataset.
//
// This is the scenario the paper's introduction motivates: a commercially
// valuable regression dataset (the CASP protein-structure stand-in, d = 9)
// is too expensive for small labs to buy outright. With model-based pricing
// the broker sells the SAME trained model at different accuracy tiers, so a
// hedge fund, a startup and a student all get a version matching their
// budget — and the seller collects revenue from all three instead of one.
//
//	go run ./examples/regressionmarket
package main

import (
	"fmt"
	"log"

	"nimbus"
)

func main() {
	data, err := nimbus.StandIn("CASP", nimbus.GenConfig{Rows: 8000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	pair, err := nimbus.NewPair(data, nimbus.NewRand(8))
	if err != nil {
		log.Fatal(err)
	}
	seller, err := nimbus.NewSeller(pair, nimbus.Research{
		// Value grows steeply as the error approaches the optimum: the
		// convex regime where MBP's gains over flat pricing are largest.
		Value:  func(e float64) float64 { return 200 / (1 + 0.05*e*e) },
		Demand: func(e float64) float64 { return 1 },
	})
	if err != nil {
		log.Fatal(err)
	}

	broker := nimbus.NewBroker(9)
	offering, err := broker.List(nimbus.OfferingConfig{
		Seller:  seller,
		Model:   nimbus.LinearRegression{Ridge: 1e-4},
		Samples: 300,
		Seed:    10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offering: %s\n", offering.Name)

	// Three buyer tiers whose budgets span the offered price range: the
	// hedge fund can afford the top version, the startup a mid tier, and
	// the student only the entry tier.
	curve, err := offering.Curve("squared")
	if err != nil {
		log.Fatal(err)
	}
	menu := curve.Points()
	lo, hi := menu[0].Price, menu[len(menu)-1].Price
	tiers := []struct {
		name   string
		budget float64
	}{
		{"hedge-fund", hi * 1.1},
		{"startup", lo + (hi-lo)/3},
		{"student", lo * 1.01},
	}
	fmt.Printf("\n%-12s %10s %10s %16s %16s\n", "buyer", "budget", "paid", "expected error", "realized error")
	for _, tier := range tiers {
		buyer, err := nimbus.NewBuyer(tier.name, tier.budget)
		if err != nil {
			log.Fatal(err)
		}
		p, err := buyer.BuyBest(broker, offering.Name, "squared")
		if err != nil {
			log.Fatal(err)
		}
		realized := nimbus.SquaredLoss{}.Eval(p.Weights, pair.Test)
		fmt.Printf("%-12s %10.2f %10.2f %16.4f %16.4f\n",
			tier.name, tier.budget, p.Price, p.ExpectedError, realized)
	}

	fmt.Printf("\nbroker revenue from tiered sales: %.2f\n", broker.TotalRevenue())
	fmt.Println("every tier received the same unbiased model, degraded only by calibrated noise.")

	// Show that a buyer can also shop by error budget: "I need test error
	// below twice the optimal" — the broker finds the cheapest such tier.
	optimalErr := nimbus.SquaredLoss{}.Eval(offering.Optimal, pair.Test)
	budgetBuyer, err := nimbus.NewBuyer("lab", 1e9)
	if err != nil {
		log.Fatal(err)
	}
	p, err := budgetBuyer.BuyWithErrorBudget(broker, offering.Name, "squared", 2*optimalErr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nerror-budget purchase (≤ %.4f): paid %.2f for expected error %.4f\n",
		2*optimalErr, p.Price, p.ExpectedError)
}
