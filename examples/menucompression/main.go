// Menu compression: how many versions does a storefront actually need?
//
// The broker's internal price grid has 100 versions, but a real product
// page shows three to five. CompressMenu picks which versions to offer and
// reprices them against rolled-up demand — buyers whose preferred accuracy
// is not offered upgrade to the next version they can afford.
//
//	go run ./examples/menucompression
package main

import (
	"fmt"
	"log"
	"math"

	"nimbus"
)

func main() {
	// A sigmoid market over the standard 100-point quality grid.
	const n = 60
	points := make([]nimbus.BuyerPoint, n)
	for i := 0; i < n; i++ {
		x := 1 + 99*float64(i)/(n-1)
		points[i] = nimbus.BuyerPoint{
			X:     x,
			Value: 100 / (1 + math.Exp(-(x-50)/12)),
			Mass:  1.0 / n,
		}
	}
	prob, err := nimbus.NewRevenueProblem(points)
	if err != nil {
		log.Fatal(err)
	}
	_, full, err := nimbus.MaximizeRevenueDP(prob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full %d-version grid: revenue %.2f\n\n", n, full)

	fmt.Printf("%4s %14s %10s   menu\n", "k", "menu revenue", "retention")
	for _, k := range []int{1, 2, 3, 5, 8} {
		c, err := nimbus.CompressMenu(prob, k)
		if err != nil {
			log.Fatal(err)
		}
		menu := ""
		for _, p := range c.Func.Points() {
			menu += fmt.Sprintf(" %.0f@%.1f", p.X, p.Price)
		}
		fmt.Printf("%4d %14.2f %9.1f%%  %s\n", k, c.RolledUpRevenue, 100*c.Retention(), menu)
	}

	fmt.Println("\na handful of versions captures nearly the whole market — the")
	fmt.Println("versioning insight the paper borrows from information-goods pricing.")
}
