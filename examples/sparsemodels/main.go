// Sparse and nonlinear models in the marketplace.
//
// The paper's framework prices any model whose hypothesis space is R^d.
// This example shows two ways to stretch that beyond plain linear models
// while keeping every guarantee intact:
//
//  1. polynomial feature expansion — sell a nonlinear (quadratic) model by
//     expanding features first; the hypothesis space is still a vector;
//  2. lasso (elastic-net) fits — sell a sparse model that only reveals a
//     handful of nonzero weights per purchase.
//
// go run ./examples/sparsemodels
package main

import (
	"fmt"
	"log"

	"nimbus"
)

func main() {
	src := nimbus.NewRand(71)

	// Ground truth: y depends quadratically on x0 and linearly on x3 only.
	const n, d = 2000, 8
	m := nimbus.NewMatrix(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = src.Normal(0, 1)
		}
		y[i] = 2*row[0]*row[0] - 3*row[3] + src.Normal(0, 0.05)
	}
	data, err := nimbus.NewDataset("telemetry", nimbus.Regression, m, y)
	if err != nil {
		log.Fatal(err)
	}

	// Plain linear regression cannot express x0².
	pair, err := nimbus.NewPair(data, nimbus.NewRand(72))
	if err != nil {
		log.Fatal(err)
	}
	wLin, err := nimbus.LinearRegression{Ridge: 1e-6}.Fit(pair.Train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw linear model test error:      %8.4f\n",
		nimbus.SquaredLoss{}.Eval(wLin, pair.Test))

	// Degree-2 expansion makes the quadratic term learnable...
	expTrain, err := nimbus.PolynomialFeatures(pair.Train, 2)
	if err != nil {
		log.Fatal(err)
	}
	expTest, err := nimbus.PolynomialFeatures(pair.Test, 2)
	if err != nil {
		log.Fatal(err)
	}
	wPoly, err := nimbus.LinearRegression{Ridge: 1e-6}.Fit(expTrain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degree-2 expanded model error:    %8.4f (%d features)\n",
		nimbus.SquaredLoss{}.Eval(wPoly, expTest), expTrain.D())

	// ...and the lasso finds the 3-term structure in the expansion.
	lasso := nimbus.Lasso{Alpha: 0.02, Ridge: 1e-8}
	wSparse, err := lasso.Fit(expTrain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lasso on expansion:               %8.4f (sparsity %.0f%%)\n",
		nimbus.SquaredLoss{}.Eval(wSparse, expTest), 100*nimbus.Sparsity(wSparse))
	fmt.Println("\nsurviving terms:")
	for j, w := range wSparse {
		if w != 0 && (w > 0.05 || w < -0.05) {
			fmt.Printf("  %-8s %+.3f\n", expTrain.Columns[j], w)
		}
	}

	// The sparse quadratic model sells exactly like any other: list the
	// expanded dataset and the market machinery is unchanged.
	expData, err := nimbus.PolynomialFeatures(data, 2)
	if err != nil {
		log.Fatal(err)
	}
	expPair, err := nimbus.NewPair(expData, nimbus.NewRand(73))
	if err != nil {
		log.Fatal(err)
	}
	seller, err := nimbus.NewSeller(expPair, nimbus.Research{
		Value:  func(e float64) float64 { return 60 / (1 + e) },
		Demand: func(e float64) float64 { return 1 },
	})
	if err != nil {
		log.Fatal(err)
	}
	broker := nimbus.NewBroker(74)
	offering, err := broker.List(nimbus.OfferingConfig{
		Seller:  seller,
		Model:   nimbus.LinearRegression{Ridge: 1e-6},
		Samples: 100,
		Seed:    75,
	})
	if err != nil {
		log.Fatal(err)
	}
	p, err := broker.BuyWithPriceBudget(offering.Name, "squared", 1e9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlisted %s: best version sells for %.2f with expected error %.4f\n",
		offering.Name, p.Price, p.ExpectedError)
}
