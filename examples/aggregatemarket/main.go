// Aggregate market: pricing a SQL-style statistic (Example 1 of the paper).
//
// Not every buyer wants a model — some just want an aggregate, like the
// average value of a column. Nimbus prices those with the same
// arbitrage-free machinery: the "model" is a single number, the mechanisms
// are Example 1's additive and multiplicative uniform noise, and the error
// law is known in closed form (no Monte Carlo needed).
//
//	go run ./examples/aggregatemarket
package main

import (
	"fmt"
	"log"

	"nimbus"
)

func main() {
	// A relation whose column 0 is daily revenue per store, around $120k.
	src := nimbus.NewRand(52)
	const rows = 5000
	features := make([]float64, rows)
	targets := make([]float64, rows)
	for i := range features {
		features[i] = src.Normal(120, 15)
	}
	m := nimbus.NewMatrix(rows, 1)
	copy(m.Data, features)
	data, err := nimbus.NewDataset("store-revenue", nimbus.Regression, m, targets)
	if err != nil {
		log.Fatal(err)
	}

	for _, mech := range []nimbus.AggregateMechanism{nimbus.AggAdditive, nimbus.AggMultiplicative} {
		o, err := nimbus.NewAggregateOffering(nimbus.AggregateConfig{
			Data:      data,
			Column:    0,
			Mechanism: mech,
			Value:     func(e float64) float64 { return 20 / (1 + e) },
			Demand:    func(e float64) float64 { return 1 },
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mechanism %s: true average %.4f\n", mech, o.TrueAverage)

		// Three versions of "the average", at three prices.
		for _, x := range []float64{1, 10, 100} {
			got, price, err := o.Sell(x, src)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  quality %6.1f (δ=%.3f): sold %8.4f for %6.2f (expected sq. error %.6f)\n",
				x, 1/x, got, price, o.Curve.ErrorAt(x))
		}
		fmt.Println()
	}

	fmt.Println("both mechanisms are unbiased; subadditive prices make averaging")
	fmt.Println("many cheap noisy copies at least as expensive as one good copy.")
}
