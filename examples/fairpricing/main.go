// Fair pricing: trading revenue for affordability.
//
// Pure revenue maximization can price most of the market out — the paper's
// Section 6.3 observes exactly this tension and leaves the trade-off to
// future work. This example traces the revenue/affordability frontier: the
// seller picks a minimum fraction of buyers who must be able to afford
// their version, and the optimizer finds the best arbitrage-free prices
// under that constraint.
//
//	go run ./examples/fairpricing
package main

import (
	"fmt"
	"log"

	"nimbus"
)

func main() {
	// An "enterprise" market: valuations grow convexly with quality, so an
	// unconstrained optimizer focuses on the high end and abandons small
	// buyers.
	const n = 60
	points := make([]nimbus.BuyerPoint, n)
	for i := 0; i < n; i++ {
		x := 1 + 99*float64(i)/(n-1)
		points[i] = nimbus.BuyerPoint{X: x, Value: x * x / 100, Mass: 1.0 / n}
	}
	prob, err := nimbus.NewRevenueProblem(points)
	if err != nil {
		log.Fatal(err)
	}

	_, unconstrained, err := nimbus.MaximizeRevenueDP(prob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unconstrained revenue: %.2f (affordability is whatever it is)\n\n", unconstrained)

	fmt.Printf("%12s %12s %14s\n", "min afford.", "revenue", "achieved aff.")
	frontier, err := nimbus.AffordabilityFrontier(prob, 6)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range frontier {
		alpha := float64(i) / float64(len(frontier)-1)
		fmt.Printf("%12.2f %12.2f %14.3f\n", alpha, r.Revenue, r.Affordability)
	}

	// A concrete guarantee: at least 90% of buyers must afford a version.
	fair, err := nimbus.MaximizeRevenueWithAffordability(prob, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith a 90%% affordability floor: revenue %.2f (%.1f%% of unconstrained), affordability %.3f\n",
		fair.Revenue, 100*fair.Revenue/unconstrained, fair.Affordability)
	fmt.Println("the constrained prices remain arbitrage-free:", fair.Func.Validate() == nil)
}
