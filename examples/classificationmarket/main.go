// Classification market: pricing a classifier by misclassification rate.
//
// The buyer of a classifier cares about the 0/1 error, not the logistic
// loss it was trained with. Nimbus supports exactly this split (λ vs ε in
// the paper): the broker trains logistic regression on the SUSY stand-in
// but quotes and sells against the zero-one error curve.
//
//	go run ./examples/classificationmarket
package main

import (
	"fmt"
	"log"

	"nimbus"
)

func main() {
	data, err := nimbus.StandIn("SUSY", nimbus.GenConfig{Rows: 6000, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	pair, err := nimbus.NewPair(data, nimbus.NewRand(22))
	if err != nil {
		log.Fatal(err)
	}
	seller, err := nimbus.NewSeller(pair, nimbus.Research{
		Value:  func(e float64) float64 { return 120 * (1 - e) }, // worth more as accuracy rises
		Demand: func(e float64) float64 { return 1 },
	})
	if err != nil {
		log.Fatal(err)
	}

	broker := nimbus.NewBroker(23)
	offering, err := broker.List(nimbus.OfferingConfig{
		Seller:  seller,
		Model:   nimbus.LogisticRegression{Ridge: 1e-4},
		Samples: 200,
		Seed:    24,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The same offering quotes two different error functions.
	fmt.Printf("offering %s supports losses: %v\n\n", offering.Name, offering.LossNames())
	for _, lossName := range offering.LossNames() {
		curve, err := offering.Curve(lossName)
		if err != nil {
			log.Fatal(err)
		}
		pts := curve.Points()
		fmt.Printf("%s curve: error %.4f at cheapest tier → %.4f at best tier\n",
			lossName, pts[0].Error, pts[len(pts)-1].Error)
	}

	// Buy by accuracy target: "I need at most 25% misclassification."
	p, err := broker.BuyWithErrorBudget(offering.Name, "zero-one", 0.25)
	if err != nil {
		log.Fatal(err)
	}
	realized := nimbus.ZeroOneLoss{}.Eval(p.Weights, pair.Test)
	fmt.Printf("\nbought ≤25%% error tier: paid %.2f, expected %.4f, realized %.4f\n",
		p.Price, p.ExpectedError, realized)

	// A cheaper, noisier tier for a hobbyist: quality 2 (δ = 0.5).
	cheap, err := broker.BuyAtQuality(offering.Name, "zero-one", 2)
	if err != nil {
		log.Fatal(err)
	}
	cheapRealized := nimbus.ZeroOneLoss{}.Eval(cheap.Weights, pair.Test)
	fmt.Printf("budget tier (quality 2): paid %.2f, expected %.4f, realized %.4f\n",
		cheap.Price, cheap.ExpectedError, cheapRealized)

	fmt.Printf("\nprice gap between tiers: %.2f — accuracy is what you pay for.\n", p.Price-cheap.Price)
}
