// The -perf mode surfaces internal/perf, the benchmark-orchestration
// subsystem behind the BENCH_<n>.json trajectory:
//
//	nimbus-bench -perf run -bench 6 -out BENCH_6.json   # record a point
//	nimbus-bench -perf run -short -out smoke.json       # CI smoke shape
//	nimbus-bench -perf compare old.json new.json        # gate on regressions
//	nimbus-bench -perf validate smoke.json              # schema check only
//	nimbus-bench -perf micro                            # kernel sweep only, JSON
//
// run re-execs itself as `-perf micro` for the kernel sweep, so kernels
// are always timed in a pristine child process rather than after the
// load phases have fragmented the allocator.
//
// compare exits 0 when every metric is within the noise threshold (or
// improved), 1 when any metric regressed, and 2 on usage or I/O errors —
// so a CI step can gate on the exit code alone.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"time"

	"nimbus/internal/perf"
)

// perfMain dispatches the -perf subcommands and returns the process exit
// code.
func perfMain(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: nimbus-bench -perf <run|compare|validate> [flags]")
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	switch cmd, rest := args[0], args[1:]; cmd {
	case "run":
		return perfRun(ctx, rest, stdout, stderr)
	case "micro":
		return perfMicro(rest, stdout, stderr)
	case "compare":
		return perfCompare(rest, stdout, stderr)
	case "validate":
		return perfValidate(rest, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "nimbus-bench -perf: unknown subcommand %q (want run, micro, compare or validate)\n", cmd)
		return 2
	}
}

// perfRun records one trajectory point.
func perfRun(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nimbus-bench -perf run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out      = fs.String("out", "", "write the report to this file (default stdout)")
		benchNum = fs.Int("bench", 0, "trajectory point number stamped on the report (the n in BENCH_<n>.json)")
		short    = fs.Bool("short", false, "smoke shape: small market, exact request count, millisecond benchtimes — proves the pipeline, not the hardware")
		c        = fs.Int("c", 8, "concurrent buyers for the load phase")
		duration = fs.Duration("duration", 5*time.Second, "load phase length (ignored when -n is set)")
		count    = fs.Int("n", 0, "exact load request count (0 = run for -duration)")
		seed     = fs.Int64("seed", 42, "seed for the market build and the replayable traffic mix")
		offers   = fs.Int("offerings", 1, "offerings listed by the load harness (more offerings spread purchases across broker shards)")
		markets  = fs.Int("markets", 0, "when > 1, also record a multi_load point: the same load profile spread across this many registry tenant markets")
		jsync    = fs.String("journal-sync", "group", "harness journal fsync policy: always, group, interval or never")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "nimbus-bench -perf run: unexpected arguments %v\n", fs.Args())
		return 2
	}
	opts := perf.RunOptions{
		Load: perf.LoadOptions{
			Concurrency: *c,
			Duration:    *duration,
			Count:       *count,
			Seed:        *seed,
			Offerings:   *offers,
			Sync:        *jsync,
			Logf: func(format string, a ...any) {
				fmt.Fprintf(stderr, format+"\n", a...)
			},
		},
		Markets:     *markets,
		Bench:       *benchNum,
		GeneratedBy: "nimbus-bench -perf run",
	}
	if *short {
		opts.Load.Rows, opts.Load.Grid, opts.Load.Samples = 150, 10, 30
		if *count == 0 {
			opts.Load.Count, opts.Load.Duration = 60, 0
		}
		opts.Micro.BenchTime = 5 * time.Millisecond
	}
	opts.MicroRunner = func(mo perf.MicroOptions) ([]perf.MicroResult, error) {
		return microInChild(ctx, mo, stderr)
	}
	rep, err := perf.Run(ctx, opts)
	if err != nil {
		fmt.Fprintln(stderr, "nimbus-bench -perf run:", err)
		return 2
	}
	if *out == "" {
		data, err := reportJSON(rep)
		if err != nil {
			fmt.Fprintln(stderr, "nimbus-bench -perf run:", err)
			return 2
		}
		fmt.Fprint(stdout, data)
		return 0
	}
	if err := rep.WriteFile(*out); err != nil {
		fmt.Fprintln(stderr, "nimbus-bench -perf run:", err)
		return 2
	}
	fmt.Fprintf(stderr, "perf: wrote %s (%d load requests, %d kernels)\n", *out, rep.Load.Requests, len(rep.Micro))
	return 0
}

// perfMicro runs the kernel sweep alone and emits the results as a JSON
// array. It is what `-perf run` re-execs so that kernels are timed in a
// pristine process: a sweep run in-process after the load phases measures
// the allocator state the load passes left behind — span fragmentation
// alone inflates the alloc-heavy kernels past the compare gate's noise
// band on a small box.
func perfMicro(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nimbus-bench -perf micro", flag.ContinueOnError)
	fs.SetOutput(stderr)
	benchTime := fs.Duration("benchtime", 0, "per-kernel measurement time (0 = the testing package default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "nimbus-bench -perf micro: unexpected arguments %v\n", fs.Args())
		return 2
	}
	micro, err := perf.RunMicro(perf.MicroOptions{BenchTime: *benchTime})
	if err != nil {
		fmt.Fprintln(stderr, "nimbus-bench -perf micro:", err)
		return 2
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(micro); err != nil {
		fmt.Fprintln(stderr, "nimbus-bench -perf micro:", err)
		return 2
	}
	return 0
}

// microInChild re-execs this binary as `-perf micro` and decodes its
// stdout, giving the kernel sweep the same fresh-process conditions as a
// standalone `go test -bench` run. Falls back to the in-process sweep
// when the executable path is unavailable.
func microInChild(ctx context.Context, mo perf.MicroOptions, stderr io.Writer) ([]perf.MicroResult, error) {
	if flag.Lookup("test.v") != nil {
		// Under `go test` the current executable is the test binary,
		// which does not speak `-perf micro`; measure in-process.
		return perf.RunMicro(mo)
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "perf: cannot re-exec for kernel sweep (%v); measuring in-process\n", err)
		return perf.RunMicro(mo)
	}
	args := []string{"-perf", "micro"}
	if mo.BenchTime > 0 {
		args = append(args, "-benchtime", mo.BenchTime.String())
	}
	cmd := exec.CommandContext(ctx, exe, args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("kernel-sweep child process: %w", err)
	}
	var micro []perf.MicroResult
	if err := json.Unmarshal(out.Bytes(), &micro); err != nil {
		return nil, fmt.Errorf("decoding kernel-sweep child output: %w", err)
	}
	return micro, nil
}

// reportJSON renders a report exactly as WriteFile would, for stdout.
func reportJSON(rep *perf.Report) (string, error) {
	tmp, err := os.CreateTemp("", "nimbus-perf-*.json")
	if err != nil {
		return "", err
	}
	path := tmp.Name()
	defer func() {
		//lint:ignore no-dropped-error scratch file under the OS temp dir; nothing to do about a failed remove
		os.Remove(path)
	}()
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := rep.WriteFile(path); err != nil {
		return "", err
	}
	data, err := os.ReadFile(path)
	return string(data), err
}

// perfCompare diffs two reports and gates on regressions.
func perfCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nimbus-bench -perf compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threshold     = fs.Float64("threshold", perf.DefaultThreshold, "relative noise band for kernel metrics (ns/op, allocs/op)")
		loadThreshold = fs.Float64("load-threshold", perf.DefaultLoadThreshold, "relative noise band for load metrics (qps, latency percentiles)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: nimbus-bench -perf compare [flags] <old.json> <new.json>")
		return 2
	}
	oldR, err := perf.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "nimbus-bench -perf compare:", err)
		return 2
	}
	newR, err := perf.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "nimbus-bench -perf compare:", err)
		return 2
	}
	c := perf.Compare(oldR, newR, perf.CompareOptions{
		Threshold:     *threshold,
		LoadThreshold: *loadThreshold,
	})
	c.WriteText(stdout)
	if c.HasRegression() {
		return 1
	}
	return 0
}

// perfValidate runs the schema gate over report files.
func perfValidate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nimbus-bench -perf validate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: nimbus-bench -perf validate <report.json>...")
		return 2
	}
	code := 0
	for _, path := range fs.Args() {
		rep, err := perf.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "nimbus-bench -perf validate:", err)
			code = 2
			continue
		}
		fmt.Fprintf(stdout, "%s: valid (schema v%d", path, rep.SchemaVersion)
		if rep.Load != nil {
			fmt.Fprintf(stdout, ", %d load requests", rep.Load.Requests)
		}
		fmt.Fprintf(stdout, ", %d kernels)\n", len(rep.Micro))
	}
	return code
}
