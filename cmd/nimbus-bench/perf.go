// The -perf mode surfaces internal/perf, the benchmark-orchestration
// subsystem behind the BENCH_<n>.json trajectory:
//
//	nimbus-bench -perf run -bench 6 -out BENCH_6.json   # record a point
//	nimbus-bench -perf run -short -out smoke.json       # CI smoke shape
//	nimbus-bench -perf compare old.json new.json        # gate on regressions
//	nimbus-bench -perf validate smoke.json              # schema check only
//
// compare exits 0 when every metric is within the noise threshold (or
// improved), 1 when any metric regressed, and 2 on usage or I/O errors —
// so a CI step can gate on the exit code alone.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"nimbus/internal/perf"
)

// perfMain dispatches the -perf subcommands and returns the process exit
// code.
func perfMain(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: nimbus-bench -perf <run|compare|validate> [flags]")
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	switch cmd, rest := args[0], args[1:]; cmd {
	case "run":
		return perfRun(ctx, rest, stdout, stderr)
	case "compare":
		return perfCompare(rest, stdout, stderr)
	case "validate":
		return perfValidate(rest, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "nimbus-bench -perf: unknown subcommand %q (want run, compare or validate)\n", cmd)
		return 2
	}
}

// perfRun records one trajectory point.
func perfRun(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nimbus-bench -perf run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out      = fs.String("out", "", "write the report to this file (default stdout)")
		benchNum = fs.Int("bench", 0, "trajectory point number stamped on the report (the n in BENCH_<n>.json)")
		short    = fs.Bool("short", false, "smoke shape: small market, exact request count, millisecond benchtimes — proves the pipeline, not the hardware")
		c        = fs.Int("c", 8, "concurrent buyers for the load phase")
		duration = fs.Duration("duration", 5*time.Second, "load phase length (ignored when -n is set)")
		count    = fs.Int("n", 0, "exact load request count (0 = run for -duration)")
		seed     = fs.Int64("seed", 42, "seed for the market build and the replayable traffic mix")
		offers   = fs.Int("offerings", 1, "offerings listed by the load harness (more offerings spread purchases across broker shards)")
		jsync    = fs.String("journal-sync", "group", "harness journal fsync policy: always, group, interval or never")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "nimbus-bench -perf run: unexpected arguments %v\n", fs.Args())
		return 2
	}
	opts := perf.RunOptions{
		Load: perf.LoadOptions{
			Concurrency: *c,
			Duration:    *duration,
			Count:       *count,
			Seed:        *seed,
			Offerings:   *offers,
			Sync:        *jsync,
			Logf: func(format string, a ...any) {
				fmt.Fprintf(stderr, format+"\n", a...)
			},
		},
		Bench:       *benchNum,
		GeneratedBy: "nimbus-bench -perf run",
	}
	if *short {
		opts.Load.Rows, opts.Load.Grid, opts.Load.Samples = 150, 10, 30
		if *count == 0 {
			opts.Load.Count, opts.Load.Duration = 60, 0
		}
		opts.Micro.BenchTime = 5 * time.Millisecond
	}
	rep, err := perf.Run(ctx, opts)
	if err != nil {
		fmt.Fprintln(stderr, "nimbus-bench -perf run:", err)
		return 2
	}
	if *out == "" {
		data, err := reportJSON(rep)
		if err != nil {
			fmt.Fprintln(stderr, "nimbus-bench -perf run:", err)
			return 2
		}
		fmt.Fprint(stdout, data)
		return 0
	}
	if err := rep.WriteFile(*out); err != nil {
		fmt.Fprintln(stderr, "nimbus-bench -perf run:", err)
		return 2
	}
	fmt.Fprintf(stderr, "perf: wrote %s (%d load requests, %d kernels)\n", *out, rep.Load.Requests, len(rep.Micro))
	return 0
}

// reportJSON renders a report exactly as WriteFile would, for stdout.
func reportJSON(rep *perf.Report) (string, error) {
	tmp, err := os.CreateTemp("", "nimbus-perf-*.json")
	if err != nil {
		return "", err
	}
	path := tmp.Name()
	defer func() {
		//lint:ignore no-dropped-error scratch file under the OS temp dir; nothing to do about a failed remove
		os.Remove(path)
	}()
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := rep.WriteFile(path); err != nil {
		return "", err
	}
	data, err := os.ReadFile(path)
	return string(data), err
}

// perfCompare diffs two reports and gates on regressions.
func perfCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nimbus-bench -perf compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threshold     = fs.Float64("threshold", perf.DefaultThreshold, "relative noise band for kernel metrics (ns/op, allocs/op)")
		loadThreshold = fs.Float64("load-threshold", perf.DefaultLoadThreshold, "relative noise band for load metrics (qps, latency percentiles)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: nimbus-bench -perf compare [flags] <old.json> <new.json>")
		return 2
	}
	oldR, err := perf.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "nimbus-bench -perf compare:", err)
		return 2
	}
	newR, err := perf.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "nimbus-bench -perf compare:", err)
		return 2
	}
	c := perf.Compare(oldR, newR, perf.CompareOptions{
		Threshold:     *threshold,
		LoadThreshold: *loadThreshold,
	})
	c.WriteText(stdout)
	if c.HasRegression() {
		return 1
	}
	return 0
}

// perfValidate runs the schema gate over report files.
func perfValidate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nimbus-bench -perf validate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: nimbus-bench -perf validate <report.json>...")
		return 2
	}
	code := 0
	for _, path := range fs.Args() {
		rep, err := perf.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "nimbus-bench -perf validate:", err)
			code = 2
			continue
		}
		fmt.Fprintf(stdout, "%s: valid (schema v%d", path, rep.SchemaVersion)
		if rep.Load != nil {
			fmt.Fprintf(stdout, ", %d load requests", rep.Load.Requests)
		}
		fmt.Fprintf(stdout, ", %d kernels)\n", len(rep.Micro))
	}
	return code
}
