// Command nimbus-bench regenerates the paper's tables and figures as text
// series (see DESIGN.md's per-experiment index).
//
// Usage:
//
//	nimbus-bench -exp table3
//	nimbus-bench -exp fig6 -scale 0.001 -samples 500
//	nimbus-bench -exp fig9
//	nimbus-bench -exp all
//
// The -perf mode (see perf.go) records and compares schema-versioned
// performance trajectory points instead:
//
//	nimbus-bench -perf run -bench 6 -out BENCH_6.json
//	nimbus-bench -perf compare BENCH_5.json BENCH_6.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nimbus/internal/experiments"
	"nimbus/internal/opt"
)

func main() {
	// The -perf mode has subcommands with their own flag sets, so it is
	// dispatched before the experiment flags are parsed.
	if len(os.Args) > 1 && (os.Args[1] == "-perf" || os.Args[1] == "--perf") {
		os.Exit(perfMain(os.Args[2:], os.Stdout, os.Stderr))
	}
	var (
		exp     = flag.String("exp", "all", "experiment: table3, fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13, fig14, relaxation, errorinverse, trainers, population, frontier, attack, mechanisms, abtest, all")
		scale   = flag.Float64("scale", 1e-3, "Table 3 row-count scale (1.0 = paper size)")
		samples = flag.Int("samples", 200, "Monte-Carlo models per NCP for fig6")
		gridN   = flag.Int("grid", 20, "1/NCP grid points for fig6")
		points  = flag.Int("points", 100, "price points for fig7/8/11/12")
		seed    = flag.Int64("seed", 42, "random seed")
		format  = flag.String("format", "text", "output format for the table/figure experiments: text, csv or plot")
	)
	flag.Parse()
	if err := runFmt(os.Stdout, *exp, *scale, *samples, *gridN, *points, *seed, *format); err != nil {
		fmt.Fprintln(os.Stderr, "nimbus-bench:", err)
		os.Exit(1)
	}
}

// run keeps the text-format behaviour for the test-suite and the default
// CLI path.
func run(w io.Writer, exp string, scale float64, samples, gridN, points int, seed int64) error {
	return runFmt(w, exp, scale, samples, gridN, points, seed, "text")
}

func runFmt(w io.Writer, exp string, scale float64, samples, gridN, points int, seed int64, format string) error {
	csvOut, plotOut := false, false
	switch format {
	case "text", "":
	case "csv":
		csvOut = true
	case "plot":
		// Terminal charts; supported for the figure experiments, with a
		// text fallback elsewhere.
		plotOut = true
	default:
		return fmt.Errorf("unknown format %q (want text, csv or plot)", format)
	}
	runtimeNs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	runOne := func(name string) error {
		switch name {
		case "table3":
			stats, err := experiments.RunTable3(scale, seed)
			if err != nil {
				return err
			}
			if csvOut {
				return experiments.WriteTable3CSV(w, stats)
			}
			return experiments.WriteTable3(w, stats)
		case "fig5":
			results, err := experiments.RunFig5()
			if err != nil {
				return err
			}
			if csvOut {
				return experiments.WriteFig5CSV(w, results)
			}
			return experiments.WriteFig5(w, results)
		case "fig6":
			series, err := experiments.RunFig6(experiments.Fig6Config{
				Scale: scale, GridN: gridN, Samples: samples, Seed: seed,
			})
			if err != nil {
				return err
			}
			if csvOut {
				return experiments.WriteFig6CSV(w, series)
			}
			if plotOut {
				return experiments.PlotFig6(w, series)
			}
			return experiments.WriteFig6(w, series)
		case "fig7":
			demand, err := experiments.DemandCurve("uniform")
			if err != nil {
				return err
			}
			panels, err := experiments.RunRevenueGain(experiments.ValueCurves(), []experiments.CurveSpec{demand}, points)
			if err != nil {
				return err
			}
			if csvOut {
				return experiments.WriteRevenuePanelsCSV(w, panels)
			}
			if plotOut {
				return experiments.PlotPriceCurves(w, panels)
			}
			return experiments.WriteRevenuePanels(w, "Figure 7: Revenue and Affordability Gain (fixed demand, varying value curve)", panels)
		case "fig8":
			value, err := experiments.ValueCurve("sigmoid")
			if err != nil {
				return err
			}
			panels, err := experiments.RunRevenueGain([]experiments.CurveSpec{value}, experiments.DemandCurves(), points)
			if err != nil {
				return err
			}
			if csvOut {
				return experiments.WriteRevenuePanelsCSV(w, panels)
			}
			if plotOut {
				return experiments.PlotPriceCurves(w, panels)
			}
			return experiments.WriteRevenuePanels(w, "Figure 8: Revenue and Affordability Gain (fixed value, varying demand curve)", panels)
		case "fig11":
			panels, err := experiments.RunRevenueGain(experiments.ValueCurves(), experiments.DemandCurves(), points)
			if err != nil {
				return err
			}
			if csvOut {
				return experiments.WriteRevenuePanelsCSV(w, panels)
			}
			if plotOut {
				return experiments.PlotPriceCurves(w, panels)
			}
			return experiments.WriteRevenuePanels(w, "Figure 11 (appendix): all value/demand panels", panels)
		case "fig12":
			value, err := experiments.ValueCurve("concave")
			if err != nil {
				return err
			}
			panels, err := experiments.RunRevenueGain([]experiments.CurveSpec{value}, experiments.DemandCurves(), 2*points)
			if err != nil {
				return err
			}
			if csvOut {
				return experiments.WriteRevenuePanelsCSV(w, panels)
			}
			if plotOut {
				return experiments.PlotPriceCurves(w, panels)
			}
			return experiments.WriteRevenuePanels(w, "Figure 12 (appendix): demand panels, fine grid", panels)
		case "fig9", "fig10", "fig13", "fig14":
			specs := map[string][2]string{
				"fig9":  {"convex", "uniform"},
				"fig10": {"sigmoid", "center"},
				"fig13": {"concave", "extremes"},
				"fig14": {"linear", "decreasing"},
			}
			s := specs[name]
			value, err := experiments.ValueCurve(s[0])
			if err != nil {
				return err
			}
			demand, err := experiments.DemandCurve(s[1])
			if err != nil {
				return err
			}
			panels, err := experiments.RunRuntime(value, demand, runtimeNs)
			if err != nil {
				return err
			}
			if csvOut {
				return experiments.WriteRuntimePanelsCSV(w, panels)
			}
			if plotOut {
				return experiments.PlotRuntime(w,
					fmt.Sprintf("%s: runtime vs #price points (value=%s, demand=%s)", name, s[0], s[1]), panels)
			}
			title := fmt.Sprintf("%s: runtime/revenue/affordability vs #price points (value=%s, demand=%s)", name, s[0], s[1])
			return experiments.WriteRuntimePanels(w, title, panels)
		case "relaxation":
			results, err := experiments.RunRelaxationGap(10)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "Ablation: relaxed-subadditivity revenue ratio (DP / exact), guarantee ≥ 0.5")
			for _, r := range results {
				fmt.Fprintf(w, "  value=%-9s demand=%-11s dp=%9.4f exact=%9.4f ratio=%.4f\n",
					r.ValueCurve, r.DemandCurve, r.DPRevenue, r.ExactRev, r.Ratio)
			}
			return nil
		case "errorinverse":
			results, err := experiments.RunErrorInverseAblation(scale, samples, seed)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "Ablation: analytic vs Monte-Carlo error transformation (squared loss)")
			for _, r := range results {
				fmt.Fprintf(w, "  %-10s max-rel-diff=%.4f analytic=%6.0fµs monte-carlo=%6.0fms\n",
					r.Dataset, r.MaxRelDiff, r.AnalyticMicros, r.MonteCarloMs)
			}
			return nil
		case "menus":
			pointsList, err := experiments.RunMenuStudy("sigmoid", "uniform", points, []int{1, 2, 3, 5, 8, 12, 20})
			if err != nil {
				return err
			}
			return experiments.WriteMenuStudy(w,
				"Menu-size study: rolled-up revenue retention vs number of offered versions (value=sigmoid, demand=uniform)",
				pointsList)
		case "abtest":
			fmt.Fprintln(w, "Live A/B test: MBP vs baseline on the same simulated buyer stream")
			for _, baseline := range []string{"Lin", "MaxC", "MedC", "OptC"} {
				res, err := experiments.RunABTest(experiments.ABConfig{
					Buyers: 5000, BaselineName: baseline, Seed: seed,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "  vs %-5s MBP revenue %10.2f (%5d sales) | baseline %10.2f (%5d sales) | ratio %.2fx\n",
					baseline, res.RevenueMBP, res.SalesMBP, res.RevenueBase, res.SalesBase, res.RevenueRatio)
			}
			return nil
		case "mechanisms":
			series, err := experiments.RunMechanismAblation(0, gridN, samples, seed)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "Ablation: error curves under equal-variance noise mechanisms")
			for _, s := range series {
				fmt.Fprintf(w, "  %-22s errs:", s.Mechanism)
				for _, e := range s.Errs {
					fmt.Fprintf(w, " %8.4f", e)
				}
				fmt.Fprintln(w)
			}
			fmt.Fprintf(w, "max relative spread: %.4f (≈ 0 means mechanisms are interchangeable)\n",
				experiments.MaxMechanismSpread(series))
			return nil
		case "attack":
			prob, err := opt.NewProblem([]opt.BuyerPoint{
				{X: 1, Value: 100, Mass: 0.25},
				{X: 2, Value: 150, Mass: 0.25},
				{X: 3, Value: 280, Mass: 0.25},
				{X: 4, Value: 350, Mass: 0.25},
			})
			if err != nil {
				return err
			}
			f, _, err := opt.MaximizeRevenueDP(prob)
			if err != nil {
				return err
			}
			results, err := experiments.RunArbitrageAttack(experiments.AttackConfig{
				Price: f.Price, Dim: 20, Rounds: samples, Seed: seed,
			})
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "Arbitrage attack: average k purchases of quality x vs the honest version at k·x")
			fmt.Fprintf(w, "%4s %6s %12s %12s %10s %14s %14s\n",
				"k", "x", "attack cost", "honest cost", "profit", "measured err", "target err")
			for _, r := range results {
				fmt.Fprintf(w, "%4d %6.1f %12.2f %12.2f %10.2f %14.6f %14.6f\n",
					r.K, r.X, r.AttackCost, r.HonestCost, r.Profit, r.MeasuredError, r.TargetError)
			}
			fmt.Fprintf(w, "max profit: %.4f (≤ 0 means the pricing is arbitrage-free in practice)\n",
				experiments.MaxProfit(results))
			return nil
		case "population":
			res, err := experiments.RunPopulation("sigmoid", "center", points, 100000, seed)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "Population simulation: realized vs expected market outcomes")
			fmt.Fprintf(w, "  buyers=%d sales=%d\n  revenue: realized %.2f vs expected %.2f (rel err %.4f)\n  affordability: realized %.4f vs expected %.4f\n",
				res.Buyers, res.Sales, res.RealizedRevenue, res.ExpectedRevenue, res.RelativeError, res.RealizedAfford, res.ExpectedAfford)
			return nil
		case "frontier":
			value, err := experiments.ValueCurve("convex")
			if err != nil {
				return err
			}
			demand, err := experiments.DemandCurve("uniform")
			if err != nil {
				return err
			}
			pts, err := experiments.GridPoints(value, demand, points)
			if err != nil {
				return err
			}
			prob, err := opt.NewProblem(pts)
			if err != nil {
				return err
			}
			frontier, err := opt.AffordabilityFrontier(prob, 6)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "Revenue/affordability frontier (convex value, uniform demand)")
			for i, r := range frontier {
				alpha := float64(i) / float64(len(frontier)-1)
				fmt.Fprintf(w, "  min-affordability=%.2f revenue=%9.4f achieved=%.4f\n", alpha, r.Revenue, r.Affordability)
			}
			return nil
		case "trainers":
			results, err := experiments.RunTrainerAblation(scale, seed)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "Ablation: trainers (final training loss and wall time)")
			for _, r := range results {
				fmt.Fprintf(w, "  %-10s %-20s %-18s loss=%.6f time=%.3fs\n",
					r.Dataset, r.Model, r.Trainer, r.FinalLoss, r.Seconds)
			}
			return nil
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	if exp != "all" {
		return runOne(exp)
	}
	for _, name := range []string{
		"table3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "relaxation", "errorinverse",
		"trainers", "population", "frontier", "attack", "mechanisms", "abtest", "menus",
	} {
		fmt.Fprintf(w, "\n================ %s ================\n", name)
		if err := runOne(name); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}
