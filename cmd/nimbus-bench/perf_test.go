package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nimbus/internal/perf"
)

// runPerf invokes the -perf dispatcher the way main does, capturing both
// streams.
func runPerf(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = perfMain(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

// recordShort records a short-mode trajectory point into dir and returns
// its path.
func recordShort(t *testing.T, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	code, _, stderr := runPerf(t, "run", "-short", "-bench", "99", "-out", path)
	if code != 0 {
		t.Fatalf("perf run exited %d: %s", code, stderr)
	}
	return path
}

// TestPerfRunShortProducesValidReport runs the full short-mode pipeline and
// checks the artifact passes the schema gate with both sections present.
func TestPerfRunShortProducesValidReport(t *testing.T) {
	path := recordShort(t, t.TempDir(), "smoke.json")
	rep, err := perf.ReadFile(path)
	if err != nil {
		t.Fatalf("recorded report fails the schema gate: %v", err)
	}
	if rep.Bench != 99 {
		t.Errorf("bench = %d, want 99", rep.Bench)
	}
	if rep.Load == nil || rep.Load.Requests == 0 {
		t.Errorf("load section missing or empty: %+v", rep.Load)
	}
	if len(rep.Micro) == 0 {
		t.Error("micro section empty")
	}
	if rep.GeneratedBy != "nimbus-bench -perf run" {
		t.Errorf("generated_by = %q", rep.GeneratedBy)
	}
}

// TestPerfRunStdout checks -out-less runs emit the JSON on stdout.
func TestPerfRunStdout(t *testing.T) {
	code, stdout, stderr := runPerf(t, "run", "-short")
	if code != 0 {
		t.Fatalf("perf run exited %d: %s", code, stderr)
	}
	var rep perf.Report
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, stdout)
	}
	if err := rep.Validate(); err != nil {
		t.Errorf("stdout report invalid: %v", err)
	}
}

// TestPerfCompareSelfAndRegression pins the acceptance criteria: self-compare
// exits zero; a synthetically injected regression exits nonzero (specifically
// 1, so CI can tell regressions from tool failures).
func TestPerfCompareSelfAndRegression(t *testing.T) {
	dir := t.TempDir()
	path := recordShort(t, dir, "base.json")

	code, stdout, stderr := runPerf(t, "compare", path, path)
	if code != 0 {
		t.Fatalf("self-compare exited %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "0 regression(s)") {
		t.Errorf("self-compare output missing clean tally:\n%s", stdout)
	}

	// Inject a 10x kernel slowdown into a copy and re-compare.
	rep, err := perf.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep.Micro[0].NsPerOp *= 10
	slow := filepath.Join(dir, "slow.json")
	if err := rep.WriteFile(slow); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runPerf(t, "compare", path, slow)
	if code != 1 {
		t.Fatalf("injected regression exited %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, rep.Micro[0].Name) {
		t.Errorf("regression output does not name the kernel:\n%s", stdout)
	}
}

// TestPerfValidate checks the validate subcommand accepts a good report and
// rejects a corrupted one.
func TestPerfValidate(t *testing.T) {
	dir := t.TempDir()
	path := recordShort(t, dir, "ok.json")
	code, stdout, _ := runPerf(t, "validate", path)
	if code != 0 || !strings.Contains(stdout, "valid") {
		t.Errorf("validate of a good report: exit %d, output %q", code, stdout)
	}

	rep, err := perf.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep.SchemaVersion = 99
	bad := filepath.Join(dir, "bad.json")
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runPerf(t, "validate", bad)
	if code != 2 {
		t.Errorf("validate of a bad report exited %d, want 2 (stderr: %s)", code, stderr)
	}
}

// TestPerfUsageErrors covers the exit-2 paths.
func TestPerfUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"bogus"},
		{"compare", "one.json"},
		{"compare", "missing-a.json", "missing-b.json"},
		{"validate"},
		{"run", "stray-positional"},
	} {
		if code, _, _ := runPerf(t, args...); code != 2 {
			t.Errorf("args %v exited %d, want 2", args, code)
		}
	}
}

// TestPerfMicroEmitsKernelJSON pins the child-process contract behind
// `-perf run`'s re-exec: the micro subcommand emits the kernel sweep as
// a decodable JSON array of complete results.
func TestPerfMicroEmitsKernelJSON(t *testing.T) {
	code, stdout, stderr := runPerf(t, "micro", "-benchtime", "1ms")
	if code != 0 {
		t.Fatalf("perf micro exited %d: %s", code, stderr)
	}
	var micro []perf.MicroResult
	if err := json.Unmarshal([]byte(stdout), &micro); err != nil {
		t.Fatalf("output is not a kernel JSON array: %v", err)
	}
	if len(micro) == 0 {
		t.Fatal("no kernel results")
	}
	for _, m := range micro {
		if m.Name == "" || m.NsPerOp <= 0 || m.Iterations <= 0 {
			t.Fatalf("incomplete kernel result %+v", m)
		}
	}
}
