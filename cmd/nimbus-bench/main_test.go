package main

import (
	"bytes"
	"strings"
	"testing"
)

func runExp(t *testing.T, exp string) string {
	t.Helper()
	var buf bytes.Buffer
	// Tiny settings keep every experiment fast in tests.
	if err := run(&buf, exp, 2e-4, 30, 6, 20, 7); err != nil {
		t.Fatalf("%s: %v", exp, err)
	}
	return buf.String()
}

func TestRunTable3(t *testing.T) {
	out := runExp(t, "table3")
	for _, want := range []string{"Table 3", "Simulated1", "SUSY"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunFig5(t *testing.T) {
	out := runExp(t, "fig5")
	for _, want := range []string{"HAS ARBITRAGE", "optimal(MILP)", "approx(MBP)", "revenue=200.00", "revenue=193.75"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunFig6(t *testing.T) {
	out := runExp(t, "fig6")
	for _, want := range []string{"Figure 6", "zero-one", "logistic", "squared"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunRevenueFigures(t *testing.T) {
	for _, exp := range []string{"fig7", "fig8"} {
		out := runExp(t, exp)
		for _, want := range []string{"MBP", "Lin", "MaxC", "MedC", "OptC", "gain"} {
			if !strings.Contains(out, want) {
				t.Fatalf("%s missing %q in:\n%s", exp, want, out)
			}
		}
	}
}

func TestRunRuntimeFigures(t *testing.T) {
	// Only the fastest runtime figure in unit tests; the rest share the
	// same code path.
	out := runExp(t, "fig9")
	for _, want := range []string{"MILP", "MBP", "runtime"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunAblations(t *testing.T) {
	for exp, want := range map[string]string{
		"relaxation":   "ratio",
		"errorinverse": "max-rel-diff",
		"trainers":     "gradient-descent",
		"population":   "realized",
		"frontier":     "min-affordability",
		"attack":       "max profit",
		"mechanisms":   "spread",
		"abtest":       "ratio",
		"menus":        "retention",
	} {
		out := runExp(t, exp)
		if !strings.Contains(out, want) {
			t.Fatalf("%s missing %q in:\n%s", exp, want, out)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig99", 1e-3, 10, 5, 10, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunCSVFormat(t *testing.T) {
	for exp, header := range map[string]string{
		"table3": "dataset,task,n1,n2,d",
		"fig5":   "method,quality,price,revenue,arbitrage_free",
		"fig7":   "value_curve,demand_curve,method,revenue,affordability,seconds",
		"fig9":   "n,method,seconds,revenue,affordability",
	} {
		var buf bytes.Buffer
		if err := runFmt(&buf, exp, 2e-4, 30, 6, 20, 7, "csv"); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.HasPrefix(buf.String(), header) {
			t.Fatalf("%s: CSV header missing, got:\n%s", exp, buf.String()[:min(120, buf.Len())])
		}
	}
	var buf bytes.Buffer
	if err := runFmt(&buf, "table3", 1e-3, 10, 5, 10, 1, "yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRunPlotFormat(t *testing.T) {
	for exp, want := range map[string]string{
		"fig6": "expected error",
		"fig7": "buyer value",
		"fig9": "log scale",
	} {
		var buf bytes.Buffer
		if err := runFmt(&buf, exp, 1e-3, 60, 6, 20, 7, "plot"); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		out := buf.String()
		if !strings.Contains(out, want) || !strings.Contains(out, "|") {
			t.Fatalf("%s: not a chart:\n%s", exp, out)
		}
	}
}
