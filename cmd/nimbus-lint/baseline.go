package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"nimbus/internal/analysis"
)

// A baseline freezes the currently-known findings so that adopting a new
// rule (or tightening an old one) over a large tree does not force fixing
// every historical site at once: known findings are suppressed, only NEW
// findings fail the build. Entries key on file+rule+message but not line,
// so unrelated edits that shift code around do not invalidate the
// baseline; a count per key tolerates repeated identical findings in one
// file while still catching a genuine new occurrence of the same shape.
type baselineFile struct {
	Version  int             `json:"version"`
	Findings []baselineEntry `json:"findings"`
}

type baselineEntry struct {
	File    string `json:"file"` // module-root-relative, forward slashes
	Rule    string `json:"rule"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

// baselineVersion guards the on-disk format; bump it on incompatible
// changes so stale files fail loudly instead of silently matching nothing.
const baselineVersion = 1

func baselineKey(file, rule, message string) string {
	return file + "\x00" + rule + "\x00" + message
}

// writeBaseline records the given findings, keyed root-relative via rel,
// as a deterministic (sorted) JSON document.
func writeBaseline(path string, diags []analysis.Diagnostic, rel func(string) string) error {
	counts := make(map[baselineEntry]int)
	for _, d := range diags {
		counts[baselineEntry{File: rel(d.File), Rule: d.Rule, Message: d.Message}]++
	}
	bf := baselineFile{Version: baselineVersion}
	for e, n := range counts {
		e.Count = n
		bf.Findings = append(bf.Findings, e)
	}
	sort.Slice(bf.Findings, func(i, j int) bool {
		a, b := bf.Findings[i], bf.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// loadBaseline returns the suppression budget per finding key.
func loadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if bf.Version != baselineVersion {
		return nil, fmt.Errorf("%s: baseline version %d, this build reads version %d — regenerate with -baseline-write", path, bf.Version, baselineVersion)
	}
	known := make(map[string]int, len(bf.Findings))
	for _, e := range bf.Findings {
		known[baselineKey(e.File, e.Rule, e.Message)] += e.Count
	}
	return known, nil
}

// applyBaseline splits findings into those the baseline already knows
// (suppressed, counted) and those that are new and must still fail.
func applyBaseline(diags []analysis.Diagnostic, known map[string]int, rel func(string) string) (fresh []analysis.Diagnostic, suppressed int) {
	for _, d := range diags {
		k := baselineKey(rel(d.File), d.Rule, d.Message)
		if known[k] > 0 {
			known[k]--
			suppressed++
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh, suppressed
}
