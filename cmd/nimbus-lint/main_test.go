package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nimbus/internal/analysis"
)

// goldenNakedRand is the analyzer suite's golden input for no-naked-rand,
// reused here so the CLI tests exercise real findings with known positions.
const goldenNakedRand = "../../internal/analysis/testdata/src/nakedrand"

func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(&out, &errw, args)
	return code, out.String(), errw.String()
}

func TestRunReportsFindingsWithPositions(t *testing.T) {
	code, stdout, stderr := runLint(t, goldenNakedRand)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr)
	}
	// The golden file declares exactly one finding: the math/rand import on
	// line 7. Paths are relativized to the working directory.
	want := "internal/analysis/testdata/src/nakedrand/nakedrand.go:7:2: no-naked-rand:"
	if !strings.Contains(stdout, want) {
		t.Errorf("stdout missing %q:\n%s", want, stdout)
	}
	if got := strings.Count(strings.TrimSpace(stdout), "\n") + 1; got != 1 {
		t.Errorf("got %d finding lines, want 1:\n%s", got, stdout)
	}
	if !strings.Contains(stderr, "1 finding(s)") {
		t.Errorf("stderr missing finding count: %s", stderr)
	}
}

func TestRunJSONRoundTrips(t *testing.T) {
	code, stdout, _ := runLint(t, "-json", goldenNakedRand)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("output is not a diagnostic array: %v\n%s", err, stdout)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Rule != "no-naked-rand" || d.Line != 7 || !strings.HasSuffix(d.File, "nakedrand.go") {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
	if d.Message == "" {
		t.Error("diagnostic message is empty")
	}
}

func TestRunCleanPackageExitsZero(t *testing.T) {
	code, stdout, stderr := runLint(t, "../../internal/rng")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout: %s stderr: %s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run printed findings:\n%s", stdout)
	}
}

func TestRunJSONCleanEmitsEmptyArray(t *testing.T) {
	code, stdout, _ := runLint(t, "-json", "../../internal/rng")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("clean -json output is not an array: %v\n%s", err, stdout)
	}
	if diags == nil || len(diags) != 0 {
		t.Errorf("want empty non-null array, got %v", diags)
	}
}

func TestRunListNamesEveryRule(t *testing.T) {
	code, stdout, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, r := range analysis.DefaultRules("nimbus") {
		if !strings.Contains(stdout, r.Name()) {
			t.Errorf("-list output missing rule %s:\n%s", r.Name(), stdout)
		}
	}
}

func TestRulesFlagFiltersAndValidates(t *testing.T) {
	// Selecting only an unrelated rule silences the golden package's
	// no-naked-rand finding.
	code, stdout, stderr := runLint(t, "-rules", "no-wallclock", goldenNakedRand)
	if code != 0 {
		t.Fatalf("filtered run exit = %d, want 0; stdout: %s stderr: %s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("filtered run printed findings:\n%s", stdout)
	}
	// Selecting the matching rule still reports it.
	code, stdout, _ = runLint(t, "-rules", "no-naked-rand,no-wallclock", goldenNakedRand)
	if code != 1 || !strings.Contains(stdout, "no-naked-rand") {
		t.Errorf("selected rule did not fire: exit = %d, stdout:\n%s", code, stdout)
	}
	// -list reflects the filter.
	code, stdout, _ = runLint(t, "-rules", "unlock-path", "-list")
	if code != 0 {
		t.Fatalf("-rules -list exit = %d, want 0", code)
	}
	if !strings.Contains(stdout, "unlock-path") || strings.Contains(stdout, "no-naked-rand") {
		t.Errorf("-list ignored the -rules filter:\n%s", stdout)
	}
	// A typo is an error naming the valid set, not a silently empty run.
	code, _, stderr = runLint(t, "-rules", "no-such-rule", goldenNakedRand)
	if code != 2 {
		t.Fatalf("unknown rule: exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "no-such-rule") || !strings.Contains(stderr, "snapshot-immutability") {
		t.Errorf("error should name the bad rule and the known set: %s", stderr)
	}
	if code, _, _ := runLint(t, "-rules", " , ", goldenNakedRand); code != 2 {
		t.Errorf("empty -rules: exit = %d, want 2", code)
	}
}

func TestRunUsageErrors(t *testing.T) {
	if code, _, _ := runLint(t, "-no-such-flag"); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
	if code, _, stderr := runLint(t, "./no/such/dir"); code != 2 {
		t.Errorf("bad pattern: exit = %d, want 2 (stderr: %s)", code, stderr)
	}
	if code, _, _ := runLint(t, "-json", "-sarif", goldenNakedRand); code != 2 {
		t.Errorf("-json with -sarif: exit = %d, want 2", code)
	}
	if code, _, _ := runLint(t, "-baseline-write", goldenNakedRand); code != 2 {
		t.Errorf("-baseline-write without -baseline: exit = %d, want 2", code)
	}
}

func TestBaselineSuppressesKnownFindings(t *testing.T) {
	base := filepath.Join(t.TempDir(), "lint-baseline.json")
	// Freeze the golden package's one finding, then re-lint against the
	// baseline: the known finding no longer fails the run.
	code, _, stderr := runLint(t, "-baseline", base, "-baseline-write", goldenNakedRand)
	if code != 0 {
		t.Fatalf("baseline-write exit = %d, want 0; stderr: %s", code, stderr)
	}
	code, stdout, stderr := runLint(t, "-baseline", base, goldenNakedRand)
	if code != 0 {
		t.Fatalf("baselined run exit = %d, want 0; stdout: %s stderr: %s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("baselined run still printed findings:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 baseline finding(s) suppressed") {
		t.Errorf("stderr missing suppression count: %s", stderr)
	}
}

func TestBaselineStillFailsOnNewFindings(t *testing.T) {
	base := filepath.Join(t.TempDir(), "lint-baseline.json")
	// An empty baseline (written from a clean package) suppresses nothing,
	// so the golden finding is "new" and the run fails.
	if code, _, stderr := runLint(t, "-baseline", base, "-baseline-write", "../../internal/rng"); code != 0 {
		t.Fatalf("baseline-write exit = %d, want 0; stderr: %s", code, stderr)
	}
	code, stdout, _ := runLint(t, "-baseline", base, goldenNakedRand)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stdout, "no-naked-rand") {
		t.Errorf("new finding missing from output:\n%s", stdout)
	}
}

func TestBaselineRejectsUnknownVersion(t *testing.T) {
	base := filepath.Join(t.TempDir(), "lint-baseline.json")
	if err := os.WriteFile(base, []byte(`{"version": 99, "findings": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runLint(t, "-baseline", base, goldenNakedRand)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "baseline version 99") {
		t.Errorf("stderr missing version complaint: %s", stderr)
	}
}

func TestSARIFOutput(t *testing.T) {
	code, stdout, _ := runLint(t, "-sarif", goldenNakedRand)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("output is not SARIF JSON: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "nimbus-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"no-naked-rand", "mutex-discipline", "lock-order", "goroutine-leak", "unlock-path"} {
		if !ruleIDs[want] {
			t.Errorf("driver rules missing %s", want)
		}
	}
	if len(run.Results) != 1 {
		t.Fatalf("got %d results, want 1: %+v", len(run.Results), run.Results)
	}
	res := run.Results[0]
	if res.RuleID != "no-naked-rand" {
		t.Errorf("ruleId = %q", res.RuleID)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.Region.StartLine != 7 {
		t.Errorf("startLine = %d, want 7", loc.Region.StartLine)
	}
	if want := "internal/analysis/testdata/src/nakedrand/nakedrand.go"; loc.ArtifactLocation.URI != want {
		t.Errorf("uri = %q, want %q (module-root-relative)", loc.ArtifactLocation.URI, want)
	}
}

func TestSARIFCleanTreeExitsZero(t *testing.T) {
	code, stdout, _ := runLint(t, "-sarif", "../../internal/rng")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	var log struct {
		Runs []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("clean SARIF is not JSON: %v", err)
	}
	if len(log.Runs) != 1 || log.Runs[0].Results == nil || len(log.Runs[0].Results) != 0 {
		t.Errorf("clean run should emit one run with an empty (non-null) results array:\n%s", stdout)
	}
}
