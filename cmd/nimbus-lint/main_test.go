package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nimbus/internal/analysis"
)

// goldenNakedRand is the analyzer suite's golden input for no-naked-rand,
// reused here so the CLI tests exercise real findings with known positions.
const goldenNakedRand = "../../internal/analysis/testdata/src/nakedrand"

func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(&out, &errw, args)
	return code, out.String(), errw.String()
}

func TestRunReportsFindingsWithPositions(t *testing.T) {
	code, stdout, stderr := runLint(t, goldenNakedRand)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr)
	}
	// The golden file declares exactly one finding: the math/rand import on
	// line 7. Paths are relativized to the working directory.
	want := "internal/analysis/testdata/src/nakedrand/nakedrand.go:7:2: no-naked-rand:"
	if !strings.Contains(stdout, want) {
		t.Errorf("stdout missing %q:\n%s", want, stdout)
	}
	if got := strings.Count(strings.TrimSpace(stdout), "\n") + 1; got != 1 {
		t.Errorf("got %d finding lines, want 1:\n%s", got, stdout)
	}
	if !strings.Contains(stderr, "1 finding(s)") {
		t.Errorf("stderr missing finding count: %s", stderr)
	}
}

func TestRunJSONRoundTrips(t *testing.T) {
	code, stdout, _ := runLint(t, "-json", goldenNakedRand)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("output is not a diagnostic array: %v\n%s", err, stdout)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Rule != "no-naked-rand" || d.Line != 7 || !strings.HasSuffix(d.File, "nakedrand.go") {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
	if d.Message == "" {
		t.Error("diagnostic message is empty")
	}
}

func TestRunCleanPackageExitsZero(t *testing.T) {
	code, stdout, stderr := runLint(t, "../../internal/rng")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout: %s stderr: %s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run printed findings:\n%s", stdout)
	}
}

func TestRunJSONCleanEmitsEmptyArray(t *testing.T) {
	code, stdout, _ := runLint(t, "-json", "../../internal/rng")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("clean -json output is not an array: %v\n%s", err, stdout)
	}
	if diags == nil || len(diags) != 0 {
		t.Errorf("want empty non-null array, got %v", diags)
	}
}

func TestRunListNamesEveryRule(t *testing.T) {
	code, stdout, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, r := range analysis.DefaultRules("nimbus") {
		if !strings.Contains(stdout, r.Name()) {
			t.Errorf("-list output missing rule %s:\n%s", r.Name(), stdout)
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	if code, _, _ := runLint(t, "-no-such-flag"); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
	if code, _, stderr := runLint(t, "./no/such/dir"); code != 2 {
		t.Errorf("bad pattern: exit = %d, want 2 (stderr: %s)", code, stderr)
	}
}
