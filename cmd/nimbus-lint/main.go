// Command nimbus-lint runs Nimbus's domain-invariant analyzer suite
// (internal/analysis) over the tree. It exists because the properties the
// broker's correctness rests on — centrally seeded randomness for the
// Gaussian mechanism, epsilon/grid-index float handling in the curve code,
// injected clocks in the experiment harness, no silently dropped errors,
// bounded telemetry cardinality — are invisible to go vet, and every
// aggressive refactor is a chance to lose one of them.
//
// Usage:
//
//	nimbus-lint [-json | -sarif] [-baseline file [-baseline-write]] [-rules a,b] [-list] [pattern ...]
//
// Patterns are go-tool style: a directory, or a directory followed by /...
// for the whole subtree; the default is ./... . Findings print one per line
// as file:line:col: rule: message (as a JSON array with -json, or a SARIF
// 2.1.0 log with -sarif) and any finding makes the exit status 1; a clean
// tree exits 0 and load or usage failures exit 2. Individual findings are
// silenced at the offending line with a justified directive:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// -baseline suppresses findings recorded in the named file so that only
// new findings fail; -baseline-write (re)generates that file from the
// current findings. -rules restricts a run to a comma-separated subset of
// the rule set — misspelled names are an error, cross-checked against the
// same list -list prints — which keeps staged CI runs and bisections
// honest. -list prints the (possibly -rules-filtered) rule set with the
// invariant each rule protects.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"nimbus/internal/analysis"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

// run is the testable core; main only binds it to the process.
func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("nimbus-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	baselinePath := fs.String("baseline", "", "suppress findings recorded in this `file`; only new findings fail")
	baselineWrite := fs.Bool("baseline-write", false, "rewrite the -baseline file from the current findings and exit 0")
	list := fs.Bool("list", false, "list the rules and the invariants they protect")
	rulesFlag := fs.String("rules", "", "run only these comma-separated rule `names` (default: every rule)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: nimbus-lint [-json | -sarif] [-baseline file [-baseline-write]] [-rules a,b] [-list] [pattern ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "nimbus-lint: -json and -sarif are mutually exclusive")
		return 2
	}
	if *baselineWrite && *baselinePath == "" {
		fmt.Fprintln(stderr, "nimbus-lint: -baseline-write requires -baseline")
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "nimbus-lint:", err)
		return 2
	}
	root, modPath, err := analysis.FindModule(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "nimbus-lint:", err)
		return 2
	}
	rules := analysis.DefaultRules(modPath)
	if *rulesFlag != "" {
		rules, err = filterRules(rules, *rulesFlag)
		if err != nil {
			fmt.Fprintln(stderr, "nimbus-lint:", err)
			return 2
		}
	}
	if *list {
		for _, r := range rules {
			fmt.Fprintf(stdout, "%-24s %s\n", r.Name(), r.Doc())
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader(root, modPath)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "nimbus-lint:", err)
		return 2
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			// The tree is expected to compile (go build gates CI ahead of
			// us); surface checker trouble without failing the lint, since
			// rules already stay silent where types are unknown.
			fmt.Fprintf(stderr, "nimbus-lint: type-checking %s: %v\n", pkg.Path, terr)
		}
	}
	diags := analysis.Run(pkgs, rules)
	// Baseline keys and SARIF URIs are module-root-relative so they stay
	// stable no matter which directory the tool runs from; the human and
	// -json outputs relativize to the working directory instead.
	toRoot := func(file string) string {
		if rel, err := filepath.Rel(root, file); err == nil {
			return filepath.ToSlash(rel)
		}
		return filepath.ToSlash(file)
	}
	if *baselineWrite {
		if err := writeBaseline(*baselinePath, diags, toRoot); err != nil {
			fmt.Fprintln(stderr, "nimbus-lint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "nimbus-lint: wrote %d finding(s) to %s\n", len(diags), *baselinePath)
		return 0
	}
	if *baselinePath != "" {
		known, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "nimbus-lint:", err)
			return 2
		}
		var suppressed int
		diags, suppressed = applyBaseline(diags, known, toRoot)
		if suppressed > 0 {
			fmt.Fprintf(stderr, "nimbus-lint: %d baseline finding(s) suppressed\n", suppressed)
		}
	}
	if *sarifOut {
		if err := writeSARIF(stdout, rules, diags, toRoot); err != nil {
			fmt.Fprintln(stderr, "nimbus-lint:", err)
			return 2
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "nimbus-lint: %d finding(s)\n", len(diags))
			return 1
		}
		return 0
	}
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil {
			diags[i].File = rel
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "nimbus-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "nimbus-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// filterRules restricts the rule set to the comma-separated names in
// spec, preserving the suite's order. Unknown names are an error listing
// the valid set, so a typo in a CI step fails loudly instead of silently
// checking nothing.
func filterRules(rules []analysis.Rule, spec string) ([]analysis.Rule, error) {
	byName := make(map[string]analysis.Rule, len(rules))
	for _, r := range rules {
		byName[r.Name()] = r
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, known := byName[name]; !known {
			names := make([]string, 0, len(rules))
			for _, r := range rules {
				names = append(names, r.Name())
			}
			return nil, fmt.Errorf("-rules: unknown rule %q (known: %s)", name, strings.Join(names, ", "))
		}
		want[name] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("-rules: no rule names given")
	}
	out := make([]analysis.Rule, 0, len(want))
	for _, r := range rules {
		if want[r.Name()] {
			out = append(out, r)
		}
	}
	return out, nil
}
