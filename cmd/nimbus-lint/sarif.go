package main

import (
	"encoding/json"
	"io"

	"nimbus/internal/analysis"
)

// SARIF 2.1.0 output lets CI and code-hosting UIs render findings inline
// on the diff instead of making reviewers read build logs. Only the
// subset of the schema we populate is modelled; the full spec is
// https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF renders the findings as one SARIF run. File URIs are
// module-root-relative (via rel) under %SRCROOT%, which is what upload
// actions expect for annotating checkouts.
func writeSARIF(w io.Writer, rules []analysis.Rule, diags []analysis.Diagnostic, rel func(string) string) error {
	driver := sarifDriver{Name: "nimbus-lint"}
	index := make(map[string]int, len(rules))
	for _, r := range rules {
		index[r.Name()] = len(driver.Rules)
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               r.Name(),
			ShortDescription: sarifMessage{Text: r.Doc()},
		})
	}
	results := []sarifResult{}
	for _, d := range diags {
		idx, ok := index[d.Rule]
		if !ok {
			// Findings from the framework itself (e.g. the lint-ignore
			// malformed-directive rule) have no registered Rule; give them
			// a driver entry on first sight so ruleIndex stays valid.
			idx = len(driver.Rules)
			index[d.Rule] = idx
			driver.Rules = append(driver.Rules, sarifRule{
				ID:               d.Rule,
				ShortDescription: sarifMessage{Text: "framework diagnostic"},
			})
		}
		results = append(results, sarifResult{
			RuleID:    d.Rule,
			RuleIndex: idx,
			Level:     "warning",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: rel(d.File), URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
