// Command nimbusd runs the Nimbus broker as an HTTP service: it generates
// the Table 3 datasets (at a configurable scale), lists an offering for
// each, and serves the marketplace API documented in internal/server.
//
//	nimbusd -addr :8080 -scale 0.001 -seed 42
//
// The sale ledger — the broker's only irreplaceable state — can be made
// durable two ways:
//
//   - -journal-dir: a write-ahead journal (internal/journal). Every sale
//     is appended and (depending on -journal-sync) fsynced before the
//     buyer sees it, startup recovers snapshot + record tail, and
//     graceful shutdown compacts the journal into a fresh snapshot.
//     Survives kill -9.
//   - -ledger: a whole-file JSON snapshot, restored at startup and
//     written atomically on graceful shutdown only. Survives restarts,
//     not crashes.
//
// -data-dir switches the daemon into multi-tenant registry mode instead:
// many datasets, each its own market with its own journal under the data
// directory, served through the /api/v1/datasets routes (the legacy
// single-market API remains live as the union of every tenant). Startup
// recovers every listed dataset's manifest and journal; a registry that
// recovers empty is seeded with the six Table 3 datasets. Mutually
// exclusive with -journal-dir and -ledger — the registry owns durability
// per tenant.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nimbus/internal/dataset"
	"nimbus/internal/journal"
	"nimbus/internal/market"
	"nimbus/internal/ml"
	"nimbus/internal/pricing"
	"nimbus/internal/registry"
	"nimbus/internal/server"
	"nimbus/internal/telemetry"
)

// config collects nimbusd's knobs; see the flag declarations in main for
// the semantics.
type config struct {
	addr       string
	scale      float64
	seed       int64
	samples    int
	gridN      int
	rate       float64
	commission float64

	ledger string

	journalDir      string
	journalSync     string
	journalSyncEvry time.Duration
	journalSegBytes int64

	dataDir    string
	tenantRate float64
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.Float64Var(&cfg.scale, "scale", 1e-3, "Table 3 row-count scale (1.0 = paper size)")
	flag.Int64Var(&cfg.seed, "seed", 42, "random seed")
	flag.IntVar(&cfg.samples, "samples", 200, "Monte-Carlo models per NCP when building curves")
	flag.IntVar(&cfg.gridN, "grid", 50, "offered quality grid size")
	flag.StringVar(&cfg.ledger, "ledger", "", "optional ledger snapshot file: restored at startup, saved atomically on graceful shutdown")
	flag.Float64Var(&cfg.rate, "rate", 50, "per-client request rate limit (requests/second; 0 disables)")
	flag.Float64Var(&cfg.commission, "commission", 0.1, "broker's cut of each sale, in [0, 1)")
	flag.StringVar(&cfg.journalDir, "journal-dir", "", "optional write-ahead journal directory: sales survive kill -9 (mutually exclusive with -ledger)")
	flag.StringVar(&cfg.journalSync, "journal-sync", "interval", "journal fsync policy: always, group, interval or never")
	flag.DurationVar(&cfg.journalSyncEvry, "journal-sync-every", journal.DefaultSyncEvery, "flush interval under -journal-sync=interval")
	flag.Int64Var(&cfg.journalSegBytes, "journal-segment-bytes", journal.DefaultSegmentBytes, "journal segment rotation threshold")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "multi-tenant registry mode: dataset markets live under this directory, each with its own journal (mutually exclusive with -journal-dir and -ledger)")
	flag.Float64Var(&cfg.tenantRate, "tenant-rate", 0, "per-dataset-market purchase rate limit in registry mode (requests/second; 0 disables)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "nimbusd:", err)
		os.Exit(1)
	}
}

// restoreLedger loads a previous ledger snapshot file if one exists.
func restoreLedger(broker *market.Broker, path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil // first run
	}
	if err != nil {
		return fmt.Errorf("opening ledger: %w", err)
	}
	//lint:ignore no-dropped-error the ledger is only read here; a close failure cannot lose data
	defer f.Close()
	if err := broker.RestoreLedger(f); err != nil {
		return err
	}
	log.Printf("nimbusd: restored %d sales (revenue %.2f) from %s",
		len(broker.Sales()), broker.TotalRevenue(), path)
	return nil
}

// saveLedger writes the ledger snapshot so a crash mid-save leaves either
// the old file or the new one, never a torn mix: temp file, fsync,
// rename, directory fsync.
func saveLedger(broker *market.Broker, path string) error {
	return journal.WriteFileAtomic(journal.OSFS{}, path, broker.SaveLedger)
}

// openJournal opens (and recovers) the write-ahead journal, replays the
// recovered ledger into the broker, and switches the broker's sale path
// onto it.
func openJournal(broker *market.Broker, cfg config, reg *telemetry.Registry, logf func(format string, args ...any)) (*journal.Journal, error) {
	policy, err := journal.ParseSyncPolicy(cfg.journalSync)
	if err != nil {
		return nil, err
	}
	j, err := journal.Open(cfg.journalDir, journal.Options{
		SegmentBytes: cfg.journalSegBytes,
		Sync:         policy,
		SyncEvery:    cfg.journalSyncEvry,
		Telemetry:    reg,
	})
	if err != nil {
		return nil, err
	}
	closeOnErr := func(err error) (*journal.Journal, error) {
		//lint:ignore no-dropped-error best-effort cleanup; the recovery failure is what gets reported
		j.Close()
		return nil, err
	}
	if snap, ok, err := j.Snapshot(); err != nil {
		return closeOnErr(err)
	} else if ok {
		err := broker.RestoreLedger(snap)
		if cerr := snap.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return closeOnErr(fmt.Errorf("restoring journal snapshot: %w", err))
		}
	}
	replayed := 0
	if err := j.Replay(func(rec []byte) error {
		p, err := market.UnmarshalSale(rec)
		if err != nil {
			return err
		}
		broker.ReplaySale(p)
		replayed++
		return nil
	}); err != nil {
		return closeOnErr(fmt.Errorf("replaying journal: %w", err))
	}
	logf("nimbusd: journal %s recovered: %d sales in ledger (%d replayed from tail), revenue %.2f",
		cfg.journalDir, len(broker.Sales()), replayed, broker.TotalRevenue())
	broker.SetJournal(j)
	return j, nil
}

// closeJournal compacts the journal into a fresh snapshot (folding the
// whole ledger, so the next startup replays nothing) and closes it. Call
// only after the HTTP server has drained: Compact assumes no concurrent
// sales.
func closeJournal(broker *market.Broker, j *journal.Journal, logf func(format string, args ...any)) error {
	if err := j.Compact(broker.SaveLedger); err != nil {
		// Compaction is an optimization; the appended records are already
		// durable. Flush and close so nothing in the tail is lost.
		logf("nimbusd: journal compaction failed (sales remain in segments): %v", err)
	} else {
		logf("nimbusd: journal compacted: %d sales snapshotted", len(broker.Sales()))
	}
	return j.Close()
}

// buildBroker generates the Table 3 suite and lists one offering per
// dataset on a fresh broker.
func buildBroker(scale float64, seed int64, samples, gridN int, logf func(format string, args ...any)) (*market.Broker, error) {
	logf("nimbusd: generating datasets (scale %g)...", scale)
	pairs, err := dataset.Suite(scale, seed)
	if err != nil {
		return nil, err
	}
	broker := market.NewBroker(seed + 1)
	research := market.Research{
		Value:  func(e float64) float64 { return 100 / (1 + e) },
		Demand: func(e float64) float64 { return 1 },
	}
	grid := pricing.DefaultGrid(gridN)
	for _, pair := range pairs {
		seller, err := market.NewSeller(pair, research)
		if err != nil {
			return nil, err
		}
		var model ml.Model
		switch pair.Train.Task {
		case dataset.Regression:
			model = ml.LinearRegression{Ridge: 1e-4}
		case dataset.Classification:
			model = ml.LogisticRegression{Ridge: 1e-4}
		}
		start := time.Now()
		o, err := broker.List(market.OfferingConfig{
			Seller:  seller,
			Model:   model,
			Grid:    grid,
			Samples: samples,
			Seed:    seed,
		})
		if err != nil {
			return nil, fmt.Errorf("listing %s: %w", pair.Name, err)
		}
		logf("nimbusd: listed %s (expected revenue %.2f) in %v", o.Name, o.ExpectedRevenue, time.Since(start).Round(time.Millisecond))
	}
	return broker, nil
}

// serveUntilSignal runs the HTTP server until SIGINT/SIGTERM or a
// listener failure, draining in-flight requests on signal. It returns the
// listener error, if any; persisting the books belongs to the caller,
// after the drain.
func serveUntilSignal(addr string, handler http.Handler, ready func()) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		ready()
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
		log.Printf("nimbusd: signal received, draining...")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("nimbusd: shutdown: %v", err)
		}
	}
	return nil
}

// seedSuite lists the six Table 3 datasets as tenants of a freshly
// initialized registry, one market per dataset, IDs matching the paper's
// names. Row counts follow -scale exactly as the single-market mode does.
func seedSuite(r *registry.Registry, cfg config, logf func(format string, args ...any)) error {
	logf("nimbusd: empty registry, seeding the Table 3 suite (scale %g)...", cfg.scale)
	for i, name := range registry.GeneratorNames() {
		spec := registry.Spec{
			ID:        name,
			Owner:     "nimbus",
			Generator: name,
			Rows:      dataset.Table3Rows(name, cfg.scale),
			Grid:      cfg.gridN,
			Samples:   cfg.samples,
			Seed:      cfg.seed + int64(i),
		}
		start := time.Now()
		if _, err := r.List(spec, nil); err != nil {
			return fmt.Errorf("seeding market %s: %w", name, err)
		}
		logf("nimbusd: listed dataset %s (%d rows) in %v", name, spec.Rows, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// runMulti is the -data-dir serving mode: a registry of per-dataset
// markets, recovered from (and journaled under) the data directory.
func runMulti(cfg config) error {
	policy, err := journal.ParseSyncPolicy(cfg.journalSync)
	if err != nil {
		return err
	}
	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(reg)
	r, err := registry.Open(registry.Config{
		Root:         cfg.dataDir,
		Commission:   cfg.commission,
		Sync:         policy,
		SyncEvery:    cfg.journalSyncEvry,
		SegmentBytes: cfg.journalSegBytes,
		Telemetry:    reg,
		Logf:         log.Printf,
	})
	if err != nil {
		return err
	}
	if r.Count() > 0 {
		log.Printf("nimbusd: registry %s recovered %d dataset market(s)", cfg.dataDir, r.Count())
	} else if err := seedSuite(r, cfg, log.Printf); err != nil {
		if cerr := r.Close(); cerr != nil {
			log.Printf("nimbusd: closing registry: %v", cerr)
		}
		return err
	}
	opts := []server.Option{server.WithTelemetry(reg)}
	if cfg.tenantRate > 0 {
		opts = append(opts, server.WithTenantRate(cfg.tenantRate, int(2*cfg.tenantRate)))
	}
	var handler http.Handler = server.NewMulti(r, opts...)
	if cfg.rate > 0 {
		rl := server.NewRateLimiter(cfg.rate, int(2*cfg.rate))
		rl.SetTelemetry(reg)
		handler = rl.Wrap(handler)
	}
	serveErr := serveUntilSignal(cfg.addr, server.WithMiddleware(handler, log.Printf, reg), func() {
		log.Printf("nimbusd: marketplace open on %s (%d dataset markets, %d offerings)",
			cfg.addr, r.Count(), len(r.Menu()))
	})
	// Close drains every market and compacts each tenant journal; the books
	// must be persisted even when the listener failed.
	st := r.Stats()
	if err := r.Close(); err != nil {
		if serveErr == nil {
			serveErr = err
		} else {
			log.Printf("nimbusd: closing registry: %v", err)
		}
	} else {
		log.Printf("nimbusd: registry closed: %d markets, %d sales, revenue %.2f",
			st.Markets, st.Sales, st.Gross)
	}
	return serveErr
}

func run(cfg config) error {
	if cfg.dataDir != "" {
		if cfg.ledger != "" || cfg.journalDir != "" {
			return errors.New("-data-dir is mutually exclusive with -ledger and -journal-dir (the registry journals each tenant under the data directory)")
		}
		return runMulti(cfg)
	}
	if cfg.ledger != "" && cfg.journalDir != "" {
		return errors.New("-ledger and -journal-dir are mutually exclusive (the journal subsumes the snapshot file)")
	}
	broker, err := buildBroker(cfg.scale, cfg.seed, cfg.samples, cfg.gridN, log.Printf)
	if err != nil {
		return err
	}
	if err := broker.SetCommission(cfg.commission); err != nil {
		return err
	}
	// One registry covers the whole serving stack: HTTP middleware, rate
	// limiter, broker sale path, journal, and Go runtime gauges. Scrape
	// it at GET /metrics (Prometheus) or GET /api/v1/metrics (JSON).
	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(reg)
	broker.SetTelemetry(reg)
	if cfg.ledger != "" {
		if err := restoreLedger(broker, cfg.ledger); err != nil {
			return err
		}
	}
	var wal *journal.Journal
	if cfg.journalDir != "" {
		if wal, err = openJournal(broker, cfg, reg, log.Printf); err != nil {
			return err
		}
	}
	var handler http.Handler = server.New(broker, server.WithTelemetry(reg))
	if cfg.rate > 0 {
		rl := server.NewRateLimiter(cfg.rate, int(2*cfg.rate))
		rl.SetTelemetry(reg)
		handler = rl.Wrap(handler)
	}
	// Graceful shutdown on SIGINT/SIGTERM: stop accepting requests, drain
	// in-flight sales, then persist the books (journal compaction or the
	// atomic snapshot) before exiting.
	serveErr := serveUntilSignal(cfg.addr, server.WithMiddleware(handler, log.Printf, reg), func() {
		log.Printf("nimbusd: marketplace open on %s (%d offerings)", cfg.addr, len(broker.Menu()))
	})
	// Persist the books even when the listener failed: sales may have
	// completed before the failure.
	if wal != nil {
		if err := closeJournal(broker, wal, log.Printf); err != nil {
			if serveErr == nil {
				serveErr = err
			} else {
				log.Printf("nimbusd: closing journal: %v", err)
			}
		}
	}
	if cfg.ledger != "" {
		if err := saveLedger(broker, cfg.ledger); err != nil {
			if serveErr == nil {
				serveErr = err
			} else {
				log.Printf("nimbusd: saving ledger: %v", err)
			}
		} else {
			log.Printf("nimbusd: saved %d sales to %s", len(broker.Sales()), cfg.ledger)
		}
	}
	return serveErr
}
