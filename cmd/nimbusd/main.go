// Command nimbusd runs the Nimbus broker as an HTTP service: it generates
// the Table 3 datasets (at a configurable scale), lists an offering for
// each, and serves the marketplace API documented in internal/server.
//
//	nimbusd -addr :8080 -scale 0.001 -seed 42
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nimbus/internal/dataset"
	"nimbus/internal/market"
	"nimbus/internal/ml"
	"nimbus/internal/pricing"
	"nimbus/internal/server"
	"nimbus/internal/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		scale      = flag.Float64("scale", 1e-3, "Table 3 row-count scale (1.0 = paper size)")
		seed       = flag.Int64("seed", 42, "random seed")
		samples    = flag.Int("samples", 200, "Monte-Carlo models per NCP when building curves")
		gridN      = flag.Int("grid", 50, "offered quality grid size")
		ledger     = flag.String("ledger", "", "optional ledger file: restored at startup, saved on shutdown")
		rate       = flag.Float64("rate", 50, "per-client request rate limit (requests/second; 0 disables)")
		commission = flag.Float64("commission", 0.1, "broker's cut of each sale, in [0, 1)")
	)
	flag.Parse()
	if err := run(*addr, *scale, *seed, *samples, *gridN, *ledger, *rate, *commission); err != nil {
		fmt.Fprintln(os.Stderr, "nimbusd:", err)
		os.Exit(1)
	}
}

// restoreLedger loads a previous ledger file if one exists.
func restoreLedger(broker *market.Broker, path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil // first run
	}
	if err != nil {
		return fmt.Errorf("opening ledger: %w", err)
	}
	//lint:ignore no-dropped-error the ledger is only read here; a close failure cannot lose data
	defer f.Close()
	if err := broker.RestoreLedger(f); err != nil {
		return err
	}
	log.Printf("nimbusd: restored %d sales (revenue %.2f) from %s",
		len(broker.Sales()), broker.TotalRevenue(), path)
	return nil
}

// saveLedger writes the ledger file atomically (write + rename).
func saveLedger(broker *market.Broker, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("creating ledger file: %w", err)
	}
	if err := broker.SaveLedger(f); err != nil {
		//lint:ignore no-dropped-error best-effort cleanup; the write error above is what gets reported
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing ledger file: %w", err)
	}
	return os.Rename(tmp, path)
}

// buildBroker generates the Table 3 suite and lists one offering per
// dataset on a fresh broker.
func buildBroker(scale float64, seed int64, samples, gridN int, logf func(format string, args ...any)) (*market.Broker, error) {
	logf("nimbusd: generating datasets (scale %g)...", scale)
	pairs, err := dataset.Suite(scale, seed)
	if err != nil {
		return nil, err
	}
	broker := market.NewBroker(seed + 1)
	research := market.Research{
		Value:  func(e float64) float64 { return 100 / (1 + e) },
		Demand: func(e float64) float64 { return 1 },
	}
	grid := pricing.DefaultGrid(gridN)
	for _, pair := range pairs {
		seller, err := market.NewSeller(pair, research)
		if err != nil {
			return nil, err
		}
		var model ml.Model
		switch pair.Train.Task {
		case dataset.Regression:
			model = ml.LinearRegression{Ridge: 1e-4}
		case dataset.Classification:
			model = ml.LogisticRegression{Ridge: 1e-4}
		}
		start := time.Now()
		o, err := broker.List(market.OfferingConfig{
			Seller:  seller,
			Model:   model,
			Grid:    grid,
			Samples: samples,
			Seed:    seed,
		})
		if err != nil {
			return nil, fmt.Errorf("listing %s: %w", pair.Name, err)
		}
		logf("nimbusd: listed %s (expected revenue %.2f) in %v", o.Name, o.ExpectedRevenue, time.Since(start).Round(time.Millisecond))
	}
	return broker, nil
}

func run(addr string, scale float64, seed int64, samples, gridN int, ledger string, rate, commission float64) error {
	broker, err := buildBroker(scale, seed, samples, gridN, log.Printf)
	if err != nil {
		return err
	}
	if err := broker.SetCommission(commission); err != nil {
		return err
	}
	if ledger != "" {
		if err := restoreLedger(broker, ledger); err != nil {
			return err
		}
	}
	// One registry covers the whole serving stack: HTTP middleware, rate
	// limiter, broker sale path, and Go runtime gauges. Scrape it at
	// GET /metrics (Prometheus) or GET /api/v1/metrics (JSON).
	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(reg)
	broker.SetTelemetry(reg)
	var handler http.Handler = server.New(broker, server.WithTelemetry(reg))
	if rate > 0 {
		rl := server.NewRateLimiter(rate, int(2*rate))
		rl.SetTelemetry(reg)
		handler = rl.Wrap(handler)
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           server.WithMiddleware(handler, log.Printf, reg),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, then persist the
	// books.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("nimbusd: marketplace open on %s (%d offerings)", addr, len(broker.Menu()))
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("nimbusd: shutdown: %v", err)
		}
	}
	if ledger != "" {
		if err := saveLedger(broker, ledger); err != nil {
			return err
		}
		log.Printf("nimbusd: saved %d sales to %s", len(broker.Sales()), ledger)
	}
	return nil
}
