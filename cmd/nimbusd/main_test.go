package main

import (
	"strings"
	"testing"

	"nimbus/internal/market"
)

func TestBuildBrokerListsAllSixDatasets(t *testing.T) {
	var logs []string
	broker, err := buildBroker(2e-4, 7, 30, 8, func(format string, args ...any) {
		logs = append(logs, format)
	})
	if err != nil {
		t.Fatal(err)
	}
	menu := broker.Menu()
	if len(menu) != 6 {
		t.Fatalf("menu %v", menu)
	}
	wantModels := map[string]string{
		"Simulated1": "linear-regression",
		"YearMSD":    "linear-regression",
		"CASP":       "linear-regression",
		"Simulated2": "logistic-regression",
		"CovType":    "logistic-regression",
		"SUSY":       "logistic-regression",
	}
	for _, name := range menu {
		parts := strings.SplitN(name, "/", 2)
		if wantModels[parts[0]] != parts[1] {
			t.Fatalf("offering %s has unexpected model", name)
		}
		o, err := broker.Offering(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.VerifySLA(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if len(logs) == 0 {
		t.Fatal("no progress logged")
	}
}

func TestLedgerSaveRestoreViaFiles(t *testing.T) {
	broker, err := buildBroker(1e-9, 3, 10, 4, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	name := broker.Menu()[0]
	if _, err := broker.BuyAtQuality(name, offeringLoss(t, broker, name), 2); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ledger.json"
	if err := saveLedger(broker, path); err != nil {
		t.Fatal(err)
	}

	fresh, err := buildBroker(1e-9, 3, 10, 4, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := restoreLedger(fresh, path); err != nil {
		t.Fatal(err)
	}
	if len(fresh.Sales()) != 1 {
		t.Fatalf("restored %d sales", len(fresh.Sales()))
	}
	// Restoring a missing path is a silent first-run.
	empty, err := buildBroker(1e-9, 3, 10, 4, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := restoreLedger(empty, t.TempDir()+"/missing.json"); err != nil {
		t.Fatal(err)
	}
}

func offeringLoss(t *testing.T, broker *market.Broker, name string) string {
	t.Helper()
	o, err := broker.Offering(name)
	if err != nil {
		t.Fatal(err)
	}
	return o.LossNames()[0]
}

func TestBuildBrokerPropagatesErrors(t *testing.T) {
	// Scale so tiny that the floor of 64 rows still works — instead poison
	// via a negative sample count? Samples fall back to default; the
	// realistic failure is an invalid grid size producing a 2-point grid,
	// which still works. Exercise the happy path with minimal settings to
	// keep the error-path coverage in the market package where it lives.
	if _, err := buildBroker(1e-9, 1, 10, 2, func(string, ...any) {}); err != nil {
		t.Fatalf("minimal broker failed: %v", err)
	}
}
