package main

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"nimbus/internal/journal"
	"nimbus/internal/market"
	"nimbus/internal/registry"
)

func TestBuildBrokerListsAllSixDatasets(t *testing.T) {
	var logs []string
	broker, err := buildBroker(2e-4, 7, 30, 8, func(format string, args ...any) {
		logs = append(logs, format)
	})
	if err != nil {
		t.Fatal(err)
	}
	menu := broker.Menu()
	if len(menu) != 6 {
		t.Fatalf("menu %v", menu)
	}
	wantModels := map[string]string{
		"Simulated1": "linear-regression",
		"YearMSD":    "linear-regression",
		"CASP":       "linear-regression",
		"Simulated2": "logistic-regression",
		"CovType":    "logistic-regression",
		"SUSY":       "logistic-regression",
	}
	for _, name := range menu {
		parts := strings.SplitN(name, "/", 2)
		if wantModels[parts[0]] != parts[1] {
			t.Fatalf("offering %s has unexpected model", name)
		}
		o, err := broker.Offering(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.VerifySLA(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if len(logs) == 0 {
		t.Fatal("no progress logged")
	}
}

func TestLedgerSaveRestoreViaFiles(t *testing.T) {
	broker, err := buildBroker(1e-9, 3, 10, 4, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	name := broker.Menu()[0]
	if _, err := broker.BuyAtQuality(name, offeringLoss(t, broker, name), 2); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ledger.json"
	if err := saveLedger(broker, path); err != nil {
		t.Fatal(err)
	}

	fresh, err := buildBroker(1e-9, 3, 10, 4, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := restoreLedger(fresh, path); err != nil {
		t.Fatal(err)
	}
	if len(fresh.Sales()) != 1 {
		t.Fatalf("restored %d sales", len(fresh.Sales()))
	}
	// Restoring a missing path is a silent first-run.
	empty, err := buildBroker(1e-9, 3, 10, 4, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := restoreLedger(empty, t.TempDir()+"/missing.json"); err != nil {
		t.Fatal(err)
	}
}

func offeringLoss(t *testing.T, broker *market.Broker, name string) string {
	t.Helper()
	o, err := broker.Offering(name)
	if err != nil {
		t.Fatal(err)
	}
	return o.LossNames()[0]
}

func TestRunRejectsLedgerPlusJournal(t *testing.T) {
	err := run(config{ledger: "ledger.json", journalDir: "journal"})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("want mutual-exclusion error, got %v", err)
	}
}

func TestRunRejectsDataDirPlusLegacyPersistence(t *testing.T) {
	for _, cfg := range []config{
		{dataDir: "data", journalDir: "journal"},
		{dataDir: "data", ledger: "ledger.json"},
	} {
		err := run(cfg)
		if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
			t.Fatalf("config %+v: want mutual-exclusion error, got %v", cfg, err)
		}
	}
}

// TestSeedSuiteListsAndRecovers drives the registry-mode boot sequence:
// an empty data directory is seeded with the six Table 3 datasets, and a
// second boot recovers them from their manifests instead of re-seeding.
func TestSeedSuiteListsAndRecovers(t *testing.T) {
	root := t.TempDir()
	cfg := config{scale: 1e-9, seed: 3, samples: 10, gridN: 4}
	quiet := func(string, ...any) {}
	open := func() *registry.Registry {
		r, err := registry.Open(registry.Config{Root: root, Sync: journal.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	r := open()
	if err := seedSuite(r, cfg, quiet); err != nil {
		t.Fatal(err)
	}
	if r.Count() != 6 || len(r.Menu()) != 6 {
		t.Fatalf("seeded %d markets, %d offerings", r.Count(), len(r.Menu()))
	}
	wantModels := map[string]string{
		"Simulated1": "linear-regression",
		"YearMSD":    "linear-regression",
		"CASP":       "linear-regression",
		"Simulated2": "logistic-regression",
		"CovType":    "logistic-regression",
		"SUSY":       "logistic-regression",
	}
	for _, name := range r.Menu() {
		parts := strings.SplitN(name, "/", 2)
		if wantModels[parts[0]] != parts[1] {
			t.Fatalf("offering %s has unexpected model", name)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Second boot: everything recovers, so runMulti would skip seeding.
	r2 := open()
	defer r2.Close()
	if r2.Count() != 6 {
		t.Fatalf("recovered %d markets, want 6", r2.Count())
	}
}

// TestJournalSurvivesRestarts drives the lifecycle nimbusd wires up:
// sales are journaled, a graceful shutdown compacts them into a snapshot,
// a crash (no compaction) leaves them in the record tail, and either way
// the next startup recovers the full ledger.
func TestJournalSurvivesRestarts(t *testing.T) {
	dir := t.TempDir()
	cfg := config{
		journalDir:      dir,
		journalSync:     "always",
		journalSyncEvry: time.Millisecond,
		journalSegBytes: 1024,
	}
	logf := func(string, ...any) {}
	newBroker := func() *market.Broker {
		broker, err := buildBroker(1e-9, 3, 10, 4, logf)
		if err != nil {
			t.Fatal(err)
		}
		return broker
	}

	// Generation 1: two sales, graceful shutdown (compacts).
	b1 := newBroker()
	j1, err := openJournal(b1, cfg, nil, logf)
	if err != nil {
		t.Fatal(err)
	}
	name := b1.Menu()[0]
	loss := offeringLoss(t, b1, name)
	for i := 0; i < 2; i++ {
		if _, err := b1.BuyAtQuality(name, loss, 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := closeJournal(b1, j1, logf); err != nil {
		t.Fatal(err)
	}

	// Generation 2: recovers from the snapshot, sells once more, then
	// "crashes" — the journal is abandoned without compaction or flush
	// beyond the per-append fsync.
	b2 := newBroker()
	j2, err := openJournal(b2, cfg, nil, logf)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b2.Sales()); got != 2 {
		t.Fatalf("generation 2 recovered %d sales, want 2", got)
	}
	if _, err := b2.BuyAtQuality(name, loss, 3); err != nil {
		t.Fatal(err)
	}
	wantRevenue := b2.TotalRevenue()
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation 3: snapshot (2 sales) + tail replay (1 sale).
	b3 := newBroker()
	j3, err := openJournal(b3, cfg, nil, logf)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if got := len(b3.Sales()); got != 3 {
		t.Fatalf("generation 3 recovered %d sales, want 3", got)
	}
	if b3.TotalRevenue() != wantRevenue {
		t.Fatalf("recovered revenue %v, want %v", b3.TotalRevenue(), wantRevenue)
	}
	if !reflect.DeepEqual(b3.Sales(), b2.Sales()) {
		t.Fatal("recovered ledger differs from the pre-crash ledger")
	}
}

func TestBuildBrokerPropagatesErrors(t *testing.T) {
	// Scale so tiny that the floor of 64 rows still works — instead poison
	// via a negative sample count? Samples fall back to default; the
	// realistic failure is an invalid grid size producing a 2-point grid,
	// which still works. Exercise the happy path with minimal settings to
	// keep the error-path coverage in the market package where it lives.
	if _, err := buildBroker(1e-9, 1, 10, 2, func(string, ...any) {}); err != nil {
		t.Fatalf("minimal broker failed: %v", err)
	}
}
