package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(&buf, args); err != nil {
		t.Fatalf("%v: %v", args, err)
	}
	return buf.String()
}

func TestInterpolateFeasible(t *testing.T) {
	out := runCmd(t, "interpolate", "-points", "1=10,2=15,4=20")
	if !strings.Contains(out, "interpolable without arbitrage: true") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "L2 residual 0.0000") {
		t.Fatalf("feasible targets should have zero residual:\n%s", out)
	}
}

func TestInterpolateInfeasible(t *testing.T) {
	out := runCmd(t, "interpolate", "-points", "1=10,2=25")
	if !strings.Contains(out, "interpolable without arbitrage: false") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "worst arbitrage hole") {
		t.Fatalf("missing violation report:\n%s", out)
	}
}

func TestRevenueFigure5(t *testing.T) {
	out := runCmd(t, "revenue", "-points", "1=100:0.25,2=150:0.25,3=280:0.25,4=350:0.25")
	for _, want := range []string{"193.75", "200.0000", "96.9%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRevenueWithAffordabilityFloor(t *testing.T) {
	out := runCmd(t, "revenue", "-points", "1=1:1,2=50:1,3=200:1", "-min-affordability", "1")
	if !strings.Contains(out, "with affordability ≥ 1.00") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestDefaultMass(t *testing.T) {
	out := runCmd(t, "revenue", "-points", "1=10,2=20")
	if !strings.Contains(out, "expected revenue 30.0000") {
		t.Fatalf("default mass should give revenue 30:\n%s", out)
	}
}

func TestCompressCommand(t *testing.T) {
	out := runCmd(t, "compress", "-points", "1=100:0.25,2=150:0.25,3=280:0.25,4=350:0.25", "-k", "2")
	if !strings.Contains(out, "2-version menu") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "price") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"teleport"},
		{"interpolate"},
		{"interpolate", "-points", "junk"},
		{"interpolate", "-points", "x=1"},
		{"interpolate", "-points", "1=x"},
		{"revenue"},
		{"revenue", "-points", "1=10:x"},
		{"revenue", "-points", "nope"},
	}
	var buf bytes.Buffer
	for i, args := range cases {
		if err := run(&buf, args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}
