// Command nimbus-price is the seller's price-setting workbench: given
// desired price points (quality,price pairs), it checks whether they are
// exactly interpolable without arbitrage (the coNP-hard SUBADDITIVE
// INTERPOLATION decision), locates the worst arbitrage hole, and computes
// the closest arbitrage-free curves under the L1 and L2 objectives; given
// buyer valuations (quality,value,mass triples), it runs the revenue
// optimizer and prints the resulting price curve.
//
//	nimbus-price interpolate -points "1=10,2=25,4=38"
//	nimbus-price revenue -points "1=100:0.25,2=150:0.25,3=280:0.25,4=350:0.25"
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"nimbus/internal/opt"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nimbus-price:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: nimbus-price <interpolate|revenue> -points ...")
	}
	switch cmd := args[0]; cmd {
	case "interpolate":
		fs := flag.NewFlagSet("interpolate", flag.ContinueOnError)
		raw := fs.String("points", "", `desired prices as "x=price,x=price,..."`)
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		targets, err := parseTargets(*raw)
		if err != nil {
			return err
		}
		return interpolate(w, targets)
	case "revenue":
		fs := flag.NewFlagSet("revenue", flag.ContinueOnError)
		raw := fs.String("points", "", `buyer points as "x=value:mass,..."`)
		alpha := fs.Float64("min-affordability", 0, "optional affordability floor in [0,1]")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		points, err := parseBuyerPoints(*raw)
		if err != nil {
			return err
		}
		return revenue(w, points, *alpha)
	case "compress":
		fs := flag.NewFlagSet("compress", flag.ContinueOnError)
		raw := fs.String("points", "", `buyer points as "x=value:mass,..."`)
		k := fs.Int("k", 3, "menu size")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		points, err := parseBuyerPoints(*raw)
		if err != nil {
			return err
		}
		return compress(w, points, *k)
	default:
		return fmt.Errorf("unknown command %q (want interpolate, revenue or compress)", cmd)
	}
}

func interpolate(w io.Writer, targets []opt.PricePoint) error {
	feasible, err := opt.SubadditiveInterpolationFeasible(targets)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "exactly interpolable without arbitrage: %v\n", feasible)
	if !feasible {
		gap, idx, err := opt.MaxInterpolationViolation(targets)
		if err == nil && idx >= 0 {
			fmt.Fprintf(w, "worst arbitrage hole: quality %.4g is overpriced by %.4g (combinations undercut it)\n",
				targets[idx].X, gap)
		}
	}
	l2, err := opt.InterpolateL2(targets)
	if err != nil {
		return err
	}
	l1, err := opt.InterpolateL1(targets)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%10s %12s %14s %14s\n", "quality", "desired", "closest (L2)", "closest (L1)")
	for _, t := range targets {
		fmt.Fprintf(w, "%10.4g %12.4f %14.4f %14.4f\n", t.X, t.Target, l2.Price(t.X), l1.Price(t.X))
	}
	fmt.Fprintf(w, "objective: L2 residual %.4f, L1 residual %.4f\n",
		opt.L2Objective(targets, l2.Price), opt.L1Objective(targets, l1.Price))
	return nil
}

func revenue(w io.Writer, points []opt.BuyerPoint, alpha float64) error {
	prob, err := opt.NewProblem(opt.Monotonize(points))
	if err != nil {
		return err
	}
	f, rev, err := opt.MaximizeRevenueDP(prob)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "revenue-optimal arbitrage-free prices (expected revenue %.4f, affordability %.4f):\n",
		rev, prob.Affordability(f.Price))
	for _, p := range f.Points() {
		fmt.Fprintf(w, "  quality %8.4g -> price %10.4f\n", p.X, p.Price)
	}
	if alpha > 0 {
		fair, err := opt.MaximizeRevenueWithAffordability(prob, alpha)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "with affordability ≥ %.2f: revenue %.4f, affordability %.4f\n",
			alpha, fair.Revenue, fair.Affordability)
	}
	if prob.N() <= 12 {
		_, exact, err := opt.MaximizeRevenueBruteForce(prob)
		if err == nil {
			fmt.Fprintf(w, "exact optimum (brute force): %.4f (DP achieves %.1f%%)\n", exact, 100*rev/exact)
		}
	}
	return nil
}

func compress(w io.Writer, points []opt.BuyerPoint, k int) error {
	prob, err := opt.NewProblem(opt.Monotonize(points))
	if err != nil {
		return err
	}
	c, err := opt.CompressMenu(prob, k)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d-version menu (rolled-up revenue %.4f = %.1f%% of the %d-point optimum):\n",
		len(c.Points), c.RolledUpRevenue, 100*c.Retention(), prob.N())
	for _, p := range c.Func.Points() {
		fmt.Fprintf(w, "  quality %8.4g -> price %10.4f\n", p.X, p.Price)
	}
	return nil
}

// parseTargets parses "x=price,x=price".
func parseTargets(raw string) ([]opt.PricePoint, error) {
	if raw == "" {
		return nil, fmt.Errorf("-points is required")
	}
	var out []opt.PricePoint
	for _, part := range strings.Split(raw, ",") {
		xs, ps, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad point %q (want x=price)", part)
		}
		x, err := strconv.ParseFloat(xs, 64)
		if err != nil {
			return nil, fmt.Errorf("bad quality in %q: %w", part, err)
		}
		p, err := strconv.ParseFloat(ps, 64)
		if err != nil {
			return nil, fmt.Errorf("bad price in %q: %w", part, err)
		}
		out = append(out, opt.PricePoint{X: x, Target: p})
	}
	return out, nil
}

// parseBuyerPoints parses "x=value:mass,..." (mass defaults to 1).
func parseBuyerPoints(raw string) ([]opt.BuyerPoint, error) {
	if raw == "" {
		return nil, fmt.Errorf("-points is required")
	}
	var out []opt.BuyerPoint
	for _, part := range strings.Split(raw, ",") {
		xs, rest, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad point %q (want x=value:mass)", part)
		}
		x, err := strconv.ParseFloat(xs, 64)
		if err != nil {
			return nil, fmt.Errorf("bad quality in %q: %w", part, err)
		}
		vs, ms, hasMass := strings.Cut(rest, ":")
		v, err := strconv.ParseFloat(vs, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q: %w", part, err)
		}
		mass := 1.0
		if hasMass {
			mass, err = strconv.ParseFloat(ms, 64)
			if err != nil {
				return nil, fmt.Errorf("bad mass in %q: %w", part, err)
			}
		}
		out = append(out, opt.BuyerPoint{X: x, Value: v, Mass: mass})
	}
	return out, nil
}
