package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nimbus/internal/dataset"
	"nimbus/internal/loadgen"
	"nimbus/internal/market"
	"nimbus/internal/ml"
	"nimbus/internal/perf"
	"nimbus/internal/pricing"
	"nimbus/internal/rng"
	"nimbus/internal/server"
)

// The traffic core's behaviour (pacing, determinism, error accounting) is
// tested in internal/loadgen; these tests cover the CLI shell — option
// plumbing and the three report renderings.

// newBrokerServer stands up a small one-offering broker behind the full
// production middleware, mirroring nimbusd's wiring.
func newBrokerServer(t *testing.T) *httptest.Server {
	t.Helper()
	d, err := dataset.StandIn("CASP", dataset.GenConfig{Rows: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := dataset.NewPair(d, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	seller, err := market.NewSeller(pair, market.Research{
		Value:  func(e float64) float64 { return 60 / (1 + e) },
		Demand: func(e float64) float64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	broker := market.NewBroker(13)
	if _, err := broker.List(market.OfferingConfig{
		Seller:  seller,
		Model:   ml.LinearRegression{Ridge: 1e-3},
		Grid:    pricing.DefaultGrid(12),
		Samples: 40,
		Seed:    14,
	}); err != nil {
		t.Fatal(err)
	}
	quiet := func(string, ...any) {}
	handler := server.New(broker, server.WithLogger(quiet))
	srv := httptest.NewServer(server.WithMiddleware(handler, quiet, nil))
	t.Cleanup(srv.Close)
	return srv
}

func baseOptions(url string) options {
	return options{
		Config: loadgen.Config{
			Concurrency: 2,
			Count:       30,
			Seed:        7,
		},
		BaseURL: url,
		Timeout: 10 * time.Second,
		Format:  "text",
	}
}

// TestRunTextReport checks the default rendering carries the headline
// numbers.
func TestRunTextReport(t *testing.T) {
	srv := newBrokerServer(t)
	var out bytes.Buffer
	if err := run(context.Background(), &out, baseOptions(srv.URL)); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"requests", "errors", "revenue", "latency", "p95"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}
}

// TestRunJSONReport checks -format json emits the plain loadgen report.
func TestRunJSONReport(t *testing.T) {
	srv := newBrokerServer(t)
	opt := baseOptions(srv.URL)
	opt.Format = "json"
	var out bytes.Buffer
	if err := run(context.Background(), &out, opt); err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Requests != 30 || rep.Errors != 0 {
		t.Errorf("requests=%d errors=%d, want 30 and 0", rep.Requests, rep.Errors)
	}
}

// TestRunPerfSchema checks -json emits a valid schema-versioned perf
// report whose load section matches the run — the same schema as the
// BENCH_<n>.json trajectory files.
func TestRunPerfSchema(t *testing.T) {
	srv := newBrokerServer(t)
	opt := baseOptions(srv.URL)
	opt.PerfJSON = true
	var out bytes.Buffer
	if err := run(context.Background(), &out, opt); err != nil {
		t.Fatal(err)
	}
	var rep perf.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("perf report is not JSON: %v\n%s", err, out.String())
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("emitted report fails the schema gate: %v\n%s", err, out.String())
	}
	if rep.SchemaVersion != perf.SchemaVersion {
		t.Errorf("schema_version = %d, want %d", rep.SchemaVersion, perf.SchemaVersion)
	}
	if rep.Load == nil || rep.Load.Requests != 30 {
		t.Errorf("load section = %+v, want 30 requests", rep.Load)
	}
	if rep.Load.Server != nil {
		t.Error("standalone run claims a server-side latency view it cannot have")
	}
	if len(rep.Micro) != 0 {
		t.Error("standalone load run should not carry micro results")
	}
	if rep.Env.GOOS == "" || rep.Env.NumCPU <= 0 {
		t.Errorf("fingerprint incomplete: %+v", rep.Env)
	}
}

// TestRunRejectsBadOptions covers the CLI validation paths.
func TestRunRejectsBadOptions(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*options)
	}{
		{"bad format", func(o *options) { o.Format = "xml" }},
		{"no concurrency", func(o *options) { o.Concurrency = 0 }},
		{"no bound", func(o *options) { o.Count = 0; o.Duration = 0 }},
		{"negative rate", func(o *options) { o.Rate = -5 }},
	} {
		opt := baseOptions("http://127.0.0.1:0")
		tc.mutate(&opt)
		if err := run(context.Background(), &bytes.Buffer{}, opt); err == nil {
			t.Errorf("%s: run accepted invalid options", tc.name)
		}
	}
}
