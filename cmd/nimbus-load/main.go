// Command nimbus-load drives a running Nimbus broker with synthetic buyer
// traffic: N concurrent closed-loop buyers mixing the paper's three purchase
// options (buy at quality, buy under an error budget, buy under a price
// budget) across every (offering, loss) curve on the menu. It reports
// throughput, error counts, and exact latency percentiles, so a deployment
// can be sized — and the /metrics series sanity-checked — before real buyers
// arrive. The traffic core lives in internal/loadgen, shared with the
// internal/perf trajectory harness.
//
// Usage:
//
//	nimbus-load -c 32 -duration 10s http://localhost:8080
//	nimbus-load -n 500 -format json http://localhost:8080
//	nimbus-load -n 500 -json http://localhost:8080   # perf-schema report
//	nimbus-load -markets CASP,SUSY -n 500 http://localhost:8080
//
// Against a multi-tenant daemon (nimbusd -data-dir), -markets spreads the
// buyers round-robin (from seeded offsets) across the named dataset
// markets' tenant-scoped routes; the per-market request counts land in the
// report.
//
// Budgets are derived from the live price–error curves (a random curve
// point's error or price, inflated by up to 50%), so every generated request
// is satisfiable, and the default -rate paces the aggregate request stream
// just under nimbusd's default per-client limit (50 req/s): a default run
// against a default broker finishes with zero non-2xx responses. Pass
// -rate 0 to uncork the buyers and probe the throttle path instead.
//
// -json emits the run as a schema-versioned internal/perf report (the same
// shape as the BENCH_<n>.json trajectory files, load section only), so a
// standalone load run can be archived next to — and compared against — the
// recorded trajectory.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"nimbus/internal/loadgen"
	"nimbus/internal/perf"
	"nimbus/internal/server"
)

// options collects the CLI knobs around the loadgen core.
type options struct {
	loadgen.Config
	BaseURL  string
	Timeout  time.Duration
	Format   string // text or json (the plain loadgen report)
	PerfJSON bool   // emit the internal/perf schema instead
}

func main() {
	var opt options
	flag.IntVar(&opt.Concurrency, "c", 8, "concurrent buyers")
	flag.DurationVar(&opt.Duration, "duration", 10*time.Second, "run length (ignored when -n is set)")
	flag.IntVar(&opt.Count, "n", 0, "total request count (0 = run for -duration)")
	flag.Int64Var(&opt.Seed, "seed", 1, "base seed for the replayable traffic mix (buyer i draws from an rng stream seeded with seed+i)")
	flag.StringVar(&opt.Format, "format", "text", "report format: text or json")
	flag.BoolVar(&opt.PerfJSON, "json", false, "emit a schema-versioned perf report (internal/perf schema, load section) instead of -format output")
	flag.DurationVar(&opt.Timeout, "timeout", 10*time.Second, "per-request timeout")
	flag.Float64Var(&opt.Rate, "rate", 40, "aggregate request rate cap in req/s (0 = closed-loop, as fast as responses return)")
	markets := flag.String("markets", "", "comma-separated dataset IDs: spread traffic round-robin across these tenant markets (multi-tenant daemons only; empty = legacy single-market routes)")
	flag.Parse()
	if *markets != "" {
		opt.Markets = splitMarkets(*markets)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: nimbus-load [flags] <base-url>")
		flag.Usage()
		os.Exit(2)
	}
	opt.BaseURL = flag.Arg(0)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Stdout, opt); err != nil {
		fmt.Fprintln(os.Stderr, "nimbus-load:", err)
		os.Exit(1)
	}
}

// run executes the load test and writes the report. It is the testable
// core: main only parses flags around it.
func run(ctx context.Context, w io.Writer, opt options) error {
	if opt.Format != "text" && opt.Format != "json" {
		return fmt.Errorf("unknown format %q (want text or json)", opt.Format)
	}
	httpClient := &http.Client{
		Timeout:   opt.Timeout,
		Transport: &http.Transport{MaxIdleConnsPerHost: opt.Concurrency},
	}
	client := &server.Client{BaseURL: opt.BaseURL, HTTPClient: httpClient}
	rep, err := loadgen.Run(ctx, client, opt.Config)
	if err != nil {
		return err
	}
	if opt.PerfJSON {
		return writePerfReport(w, rep, opt.Config)
	}
	return writeReport(w, opt.Format, rep)
}

// writePerfReport wraps the run in the internal/perf schema: environment
// fingerprint plus the load section. The server-side latency view is
// absent — the broker is remote, its registry out of reach.
func writePerfReport(w io.Writer, rep loadgen.Report, cfg loadgen.Config) error {
	load := perf.LoadResultFrom(rep, cfg)
	r := &perf.Report{
		SchemaVersion: perf.SchemaVersion,
		GeneratedBy:   "nimbus-load -json",
		Env:           perf.CaptureEnv(),
		Load:          &load,
	}
	if err := r.Validate(); err != nil {
		return fmt.Errorf("run produced an invalid perf report: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func writeReport(w io.Writer, format string, rep loadgen.Report) error {
	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(w, "requests   %d (%.1f/s over %.2fs)\n", rep.Requests, rep.QPS, rep.Elapsed)
	fmt.Fprintf(w, "errors     %d (%d non-2xx)\n", rep.Errors, rep.NonOK)
	fmt.Fprintf(w, "revenue    %.2f\n", rep.Revenue)
	fmt.Fprintf(w, "latency    min %s  mean %s  p50 %s  p95 %s  p99 %s  max %s\n",
		ms(rep.Min), ms(rep.Mean), ms(rep.P50), ms(rep.P95), ms(rep.P99), ms(rep.Max))
	opts := make([]string, 0, len(rep.ByOption))
	for k := range rep.ByOption {
		opts = append(opts, k)
	}
	sort.Strings(opts)
	for _, k := range opts {
		fmt.Fprintf(w, "  %-13s %d\n", k, rep.ByOption[k])
	}
	if rep.Markets > 0 {
		fmt.Fprintf(w, "markets    %d\n", rep.Markets)
		ids := make([]string, 0, len(rep.ByMarket))
		for id := range rep.ByMarket {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(w, "  %-13s %d\n", id, rep.ByMarket[id])
		}
	}
	return nil
}

// splitMarkets parses the -markets flag: comma-separated dataset IDs,
// whitespace-tolerant, blanks dropped (Config.Validate catches the rest).
func splitMarkets(s string) []string {
	var ids []string
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	return ids
}

func ms(seconds float64) string {
	return fmt.Sprintf("%.2fms", seconds*1e3)
}
