// Command nimbus-load drives a running Nimbus broker with synthetic buyer
// traffic: N concurrent closed-loop buyers mixing the paper's three purchase
// options (buy at quality, buy under an error budget, buy under a price
// budget) across every (offering, loss) curve on the menu. It reports
// throughput, error counts, and exact latency percentiles, so a deployment
// can be sized — and the /metrics series sanity-checked — before real buyers
// arrive.
//
// Usage:
//
//	nimbus-load -c 32 -duration 10s http://localhost:8080
//	nimbus-load -n 500 -format json http://localhost:8080
//
// Budgets are derived from the live price–error curves (a random curve
// point's error or price, inflated by up to 50%), so every generated request
// is satisfiable, and the default -rate paces the aggregate request stream
// just under nimbusd's default per-client limit (50 req/s): a default run
// against a default broker finishes with zero non-2xx responses. Pass
// -rate 0 to uncork the buyers and probe the throttle path instead.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nimbus/internal/rng"
	"nimbus/internal/server"
)

func main() {
	var cfg Config
	flag.IntVar(&cfg.Concurrency, "c", 8, "concurrent buyers")
	flag.DurationVar(&cfg.Duration, "duration", 10*time.Second, "run length (ignored when -n is set)")
	flag.IntVar(&cfg.Count, "n", 0, "total request count (0 = run for -duration)")
	flag.Int64Var(&cfg.Seed, "seed", 1, "base seed for the replayable traffic mix (buyer i draws from an rng stream seeded with seed+i)")
	flag.StringVar(&cfg.Format, "format", "text", "report format: text or json")
	flag.DurationVar(&cfg.Timeout, "timeout", 10*time.Second, "per-request timeout")
	flag.Float64Var(&cfg.Rate, "rate", 40, "aggregate request rate cap in req/s (0 = closed-loop, as fast as responses return)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: nimbus-load [flags] <base-url>")
		flag.Usage()
		os.Exit(2)
	}
	cfg.BaseURL = flag.Arg(0)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "nimbus-load:", err)
		os.Exit(1)
	}
}

// Config is one load run.
type Config struct {
	BaseURL     string
	Concurrency int
	Duration    time.Duration
	Count       int
	Seed        int64
	Format      string
	Timeout     time.Duration
	// Rate caps the aggregate request rate (req/s); 0 runs fully
	// closed-loop. The CLI default (40) stays under nimbusd's default
	// per-client rate limit so a stock run is never throttled.
	Rate float64
}

// Report is the run summary. All latencies are in seconds.
type Report struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`  // transport failures + non-2xx
	NonOK    int     `json:"non_2xx"` // the non-2xx subset
	Elapsed  float64 `json:"elapsed_seconds"`
	QPS      float64 `json:"qps"`
	Min      float64 `json:"latency_min_seconds"`
	Mean     float64 `json:"latency_mean_seconds"`
	P50      float64 `json:"latency_p50_seconds"`
	P95      float64 `json:"latency_p95_seconds"`
	P99      float64 `json:"latency_p99_seconds"`
	Max      float64 `json:"latency_max_seconds"`
	// ByOption counts completed requests per purchase option.
	ByOption map[string]int `json:"by_option"`
	// Revenue sums the prices of successful purchases, for cross-checking
	// against the broker's nimbus_revenue_total series.
	Revenue float64 `json:"revenue"`
}

// target is one (offering, loss) curve a buyer can shop on.
type target struct {
	offering string
	loss     string
	points   []curvePoint
}

type curvePoint struct {
	x, err, price float64
}

// workerResult is one buyer's tally, merged after the run.
type workerResult struct {
	latencies []float64
	byOption  map[string]int
	errs      int
	nonOK     int
	revenue   float64
}

var options = [...]string{"quality", "error-budget", "price-budget"}

// run executes the load test and writes the report. It is the testable
// core: main only parses flags around it.
func run(ctx context.Context, w io.Writer, cfg Config) error {
	if cfg.Concurrency <= 0 {
		return fmt.Errorf("concurrency %d must be positive", cfg.Concurrency)
	}
	if cfg.Count <= 0 && cfg.Duration <= 0 {
		return errors.New("need a positive -n or -duration")
	}
	if cfg.Format != "text" && cfg.Format != "json" {
		return fmt.Errorf("unknown format %q (want text or json)", cfg.Format)
	}
	if cfg.Rate < 0 {
		return fmt.Errorf("rate %v must be non-negative", cfg.Rate)
	}
	httpClient := &http.Client{
		Timeout:   cfg.Timeout,
		Transport: &http.Transport{MaxIdleConnsPerHost: cfg.Concurrency},
	}
	client := &server.Client{BaseURL: cfg.BaseURL, HTTPClient: httpClient}

	targets, err := loadTargets(ctx, client)
	if err != nil {
		return err
	}

	// Count mode claims request slots from a shared counter; duration mode
	// runs every buyer until the deadline.
	runCtx := ctx
	if cfg.Count <= 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}
	var issued atomic.Int64
	claim := func() bool {
		if runCtx.Err() != nil {
			return false
		}
		if cfg.Count > 0 {
			return issued.Add(1) <= int64(cfg.Count)
		}
		return true
	}

	// A shared ticker paces all buyers: each tick releases one request, so
	// the aggregate rate — not the per-worker rate — is what's capped.
	var tick <-chan time.Time
	if cfg.Rate > 0 {
		ticker := time.NewTicker(time.Duration(float64(time.Second) / cfg.Rate))
		defer ticker.Stop()
		tick = ticker.C
	}

	results := make([]workerResult, cfg.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = buyer(runCtx, client, targets, rng.New(cfg.Seed+int64(i)), claim, tick)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := merge(results, elapsed)
	// A caller-cancelled context (^C) is a clean early stop, not an error.
	if ctx.Err() != nil && rep.Requests == 0 {
		return ctx.Err()
	}
	return writeReport(w, cfg.Format, rep)
}

// loadTargets fetches the menu and every per-loss price–error curve.
func loadTargets(ctx context.Context, client *server.Client) ([]target, error) {
	menu, err := client.Menu(ctx)
	if err != nil {
		return nil, fmt.Errorf("fetching menu: %w", err)
	}
	if len(menu.Offerings) == 0 {
		return nil, errors.New("broker has an empty menu; nothing to buy")
	}
	var targets []target
	for _, o := range menu.Offerings {
		for _, loss := range o.Losses {
			curve, err := client.Curve(ctx, o.Name, loss)
			if err != nil {
				return nil, fmt.Errorf("fetching curve %s/%s: %w", o.Name, loss, err)
			}
			t := target{offering: o.Name, loss: loss}
			for _, p := range curve.Points {
				t.points = append(t.points, curvePoint{x: p.X, err: p.Error, price: p.Price})
			}
			if len(t.points) > 0 {
				targets = append(targets, t)
			}
		}
	}
	if len(targets) == 0 {
		return nil, errors.New("no offering has a non-empty price–error curve")
	}
	return targets, nil
}

// buyer is one closed-loop worker: claim a slot, pick a curve and option,
// buy, record, repeat.
func buyer(ctx context.Context, client *server.Client, targets []target, rnd *rng.Source, claim func() bool, tick <-chan time.Time) workerResult {
	res := workerResult{byOption: make(map[string]int)}
	for claim() {
		if tick != nil {
			select {
			case <-tick:
			case <-ctx.Done():
				return res
			}
		}
		t := targets[rnd.Intn(len(targets))]
		pt := t.points[rnd.Intn(len(t.points))]
		opt := options[rnd.Intn(len(options))]
		req := server.BuyRequest{Offering: t.offering, Loss: t.loss, Option: opt}
		switch opt {
		case "quality":
			req.Value = pt.x
		case "error-budget":
			// Any listed point's error is attainable; inflating it keeps
			// the request satisfiable while varying which point is bought.
			req.Value = pt.err * (1 + 0.5*rnd.Float64())
		case "price-budget":
			req.Value = pt.price * (1 + 0.5*rnd.Float64())
		}
		reqStart := time.Now()
		p, err := client.Buy(ctx, req)
		res.latencies = append(res.latencies, time.Since(reqStart).Seconds())
		res.byOption[opt]++
		if err != nil {
			if ctx.Err() != nil {
				// The deadline cut this request off mid-flight; drop it
				// rather than report a spurious failure.
				res.latencies = res.latencies[:len(res.latencies)-1]
				res.byOption[opt]--
				break
			}
			res.errs++
			var apiErr *server.APIError
			if errors.As(err, &apiErr) {
				res.nonOK++
			}
			continue
		}
		res.revenue += p.Price
	}
	return res
}

// merge folds the per-worker tallies into a report with exact percentiles
// (all latencies are kept and sorted — a load test's sample counts are small
// enough that estimation would be a needless loss of precision).
func merge(results []workerResult, elapsed time.Duration) Report {
	rep := Report{Elapsed: elapsed.Seconds(), ByOption: make(map[string]int)}
	var all []float64
	for _, r := range results {
		all = append(all, r.latencies...)
		rep.Errors += r.errs
		rep.NonOK += r.nonOK
		rep.Revenue += r.revenue
		for k, v := range r.byOption {
			rep.ByOption[k] += v
		}
	}
	rep.Requests = len(all)
	if rep.Requests == 0 {
		return rep
	}
	sort.Float64s(all)
	var sum float64
	for _, v := range all {
		sum += v
	}
	rep.QPS = float64(rep.Requests) / rep.Elapsed
	rep.Min = all[0]
	rep.Max = all[len(all)-1]
	rep.Mean = sum / float64(len(all))
	rep.P50 = percentile(all, 0.50)
	rep.P95 = percentile(all, 0.95)
	rep.P99 = percentile(all, 0.99)
	return rep
}

// percentile reads the q-th quantile off a sorted sample (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

func writeReport(w io.Writer, format string, rep Report) error {
	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(w, "requests   %d (%.1f/s over %.2fs)\n", rep.Requests, rep.QPS, rep.Elapsed)
	fmt.Fprintf(w, "errors     %d (%d non-2xx)\n", rep.Errors, rep.NonOK)
	fmt.Fprintf(w, "revenue    %.2f\n", rep.Revenue)
	fmt.Fprintf(w, "latency    min %s  mean %s  p50 %s  p95 %s  p99 %s  max %s\n",
		ms(rep.Min), ms(rep.Mean), ms(rep.P50), ms(rep.P95), ms(rep.P99), ms(rep.Max))
	opts := make([]string, 0, len(rep.ByOption))
	for k := range rep.ByOption {
		opts = append(opts, k)
	}
	sort.Strings(opts)
	for _, k := range opts {
		fmt.Fprintf(w, "  %-13s %d\n", k, rep.ByOption[k])
	}
	return nil
}

func ms(seconds float64) string {
	return fmt.Sprintf("%.2fms", seconds*1e3)
}
