// Command nimbus-cli is the buyer's terminal client for a running nimbusd
// broker, plus the operator's offline journal inspector.
//
//	nimbus-cli -addr http://localhost:8080 menu
//	nimbus-cli curve -offering Simulated1/linear-regression -loss squared
//	nimbus-cli buy -offering Simulated1/linear-regression -loss squared -option price-budget -value 25
//	nimbus-cli journal verify -dir /var/lib/nimbus/journal
//
// Against a multi-tenant daemon (nimbusd -data-dir), sellers manage their
// dataset markets:
//
//	nimbus-cli datasets
//	nimbus-cli list-dataset -id acme-houses -csv houses.csv -task regression -target price -owner acme
//	nimbus-cli delist-dataset -id acme-houses
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"nimbus/internal/journal"
	"nimbus/internal/registry"
	"nimbus/internal/server"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "broker base URL")
	flag.Parse()
	if err := run(*addr, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "nimbus-cli:", err)
		os.Exit(1)
	}
}

func run(addr string, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: nimbus-cli [-addr URL] <menu|curve|buy|stats|statement|datasets|list-dataset|delist-dataset|journal> [flags]")
	}
	client := server.NewClient(addr)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	switch cmd := args[0]; cmd {
	case "journal":
		// Offline: scans a journal directory on the local filesystem, no
		// broker required.
		if len(args) < 2 || args[1] != "verify" {
			return fmt.Errorf("usage: nimbus-cli journal verify -dir DIR [-json]")
		}
		fs := flag.NewFlagSet("journal verify", flag.ContinueOnError)
		dir := fs.String("dir", "", "journal directory (required)")
		asJSON := fs.Bool("json", false, "emit the report as JSON")
		if err := fs.Parse(args[2:]); err != nil {
			return err
		}
		if *dir == "" {
			return fmt.Errorf("journal verify: -dir is required")
		}
		rep, err := journal.Verify(*dir, nil)
		if err != nil {
			return err
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				return err
			}
		} else if err := rep.Write(os.Stdout); err != nil {
			return err
		}
		if rep.Err != "" {
			return fmt.Errorf("journal verify: unrecoverable: %s", rep.Err)
		}
		return nil

	case "stats":
		stats, err := client.Stats(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("offerings: %d\nsales:     %d\nrevenue:   %.2f\nfees:      %.2f\n",
			stats.Offerings, stats.Sales, stats.TotalRevenue, stats.BrokerFees)
		return nil

	case "statement":
		st, err := client.Statement(ctx)
		if err != nil {
			return err
		}
		return st.Write(os.Stdout)

	case "menu":
		menu, err := client.Menu(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("%-35s %-22s %-8s %-8s %-4s %s\n", "OFFERING", "MODEL", "TRAIN", "TEST", "D", "LOSSES")
		for _, o := range menu.Offerings {
			fmt.Printf("%-35s %-22s %-8d %-8d %-4d %v\n", o.Name, o.Model, o.TrainRows, o.TestRows, o.Features, o.Losses)
		}
		return nil

	case "curve":
		fs := flag.NewFlagSet("curve", flag.ContinueOnError)
		offering := fs.String("offering", "", "offering name (required)")
		loss := fs.String("loss", "", "reporting loss (required)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *offering == "" || *loss == "" {
			return fmt.Errorf("curve: -offering and -loss are required")
		}
		curve, err := client.Curve(ctx, *offering, *loss)
		if err != nil {
			return err
		}
		fmt.Printf("price-error curve for %s (%s)\n%10s %14s %12s\n", curve.Offering, curve.Loss, "1/NCP", "exp. error", "price")
		for _, p := range curve.Points {
			fmt.Printf("%10.2f %14.6f %12.4f\n", p.X, p.Error, p.Price)
		}
		return nil

	case "buy":
		fs := flag.NewFlagSet("buy", flag.ContinueOnError)
		offering := fs.String("offering", "", "offering name (required)")
		loss := fs.String("loss", "", "reporting loss (required)")
		option := fs.String("option", "price-budget", "quality, error-budget or price-budget")
		value := fs.Float64("value", 0, "quality / error budget / price budget")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *offering == "" || *loss == "" {
			return fmt.Errorf("buy: -offering and -loss are required")
		}
		p, err := client.Buy(ctx, server.BuyRequest{
			Offering: *offering, Loss: *loss, Option: *option, Value: *value,
		})
		if err != nil {
			return err
		}
		fmt.Printf("purchased %s (%s)\n  quality 1/NCP : %.4f\n  NCP δ         : %.6f\n  price         : %.4f\n  expected error: %.6f\n  weights (%d)  : %.4f...\n",
			p.Offering, p.Loss, p.X, p.NCP, p.Price, p.ExpectedError, len(p.Weights), p.Weights[0])
		return nil

	case "datasets":
		ds, err := client.Datasets(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %-15s %-24s %-6s %10s\n", "DATASET", "OWNER", "SOURCE", "SALES", "GROSS")
		for _, d := range ds.Datasets {
			fmt.Printf("%-20s %-15s %-24s %-6d %10.2f\n", d.ID, d.Owner, d.Source, d.Sales, d.Gross)
		}
		fmt.Printf("%d market(s), %d sale(s), gross %.2f\n", ds.Markets, ds.Sales, ds.Gross)
		return nil

	case "list-dataset":
		fs := flag.NewFlagSet("list-dataset", flag.ContinueOnError)
		var spec registry.Spec
		fs.StringVar(&spec.ID, "id", "", "dataset ID, unique among live markets (required)")
		fs.StringVar(&spec.Owner, "owner", "", "seller the market's payouts accrue to")
		fs.StringVar(&spec.Generator, "generator", "", "built-in dataset source (mutually exclusive with -csv)")
		csvPath := fs.String("csv", "", "CSV file to upload as the dataset (mutually exclusive with -generator)")
		fs.StringVar(&spec.Task, "task", "", "regression or classification (CSV sources)")
		fs.StringVar(&spec.Target, "target", "", "label column name (CSV sources)")
		fs.StringVar(&spec.Model, "model", "", "linear-regression, logistic-regression or auto (default: task default)")
		fs.IntVar(&spec.Rows, "rows", 0, "generated dataset size (generator sources)")
		fs.IntVar(&spec.Grid, "grid", 0, "offered quality grid size")
		fs.IntVar(&spec.Samples, "samples", 0, "Monte-Carlo models per grid point")
		fs.Int64Var(&spec.Seed, "seed", 0, "seed for generation, split and curve estimation")
		fs.Float64Var(&spec.ValueScale, "value-scale", 0, "seller research: buyers value an error-e model at scale/(1+e)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if spec.ID == "" {
			return fmt.Errorf("list-dataset: -id is required")
		}
		req := server.ListDatasetRequest{Spec: spec}
		if *csvPath != "" {
			data, err := os.ReadFile(*csvPath)
			if err != nil {
				return fmt.Errorf("list-dataset: %w", err)
			}
			req.CSV = true
			req.Data = string(data)
		}
		d, err := client.ListDataset(ctx, req)
		if err != nil {
			return err
		}
		fmt.Printf("listed %s (%s)\n  offerings: %v\n", d.Spec.ID, d.Spec.Source(), d.Offerings)
		return nil

	case "delist-dataset":
		fs := flag.NewFlagSet("delist-dataset", flag.ContinueOnError)
		id := fs.String("id", "", "dataset ID (required)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *id == "" {
			return fmt.Errorf("delist-dataset: -id is required")
		}
		st, err := client.DelistDataset(ctx, *id)
		if err != nil {
			return err
		}
		fmt.Printf("delisted %s — final statement:\n", *id)
		return st.Write(os.Stdout)

	default:
		return fmt.Errorf("unknown command %q (want menu, curve, buy, stats, statement, datasets, list-dataset, delist-dataset or journal)", cmd)
	}
}
