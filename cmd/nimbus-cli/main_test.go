package main

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"nimbus/internal/dataset"
	"nimbus/internal/journal"
	"nimbus/internal/market"
	"nimbus/internal/ml"
	"nimbus/internal/pricing"
	"nimbus/internal/registry"
	"nimbus/internal/rng"
	"nimbus/internal/server"
)

func startBroker(t *testing.T) (string, string) {
	t.Helper()
	d, err := dataset.StandIn("CASP", dataset.GenConfig{Rows: 200, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := dataset.NewPair(d, rng.New(72))
	if err != nil {
		t.Fatal(err)
	}
	seller, err := market.NewSeller(pair, market.Research{
		Value:  func(e float64) float64 { return 60 / (1 + e) },
		Demand: func(e float64) float64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	broker := market.NewBroker(73)
	o, err := broker.List(market.OfferingConfig{
		Seller: seller, Model: ml.LinearRegression{Ridge: 1e-3},
		Grid: pricing.DefaultGrid(8), Samples: 30, Seed: 74,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.New(broker, server.WithLogger(func(string, ...any) {})))
	t.Cleanup(srv.Close)
	return srv.URL, o.Name
}

func TestCLICommands(t *testing.T) {
	addr, offering := startBroker(t)

	if err := run(addr, []string{"menu"}); err != nil {
		t.Fatalf("menu: %v", err)
	}
	if err := run(addr, []string{"stats"}); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if err := run(addr, []string{"statement"}); err != nil {
		t.Fatalf("statement: %v", err)
	}
	if err := run(addr, []string{"curve", "-offering", offering, "-loss", "squared"}); err != nil {
		t.Fatalf("curve: %v", err)
	}
	if err := run(addr, []string{"buy", "-offering", offering, "-loss", "squared", "-option", "quality", "-value", "3"}); err != nil {
		t.Fatalf("buy: %v", err)
	}
}

// TestCLIDatasetCommands walks a seller's lifecycle against a multi-tenant
// daemon: list a CSV dataset, browse the marketplace, delist it.
func TestCLIDatasetCommands(t *testing.T) {
	r, err := registry.Open(registry.Config{Commission: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	srv := httptest.NewServer(server.NewMulti(r, server.WithLogger(func(string, ...any) {})))
	t.Cleanup(srv.Close)

	csvPath := filepath.Join(t.TempDir(), "houses.csv")
	var buf []byte
	buf = append(buf, "sqft,age,price\n"...)
	for i := 0; i < 120; i++ {
		buf = append(buf, fmt.Sprintf("%d,%d,%d\n", 800+7*i, i%40, 50000+93*i)...)
	}
	if err := os.WriteFile(csvPath, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run(srv.URL, []string{"list-dataset",
		"-id", "acme-houses", "-owner", "acme",
		"-csv", csvPath, "-task", "regression", "-target", "price",
		"-grid", "8", "-samples", "24", "-seed", "5"}); err != nil {
		t.Fatalf("list-dataset: %v", err)
	}
	if err := run(srv.URL, []string{"datasets"}); err != nil {
		t.Fatalf("datasets: %v", err)
	}
	if err := run(srv.URL, []string{"buy", "-offering", "acme-houses/linear-regression",
		"-loss", "squared", "-option", "quality", "-value", "2"}); err != nil {
		t.Fatalf("buy from listed dataset: %v", err)
	}
	if err := run(srv.URL, []string{"delist-dataset", "-id", "acme-houses"}); err != nil {
		t.Fatalf("delist-dataset: %v", err)
	}
	if r.Count() != 0 {
		t.Fatalf("market still live after delist: %d", r.Count())
	}

	// Flag validation and server-side failures surface as errors.
	for i, args := range [][]string{
		{"list-dataset"}, // missing -id
		{"list-dataset", "-id", "x", "-csv", filepath.Join(t.TempDir(), "missing.csv")}, // unreadable file
		{"delist-dataset"},                       // missing -id
		{"delist-dataset", "-id", "acme-houses"}, // already gone -> 404
	} {
		if err := run(srv.URL, args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestCLIJournalVerify(t *testing.T) {
	dir := t.TempDir()
	j, err := journal.Open(dir, journal.Options{Sync: journal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Healthy journal: verify succeeds, in both text and JSON form.
	if err := run("http://unused", []string{"journal", "verify", "-dir", dir}); err != nil {
		t.Fatalf("verify clean journal: %v", err)
	}
	if err := run("http://unused", []string{"journal", "verify", "-dir", dir, "-json"}); err != nil {
		t.Fatalf("verify -json: %v", err)
	}

	// Corrupt a payload byte mid-stream: verify must exit non-zero.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	buf, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	buf[9] ^= 0xff
	if err := os.WriteFile(segs[0], buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("http://unused", []string{"journal", "verify", "-dir", dir}); err == nil {
		t.Fatal("verify accepted a corrupt journal")
	}

	// Missing flags.
	if err := run("http://unused", []string{"journal"}); err == nil {
		t.Fatal("journal without subcommand accepted")
	}
	if err := run("http://unused", []string{"journal", "verify"}); err == nil {
		t.Fatal("journal verify without -dir accepted")
	}
}

func TestCLIErrors(t *testing.T) {
	addr, offering := startBroker(t)
	cases := [][]string{
		{},                               // no command
		{"teleport"},                     // unknown command
		{"curve"},                        // missing flags
		{"curve", "-offering", offering}, // missing loss
		{"buy"},                          // missing flags
		{"buy", "-offering", offering, "-loss", "squared", "-option", "error-budget", "-value", "0"}, // unattainable
		{"buy", "-offering", "ghost", "-loss", "squared", "-option", "quality", "-value", "1"},       // 404
	}
	for i, args := range cases {
		if err := run(addr, args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}
