package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nimbus/internal/dataset"
)

func TestRunWritesAllDatasets(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 1e-9, 7, "", false); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 12 { // 6 datasets × train/test
		t.Fatalf("wrote %d files", len(entries))
	}
	// Round-trip one file through the library loader.
	f, err := os.Open(filepath.Join(dir, "CASP.train.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := dataset.ReadCSV(f, "CASP", dataset.Regression, "target")
	if err != nil {
		t.Fatal(err)
	}
	if ds.D() != 9 || ds.N() == 0 {
		t.Fatalf("reloaded shape %dx%d", ds.N(), ds.D())
	}
}

func TestRunOnlyFilter(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 1e-9, 7, "Simulated1, CASP", true); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("wrote %d files", len(entries))
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "Simulated1.") && !strings.HasPrefix(e.Name(), "CASP.") {
			t.Fatalf("unexpected file %s", e.Name())
		}
	}
}

func TestRunUnknownFilter(t *testing.T) {
	if err := run(t.TempDir(), 1e-9, 7, "Nothing", false); err == nil {
		t.Fatal("unknown dataset filter accepted")
	}
	if err := runStream(t.TempDir(), 1e-9, 7, "Nothing"); err == nil {
		t.Fatal("unknown stream filter accepted")
	}
}

func TestRunStream(t *testing.T) {
	dir := t.TempDir()
	if err := runStream(dir, 1e-9, 7, "SUSY"); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "SUSY.train.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := dataset.ReadCSV(f, "SUSY", dataset.Classification, "target")
	if err != nil {
		t.Fatal(err)
	}
	if ds.D() != 18 || ds.N() != 48 { // 64 rows × 3/4
		t.Fatalf("streamed shape %dx%d", ds.N(), ds.D())
	}
}
