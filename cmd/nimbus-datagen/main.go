// Command nimbus-datagen materializes the paper's evaluation datasets
// (Table 3) as CSV files, for inspection or for use by external tools. Each
// dataset is written as <name>.train.csv and <name>.test.csv with a header
// row and a trailing "target" column.
//
//	nimbus-datagen -out ./data -scale 0.001 -seed 42
//	nimbus-datagen -out ./data -only Simulated1,CASP
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nimbus/internal/dataset"
)

func main() {
	var (
		out      = flag.String("out", ".", "output directory (created if missing)")
		scale    = flag.Float64("scale", 1e-3, "Table 3 row-count scale (1.0 = paper size)")
		seed     = flag.Int64("seed", 42, "random seed")
		only     = flag.String("only", "", "comma-separated dataset names to emit (default: all six)")
		stream   = flag.Bool("stream", false, "write row-by-row with O(d) memory (use for -scale near 1.0); train and test come from independent streams")
		describe = flag.Bool("describe", false, "also print per-column statistics for each written dataset")
	)
	flag.Parse()
	var err error
	if *stream {
		err = runStream(*out, *scale, *seed, *only)
	} else {
		err = run(*out, *scale, *seed, *only, *describe)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nimbus-datagen:", err)
		os.Exit(1)
	}
}

// runStream writes each dataset with the O(d)-memory streaming generator.
// The train and test files use independent seeds (a streamed generator
// cannot shuffle), which preserves the IID train/test semantics.
func runStream(outDir string, scale float64, seed int64, only string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("creating %s: %w", outDir, err)
	}
	keep := map[string]bool{}
	if only != "" {
		for _, name := range strings.Split(only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
	}
	wrote := 0
	for _, name := range []string{"Simulated1", "YearMSD", "CASP", "Simulated2", "CovType", "SUSY"} {
		if len(keep) > 0 && !keep[name] {
			continue
		}
		total := dataset.Table3Rows(name, scale)
		train := total * 3 / 4
		for i, part := range []struct {
			suffix string
			rows   int
		}{{"train", train}, {"test", total - train}} {
			path := filepath.Join(outDir, fmt.Sprintf("%s.%s.csv", name, part.suffix))
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("creating %s: %w", path, err)
			}
			if err := dataset.StreamCSV(f, name, part.rows, seed+int64(i)); err != nil {
				//lint:ignore no-dropped-error best-effort cleanup; the stream error above is what gets reported
				f.Close()
				return fmt.Errorf("streaming %s: %w", path, err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("closing %s: %w", path, err)
			}
			fmt.Printf("wrote %s (%d rows, streamed)\n", path, part.rows)
			wrote++
		}
	}
	if wrote == 0 {
		return fmt.Errorf("no datasets matched %q", only)
	}
	return nil
}

func run(outDir string, scale float64, seed int64, only string, describe bool) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("creating %s: %w", outDir, err)
	}
	keep := map[string]bool{}
	if only != "" {
		for _, name := range strings.Split(only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
	}
	pairs, err := dataset.Suite(scale, seed)
	if err != nil {
		return err
	}
	wrote := 0
	for _, pair := range pairs {
		if len(keep) > 0 && !keep[pair.Name] {
			continue
		}
		for suffix, ds := range map[string]*dataset.Dataset{"train": pair.Train, "test": pair.Test} {
			path := filepath.Join(outDir, fmt.Sprintf("%s.%s.csv", pair.Name, suffix))
			if err := writeCSV(path, ds); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d rows, %d features)\n", path, ds.N(), ds.D())
			if describe {
				summary, err := ds.Describe()
				if err != nil {
					return err
				}
				if err := summary.Write(os.Stdout); err != nil {
					return err
				}
			}
			wrote++
		}
	}
	if wrote == 0 {
		return fmt.Errorf("no datasets matched %q", only)
	}
	return nil
}

func writeCSV(path string, ds *dataset.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s: %w", path, err)
	}
	if err := ds.WriteCSV(f); err != nil {
		//lint:ignore no-dropped-error best-effort cleanup; the write error above is what gets reported
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", path, err)
	}
	return nil
}
