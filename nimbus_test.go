package nimbus

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"
)

// TestEndToEndMarketplace walks the full public-API story: generate data,
// list an offering, buy through every option, and check the receipts.
func TestEndToEndMarketplace(t *testing.T) {
	d := Simulated1(GenConfig{Rows: 600, Seed: 100})
	pair, err := NewPair(d, NewRand(101))
	if err != nil {
		t.Fatal(err)
	}
	seller, err := NewSeller(pair, Research{
		Value:  func(e float64) float64 { return 90 / (1 + e) },
		Demand: func(e float64) float64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	broker := NewBroker(102)
	offering, err := broker.List(OfferingConfig{
		Seller:  seller,
		Model:   LinearRegression{Ridge: 1e-4},
		Grid:    DefaultGrid(12),
		Samples: 60,
		Seed:    103,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := offering.VerifySLA(); err != nil {
		t.Fatal(err)
	}

	buyer, err := NewBuyer("carol", 1e6)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := buyer.BuyAtQuality(broker, offering.Name, "squared", 5)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := buyer.BuyWithErrorBudget(broker, offering.Name, "squared", p1.ExpectedError)
	if err != nil {
		t.Fatal(err)
	}
	if p2.ExpectedError > p1.ExpectedError+1e-9 {
		t.Fatal("error budget violated")
	}
	if _, err := buyer.BuyBest(broker, offering.Name, "squared"); err != nil {
		t.Fatal(err)
	}
	if len(buyer.Purchases()) != 3 || len(broker.Sales()) != 3 {
		t.Fatalf("receipts: buyer %d broker %d", len(buyer.Purchases()), len(broker.Sales()))
	}
	if broker.TotalRevenue() <= 0 {
		t.Fatal("no revenue recorded")
	}
}

// TestEndToEndHTTP drives the same flow over the HTTP facade.
func TestEndToEndHTTP(t *testing.T) {
	d, err := StandIn("CASP", GenConfig{Rows: 200, Seed: 110})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := NewPair(d, NewRand(111))
	if err != nil {
		t.Fatal(err)
	}
	seller, err := NewSeller(pair, Research{
		Value:  func(e float64) float64 { return 50 / (1 + e) },
		Demand: func(e float64) float64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	broker := NewBroker(112)
	offering, err := broker.List(OfferingConfig{
		Seller: seller, Model: LinearRegression{Ridge: 1e-3},
		Grid: DefaultGrid(8), Samples: 40, Seed: 113,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(broker))
	defer srv.Close()

	client := NewClient(srv.URL)
	menu, err := client.Menu(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(menu.Offerings) != 1 {
		t.Fatalf("menu %+v", menu)
	}
	curve, err := client.Curve(context.Background(), offering.Name, "squared")
	if err != nil {
		t.Fatal(err)
	}
	top := curve.Points[len(curve.Points)-1]
	p, err := client.Buy(context.Background(), BuyRequest{
		Offering: offering.Name, Loss: "squared", Option: "price-budget", Value: top.Price,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Price-top.Price) > 1e-6 {
		t.Fatalf("price-budget purchase %v, want top %v", p.Price, top.Price)
	}
}

// TestPublicPricingAPI exercises the re-exported optimizer surface.
func TestPublicPricingAPI(t *testing.T) {
	prob, err := NewRevenueProblem([]BuyerPoint{
		{X: 1, Value: 100, Mass: 0.25},
		{X: 2, Value: 150, Mass: 0.25},
		{X: 3, Value: 280, Mass: 0.25},
		{X: 4, Value: 350, Mass: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, rev, err := MaximizeRevenueDP(prob)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rev-193.75) > 1e-9 {
		t.Fatalf("revenue %v", rev)
	}
	if err := CheckSubadditiveOnGrid(f.Price, 8, 40); err != nil {
		t.Fatal(err)
	}
	if err := CheckMonotoneOnGrid(f.Price, 8, 40); err != nil {
		t.Fatal(err)
	}
	_, bfRev, err := MaximizeRevenueBruteForce(prob)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bfRev-200) > 1e-9 {
		t.Fatalf("brute force revenue %v", bfRev)
	}
	g, err := InterpolateL2([]InterpTarget{{X: 1, Target: 10}, {X: 2, Target: 25}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Validate() != nil {
		t.Fatal("interpolated function not arbitrage-free")
	}
}

// TestPublicExtensions exercises the future-work surface of the facade:
// model selection, DP accounting, the affordability frontier and aggregate
// pricing.
func TestPublicExtensions(t *testing.T) {
	// Model selection on the classification menu.
	d := Simulated2(GenConfig{Rows: 400, Seed: 130})
	best, results, err := SelectModel(d, DefaultCandidates(Classification), ZeroOneLoss{}, 3, NewRand(131))
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || len(results) != 3 {
		t.Fatalf("selection: %v, %d results", best, len(results))
	}

	// Privacy accounting round trip.
	sens, err := ERMSensitivity(1, 0.02, 50000)
	if err != nil {
		t.Fatal(err)
	}
	ncp, err := NCPForDP(0.5, d.D(), sens, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	guarantee, err := GaussianDPEpsilon(ncp, d.D(), sens, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(guarantee.Epsilon-0.5) > 1e-12 {
		t.Fatalf("DP round trip: %v", guarantee)
	}

	// Affordability-constrained pricing.
	prob, err := NewRevenueProblem([]BuyerPoint{
		{X: 1, Value: 1, Mass: 1}, {X: 50, Value: 25, Mass: 1}, {X: 100, Value: 100, Mass: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	fair, err := MaximizeRevenueWithAffordability(prob, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fair.Affordability < 1 {
		t.Fatalf("affordability %v", fair.Affordability)
	}
	frontier, err := AffordabilityFrontier(prob, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) != 3 {
		t.Fatalf("frontier %v", frontier)
	}

	// Menu compression through the facade.
	menu, err := CompressMenu(prob, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(menu.Points) != 2 || menu.Func.Validate() != nil {
		t.Fatalf("compressed menu %+v", menu.Points)
	}

	// Metric reports through the facade.
	reg := Simulated1(GenConfig{Rows: 200, Seed: 133})
	wFit, err := LinearRegression{}.Fit(reg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := EvaluateRegression(wFit, reg)
	if err != nil {
		t.Fatal(err)
	}
	if report.R2 < 0.999 {
		t.Fatalf("R² %v on noiseless data", report.R2)
	}

	// Aggregate pricing (Example 1).
	agg, err := NewAggregateOffering(AggregateConfig{
		Data:   d,
		Column: 0,
		Value:  func(e float64) float64 { return 5 / (1 + e) },
		Demand: func(e float64) float64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.PriceFunc.Validate(); err != nil {
		t.Fatal(err)
	}
	got, price, err := agg.Sell(10, NewRand(132))
	if err != nil {
		t.Fatal(err)
	}
	if price <= 0 {
		t.Fatalf("aggregate price %v", price)
	}
	if math.Abs(got-agg.TrueAverage) > 0.2 {
		t.Fatalf("aggregate sample %v far from %v", got, agg.TrueAverage)
	}
}
