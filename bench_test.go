package nimbus

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each benchmark runs
// the same code path `cmd/nimbus-bench` uses to print the corresponding
// series, so `go test -bench=.` regenerates every experiment end to end.

import (
	"fmt"
	"testing"

	"nimbus/internal/dataset"
	"nimbus/internal/experiments"
	"nimbus/internal/ml"
	"nimbus/internal/noise"
	"nimbus/internal/opt"
	"nimbus/internal/rng"
)

// BenchmarkTable3TrainAll generates all six Table 3 datasets (at laptop
// scale) and trains the paper's model on each.
func BenchmarkTable3TrainAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pairs, err := dataset.Suite(2e-4, 42)
		if err != nil {
			b.Fatal(err)
		}
		for _, pair := range pairs {
			var trainErr error
			switch pair.Train.Task {
			case dataset.Regression:
				_, trainErr = ml.LinearRegression{Ridge: 1e-4}.Fit(pair.Train)
			case dataset.Classification:
				_, trainErr = ml.LogisticRegression{Ridge: 1e-4}.Fit(pair.Train)
			}
			if trainErr != nil {
				b.Fatal(trainErr)
			}
		}
	}
}

// BenchmarkFig5Example regenerates the worked revenue-optimization example.
func BenchmarkFig5Example(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6ErrorTransformation regenerates the error-transformation
// curves for all six datasets and all three reporting losses.
func BenchmarkFig6ErrorTransformation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6(experiments.Fig6Config{
			Scale: 2e-4, GridN: 10, Samples: 50, Seed: 7,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7RevenueVaryValue regenerates the fixed-demand, varying-value
// revenue/affordability panels (Figure 7; Figure 11 runs all curve pairs).
func BenchmarkFig7RevenueVaryValue(b *testing.B) {
	demand, err := experiments.DemandCurve("uniform")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunRevenueGain(experiments.ValueCurves(), []experiments.CurveSpec{demand}, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8RevenueVaryDemand regenerates the fixed-value,
// varying-demand panels (Figure 8; Figure 12 runs all curve pairs).
func BenchmarkFig8RevenueVaryDemand(b *testing.B) {
	value, err := experiments.ValueCurve("sigmoid")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunRevenueGain([]experiments.CurveSpec{value}, experiments.DemandCurves(), 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11AllValueDemandPanels regenerates the appendix's full grid
// of value-curve panels (Figure 11).
func BenchmarkFig11AllValueDemandPanels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunRevenueGain(experiments.ValueCurves(), experiments.DemandCurves(), 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12DemandPanelsFineGrid regenerates the appendix demand-panel
// sweep (Figure 12) on a denser 200-point grid.
func BenchmarkFig12DemandPanelsFineGrid(b *testing.B) {
	value, err := experiments.ValueCurve("concave")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunRevenueGain([]experiments.CurveSpec{value}, experiments.DemandCurves(), 200); err != nil {
			b.Fatal(err)
		}
	}
}

// fig9Sweep shares the runtime-figure setup across Figures 9/10/13/14.
func fig9Sweep(b *testing.B, valueName, demandName string, ns []int) {
	b.Helper()
	value, err := experiments.ValueCurve(valueName)
	if err != nil {
		b.Fatal(err)
	}
	demand, err := experiments.DemandCurve(demandName)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunRuntime(value, demand, ns); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9RuntimeMBPvsMILP regenerates the runtime sweep with fixed
// demand and a convex value curve (Figure 9).
func BenchmarkFig9RuntimeMBPvsMILP(b *testing.B) {
	fig9Sweep(b, "convex", "uniform", []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
}

// BenchmarkFig10RuntimeVaryDemand regenerates the runtime sweep with fixed
// value and center-peaked demand (Figure 10).
func BenchmarkFig10RuntimeVaryDemand(b *testing.B) {
	fig9Sweep(b, "sigmoid", "center", []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
}

// BenchmarkFig13RuntimeConcaveValue is the appendix runtime panel with a
// concave value curve (Figure 13).
func BenchmarkFig13RuntimeConcaveValue(b *testing.B) {
	fig9Sweep(b, "concave", "extremes", []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
}

// BenchmarkFig14RuntimeSkewDemand is the appendix runtime panel with
// skewed demand (Figure 14).
func BenchmarkFig14RuntimeSkewDemand(b *testing.B) {
	fig9Sweep(b, "linear", "decreasing", []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
}

// BenchmarkAblationRelaxationGap measures the DP-vs-exact revenue ratio
// (DESIGN.md ablation 1).
func BenchmarkAblationRelaxationGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunRelaxationGap(8)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Ratio < 0.5 {
				b.Fatalf("relaxation ratio %v below guarantee", r.Ratio)
			}
		}
	}
}

// BenchmarkAblationErrorInverse compares the analytic error transformation
// with Monte Carlo (DESIGN.md ablation 2).
func BenchmarkAblationErrorInverse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunErrorInverseAblation(2e-4, 200, 9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTrainers compares the closed-form/Newton trainers with
// gradient descent (DESIGN.md ablation 3).
func BenchmarkAblationTrainers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTrainerAblation(2e-4, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDPScaling verifies the O(n²) behaviour of Algorithm 1 directly.
func BenchmarkDPScaling(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			value, _ := experiments.ValueCurve("sigmoid")
			demand, _ := experiments.DemandCurve("uniform")
			pts, err := experiments.GridPoints(value, demand, n)
			if err != nil {
				b.Fatal(err)
			}
			prob, err := opt.NewProblem(pts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := opt.MaximizeRevenueDP(prob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBruteForceScaling shows the exponential blow-up of Algorithm 2
// (the other half of Figure 9's headline).
func BenchmarkBruteForceScaling(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			value, _ := experiments.ValueCurve("convex")
			demand, _ := experiments.DemandCurve("uniform")
			pts, err := experiments.GridPoints(value, demand, n)
			if err != nil {
				b.Fatal(err)
			}
			prob, err := opt.NewProblem(pts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := opt.MaximizeRevenueBruteForce(prob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPopulationSimulation runs the buyer-stream validation of the
// expected-revenue model.
func BenchmarkPopulationSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunPopulation("sigmoid", "center", 50, 50000, 13); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAffordabilityFrontier traces the fairness extension's
// revenue/affordability curve.
func BenchmarkAffordabilityFrontier(b *testing.B) {
	value, _ := experiments.ValueCurve("convex")
	demand, _ := experiments.DemandCurve("uniform")
	pts, err := experiments.GridPoints(value, demand, 60)
	if err != nil {
		b.Fatal(err)
	}
	prob, err := opt.NewProblem(pts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.AffordabilityFrontier(prob, 6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMenuCompression runs the greedy grouped-DP menu study.
func BenchmarkMenuCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunMenuStudy("sigmoid", "uniform", 40, []int{1, 3, 5})
		if err != nil {
			b.Fatal(err)
		}
		// Retention in k is not guaranteed monotone under roll-up demand
		// (a new cheap version can cannibalize upgrades); just sanity-check
		// that menus sell at all.
		if points[0].Retention <= 0 {
			b.Fatal("single-version menu sold nothing")
		}
	}
}

// BenchmarkABTestLiveMarket runs the full-pipeline A/B comparison (MBP vs
// OptC) with a simulated buyer stream through real brokers.
func BenchmarkABTestLiveMarket(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunABTest(experiments.ABConfig{Buyers: 2000, Seed: 17})
		if err != nil {
			b.Fatal(err)
		}
		if res.RevenueMBP < res.RevenueBase {
			b.Fatal("MBP lost the live A/B test")
		}
	}
}

// BenchmarkGaussianMechanism measures per-sale noise-injection cost — the
// broker's real-time path.
func BenchmarkGaussianMechanism(b *testing.B) {
	src := rng.New(1)
	optimal := src.NormalVec(90, 1) // YearMSD dimensionality
	mech := noise.Gaussian{}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mech.Perturb(optimal, 0.5, src)
	}
}

// BenchmarkBrokerPurchase measures the end-to-end sale latency including
// ledger bookkeeping, via the public API.
func BenchmarkBrokerPurchase(b *testing.B) {
	d, err := StandIn("CASP", GenConfig{Rows: 200, Seed: 120})
	if err != nil {
		b.Fatal(err)
	}
	pair, err := NewPair(d, NewRand(121))
	if err != nil {
		b.Fatal(err)
	}
	seller, err := NewSeller(pair, Research{
		Value:  func(e float64) float64 { return 50 / (1 + e) },
		Demand: func(e float64) float64 { return 1 },
	})
	if err != nil {
		b.Fatal(err)
	}
	broker := NewBroker(122)
	offering, err := broker.List(OfferingConfig{
		Seller: seller, Model: LinearRegression{Ridge: 1e-3},
		Grid: DefaultGrid(10), Samples: 30, Seed: 123,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := broker.BuyAtQuality(offering.Name, "squared", 5); err != nil {
			b.Fatal(err)
		}
	}
}
