package nimbus_test

import (
	"fmt"

	"nimbus"
)

// The paper's Figure 5 market: four versions, valuations 100/150/280/350.
func ExampleMaximizeRevenueDP() {
	prob, err := nimbus.NewRevenueProblem([]nimbus.BuyerPoint{
		{X: 1, Value: 100, Mass: 0.25},
		{X: 2, Value: 150, Mass: 0.25},
		{X: 3, Value: 280, Mass: 0.25},
		{X: 4, Value: 350, Mass: 0.25},
	})
	if err != nil {
		panic(err)
	}
	f, revenue, err := nimbus.MaximizeRevenueDP(prob)
	if err != nil {
		panic(err)
	}
	fmt.Printf("revenue %.2f, arbitrage-free %v\n", revenue, f.Validate() == nil)
	for _, p := range f.Points() {
		fmt.Printf("quality %.0f -> price %.2f\n", p.X, p.Price)
	}
	// Output:
	// revenue 193.75, arbitrage-free true
	// quality 1 -> price 100.00
	// quality 2 -> price 150.00
	// quality 3 -> price 225.00
	// quality 4 -> price 300.00
}

// Detecting arbitrage in hand-set prices: doubling the quality more than
// doubles the price, so two cheap copies undercut the expensive version.
func ExampleNewPriceFunction() {
	f, err := nimbus.NewPriceFunction([]nimbus.PricePointXY{
		{X: 1, Price: 10},
		{X: 2, Price: 25},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("arbitrage-free:", f.Validate() == nil)
	// Output:
	// arbitrage-free: false
}

// The coNP-hard SUBADDITIVE INTERPOLATION decision (Definition 6),
// decidable instantly at marketplace sizes.
func ExampleSubadditiveInterpolationFeasible() {
	feasible, err := nimbus.SubadditiveInterpolationFeasible([]nimbus.InterpTarget{
		{X: 1, Target: 10}, {X: 2, Target: 15},
	})
	if err != nil {
		panic(err)
	}
	infeasible, err := nimbus.SubadditiveInterpolationFeasible([]nimbus.InterpTarget{
		{X: 1, Target: 10}, {X: 2, Target: 25},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(feasible, infeasible)
	// Output:
	// true false
}

// How private is a sold model version? The Gaussian mechanism's noise
// doubles as an output-perturbation differential-privacy release.
func ExampleGaussianDPEpsilon() {
	sensitivity, err := nimbus.ERMSensitivity(1, 0.02, 100000)
	if err != nil {
		panic(err)
	}
	cheap, err := nimbus.GaussianDPEpsilon(1.0, 20, sensitivity, 1e-6)
	if err != nil {
		panic(err)
	}
	best, err := nimbus.GaussianDPEpsilon(0.01, 20, sensitivity, 1e-6)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cheap version: %s\n", cheap)
	fmt.Printf("best version:  %s\n", best)
	// Output:
	// cheap version: (ε=0.0237, δ=1e-06)-DP
	// best version:  (ε=0.237, δ=1e-06)-DP
}
