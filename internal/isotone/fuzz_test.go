package isotone

import (
	"math"
	"sort"
	"testing"
)

// FuzzRegress checks PAV against arbitrary inputs: never panics, output is
// always sorted and never escapes the input range (ignoring non-finite
// inputs, which the caller is responsible for).
func FuzzRegress(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0)
	f.Add(4.0, 3.0, 2.0, 1.0)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(-1e300, 1e300, -1e300, 1e300)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		y := []float64{a, b, c, d}
		for _, v := range y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		fit, err := Regress(y, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sort.Float64sAreSorted(fit) {
			t.Fatalf("not sorted: %v from %v", fit, y)
		}
		lo, hi := y[0], y[0]
		for _, v := range y {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		for _, v := range fit {
			if v < lo-1e-6*(1+math.Abs(lo)) || v > hi+1e-6*(1+math.Abs(hi)) {
				t.Fatalf("fit %v escapes [%v, %v]", v, lo, hi)
			}
		}
	})
}
