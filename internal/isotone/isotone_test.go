package isotone

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestAlreadyMonotone(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	got, err := Regress(y, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if got[i] != y[i] {
			t.Fatalf("changed a monotone input: %v", got)
		}
	}
}

func TestSimplePooling(t *testing.T) {
	// [3, 1] pools to [2, 2].
	got, err := Regress([]float64{3, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 2 {
		t.Fatalf("got %v, want [2 2]", got)
	}
}

func TestWeightedPooling(t *testing.T) {
	// Weighted mean of (3, w=3) and (1, w=1) is 2.5.
	got, err := Regress([]float64{3, 1}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2.5 || got[1] != 2.5 {
		t.Fatalf("got %v, want [2.5 2.5]", got)
	}
}

func TestCascadingMerge(t *testing.T) {
	got, err := Regress([]float64{1, 5, 4, 3, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 5,4,3,2 all pool to 3.5; 1 stays.
	want := []float64{1, 3.5, 3.5, 3.5, 3.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestAntitonic(t *testing.T) {
	got, err := RegressAntitonic([]float64{1, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 2 {
		t.Fatalf("got %v, want [2 2]", got)
	}
	got, err = RegressAntitonic([]float64{5, 4, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range []float64{5, 4, 3} {
		if got[i] != w {
			t.Fatalf("changed antitonic input: %v", got)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := Regress(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Regress([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("weight length mismatch accepted")
	}
	if _, err := Regress([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero weight accepted")
	}
}

// Optimality property: PAV output must match an O(n²)-checked projection —
// output is monotone, and no single block shift improves the objective.
// We verify against brute force on tiny random instances by enumerating
// candidate solutions built from level sets of sorted values.
func TestAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	obj := func(z, y, w []float64) float64 {
		var s float64
		for i := range y {
			s += w[i] * (z[i] - y[i]) * (z[i] - y[i])
		}
		return s
	}
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(5)
		y := make([]float64, n)
		w := make([]float64, n)
		for i := range y {
			y[i] = math.Round(r.Float64()*10) / 2
			w[i] = 0.5 + r.Float64()
		}
		got, err := Regress(y, w)
		if err != nil {
			t.Fatal(err)
		}
		// Monotone?
		if !sort.Float64sAreSorted(got) {
			t.Fatalf("output not monotone: %v", got)
		}
		// KKT-style check: perturbing any block by ±h must not improve.
		base := obj(got, y, w)
		const h = 1e-4
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				if got[i] != got[j] {
					continue
				}
				for _, dir := range []float64{h, -h} {
					z := append([]float64(nil), got...)
					for k := i; k <= j; k++ {
						if got[k] == got[i] {
							z[k] += dir
						}
					}
					if sort.Float64sAreSorted(z) && obj(z, y, w) < base-1e-9 {
						t.Fatalf("block [%d,%d] shift improves objective: y=%v w=%v got=%v", i, j, y, w, got)
					}
				}
			}
		}
	}
}

// The projection property: the fit never moves a point past the data range.
func TestRangePreservation(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(10)
		y := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range y {
			y[i] = r.NormFloat64()
			lo = math.Min(lo, y[i])
			hi = math.Max(hi, y[i])
		}
		got, err := Regress(y, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range got {
			if v < lo-1e-12 || v > hi+1e-12 {
				t.Fatalf("fit %v outside data range [%v, %v]", v, lo, hi)
			}
		}
	}
}
