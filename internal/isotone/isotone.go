// Package isotone implements weighted isotonic regression via the pool
// adjacent violators algorithm (PAV). Nimbus uses it twice: to clean
// Monte-Carlo error-transformation curves into monotone form (Figure 2(b) of
// the paper) and inside the Dykstra solver for the relaxed price
// interpolation program T²_PI (Section 5.3).
package isotone

import "fmt"

// Regress returns the weighted least-squares non-decreasing fit to y:
//
//	argmin_z Σ w_i (z_i − y_i)²  s.t.  z_1 ≤ z_2 ≤ … ≤ z_n.
//
// Weights must be positive; nil weights mean all ones. The classic PAV
// algorithm runs in O(n).
func Regress(y, w []float64) ([]float64, error) {
	n := len(y)
	if n == 0 {
		return nil, fmt.Errorf("isotone: empty input")
	}
	if w == nil {
		w = make([]float64, n)
		for i := range w {
			w[i] = 1
		}
	}
	if len(w) != n {
		return nil, fmt.Errorf("isotone: %d weights for %d points", len(w), n)
	}
	for i, wi := range w {
		if wi <= 0 {
			return nil, fmt.Errorf("isotone: non-positive weight %v at %d", wi, i)
		}
	}
	// Blocks of pooled points: each holds the weighted mean, total weight
	// and the count of original points it covers.
	mean := make([]float64, 0, n)
	weight := make([]float64, 0, n)
	count := make([]int, 0, n)
	for i := 0; i < n; i++ {
		mean = append(mean, y[i])
		weight = append(weight, w[i])
		count = append(count, 1)
		// Merge backwards while the monotonicity is violated.
		for len(mean) > 1 && mean[len(mean)-2] > mean[len(mean)-1] {
			m := len(mean)
			wSum := weight[m-2] + weight[m-1]
			mean[m-2] = (weight[m-2]*mean[m-2] + weight[m-1]*mean[m-1]) / wSum
			weight[m-2] = wSum
			count[m-2] += count[m-1]
			mean, weight, count = mean[:m-1], weight[:m-1], count[:m-1]
		}
	}
	out := make([]float64, 0, n)
	for b := range mean {
		for k := 0; k < count[b]; k++ {
			out = append(out, mean[b])
		}
	}
	return out, nil
}

// RegressAntitonic returns the weighted least-squares non-increasing fit.
func RegressAntitonic(y, w []float64) ([]float64, error) {
	n := len(y)
	neg := make([]float64, n)
	for i, v := range y {
		neg[i] = -v
	}
	fit, err := Regress(neg, w)
	if err != nil {
		return nil, err
	}
	for i := range fit {
		fit[i] = -fit[i]
	}
	return fit, nil
}
