package isotone

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func sanitize(raw []float64) []float64 {
	out := make([]float64, 0, len(raw))
	for _, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		out = append(out, math.Mod(v, 1e6))
	}
	return out
}

// Property: the regression output is monotone and idempotent, and
// preserves the weighted mean (a classical PAV identity).
func TestQuickRegressProperties(t *testing.T) {
	f := func(raw []float64) bool {
		y := sanitize(raw)
		if len(y) == 0 {
			return true
		}
		fit, err := Regress(y, nil)
		if err != nil {
			return false
		}
		if !sort.Float64sAreSorted(fit) {
			return false
		}
		again, err := Regress(fit, nil)
		if err != nil {
			return false
		}
		for i := range fit {
			if math.Abs(again[i]-fit[i]) > 1e-9*(1+math.Abs(fit[i])) {
				return false
			}
		}
		var sumY, sumFit float64
		for i := range y {
			sumY += y[i]
			sumFit += fit[i]
		}
		return math.Abs(sumY-sumFit) <= 1e-6*(1+math.Abs(sumY))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: antitonic regression is the mirror image of isotonic.
func TestQuickAntitonicMirror(t *testing.T) {
	f := func(raw []float64) bool {
		y := sanitize(raw)
		if len(y) == 0 {
			return true
		}
		anti, err := RegressAntitonic(y, nil)
		if err != nil {
			return false
		}
		rev := make([]float64, len(y))
		for i, v := range y {
			rev[len(y)-1-i] = v
		}
		iso, err := Regress(rev, nil)
		if err != nil {
			return false
		}
		for i := range anti {
			if math.Abs(anti[i]-iso[len(y)-1-i]) > 1e-9*(1+math.Abs(anti[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
