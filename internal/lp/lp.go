// Package lp is a from-scratch linear-programming substrate: a dense
// two-phase simplex solver and a branch-and-bound mixed-integer extension.
//
// The Nimbus revenue-optimization layer uses it to solve the L1/L∞ price
// interpolation programs exactly and as a general mixed-integer fallback for
// the brute-force arbitrage-free baseline (the paper prototypes these with
// MATLAB's linprog/intlinprog; see DESIGN.md).
//
// The solver targets the small/medium dense problems that arise in pricing
// (tens of variables, hundreds of constraints), not industrial scale.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint comparison operator.
type Op int

const (
	// LE means aᵀx ≤ b.
	LE Op = iota
	// GE means aᵀx ≥ b.
	GE
	// EQ means aᵀx = b.
	EQ
)

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal bounded solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies the constraints.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrNotOptimal is wrapped by Solve when the problem is infeasible or
// unbounded; inspect Solution.Status for the cause.
var ErrNotOptimal = errors.New("lp: no optimal solution")

type constraint struct {
	coeffs []float64 // dense, one per variable
	op     Op
	rhs    float64
}

// Problem is a linear program over non-negative variables:
//
//	minimize cᵀx  subject to  A x {≤,≥,=} b,  x ≥ 0.
//
// Build it with AddVar/AddConstraint, then call Solve. Maximization is
// Maximize = true (the solver negates the objective internally).
type Problem struct {
	obj      []float64
	cons     []constraint
	Maximize bool
}

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem { return &Problem{} }

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.obj) }

// AddVar adds a non-negative variable with the given objective coefficient
// and returns its index.
func (p *Problem) AddVar(objCoeff float64) int {
	p.obj = append(p.obj, objCoeff)
	for i := range p.cons {
		p.cons[i].coeffs = append(p.cons[i].coeffs, 0)
	}
	return len(p.obj) - 1
}

// AddConstraint adds the row Σ coeffs[v]·x_v (op) rhs. Variables absent from
// coeffs have coefficient zero.
func (p *Problem) AddConstraint(coeffs map[int]float64, op Op, rhs float64) error {
	row := make([]float64, len(p.obj))
	for v, c := range coeffs {
		if v < 0 || v >= len(p.obj) {
			return fmt.Errorf("lp: constraint references unknown variable %d (have %d)", v, len(p.obj))
		}
		row[v] = c
	}
	p.cons = append(p.cons, constraint{coeffs: row, op: op, rhs: rhs})
	return nil
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	X         []float64 // variable values (valid only when Status == Optimal)
	Objective float64   // objective value in the caller's sense (max or min)
}

const eps = 1e-9

// Solve runs two-phase simplex and returns the solution. A non-optimal
// status is also reported as an error wrapping ErrNotOptimal so callers can
// use the usual if err != nil flow.
func (p *Problem) Solve() (*Solution, error) {
	n := len(p.obj)
	m := len(p.cons)
	obj := make([]float64, n)
	copy(obj, p.obj)
	if p.Maximize {
		for i := range obj {
			obj[i] = -obj[i]
		}
	}

	// Assemble the standard form tableau: rows are constraints converted to
	// equalities over [x | slacks | artificials], all rhs ≥ 0.
	type rowSpec struct {
		coeffs []float64
		rhs    float64
		op     Op
	}
	rows := make([]rowSpec, m)
	for i, c := range p.cons {
		r := rowSpec{coeffs: append([]float64(nil), c.coeffs...), rhs: c.rhs, op: c.op}
		if r.rhs < 0 {
			for j := range r.coeffs {
				r.coeffs[j] = -r.coeffs[j]
			}
			r.rhs = -r.rhs
			switch r.op {
			case LE:
				r.op = GE
			case GE:
				r.op = LE
			}
		}
		rows[i] = r
	}

	nSlack := 0
	for _, r := range rows {
		if r.op != EQ {
			nSlack++
		}
	}
	// One artificial per row keeps the initial basis trivially identifiable;
	// phase 1 drives them out.
	total := n + nSlack + m
	// tab has m+1 rows: constraint rows then the objective row; the last
	// column is the rhs.
	tab := make([][]float64, m+1)
	for i := range tab {
		tab[i] = make([]float64, total+1)
	}
	basis := make([]int, m)
	slackIdx := n
	artStart := n + nSlack
	for i, r := range rows {
		copy(tab[i], r.coeffs)
		switch r.op {
		case LE:
			tab[i][slackIdx] = 1
			slackIdx++
		case GE:
			tab[i][slackIdx] = -1
			slackIdx++
		}
		art := artStart + i
		tab[i][art] = 1
		basis[i] = art
		tab[i][total] = r.rhs
	}

	// Phase 1: minimize the sum of artificials.
	for j := artStart; j < artStart+m; j++ {
		tab[m][j] = 1
	}
	// Price out the initial basis.
	for i := 0; i < m; i++ {
		for j := 0; j <= total; j++ {
			tab[m][j] -= tab[i][j]
		}
	}
	if !simplexIterate(tab, basis, total) {
		return nil, fmt.Errorf("lp: phase 1 unbounded (should be impossible): %w", ErrNotOptimal)
	}
	if -tab[m][total] > 1e-7 {
		return &Solution{Status: Infeasible}, fmt.Errorf("lp: infeasible (phase-1 objective %g): %w", -tab[m][total], ErrNotOptimal)
	}
	// Drive any artificials still in the basis out (degenerate rows).
	for i := 0; i < m; i++ {
		if basis[i] < artStart {
			continue
		}
		pivoted := false
		for j := 0; j < artStart; j++ {
			if math.Abs(tab[i][j]) > eps {
				pivot(tab, basis, i, j, total)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Entire row is zero over real variables: redundant constraint;
			// leave the artificial basic at value 0.
			continue
		}
	}

	// Phase 2: replace the objective row with the real objective, priced out
	// against the current basis, and forbid artificial columns.
	for j := 0; j <= total; j++ {
		tab[m][j] = 0
	}
	for j := 0; j < n; j++ {
		tab[m][j] = obj[j]
	}
	for i := 0; i < m; i++ {
		if b := basis[i]; b < total && math.Abs(tab[m][b]) > 0 {
			c := tab[m][b]
			for j := 0; j <= total; j++ {
				tab[m][j] -= c * tab[i][j]
			}
		}
	}
	// Block artificials from re-entering by making them expensive.
	for j := artStart; j < artStart+m; j++ {
		if !isBasic(basis, j) {
			tab[m][j] = math.Inf(1)
		}
	}
	if !simplexIterate(tab, basis, total) {
		return &Solution{Status: Unbounded}, fmt.Errorf("lp: unbounded: %w", ErrNotOptimal)
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][total]
		}
	}
	objVal := 0.0
	for j := 0; j < n; j++ {
		objVal += p.obj[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: objVal}, nil
}

func isBasic(basis []int, j int) bool {
	for _, b := range basis {
		if b == j {
			return true
		}
	}
	return false
}

// simplexIterate runs primal simplex to optimality on the tableau whose last
// row is the (priced-out) objective. It returns false when unbounded. Bland's
// rule is used after a burn-in of Dantzig steps to guarantee termination.
func simplexIterate(tab [][]float64, basis []int, total int) bool {
	m := len(tab) - 1
	blandAfter := 50 * (m + total + 1)
	for iter := 0; ; iter++ {
		// Choose entering column.
		col := -1
		if iter < blandAfter {
			best := -eps
			for j := 0; j < total; j++ {
				if c := tab[m][j]; c < best && !math.IsInf(c, 1) {
					best = c
					col = j
				}
			}
		} else {
			for j := 0; j < total; j++ {
				if c := tab[m][j]; c < -eps && !math.IsInf(c, 1) {
					col = j
					break
				}
			}
		}
		if col < 0 {
			return true // optimal
		}
		// Ratio test for leaving row (ties broken by smallest basis index —
		// Bland-compatible).
		row := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][col]
			if a > eps {
				r := tab[i][total] / a
				if r < bestRatio-eps || (math.Abs(r-bestRatio) <= eps && (row < 0 || basis[i] < basis[row])) {
					bestRatio = r
					row = i
				}
			}
		}
		if row < 0 {
			return false // unbounded
		}
		pivot(tab, basis, row, col, total)
	}
}

// pivot performs a full tableau pivot at (row, col).
func pivot(tab [][]float64, basis []int, row, col, total int) {
	p := tab[row][col]
	inv := 1 / p
	for j := 0; j <= total; j++ {
		tab[row][j] *= inv
	}
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		//lint:ignore no-float-eq an exactly-zero multiplier marks an already-eliminated cell; an epsilon would skip live pivots and corrupt the tableau
		if f == 0 || math.IsInf(f, 0) {
			if math.IsInf(f, 0) {
				// Infinity markers only appear in blocked objective cells;
				// they stay blocked.
				continue
			}
			continue
		}
		for j := 0; j <= total; j++ {
			tab[i][j] -= f * tab[row][j]
		}
	}
	basis[row] = col
}
