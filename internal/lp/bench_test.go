package lp

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomBoundedLP builds a feasible bounded LP with n vars and m ≤ rows.
func randomBoundedLP(n, m int, seed int64) *Problem {
	r := rand.New(rand.NewSource(seed))
	p := NewProblem()
	p.Maximize = true
	for j := 0; j < n; j++ {
		p.AddVar(r.Float64() * 10)
	}
	for i := 0; i < m; i++ {
		coeffs := map[int]float64{}
		for j := 0; j < n; j++ {
			coeffs[j] = r.Float64() * 5
		}
		if err := p.AddConstraint(coeffs, LE, 10+r.Float64()*50); err != nil {
			panic(err)
		}
	}
	for j := 0; j < n; j++ {
		if err := p.AddConstraint(map[int]float64{j: 1}, LE, 50); err != nil {
			panic(err)
		}
	}
	return p
}

func BenchmarkSimplex(b *testing.B) {
	for _, size := range []struct{ n, m int }{{5, 8}, {20, 30}, {50, 80}} {
		b.Run(fmt.Sprintf("n=%d_m=%d", size.n, size.m), func(b *testing.B) {
			p := randomBoundedLP(size.n, size.m, 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMILPKnapsack(b *testing.B) {
	p := NewProblem()
	p.Maximize = true
	r := rand.New(rand.NewSource(9))
	coeffs := map[int]float64{}
	m := NewMILP(p)
	for j := 0; j < 12; j++ {
		v := p.AddVar(1 + r.Float64()*10)
		coeffs[v] = 1 + r.Float64()*8
		if err := p.AddConstraint(map[int]float64{v: 1}, LE, 1); err != nil {
			b.Fatal(err)
		}
		m.SetInteger(v)
	}
	if err := p.AddConstraint(coeffs, LE, 25); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SolveMILP(); err != nil {
			b.Fatal(err)
		}
	}
}
