package lp

import (
	"fmt"
	"math"
)

// MILP is a mixed-integer linear program: a Problem plus a set of variables
// constrained to integer values. SolveMILP runs LP-relaxation branch-and-
// bound, branching on the most fractional integer variable.
type MILP struct {
	*Problem
	intVars map[int]bool
	// MaxNodes bounds the search; 0 means the default (100k nodes).
	MaxNodes int
}

// NewMILP wraps a problem for mixed-integer solving.
func NewMILP(p *Problem) *MILP {
	return &MILP{Problem: p, intVars: make(map[int]bool)}
}

// SetInteger marks variable v as integer-constrained.
func (m *MILP) SetInteger(v int) {
	m.intVars[v] = true
}

const intTol = 1e-6

// SolveMILP performs branch and bound and returns the best integer-feasible
// solution found. It returns Infeasible status if no integer point exists.
func (m *MILP) SolveMILP() (*Solution, error) {
	maxNodes := m.MaxNodes
	if maxNodes == 0 {
		maxNodes = 100000
	}
	sign := 1.0
	if m.Maximize {
		sign = -1
	}

	type node struct {
		lower map[int]float64 // v ≥ bound
		upper map[int]float64 // v ≤ bound
	}
	var best *Solution
	bestObj := math.Inf(1) // in minimization sense

	stack := []node{{lower: map[int]float64{}, upper: map[int]float64{}}}
	nodes := 0
	for len(stack) > 0 {
		nodes++
		if nodes > maxNodes {
			return nil, fmt.Errorf("lp: branch-and-bound node limit %d exceeded", maxNodes)
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		rel := m.relaxation(nd.lower, nd.upper)
		sol, err := rel.Solve()
		if err != nil {
			if sol != nil && sol.Status == Infeasible {
				continue // prune
			}
			return nil, err
		}
		relObj := sign * sol.Objective
		if relObj >= bestObj-1e-12 {
			continue // bound prune
		}
		// Find most fractional integer variable.
		branchVar, frac := -1, 0.0
		for v := range m.intVars {
			f := sol.X[v] - math.Floor(sol.X[v])
			dist := math.Min(f, 1-f)
			if dist > intTol && dist > frac {
				frac = dist
				branchVar = v
			}
		}
		if branchVar < 0 {
			// Integer feasible.
			if relObj < bestObj {
				bestObj = relObj
				rounded := append([]float64(nil), sol.X...)
				for v := range m.intVars {
					rounded[v] = math.Round(rounded[v])
				}
				best = &Solution{Status: Optimal, X: rounded, Objective: sol.Objective}
			}
			continue
		}
		val := sol.X[branchVar]
		down := node{lower: cloneBounds(nd.lower), upper: cloneBounds(nd.upper)}
		down.upper[branchVar] = math.Floor(val)
		up := node{lower: cloneBounds(nd.lower), upper: cloneBounds(nd.upper)}
		up.lower[branchVar] = math.Ceil(val)
		stack = append(stack, down, up)
	}
	if best == nil {
		return &Solution{Status: Infeasible}, fmt.Errorf("lp: MILP infeasible: %w", ErrNotOptimal)
	}
	return best, nil
}

// relaxation builds the LP with the node's variable bound cuts appended.
func (m *MILP) relaxation(lower, upper map[int]float64) *Problem {
	rel := &Problem{Maximize: m.Maximize}
	rel.obj = append([]float64(nil), m.obj...)
	rel.cons = make([]constraint, len(m.cons), len(m.cons)+len(lower)+len(upper))
	for i, c := range m.cons {
		rel.cons[i] = constraint{coeffs: append([]float64(nil), c.coeffs...), op: c.op, rhs: c.rhs}
	}
	for v, b := range lower {
		row := make([]float64, len(rel.obj))
		row[v] = 1
		rel.cons = append(rel.cons, constraint{coeffs: row, op: GE, rhs: b})
	}
	for v, b := range upper {
		row := make([]float64, len(rel.obj))
		row[v] = 1
		rel.cons = append(rel.cons, constraint{coeffs: row, op: LE, rhs: b})
	}
	return rel
}

func cloneBounds(b map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}
