package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// solveOrDie builds the classic textbook LP and checks the optimum.
func TestSimplexTextbookMax(t *testing.T) {
	// maximize 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
	p := NewProblem()
	p.Maximize = true
	x := p.AddVar(3)
	y := p.AddVar(5)
	mustCon(t, p, map[int]float64{x: 1}, LE, 4)
	mustCon(t, p, map[int]float64{y: 2}, LE, 12)
	mustCon(t, p, map[int]float64{x: 3, y: 2}, LE, 18)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 36, 1e-8) || !approx(sol.X[x], 2, 1e-8) || !approx(sol.X[y], 6, 1e-8) {
		t.Fatalf("got obj=%v x=%v", sol.Objective, sol.X)
	}
}

func TestSimplexMinWithGEAndEQ(t *testing.T) {
	// minimize 2x + 3y s.t. x + y = 10, x ≥ 3 → (7? no: y free to take rest)
	// obj = 2x+3y with x+y=10, x≥3, y≥0 → push x up: x=10,y=0, obj 20.
	p := NewProblem()
	x := p.AddVar(2)
	y := p.AddVar(3)
	mustCon(t, p, map[int]float64{x: 1, y: 1}, EQ, 10)
	mustCon(t, p, map[int]float64{x: 1}, GE, 3)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 20, 1e-8) {
		t.Fatalf("obj = %v, want 20 (x=%v)", sol.Objective, sol.X)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1)
	mustCon(t, p, map[int]float64{x: 1}, LE, 1)
	mustCon(t, p, map[int]float64{x: 1}, GE, 2)
	sol, err := p.Solve()
	if err == nil || !errors.Is(err, ErrNotOptimal) {
		t.Fatalf("expected ErrNotOptimal, got %v", err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v", sol.Status)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	p := NewProblem()
	p.Maximize = true
	x := p.AddVar(1)
	mustCon(t, p, map[int]float64{x: 1}, GE, 0)
	sol, err := p.Solve()
	if err == nil {
		t.Fatal("expected error")
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v", sol.Status)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// minimize x s.t. -x ≤ -5  (i.e. x ≥ 5).
	p := NewProblem()
	x := p.AddVar(1)
	mustCon(t, p, map[int]float64{x: -1}, LE, -5)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[x], 5, 1e-8) {
		t.Fatalf("x = %v", sol.X[x])
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Classic degenerate LP; must terminate and find optimum.
	// maximize 10x1 - 57x2 - 9x3 - 24x4 with Beale's cycling example rows.
	p := NewProblem()
	x1 := p.AddVar(10)
	x2 := p.AddVar(-57)
	x3 := p.AddVar(-9)
	x4 := p.AddVar(-24)
	p.Maximize = true
	mustCon(t, p, map[int]float64{x1: 0.5, x2: -5.5, x3: -2.5, x4: 9}, LE, 0)
	mustCon(t, p, map[int]float64{x1: 0.5, x2: -1.5, x3: -0.5, x4: 1}, LE, 0)
	mustCon(t, p, map[int]float64{x1: 1}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 1, 1e-8) {
		t.Fatalf("obj = %v, want 1", sol.Objective)
	}
}

func TestSimplexRedundantEquality(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1)
	y := p.AddVar(1)
	mustCon(t, p, map[int]float64{x: 1, y: 1}, EQ, 4)
	mustCon(t, p, map[int]float64{x: 2, y: 2}, EQ, 8) // redundant
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[x]+sol.X[y], 4, 1e-8) {
		t.Fatalf("x+y = %v", sol.X[x]+sol.X[y])
	}
}

func TestAddConstraintUnknownVar(t *testing.T) {
	p := NewProblem()
	p.AddVar(1)
	if err := p.AddConstraint(map[int]float64{5: 1}, LE, 1); err == nil {
		t.Fatal("expected error for unknown variable")
	}
}

// Random LPs: compare simplex against brute-force vertex enumeration.
func TestSimplexAgainstVertexEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(2) // 2-3 vars
		m := 2 + r.Intn(3) // 2-4 constraints, all ≤ with positive rhs → bounded? not necessarily
		p := NewProblem()
		p.Maximize = true
		c := make([]float64, n)
		for j := 0; j < n; j++ {
			c[j] = math.Round(r.Float64()*10) - 2
			p.AddVar(c[j])
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := 0; i < m; i++ {
			a[i] = make([]float64, n)
			coeffs := map[int]float64{}
			for j := 0; j < n; j++ {
				a[i][j] = math.Round(r.Float64() * 5) // non-negative rows keep it bounded w.h.p.
				coeffs[j] = a[i][j]
			}
			b[i] = 1 + math.Round(r.Float64()*10)
			mustCon(t, p, coeffs, LE, b[i])
		}
		// Ensure boundedness: add x_j ≤ 20 for all j.
		for j := 0; j < n; j++ {
			mustCon(t, p, map[int]float64{j: 1}, LE, 20)
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteForceMax(c, a, b, 20)
		if !approx(sol.Objective, want, 1e-6*(1+math.Abs(want))) {
			t.Fatalf("trial %d: simplex %v vs brute force %v", trial, sol.Objective, want)
		}
	}
}

// bruteForceMax enumerates every vertex of the polytope {a x ≤ b, 0 ≤ x ≤
// box} exactly (intersections of n active constraints) and returns the best
// feasible objective. An LP optimum is always at a vertex, so this is an
// exact oracle for small n.
func bruteForceMax(c []float64, a [][]float64, b []float64, box float64) float64 {
	n := len(c)
	// Collect all constraint hyperplanes as rows (coef, rhs).
	var rows [][]float64
	var rhs []float64
	for i := range a {
		rows = append(rows, a[i])
		rhs = append(rhs, b[i])
	}
	for j := 0; j < n; j++ {
		lo := make([]float64, n)
		lo[j] = 1
		rows = append(rows, lo)
		rhs = append(rhs, 0) // x_j = 0
		hi := make([]float64, n)
		hi[j] = 1
		rows = append(rows, hi)
		rhs = append(rhs, box) // x_j = box
	}
	best := math.Inf(-1)
	idx := make([]int, n)
	var choose func(start, k int)
	feasible := func(x []float64) bool {
		for i := range a {
			s := 0.0
			for k := 0; k < n; k++ {
				s += a[i][k] * x[k]
			}
			if s > b[i]+1e-7 {
				return false
			}
		}
		for _, v := range x {
			if v < -1e-7 || v > box+1e-7 {
				return false
			}
		}
		return true
	}
	choose = func(start, k int) {
		if k == n {
			x, ok := solveSquare(rows, rhs, idx)
			if ok && feasible(x) {
				v := 0.0
				for j := 0; j < n; j++ {
					v += c[j] * x[j]
				}
				if v > best {
					best = v
				}
			}
			return
		}
		for i := start; i < len(rows); i++ {
			idx[k] = i
			choose(i+1, k+1)
		}
	}
	choose(0, 0)
	return best
}

// solveSquare solves the n x n system formed by the selected rows via
// Gaussian elimination with partial pivoting; ok=false when singular.
func solveSquare(rows [][]float64, rhs []float64, idx []int) ([]float64, bool) {
	n := len(idx)
	m := make([][]float64, n)
	for i, r := range idx {
		m[i] = append(append([]float64(nil), rows[r]...), rhs[r])
	}
	for col := 0; col < n; col++ {
		p := col
		for i := col + 1; i < n; i++ {
			if math.Abs(m[i][col]) > math.Abs(m[p][col]) {
				p = i
			}
		}
		if math.Abs(m[p][col]) < 1e-10 {
			return nil, false
		}
		m[col], m[p] = m[p], m[col]
		for i := 0; i < n; i++ {
			if i == col {
				continue
			}
			f := m[i][col] / m[col][col]
			for j := col; j <= n; j++ {
				m[i][j] -= f * m[col][j]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = m[i][n] / m[i][i]
	}
	return x, true
}

func TestMILPKnapsack(t *testing.T) {
	// maximize 8a + 11b + 6c + 4d s.t. 5a + 7b + 4c + 3d ≤ 14, vars ∈ {0,1}.
	// Optimum: a=0? classic answer is b,c,d → 21? check: 7+4+3=14 ≤14, value 21.
	p := NewProblem()
	p.Maximize = true
	vals := []float64{8, 11, 6, 4}
	wts := []float64{5, 7, 4, 3}
	vars := make([]int, 4)
	for i := range vals {
		vars[i] = p.AddVar(vals[i])
	}
	coeffs := map[int]float64{}
	for i, v := range vars {
		coeffs[v] = wts[i]
		mustCon(t, p, map[int]float64{v: 1}, LE, 1)
	}
	mustCon(t, p, coeffs, LE, 14)
	m := NewMILP(p)
	for _, v := range vars {
		m.SetInteger(v)
	}
	sol, err := m.SolveMILP()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 21, 1e-8) {
		t.Fatalf("obj = %v, want 21 (x=%v)", sol.Objective, sol.X)
	}
}

func TestMILPIntegerMin(t *testing.T) {
	// minimize x + y s.t. 2x + y ≥ 5, x + 3y ≥ 6, integers.
	// LP relax optimum (1.8, 1.4) = 3.2; integer optimum: try (1,2): 4≥5? no.
	// (2,2): 6≥5, 8≥6 → obj 4. (3,1): 7≥5, 6≥6 → obj 4. (2,1): 5≥5, 5≥6 no.
	// So 4.
	p := NewProblem()
	x := p.AddVar(1)
	y := p.AddVar(1)
	mustCon(t, p, map[int]float64{x: 2, y: 1}, GE, 5)
	mustCon(t, p, map[int]float64{x: 1, y: 3}, GE, 6)
	m := NewMILP(p)
	m.SetInteger(x)
	m.SetInteger(y)
	sol, err := m.SolveMILP()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 4, 1e-8) {
		t.Fatalf("obj = %v, want 4", sol.Objective)
	}
	for _, v := range sol.X {
		if math.Abs(v-math.Round(v)) > 1e-6 {
			t.Fatalf("non-integer solution %v", sol.X)
		}
	}
}

func TestMILPInfeasible(t *testing.T) {
	// 0 ≤ x ≤ 0.5 with x integer ≥ 0 has solution x = 0; force x ≥ 0.2 too:
	// then no integer solution in [0.2, 0.5].
	p := NewProblem()
	x := p.AddVar(1)
	mustCon(t, p, map[int]float64{x: 1}, LE, 0.5)
	mustCon(t, p, map[int]float64{x: 1}, GE, 0.2)
	m := NewMILP(p)
	m.SetInteger(x)
	sol, err := m.SolveMILP()
	if err == nil {
		t.Fatalf("expected infeasible, got %v", sol)
	}
}

func TestMILPMatchesLPWhenIntegral(t *testing.T) {
	// When the LP optimum is already integral B&B must return it directly.
	p := NewProblem()
	p.Maximize = true
	x := p.AddVar(1)
	mustCon(t, p, map[int]float64{x: 1}, LE, 7)
	m := NewMILP(p)
	m.SetInteger(x)
	sol, err := m.SolveMILP()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 7, 1e-9) {
		t.Fatalf("obj = %v", sol.Objective)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("status strings wrong")
	}
}

func mustCon(t *testing.T, p *Problem, coeffs map[int]float64, op Op, rhs float64) {
	t.Helper()
	if err := p.AddConstraint(coeffs, op, rhs); err != nil {
		t.Fatal(err)
	}
}
