package rng

import (
	"math"
	"sync"
	"testing"
)

// moments returns the sample mean and variance of xs.
func moments(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs) - 1)
	return mean, variance
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Normal(0, 1) != b.Normal(0, 1) {
			t.Fatal("same seed must give identical streams")
		}
	}
	c := New(43)
	same := true
	a = New(42)
	for i := 0; i < 10; i++ {
		if a.Normal(0, 1) != c.Normal(0, 1) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical streams")
	}
}

func TestSplitIndependence(t *testing.T) {
	s := New(1)
	child := s.Split()
	// Parent stays usable and child differs from parent continuation.
	p := s.Normal(0, 1)
	c := child.Normal(0, 1)
	if p == c {
		t.Fatal("split stream identical to parent")
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(7)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.Normal(2, 3)
	}
	mean, variance := moments(xs)
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("mean = %v, want ~2", mean)
	}
	if math.Abs(variance-9) > 0.2 {
		t.Fatalf("variance = %v, want ~9", variance)
	}
}

func TestLaplaceMoments(t *testing.T) {
	s := New(8)
	const n = 300000
	scale := 1.5
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.Laplace(0, scale)
	}
	mean, variance := moments(xs)
	if math.Abs(mean) > 0.03 {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	want := 2 * scale * scale // Laplace variance = 2b²
	if math.Abs(variance-want) > 0.15 {
		t.Fatalf("variance = %v, want ~%v", variance, want)
	}
}

func TestVectorVariances(t *testing.T) {
	s := New(9)
	const d = 50000
	for name, draw := range map[string]func(int, float64) []float64{
		"normal":  s.NormalVec,
		"laplace": s.LaplaceVec,
		"uniform": s.UniformVec,
	} {
		v := draw(d, 0.25)
		mean, variance := moments(v)
		if math.Abs(mean) > 0.02 {
			t.Errorf("%s: mean = %v, want ~0", name, mean)
		}
		if math.Abs(variance-0.25) > 0.02 {
			t.Errorf("%s: variance = %v, want ~0.25", name, variance)
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(10)
	for i := 0; i < 1000; i++ {
		x := s.Uniform(-2, 5)
		if x < -2 || x >= 5 {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestLockedConcurrent(t *testing.T) {
	l := NewLocked(12)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := l.NormalVec(4, 1)
				if len(v) != 4 {
					t.Error("bad vector length")
					return
				}
			}
		}()
	}
	wg.Wait()
}
