// Package rng provides the seedable random samplers the Nimbus noise
// mechanisms are built on: Gaussian, Laplace and uniform scalar draws plus
// isotropic random vectors.
//
// Everything is deterministic given a seed, which the test-suite and the
// experiment harness rely on for reproducible figures.
package rng

import (
	"math"
	"math/rand"
	"sync"
)

// Source is a seedable stream of random draws. It wraps math/rand with the
// distributions Nimbus needs and is safe for use from a single goroutine;
// use Split or NewLocked for concurrent use.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
//
//lint:allocok the fresh source is the function's product; hot paths make one per request stream, not per draw
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream; the parent remains usable.
func (s *Source) Split() *Source {
	return New(s.r.Int63())
}

// Float64 returns a uniform draw in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform draw in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Intn returns a uniform integer in [0, n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a uniform non-negative 63-bit integer, handy for deriving
// child seeds.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Normal returns a draw from N(mean, stddev²).
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// Laplace returns a draw from the Laplace distribution with the given mean
// and scale b (variance 2b²), via inverse-CDF sampling.
func (s *Source) Laplace(mean, scale float64) float64 {
	u := s.r.Float64() - 0.5
	return mean - scale*sign(u)*math.Log(1-2*math.Abs(u))
}

// NormalVec fills a length-d vector with IID draws from N(0, variance).
//
//lint:allocok the fresh draw vector is the function's product
func (s *Source) NormalVec(d int, variance float64) []float64 {
	sd := math.Sqrt(variance)
	out := make([]float64, d)
	for i := range out {
		out[i] = sd * s.r.NormFloat64()
	}
	return out
}

// LaplaceVec fills a length-d vector with IID zero-mean Laplace draws with
// per-coordinate variance equal to variance (scale = sqrt(variance/2)).
//
//lint:allocok the fresh draw vector is the function's product
func (s *Source) LaplaceVec(d int, variance float64) []float64 {
	scale := math.Sqrt(variance / 2)
	out := make([]float64, d)
	for i := range out {
		out[i] = s.Laplace(0, scale)
	}
	return out
}

// UniformVec fills a length-d vector with IID zero-mean uniform draws with
// per-coordinate variance equal to variance (half-width = sqrt(3*variance)).
//
//lint:allocok the fresh draw vector is the function's product
func (s *Source) UniformVec(d int, variance float64) []float64 {
	half := math.Sqrt(3 * variance)
	out := make([]float64, d)
	for i := range out {
		out[i] = s.Uniform(-half, half)
	}
	return out
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle permutes indexes via the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// Locked is a mutex-guarded Source that is safe for concurrent use, used by
// the HTTP broker where multiple buyer requests sample noise in parallel.
type Locked struct {
	mu sync.Mutex
	s  *Source
}

// NewLocked returns a concurrency-safe source seeded with seed.
func NewLocked(seed int64) *Locked {
	return &Locked{s: New(seed)}
}

// NormalVec is a concurrency-safe Source.NormalVec.
func (l *Locked) NormalVec(d int, variance float64) []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.s.NormalVec(d, variance)
}

// Split derives an independent child stream under the lock.
func (l *Locked) Split() *Source {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.s.Split()
}
