// Package plot renders series as ASCII charts, so `nimbus-bench -format
// plot` can show the paper's figures directly in a terminal — error curves
// against 1/NCP, price curves, and the log-scale runtime comparisons.
package plot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	Xs   []float64
	Ys   []float64
}

// Config controls chart geometry and scaling.
type Config struct {
	// Title is printed above the chart.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// Width and Height are the plot-area dimensions in characters
	// (defaults 64 x 16).
	Width, Height int
	// LogY plots log10(y); all y values must then be positive.
	LogY bool
}

// markers cycles through per-series glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// Render draws the chart.
func Render(w io.Writer, cfg Config, series ...Series) error {
	if len(series) == 0 {
		return errors.New("plot: no series")
	}
	width := cfg.Width
	if width <= 0 {
		width = 64
	}
	height := cfg.Height
	if height <= 0 {
		height = 16
	}
	if width < 8 || height < 4 {
		return fmt.Errorf("plot: chart area %dx%d too small", width, height)
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Xs) == 0 || len(s.Xs) != len(s.Ys) {
			return fmt.Errorf("plot: series %q has %d xs and %d ys", s.Name, len(s.Xs), len(s.Ys))
		}
		for i := range s.Xs {
			x, y := s.Xs[i], s.Ys[i]
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
				return fmt.Errorf("plot: series %q has non-finite point (%v, %v)", s.Name, x, y)
			}
			if cfg.LogY && y <= 0 {
				return fmt.Errorf("plot: series %q has y=%v with LogY", s.Name, y)
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			yv := y
			if cfg.LogY {
				yv = math.Log10(y)
			}
			ymin, ymax = math.Min(ymin, yv), math.Max(ymax, yv)
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.Xs {
			y := s.Ys[i]
			if cfg.LogY {
				y = math.Log10(y)
			}
			col := int(math.Round((s.Xs[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := int(math.Round((ymax - y) / (ymax - ymin) * float64(height-1)))
			grid[row][col] = m
		}
	}

	if cfg.Title != "" {
		fmt.Fprintln(w, cfg.Title)
	}
	yTop, yBot := ymax, ymin
	unit := ""
	if cfg.LogY {
		yTop, yBot = math.Pow(10, ymax), math.Pow(10, ymin)
		unit = " (log scale)"
	}
	fmt.Fprintf(w, "%s%s\n", cfg.YLabel, unit)
	for r, line := range grid {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%10.3g", yTop)
		case height - 1:
			label = fmt.Sprintf("%10.3g", yBot)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s %-*.4g%*.4g  %s\n", strings.Repeat(" ", 10), width/2, xmin, width-width/2, xmax, cfg.XLabel)
	for si, s := range series {
		fmt.Fprintf(w, "   %c %s\n", markers[si%len(markers)], s.Name)
	}
	return nil
}
