package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRenderValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, Config{}); err == nil {
		t.Fatal("no series accepted")
	}
	if err := Render(&buf, Config{}, Series{Name: "a", Xs: []float64{1}, Ys: nil}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if err := Render(&buf, Config{}, Series{Name: "a", Xs: []float64{math.NaN()}, Ys: []float64{1}}); err == nil {
		t.Fatal("NaN accepted")
	}
	if err := Render(&buf, Config{LogY: true}, Series{Name: "a", Xs: []float64{1}, Ys: []float64{0}}); err == nil {
		t.Fatal("zero y with LogY accepted")
	}
	if err := Render(&buf, Config{Width: 2, Height: 2}, Series{Name: "a", Xs: []float64{1}, Ys: []float64{1}}); err == nil {
		t.Fatal("tiny chart accepted")
	}
}

func TestRenderBasicChart(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, Config{Title: "test chart", XLabel: "x", YLabel: "y", Width: 20, Height: 5},
		Series{Name: "up", Xs: []float64{0, 1, 2}, Ys: []float64{0, 1, 2}},
		Series{Name: "down", Xs: []float64{0, 1, 2}, Ys: []float64{2, 1, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"test chart", "up", "down", "*", "o", "x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// The first data row holds the max marker; increasing series ends top
	// right, decreasing series starts top left.
	var firstRow string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			firstRow = l
			break
		}
	}
	body := firstRow[strings.Index(firstRow, "|")+1:]
	if !strings.HasSuffix(strings.TrimRight(body, " "), "*") {
		t.Fatalf("increasing series should top out at the right: %q", body)
	}
	if !strings.HasPrefix(strings.TrimLeft(body, " "), "o") && !strings.Contains(body, "o") {
		t.Fatalf("decreasing series should top out at the left: %q", body)
	}
}

func TestRenderAxisLabels(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, Config{Width: 24, Height: 6},
		Series{Name: "s", Xs: []float64{1, 100}, Ys: []float64{5, 50}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"50", "5", "1", "100"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing axis label %q:\n%s", want, out)
		}
	}
}

func TestRenderLogScale(t *testing.T) {
	var buf bytes.Buffer
	err := Render(&buf, Config{LogY: true, Width: 24, Height: 8},
		Series{Name: "exp", Xs: []float64{1, 2, 3}, Ys: []float64{1e-6, 1e-3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "log scale") {
		t.Fatalf("missing log annotation:\n%s", out)
	}
	// On a log axis the three decade-spaced points sit on a straight line:
	// the middle point lands mid-chart, not crushed to the bottom.
	lines := strings.Split(out, "\n")
	var rows []int
	for i, l := range lines {
		if strings.Contains(l, "*") && strings.Contains(l, "|") {
			rows = append(rows, i)
		}
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 marker rows, got %d:\n%s", len(rows), out)
	}
	if d1, d2 := rows[1]-rows[0], rows[2]-rows[1]; absInt(d1-d2) > 1 {
		t.Fatalf("log spacing uneven: %v", rows)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	var buf bytes.Buffer
	// Degenerate ranges (single point, constant y) must not divide by zero.
	err := Render(&buf, Config{Width: 10, Height: 4},
		Series{Name: "flat", Xs: []float64{5}, Ys: []float64{3}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Fatal("marker missing for single point")
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
