package opt

import (
	"fmt"
	"sort"
)

// SUBADDITIVE INTERPOLATION (Definition 6) is the decision problem at the
// heart of the paper's hardness result (Theorem 7): given price points
// (a_j, P_j), does a positive, monotone, subadditive function p with
// p(a_j) = P_j exist? The paper proves it coNP-hard by reduction from
// UNBOUNDED SUBSET-SUM, so any exact decider — including this one — takes
// worst-case exponential time; it is here for completeness, for the
// test-suite's cross-checks, and because small instances (the paper's
// experiments use ≤ 10 price points) decide instantly.
//
// The decision uses the covering envelope: let
//
//	µ(x) = min { Σ k_w·P_w : Σ k_w·a_w ≥ x, k_w ∈ ℕ }
//
// be the cheapest way to assemble quality at least x from copies of the
// offered points. Any monotone subadditive p with p(a_w) ≤ P_w satisfies
// p ≤ µ pointwise, and µ itself is monotone and subadditive. Hence an
// interpolation exists iff the targets are non-decreasing and no point is
// undercut by combinations of the others: µ(a_j) = P_j for every j.
func SubadditiveInterpolationFeasible(targets []PricePoint) (bool, error) {
	if err := validateTargets(targets); err != nil {
		return false, err
	}
	qual := make([]float64, len(targets))
	cost := make([]float64, len(targets))
	for i, t := range targets {
		if t.Target <= 0 {
			// Definition 6 demands a positive function; a zero target is
			// unreachable (and a zero-price point would undercut everything).
			return false, nil
		}
		qual[i] = t.X
		cost[i] = t.Target
	}
	if !sort.SliceIsSorted(targets, func(i, j int) bool { return targets[i].Target <= targets[j].Target }) {
		return false, nil // monotonicity violated outright
	}
	env := newCoveringEnvelope(qual, cost)
	for _, t := range targets {
		if env.price(t.X) < t.Target-1e-9*(1+t.Target) {
			return false, nil
		}
	}
	return true, nil
}

// UnboundedSubsetSumReachable decides whether target is expressible as
// Σ k_i·weights_i with k_i ∈ ℕ — the UNBOUNDED SUBSET-SUM problem the
// Theorem 7 reduction starts from. Exposed so the tests can exercise the
// reduction in both directions.
func UnboundedSubsetSumReachable(weights []int, target int) (bool, error) {
	if target < 0 {
		return false, fmt.Errorf("opt: negative subset-sum target %d", target)
	}
	if target == 0 {
		return true, nil
	}
	reach := make([]bool, target+1)
	reach[0] = true
	for _, w := range weights {
		if w <= 0 {
			return false, fmt.Errorf("opt: subset-sum weights must be positive, got %d", w)
		}
		for s := w; s <= target; s++ {
			if reach[s-w] {
				reach[s] = true
			}
		}
	}
	return reach[target], nil
}

// Theorem7Instance builds the PRICE INTERPOLATION instance of the paper's
// reduction for weights w_1 < … < w_n < K: points (w_j, w_j) plus the probe
// point (K, K + ½). By Theorem 7 the instance is interpolable iff no
// unbounded subset sum hits K exactly.
func Theorem7Instance(weights []int, k int) ([]PricePoint, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("opt: reduction needs weights")
	}
	sorted := append([]int(nil), weights...)
	sort.Ints(sorted)
	pts := make([]PricePoint, 0, len(sorted)+1)
	for i, w := range sorted {
		if w <= 0 {
			return nil, fmt.Errorf("opt: weights must be positive, got %d", w)
		}
		if i > 0 && w == sorted[i-1] {
			continue // duplicate weights add nothing
		}
		if w >= k {
			return nil, fmt.Errorf("opt: reduction requires weights < K (got %d ≥ %d)", w, k)
		}
		pts = append(pts, PricePoint{X: float64(w), Target: float64(w)})
	}
	pts = append(pts, PricePoint{X: float64(k), Target: float64(k) + 0.5})
	return pts, nil
}

// MaxInterpolationViolation quantifies how far given targets are from
// interpolable: the largest amount by which a combination of points
// undercuts a target, max_j (P_j − µ(a_j)). Zero (up to float noise) means
// feasible for monotone targets; sellers can use it to see which desired
// price is the arbitrage hole.
func MaxInterpolationViolation(targets []PricePoint) (float64, int, error) {
	if err := validateTargets(targets); err != nil {
		return 0, -1, err
	}
	qual := make([]float64, len(targets))
	cost := make([]float64, len(targets))
	for i, t := range targets {
		qual[i] = t.X
		cost[i] = t.Target
	}
	env := newCoveringEnvelope(qual, cost)
	worst, worstIdx := 0.0, -1
	for j, t := range targets {
		if v := t.Target - env.price(t.X); v > worst {
			worst, worstIdx = v, j
		}
	}
	if worstIdx < 0 {
		return 0, -1, nil
	}
	return worst, worstIdx, nil
}
