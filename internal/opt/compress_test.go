package opt

import (
	"testing"

	"nimbus/internal/rng"
)

func gridProblem(t *testing.T, n int) *Problem {
	t.Helper()
	pts := make([]BuyerPoint, n)
	for i := 0; i < n; i++ {
		x := 1 + 99*float64(i)/float64(n-1)
		pts[i] = BuyerPoint{X: x, Value: 100 / (1 + 100/x), Mass: 1.0 / float64(n)}
	}
	p, err := NewProblem(pts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompressMenuValidation(t *testing.T) {
	p := gridProblem(t, 10)
	if _, err := CompressMenu(p, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestCompressMenuFullRecovery(t *testing.T) {
	p := gridProblem(t, 12)
	c, err := CompressMenu(p, 12)
	if err != nil {
		t.Fatal(err)
	}
	if c.Retention() != 1 || len(c.Points) != 12 {
		t.Fatalf("full menu: retention %v, %d points", c.Retention(), len(c.Points))
	}
	// k beyond n also returns the full menu.
	c, err = CompressMenu(p, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 12 {
		t.Fatalf("oversized k: %d points", len(c.Points))
	}
}

func TestCompressMenuRetainsMostRevenue(t *testing.T) {
	// Under roll-up demand a 5-entry menu captures the bulk of a 40-point
	// grid's revenue (buyers upgrade to the next offered version).
	p := gridProblem(t, 40)
	c, err := CompressMenu(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 5 {
		t.Fatalf("%d points", len(c.Points))
	}
	if c.Retention() < 0.7 {
		t.Fatalf("5/40 menu retains only %.2f", c.Retention())
	}
	if err := c.Func.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRolledUpRevenueModel(t *testing.T) {
	p := gridProblem(t, 4) // qualities 1, 34, 67, 100; lowest valuation ≈ 0.99
	price := func(x float64) float64 { return 0.5 }
	// Everything offered at a price below every valuation: all mass sells.
	if got := RolledUpRevenue(p, []float64{1, 34, 67, 100}, price); got != 0.5 {
		t.Fatalf("full offering revenue %v (total mass 1 at price 0.5)", got)
	}
	// Only the top version offered: everyone rolls up to it.
	if got := RolledUpRevenue(p, []float64{100}, price); got != 0.5 {
		t.Fatalf("top-only revenue %v", got)
	}
	// Only the bottom version offered: buyers above it walk away.
	if got := RolledUpRevenue(p, []float64{1}, price); got != 0.125 {
		t.Fatalf("bottom-only revenue %v", got)
	}
	// Empty menu sells nothing.
	if got := RolledUpRevenue(p, nil, price); got != 0 {
		t.Fatalf("empty menu revenue %v", got)
	}
	// Unaffordable prices sell nothing.
	expensive := func(float64) float64 { return 1e9 }
	if got := RolledUpRevenue(p, []float64{100}, expensive); got != 0 {
		t.Fatalf("unaffordable revenue %v", got)
	}
}

func TestGroupedDPSingleGroup(t *testing.T) {
	// One offered version, demand steps at valuations 10 (mass 3) and 20
	// (mass 1): price 10 earns 40, price 20 earns 20 → optimum 10.
	groups := []group{{q: 5, vals: []float64{10, 20}, masses: []float64{3, 1}}}
	prices, rev := groupedDP(groups, []float64{10, 20})
	if len(prices) != 1 || prices[0] != 10 || rev != 40 {
		t.Fatalf("prices %v revenue %v", prices, rev)
	}
	// Flip the masses: now price 20 earns 60 vs 40·... vals 10 (mass 1),
	// 20 (mass 3): price 10 → 40, price 20 → 60.
	groups = []group{{q: 5, vals: []float64{10, 20}, masses: []float64{1, 3}}}
	prices, rev = groupedDP(groups, []float64{10, 20})
	if prices[0] != 20 || rev != 60 {
		t.Fatalf("prices %v revenue %v", prices, rev)
	}
}

func TestGroupedDPChainConstraints(t *testing.T) {
	// Two offered versions at qualities 1 and 2. Group 1 buyer values 10;
	// group 2 buyer values 25. Unconstrained the seller would charge
	// (10, 25), but the ratio chain caps z2 ≤ 2·z1 = 20, and candidates are
	// {10, 25}: z2 = 25 violates the cap, z2 = 10 sells at 10.
	// Alternatives: z1 = 25 (no sale in group 1, cap 50) → z2 = 25 sells →
	// total 25 beats (10, 10) = 20 and is the grouped optimum.
	groups := []group{
		{q: 1, vals: []float64{10}, masses: []float64{1}},
		{q: 2, vals: []float64{25}, masses: []float64{1}},
	}
	prices, rev := groupedDP(groups, []float64{10, 25})
	if rev != 25 {
		t.Fatalf("revenue %v, want 25 (prices %v)", rev, prices)
	}
	if prices[0] != 25 || prices[1] != 25 {
		t.Fatalf("prices %v, want [25 25]", prices)
	}
	// With a richer candidate set the paper's cap-riding price appears:
	// adding 12.5 lets the seller charge (12.5, 25) for revenue 25 as well
	// — but charging (10, 20) requires 20 in the set and earns 30.
	prices, rev = groupedDP(groups, []float64{10, 20, 25})
	if rev != 30 || prices[0] != 10 || prices[1] != 20 {
		t.Fatalf("prices %v revenue %v, want [10 20] for 30", prices, rev)
	}
}

func TestGroupedDPMatchesPlainDPOnSingletons(t *testing.T) {
	// When every group holds exactly its own point and candidates include
	// all cascade values, the grouped DP equals the plain DP (Figure 5).
	pts := []BuyerPoint{
		{X: 1, Value: 100, Mass: 0.25},
		{X: 2, Value: 150, Mass: 0.25},
		{X: 3, Value: 280, Mass: 0.25},
		{X: 4, Value: 350, Mass: 0.25},
	}
	p, err := NewProblem(pts)
	if err != nil {
		t.Fatal(err)
	}
	offered := []float64{1, 2, 3, 4}
	// Structural candidates: v_j scaled along the chain.
	candSet := map[float64]bool{}
	for _, a := range offered {
		for _, pt := range pts {
			candSet[pt.Value*a/pt.X] = true
		}
	}
	var candidates []float64
	for v := range candSet {
		candidates = append(candidates, v)
	}
	sortFloats(candidates)
	prices, rev := groupedDP(buildGroups(pts, offered), candidates)
	_, dpRev, err := MaximizeRevenueDP(p)
	if err != nil {
		t.Fatal(err)
	}
	if rev != dpRev {
		t.Fatalf("grouped %v vs plain DP %v (prices %v)", rev, dpRev, prices)
	}
}

func TestBuildGroups(t *testing.T) {
	pts := []BuyerPoint{
		{X: 1, Value: 1, Mass: 1},
		{X: 2, Value: 2, Mass: 1},
		{X: 3, Value: 3, Mass: 1},
		{X: 9, Value: 9, Mass: 1}, // above the menu: dropped
	}
	groups := buildGroups(pts, []float64{2, 5})
	if len(groups) != 2 {
		t.Fatalf("%d groups", len(groups))
	}
	if len(groups[0].vals) != 2 { // x=1 and x=2 roll up to q=2
		t.Fatalf("group 0 has %v", groups[0].vals)
	}
	if len(groups[1].vals) != 1 { // x=3 rolls up to q=5
		t.Fatalf("group 1 has %v", groups[1].vals)
	}
}

// TestCompressMenuGreedyNearExact compares the greedy selection against
// exhaustive enumeration of all k-subsets on small instances: greedy need
// not be optimal, but it should stay within a reasonable factor.
func TestCompressMenuGreedyNearExact(t *testing.T) {
	src := rng.New(97)
	for trial := 0; trial < 8; trial++ {
		p := randomProblemB(src, 6)
		all := p.Points()
		candSet := map[float64]bool{}
		for _, pt := range all {
			candSet[pt.Value] = true
		}
		var candidates []float64
		for v := range candSet {
			candidates = append(candidates, v)
		}
		sortFloats(candidates)

		const k = 2
		bestExact := 0.0
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				offered := []float64{all[i].X, all[j].X}
				prices, _ := groupedDP(buildGroups(all, offered), candidates)
				f := func(x float64) float64 {
					if x <= offered[0] {
						return prices[0]
					}
					return prices[1]
				}
				if rev := RolledUpRevenue(p, offered, f); rev > bestExact {
					bestExact = rev
				}
			}
		}
		c, err := CompressMenu(p, k)
		if err != nil {
			t.Fatal(err)
		}
		if c.RolledUpRevenue < 0.7*bestExact-1e-9 {
			t.Fatalf("trial %d: greedy %v far below exact %v", trial, c.RolledUpRevenue, bestExact)
		}
		if c.RolledUpRevenue > bestExact+1e-6 {
			t.Fatalf("trial %d: greedy %v above exact %v (enumeration bug?)", trial, c.RolledUpRevenue, bestExact)
		}
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestCompressMenuRandomInstances(t *testing.T) {
	src := rng.New(83)
	for trial := 0; trial < 10; trial++ {
		p := randomProblemB(src, 4+src.Intn(8))
		c, err := CompressMenu(p, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Points) > 3 {
			t.Fatalf("trial %d: %d points", trial, len(c.Points))
		}
		if err := c.Func.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The selected points stay sorted and are a subset of the problem.
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].X <= c.Points[i-1].X {
				t.Fatalf("trial %d: menu not sorted", trial)
			}
		}
	}
}
