package opt

import (
	"math"
	"testing"

	"nimbus/internal/pricing"
	"nimbus/internal/rng"
)

func TestInterpolateValidation(t *testing.T) {
	bad := [][]PricePoint{
		{},
		{{X: -1, Target: 1}},
		{{X: 1, Target: -2}},
		{{X: 1, Target: 1}, {X: 1, Target: 2}}, // duplicate
		{{X: 2, Target: 1}, {X: 1, Target: 2}}, // unsorted
		{{X: 1, Target: math.Inf(1)}},          // non-finite
		{{X: math.NaN(), Target: 1}},           // NaN
	}
	for i, targets := range bad {
		if _, err := InterpolateL2(targets); err == nil {
			t.Errorf("L2 case %d accepted", i)
		}
		if _, err := InterpolateL1(targets); err == nil {
			t.Errorf("L1 case %d accepted", i)
		}
	}
}

func TestInterpolateFeasibleTargetsExact(t *testing.T) {
	// Already-feasible targets must be reproduced exactly by both solvers.
	targets := []PricePoint{{X: 1, Target: 10}, {X: 2, Target: 15}, {X: 4, Target: 20}}
	for name, solve := range map[string]func([]PricePoint) (*pricing.Function, error){
		"L2": InterpolateL2, "L1": InterpolateL1,
	} {
		f, err := solve(targets)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, tg := range targets {
			if math.Abs(f.Price(tg.X)-tg.Target) > 1e-6 {
				t.Fatalf("%s: price(%v) = %v, want %v", name, tg.X, f.Price(tg.X), tg.Target)
			}
		}
	}
}

func TestInterpolateInfeasibleTargets(t *testing.T) {
	// Superadditive targets (ratio rises) cannot be matched; the solvers
	// must return the closest feasible function.
	targets := []PricePoint{{X: 1, Target: 10}, {X: 2, Target: 25}}
	for name, solve := range map[string]func([]PricePoint) (*pricing.Function, error){
		"L2": InterpolateL2, "L1": InterpolateL1,
	} {
		f, err := solve(targets)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("%s result not arbitrage-free: %v", name, err)
		}
	}
	// For L2 the exact projection is computable by hand: minimize
	// (z1-10)² + (z2-25)² s.t. z2 ≤ 2·z1, z2 ≥ z1. Lagrange on z2 = 2z1:
	// minimize (z1-10)² + (2z1-25)² → z1 = (10+50)/5 = 12, z2 = 24.
	f, err := InterpolateL2(targets)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Price(1)-12) > 1e-6 || math.Abs(f.Price(2)-24) > 1e-6 {
		t.Fatalf("L2 projection = (%v, %v), want (12, 24)", f.Price(1), f.Price(2))
	}
}

func TestInterpolateL2MatchesGridSearch(t *testing.T) {
	src := rng.New(29)
	for trial := 0; trial < 25; trial++ {
		n := 2 + src.Intn(2)
		targets := make([]PricePoint, n)
		x := 0.0
		for i := 0; i < n; i++ {
			x += 0.5 + src.Float64()
			targets[i] = PricePoint{X: x, Target: math.Round(src.Float64() * 20)}
		}
		f, err := InterpolateL2(targets)
		if err != nil {
			t.Fatal(err)
		}
		got := L2Objective(targets, f.Price)
		want := gridSearchL2(targets, 120)
		if got > want+0.05*(1+want) {
			t.Fatalf("trial %d: Dykstra objective %v vs grid %v (targets %v)", trial, got, want, targets)
		}
	}
}

func TestInterpolateL1MatchesGridSearch(t *testing.T) {
	src := rng.New(30)
	for trial := 0; trial < 25; trial++ {
		n := 2 + src.Intn(2)
		targets := make([]PricePoint, n)
		x := 0.0
		for i := 0; i < n; i++ {
			x += 0.5 + src.Float64()
			targets[i] = PricePoint{X: x, Target: math.Round(src.Float64() * 20)}
		}
		f, err := InterpolateL1(targets)
		if err != nil {
			t.Fatal(err)
		}
		got := L1Objective(targets, f.Price)
		want := gridSearchL1(targets, 120)
		if got > want+0.05*(1+want) {
			t.Fatalf("trial %d: LP objective %v vs grid %v (targets %v)", trial, got, want, targets)
		}
	}
}

func gridSearch(targets []PricePoint, steps int, obj func(z []float64) float64) float64 {
	n := len(targets)
	maxP := 0.0
	for _, t := range targets {
		if t.Target > maxP {
			maxP = t.Target
		}
	}
	maxP = maxP*1.2 + 1
	best := math.Inf(1)
	z := make([]float64, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if v := obj(z); v < best {
				best = v
			}
			return
		}
		for s := 0; s <= steps; s++ {
			v := maxP * float64(s) / float64(steps)
			if i > 0 {
				if v < z[i-1]-1e-12 || v/targets[i].X > z[i-1]/targets[i-1].X+1e-12 {
					continue
				}
			}
			z[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func gridSearchL2(targets []PricePoint, steps int) float64 {
	return gridSearch(targets, steps, func(z []float64) float64 {
		var s float64
		for i, t := range targets {
			s += (z[i] - t.Target) * (z[i] - t.Target)
		}
		return s
	})
}

func gridSearchL1(targets []PricePoint, steps int) float64 {
	return gridSearch(targets, steps, func(z []float64) float64 {
		var s float64
		for i, t := range targets {
			s += math.Abs(z[i] - t.Target)
		}
		return s
	})
}

func TestInterpolationResultsAreArbitrageFree(t *testing.T) {
	src := rng.New(31)
	for trial := 0; trial < 30; trial++ {
		n := 1 + src.Intn(7)
		targets := make([]PricePoint, n)
		x := 0.0
		for i := 0; i < n; i++ {
			x += 0.3 + 2*src.Float64()
			targets[i] = PricePoint{X: x, Target: 30 * src.Float64()}
		}
		for name, solve := range map[string]func([]PricePoint) (*pricing.Function, error){
			"L2": InterpolateL2, "L1": InterpolateL1,
		} {
			f, err := solve(targets)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if err := f.Validate(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if err := pricing.CheckSubadditiveOnGrid(f.Price, 2*x, 30); err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
		}
	}
}

func TestInterpolateL2Weighted(t *testing.T) {
	// Infeasible targets: the heavier point wins the tug of war. With
	// targets (1→10, 2→25) the constraint binds at z2 = 2·z1; minimizing
	// w1(z1−10)² + w2(2z1−25)² gives z1 = (w1·10 + 2·w2·25)/(w1 + 4·w2).
	targets := []PricePoint{{X: 1, Target: 10}, {X: 2, Target: 25}}
	heavyTop, err := InterpolateL2Weighted(targets, []float64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	wantZ1 := (1*10 + 2*100*25.0) / (1 + 4*100.0)
	if math.Abs(heavyTop.Price(1)-wantZ1) > 1e-6 {
		t.Fatalf("weighted z1 = %v, want %v", heavyTop.Price(1), wantZ1)
	}
	// Heavier weight on the top point pulls its price closer to the target
	// than the unweighted solution does.
	plain, err := InterpolateL2(targets)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(heavyTop.Price(2)-25) >= math.Abs(plain.Price(2)-25) {
		t.Fatalf("weighting did not pull the top point: %v vs %v", heavyTop.Price(2), plain.Price(2))
	}
	// Validation.
	if _, err := InterpolateL2Weighted(targets, []float64{1}); err == nil {
		t.Fatal("weight length mismatch accepted")
	}
	if _, err := InterpolateL2Weighted(targets, []float64{1, 0}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := InterpolateL2Weighted(targets, []float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN weight accepted")
	}
}

func TestObjectiveHelpers(t *testing.T) {
	targets := []PricePoint{{X: 1, Target: 10}, {X: 2, Target: 20}}
	price := func(x float64) float64 { return 10 * x }
	if got := L2Objective(targets, price); got != 0 {
		t.Fatalf("L2Objective = %v", got)
	}
	if got := L1Objective(targets, price); got != 0 {
		t.Fatalf("L1Objective = %v", got)
	}
	price2 := func(x float64) float64 { return 10*x + 1 }
	if got := L2Objective(targets, price2); got != 2 {
		t.Fatalf("L2Objective = %v, want 2", got)
	}
	if got := L1Objective(targets, price2); got != 2 {
		t.Fatalf("L1Objective = %v, want 2", got)
	}
}
