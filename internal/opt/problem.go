// Package opt implements Section 5 of the paper: assigning arbitrage-free
// prices to the offered model versions so as to maximize the seller's
// revenue (or interpolate desired price points).
//
// The exact problem (3) — maximize revenue over all monotone, subadditive,
// non-negative pricing functions — is coNP-hard (Theorem 7). The package
// provides:
//
//   - MaximizeRevenueDP: the paper's O(n²) dynamic program (Algorithm 1) for
//     the relaxed problem (5), which is within a factor 2 of the exact
//     optimum (Proposition 3) and arbitrage-free by Lemma 8.
//   - MaximizeRevenueBruteForce: the exact exponential search (Algorithm 2),
//     enumerating seller subsets and pricing with the min-cost covering
//     envelope — the "MILP" baseline in Figures 9/10/13/14.
//   - InterpolateL2 / InterpolateL1: the relaxed price-interpolation
//     programs T²_PI and T^∞_PI (Dykstra+PAV, and LP respectively).
//   - Baselines Lin, MaxC, MedC and OptC from Section 6.2.
package opt

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"nimbus/internal/pricing"
)

// BuyerPoint is one market-research point: at quality X = 1/δ, buyers with
// total mass Mass value the model version at Value (the demand and value
// curves of Figure 2(a), already transformed to the quality axis).
type BuyerPoint struct {
	X     float64 `json:"x"`     // quality a_j = 1/NCP
	Value float64 `json:"value"` // buyer valuation v_j
	Mass  float64 `json:"mass"`  // buyer mass b_j (count or probability)
}

// Problem is a revenue-maximization instance: buyer points sorted by
// increasing quality with valuations monotone non-decreasing (the paper's
// standing assumption — better models are worth at least as much).
type Problem struct {
	points []BuyerPoint
}

// ErrInvalidProblem wraps all NewProblem validation failures.
var ErrInvalidProblem = errors.New("opt: invalid problem")

// NewProblem validates and sorts the buyer points.
func NewProblem(points []BuyerPoint) (*Problem, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("opt: no buyer points: %w", ErrInvalidProblem)
	}
	pts := append([]BuyerPoint(nil), points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	for i, p := range pts {
		if p.X <= 0 {
			return nil, fmt.Errorf("opt: point %d has non-positive quality %v: %w", i, p.X, ErrInvalidProblem)
		}
		if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Value) || math.IsInf(p.Value, 0) || math.IsNaN(p.Mass) {
			return nil, fmt.Errorf("opt: point %d has non-finite fields %+v: %w", i, p, ErrInvalidProblem)
		}
		if p.Value < 0 || p.Mass < 0 {
			return nil, fmt.Errorf("opt: point %d has negative value/mass (%v, %v): %w", i, p.Value, p.Mass, ErrInvalidProblem)
		}
		if i > 0 {
			// Points are sorted by X above, so failing to strictly exceed
			// the predecessor means a duplicate — detected by order, not
			// bitwise float equality.
			if p.X <= pts[i-1].X {
				return nil, fmt.Errorf("opt: duplicate quality %v: %w", p.X, ErrInvalidProblem)
			}
			if p.Value < pts[i-1].Value {
				return nil, fmt.Errorf("opt: valuation drops from %v to %v at quality %v (must be monotone; use Monotonize): %w",
					pts[i-1].Value, p.Value, p.X, ErrInvalidProblem)
			}
		}
	}
	return &Problem{points: pts}, nil
}

// Monotonize returns a copy of points whose valuations have been raised to
// the running maximum, the standard repair for noisy market research that
// makes the instance satisfy the DP's monotone-valuation assumption.
func Monotonize(points []BuyerPoint) []BuyerPoint {
	pts := append([]BuyerPoint(nil), points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	run := 0.0
	for i := range pts {
		if pts[i].Value > run {
			run = pts[i].Value
		}
		pts[i].Value = run
	}
	return pts
}

// Points returns the sorted buyer points.
func (p *Problem) Points() []BuyerPoint {
	return append([]BuyerPoint(nil), p.points...)
}

// N returns the number of buyer points.
func (p *Problem) N() int { return len(p.points) }

// saleTol absorbs floating-point jitter in "price ≤ valuation" tests.
const saleTol = 1e-9

// Revenue evaluates the T_BV objective Σ b_j·p(a_j)·1[p(a_j) ≤ v_j] for an
// arbitrary price function.
func (p *Problem) Revenue(price func(float64) float64) float64 {
	var rev float64
	for _, pt := range p.points {
		if c := price(pt.X); c <= pt.Value+saleTol {
			rev += pt.Mass * c
		}
	}
	return rev
}

// Affordability returns the fraction of buyer mass that can afford its
// desired version, the paper's affordability ratio.
func (p *Problem) Affordability(price func(float64) float64) float64 {
	var total, can float64
	for _, pt := range p.points {
		total += pt.Mass
		if price(pt.X) <= pt.Value+saleTol {
			can += pt.Mass
		}
	}
	// Masses are validated non-negative, so an ordered comparison guards
	// the division without a float equality.
	if total <= 0 {
		return 0
	}
	return can / total
}

// RevenueOfPrices evaluates T_BV for explicit knot prices aligned with the
// problem's sorted points.
func (p *Problem) RevenueOfPrices(prices []float64) (float64, error) {
	if len(prices) != len(p.points) {
		return 0, fmt.Errorf("opt: %d prices for %d points", len(prices), len(p.points))
	}
	var rev float64
	for i, pt := range p.points {
		if prices[i] <= pt.Value+saleTol {
			rev += pt.Mass * prices[i]
		}
	}
	return rev, nil
}

// function builds the arbitrage-free piecewise-linear pricing function
// through the knot prices.
func (p *Problem) function(prices []float64) (*pricing.Function, error) {
	pts := make([]pricing.Point, len(prices))
	for i, z := range prices {
		pts[i] = pricing.Point{X: p.points[i].X, Price: z}
	}
	return pricing.NewFunction(pts)
}
