package opt

import (
	"testing"

	"nimbus/internal/rng"
)

func TestSubadditiveInterpolationFeasibleBasics(t *testing.T) {
	// A concave, monotone set of targets is trivially interpolable.
	ok, err := SubadditiveInterpolationFeasible([]PricePoint{
		{X: 1, Target: 10}, {X: 2, Target: 15}, {X: 4, Target: 20},
	})
	if err != nil || !ok {
		t.Fatalf("concave targets: ok=%v err=%v", ok, err)
	}
	// Dropping targets violates monotonicity.
	ok, err = SubadditiveInterpolationFeasible([]PricePoint{
		{X: 1, Target: 10}, {X: 2, Target: 5},
	})
	if err != nil || ok {
		t.Fatalf("non-monotone targets accepted: ok=%v err=%v", ok, err)
	}
	// Doubling quality more than doubles the price: combinations undercut.
	ok, err = SubadditiveInterpolationFeasible([]PricePoint{
		{X: 1, Target: 10}, {X: 2, Target: 25},
	})
	if err != nil || ok {
		t.Fatalf("superadditive targets accepted: ok=%v err=%v", ok, err)
	}
	// Zero targets are not positive functions.
	ok, err = SubadditiveInterpolationFeasible([]PricePoint{{X: 1, Target: 0}})
	if err != nil || ok {
		t.Fatalf("zero target accepted: ok=%v err=%v", ok, err)
	}
	if _, err := SubadditiveInterpolationFeasible(nil); err == nil {
		t.Fatal("empty targets accepted")
	}
}

func TestUnboundedSubsetSum(t *testing.T) {
	cases := []struct {
		weights []int
		target  int
		want    bool
	}{
		{[]int{2, 3}, 7, true}, // 2+2+3
		{[]int{2, 3}, 1, false},
		{[]int{5, 7}, 11, false},
		{[]int{5, 7}, 12, true},
		{[]int{4, 6}, 9, false}, // parity
		{[]int{4, 6}, 10, true},
		{[]int{3}, 0, true},
	}
	for _, c := range cases {
		got, err := UnboundedSubsetSumReachable(c.weights, c.target)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("reachable(%v, %d) = %v, want %v", c.weights, c.target, got, c.want)
		}
	}
	if _, err := UnboundedSubsetSumReachable([]int{0}, 3); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := UnboundedSubsetSumReachable([]int{2}, -1); err == nil {
		t.Fatal("negative target accepted")
	}
}

// TestTheorem7Reduction exercises the paper's reduction in both directions:
// the interpolation instance is feasible iff no unbounded subset sum hits K.
func TestTheorem7Reduction(t *testing.T) {
	src := rng.New(61)
	for trial := 0; trial < 60; trial++ {
		n := 1 + src.Intn(3)
		weights := make([]int, 0, n)
		seen := map[int]bool{}
		for len(weights) < n {
			w := 2 + src.Intn(8)
			if !seen[w] {
				seen[w] = true
				weights = append(weights, w)
			}
		}
		k := 10 + src.Intn(15)
		reachable, err := UnboundedSubsetSumReachable(weights, k)
		if err != nil {
			t.Fatal(err)
		}
		instance, err := Theorem7Instance(weights, k)
		if err != nil {
			t.Fatal(err)
		}
		feasible, err := SubadditiveInterpolationFeasible(instance)
		if err != nil {
			t.Fatal(err)
		}
		if feasible == reachable {
			t.Fatalf("trial %d: weights=%v K=%d reachable=%v but feasible=%v",
				trial, weights, k, reachable, feasible)
		}
	}
	if _, err := Theorem7Instance(nil, 5); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := Theorem7Instance([]int{5}, 5); err == nil {
		t.Fatal("weight ≥ K accepted")
	}
	if _, err := Theorem7Instance([]int{-1}, 5); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestMaxInterpolationViolation(t *testing.T) {
	// Feasible targets have zero violation.
	v, idx, err := MaxInterpolationViolation([]PricePoint{
		{X: 1, Target: 10}, {X: 2, Target: 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 || idx != -1 {
		t.Fatalf("violation %v at %d for feasible targets", v, idx)
	}
	// The superadditive pair is undercut by 2×10 = 20 < 25, violation 5 at
	// the second point.
	v, idx, err = MaxInterpolationViolation([]PricePoint{
		{X: 1, Target: 10}, {X: 2, Target: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 || v < 4.999 || v > 5.001 {
		t.Fatalf("violation %v at %d, want 5 at 1", v, idx)
	}
	if _, _, err := MaxInterpolationViolation(nil); err == nil {
		t.Fatal("empty targets accepted")
	}
}
