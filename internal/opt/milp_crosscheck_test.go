package opt

import (
	"math"
	"testing"

	"nimbus/internal/lp"
	"nimbus/internal/rng"
)

// solveRelaxedViaMILP solves problem (5) with the T_BV objective as a
// mixed-integer program on the package's own branch-and-bound solver — an
// algorithm-independent oracle for the dynamic program.
//
// Variables per point j: price z_j ≥ 0, sale indicator s_j ∈ {0,1}, and
// collected revenue r_j with
//
//	r_j ≤ z_j,  r_j ≤ M·s_j,  z_j ≤ v_j + M·(1 − s_j)
//
// plus the chain constraints z_{j} ≥ z_{j-1} and a_j·z_{j-1} ≥ a_{j-1}·z_j,
// maximizing Σ b_j·r_j.
func solveRelaxedViaMILP(t *testing.T, p *Problem) float64 {
	t.Helper()
	pts := p.Points()
	n := len(pts)
	vMax := pts[n-1].Value
	// Chain-feasible prices never need to exceed v_n·a_j/a_1 to be useful;
	// a single global cap keeps the formulation bounded.
	bigM := vMax*pts[n-1].X/pts[0].X + 1

	prob := lp.NewProblem()
	prob.Maximize = true
	z := make([]int, n)
	s := make([]int, n)
	r := make([]int, n)
	for j := 0; j < n; j++ {
		z[j] = prob.AddVar(0)
	}
	for j := 0; j < n; j++ {
		s[j] = prob.AddVar(0)
	}
	for j, pt := range pts {
		r[j] = prob.AddVar(pt.Mass)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for j, pt := range pts {
		must(prob.AddConstraint(map[int]float64{s[j]: 1}, lp.LE, 1))
		must(prob.AddConstraint(map[int]float64{r[j]: 1, z[j]: -1}, lp.LE, 0))
		must(prob.AddConstraint(map[int]float64{r[j]: 1, s[j]: -bigM}, lp.LE, 0))
		must(prob.AddConstraint(map[int]float64{z[j]: 1, s[j]: bigM}, lp.LE, pt.Value+bigM))
		must(prob.AddConstraint(map[int]float64{z[j]: 1}, lp.LE, bigM))
		if j > 0 {
			prev := pts[j-1]
			must(prob.AddConstraint(map[int]float64{z[j]: 1, z[j-1]: -1}, lp.GE, 0))
			must(prob.AddConstraint(map[int]float64{z[j-1]: pt.X, z[j]: -prev.X}, lp.GE, 0))
		}
	}
	milp := lp.NewMILP(prob)
	for j := 0; j < n; j++ {
		milp.SetInteger(s[j])
	}
	sol, err := milp.SolveMILP()
	if err != nil {
		t.Fatal(err)
	}
	return sol.Objective
}

// TestDPMatchesMILPOracle verifies Algorithm 1 against the MILP oracle on
// random small instances — two completely independent exact methods for
// the relaxed problem must agree.
func TestDPMatchesMILPOracle(t *testing.T) {
	src := rng.New(67)
	for trial := 0; trial < 25; trial++ {
		p := randomProblemB(src, 1+src.Intn(4))
		_, dpRev, err := MaximizeRevenueDP(p)
		if err != nil {
			t.Fatal(err)
		}
		milpRev := solveRelaxedViaMILP(t, p)
		if math.Abs(dpRev-milpRev) > 1e-5*(1+milpRev) {
			t.Fatalf("trial %d: DP %v vs MILP oracle %v (points %+v)",
				trial, dpRev, milpRev, p.Points())
		}
	}
}

// TestMILPOracleOnFigure5 pins the oracle itself against the hand-computed
// relaxed optimum of the worked example.
func TestMILPOracleOnFigure5(t *testing.T) {
	p, err := NewProblem([]BuyerPoint{
		{X: 1, Value: 100, Mass: 0.25},
		{X: 2, Value: 150, Mass: 0.25},
		{X: 3, Value: 280, Mass: 0.25},
		{X: 4, Value: 350, Mass: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := solveRelaxedViaMILP(t, p); math.Abs(got-193.75) > 1e-6 {
		t.Fatalf("MILP oracle %v, want 193.75", got)
	}
}
