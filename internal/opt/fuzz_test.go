package opt

import (
	"math"
	"testing"
)

// FuzzMaximizeRevenueDP throws arbitrary three-point markets at the DP:
// inputs are either rejected by validation or produce an arbitrage-free
// function whose revenue matches its own evaluation.
func FuzzMaximizeRevenueDP(f *testing.F) {
	f.Add(1.0, 100.0, 0.25, 2.0, 150.0, 0.25, 3.0, 280.0, 0.25)
	f.Add(0.5, 0.0, 1.0, 1.0, 0.0, 1.0, 2.0, 5.0, 0.0)
	f.Fuzz(func(t *testing.T, x1, v1, m1, x2, v2, m2, x3, v3, m3 float64) {
		pts := Monotonize([]BuyerPoint{
			{X: x1, Value: v1, Mass: m1},
			{X: x2, Value: v2, Mass: m2},
			{X: x3, Value: v3, Mass: m3},
		})
		p, err := NewProblem(pts)
		if err != nil {
			return
		}
		fn, rev, err := MaximizeRevenueDP(p)
		if err != nil {
			t.Fatalf("DP failed on valid problem: %v", err)
		}
		if math.IsNaN(rev) || rev < 0 {
			t.Fatalf("revenue %v", rev)
		}
		if err := fn.Validate(); err != nil {
			t.Fatalf("DP produced arbitrage: %v", err)
		}
		if got := p.Revenue(fn.Price); math.Abs(got-rev) > 1e-6*(1+math.Abs(rev)) {
			t.Fatalf("evaluated %v vs reported %v", got, rev)
		}
	})
}

// FuzzCompressMenu checks the grouped-DP compression on arbitrary inputs:
// no panics, valid output prices.
func FuzzCompressMenu(f *testing.F) {
	f.Add(1.0, 10.0, 1.0, 2.0, 20.0, 1.0, 4.0, 30.0, 1.0)
	f.Fuzz(func(t *testing.T, x1, v1, m1, x2, v2, m2, x3, v3, m3 float64) {
		pts := Monotonize([]BuyerPoint{
			{X: x1, Value: v1, Mass: m1},
			{X: x2, Value: v2, Mass: m2},
			{X: x3, Value: v3, Mass: m3},
		})
		p, err := NewProblem(pts)
		if err != nil {
			return
		}
		c, err := CompressMenu(p, 2)
		if err != nil {
			t.Fatalf("compress failed on valid problem: %v", err)
		}
		if err := c.Func.Validate(); err != nil {
			t.Fatalf("compressed menu has arbitrage: %v", err)
		}
		if math.IsNaN(c.RolledUpRevenue) || c.RolledUpRevenue < 0 {
			t.Fatalf("rolled-up revenue %v", c.RolledUpRevenue)
		}
	})
}
