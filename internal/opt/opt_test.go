package opt

import (
	"errors"
	"math"
	"testing"

	"nimbus/internal/pricing"
	"nimbus/internal/rng"
)

// figure5 is the paper's worked example (Figure 5): four versions at
// qualities 1..4, uniform buyer mass 0.25, valuations 100/150/280/350.
func figure5(t *testing.T) *Problem {
	t.Helper()
	p, err := NewProblem([]BuyerPoint{
		{X: 1, Value: 100, Mass: 0.25},
		{X: 2, Value: 150, Mass: 0.25},
		{X: 3, Value: 280, Mass: 0.25},
		{X: 4, Value: 350, Mass: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewProblemValidation(t *testing.T) {
	cases := map[string][]BuyerPoint{
		"empty":          {},
		"zero quality":   {{X: 0, Value: 1, Mass: 1}},
		"negative value": {{X: 1, Value: -1, Mass: 1}},
		"negative mass":  {{X: 1, Value: 1, Mass: -1}},
		"duplicate x":    {{X: 1, Value: 1, Mass: 1}, {X: 1, Value: 2, Mass: 1}},
		"value drops":    {{X: 1, Value: 5, Mass: 1}, {X: 2, Value: 3, Mass: 1}},
		"infinite value": {{X: 1, Value: math.Inf(1), Mass: 1}},
		"nan quality":    {{X: math.NaN(), Value: 1, Mass: 1}},
	}
	for name, pts := range cases {
		if _, err := NewProblem(pts); !errors.Is(err, ErrInvalidProblem) {
			t.Errorf("%s: want ErrInvalidProblem, got %v", name, err)
		}
	}
	// Unsorted input is fine — it gets sorted.
	p, err := NewProblem([]BuyerPoint{{X: 2, Value: 5, Mass: 1}, {X: 1, Value: 3, Mass: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Points()[0].X != 1 {
		t.Fatal("points not sorted")
	}
}

func TestMonotonize(t *testing.T) {
	pts := Monotonize([]BuyerPoint{
		{X: 1, Value: 5, Mass: 1},
		{X: 2, Value: 3, Mass: 1},
		{X: 3, Value: 7, Mass: 1},
	})
	want := []float64{5, 5, 7}
	for i, w := range want {
		if pts[i].Value != w {
			t.Fatalf("Monotonize = %v", pts)
		}
	}
	if _, err := NewProblem(pts); err != nil {
		t.Fatalf("monotonized points rejected: %v", err)
	}
}

func TestRevenueAndAffordability(t *testing.T) {
	p := figure5(t)
	// Constant price 280 sells to the two top points.
	price := func(float64) float64 { return 280 }
	if got := p.Revenue(price); math.Abs(got-140) > 1e-9 {
		t.Fatalf("Revenue = %v, want 140", got)
	}
	if got := p.Affordability(price); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Affordability = %v, want 0.5", got)
	}
	rev, err := p.RevenueOfPrices([]float64{100, 150, 280, 350})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rev-220) > 1e-9 {
		t.Fatalf("RevenueOfPrices = %v, want 220", rev)
	}
	if _, err := p.RevenueOfPrices([]float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestFigure5Example(t *testing.T) {
	p := figure5(t)

	// (a) the naive valuation-matching prices admit arbitrage: ratio rises
	// from 150/2=75 to 280/3≈93.3.
	naive, err := Naive(p)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Validate() == nil {
		t.Fatal("naive pricing should exhibit arbitrage on Figure 5")
	}

	// (d) the exact brute force: selling every version with envelope prices
	// 100/150/250/300 yields revenue 200.
	bfPrices, bfRev, err := MaximizeRevenueBruteForce(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bfRev-200) > 1e-9 {
		t.Fatalf("brute force revenue = %v, want 200", bfRev)
	}
	wantPrices := []float64{100, 150, 250, 300}
	for i, w := range wantPrices {
		if math.Abs(bfPrices[i]-w) > 1e-9 {
			t.Fatalf("brute force prices = %v, want %v", bfPrices, wantPrices)
		}
	}

	// (e) the DP approximation: 100/150/225/300 with revenue 193.75 — a
	// negligible gap to the optimum, and arbitrage-free.
	f, dpRev, err := MaximizeRevenueDP(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dpRev-193.75) > 1e-9 {
		t.Fatalf("DP revenue = %v, want 193.75", dpRev)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("DP function not arbitrage-free: %v", err)
	}
	if got := p.Revenue(f.Price); math.Abs(got-dpRev) > 1e-9 {
		t.Fatalf("evaluated DP revenue %v != reported %v", got, dpRev)
	}

	// (b)/(c) constant and linear baselines lose revenue.
	for name, build := range map[string]func(*Problem) (*pricing.Function, error){
		"Lin": Lin, "MaxC": MaxC, "MedC": MedC, "OptC": OptC,
	} {
		bl, err := build(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := bl.Validate(); err != nil {
			t.Fatalf("%s not arbitrage-free: %v", name, err)
		}
		if rev := p.Revenue(bl.Price); rev > dpRev+1e-9 {
			t.Fatalf("%s revenue %v beats DP %v", name, rev, dpRev)
		}
	}

	// Specific baseline values documented in DESIGN.md.
	optC, _ := OptC(p)
	if rev := p.Revenue(optC.Price); math.Abs(rev-140) > 1e-9 {
		t.Fatalf("OptC revenue = %v, want 140", rev)
	}
	maxC, _ := MaxC(p)
	if rev := p.Revenue(maxC.Price); math.Abs(rev-87.5) > 1e-9 {
		t.Fatalf("MaxC revenue = %v, want 87.5", rev)
	}
	medC, _ := MedC(p)
	if aff := p.Affordability(medC.Price); aff < 0.5 {
		t.Fatalf("MedC affordability %v < 0.5", aff)
	}
}

// randomProblem builds a random valid instance with monotone valuations.
func randomProblem(src *rng.Source, n int) *Problem {
	pts := make([]BuyerPoint, n)
	x := 0.0
	v := 0.0
	for i := 0; i < n; i++ {
		x += 0.5 + 3*src.Float64()
		v += 10 * src.Float64()
		pts[i] = BuyerPoint{X: x, Value: v, Mass: 0.1 + src.Float64()}
	}
	p, err := NewProblem(pts)
	if err != nil {
		panic(err)
	}
	return p
}

func TestDPPropertiesOnRandomInstances(t *testing.T) {
	src := rng.New(17)
	for trial := 0; trial < 80; trial++ {
		p := randomProblem(src, 1+src.Intn(9))
		f, rev, err := MaximizeRevenueDP(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Arbitrage-free knots and extension.
		if err := f.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		maxX := p.Points()[p.N()-1].X
		if err := pricing.CheckSubadditiveOnGrid(f.Price, 2*maxX, 40); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Reported revenue matches evaluation.
		if got := p.Revenue(f.Price); math.Abs(got-rev) > 1e-6*(1+rev) {
			t.Fatalf("trial %d: evaluated %v vs reported %v", trial, got, rev)
		}
		// DP dominates every baseline that is feasible for the relaxed
		// problem (5). The constant baselines always are; Lin's knots can
		// violate the ratio chain on arbitrary value curves (it is only
		// well-behaved for the curve families the paper evaluates), so it
		// only participates when it validates.
		for name, build := range map[string]func(*Problem) (*pricing.Function, error){
			"Lin": Lin, "MaxC": MaxC, "MedC": MedC, "OptC": OptC,
		} {
			bl, err := build(p)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if bl.Validate() != nil {
				continue
			}
			if blRev := p.Revenue(bl.Price); blRev > rev+1e-9 {
				t.Fatalf("trial %d: %s revenue %v beats DP %v", trial, name, blRev, rev)
			}
		}
	}
}

func TestDPWithinFactorTwoOfBruteForce(t *testing.T) {
	src := rng.New(18)
	for trial := 0; trial < 40; trial++ {
		p := randomProblem(src, 1+src.Intn(6))
		_, dpRev, err := MaximizeRevenueDP(p)
		if err != nil {
			t.Fatal(err)
		}
		_, bfRev, err := MaximizeRevenueBruteForce(p)
		if err != nil {
			t.Fatal(err)
		}
		if dpRev > bfRev+1e-6*(1+bfRev) {
			t.Fatalf("trial %d: DP %v exceeds exact optimum %v", trial, dpRev, bfRev)
		}
		if dpRev < bfRev/2-1e-9 {
			t.Fatalf("trial %d: DP %v below half of optimum %v (Prop. 3 violated)", trial, dpRev, bfRev)
		}
	}
}

func TestBruteForceUpperBound(t *testing.T) {
	// The exact optimum can never exceed the naive sum Σ b_j v_j.
	src := rng.New(19)
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(src, 1+src.Intn(5))
		_, bfRev, err := MaximizeRevenueBruteForce(p)
		if err != nil {
			t.Fatal(err)
		}
		var ceiling float64
		for _, pt := range p.Points() {
			ceiling += pt.Mass * pt.Value
		}
		if bfRev > ceiling+1e-9 {
			t.Fatalf("trial %d: BF %v exceeds ceiling %v", trial, bfRev, ceiling)
		}
	}
}

func TestBruteForceRejectsLargeInstances(t *testing.T) {
	pts := make([]BuyerPoint, 21)
	for i := range pts {
		pts[i] = BuyerPoint{X: float64(i + 1), Value: float64(i + 1), Mass: 1}
	}
	p, err := NewProblem(pts)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := MaximizeRevenueBruteForce(p); err == nil {
		t.Fatal("21-point brute force accepted")
	}
}

func TestCoveringEnvelope(t *testing.T) {
	// Versions: quality 1 at 10, quality 2 at 30. Covering 2 with two 1s
	// costs 20 < 30.
	env := newCoveringEnvelope([]float64{1, 2}, []float64{10, 30})
	cases := []struct{ target, want float64 }{
		{0.5, 10}, {1, 10}, {1.5, 20}, {2, 20}, {3, 30}, {4, 40},
	}
	for _, c := range cases {
		if got := env.price(c.target); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("price(%v) = %v, want %v", c.target, got, c.want)
		}
	}
}

func TestEnvelopePriceProperties(t *testing.T) {
	src := rng.New(20)
	for trial := 0; trial < 25; trial++ {
		n := 1 + src.Intn(4)
		qual := make([]float64, n)
		cost := make([]float64, n)
		x := 0.0
		for i := 0; i < n; i++ {
			x += 0.5 + 2*src.Float64()
			qual[i] = x
			cost[i] = 1 + 20*src.Float64()
		}
		price, err := EnvelopePrice(qual, cost)
		if err != nil {
			t.Fatal(err)
		}
		if err := pricing.CheckMonotoneOnGrid(price, 3*x, 30); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := pricing.CheckSubadditiveOnGrid(price, 3*x, 24); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Never above the anchor cost at an anchor quality.
		for i := range qual {
			if price(qual[i]) > cost[i]+1e-9 {
				t.Fatalf("trial %d: envelope above anchor at %v", trial, qual[i])
			}
		}
	}
	if _, err := EnvelopePrice(nil, nil); err == nil {
		t.Fatal("empty envelope accepted")
	}
	if _, err := EnvelopePrice([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched envelope accepted")
	}
	if _, err := EnvelopePrice([]float64{-1}, []float64{1}); err == nil {
		t.Fatal("negative quality accepted")
	}
}

func TestDPSinglePoint(t *testing.T) {
	p, err := NewProblem([]BuyerPoint{{X: 5, Value: 42, Mass: 2}})
	if err != nil {
		t.Fatal(err)
	}
	f, rev, err := MaximizeRevenueDP(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rev-84) > 1e-9 {
		t.Fatalf("revenue %v, want 84", rev)
	}
	if math.Abs(f.Price(5)-42) > 1e-9 {
		t.Fatalf("price %v, want 42", f.Price(5))
	}
}

func TestDPZeroValuations(t *testing.T) {
	p, err := NewProblem([]BuyerPoint{
		{X: 1, Value: 0, Mass: 1},
		{X: 2, Value: 0, Mass: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, rev, err := MaximizeRevenueDP(p)
	if err != nil {
		t.Fatal(err)
	}
	if rev != 0 {
		t.Fatalf("revenue %v, want 0", rev)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDPMatchesSmallExhaustiveSearch(t *testing.T) {
	// Independent oracle for the relaxed problem (5): by Lemmas 10-12 the
	// optimum prices each point either at some valuation v_j scaled along
	// the ratio chain (v_j·a_i/a_j) or at zero, so exhaustively combining
	// those candidates under the chain constraints finds the exact optimum
	// on small instances.
	src := rng.New(23)
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(src, 2+src.Intn(3)) // 2-4 points
		_, dpRev, err := MaximizeRevenueDP(p)
		if err != nil {
			t.Fatal(err)
		}
		want := exhaustiveRelaxed(p)
		if math.Abs(dpRev-want) > 1e-6*(1+want) {
			t.Fatalf("trial %d: DP %v vs structural exhaustive %v", trial, dpRev, want)
		}
	}
}

// exhaustiveRelaxed searches all chain-feasible price vectors whose entries
// come from the structural candidate set {0} ∪ {v_j·a_i/a_j}.
func exhaustiveRelaxed(p *Problem) float64 {
	pts := p.Points()
	n := len(pts)
	candidates := make([][]float64, n)
	for i := range pts {
		set := []float64{0}
		for j := range pts {
			set = append(set, pts[j].Value*pts[i].X/pts[j].X)
		}
		candidates[i] = set
	}
	best := 0.0
	prices := make([]float64, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			rev, _ := p.RevenueOfPrices(prices)
			if rev > best {
				best = rev
			}
			return
		}
		for _, z := range candidates[i] {
			if i > 0 {
				if z < prices[i-1]-1e-12 || z/pts[i].X > prices[i-1]/pts[i-1].X+1e-12 {
					continue
				}
			}
			prices[i] = z
			rec(i + 1)
		}
	}
	rec(0)
	return best
}
