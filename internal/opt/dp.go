package opt

import (
	"math"

	"nimbus/internal/pricing"
)

// MaximizeRevenueDP solves the relaxed revenue-maximization problem (5) for
// the buyer-valuation objective T_BV exactly, with the paper's O(n²)
// dynamic program (Algorithm 1, Theorem 13).
//
// The state is (k, Δ): the best assignment of prices to points k..n such
// that every price-per-quality ratio z_j/a_j is at most Δ. Only the n+1
// values {v_1/a_1, …, v_n/a_n, +∞} of Δ ever occur. At each point the
// optimum either rides the ratio cap (z_k = Δ·a_k, when that still sells),
// sells exactly at the valuation (tightening the cap to v_k/a_k), or prices
// the point out of the market (keeping the cap ratio tight so later points
// are unconstrained).
//
// The returned pricing function satisfies the relaxed-subadditive chain
// constraints, hence is arbitrage-free (Lemma 8), and its revenue is at
// least half the coNP-hard exact optimum (Proposition 3).
func MaximizeRevenueDP(p *Problem) (*pricing.Function, float64, error) {
	f, err := maximizeDPWithBonus(p, 0)
	if err != nil {
		return nil, 0, err
	}
	return f, p.Revenue(f.Price), nil
}

// maximizeDPWithBonus runs Algorithm 1 with the objective
// Σ b_j·(z_j + bonus)·1[sold]. A zero bonus is plain revenue maximization;
// a positive bonus rewards each sale regardless of price, which the
// affordability-constrained optimizer sweeps as a Lagrange multiplier. The
// recurrence arguments of Lemmas 10–12 are unchanged: selling at the
// highest feasible price still dominates (the bonus is price-independent),
// and the sell-versus-skip comparison simply carries the extra b_k·bonus on
// the sell branch.
func maximizeDPWithBonus(p *Problem, bonus float64) (*pricing.Function, error) {
	pts := p.points
	n := len(pts)

	// Δ candidates: ratio caps v_j/a_j plus the unconstrained +∞.
	deltas := make([]float64, n+1)
	for j, pt := range pts {
		deltas[j] = pt.Value / pt.X
	}
	deltas[n] = math.Inf(1)

	const (
		choiceCap  = iota // z_k = Δ·a_k, cap unchanged
		choiceSell        // z_k = v_k, cap becomes v_k/a_k
		choiceSkip        // z_k = z_{k+1}·a_k/a_{k+1} (no sale), cap unchanged
	)

	// opt[k][di] is the best revenue from points k..n-1 under cap deltas[di];
	// opt[n][di] = 0.
	opt := make([][]float64, n+1)
	choice := make([][]uint8, n)
	for k := range opt {
		opt[k] = make([]float64, n+1)
	}
	for k := range choice {
		choice[k] = make([]uint8, n+1)
	}

	deltaIndex := func(j int) int { return j } // cap v_j/a_j has index j

	for k := n - 1; k >= 0; k-- {
		for di := 0; di <= n; di++ {
			cap := deltas[di]
			capped := pts[k].X * cap // Δ·a_k, may be +Inf
			if capped <= pts[k].Value {
				// Lemma 11: ride the cap; it sells and dominates.
				opt[k][di] = pts[k].Mass*(capped+bonus) + opt[k+1][di]
				choice[k][di] = choiceCap
				continue
			}
			// Lemma 12: sell at v_k (tighter cap downstream) or skip.
			sell := pts[k].Mass*(pts[k].Value+bonus) + opt[k+1][deltaIndex(k)]
			skip := opt[k+1][di]
			if sell >= skip {
				opt[k][di] = sell
				choice[k][di] = choiceSell
			} else {
				opt[k][di] = skip
				choice[k][di] = choiceSkip
			}
		}
	}

	// Reconstruct decisions forward, then prices backward (skip prices
	// cascade down from the next point's price).
	decisions := make([]uint8, n)
	di := n // start unconstrained
	for k := 0; k < n; k++ {
		decisions[k] = choice[k][di]
		if decisions[k] == choiceSell {
			di = deltaIndex(k)
		}
	}
	prices := make([]float64, n)
	// The caps in force at each point, replayed forward for choiceCap.
	caps := make([]float64, n)
	cur := math.Inf(1)
	for k := 0; k < n; k++ {
		caps[k] = cur
		if decisions[k] == choiceSell {
			cur = deltas[k]
		}
	}
	for k := n - 1; k >= 0; k-- {
		switch decisions[k] {
		case choiceCap:
			prices[k] = caps[k] * pts[k].X
		case choiceSell:
			prices[k] = pts[k].Value
		case choiceSkip:
			if k == n-1 {
				// Nothing to cascade from: price the point out at the cap
				// (or its valuation-breaking price when unconstrained).
				if math.IsInf(caps[k], 1) {
					prices[k] = pts[k].Value // revenue 0 either way; keep finite
				} else {
					prices[k] = caps[k] * pts[k].X
				}
			} else {
				prices[k] = prices[k+1] * pts[k].X / pts[k+1].X
			}
		}
	}

	return p.function(prices)
}
