package opt

import (
	"fmt"
	"math"

	"nimbus/internal/isotone"
	"nimbus/internal/lp"
	"nimbus/internal/pricing"
)

// PricePoint is a seller-desired price point for interpolation: at quality
// X the seller would like to charge Target.
type PricePoint struct {
	X      float64
	Target float64
}

func validateTargets(targets []PricePoint) error {
	if len(targets) == 0 {
		return fmt.Errorf("opt: no interpolation targets: %w", ErrInvalidProblem)
	}
	for i, p := range targets {
		if p.X <= 0 || math.IsNaN(p.X) || math.IsInf(p.X, 0) {
			return fmt.Errorf("opt: target %d has invalid quality %v: %w", i, p.X, ErrInvalidProblem)
		}
		if p.Target < 0 || math.IsNaN(p.Target) || math.IsInf(p.Target, 0) {
			return fmt.Errorf("opt: target %d has invalid price %v: %w", i, p.Target, ErrInvalidProblem)
		}
		if i > 0 && p.X <= targets[i-1].X {
			return fmt.Errorf("opt: target qualities must be strictly increasing: %w", ErrInvalidProblem)
		}
	}
	return nil
}

// InterpolateL2 solves the relaxed price-interpolation program with the
// squared objective T²_PI:
//
//	min Σ (z_j − P_j)²  s.t.  z non-decreasing, z_j/a_j non-increasing, z ≥ 0,
//
// by Dykstra's alternating projections between the two chain cones, each
// projected exactly by (weighted) pool-adjacent-violators. By Proposition 2
// the optimal relaxed objective is within Σ P_j²/2 of the coNP-hard exact
// program. Targets must be sorted by strictly increasing quality.
func InterpolateL2(targets []PricePoint) (*pricing.Function, error) {
	return InterpolateL2Weighted(targets, nil)
}

// InterpolateL2Weighted solves the weighted variant
//
//	min Σ w_j·(z_j − P_j)²
//
// under the same chain constraints, letting the seller emphasize the price
// points that matter commercially. nil weights mean all ones; weights must
// be positive.
func InterpolateL2Weighted(targets []PricePoint, weights []float64) (*pricing.Function, error) {
	if err := validateTargets(targets); err != nil {
		return nil, err
	}
	n := len(targets)
	if weights == nil {
		weights = make([]float64, n)
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != n {
		return nil, fmt.Errorf("opt: %d weights for %d targets: %w", len(weights), n, ErrInvalidProblem)
	}
	for i, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("opt: weight %d is %v, must be positive finite: %w", i, w, ErrInvalidProblem)
		}
	}
	y := make([]float64, n)
	a := make([]float64, n)
	for i, p := range targets {
		y[i] = p.Target
		a[i] = p.X
	}
	// Dykstra's algorithm over C1 = {z monotone ↑, z ≥ 0} and
	// C2 = {z: z/a antitonic}, with projections in the w-weighted norm.
	z := append([]float64(nil), y...)
	p1 := make([]float64, n) // correction for C1
	p2 := make([]float64, n) // correction for C2
	tmp := make([]float64, n)
	ratioW := make([]float64, n)
	for i := range a {
		ratioW[i] = weights[i] * a[i] * a[i]
	}
	const maxIter = 5000
	const tol = 1e-11
	for iter := 0; iter < maxIter; iter++ {
		// Project z + p1 onto C1 (weighted isotonic, then clamp at 0).
		for i := range tmp {
			tmp[i] = z[i] + p1[i]
		}
		proj, err := isotone.Regress(tmp, weights)
		if err != nil {
			return nil, err
		}
		for i := range proj {
			if proj[i] < 0 {
				proj[i] = 0
			}
		}
		for i := range p1 {
			p1[i] = tmp[i] - proj[i]
		}
		z1 := proj

		// Project z1 + p2 onto C2 (in ratio space, weighted by w·a²).
		maxDiff := 0.0
		for i := range tmp {
			tmp[i] = (z1[i] + p2[i]) / a[i]
		}
		ratios, err := isotone.RegressAntitonic(tmp, ratioW)
		if err != nil {
			return nil, err
		}
		for i := range ratios {
			nz := ratios[i] * a[i]
			p2[i] = (z1[i] + p2[i]) - nz
			if d := math.Abs(nz - z[i]); d > maxDiff {
				maxDiff = d
			}
			z[i] = nz
		}
		if maxDiff < tol {
			break
		}
	}
	// Clean residual numerical violations before constructing the function.
	z = enforceChains(z, a)
	return functionFromKnots(a, z)
}

// InterpolateL1 solves the relaxed price-interpolation program with the
// absolute-error objective T^∞_PI (the paper's ℓ(x,y) = |x−y| variant):
//
//	min Σ t_j  s.t.  t_j ≥ |z_j − P_j|, chains as in (5),
//
// exactly, as a linear program on the package's simplex solver. By
// Proposition 2 the optimum is within Σ P_j/2 of the exact program.
func InterpolateL1(targets []PricePoint) (*pricing.Function, error) {
	if err := validateTargets(targets); err != nil {
		return nil, err
	}
	n := len(targets)
	prob := lp.NewProblem()
	zs := make([]int, n)
	ts := make([]int, n)
	for i := range targets {
		zs[i] = prob.AddVar(0)
	}
	for i := range targets {
		ts[i] = prob.AddVar(1)
	}
	for i, p := range targets {
		// t_i ≥ z_i − P_i  and  t_i ≥ P_i − z_i.
		if err := prob.AddConstraint(map[int]float64{ts[i]: 1, zs[i]: -1}, lp.GE, -p.Target); err != nil {
			return nil, err
		}
		if err := prob.AddConstraint(map[int]float64{ts[i]: 1, zs[i]: 1}, lp.GE, p.Target); err != nil {
			return nil, err
		}
		if i > 0 {
			// Monotone: z_i ≥ z_{i-1}.
			if err := prob.AddConstraint(map[int]float64{zs[i]: 1, zs[i-1]: -1}, lp.GE, 0); err != nil {
				return nil, err
			}
			// Ratio: z_{i-1}/a_{i-1} ≥ z_i/a_i ⇔ a_i·z_{i-1} − a_{i-1}·z_i ≥ 0.
			if err := prob.AddConstraint(map[int]float64{zs[i-1]: p.X, zs[i]: -targets[i-1].X}, lp.GE, 0); err != nil {
				return nil, err
			}
		}
	}
	sol, err := prob.Solve()
	if err != nil {
		return nil, fmt.Errorf("opt: L1 interpolation LP: %w", err)
	}
	a := make([]float64, n)
	z := make([]float64, n)
	for i, p := range targets {
		a[i] = p.X
		z[i] = sol.X[zs[i]]
	}
	z = enforceChains(z, a)
	return functionFromKnots(a, z)
}

// enforceChains repairs tiny numerical violations of the monotone and ratio
// chains (from iterative or LP round-off) without moving prices more than
// the violation magnitude.
func enforceChains(z, a []float64) []float64 {
	out := append([]float64(nil), z...)
	for i := range out {
		if out[i] < 0 {
			out[i] = 0
		}
	}
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			out[i] = out[i-1]
		}
		if cap := out[i-1] / a[i-1] * a[i]; out[i] > cap {
			out[i] = cap
		}
	}
	return out
}

func functionFromKnots(a, z []float64) (*pricing.Function, error) {
	pts := make([]pricing.Point, len(a))
	for i := range a {
		pts[i] = pricing.Point{X: a[i], Price: z[i]}
	}
	f, err := pricing.NewFunction(pts)
	if err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// L2Objective evaluates T²_PI's loss Σ (p(a_j) − P_j)² for a price function.
func L2Objective(targets []PricePoint, price func(float64) float64) float64 {
	var s float64
	for _, t := range targets {
		d := price(t.X) - t.Target
		s += d * d
	}
	return s
}

// L1Objective evaluates Σ |p(a_j) − P_j|.
func L1Objective(targets []PricePoint, price func(float64) float64) float64 {
	var s float64
	for _, t := range targets {
		s += math.Abs(price(t.X) - t.Target)
	}
	return s
}
