package opt

import (
	"math"
	"testing"
	"testing/quick"

	"nimbus/internal/rng"
)

// Property: DP prices are bounded by the top valuation, non-negative,
// non-decreasing, and their quality ratios are non-increasing (the chain
// constraints of problem (5)).
func TestQuickDPPriceStructure(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		p := randomProblemB(src, 1+src.Intn(12))
		fn, _, err := MaximizeRevenueDP(p)
		if err != nil {
			return false
		}
		pts := fn.Points()
		maxV := p.Points()[p.N()-1].Value
		prevPrice, prevRatio := 0.0, math.Inf(1)
		for _, pt := range pts {
			if pt.Price < 0 || pt.Price > maxV+1e-9 {
				return false
			}
			if pt.Price < prevPrice-1e-9 {
				return false
			}
			ratio := pt.Price / pt.X
			if ratio > prevRatio+1e-9 {
				return false
			}
			prevPrice, prevRatio = pt.Price, ratio
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Monotonize is idempotent and never lowers a valuation.
func TestQuickMonotonizeProperties(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		n := 1 + src.Intn(10)
		pts := make([]BuyerPoint, n)
		x := 0.0
		for i := range pts {
			x += 0.1 + src.Float64()
			pts[i] = BuyerPoint{X: x, Value: 100 * src.Float64(), Mass: src.Float64()}
		}
		once := Monotonize(pts)
		twice := Monotonize(once)
		for i := range once {
			if once[i].Value < pts[i].Value-1e-12 {
				return false // lowered a valuation
			}
			if twice[i] != once[i] {
				return false // not idempotent
			}
			if i > 0 && once[i].Value < once[i-1].Value {
				return false // not monotone
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the brute force never loses to the DP, and both are bounded by
// the full surplus Σ b·v.
func TestQuickRevenueOrdering(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		p := randomProblemB(src, 1+src.Intn(5))
		_, dpRev, err := MaximizeRevenueDP(p)
		if err != nil {
			return false
		}
		_, bfRev, err := MaximizeRevenueBruteForce(p)
		if err != nil {
			return false
		}
		var surplus float64
		for _, pt := range p.Points() {
			surplus += pt.Mass * pt.Value
		}
		return dpRev <= bfRev+1e-6*(1+bfRev) && bfRev <= surplus+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
