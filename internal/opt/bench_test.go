package opt

import (
	"fmt"
	"testing"

	"nimbus/internal/rng"
)

func benchProblem(n int) *Problem {
	src := rng.New(99)
	return randomProblemB(src, n)
}

// randomProblemB mirrors the test helper without *testing.T plumbing.
func randomProblemB(src *rng.Source, n int) *Problem {
	pts := make([]BuyerPoint, n)
	x, v := 0.0, 0.0
	for i := 0; i < n; i++ {
		x += 0.5 + 3*src.Float64()
		v += 10 * src.Float64()
		pts[i] = BuyerPoint{X: x, Value: v, Mass: 0.1 + src.Float64()}
	}
	p, err := NewProblem(pts)
	if err != nil {
		panic(err)
	}
	return p
}

func BenchmarkMaximizeRevenueDP(b *testing.B) {
	for _, n := range []int{10, 100, 500} {
		p := benchProblem(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := MaximizeRevenueDP(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBruteForce(b *testing.B) {
	for _, n := range []int{6, 10} {
		p := benchProblem(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := MaximizeRevenueBruteForce(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkInterpolateL2(b *testing.B) {
	src := rng.New(101)
	targets := make([]PricePoint, 50)
	x := 0.0
	for i := range targets {
		x += 0.5 + src.Float64()
		targets[i] = PricePoint{X: x, Target: 30 * src.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := InterpolateL2(targets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpolateL1(b *testing.B) {
	src := rng.New(102)
	targets := make([]PricePoint, 20)
	x := 0.0
	for i := range targets {
		x += 0.5 + src.Float64()
		targets[i] = PricePoint{X: x, Target: 30 * src.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := InterpolateL1(targets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAffordabilityConstrainedDP(b *testing.B) {
	p := benchProblem(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaximizeRevenueWithAffordability(p, 0.8); err != nil {
			b.Fatal(err)
		}
	}
}
