package opt

import (
	"math"
	"testing"

	"nimbus/internal/rng"
)

// convexProblem is a workload where pure revenue maximization prices many
// low-end buyers out (affordability well below 1), so the constraint bites.
func convexProblem(t *testing.T) *Problem {
	t.Helper()
	pts := make([]BuyerPoint, 50)
	for i := range pts {
		x := 1 + 99*float64(i)/49
		pts[i] = BuyerPoint{X: x, Value: x * x / 100, Mass: 1.0 / 50}
	}
	p, err := NewProblem(pts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAffordabilityValidation(t *testing.T) {
	p := convexProblem(t)
	for _, alpha := range []float64{-0.1, 1.1} {
		if _, err := MaximizeRevenueWithAffordability(p, alpha); err == nil {
			t.Fatalf("alpha %v accepted", alpha)
		}
	}
}

func TestAffordabilityZeroMatchesDP(t *testing.T) {
	p := convexProblem(t)
	_, dpRev, err := MaximizeRevenueDP(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := MaximizeRevenueWithAffordability(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Revenue-dpRev) > 1e-9*(1+dpRev) {
		t.Fatalf("alpha=0 revenue %v != DP %v", r.Revenue, dpRev)
	}
}

func TestAffordabilityConstraintBinds(t *testing.T) {
	p := convexProblem(t)
	unconstrained, err := MaximizeRevenueWithAffordability(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if unconstrained.Affordability > 0.9 {
		t.Skipf("workload not selective enough: affordability %v", unconstrained.Affordability)
	}
	r, err := MaximizeRevenueWithAffordability(p, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if r.Affordability < 0.95 {
		t.Fatalf("affordability %v below target", r.Affordability)
	}
	if r.Revenue > unconstrained.Revenue+1e-9 {
		t.Fatalf("constrained revenue %v exceeds unconstrained %v", r.Revenue, unconstrained.Revenue)
	}
	if err := r.Func.Validate(); err != nil {
		t.Fatalf("constrained prices not arbitrage-free: %v", err)
	}
}

func TestAffordabilityOneAlwaysFeasible(t *testing.T) {
	src := rng.New(51)
	for trial := 0; trial < 25; trial++ {
		p := randomProblem(src, 1+src.Intn(8))
		r, err := MaximizeRevenueWithAffordability(p, 1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r.Affordability < 1-1e-12 {
			t.Fatalf("trial %d: affordability %v", trial, r.Affordability)
		}
		if err := r.Func.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestAffordabilityFrontierMonotone(t *testing.T) {
	p := convexProblem(t)
	frontier, err := AffordabilityFrontier(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) != 6 {
		t.Fatalf("%d frontier points", len(frontier))
	}
	for i := 1; i < len(frontier); i++ {
		if frontier[i].Revenue > frontier[i-1].Revenue+1e-9 {
			t.Fatalf("frontier revenue increases at %d: %v -> %v", i, frontier[i-1].Revenue, frontier[i].Revenue)
		}
	}
	// The ends: unconstrained revenue at alpha=0, full affordability at 1.
	if frontier[len(frontier)-1].Affordability < 1-1e-12 {
		t.Fatalf("frontier end affordability %v", frontier[len(frontier)-1].Affordability)
	}
	if _, err := AffordabilityFrontier(p, 1); err == nil {
		t.Fatal("degenerate frontier accepted")
	}
}

func TestAffordabilityZeroValuations(t *testing.T) {
	p, err := NewProblem([]BuyerPoint{{X: 1, Value: 0, Mass: 1}, {X: 2, Value: 0, Mass: 1}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := MaximizeRevenueWithAffordability(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Affordability != 1 || r.Revenue != 0 {
		t.Fatalf("zero-valuation result %+v", r)
	}
}
