package opt

import (
	"fmt"
	"sort"

	"nimbus/internal/pricing"
)

// The four pricing baselines of Section 6.2. All of them produce
// well-behaved (arbitrage-free) pricing functions — they lose revenue, not
// safety.

// Lin is the linear baseline: interpolate between the smallest and largest
// buyer valuations across the quality range.
func Lin(p *Problem) (*pricing.Function, error) {
	xs := make([]float64, len(p.points))
	for i, pt := range p.points {
		xs[i] = pt.X
	}
	lo := p.points[0].Value
	hi := p.points[len(p.points)-1].Value
	f, err := pricing.Linear(xs, lo, hi)
	if err != nil {
		return nil, fmt.Errorf("opt: Lin baseline: %w", err)
	}
	return f, nil
}

// MaxC prices every version at the highest buyer valuation.
func MaxC(p *Problem) (*pricing.Function, error) {
	return constant(p, p.points[len(p.points)-1].Value)
}

// MedC prices every version at the weighted median valuation, so that at
// least half of the buyer mass can afford a model instance.
func MedC(p *Problem) (*pricing.Function, error) {
	type vm struct{ v, m float64 }
	vals := make([]vm, len(p.points))
	var total float64
	for i, pt := range p.points {
		vals[i] = vm{pt.Value, pt.Mass}
		total += pt.Mass
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].v > vals[j].v })
	// Largest price c with mass{v ≥ c} ≥ total/2.
	var cum float64
	price := 0.0
	for _, e := range vals {
		cum += e.m
		price = e.v
		if cum >= total/2 {
			break
		}
	}
	return constant(p, price)
}

// OptC prices every version at the revenue-optimal constant price, which is
// always one of the valuations.
func OptC(p *Problem) (*pricing.Function, error) {
	best, bestRev := 0.0, -1.0
	for _, cand := range p.points {
		c := cand.Value
		var rev float64
		for _, pt := range p.points {
			if c <= pt.Value+saleTol {
				rev += pt.Mass * c
			}
		}
		if rev > bestRev {
			bestRev, best = rev, c
		}
	}
	return constant(p, best)
}

func constant(p *Problem, c float64) (*pricing.Function, error) {
	xs := make([]float64, len(p.points))
	for i, pt := range p.points {
		xs[i] = pt.X
	}
	f, err := pricing.Constant(xs, c)
	if err != nil {
		return nil, fmt.Errorf("opt: constant baseline: %w", err)
	}
	return f, nil
}

// Naive prices every version exactly at its valuation with no arbitrage
// protection — Figure 5(a)'s straw man. It extracts the maximum possible
// revenue on paper but is NOT arbitrage-free in general; it exists so that
// the experiments can show the arbitrage region.
func Naive(p *Problem) (*pricing.Function, error) {
	pts := make([]pricing.Point, len(p.points))
	for i, pt := range p.points {
		pts[i] = pricing.Point{X: pt.X, Price: pt.Value}
	}
	return pricing.NewFunction(pts)
}
