package opt

import (
	"fmt"

	"nimbus/internal/pricing"
)

// The paper's Section 6.3 observes that revenue maximization and buyer
// affordability can conflict (MedC beats MBP's affordability in one panel)
// and leaves the revenue/fairness trade-off to future work. This file
// implements that extension: maximize revenue subject to a minimum
// affordability ratio.

// AffordableResult is the outcome of the constrained optimization.
type AffordableResult struct {
	// Func is the arbitrage-free pricing function.
	Func *pricing.Function
	// Revenue is its T_BV revenue.
	Revenue float64
	// Affordability is the achieved buyer-mass fraction that can afford
	// its version.
	Affordability float64
}

// MaximizeRevenueWithAffordability maximizes revenue over the relaxed
// arbitrage-free prices subject to Affordability ≥ alpha.
//
// It sweeps a Lagrangian per-sale bonus through the bonus-extended DP: with
// bonus 0 the DP is pure revenue maximization; as the bonus grows it pays
// to sell to more buyer mass at lower prices, and in the limit the DP
// prices every version within its buyers' valuations (affordability 1, so
// the constraint is always satisfiable for alpha ≤ 1). Among all sweep
// solutions meeting the constraint, the highest-revenue one is returned.
//
// As with any Lagrangian relaxation, the sweep reaches exactly the points
// on the upper-concave envelope of the (affordability, revenue) frontier;
// for targets strictly between two envelope vertices the result satisfies
// the constraint but may be conservative in revenue. The guarantee that
// matters for the marketplace — arbitrage-freeness plus the affordability
// floor — always holds exactly.
func MaximizeRevenueWithAffordability(p *Problem, alpha float64) (*AffordableResult, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("opt: affordability target %v outside [0, 1]", alpha)
	}
	var vmax float64
	for _, pt := range p.points {
		if pt.Value > vmax {
			vmax = pt.Value
		}
	}
	// Bonus sweep: 0, then geometric up to a value that dwarfs any price
	// (at which point the DP maximizes sold mass outright).
	bonuses := []float64{0}
	if vmax > 0 {
		for b := vmax * 1e-3; b <= vmax*1e6; b *= 2 {
			bonuses = append(bonuses, b)
		}
	} else {
		bonuses = append(bonuses, 1) // degenerate all-zero valuations
	}

	var best *AffordableResult
	for _, bonus := range bonuses {
		f, err := maximizeDPWithBonus(p, bonus)
		if err != nil {
			return nil, err
		}
		aff := p.Affordability(f.Price)
		if aff+1e-12 < alpha {
			continue
		}
		rev := p.Revenue(f.Price)
		if best == nil || rev > best.Revenue {
			best = &AffordableResult{Func: f, Revenue: rev, Affordability: aff}
		}
	}
	if best == nil {
		// The sweep's limit solution should always satisfy alpha ≤ 1; reach
		// here only on pathological float behaviour. Fall back to zero
		// prices, which every buyer can afford.
		zero := make([]float64, p.N())
		f, err := p.function(zero)
		if err != nil {
			return nil, err
		}
		best = &AffordableResult{Func: f, Revenue: 0, Affordability: p.Affordability(f.Price)}
		if best.Affordability+1e-12 < alpha {
			return nil, fmt.Errorf("opt: affordability %v unreachable (max %v)", alpha, best.Affordability)
		}
	}
	return best, nil
}

// AffordabilityFrontier sweeps alpha over [0, 1] and reports the
// revenue/affordability trade-off curve — the fairness frontier left to
// future work in the paper's conclusion.
func AffordabilityFrontier(p *Problem, steps int) ([]AffordableResult, error) {
	if steps < 2 {
		return nil, fmt.Errorf("opt: need at least 2 frontier steps, got %d", steps)
	}
	out := make([]AffordableResult, 0, steps)
	for i := 0; i < steps; i++ {
		alpha := float64(i) / float64(steps-1)
		r, err := MaximizeRevenueWithAffordability(p, alpha)
		if err != nil {
			return nil, err
		}
		out = append(out, *r)
	}
	// The candidate sweep is identical for every alpha and a tighter alpha
	// only shrinks the feasible subset, so revenue is non-increasing along
	// the frontier by construction.
	return out, nil
}
