package opt

import (
	"fmt"
	"math"
	"sort"

	"nimbus/internal/pricing"
)

// Menu compression: real storefronts show a handful of versions, not the
// 100-point grid the research curves are sampled on (the paper's runtime
// figures sweep exactly this "number of price values"). CompressMenu picks
// k of the buyer points to offer and prices them against *rolled-up*
// demand: a buyer who wanted quality x buys the cheapest offered version
// with quality ≥ x (their accuracy requirement is met or exceeded) iff its
// price is within their valuation; buyers above the best offered version
// walk away.
//
// Pricing a compressed menu is a grouped version of problem (5): each
// offered version carries a whole demand curve (the valuations of everyone
// who rolls up to it), not a single (v, b) pair. groupedDP solves it by
// dynamic programming over price candidates restricted to the observed
// valuations — the only prices that are ever locally optimal against a
// step demand curve — under the same monotone + ratio chain constraints,
// so the resulting menu is arbitrage-free. Selection is greedy forward
// search on the grouped revenue.
//
// A short menu can occasionally *beat* the full menu's revenue — with few
// versions, low-end buyers are forced to upgrade — the classic versioning
// effect from the information-goods literature the paper cites.

// CompressedMenu is the result of a compression run.
type CompressedMenu struct {
	// Points are the k selected buyer points (sorted by quality).
	Points []BuyerPoint
	// Func is the grouped-DP pricing function over the offered qualities.
	Func *pricing.Function
	// RolledUpRevenue is the menu's revenue against the full population
	// under the roll-up model.
	RolledUpRevenue float64
	// FullRevenue is the uncompressed DP revenue, for the retention ratio.
	FullRevenue float64
}

// Retention is RolledUpRevenue / FullRevenue (can exceed 1: see the
// versioning effect above).
func (c *CompressedMenu) Retention() float64 {
	// Revenues are non-negative by construction, so an ordered comparison
	// guards the division without a float equality.
	if c.FullRevenue <= 0 {
		return 1
	}
	return c.RolledUpRevenue / c.FullRevenue
}

// RolledUpRevenue evaluates a menu of offered qualities (sorted ascending)
// against the full population of p under the roll-up model.
func RolledUpRevenue(p *Problem, offered []float64, price func(float64) float64) float64 {
	if len(offered) == 0 {
		return 0
	}
	var rev float64
	for _, pt := range p.points {
		// Cheapest offered quality ≥ the buyer's requirement.
		i := sort.SearchFloat64s(offered, pt.X)
		if i == len(offered) {
			continue // nothing good enough on the menu
		}
		if c := price(offered[i]); c <= pt.Value+saleTol {
			rev += pt.Mass * c
		}
	}
	return rev
}

// group is one offered version and the demand that rolls up to it.
type group struct {
	q      float64 // offered quality
	vals   []float64
	masses []float64 // aligned with vals
}

// revenueAt is z · mass{v ≥ z} for the group.
func (g *group) revenueAt(z float64) float64 {
	var m float64
	for i, v := range g.vals {
		if v >= z-saleTol {
			m += g.masses[i]
		}
	}
	return z * m
}

// groupedDP prices the offered qualities against rolled-up demand. Price
// candidates are the distinct valuations in the population (plus zero);
// the chain constraints z monotone non-decreasing and z/q non-increasing
// keep the menu arbitrage-free. Runtime O(K·|Z|²).
func groupedDP(groups []group, candidates []float64) ([]float64, float64) {
	k := len(groups)
	z := append([]float64{0}, candidates...)
	nz := len(z)

	// best[j] = optimal revenue for groups i.. given z_{i-1} = z[j];
	// computed backwards. choice[i][j] = candidate index picked.
	best := make([]float64, nz)
	next := make([]float64, nz)
	choice := make([][]int, k)
	for i := range choice {
		choice[i] = make([]int, nz)
	}
	for i := k - 1; i >= 0; i-- {
		g := groups[i]
		for j := 0; j < nz; j++ {
			prevZ := z[j]
			// Ratio cap from the previous offered point; the first group
			// is unconstrained.
			cap := math.Inf(1)
			if i > 0 {
				cap = prevZ / groups[i-1].q * g.q
			}
			bestVal := math.Inf(-1)
			bestC := -1
			for c := 0; c < nz; c++ {
				price := z[c]
				if price < prevZ-saleTol || price > cap+saleTol {
					continue
				}
				val := g.revenueAt(price)
				if i < k-1 {
					val += next[c]
				}
				if val > bestVal {
					bestVal, bestC = val, c
				}
			}
			if bestC < 0 {
				// No feasible candidate (cap below prevZ can't happen since
				// price=prevZ... defensive: ride the floor).
				bestVal, bestC = 0, j
			}
			best[j] = bestVal
			choice[i][j] = bestC
		}
		best, next = next, best
	}
	// After the loop the table for group 0 lives in `next`.
	prices := make([]float64, k)
	j := 0 // z_{-1} = 0
	total := next[0]
	for i := 0; i < k; i++ {
		j = choice[i][j]
		prices[i] = z[j]
	}
	return prices, total
}

// buildGroups partitions the population by roll-up target.
func buildGroups(all []BuyerPoint, offered []float64) []group {
	groups := make([]group, len(offered))
	for i, q := range offered {
		groups[i].q = q
	}
	for _, pt := range all {
		i := sort.SearchFloat64s(offered, pt.X)
		if i == len(offered) {
			continue
		}
		groups[i].vals = append(groups[i].vals, pt.Value)
		groups[i].masses = append(groups[i].masses, pt.Mass)
	}
	return groups
}

// CompressMenu greedily selects a k-version menu. k ≥ p.N() returns the
// full menu priced by the standard DP.
func CompressMenu(p *Problem, k int) (*CompressedMenu, error) {
	if k < 1 {
		return nil, fmt.Errorf("opt: menu size must be ≥ 1, got %d: %w", k, ErrInvalidProblem)
	}
	all := p.Points()
	fullFunc, fullRev, err := MaximizeRevenueDP(p)
	if err != nil {
		return nil, err
	}
	if k >= len(all) {
		return &CompressedMenu{
			Points: all, Func: fullFunc,
			RolledUpRevenue: fullRev, FullRevenue: fullRev,
		}, nil
	}

	// Distinct valuations are the only locally-optimal prices against a
	// step demand curve.
	candSet := map[float64]bool{}
	for _, pt := range all {
		candSet[pt.Value] = true
	}
	candidates := make([]float64, 0, len(candSet))
	for v := range candSet {
		candidates = append(candidates, v)
	}
	sort.Float64s(candidates)

	// price evaluates one offered-quality subset with the grouped DP.
	price := func(offered []float64) ([]float64, float64) {
		return groupedDP(buildGroups(all, offered), candidates)
	}

	selected := map[int]bool{}
	var bestOffered, bestPrices []float64
	for round := 0; round < k; round++ {
		roundIdx := -1
		roundRev := -1.0
		var roundOffered, roundPrices []float64
		for i := range all {
			if selected[i] {
				continue
			}
			offered := make([]float64, 0, round+1)
			for j := range all {
				if selected[j] || j == i {
					offered = append(offered, all[j].X)
				}
			}
			prices, rev := price(offered)
			if rev > roundRev {
				roundRev, roundIdx = rev, i
				roundOffered, roundPrices = offered, prices
			}
		}
		if roundIdx < 0 {
			break
		}
		selected[roundIdx] = true
		bestOffered, bestPrices = roundOffered, roundPrices
	}

	knots := make([]pricing.Point, len(bestOffered))
	for i := range bestOffered {
		knots[i] = pricing.Point{X: bestOffered[i], Price: bestPrices[i]}
	}
	f, err := pricing.NewFunction(knots)
	if err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("opt: compressed menu: %w", err)
	}
	pts := make([]BuyerPoint, 0, k)
	for i := range all {
		if selected[i] {
			pts = append(pts, all[i])
		}
	}
	return &CompressedMenu{
		Points: pts, Func: f,
		RolledUpRevenue: RolledUpRevenue(p, bestOffered, f.Price),
		FullRevenue:     fullRev,
	}, nil
}
