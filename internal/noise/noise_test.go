package noise

import (
	"math"
	"testing"
	"testing/quick"

	"nimbus/internal/rng"
	"nimbus/internal/vec"
)

func mechanisms() []Mechanism {
	return []Mechanism{Gaussian{}, Laplace{}, Uniform{}}
}

// TestUnbiased verifies restriction 1: E[K(h*, w)] = h* (Lemma 2).
func TestUnbiased(t *testing.T) {
	src := rng.New(1)
	h := []float64{1.5, -2, 0, 7}
	const trials = 60000
	for _, m := range mechanisms() {
		sum := vec.Zeros(len(h))
		for i := 0; i < trials; i++ {
			vec.AXPY(sum, 1, m.Perturb(h, 2.0, src))
		}
		mean := vec.Scale(1/float64(trials), sum)
		if vec.MaxAbsDiff(mean, h) > 0.02 {
			t.Errorf("%s: biased mean %v vs %v", m.Name(), mean, h)
		}
	}
}

// TestCalibration verifies Lemma 3: E‖h_δ − h*‖² = δ for every mechanism.
func TestCalibration(t *testing.T) {
	src := rng.New(2)
	h := make([]float64, 8)
	const trials = 40000
	for _, m := range mechanisms() {
		for _, delta := range []float64{0.1, 1, 5} {
			var s float64
			for i := 0; i < trials; i++ {
				noisy := m.Perturb(h, delta, src)
				s += vec.SqNorm2(vec.Sub(noisy, h))
			}
			got := s / trials
			if math.Abs(got-delta)/delta > 0.05 {
				t.Errorf("%s δ=%v: E‖w‖² = %v", m.Name(), delta, got)
			}
			if got != ExpectedSquaredError(delta) && math.Abs(got-ExpectedSquaredError(delta))/delta > 0.05 {
				t.Errorf("%s: ExpectedSquaredError mismatch", m.Name())
			}
		}
	}
}

func TestZeroDeltaIsExactCopy(t *testing.T) {
	src := rng.New(3)
	h := []float64{3, -1, 4}
	for _, m := range mechanisms() {
		got := m.Perturb(h, 0, src)
		if vec.MaxAbsDiff(got, h) != 0 {
			t.Errorf("%s: δ=0 changed the instance", m.Name())
		}
	}
}

func TestPerturbDoesNotMutateInput(t *testing.T) {
	src := rng.New(4)
	h := []float64{1, 2, 3}
	orig := vec.Clone(h)
	for _, m := range mechanisms() {
		m.Perturb(h, 1, src)
		if vec.MaxAbsDiff(h, orig) != 0 {
			t.Errorf("%s mutated its input", m.Name())
		}
	}
}

func TestNegativeDeltaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delta")
		}
	}()
	Gaussian{}.Perturb([]float64{1}, -1, rng.New(5))
}

func TestByName(t *testing.T) {
	for _, name := range []string{"gaussian", "laplace", "uniform"} {
		m, err := ByName(name)
		if err != nil || m.Name() != name {
			t.Fatalf("ByName(%q) = %v, %v", name, m, err)
		}
	}
	if m, err := ByName(""); err != nil || m.Name() != "gaussian" {
		t.Fatal("empty name must default to gaussian")
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
}

// Property: larger δ gives larger average perturbation (restriction 2 for
// the squared error, checked empirically).
func TestQuickMonotoneInDelta(t *testing.T) {
	src := rng.New(6)
	f := func(seed int64) bool {
		h := rng.New(seed).NormalVec(6, 1)
		avg := func(delta float64) float64 {
			var s float64
			const k = 2000
			for i := 0; i < k; i++ {
				s += vec.SqNorm2(vec.Sub(Gaussian{}.Perturb(h, delta, src), h))
			}
			return s / k
		}
		return avg(0.5) < avg(4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
