package noise

import (
	"math"
	"strings"
	"testing"
)

func TestGaussianDPEpsilonRoundTrip(t *testing.T) {
	const (
		d      = 20
		sens   = 0.01
		dpDel  = 1e-5
		target = 0.5
	)
	ncp, err := NCPForDP(target, d, sens, dpDel)
	if err != nil {
		t.Fatal(err)
	}
	g, err := GaussianDPEpsilon(ncp, d, sens, dpDel)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Epsilon-target) > 1e-12 {
		t.Fatalf("round trip ε = %v, want %v", g.Epsilon, target)
	}
	if g.Delta != dpDel {
		t.Fatalf("δ_DP %v", g.Delta)
	}
}

func TestGaussianDPEpsilonMonotone(t *testing.T) {
	// More noise (larger NCP) means a smaller ε (more privacy).
	prev := math.Inf(1)
	for _, ncp := range []float64{0.01, 0.1, 1, 10} {
		g, err := GaussianDPEpsilon(ncp, 10, 0.05, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if g.Epsilon >= prev {
			t.Fatalf("ε not decreasing in NCP: %v at %v", g.Epsilon, ncp)
		}
		prev = g.Epsilon
	}
}

func TestDPValidation(t *testing.T) {
	if _, err := GaussianDPEpsilon(0, 10, 0.1, 1e-5); err == nil {
		t.Fatal("zero NCP accepted")
	}
	if _, err := GaussianDPEpsilon(1, 0, 0.1, 1e-5); err == nil {
		t.Fatal("zero dim accepted")
	}
	if _, err := GaussianDPEpsilon(1, 10, 0, 1e-5); err == nil {
		t.Fatal("zero sensitivity accepted")
	}
	if _, err := GaussianDPEpsilon(1, 10, 0.1, 1.5); err == nil {
		t.Fatal("bad δ_DP accepted")
	}
	if _, err := NCPForDP(0, 10, 0.1, 1e-5); err == nil {
		t.Fatal("zero ε accepted")
	}
	if _, err := NCPForDP(1, -1, 0.1, 1e-5); err == nil {
		t.Fatal("negative dim accepted")
	}
	if _, err := NCPForDP(1, 10, -1, 1e-5); err == nil {
		t.Fatal("negative sensitivity accepted")
	}
	if _, err := NCPForDP(1, 10, 0.1, 0); err == nil {
		t.Fatal("zero δ_DP accepted")
	}
	if _, err := ERMSensitivity(0, 1, 10); err == nil {
		t.Fatal("zero Lipschitz accepted")
	}
	if _, err := ERMSensitivity(1, 0, 10); err == nil {
		t.Fatal("zero convexity accepted")
	}
	if _, err := ERMSensitivity(1, 1, 0); err == nil {
		t.Fatal("zero n accepted")
	}
}

func TestERMSensitivityScaling(t *testing.T) {
	// Doubling the dataset halves the sensitivity.
	a, err := ERMSensitivity(1, 0.02, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ERMSensitivity(1, 0.02, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-2*b) > 1e-15 {
		t.Fatalf("sensitivity scaling: %v vs %v", a, b)
	}
	// Known value: 2·1/(1000·0.02) = 0.1.
	if math.Abs(a-0.1) > 1e-15 {
		t.Fatalf("sensitivity %v, want 0.1", a)
	}
}

func TestDPGuaranteeString(t *testing.T) {
	g := DPGuarantee{Epsilon: 0.5, Delta: 1e-5}
	if !strings.Contains(g.String(), "0.5") || !strings.Contains(g.String(), "1e-05") {
		t.Fatalf("String() = %q", g.String())
	}
}

func TestRealisticMarketplaceGuarantee(t *testing.T) {
	// A logistic regression on 100k unit-norm rows with µ = 0.01
	// (λ_strong = 0.02): the cheapest version (δ = 1) is strongly private,
	// the best version (δ = 0.01) much less so.
	sens, err := ERMSensitivity(1, 0.02, 100000)
	if err != nil {
		t.Fatal(err)
	}
	cheap, err := GaussianDPEpsilon(1, 20, sens, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	best, err := GaussianDPEpsilon(0.01, 20, sens, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if cheap.Epsilon >= best.Epsilon {
		t.Fatal("cheaper version must be more private")
	}
	if cheap.Epsilon > 0.1 {
		t.Fatalf("cheap-version ε %v unexpectedly large", cheap.Epsilon)
	}
}
