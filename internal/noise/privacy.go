package noise

import (
	"fmt"
	"math"
)

// The paper's conclusion lists privacy as a core future challenge:
// "Integrating model-based pricing with data privacy". Because Nimbus
// already perturbs sold models with calibrated Gaussian noise, each sale is
// exactly an output-perturbation release, so the standard analytic
// machinery of the Gaussian mechanism applies. This file quantifies the
// differential-privacy guarantee a given NCP provides.

// DPGuarantee is an (ε, δ_DP)-differential-privacy statement about a sold
// model instance.
type DPGuarantee struct {
	// Epsilon is the privacy-loss bound ε.
	Epsilon float64
	// Delta is the failure probability δ_DP (not the NCP!).
	Delta float64
}

// String implements fmt.Stringer.
func (g DPGuarantee) String() string {
	return fmt.Sprintf("(ε=%.4g, δ=%.4g)-DP", g.Epsilon, g.Delta)
}

// GaussianDPEpsilon returns the ε for which the Gaussian mechanism with
// noise control parameter ncp on a d-dimensional model whose L2 sensitivity
// is sensitivity satisfies (ε, deltaDP)-differential privacy, via the
// classical Gaussian-mechanism calibration σ = √(2·ln(1.25/δ_DP))·Δ₂/ε
// (Dwork & Roth, Theorem A.1). The per-coordinate noise σ of the mechanism
// is √(ncp/d), so
//
//	ε = √(2·ln(1.25/δ_DP)) · Δ₂ / σ.
//
// The classical bound is only proven for ε ≤ 1; larger returned values mean
// the noise level provides no meaningful guarantee at this δ_DP, and the
// caller should increase the NCP (sell a noisier version) or report the
// failure to the data owner.
func GaussianDPEpsilon(ncp float64, d int, sensitivity, deltaDP float64) (DPGuarantee, error) {
	if ncp <= 0 {
		return DPGuarantee{}, fmt.Errorf("noise: NCP must be positive, got %v", ncp)
	}
	if d <= 0 {
		return DPGuarantee{}, fmt.Errorf("noise: dimension must be positive, got %d", d)
	}
	if sensitivity <= 0 {
		return DPGuarantee{}, fmt.Errorf("noise: sensitivity must be positive, got %v", sensitivity)
	}
	if deltaDP <= 0 || deltaDP >= 1 {
		return DPGuarantee{}, fmt.Errorf("noise: δ_DP must lie in (0, 1), got %v", deltaDP)
	}
	sigma := math.Sqrt(ncp / float64(d))
	eps := math.Sqrt(2*math.Log(1.25/deltaDP)) * sensitivity / sigma
	return DPGuarantee{Epsilon: eps, Delta: deltaDP}, nil
}

// NCPForDP inverts GaussianDPEpsilon: the smallest NCP whose sale satisfies
// the requested (ε, δ_DP) guarantee. The seller can intersect this with the
// pricing grid to refuse versions that are too accurate to be private.
func NCPForDP(eps float64, d int, sensitivity, deltaDP float64) (float64, error) {
	if eps <= 0 {
		return 0, fmt.Errorf("noise: ε must be positive, got %v", eps)
	}
	if d <= 0 {
		return 0, fmt.Errorf("noise: dimension must be positive, got %d", d)
	}
	if sensitivity <= 0 {
		return 0, fmt.Errorf("noise: sensitivity must be positive, got %v", sensitivity)
	}
	if deltaDP <= 0 || deltaDP >= 1 {
		return 0, fmt.Errorf("noise: δ_DP must lie in (0, 1), got %v", deltaDP)
	}
	sigma := math.Sqrt(2*math.Log(1.25/deltaDP)) * sensitivity / eps
	return float64(d) * sigma * sigma, nil
}

// ERMSensitivity bounds the L2 sensitivity of the optimal model of an
// L2-regularized empirical-risk objective with a per-example loss that is
// lipschitz-Lipschitz in the model, trained on n examples:
//
//	Δ₂ ≤ 2·G / (n·λ)
//
// where λ is the strong-convexity modulus of the regularizer (2·µ for the
// µ‖w‖² convention of Table 2). This is the classical output-perturbation
// bound of Chaudhuri, Monteleoni & Sarwate (JMLR 2011), and it covers the
// menu's logistic regression and SVM (their losses are 1- and 1-Lipschitz
// per unit-norm example respectively).
func ERMSensitivity(lipschitz, strongConvexity float64, n int) (float64, error) {
	if lipschitz <= 0 {
		return 0, fmt.Errorf("noise: Lipschitz constant must be positive, got %v", lipschitz)
	}
	if strongConvexity <= 0 {
		return 0, fmt.Errorf("noise: strong convexity must be positive, got %v", strongConvexity)
	}
	if n <= 0 {
		return 0, fmt.Errorf("noise: n must be positive, got %d", n)
	}
	return 2 * lipschitz / (float64(n) * strongConvexity), nil
}
