// Package noise implements the randomized mechanisms K of Section 4 of the
// paper: the broker computes the optimal model instance once and, for each
// sale, perturbs it with zero-mean noise whose magnitude is governed by the
// noise control parameter (NCP) δ.
//
// Every mechanism in this package satisfies the paper's two restrictions:
//
//  1. Unbiasedness: E[K(h*, w)] = h*.
//  2. The NCP δ behaves monotonically with respect to the expected error.
//
// All mechanisms are calibrated so that E‖h_δ − h*‖² = δ exactly — i.e. the
// NCP equals the expected squared loss to the optimal model (Lemma 3),
// regardless of which noise shape is used. This makes x = 1/δ the common
// quality knob the pricing layer works with.
package noise

import (
	"fmt"

	"nimbus/internal/rng"
	"nimbus/internal/vec"
)

// Mechanism is the randomized mechanism K(h*, w): it samples w ~ W_δ and
// returns the perturbed instance.
type Mechanism interface {
	// Name identifies the mechanism.
	Name() string
	// Perturb returns a fresh noisy copy of optimal with NCP delta; the
	// input slice is never modified. delta = 0 returns an exact copy.
	Perturb(optimal []float64, delta float64, src *rng.Source) []float64
}

// Gaussian is the paper's primary mechanism K_G (Section 4.1):
// W_δ = N(0, (δ/d)·I_d), so the total injected variance is exactly δ.
type Gaussian struct{}

// Name implements Mechanism.
func (Gaussian) Name() string { return "gaussian" }

// Perturb implements Mechanism.
func (Gaussian) Perturb(optimal []float64, delta float64, src *rng.Source) []float64 {
	return addNoise(optimal, src.NormalVec(len(optimal), perCoordVar(len(optimal), delta)))
}

// Laplace is the alternative mechanism from Example 2: IID zero-mean Laplace
// noise per coordinate, calibrated to total variance δ.
type Laplace struct{}

// Name implements Mechanism.
func (Laplace) Name() string { return "laplace" }

// Perturb implements Mechanism.
func (Laplace) Perturb(optimal []float64, delta float64, src *rng.Source) []float64 {
	return addNoise(optimal, src.LaplaceVec(len(optimal), perCoordVar(len(optimal), delta)))
}

// Uniform is the additive mechanism K_1 from Example 1 generalized to
// vectors: IID zero-mean uniform noise per coordinate, calibrated to total
// variance δ.
type Uniform struct{}

// Name implements Mechanism.
func (Uniform) Name() string { return "uniform" }

// Perturb implements Mechanism.
func (Uniform) Perturb(optimal []float64, delta float64, src *rng.Source) []float64 {
	return addNoise(optimal, src.UniformVec(len(optimal), perCoordVar(len(optimal), delta)))
}

func perCoordVar(d int, delta float64) float64 {
	if delta < 0 {
		//lint:allocok panic on a programming error, not a steady-state allocation
		panic(fmt.Sprintf("noise: negative NCP %v", delta))
	}
	if d == 0 {
		return 0
	}
	return delta / float64(d)
}

func addNoise(optimal, w []float64) []float64 {
	out := vec.Clone(optimal)
	return vec.AXPY(out, 1, w)
}

// ExpectedSquaredError returns E[ε_s(h_δ, D)] = E‖h_δ − h*‖² for any of the
// calibrated mechanisms in this package, which by Lemma 3 is exactly δ.
func ExpectedSquaredError(delta float64) float64 { return delta }

// ByName returns the mechanism with the given name (for the HTTP API).
func ByName(name string) (Mechanism, error) {
	switch name {
	case "gaussian", "":
		return Gaussian{}, nil
	case "laplace":
		return Laplace{}, nil
	case "uniform":
		return Uniform{}, nil
	default:
		return nil, fmt.Errorf("noise: unknown mechanism %q", name)
	}
}
