package ml

import (
	"errors"
	"math"
	"testing"

	"nimbus/internal/dataset"
	"nimbus/internal/rng"
	"nimbus/internal/vec"
)

// numGrad computes a central-difference gradient for validation.
func numGrad(l Loss, w []float64, d *dataset.Dataset) []float64 {
	const h = 1e-6
	g := make([]float64, len(w))
	for i := range w {
		wp := vec.Clone(w)
		wm := vec.Clone(w)
		wp[i] += h
		wm[i] -= h
		g[i] = (l.Eval(wp, d) - l.Eval(wm, d)) / (2 * h)
	}
	return g
}

func regData(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	return dataset.Simulated1(dataset.GenConfig{Rows: n, Seed: 21})
}

func clsData(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	return dataset.Simulated2(dataset.GenConfig{Rows: n, Seed: 22})
}

func TestGradientsMatchNumeric(t *testing.T) {
	reg := regData(t, 60)
	cls := clsData(t, 60)
	src := rng.New(5)
	w := src.NormalVec(20, 1)
	cases := []struct {
		loss GradLoss
		data *dataset.Dataset
	}{
		{SquaredLoss{Reg: 0.1}, reg},
		{SquaredLoss{}, reg},
		{LogisticLoss{Reg: 0.05}, cls},
		{LogisticLoss{}, cls},
		{HingeLoss{Reg: 0.05}, cls},
	}
	for _, c := range cases {
		got := c.loss.Grad(w, c.data)
		want := numGrad(c.loss, w, c.data)
		if vec.MaxAbsDiff(got, want) > 1e-4 {
			t.Errorf("%s: gradient off by %v", c.loss.Name(), vec.MaxAbsDiff(got, want))
		}
	}
}

func TestZeroOneLoss(t *testing.T) {
	x := vec.NewMatrix(4, 1)
	copy(x.Data, []float64{1, 2, -1, -2})
	d, err := dataset.New("toy", dataset.Classification, x, []float64{1, -1, -1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// w = [1]: predictions +,+,-,- → wrong on rows 1 and 3 → 0.5.
	if got := (ZeroOneLoss{}).Eval([]float64{1}, d); got != 0.5 {
		t.Fatalf("zero-one = %v, want 0.5", got)
	}
	// Boundary point counts as negative prediction (wᵀx ≤ 0).
	x2 := vec.NewMatrix(1, 1)
	d2, _ := dataset.New("b", dataset.Classification, x2, []float64{1})
	if got := (ZeroOneLoss{}).Eval([]float64{1}, d2); got != 1 {
		t.Fatalf("boundary handling: got %v, want 1", got)
	}
}

func TestLinearRegressionRecoversHyperplane(t *testing.T) {
	d := regData(t, 400)
	w, err := LinearRegression{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	// Simulated1 is noiseless, so the fit must be near-exact.
	if got := (SquaredLoss{}).Eval(w, d); got > 1e-10 {
		t.Fatalf("train loss %v on noiseless data", got)
	}
}

func TestLinearRegressionRidgeShrinks(t *testing.T) {
	d := regData(t, 200)
	w0, err := LinearRegression{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := LinearRegression{Ridge: 10}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if vec.Norm2(w1) >= vec.Norm2(w0) {
		t.Fatalf("ridge did not shrink: %v vs %v", vec.Norm2(w1), vec.Norm2(w0))
	}
}

func TestLinearRegressionOptimality(t *testing.T) {
	// Gradient at the fit must vanish (first-order optimality).
	d, err := dataset.StandIn("CASP", dataset.GenConfig{Rows: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := LinearRegression{Ridge: 0.01}
	w, err := m.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	g := SquaredLoss{Reg: 0.01}.Grad(w, d)
	if vec.Norm2(g) > 1e-6 {
		t.Fatalf("gradient norm at optimum: %v", vec.Norm2(g))
	}
}

func TestLogisticRegressionFits(t *testing.T) {
	d := clsData(t, 2000)
	m := LogisticRegression{Ridge: 1e-4}
	w, err := m.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	g := LogisticLoss{Reg: 1e-4}.Grad(w, d)
	if vec.Norm2(g) > 1e-5 {
		t.Fatalf("gradient norm at optimum: %v", vec.Norm2(g))
	}
	// Accuracy should approach the Bayes rate 0.95 of Simulated2.
	errRate := ZeroOneLoss{}.Eval(w, d)
	if errRate > 0.08 {
		t.Fatalf("error rate %v, want < 0.08", errRate)
	}
}

func TestLinearSVMFits(t *testing.T) {
	d := clsData(t, 1500)
	m := LinearSVM{Ridge: 1e-3}
	w, err := m.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	errRate := ZeroOneLoss{}.Eval(w, d)
	if errRate > 0.10 {
		t.Fatalf("error rate %v, want < 0.10", errRate)
	}
	// The subgradient solution should be near the GD solution in objective.
	gd := GradientDescent{MaxIter: 4000, Step: 1}
	wGD, err := gd.Minimize(HingeLoss{Reg: 1e-3}, d)
	if err != nil {
		t.Fatal(err)
	}
	loss := HingeLoss{Reg: 1e-3}
	if loss.Eval(w, d) > loss.Eval(wGD, d)+0.05 {
		t.Fatalf("SVM objective %v far above GD %v", loss.Eval(w, d), loss.Eval(wGD, d))
	}
}

func TestGradientDescentMatchesClosedForm(t *testing.T) {
	d := regData(t, 150)
	exact, err := LinearRegression{Ridge: 0.01}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	gd := GradientDescent{MaxIter: 20000, Step: 0.5, Tol: 1e-12}
	approx, err := gd.Minimize(SquaredLoss{Reg: 0.01}, d)
	if err != nil {
		t.Fatal(err)
	}
	loss := SquaredLoss{Reg: 0.01}
	if math.Abs(loss.Eval(exact, d)-loss.Eval(approx, d)) > 1e-5 {
		t.Fatalf("GD loss %v vs closed form %v", loss.Eval(approx, d), loss.Eval(exact, d))
	}
}

func TestTaskMismatch(t *testing.T) {
	reg := regData(t, 20)
	cls := clsData(t, 20)
	if _, err := (LinearRegression{}).Fit(cls); !errors.Is(err, ErrTaskMismatch) {
		t.Fatalf("want ErrTaskMismatch, got %v", err)
	}
	if _, err := (LogisticRegression{}).Fit(reg); !errors.Is(err, ErrTaskMismatch) {
		t.Fatalf("want ErrTaskMismatch, got %v", err)
	}
	if _, err := (LinearSVM{}).Fit(reg); !errors.Is(err, ErrTaskMismatch) {
		t.Fatalf("want ErrTaskMismatch, got %v", err)
	}
}

func TestLossAndModelLookup(t *testing.T) {
	for _, name := range []string{"squared", "logistic", "hinge", "zero-one"} {
		l, err := LossByName(name, 0.1)
		if err != nil || l.Name() != name {
			t.Fatalf("LossByName(%q) = %v, %v", name, l, err)
		}
	}
	if _, err := LossByName("nope", 0); err == nil {
		t.Fatal("unknown loss accepted")
	}
	for _, name := range []string{"linear-regression", "logistic-regression", "linear-svm"} {
		m, err := ModelByName(name, 0.1)
		if err != nil || m.Name() != name {
			t.Fatalf("ModelByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := ModelByName("nope", 0); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestDefaultReportLosses(t *testing.T) {
	if got := DefaultReportLosses(LinearRegression{}); len(got) != 1 || got[0].Name() != "squared" {
		t.Fatalf("regression report losses: %v", got)
	}
	got := DefaultReportLosses(LogisticRegression{})
	if len(got) != 2 || got[1].Name() != "zero-one" {
		t.Fatalf("classification report losses: %v", got)
	}
}

// Convexity property: for the convex losses, midpoint value ≤ average value
// along random segments.
func TestLossConvexityProperty(t *testing.T) {
	reg := regData(t, 40)
	cls := clsData(t, 40)
	src := rng.New(77)
	cases := []struct {
		loss Loss
		data *dataset.Dataset
	}{
		{SquaredLoss{Reg: 0.01}, reg},
		{LogisticLoss{Reg: 0.01}, cls},
		{HingeLoss{Reg: 0.01}, cls},
	}
	for _, c := range cases {
		for trial := 0; trial < 50; trial++ {
			a := src.NormalVec(20, 4)
			b := src.NormalVec(20, 4)
			mid := vec.Scale(0.5, vec.Add(a, b))
			lhs := c.loss.Eval(mid, c.data)
			rhs := 0.5*c.loss.Eval(a, c.data) + 0.5*c.loss.Eval(b, c.data)
			if lhs > rhs+1e-9 {
				t.Fatalf("%s not convex: f(mid)=%v > %v", c.loss.Name(), lhs, rhs)
			}
		}
	}
}

func TestStrictConvexityFlags(t *testing.T) {
	if !(SquaredLoss{}).StrictlyConvex() || !(LogisticLoss{}).StrictlyConvex() {
		t.Fatal("squared/logistic must report strictly convex")
	}
	if (HingeLoss{}).StrictlyConvex() {
		t.Fatal("unregularized hinge must not report strictly convex")
	}
	if !(HingeLoss{Reg: 0.1}).StrictlyConvex() {
		t.Fatal("regularized hinge must report strictly convex")
	}
	if (ZeroOneLoss{}).StrictlyConvex() {
		t.Fatal("zero-one must not report strictly convex")
	}
}

func TestSigmoidStability(t *testing.T) {
	if s := sigmoid(1000); s != 1 {
		t.Fatalf("sigmoid(1000) = %v", s)
	}
	if s := sigmoid(-1000); s != 0 {
		t.Fatalf("sigmoid(-1000) = %v", s)
	}
	if math.Abs(sigmoid(0)-0.5) > 1e-15 {
		t.Fatal("sigmoid(0) != 0.5")
	}
	if v := log1pExp(100); v != 100 {
		t.Fatalf("log1pExp(100) = %v", v)
	}
	if v := log1pExp(-100); v > 1e-40 && math.Abs(v-math.Exp(-100)) > 1e-50 {
		t.Fatalf("log1pExp(-100) = %v", v)
	}
}
