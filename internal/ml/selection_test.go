package ml

import (
	"errors"
	"testing"

	"nimbus/internal/dataset"
	"nimbus/internal/rng"
)

func TestSelectModelValidation(t *testing.T) {
	d := regData(t, 50)
	src := rng.New(1)
	if _, _, err := SelectModel(d, nil, SquaredLoss{}, 3, src); err == nil {
		t.Fatal("empty candidates accepted")
	}
	if _, _, err := SelectModel(d, []Model{LinearRegression{}}, SquaredLoss{}, 1, src); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, _, err := SelectModel(d, []Model{LogisticRegression{}}, SquaredLoss{}, 3, src); !errors.Is(err, ErrTaskMismatch) {
		t.Fatalf("want ErrTaskMismatch, got %v", err)
	}
	tiny := d.Subset("tiny", []int{0, 1})
	if _, _, err := SelectModel(tiny, []Model{LinearRegression{}}, SquaredLoss{}, 5, src); err == nil {
		t.Fatal("too-few-rows accepted")
	}
}

func TestSelectModelPicksObviousWinner(t *testing.T) {
	// Simulated1 is exactly linear: unregularized least squares must beat a
	// heavily over-regularized variant.
	d := regData(t, 300)
	best, results, err := SelectModel(d, []Model{
		LinearRegression{},
		LinearRegression{Ridge: 1e6},
	}, SquaredLoss{}, 4, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	lr, ok := best.(LinearRegression)
	if !ok || lr.Ridge != 0 {
		t.Fatalf("selected %+v", best)
	}
	if len(results) != 2 || results[0].MeanError > results[1].MeanError {
		t.Fatalf("results not sorted: %+v", results)
	}
	if len(results[0].FoldErrors) != 4 {
		t.Fatalf("fold errors: %v", results[0].FoldErrors)
	}
}

func TestSelectModelClassification(t *testing.T) {
	d := clsData(t, 800)
	best, results, err := SelectModel(d, DefaultCandidates(dataset.Classification), ZeroOneLoss{}, 3, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if best == nil {
		t.Fatal("no model selected")
	}
	// All classification candidates should be in the ballpark of the Bayes
	// rate (5% flip noise): the winner must be well under 0.2.
	if results[0].MeanError > 0.2 {
		t.Fatalf("winner error %v", results[0].MeanError)
	}
}

func TestDefaultCandidates(t *testing.T) {
	if got := DefaultCandidates(dataset.Regression); len(got) != 3 {
		t.Fatalf("regression candidates: %d", len(got))
	}
	if got := DefaultCandidates(dataset.Classification); len(got) != 3 {
		t.Fatalf("classification candidates: %d", len(got))
	}
	if DefaultCandidates(dataset.Task(99)) != nil {
		t.Fatal("unknown task should give nil")
	}
}
