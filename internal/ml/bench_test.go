package ml

import (
	"testing"

	"nimbus/internal/dataset"
)

func benchReg(b *testing.B, n int) *dataset.Dataset {
	b.Helper()
	return dataset.Simulated1(dataset.GenConfig{Rows: n, Seed: 77})
}

func benchCls(b *testing.B, n int) *dataset.Dataset {
	b.Helper()
	return dataset.Simulated2(dataset.GenConfig{Rows: n, Seed: 78})
}

func BenchmarkLinearRegressionFit(b *testing.B) {
	d := benchReg(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (LinearRegression{Ridge: 1e-4}).Fit(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLogisticRegressionFit(b *testing.B) {
	d := benchCls(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (LogisticRegression{Ridge: 1e-4}).Fit(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinearSVMFit(b *testing.B) {
	d := benchCls(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (LinearSVM{Ridge: 1e-3, MaxIter: 500}).Fit(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSquaredLossEval(b *testing.B) {
	d := benchReg(b, 10000)
	w, err := LinearRegression{}.Fit(d)
	if err != nil {
		b.Fatal(err)
	}
	loss := SquaredLoss{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loss.Eval(w, d)
	}
}

func BenchmarkZeroOneLossEval(b *testing.B) {
	d := benchCls(b, 10000)
	w, err := LogisticRegression{Ridge: 1e-4}.Fit(d)
	if err != nil {
		b.Fatal(err)
	}
	loss := ZeroOneLoss{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loss.Eval(w, d)
	}
}
