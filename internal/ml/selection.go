package ml

import (
	"fmt"
	"sort"

	"nimbus/internal/dataset"
	"nimbus/internal/rng"
)

// Model selection is the first future-work extension the paper names
// (Section 7): buyers often do not know which ML model they want. The
// broker can therefore run k-fold cross-validation over its menu and list
// the best model for a dataset automatically.

// CVResult reports one candidate's cross-validation performance.
type CVResult struct {
	// Model is the evaluated candidate.
	Model Model
	// MeanError is the average validation error across folds.
	MeanError float64
	// FoldErrors holds the per-fold validation errors.
	FoldErrors []float64
}

// SelectModel k-fold cross-validates each candidate on d under the given
// reporting loss and returns the candidate with the lowest mean validation
// error together with the full scoreboard (sorted best-first).
func SelectModel(d *dataset.Dataset, candidates []Model, loss Loss, k int, src *rng.Source) (Model, []CVResult, error) {
	if len(candidates) == 0 {
		return nil, nil, fmt.Errorf("ml: no candidate models")
	}
	if k < 2 {
		return nil, nil, fmt.Errorf("ml: need k ≥ 2 folds, got %d", k)
	}
	if d.N() < k {
		return nil, nil, fmt.Errorf("ml: %d rows cannot form %d folds", d.N(), k)
	}
	for _, m := range candidates {
		if m.Task() != d.Task {
			return nil, nil, fmt.Errorf("ml: candidate %s expects %v data, dataset %q is %v: %w",
				m.Name(), m.Task(), d.Name, d.Task, ErrTaskMismatch)
		}
	}
	perm := src.Perm(d.N())
	results := make([]CVResult, 0, len(candidates))
	for _, m := range candidates {
		foldErrs := make([]float64, 0, k)
		var sum float64
		for fold := 0; fold < k; fold++ {
			lo := fold * d.N() / k
			hi := (fold + 1) * d.N() / k
			val := d.Subset(fmt.Sprintf("%s/fold%d", d.Name, fold), perm[lo:hi])
			trainIdx := make([]int, 0, d.N()-(hi-lo))
			trainIdx = append(trainIdx, perm[:lo]...)
			trainIdx = append(trainIdx, perm[hi:]...)
			train := d.Subset(d.Name+"/cv-train", trainIdx)
			w, err := m.Fit(train)
			if err != nil {
				return nil, nil, fmt.Errorf("ml: cross-validating %s: %w", m.Name(), err)
			}
			e := loss.Eval(w, val)
			foldErrs = append(foldErrs, e)
			sum += e
		}
		results = append(results, CVResult{Model: m, MeanError: sum / float64(k), FoldErrors: foldErrs})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].MeanError < results[j].MeanError })
	return results[0].Model, results, nil
}

// DefaultCandidates returns the menu models applicable to a task, with
// a small regularization sweep — the candidate set a broker would
// cross-validate when the buyer has no model preference.
func DefaultCandidates(task dataset.Task) []Model {
	switch task {
	case dataset.Regression:
		return []Model{
			LinearRegression{},
			LinearRegression{Ridge: 1e-3},
			LinearRegression{Ridge: 1e-1},
		}
	case dataset.Classification:
		return []Model{
			LogisticRegression{Ridge: 1e-4},
			LogisticRegression{Ridge: 1e-2},
			LinearSVM{Ridge: 1e-3},
		}
	default:
		return nil
	}
}
