package ml

import (
	"errors"
	"fmt"
	"math"

	"nimbus/internal/dataset"
	"nimbus/internal/vec"
)

// Model is an ML model m ∈ M from the broker's menu: a hypothesis space
// (weight vectors in R^d), a training error function λ, and a fitting
// procedure that computes the optimal instance h*_λ(D) = argmin_h λ(h, D).
type Model interface {
	// Name identifies the model in the market menu.
	Name() string
	// Task reports which dataset task the model applies to.
	Task() dataset.Task
	// TrainLoss returns the training error function λ.
	TrainLoss() Loss
	// Fit computes the optimal model instance on the training set.
	Fit(d *dataset.Dataset) ([]float64, error)
}

// ErrTaskMismatch is returned when a model is fit on a dataset with the
// wrong task.
var ErrTaskMismatch = errors.New("ml: model/dataset task mismatch")

func checkTask(m Model, d *dataset.Dataset) error {
	if d.Task != m.Task() {
		return fmt.Errorf("ml: %s expects %v data, dataset %q is %v: %w",
			m.Name(), m.Task(), d.Name, d.Task, ErrTaskMismatch)
	}
	if d.N() == 0 {
		return dataset.ErrEmpty
	}
	return nil
}

// LinearRegression is ordinary (optionally ridge-regularized) least squares,
// fit in closed form via the normal equations.
type LinearRegression struct {
	// Ridge is the L2 coefficient µ in the Table 2 objective.
	Ridge float64
}

// Name implements Model.
func (m LinearRegression) Name() string { return "linear-regression" }

// Task implements Model.
func (m LinearRegression) Task() dataset.Task { return dataset.Regression }

// TrainLoss implements Model.
func (m LinearRegression) TrainLoss() Loss { return SquaredLoss{Reg: m.Ridge} }

// Fit implements Model: solves (XᵀX/n + 2µI) w = Xᵀy/n by Cholesky.
func (m LinearRegression) Fit(d *dataset.Dataset) ([]float64, error) {
	if err := checkTask(m, d); err != nil {
		return nil, err
	}
	n := float64(d.N())
	g := d.Features.Gram()
	for i := range g.Data {
		g.Data[i] /= n
	}
	g.AddDiag(2 * m.Ridge)
	rhs := d.Features.TMulVec(d.Target)
	for i := range rhs {
		rhs[i] /= n
	}
	w, err := vec.SolveSPD(g, rhs)
	if err != nil {
		return nil, fmt.Errorf("ml: fitting %s on %q: %w", m.Name(), d.Name, err)
	}
	return w, nil
}

// LogisticRegression is L2-regularized logistic regression fit by Newton's
// method (IRLS) with a gradient-descent fallback for ill-conditioned steps.
type LogisticRegression struct {
	// Ridge is the L2 coefficient µ; a small positive default keeps the
	// Hessian positive definite on separable data.
	Ridge float64
	// MaxIter bounds the Newton iterations (0 means 50).
	MaxIter int
	// Tol is the convergence threshold on the max weight change (0 = 1e-8).
	Tol float64
}

// Name implements Model.
func (m LogisticRegression) Name() string { return "logistic-regression" }

// Task implements Model.
func (m LogisticRegression) Task() dataset.Task { return dataset.Classification }

// TrainLoss implements Model.
func (m LogisticRegression) TrainLoss() Loss { return LogisticLoss{Reg: m.effRidge()} }

func (m LogisticRegression) effRidge() float64 {
	if m.Ridge <= 0 {
		return 1e-6
	}
	return m.Ridge
}

// Fit implements Model.
func (m LogisticRegression) Fit(d *dataset.Dataset) ([]float64, error) {
	if err := checkTask(m, d); err != nil {
		return nil, err
	}
	maxIter := m.MaxIter
	if maxIter == 0 {
		maxIter = 50
	}
	tol := m.Tol
	if tol == 0 {
		tol = 1e-8
	}
	reg := m.effRidge()
	loss := LogisticLoss{Reg: reg}
	n := d.N()
	w := vec.Zeros(d.D())
	weights := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		g := loss.Grad(w, d)
		// Hessian = 1/n Xᵀ diag(s(1-s)) X + 2µI with s = σ(wᵀx).
		for i := 0; i < n; i++ {
			x, _ := d.Row(i)
			s := sigmoid(vec.Dot(w, x))
			weights[i] = s * (1 - s) / float64(n)
		}
		h := d.Features.WeightedGram(weights)
		h.AddDiag(2 * reg)
		step, err := vec.SolveSPD(h, g)
		if err != nil {
			// Fall back to plain gradient descent from the current iterate.
			gd := GradientDescent{MaxIter: 5000, Step: 0.5, Init: w}
			return gd.Minimize(loss, d)
		}
		// Damped Newton: halve until the loss decreases (guards the first
		// iterations on badly-scaled data).
		prev := loss.Eval(w, d)
		alpha := 1.0
		var next []float64
		for k := 0; k < 30; k++ {
			next = vec.Sub(w, vec.Scale(alpha, step))
			if loss.Eval(next, d) <= prev {
				break
			}
			alpha /= 2
		}
		delta := vec.MaxAbsDiff(next, w)
		w = next
		if delta < tol {
			break
		}
	}
	return w, nil
}

// LinearSVM is the paper's L2-regularized linear SVM (hinge loss), fit by
// deterministic subgradient descent on the full objective.
type LinearSVM struct {
	// Ridge is the (required) L2 coefficient µ; 0 defaults to 1e-4.
	Ridge float64
	// MaxIter bounds subgradient steps (0 means 2000).
	MaxIter int
}

// Name implements Model.
func (m LinearSVM) Name() string { return "linear-svm" }

// Task implements Model.
func (m LinearSVM) Task() dataset.Task { return dataset.Classification }

func (m LinearSVM) effRidge() float64 {
	if m.Ridge <= 0 {
		return 1e-4
	}
	return m.Ridge
}

// TrainLoss implements Model.
func (m LinearSVM) TrainLoss() Loss { return HingeLoss{Reg: m.effRidge()} }

// Fit implements Model using Pegasos-style 1/(λt) step sizes with iterate
// averaging, which converges at O(log T / T) for the strongly-convex SVM
// objective.
func (m LinearSVM) Fit(d *dataset.Dataset) ([]float64, error) {
	if err := checkTask(m, d); err != nil {
		return nil, err
	}
	maxIter := m.MaxIter
	if maxIter == 0 {
		maxIter = 2000
	}
	reg := m.effRidge()
	loss := HingeLoss{Reg: reg}
	w := vec.Zeros(d.D())
	avg := vec.Zeros(d.D())
	lambda := 2 * reg // strong-convexity modulus of Reg·‖w‖²
	for t := 1; t <= maxIter; t++ {
		g := loss.Grad(w, d)
		eta := 1 / (lambda * float64(t))
		vec.AXPY(w, -eta, g)
		vec.AXPY(avg, 1, w)
	}
	for i := range avg {
		avg[i] /= float64(maxIter)
	}
	// Keep whichever of the last iterate and the average scores better.
	if loss.Eval(avg, d) < loss.Eval(w, d) {
		return avg, nil
	}
	return w, nil
}

// GradientDescent is a generic first-order trainer over any GradLoss; the
// ablation benchmarks compare it against the closed-form and Newton fits.
type GradientDescent struct {
	// MaxIter bounds iterations (0 means 1000).
	MaxIter int
	// Step is the initial step size (0 means 0.1); backtracking halves it
	// per iteration when the loss would increase.
	Step float64
	// Tol stops early when the gradient max-norm falls below it (0 = 1e-10).
	Tol float64
	// Init optionally warm-starts the iterate.
	Init []float64
}

// Minimize runs gradient descent and returns the final iterate.
func (g GradientDescent) Minimize(loss GradLoss, d *dataset.Dataset) ([]float64, error) {
	if d.N() == 0 {
		return nil, dataset.ErrEmpty
	}
	maxIter := g.MaxIter
	if maxIter == 0 {
		maxIter = 1000
	}
	step := g.Step
	if step == 0 {
		step = 0.1
	}
	tol := g.Tol
	if tol == 0 {
		tol = 1e-10
	}
	var w []float64
	if g.Init != nil {
		w = vec.Clone(g.Init)
	} else {
		w = vec.Zeros(d.D())
	}
	cur := loss.Eval(w, d)
	for iter := 0; iter < maxIter; iter++ {
		grad := loss.Grad(w, d)
		gmax := 0.0
		for _, v := range grad {
			if a := math.Abs(v); a > gmax {
				gmax = a
			}
		}
		if gmax < tol {
			break
		}
		// Backtracking line search.
		alpha := step
		for k := 0; k < 40; k++ {
			next := vec.Sub(w, vec.Scale(alpha, grad))
			if nv := loss.Eval(next, d); nv < cur {
				w, cur = next, nv
				break
			}
			alpha /= 2
			if k == 39 {
				return w, nil // no descent direction progress; converged
			}
		}
	}
	return w, nil
}

// ModelByName returns the menu model with the given name.
func ModelByName(name string, ridge float64) (Model, error) {
	switch name {
	case "linear-regression":
		return LinearRegression{Ridge: ridge}, nil
	case "logistic-regression":
		return LogisticRegression{Ridge: ridge}, nil
	case "linear-svm":
		return LinearSVM{Ridge: ridge}, nil
	default:
		return nil, fmt.Errorf("ml: unknown model %q", name)
	}
}

// DefaultReportLosses returns the reporting error functions ε the paper
// pairs with each model (Table 2): the training loss itself, plus the
// zero-one error for classification models.
func DefaultReportLosses(m Model) []Loss {
	losses := []Loss{m.TrainLoss()}
	if m.Task() == dataset.Classification {
		losses = append(losses, ZeroOneLoss{})
	}
	return losses
}
