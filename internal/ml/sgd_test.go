package ml

import (
	"math"
	"testing"

	"nimbus/internal/dataset"
	"nimbus/internal/vec"
)

func TestMiniBatchSGDRegressionConverges(t *testing.T) {
	d := regData(t, 2000)
	loss := SquaredLoss{Reg: 1e-4}
	exact, err := LinearRegression{Ridge: 1e-4}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	sgd := MiniBatchSGD{BatchSize: 64, Epochs: 30, StrongConvexity: 2e-4, Step: 0.2, Seed: 1}
	w, err := sgd.Minimize(loss, d)
	if err != nil {
		t.Fatal(err)
	}
	exactLoss := loss.Eval(exact, d)
	sgdLoss := loss.Eval(w, d)
	// SGD with a 1/(λt) schedule on a weakly-regularized objective gets
	// close, not exact; demand a small absolute gap on this noiseless data.
	if sgdLoss > exactLoss+0.5 {
		t.Fatalf("SGD loss %v vs exact %v", sgdLoss, exactLoss)
	}
	// And it must vastly beat the zero model.
	if zero := loss.Eval(vec.Zeros(d.D()), d); sgdLoss > zero/4 {
		t.Fatalf("SGD loss %v vs zero model %v", sgdLoss, zero)
	}
}

func TestMiniBatchSGDClassification(t *testing.T) {
	d := clsData(t, 3000)
	loss := LogisticLoss{Reg: 1e-4}
	sgd := MiniBatchSGD{BatchSize: 128, Epochs: 20, Step: 1, Seed: 2}
	w, err := sgd.Minimize(loss, d)
	if err != nil {
		t.Fatal(err)
	}
	if errRate := (ZeroOneLoss{}).Eval(w, d); errRate > 0.12 {
		t.Fatalf("SGD error rate %v", errRate)
	}
}

func TestMiniBatchSGDDeterministic(t *testing.T) {
	d := regData(t, 300)
	loss := SquaredLoss{}
	sgd := MiniBatchSGD{Epochs: 2, Seed: 3}
	a, err := sgd.Minimize(loss, d)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sgd.Minimize(loss, d)
	if err != nil {
		t.Fatal(err)
	}
	if vec.MaxAbsDiff(a, b) != 0 {
		t.Fatal("same seed must give identical trajectories")
	}
}

func TestMiniBatchSGDEmptyDataset(t *testing.T) {
	d := regData(t, 10)
	empty := d.Subset("empty", nil)
	if _, err := (MiniBatchSGD{}).Minimize(SquaredLoss{}, empty); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestStandardizer(t *testing.T) {
	d, err := StandInStats(t)
	if err != nil {
		t.Fatal(err)
	}
	s, err := FitStandardizer(d)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	// Standardized columns: mean ~0, variance ~1 (or exactly centered for
	// constant columns).
	n := float64(out.N())
	for j := 0; j < out.D(); j++ {
		var mean, variance float64
		for i := 0; i < out.N(); i++ {
			x, _ := out.Row(i)
			mean += x[j] / n
		}
		for i := 0; i < out.N(); i++ {
			x, _ := out.Row(i)
			variance += (x[j] - mean) * (x[j] - mean) / n
		}
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("column %d mean %v", j, mean)
		}
		if j < 2 && math.Abs(variance-1) > 1e-9 {
			t.Fatalf("column %d variance %v", j, variance)
		}
		if j == 2 && variance > 1e-25 {
			t.Fatalf("constant column got variance %v", variance)
		}
	}
	// Targets untouched.
	if vec.MaxAbsDiff(out.Target, d.Target) != 0 {
		t.Fatal("targets changed")
	}
	// Dimension mismatch rejected.
	other := regData(t, 10)
	if _, err := s.Apply(other); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// StandInStats builds a 3-column dataset with known statistics: two random
// columns and one constant column.
func StandInStats(t *testing.T) (*dataset.Dataset, error) {
	t.Helper()
	d := regData(t, 200)
	m := vec.NewMatrix(200, 3)
	for i := 0; i < 200; i++ {
		x, _ := d.Row(i)
		m.Set(i, 0, 3*x[0]+5)
		m.Set(i, 1, 0.5*x[1]-2)
		m.Set(i, 2, 7) // constant
	}
	return dataset.New("stats", dataset.Regression, m, d.Target[:200])
}
