package ml

import (
	"fmt"
	"math"

	"nimbus/internal/dataset"
	"nimbus/internal/vec"
)

// Lasso is L1-regularized least squares,
//
//	min_w 1/(2n)·Σ (wᵀx − y)² + Alpha·‖w‖₁,
//
// fit by proximal gradient descent (ISTA) with backtracking. Sparse models
// matter in the marketplace because the seller may only want to expose a
// few feature weights per version; the L1 term is not strictly convex, so
// for pricing the broker pairs a lasso fit with a small ridge (the elastic
// net below), which restores the paper's strict-convexity requirement.
type Lasso struct {
	// Alpha is the L1 coefficient (must be positive).
	Alpha float64
	// Ridge optionally adds µ‖w‖² (elastic net) — required for pricing.
	Ridge float64
	// MaxIter bounds ISTA iterations (0 means 2000).
	MaxIter int
	// Tol stops when the iterate moves less than this (0 means 1e-9).
	Tol float64
}

// Name implements Model.
func (m Lasso) Name() string { return "lasso" }

// Task implements Model.
func (m Lasso) Task() dataset.Task { return dataset.Regression }

// TrainLoss implements Model. The reported λ is the smooth elastic-net
// part; the L1 term is handled by the proximal step and is reflected in
// Objective.
func (m Lasso) TrainLoss() Loss { return SquaredLoss{Reg: m.Ridge} }

// Objective evaluates the full elastic-net objective including the L1 term.
func (m Lasso) Objective(w []float64, d *dataset.Dataset) float64 {
	obj := SquaredLoss{Reg: m.Ridge}.Eval(w, d)
	for _, v := range w {
		obj += m.Alpha * math.Abs(v)
	}
	return obj
}

// Fit implements Model via ISTA: gradient step on the smooth part followed
// by soft-thresholding at Alpha·step.
func (m Lasso) Fit(d *dataset.Dataset) ([]float64, error) {
	if err := checkTask(m, d); err != nil {
		return nil, err
	}
	if m.Alpha <= 0 {
		return nil, fmt.Errorf("ml: lasso needs Alpha > 0, got %v", m.Alpha)
	}
	maxIter := m.MaxIter
	if maxIter == 0 {
		maxIter = 2000
	}
	tol := m.Tol
	if tol == 0 {
		tol = 1e-9
	}
	smooth := SquaredLoss{Reg: m.Ridge}
	w := vec.Zeros(d.D())
	step := 1.0
	cur := m.Objective(w, d)
	for iter := 0; iter < maxIter; iter++ {
		g := smooth.Grad(w, d)
		// Backtracking on the proximal step: shrink until the objective
		// decreases.
		var next []float64
		improved := false
		for k := 0; k < 50; k++ {
			next = proxStep(w, g, step, m.Alpha)
			if nv := m.Objective(next, d); nv <= cur {
				cur = nv
				improved = true
				break
			}
			step /= 2
		}
		if !improved {
			break
		}
		delta := vec.MaxAbsDiff(next, w)
		w = next
		if delta < tol {
			break
		}
		// Gentle step growth keeps progress fast after early shrinking.
		step *= 1.1
	}
	return w, nil
}

// proxStep performs w ← soft(w − step·g, step·alpha).
func proxStep(w, g []float64, step, alpha float64) []float64 {
	out := make([]float64, len(w))
	th := step * alpha
	for i := range w {
		v := w[i] - step*g[i]
		switch {
		case v > th:
			out[i] = v - th
		case v < -th:
			out[i] = v + th
		default:
			out[i] = 0
		}
	}
	return out
}

// Sparsity returns the fraction of exactly-zero weights.
func Sparsity(w []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	zeros := 0
	for _, v := range w {
		if v == 0 {
			zeros++
		}
	}
	return float64(zeros) / float64(len(w))
}
