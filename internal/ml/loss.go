// Package ml is the supervised-learning substrate of Nimbus: the ML models
// the broker's menu supports (Table 2 of the paper — linear regression,
// logistic regression, L2 linear SVM), their training and reporting error
// functions (λ and ε in the paper's notation), and the trainers that compute
// the optimal model instance h*_λ(D).
//
// A hypothesis h is a weight vector w ∈ R^d; classification labels are ±1.
package ml

import (
	"fmt"
	"math"

	"nimbus/internal/dataset"
	"nimbus/internal/vec"
)

// Loss is an error function λ(h, D) or ε(h, D): it scores a hypothesis on a
// dataset, averaged over the examples as in Table 2 of the paper.
type Loss interface {
	// Name identifies the loss in curves and the market menu.
	Name() string
	// Eval returns the averaged loss of weight vector w on d.
	//
	//lint:declassify a scalar averaged loss reveals model quality, not the coordinates of w
	Eval(w []float64, d *dataset.Dataset) float64
	// StrictlyConvex reports whether the loss is strictly convex in w, the
	// condition under which Theorem 4 guarantees the expected error is
	// monotone in the NCP.
	StrictlyConvex() bool
}

// GradLoss is a Loss with a (sub)gradient, usable by the gradient trainer.
type GradLoss interface {
	Loss
	// Grad returns ∇_w of the averaged loss at w on d.
	Grad(w []float64, d *dataset.Dataset) []float64
}

// SquaredLoss is the least-squares loss
//
//	λ(w, D) = 1/(2n) Σ (wᵀx − y)² + Reg·‖w‖²
//
// used both to train linear regression and to report regression error.
type SquaredLoss struct {
	// Reg is the optional L2 regularization coefficient µ.
	Reg float64
}

// Name implements Loss.
func (l SquaredLoss) Name() string { return "squared" }

// StrictlyConvex implements Loss. The squared loss is strictly convex in w
// whenever the design matrix has full column rank or Reg > 0; we report true
// since Nimbus always trains with at least a vanishing ridge.
func (l SquaredLoss) StrictlyConvex() bool { return true }

// Eval implements Loss.
func (l SquaredLoss) Eval(w []float64, d *dataset.Dataset) float64 {
	n := d.N()
	var s float64
	for i := 0; i < n; i++ {
		x, y := d.Row(i)
		r := vec.Dot(w, x) - y
		s += r * r
	}
	return s/(2*float64(n)) + l.Reg*vec.SqNorm2(w)
}

// Grad implements GradLoss.
func (l SquaredLoss) Grad(w []float64, d *dataset.Dataset) []float64 {
	n := d.N()
	g := vec.Zeros(len(w))
	for i := 0; i < n; i++ {
		x, y := d.Row(i)
		r := vec.Dot(w, x) - y
		vec.AXPY(g, r/float64(n), x)
	}
	vec.AXPY(g, 2*l.Reg, w)
	return g
}

// LogisticLoss is the averaged logistic loss over ±1 labels
//
//	λ(w, D) = 1/n Σ log(1 + exp(−y·wᵀx)) + Reg·‖w‖².
type LogisticLoss struct {
	// Reg is the optional L2 regularization coefficient µ.
	Reg float64
}

// Name implements Loss.
func (l LogisticLoss) Name() string { return "logistic" }

// StrictlyConvex implements Loss.
func (l LogisticLoss) StrictlyConvex() bool { return true }

// Eval implements Loss.
func (l LogisticLoss) Eval(w []float64, d *dataset.Dataset) float64 {
	n := d.N()
	var s float64
	for i := 0; i < n; i++ {
		x, y := d.Row(i)
		s += log1pExp(-y * vec.Dot(w, x))
	}
	return s/float64(n) + l.Reg*vec.SqNorm2(w)
}

// Grad implements GradLoss.
func (l LogisticLoss) Grad(w []float64, d *dataset.Dataset) []float64 {
	n := d.N()
	g := vec.Zeros(len(w))
	for i := 0; i < n; i++ {
		x, y := d.Row(i)
		// d/dw log(1+e^{-y wᵀx}) = -y σ(-y wᵀx) x
		m := sigmoid(-y * vec.Dot(w, x))
		vec.AXPY(g, -y*m/float64(n), x)
	}
	vec.AXPY(g, 2*l.Reg, w)
	return g
}

// HingeLoss is the averaged hinge loss with mandatory L2 regularization
// (the paper's L2 linear SVM objective):
//
//	λ(w, D) = 1/n Σ max(0, 1 − y·wᵀx) + Reg·‖w‖².
type HingeLoss struct {
	// Reg is the L2 coefficient µ; the SVM objective requires Reg > 0 to be
	// strictly convex.
	Reg float64
}

// Name implements Loss.
func (l HingeLoss) Name() string { return "hinge" }

// StrictlyConvex implements Loss. Strict convexity comes entirely from the
// L2 term.
func (l HingeLoss) StrictlyConvex() bool { return l.Reg > 0 }

// Eval implements Loss.
func (l HingeLoss) Eval(w []float64, d *dataset.Dataset) float64 {
	n := d.N()
	var s float64
	for i := 0; i < n; i++ {
		x, y := d.Row(i)
		if m := 1 - y*vec.Dot(w, x); m > 0 {
			s += m
		}
	}
	return s/float64(n) + l.Reg*vec.SqNorm2(w)
}

// Grad implements GradLoss with the standard subgradient.
func (l HingeLoss) Grad(w []float64, d *dataset.Dataset) []float64 {
	n := d.N()
	g := vec.Zeros(len(w))
	for i := 0; i < n; i++ {
		x, y := d.Row(i)
		if 1-y*vec.Dot(w, x) > 0 {
			vec.AXPY(g, -y/float64(n), x)
		}
	}
	vec.AXPY(g, 2*l.Reg, w)
	return g
}

// ZeroOneLoss is the misclassification rate 1/n Σ 1[y ≠ sign(wᵀx)], the
// paper's reporting error ε for classification models. It is not convex; the
// pricing layer handles it through the empirical (Monte-Carlo) error
// transformation.
type ZeroOneLoss struct{}

// Name implements Loss.
func (ZeroOneLoss) Name() string { return "zero-one" }

// StrictlyConvex implements Loss.
func (ZeroOneLoss) StrictlyConvex() bool { return false }

// Eval implements Loss. Points exactly on the hyperplane count as positive
// predictions, matching the paper's 1{y = (wᵀx > 0)} convention.
func (ZeroOneLoss) Eval(w []float64, d *dataset.Dataset) float64 {
	n := d.N()
	wrong := 0
	for i := 0; i < n; i++ {
		x, y := d.Row(i)
		pred := 1.0
		if vec.Dot(w, x) <= 0 {
			pred = -1
		}
		if pred != y {
			wrong++
		}
	}
	return float64(wrong) / float64(n)
}

// LossByName returns the loss with the given name (for the HTTP API and the
// CLI), using the provided regularization where applicable.
func LossByName(name string, reg float64) (Loss, error) {
	switch name {
	case "squared":
		return SquaredLoss{Reg: reg}, nil
	case "logistic":
		return LogisticLoss{Reg: reg}, nil
	case "hinge":
		return HingeLoss{Reg: reg}, nil
	case "zero-one":
		return ZeroOneLoss{}, nil
	default:
		return nil, fmt.Errorf("ml: unknown loss %q", name)
	}
}

// sigmoid is the numerically-stable logistic function.
func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// log1pExp computes log(1+e^z) without overflow.
func log1pExp(z float64) float64 {
	if z > 35 {
		return z
	}
	if z < -35 {
		return math.Exp(z)
	}
	return math.Log1p(math.Exp(z))
}
