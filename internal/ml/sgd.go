package ml

import (
	"fmt"
	"math"

	"nimbus/internal/dataset"
	"nimbus/internal/rng"
	"nimbus/internal/vec"
)

// MiniBatchSGD is a stochastic first-order trainer for the paper-scale
// datasets (Table 3 goes up to 10M rows), where the full-gradient trainers
// become the broker's listing bottleneck. It samples mini-batches with a
// seedable stream, uses a 1/(λ·t) step schedule when the objective is
// strongly convex and c/√t otherwise, and averages the tail iterates.
type MiniBatchSGD struct {
	// BatchSize is the mini-batch size (0 means 64).
	BatchSize int
	// Epochs is the number of passes over the data (0 means 5).
	Epochs int
	// Step is the base step size for the √t schedule (0 means 0.1).
	Step float64
	// StrongConvexity λ enables the 1/(λt) schedule when positive (set it
	// to twice the L2 coefficient of the loss).
	StrongConvexity float64
	// Seed drives the batch sampling.
	Seed int64
}

// Minimize runs SGD on the averaged loss over d and returns the averaged
// tail iterate.
func (s MiniBatchSGD) Minimize(loss GradLoss, d *dataset.Dataset) ([]float64, error) {
	if d.N() == 0 {
		return nil, dataset.ErrEmpty
	}
	batch := s.BatchSize
	if batch <= 0 {
		batch = 64
	}
	if batch > d.N() {
		batch = d.N()
	}
	epochs := s.Epochs
	if epochs <= 0 {
		epochs = 5
	}
	step := s.Step
	if step <= 0 {
		step = 0.1
	}
	src := rng.New(s.Seed)

	w := vec.Zeros(d.D())
	avg := vec.Zeros(d.D())
	avgCount := 0
	stepsPerEpoch := (d.N() + batch - 1) / batch
	total := epochs * stepsPerEpoch
	tailStart := total / 2 // average the second half of the trajectory
	idx := make([]int, batch)
	t := 0
	for e := 0; e < epochs; e++ {
		for bi := 0; bi < stepsPerEpoch; bi++ {
			t++
			for i := range idx {
				idx[i] = src.Intn(d.N())
			}
			mb := d.Subset("sgd-batch", idx)
			g := loss.Grad(w, mb)
			var eta float64
			if s.StrongConvexity > 0 {
				eta = 1 / (s.StrongConvexity * float64(t))
			} else {
				eta = step / math.Sqrt(float64(t))
			}
			vec.AXPY(w, -eta, g)
			if t > tailStart {
				vec.AXPY(avg, 1, w)
				avgCount++
			}
		}
	}
	if avgCount == 0 {
		return w, nil
	}
	for i := range avg {
		avg[i] /= float64(avgCount)
	}
	// Return whichever iterate scores better on the full objective.
	if loss.Eval(avg, d) <= loss.Eval(w, d) {
		return avg, nil
	}
	return w, nil
}

// Standardizer centers and scales features to zero mean and unit variance,
// the preprocessing step real marketplace listings need before the
// regularized trainers (UCI columns span wildly different ranges).
type Standardizer struct {
	// Mean and Scale are per-column statistics fit on the train set.
	Mean  []float64
	Scale []float64
}

// FitStandardizer computes per-column statistics on d.
func FitStandardizer(d *dataset.Dataset) (*Standardizer, error) {
	if d.N() == 0 {
		return nil, dataset.ErrEmpty
	}
	n := float64(d.N())
	mean := vec.Zeros(d.D())
	for i := 0; i < d.N(); i++ {
		x, _ := d.Row(i)
		vec.AXPY(mean, 1/n, x)
	}
	variance := vec.Zeros(d.D())
	for i := 0; i < d.N(); i++ {
		x, _ := d.Row(i)
		for j, v := range x {
			dlt := v - mean[j]
			variance[j] += dlt * dlt / n
		}
	}
	scale := make([]float64, d.D())
	for j, v := range variance {
		scale[j] = math.Sqrt(v)
		// Constant columns have zero variance up to float accumulation
		// noise; treat them as centered-only rather than dividing by ~0.
		if scale[j] <= 1e-12*(1+math.Abs(mean[j])) {
			scale[j] = 1
		}
	}
	return &Standardizer{Mean: mean, Scale: scale}, nil
}

// Apply returns a standardized copy of d using the fitted statistics.
func (s *Standardizer) Apply(d *dataset.Dataset) (*dataset.Dataset, error) {
	if len(s.Mean) != d.D() {
		return nil, fmt.Errorf("ml: standardizer fit on %d columns, dataset has %d", len(s.Mean), d.D())
	}
	m := vec.NewMatrix(d.N(), d.D())
	for i := 0; i < d.N(); i++ {
		x, _ := d.Row(i)
		row := m.Row(i)
		for j, v := range x {
			row[j] = (v - s.Mean[j]) / s.Scale[j]
		}
	}
	y := append([]float64(nil), d.Target...)
	out := &dataset.Dataset{Name: d.Name + "/standardized", Task: d.Task, Columns: d.Columns, Features: m, Target: y}
	return out, nil
}
