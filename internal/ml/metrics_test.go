package ml

import (
	"errors"
	"math"
	"testing"

	"nimbus/internal/dataset"
	"nimbus/internal/vec"
)

func regToy(t *testing.T, xs, ys []float64) *dataset.Dataset {
	t.Helper()
	m := vec.NewMatrix(len(xs), 1)
	copy(m.Data, xs)
	d, err := dataset.New("toy", dataset.Regression, m, ys)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func clsToy(t *testing.T, xs, ys []float64) *dataset.Dataset {
	t.Helper()
	m := vec.NewMatrix(len(xs), 1)
	copy(m.Data, xs)
	d, err := dataset.New("toy", dataset.Classification, m, ys)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEvaluateRegressionPerfectFit(t *testing.T) {
	d := regToy(t, []float64{1, 2, 3}, []float64{2, 4, 6})
	rep, err := EvaluateRegression([]float64{2}, d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RMSE != 0 || rep.MAE != 0 || rep.R2 != 1 {
		t.Fatalf("%+v", rep)
	}
}

func TestEvaluateRegressionKnownValues(t *testing.T) {
	// Predictions 1,2,3 for targets 2,2,2: residuals -1,0,1.
	d := regToy(t, []float64{1, 2, 3}, []float64{2, 2, 2})
	rep, err := EvaluateRegression([]float64{1}, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.RMSE-math.Sqrt(2.0/3)) > 1e-12 {
		t.Fatalf("RMSE %v", rep.RMSE)
	}
	if math.Abs(rep.MAE-2.0/3) > 1e-12 {
		t.Fatalf("MAE %v", rep.MAE)
	}
	// Constant target with errors: SST = 0 and SSE > 0 → R2 = -Inf.
	if !math.IsInf(rep.R2, -1) {
		t.Fatalf("R2 %v", rep.R2)
	}
}

func TestEvaluateRegressionR2(t *testing.T) {
	// Mean-only prediction has R² = 0; here w=0 predicts 0 for targets
	// with mean 0 → R² = 0.
	d := regToy(t, []float64{1, 2}, []float64{-1, 1})
	rep, err := EvaluateRegression([]float64{0}, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.R2) > 1e-12 {
		t.Fatalf("R2 %v", rep.R2)
	}
}

func TestEvaluateRegressionValidation(t *testing.T) {
	cls := clsToy(t, []float64{1}, []float64{1})
	if _, err := EvaluateRegression([]float64{1}, cls); !errors.Is(err, ErrTaskMismatch) {
		t.Fatal("task mismatch accepted")
	}
}

func TestEvaluateClassificationPerfect(t *testing.T) {
	d := clsToy(t, []float64{1, 2, -1, -2}, []float64{1, 1, -1, -1})
	rep, err := EvaluateClassification([]float64{1}, d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy != 1 || rep.Precision != 1 || rep.Recall != 1 || rep.F1 != 1 {
		t.Fatalf("%+v", rep)
	}
	if rep.AUC != 1 {
		t.Fatalf("AUC %v", rep.AUC)
	}
	if rep.TP != 2 || rep.TN != 2 || rep.FP != 0 || rep.FN != 0 {
		t.Fatalf("confusion %+v", rep)
	}
}

func TestEvaluateClassificationConfusion(t *testing.T) {
	// w = 1: predictions +,+,-,-; labels +,-,+,- → TP=1 FP=1 FN=1 TN=1.
	d := clsToy(t, []float64{1, 2, -1, -2}, []float64{1, -1, 1, -1})
	rep, err := EvaluateClassification([]float64{1}, d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TP != 1 || rep.FP != 1 || rep.FN != 1 || rep.TN != 1 {
		t.Fatalf("confusion %+v", rep)
	}
	if rep.Accuracy != 0.5 || rep.Precision != 0.5 || rep.Recall != 0.5 || rep.F1 != 0.5 {
		t.Fatalf("%+v", rep)
	}
	// Scores 1,2,-1,-2 with labels +,-,+,-: pairs (pos,neg): (1,2)=0,
	// (1,-2)=1, (-1,2)=0, (-1,-2)=1 → AUC = 0.5.
	if rep.AUC != 0.5 {
		t.Fatalf("AUC %v", rep.AUC)
	}
}

func TestAUCWithTies(t *testing.T) {
	// All scores equal: AUC must be exactly 0.5 by midranks.
	d := clsToy(t, []float64{0, 0, 0, 0}, []float64{1, 1, -1, -1})
	rep, err := EvaluateClassification([]float64{1}, d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AUC != 0.5 {
		t.Fatalf("tied AUC %v", rep.AUC)
	}
}

func TestAUCSingleClass(t *testing.T) {
	d := clsToy(t, []float64{1, 2}, []float64{1, 1})
	rep, err := EvaluateClassification([]float64{1}, d)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(rep.AUC) {
		t.Fatalf("single-class AUC %v", rep.AUC)
	}
}

func TestEvaluateClassificationOnRealFit(t *testing.T) {
	d := clsData(t, 2000)
	w, err := LogisticRegression{Ridge: 1e-4}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := EvaluateClassification(w, d)
	if err != nil {
		t.Fatal(err)
	}
	// Simulated2 has 5% flip noise: a good fit is ~95% accurate with AUC
	// well above 0.9, and accuracy must agree with 1 − ZeroOneLoss.
	if rep.Accuracy < 0.9 || rep.AUC < 0.93 {
		t.Fatalf("%+v", rep)
	}
	if math.Abs(rep.Accuracy-(1-ZeroOneLoss{}.Eval(w, d))) > 1e-12 {
		t.Fatal("accuracy disagrees with ZeroOneLoss")
	}
}

func TestEvaluateClassificationValidation(t *testing.T) {
	reg := regToy(t, []float64{1}, []float64{1})
	if _, err := EvaluateClassification([]float64{1}, reg); !errors.Is(err, ErrTaskMismatch) {
		t.Fatal("task mismatch accepted")
	}
}
