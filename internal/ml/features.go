package ml

import (
	"fmt"

	"nimbus/internal/dataset"
	"nimbus/internal/vec"
)

// PolynomialFeatures expands a relation with interaction and power terms up
// to the given degree (plus an intercept column), letting the marketplace
// sell nonlinear models while staying inside the paper's linear-hypothesis
// theory: the hypothesis space is still R^d', the losses stay strictly
// convex, and the Gaussian mechanism applies unchanged to the expanded
// weight vector.
//
// Degree 1 adds only the intercept; degree 2 adds all squares and pairwise
// products. Higher degrees are supported but explode combinatorially, so
// the constructor refuses expansions beyond 100k columns.
func PolynomialFeatures(d *dataset.Dataset, degree int) (*dataset.Dataset, error) {
	if degree < 1 {
		return nil, fmt.Errorf("ml: polynomial degree must be ≥ 1, got %d", degree)
	}
	// The expansion has C(d+degree, degree) columns (multisets of size ≤
	// degree, plus the intercept); refuse oversized expansions before
	// enumerating them.
	expected := 1
	for k := 1; k <= degree; k++ {
		expected = expected * (d.D() + k) / k
		if expected > 100000 {
			return nil, fmt.Errorf("ml: degree-%d expansion of %d features exceeds 100000 columns", degree, d.D())
		}
	}
	// Enumerate monomials as multisets of column indexes up to the degree.
	var monomials [][]int
	var build func(start int, cur []int)
	build = func(start int, cur []int) {
		if len(cur) > 0 {
			monomials = append(monomials, append([]int(nil), cur...))
		}
		if len(cur) == degree {
			return
		}
		for j := start; j < d.D(); j++ {
			build(j, append(cur, j))
		}
	}
	build(0, nil)
	outCols := 1 + len(monomials) // intercept + monomials
	if outCols > 100000 {
		return nil, fmt.Errorf("ml: degree-%d expansion of %d features needs %d columns (limit 100000)",
			degree, d.D(), outCols)
	}
	m := vec.NewMatrix(d.N(), outCols)
	for i := 0; i < d.N(); i++ {
		x, _ := d.Row(i)
		row := m.Row(i)
		row[0] = 1 // intercept
		for k, mono := range monomials {
			v := 1.0
			for _, j := range mono {
				v *= x[j]
			}
			row[k+1] = v
		}
	}
	names := make([]string, outCols)
	names[0] = "1"
	for k, mono := range monomials {
		name := ""
		for _, j := range mono {
			col := fmt.Sprintf("f%d", j)
			if d.Columns != nil && j < len(d.Columns) {
				col = d.Columns[j]
			}
			if name != "" {
				name += "*"
			}
			name += col
		}
		names[k+1] = name
	}
	out := &dataset.Dataset{
		Name:     fmt.Sprintf("%s/poly%d", d.Name, degree),
		Task:     d.Task,
		Columns:  names,
		Features: m,
		Target:   append([]float64(nil), d.Target...),
	}
	return out, nil
}
