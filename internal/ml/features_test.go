package ml

import (
	"errors"
	"math"
	"testing"

	"nimbus/internal/dataset"
	"nimbus/internal/rng"
	"nimbus/internal/vec"
)

func TestPolynomialFeaturesDegree1(t *testing.T) {
	d := regData(t, 20)
	out, err := PolynomialFeatures(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.D() != d.D()+1 {
		t.Fatalf("degree-1 expansion has %d columns, want %d", out.D(), d.D()+1)
	}
	// Intercept column plus original features.
	x, _ := out.Row(0)
	orig, _ := d.Row(0)
	if x[0] != 1 {
		t.Fatal("missing intercept")
	}
	for j, v := range orig {
		if x[j+1] != v {
			t.Fatalf("column %d changed", j)
		}
	}
	if out.Columns[0] != "1" {
		t.Fatalf("intercept name %q", out.Columns[0])
	}
}

func TestPolynomialFeaturesDegree2Counts(t *testing.T) {
	// d features → 1 + d + d(d+1)/2 columns at degree 2.
	m := vec.NewMatrix(3, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	d, err := dataset.New("toy", dataset.Regression, m, []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	out, err := PolynomialFeatures(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 3 + 6
	if out.D() != want {
		t.Fatalf("degree-2 expansion has %d columns, want %d", out.D(), want)
	}
	// Spot-check: row 0 is (1,2,3); the squared and cross terms must appear.
	x, _ := out.Row(0)
	found := map[float64]bool{}
	for _, v := range x {
		found[v] = true
	}
	for _, v := range []float64{1, 2, 3, 4, 6, 9} { // 1, x0..x2, x0², x0x1, x0x2, x1², ...
		if !found[v] {
			t.Fatalf("expanded row misses value %v: %v", v, x)
		}
	}
}

func TestPolynomialFeaturesValidation(t *testing.T) {
	d := regData(t, 5)
	if _, err := PolynomialFeatures(d, 0); err == nil {
		t.Fatal("degree 0 accepted")
	}
	// 20 features at degree 6 blows the 100k column limit
	// (C(26,6) = 230230 monomials).
	if _, err := PolynomialFeatures(d, 6); err == nil {
		t.Fatal("oversized expansion accepted")
	}
}

func TestPolynomialFeaturesEnableNonlinearFit(t *testing.T) {
	// y = x0² is unlearnable by a linear model on raw features but exact
	// after degree-2 expansion.
	src := rng.New(44)
	n := 200
	m := vec.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := src.Normal(0, 1)
		m.Set(i, 0, v)
		y[i] = v * v
	}
	d, err := dataset.New("quad", dataset.Regression, m, y)
	if err != nil {
		t.Fatal(err)
	}
	rawFit, err := LinearRegression{Ridge: 1e-8}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	rawLoss := SquaredLoss{}.Eval(rawFit, d)

	expanded, err := PolynomialFeatures(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	polyFit, err := LinearRegression{Ridge: 1e-8}.Fit(expanded)
	if err != nil {
		t.Fatal(err)
	}
	polyLoss := SquaredLoss{}.Eval(polyFit, expanded)
	if polyLoss > 1e-6 {
		t.Fatalf("expanded fit loss %v, want ~0", polyLoss)
	}
	if rawLoss < 100*polyLoss {
		t.Fatalf("raw fit suspiciously good: %v vs %v", rawLoss, polyLoss)
	}
}

func TestLassoRecoversSparseModel(t *testing.T) {
	// Ground truth uses only 3 of 20 features; the lasso must zero most of
	// the rest while the ridge fit keeps everything dense.
	src := rng.New(45)
	n, dFeat := 400, 20
	m := vec.NewMatrix(n, dFeat)
	for i := range m.Data {
		m.Data[i] = src.Normal(0, 1)
	}
	truth := vec.Zeros(dFeat)
	truth[1], truth[7], truth[13] = 3, -2, 1.5
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = vec.Dot(m.Row(i), truth) + src.Normal(0, 0.05)
	}
	d, err := dataset.New("sparse", dataset.Regression, m, y)
	if err != nil {
		t.Fatal(err)
	}

	lasso := Lasso{Alpha: 0.05, Ridge: 1e-6}
	w, err := lasso.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if s := Sparsity(w); s < 0.5 {
		t.Fatalf("lasso sparsity %v, want ≥ 0.5", s)
	}
	// The true support survives with roughly correct signs and magnitudes.
	for _, j := range []int{1, 7, 13} {
		if math.Abs(w[j]-truth[j]) > 0.3 {
			t.Fatalf("weight %d = %v, want ≈ %v", j, w[j], truth[j])
		}
	}
	// Dense ridge baseline keeps nearly everything nonzero.
	ridge, err := LinearRegression{Ridge: 1e-3}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if Sparsity(ridge) > 0.2 {
		t.Fatal("ridge fit unexpectedly sparse")
	}
}

func TestLassoValidation(t *testing.T) {
	d := regData(t, 30)
	if _, err := (Lasso{}).Fit(d); err == nil {
		t.Fatal("Alpha=0 accepted")
	}
	cls := clsData(t, 30)
	if _, err := (Lasso{Alpha: 0.1}).Fit(cls); !errors.Is(err, ErrTaskMismatch) {
		t.Fatalf("want ErrTaskMismatch, got %v", err)
	}
}

func TestLassoObjectiveDecreasesVsZero(t *testing.T) {
	d := regData(t, 100)
	lasso := Lasso{Alpha: 0.01, Ridge: 1e-6}
	w, err := lasso.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if lasso.Objective(w, d) >= lasso.Objective(vec.Zeros(d.D()), d) {
		t.Fatal("lasso did not improve over the zero model")
	}
}

func TestSparsity(t *testing.T) {
	if Sparsity(nil) != 0 {
		t.Fatal("nil sparsity")
	}
	if got := Sparsity([]float64{0, 1, 0, 2}); got != 0.5 {
		t.Fatalf("sparsity %v", got)
	}
}
