package ml

import (
	"fmt"
	"math"
	"sort"

	"nimbus/internal/dataset"
	"nimbus/internal/vec"
)

// Evaluation metrics beyond the pricing losses: buyers judge the model they
// bought with the usual suspects (RMSE/R² for regression, accuracy/F1/AUC
// for classification), so the library ships them.

// RegressionReport summarizes a weight vector's fit on a regression set.
type RegressionReport struct {
	RMSE float64 `json:"rmse"`
	MAE  float64 `json:"mae"`
	R2   float64 `json:"r2"`
}

// EvaluateRegression scores w on d.
func EvaluateRegression(w []float64, d *dataset.Dataset) (*RegressionReport, error) {
	if d.Task != dataset.Regression {
		return nil, fmt.Errorf("ml: EvaluateRegression on %v data: %w", d.Task, ErrTaskMismatch)
	}
	if d.N() == 0 {
		return nil, dataset.ErrEmpty
	}
	n := float64(d.N())
	var meanY float64
	for _, y := range d.Target {
		meanY += y / n
	}
	var sse, sae, sst float64
	for i := 0; i < d.N(); i++ {
		x, y := d.Row(i)
		r := vec.Dot(w, x) - y
		sse += r * r
		sae += math.Abs(r)
		sst += (y - meanY) * (y - meanY)
	}
	r2 := math.Inf(-1)
	if sst > 0 {
		r2 = 1 - sse/sst
	} else if sse == 0 {
		r2 = 1 // constant target predicted exactly
	}
	return &RegressionReport{
		RMSE: math.Sqrt(sse / n),
		MAE:  sae / n,
		R2:   r2,
	}, nil
}

// ClassificationReport summarizes a linear classifier on a ±1-labeled set.
type ClassificationReport struct {
	Accuracy  float64 `json:"accuracy"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	AUC       float64 `json:"auc"`
	// Confusion counts: TP/FP/TN/FN with +1 as the positive class.
	TP, FP, TN, FN int
}

// EvaluateClassification scores w on d: predictions are sign(wᵀx) with the
// boundary counted negative (matching ZeroOneLoss), and AUC ranks by the
// raw score.
func EvaluateClassification(w []float64, d *dataset.Dataset) (*ClassificationReport, error) {
	if d.Task != dataset.Classification {
		return nil, fmt.Errorf("ml: EvaluateClassification on %v data: %w", d.Task, ErrTaskMismatch)
	}
	if d.N() == 0 {
		return nil, dataset.ErrEmpty
	}
	rep := &ClassificationReport{}
	scores := make([]float64, d.N())
	labels := make([]float64, d.N())
	for i := 0; i < d.N(); i++ {
		x, y := d.Row(i)
		s := vec.Dot(w, x)
		scores[i] = s
		labels[i] = y
		pred := 1.0
		if s <= 0 {
			pred = -1
		}
		switch {
		case pred == 1 && y == 1:
			rep.TP++
		case pred == 1 && y == -1:
			rep.FP++
		case pred == -1 && y == -1:
			rep.TN++
		default:
			rep.FN++
		}
	}
	total := float64(d.N())
	rep.Accuracy = float64(rep.TP+rep.TN) / total
	if rep.TP+rep.FP > 0 {
		rep.Precision = float64(rep.TP) / float64(rep.TP+rep.FP)
	}
	if rep.TP+rep.FN > 0 {
		rep.Recall = float64(rep.TP) / float64(rep.TP+rep.FN)
	}
	if rep.Precision+rep.Recall > 0 {
		rep.F1 = 2 * rep.Precision * rep.Recall / (rep.Precision + rep.Recall)
	}
	rep.AUC = auc(scores, labels)
	return rep, nil
}

// auc computes the area under the ROC curve via the rank statistic
// (Mann–Whitney U), with the standard midrank treatment of score ties.
func auc(scores, labels []float64) float64 {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	// Midranks over tied scores.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}
	var posRankSum float64
	var nPos, nNeg int
	for i, y := range labels {
		if y == 1 {
			posRankSum += ranks[i]
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return math.NaN() // undefined without both classes
	}
	u := posRankSum - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}
