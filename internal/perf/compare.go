package perf

import (
	"fmt"
	"io"
	"sort"
)

// Verdict classifies one metric's movement between two reports.
type Verdict string

const (
	// VerdictRegression: the metric moved in the bad direction by more
	// than the noise threshold.
	VerdictRegression Verdict = "regression"
	// VerdictImprovement: the metric moved in the good direction by more
	// than the noise threshold.
	VerdictImprovement Verdict = "improvement"
	// VerdictWithinNoise: the movement is inside the threshold band.
	VerdictWithinNoise Verdict = "within-noise"
)

// MetricDelta is one compared metric. Delta is the relative change
// oriented so that positive means worse (a QPS drop and a latency rise
// both read as positive), which keeps the verdict rule a single
// comparison against the threshold.
type MetricDelta struct {
	Metric  string  `json:"metric"`
	Old     float64 `json:"old"`
	New     float64 `json:"new"`
	Delta   float64 `json:"delta"` // relative, positive = worse
	Verdict Verdict `json:"verdict"`
}

// CompareOptions sets the per-class noise bands.
type CompareOptions struct {
	// Threshold is the relative band for kernel metrics (ns/op, allocs);
	// 0 means DefaultThreshold.
	Threshold float64
	// LoadThreshold is the band for load metrics (QPS, latency
	// percentiles), which carry scheduler and network jitter a kernel
	// bench does not; 0 means DefaultLoadThreshold.
	LoadThreshold float64
}

// DefaultThreshold is the kernel noise band: same-machine testing.Benchmark
// reruns of these kernels sit well inside ±10%.
const DefaultThreshold = 0.10

// DefaultLoadThreshold is the load-metric band: a closed-loop HTTP run
// shares the machine with its own server, so QPS and tail latencies swing
// much wider run to run.
const DefaultLoadThreshold = 0.25

// Comparison is the full diff of two reports.
type Comparison struct {
	Deltas []MetricDelta `json:"deltas"`
	// OnlyOld and OnlyNew list micro metrics present in one report only —
	// a renamed or dropped kernel is surfaced, never silently skipped.
	OnlyOld []string `json:"only_old,omitempty"`
	OnlyNew []string `json:"only_new,omitempty"`
	// EnvMismatch lists fingerprint fields that differ. Cross-environment
	// numbers compare as weather, not signal, so the text report leads
	// with the warning.
	EnvMismatch []string `json:"env_mismatch,omitempty"`
}

// Regressions returns the deltas that crossed the threshold in the bad
// direction.
func (c *Comparison) Regressions() []MetricDelta {
	var out []MetricDelta
	for _, d := range c.Deltas {
		if d.Verdict == VerdictRegression {
			out = append(out, d)
		}
	}
	return out
}

// HasRegression reports whether any metric regressed beyond its band.
func (c *Comparison) HasRegression() bool { return len(c.Regressions()) > 0 }

// Compare diffs two reports metric by metric. Both reports must already be
// valid (ReadFile validates); Compare itself never fails on metric values,
// only classifies them.
func Compare(oldR, newR *Report, opts CompareOptions) *Comparison {
	if opts.Threshold <= 0 {
		opts.Threshold = DefaultThreshold
	}
	if opts.LoadThreshold <= 0 {
		opts.LoadThreshold = DefaultLoadThreshold
	}
	c := &Comparison{EnvMismatch: envMismatch(oldR.Env, newR.Env)}

	if oldR.Load != nil && newR.Load != nil {
		// QPS: lower is worse, so the drop is the positive direction.
		c.add("load/qps", oldR.Load.QPS, newR.Load.QPS, true, opts.LoadThreshold)
		c.addLatency("load/client", oldR.Load.Client, newR.Load.Client, opts.LoadThreshold)
		if oldR.Load.Server != nil && newR.Load.Server != nil {
			c.addLatency("load/server", *oldR.Load.Server, *newR.Load.Server, opts.LoadThreshold)
		}
	}
	// The multi-tenant load point is diffed only when both trajectory points
	// carry it — BENCH files recorded before the registry existed simply
	// contribute no multi_load deltas, the same contract as load/server.
	if oldR.MultiLoad != nil && newR.MultiLoad != nil {
		c.add("multi_load/qps", oldR.MultiLoad.QPS, newR.MultiLoad.QPS, true, opts.LoadThreshold)
		c.addLatency("multi_load/client", oldR.MultiLoad.Client, newR.MultiLoad.Client, opts.LoadThreshold)
		if oldR.MultiLoad.Server != nil && newR.MultiLoad.Server != nil {
			c.addLatency("multi_load/server", *oldR.MultiLoad.Server, *newR.MultiLoad.Server, opts.LoadThreshold)
		}
	}

	oldMicro := make(map[string]MicroResult, len(oldR.Micro))
	for _, m := range oldR.Micro {
		oldMicro[m.Name] = m
	}
	newSeen := make(map[string]bool, len(newR.Micro))
	for _, m := range newR.Micro {
		newSeen[m.Name] = true
		om, ok := oldMicro[m.Name]
		if !ok {
			c.OnlyNew = append(c.OnlyNew, m.Name)
			continue
		}
		c.add("micro/"+m.Name+"/ns_per_op", om.NsPerOp, m.NsPerOp, false, opts.Threshold)
		c.add("micro/"+m.Name+"/allocs_per_op", float64(om.AllocsPerOp), float64(m.AllocsPerOp), false, opts.Threshold)
	}
	for _, m := range oldR.Micro {
		if !newSeen[m.Name] {
			c.OnlyOld = append(c.OnlyOld, m.Name)
		}
	}
	sort.Strings(c.OnlyOld)
	sort.Strings(c.OnlyNew)
	return c
}

// addLatency compares the three gated percentiles of one distribution.
func (c *Comparison) addLatency(prefix string, oldS, newS LatencySummary, threshold float64) {
	c.add(prefix+"/p50", oldS.P50, newS.P50, false, threshold)
	c.add(prefix+"/p95", oldS.P95, newS.P95, false, threshold)
	c.add(prefix+"/p99", oldS.P99, newS.P99, false, threshold)
}

// add classifies one metric. higherIsBetter orients the delta so positive
// always means worse.
func (c *Comparison) add(metric string, oldV, newV float64, higherIsBetter bool, threshold float64) {
	d := MetricDelta{Metric: metric, Old: oldV, New: newV}
	// A zero baseline cannot anchor a relative delta (allocs/op is often
	// exactly 0): any appearance is a regression, staying at zero is clean.
	switch {
	case oldV == 0 && newV == 0:
		d.Delta = 0
	case oldV == 0:
		d.Delta = 1 // worse by construction; threshold bands assume < 1
		if higherIsBetter {
			d.Delta = -1
		}
	default:
		d.Delta = (newV - oldV) / oldV
		if higherIsBetter {
			d.Delta = -d.Delta
		}
	}
	switch {
	case d.Delta > threshold:
		d.Verdict = VerdictRegression
	case d.Delta < -threshold:
		d.Verdict = VerdictImprovement
	default:
		d.Verdict = VerdictWithinNoise
	}
	c.Deltas = append(c.Deltas, d)
}

// envMismatch lists the fingerprint fields that differ between two
// environments (recording time and git SHA excluded — those are expected
// to differ between trajectory points).
func envMismatch(a, b Env) []string {
	var out []string
	if a.GOOS != b.GOOS {
		out = append(out, fmt.Sprintf("goos %s vs %s", a.GOOS, b.GOOS))
	}
	if a.GOARCH != b.GOARCH {
		out = append(out, fmt.Sprintf("goarch %s vs %s", a.GOARCH, b.GOARCH))
	}
	if a.NumCPU != b.NumCPU {
		out = append(out, fmt.Sprintf("num_cpu %d vs %d", a.NumCPU, b.NumCPU))
	}
	if a.GoVersion != b.GoVersion {
		out = append(out, fmt.Sprintf("go_version %s vs %s", a.GoVersion, b.GoVersion))
	}
	return out
}

// WriteText renders the comparison for humans: env warnings first, then
// one line per metric with the oriented delta, then the verdict tally.
func (c *Comparison) WriteText(w io.Writer) {
	for _, m := range c.EnvMismatch {
		fmt.Fprintf(w, "WARNING: environment mismatch: %s — deltas below are weather, not signal\n", m)
	}
	var reg, imp, noise int
	for _, d := range c.Deltas {
		mark := " "
		switch d.Verdict {
		case VerdictRegression:
			mark, reg = "✗", reg+1
		case VerdictImprovement:
			mark, imp = "✓", imp+1
		default:
			noise++
		}
		fmt.Fprintf(w, "%s %-42s %14.4g -> %14.4g  %+7.1f%%  %s\n",
			mark, d.Metric, d.Old, d.New, 100*d.Delta, d.Verdict)
	}
	for _, name := range c.OnlyOld {
		fmt.Fprintf(w, "  %-42s removed (present only in old report)\n", "micro/"+name)
	}
	for _, name := range c.OnlyNew {
		fmt.Fprintf(w, "  %-42s added (present only in new report)\n", "micro/"+name)
	}
	fmt.Fprintf(w, "%d regression(s), %d improvement(s), %d within noise\n", reg, imp, noise)
}
