// Package perf is Nimbus's benchmark-orchestration subsystem: it runs the
// serving stack and the core solver kernels under measurement and emits a
// machine-readable, schema-versioned report — the BENCH_<n>.json files at
// the repository root form the recorded perf trajectory, one point per PR,
// and Compare diffs two points with a noise threshold so "measurably
// faster" is a checkable claim instead of a commit-message adjective.
//
// A report has three parts:
//
//   - env: the hardware/toolchain fingerprint the numbers were taken on
//     (GOOS/GOARCH, CPU count, go version, git SHA) — numbers from
//     different environments compare as weather, not signal;
//   - load: the closed-loop buy-path measurement from internal/loadgen
//     driven against an in-process broker (seeded market, write-ahead
//     journal in a temp dir), with client-side exact percentiles and the
//     server-side estimates read back from the telemetry histogram;
//   - micro: testing.Benchmark results for the solver kernels on the
//     pricing path (BV dynamic program, MILP brute force, PAV/Dykstra
//     interpolation, Gaussian noise draws), recording ns/op and allocs/op.
package perf

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"nimbus/internal/loadgen"
)

// SchemaVersion is the report schema this package reads and writes.
// Readers refuse other versions: a silent cross-version comparison would
// quietly diff incompatible metrics.
const SchemaVersion = 1

// Report is one recorded point of the perf trajectory.
type Report struct {
	SchemaVersion int `json:"schema_version"`
	// Bench is the trajectory point number — BENCH_<n>.json carries n.
	// Zero for ad-hoc runs.
	Bench int `json:"bench,omitempty"`
	// GeneratedBy records the producing command line, for provenance.
	GeneratedBy string      `json:"generated_by,omitempty"`
	Env         Env         `json:"env"`
	Load        *LoadResult `json:"load,omitempty"`
	// MultiLoad is the multi-tenant buy-path measurement: the same harness
	// shape as Load but spread round-robin across several registry markets,
	// each with its own journal. Absent on points recorded before the
	// registry existed; Compare diffs it only when both points carry it.
	MultiLoad *LoadResult   `json:"multi_load,omitempty"`
	Micro     []MicroResult `json:"micro,omitempty"`
}

// Env is the environment fingerprint stamped on every report.
type Env struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
	GitSHA    string `json:"git_sha,omitempty"`
	// UnixTime is the recording time (seconds since epoch). Informational:
	// Compare never looks at it.
	UnixTime int64 `json:"unix_time,omitempty"`
}

// LoadResult is the buy-path measurement: a closed-loop loadgen run's
// throughput plus latency percentiles from both vantage points.
type LoadResult struct {
	Concurrency int   `json:"concurrency"`
	Seed        int64 `json:"seed"`
	// Offerings and JournalSync record the harness profile the point was
	// measured under (absent on points recorded before they existed).
	// Informational: Compare never looks at them, but a human diffing two
	// points should know when the profiles differ.
	Offerings      int     `json:"offerings,omitempty"`
	JournalSync    string  `json:"journal_sync,omitempty"`
	// Markets records how many tenant markets the traffic was spread
	// across (0 or absent = the legacy single-market routes).
	Markets        int     `json:"markets,omitempty"`
	Requests       int     `json:"requests"`
	Errors         int     `json:"errors"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	QPS            float64 `json:"qps"`
	Revenue        float64 `json:"revenue"`
	// Client holds exact percentiles over every request's round-trip time,
	// measured by the load generator.
	Client LatencySummary `json:"client_latency_seconds"`
	// Server holds the buy route's latency as estimated by the serving
	// stack's own telemetry histogram — what a production scrape would
	// report. Absent when the broker is remote (standalone nimbus-load
	// runs) because the generator cannot claim the server's registry.
	Server *LatencySummary `json:"server_latency_seconds,omitempty"`
}

// LatencySummary is one latency distribution in seconds.
type LatencySummary struct {
	Min  float64 `json:"min,omitempty"`
	Mean float64 `json:"mean,omitempty"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max,omitempty"`
}

// MicroResult is one solver microbenchmark measurement.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// LoadResultFrom converts a loadgen report into the schema's load section.
// Standalone nimbus-load runs use it too, so every load number in the
// project — recorded trajectory or ad-hoc run — speaks the same schema.
func LoadResultFrom(rep loadgen.Report, cfg loadgen.Config) LoadResult {
	return LoadResult{
		Concurrency:    cfg.Concurrency,
		Seed:           cfg.Seed,
		Markets:        rep.Markets,
		Requests:       rep.Requests,
		Errors:         rep.Errors,
		ElapsedSeconds: rep.Elapsed,
		QPS:            rep.QPS,
		Revenue:        rep.Revenue,
		Client: LatencySummary{
			Min:  rep.Min,
			Mean: rep.Mean,
			P50:  rep.P50,
			P95:  rep.P95,
			P99:  rep.P99,
			Max:  rep.Max,
		},
	}
}

// Validate checks a report is structurally sound: right schema version,
// complete fingerprint, at least one measurement, and internally
// consistent distributions. It is the schema gate the CI smoke job and
// the committed BENCH_<n>.json tests run.
func (r *Report) Validate() error {
	if r == nil {
		return errors.New("nil report")
	}
	if r.SchemaVersion != SchemaVersion {
		return fmt.Errorf("schema_version %d, this build reads %d", r.SchemaVersion, SchemaVersion)
	}
	if r.Env.GOOS == "" || r.Env.GOARCH == "" || r.Env.GoVersion == "" {
		return errors.New("env fingerprint incomplete: goos, goarch and go_version are required")
	}
	if r.Env.NumCPU <= 0 {
		return fmt.Errorf("env num_cpu %d must be positive", r.Env.NumCPU)
	}
	if r.Load == nil && r.MultiLoad == nil && len(r.Micro) == 0 {
		return errors.New("report has neither a load section nor micro results")
	}
	if r.Load != nil {
		if err := r.Load.validate(); err != nil {
			return fmt.Errorf("load: %w", err)
		}
	}
	if r.MultiLoad != nil {
		if err := r.MultiLoad.validate(); err != nil {
			return fmt.Errorf("multi_load: %w", err)
		}
		if r.MultiLoad.Markets < 2 {
			return fmt.Errorf("multi_load: markets %d must be at least 2", r.MultiLoad.Markets)
		}
	}
	seen := make(map[string]bool, len(r.Micro))
	for i, m := range r.Micro {
		if m.Name == "" {
			return fmt.Errorf("micro[%d]: empty name", i)
		}
		if seen[m.Name] {
			return fmt.Errorf("micro: duplicate name %q", m.Name)
		}
		seen[m.Name] = true
		if m.NsPerOp <= 0 {
			return fmt.Errorf("micro %q: ns_per_op %v must be positive", m.Name, m.NsPerOp)
		}
		if m.Iterations <= 0 {
			return fmt.Errorf("micro %q: iterations %d must be positive", m.Name, m.Iterations)
		}
		if m.AllocsPerOp < 0 || m.BytesPerOp < 0 {
			return fmt.Errorf("micro %q: negative allocation stats", m.Name)
		}
	}
	return nil
}

func (l *LoadResult) validate() error {
	if l.Requests <= 0 {
		return fmt.Errorf("requests %d must be positive", l.Requests)
	}
	if l.Errors < 0 {
		return fmt.Errorf("errors %d must be non-negative", l.Errors)
	}
	if l.QPS <= 0 {
		return fmt.Errorf("qps %v must be positive", l.QPS)
	}
	if err := l.Client.validate(); err != nil {
		return fmt.Errorf("client latency: %w", err)
	}
	if l.Server != nil {
		if err := l.Server.validate(); err != nil {
			return fmt.Errorf("server latency: %w", err)
		}
	}
	return nil
}

func (s *LatencySummary) validate() error {
	if s.P50 <= 0 {
		return fmt.Errorf("p50 %v must be positive", s.P50)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		return fmt.Errorf("percentiles not monotone: p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
	return nil
}

// WriteFile writes the report as indented JSON with a trailing newline —
// the exact bytes committed as BENCH_<n>.json, so diffs stay reviewable.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads and validates a report.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
