package perf

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"nimbus/internal/dataset"
	"nimbus/internal/journal"
	"nimbus/internal/loadgen"
	"nimbus/internal/market"
	"nimbus/internal/ml"
	"nimbus/internal/pricing"
	"nimbus/internal/registry"
	"nimbus/internal/rng"
	"nimbus/internal/server"
	"nimbus/internal/telemetry"
)

// LoadOptions configures the in-process buy-path measurement.
type LoadOptions struct {
	// Concurrency is the closed-loop buyer count (default 8).
	Concurrency int
	// Duration bounds the run when Count is zero (default 5s).
	Duration time.Duration
	// Count runs an exact request total instead of a duration.
	Count int
	// Seed drives the market build and the replayable traffic mix
	// (default 42).
	Seed int64
	// Rows sizes the stand-in dataset backing each offering (default 250).
	Rows int
	// Grid and Samples size each listed price–error curve (defaults 15
	// and 60, the integration-test shape).
	Grid    int
	Samples int
	// Offerings is how many offerings the harness lists (default 1).
	// More offerings spread purchases across broker shards, so this is the
	// knob that exercises the sharded buy path; loadgen shops every
	// (offering, loss) curve it finds on the menu.
	Offerings int
	// Sync is the harness journal's fsync policy ("always", "group",
	// "interval", "never"). Default "group": SyncAlways durability with
	// concurrent sales amortized into shared fsyncs — the policy the
	// sharded buy path is built around.
	Sync string
	// Markets, when > 1, switches the harness to the multi-tenant shape: a
	// registry under a temp root lists this many one-offering markets (each
	// with its own journal), the full daemon stack serves them through the
	// tenant routes, and loadgen round-robins buys across all of them. The
	// zero value (and 1) keeps the legacy single-broker path untouched, so
	// existing trajectory points stay comparable.
	Markets int
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (o *LoadOptions) setDefaults() {
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Duration <= 0 && o.Count <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Rows <= 0 {
		o.Rows = 250
	}
	if o.Grid <= 0 {
		o.Grid = 15
	}
	if o.Samples <= 0 {
		o.Samples = 60
	}
	if o.Offerings <= 0 {
		o.Offerings = 1
	}
	if o.Sync == "" {
		o.Sync = "group"
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// RunLoad measures the buy path end to end: it lists a seeded one-offering
// market on a broker whose sale path appends to a write-ahead journal in a
// temp dir (the production finalize path, not a stripped-down one), serves
// it through the full middleware + telemetry stack on a loopback listener,
// drives it with internal/loadgen uncorked, and reads the server-side
// latency back from the buy route's telemetry histogram.
func RunLoad(ctx context.Context, opts LoadOptions) (*LoadResult, error) {
	opts.setDefaults()
	if opts.Markets > 1 {
		return runMultiLoad(ctx, opts)
	}

	policy, err := journal.ParseSyncPolicy(opts.Sync)
	if err != nil {
		return nil, err
	}

	// Seeded market: the same stand-in dataset and listing shape the
	// integration tests use, so trajectory points measure a stable market.
	// With Offerings > 1 each listing gets its own derived seed and a
	// distinct name, so listings land on distinct broker shards (modulo
	// hash collisions) and the load mix covers them all.
	broker := market.NewBroker(opts.Seed + 2)
	reg := telemetry.NewRegistry()
	broker.SetTelemetry(reg)
	opts.Logf("perf: listing %d offering(s) (rows=%d grid=%d samples=%d)...",
		opts.Offerings, opts.Rows, opts.Grid, opts.Samples)
	for i := 0; i < opts.Offerings; i++ {
		seed := opts.Seed + int64(i)*101
		d, err := dataset.StandIn("CASP", dataset.GenConfig{Rows: opts.Rows, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("generating dataset: %w", err)
		}
		if opts.Offerings > 1 {
			// Keep the single-offering profile byte-identical to earlier
			// trajectory points; rename only when fanning out.
			d.Name = fmt.Sprintf("CASP-%02d", i+1)
		}
		pair, err := dataset.NewPair(d, rng.New(seed+1))
		if err != nil {
			return nil, err
		}
		seller, err := market.NewSeller(pair, market.Research{
			Value:  func(e float64) float64 { return 80 / (1 + e) },
			Demand: func(e float64) float64 { return 1 },
		})
		if err != nil {
			return nil, err
		}
		if _, err := broker.List(market.OfferingConfig{
			Seller:  seller,
			Model:   ml.LinearRegression{Ridge: 1e-3},
			Grid:    pricing.DefaultGrid(opts.Grid),
			Samples: opts.Samples,
			Seed:    seed + 3,
		}); err != nil {
			return nil, fmt.Errorf("listing offering: %w", err)
		}
	}

	// Journal in a temp dir: every measured sale pays the real durability
	// cost under the selected policy, as production does.
	dir, err := os.MkdirTemp("", "nimbus-perf-journal-")
	if err != nil {
		return nil, err
	}
	defer func() {
		//lint:ignore no-dropped-error the journal dir is throwaway measurement state; a leaked temp dir is not worth failing a report over
		os.RemoveAll(dir)
	}()
	wal, err := journal.Open(dir, journal.Options{Sync: policy, Telemetry: reg})
	if err != nil {
		return nil, fmt.Errorf("opening journal: %w", err)
	}
	broker.SetJournal(wal)

	// Full serving stack on a loopback listener: middleware + telemetry,
	// no rate limiter — the harness measures the buy path, not a throttle.
	quiet := func(string, ...any) {}
	handler := server.WithMiddleware(
		server.New(broker, server.WithLogger(quiet), server.WithTelemetry(reg)), quiet, reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		closeJournal(wal, opts.Logf)
		return nil, err
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	cfg := loadgen.Config{
		Concurrency: opts.Concurrency,
		Duration:    opts.Duration,
		Count:       opts.Count,
		Seed:        opts.Seed,
		Rate:        0, // uncorked: measure the serving stack, not the pacer
	}
	client := &server.Client{
		BaseURL: "http://" + ln.Addr().String(),
		HTTPClient: &http.Client{
			Timeout:   10 * time.Second,
			Transport: &http.Transport{MaxIdleConnsPerHost: opts.Concurrency},
		},
	}
	opts.Logf("perf: driving load (c=%d duration=%v count=%d seed=%d)...",
		cfg.Concurrency, cfg.Duration, cfg.Count, cfg.Seed)
	rep, runErr := loadgen.Run(ctx, client, cfg)

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		opts.Logf("perf: harness server shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		opts.Logf("perf: harness server: %v", err)
	}
	closeJournal(wal, opts.Logf)
	if runErr != nil {
		return nil, runErr
	}
	if rep.Errors > 0 {
		// Failed requests would poison the latency distribution; the
		// harness generates only satisfiable purchases, so any error is a
		// harness bug, not a perf signal.
		return nil, fmt.Errorf("load run hit %d errors (%d non-2xx) out of %d requests; refusing to record a poisoned trajectory point",
			rep.Errors, rep.NonOK, rep.Requests)
	}

	res := LoadResultFrom(rep, cfg)
	res.Offerings = opts.Offerings
	res.JournalSync = policy.String()
	// Server-side view: the buy route's latency histogram, read with one
	// consistent snapshot — exactly the series a production scrape exports.
	h := reg.Histogram("nimbus_http_request_seconds", nil, "route", "POST /api/v1/buy")
	qs := h.Quantiles(0.50, 0.95, 0.99)
	res.Server = &LatencySummary{P50: qs[0], P95: qs[1], P99: qs[2]}
	return &res, nil
}

// runMultiLoad is the Markets > 1 harness: a registry under a temp root,
// one cheap listing per market (each paying its own journal's durability
// cost under the selected policy), served through the tenant routes with
// the same middleware + telemetry stack, driven by loadgen's round-robin
// multi-market mix. The server-side latency comes from the tenant buy
// route's histogram — the series a multi-tenant scrape would export.
func runMultiLoad(ctx context.Context, opts LoadOptions) (*LoadResult, error) {
	policy, err := journal.ParseSyncPolicy(opts.Sync)
	if err != nil {
		return nil, err
	}
	root, err := os.MkdirTemp("", "nimbus-perf-registry-")
	if err != nil {
		return nil, err
	}
	defer func() {
		//lint:ignore no-dropped-error the registry root is throwaway measurement state; a leaked temp dir is not worth failing a report over
		os.RemoveAll(root)
	}()

	reg := telemetry.NewRegistry()
	r, err := registry.Open(registry.Config{
		Root:      root,
		Sync:      policy,
		Telemetry: reg,
	})
	if err != nil {
		return nil, fmt.Errorf("opening registry: %w", err)
	}
	opts.Logf("perf: listing %d tenant market(s) (rows=%d grid=%d samples=%d)...",
		opts.Markets, opts.Rows, opts.Grid, opts.Samples)
	ids := make([]string, opts.Markets)
	for i := range ids {
		ids[i] = fmt.Sprintf("market-%02d", i+1)
		// The same derived-seed progression the single-broker harness uses
		// for extra offerings, so the per-market curves differ the same way.
		if _, err := r.List(registry.Spec{
			ID:        ids[i],
			Generator: "CASP",
			Rows:      opts.Rows,
			Grid:      opts.Grid,
			Samples:   opts.Samples,
			Seed:      opts.Seed + int64(i)*101,
		}, nil); err != nil {
			closeRegistry(r, opts.Logf)
			return nil, fmt.Errorf("listing market %s: %w", ids[i], err)
		}
	}

	quiet := func(string, ...any) {}
	handler := server.WithMiddleware(
		server.NewMulti(r, server.WithLogger(quiet), server.WithTelemetry(reg)), quiet, reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		closeRegistry(r, opts.Logf)
		return nil, err
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	cfg := loadgen.Config{
		Concurrency: opts.Concurrency,
		Duration:    opts.Duration,
		Count:       opts.Count,
		Seed:        opts.Seed,
		Rate:        0, // uncorked, as the single-broker harness runs
		Markets:     ids,
	}
	client := &server.Client{
		BaseURL: "http://" + ln.Addr().String(),
		HTTPClient: &http.Client{
			Timeout:   10 * time.Second,
			Transport: &http.Transport{MaxIdleConnsPerHost: opts.Concurrency},
		},
	}
	opts.Logf("perf: driving multi-market load (markets=%d c=%d duration=%v count=%d seed=%d)...",
		opts.Markets, cfg.Concurrency, cfg.Duration, cfg.Count, cfg.Seed)
	rep, runErr := loadgen.Run(ctx, client, cfg)

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		opts.Logf("perf: harness server shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		opts.Logf("perf: harness server: %v", err)
	}
	closeRegistry(r, opts.Logf)
	if runErr != nil {
		return nil, runErr
	}
	if rep.Errors > 0 {
		return nil, fmt.Errorf("multi-market load run hit %d errors (%d non-2xx) out of %d requests; refusing to record a poisoned trajectory point",
			rep.Errors, rep.NonOK, rep.Requests)
	}

	res := LoadResultFrom(rep, cfg)
	res.Offerings = opts.Markets // one offering per market
	res.JournalSync = policy.String()
	h := reg.Histogram("nimbus_http_request_seconds", nil, "route", "POST /api/v1/datasets/{id}/buy")
	qs := h.Quantiles(0.50, 0.95, 0.99)
	res.Server = &LatencySummary{P50: qs[0], P95: qs[1], P99: qs[2]}
	return &res, nil
}

// closeRegistry drains and closes the harness registry; failures are
// logged only, matching closeJournal.
func closeRegistry(r *registry.Registry, logf func(string, ...any)) {
	if err := r.Close(); err != nil {
		logf("perf: closing registry: %v", err)
	}
}

// closeJournal flushes and closes the harness journal; failures are logged
// only — the measurement is already taken and the journal is throwaway.
func closeJournal(wal *journal.Journal, logf func(string, ...any)) {
	if err := wal.Close(); err != nil {
		logf("perf: closing journal: %v", err)
	}
}

// RunOptions configures a full trajectory recording.
type RunOptions struct {
	Load LoadOptions
	// Markets, when > 1, records a second load pass spread across that many
	// registry tenant markets (the same Load profile otherwise), stored as
	// the report's multi_load section.
	Markets int
	// Micro configures the kernel sweep.
	Micro MicroOptions
	// MicroRunner overrides how the kernel sweep is executed; nil means
	// RunMicro in this process. cmd/nimbus-bench points it at a fresh
	// child process: an in-process sweep runs after the load phases, and
	// the allocator state they leave behind (span fragmentation, grown
	// heap) inflates the alloc-heavy kernels by >10% on a small box.
	MicroRunner func(MicroOptions) ([]MicroResult, error)
	// Bench is the trajectory point number stamped on the report (the n
	// in BENCH_<n>.json); 0 for ad-hoc runs.
	Bench int
	// GeneratedBy records provenance, e.g. "nimbus-bench -perf run".
	GeneratedBy string
}

// Run records one full trajectory point: environment fingerprint, the
// in-process load measurement, and the kernel sweep.
func Run(ctx context.Context, opts RunOptions) (*Report, error) {
	r := &Report{
		SchemaVersion: SchemaVersion,
		Bench:         opts.Bench,
		GeneratedBy:   opts.GeneratedBy,
		Env:           CaptureEnv(),
	}
	load, err := RunLoad(ctx, opts.Load)
	if err != nil {
		return nil, fmt.Errorf("load harness: %w", err)
	}
	r.Load = load
	if opts.Markets > 1 {
		mopts := opts.Load
		mopts.Markets = opts.Markets
		multi, err := RunLoad(ctx, mopts)
		if err != nil {
			return nil, fmt.Errorf("multi-market load harness: %w", err)
		}
		r.MultiLoad = multi
	}
	if opts.Load.Logf != nil {
		opts.Load.Logf("perf: load done (%d requests, %.0f qps); running %d kernel benches...",
			load.Requests, load.QPS, len(Microbenches()))
	}
	runMicro := opts.MicroRunner
	if runMicro == nil {
		runMicro = RunMicro
	}
	micro, err := runMicro(opts.Micro)
	if err != nil {
		return nil, fmt.Errorf("microbenches: %w", err)
	}
	r.Micro = micro
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("harness produced an invalid report: %w", err)
	}
	return r, nil
}
