package perf

import (
	"errors"
	"flag"
	"fmt"
	"sync"
	"testing"
	"time"

	"nimbus/internal/dataset"
	"nimbus/internal/market"
	"nimbus/internal/ml"
	"nimbus/internal/noise"
	"nimbus/internal/opt"
	"nimbus/internal/pricing"
	"nimbus/internal/rng"
)

// Microbench is one named kernel benchmark on the pricing path.
type Microbench struct {
	Name  string
	Bench func(b *testing.B)
}

// Microbenches builds the solver kernel suite. The inputs are fixed-seed
// synthetic problems, so every trajectory point measures the identical
// workload:
//
//   - opt/dp/n=100: the buyer-valuation dynamic program (Algorithm 1),
//     the O(n²) core of every curve construction;
//   - opt/bruteforce/n=8: the exact MILP-equivalent enumeration
//     (Algorithm 2) at a small point count — the paper's Figure 9
//     comparison partner;
//   - opt/interpolate-l2/n=50: the PAV isotonic L2 projection that snaps
//     price targets into the arbitrage-free region;
//   - opt/interpolate-l1/n=20: the Dykstra-style L1 variant;
//   - noise/gaussian/d=90: the per-sale Gaussian model perturbation at
//     YearMSD dimensionality — the broker's real-time path;
//   - market/buy/mem: one full in-memory purchase (quote, perturb,
//     finalize, ledger append) against a pre-listed offering — the
//     //lint:hotpath closure end to end, so allocation hoists on the buy
//     path show up here as allocs/op.
func Microbenches() []Microbench {
	dp := benchProblem(100)
	bf := benchProblem(8)
	l2Targets := benchTargets(101, 50)
	l1Targets := benchTargets(102, 20)
	return []Microbench{
		{Name: "opt/dp/n=100", Bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := opt.MaximizeRevenueDP(dp); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "opt/bruteforce/n=8", Bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := opt.MaximizeRevenueBruteForce(bf); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "opt/interpolate-l2/n=50", Bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := opt.InterpolateL2(l2Targets); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "opt/interpolate-l1/n=20", Bench: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := opt.InterpolateL1(l1Targets); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "noise/gaussian/d=90", Bench: func(b *testing.B) {
			src := rng.New(1)
			optimal := src.NormalVec(90, 1) // YearMSD dimensionality
			mech := noise.Gaussian{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mech.Perturb(optimal, 0.5, src)
			}
		}},
		{Name: "market/buy/mem", Bench: func(b *testing.B) {
			broker, offering := benchMarket()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := broker.BuyAtQuality(offering, "squared", 50); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// benchMarket lists one small fixed-seed offering on an in-memory broker
// (no journal), so the buy kernel isolates the quote-perturb-finalize
// path from durability I/O.
func benchMarket() (*market.Broker, string) {
	d, err := dataset.StandIn("CASP", dataset.GenConfig{Rows: 200, Seed: 7})
	if err != nil {
		panic(err) // fixed-seed input; cannot fail
	}
	pair, err := dataset.NewPair(d, rng.New(8))
	if err != nil {
		panic(err)
	}
	seller, err := market.NewSeller(pair, market.Research{
		Value:  func(e float64) float64 { return 80 / (1 + e) },
		Demand: func(e float64) float64 { return 1 },
	})
	if err != nil {
		panic(err)
	}
	broker := market.NewBroker(9)
	o, err := broker.List(market.OfferingConfig{
		Seller:  seller,
		Model:   ml.LinearRegression{Ridge: 1e-3},
		Grid:    pricing.DefaultGrid(10),
		Samples: 30,
		Seed:    10,
	})
	if err != nil {
		panic(err)
	}
	return broker, o.Name
}

// benchProblem mirrors internal/opt's benchmark input: n buyer points with
// strictly increasing quality and non-decreasing value.
func benchProblem(n int) *opt.Problem {
	src := rng.New(99)
	pts := make([]opt.BuyerPoint, n)
	x, v := 0.0, 0.0
	for i := 0; i < n; i++ {
		x += 0.5 + 3*src.Float64()
		v += 10 * src.Float64()
		pts[i] = opt.BuyerPoint{X: x, Value: v, Mass: 0.1 + src.Float64()}
	}
	p, err := opt.NewProblem(pts)
	if err != nil {
		panic(err) // fixed-seed input; cannot fail
	}
	return p
}

// benchTargets builds n interpolation targets with increasing quality.
func benchTargets(seed int64, n int) []opt.PricePoint {
	src := rng.New(seed)
	targets := make([]opt.PricePoint, n)
	x := 0.0
	for i := range targets {
		x += 0.5 + src.Float64()
		targets[i] = opt.PricePoint{X: x, Target: 30 * src.Float64()}
	}
	return targets
}

// MicroOptions configures a microbenchmark sweep.
type MicroOptions struct {
	// BenchTime bounds each benchmark's measurement time; 0 keeps the
	// testing package's default (1s per benchmark). The CI smoke job uses
	// a small value — its output proves the pipeline, not the hardware.
	BenchTime time.Duration
}

// RunMicro measures every kernel in Microbenches and returns the results
// in suite order.
func RunMicro(opts MicroOptions) ([]MicroResult, error) {
	if opts.BenchTime > 0 {
		restore, err := setBenchTime(opts.BenchTime)
		if err != nil {
			return nil, err
		}
		defer restore()
	}
	var out []MicroResult
	for _, mb := range Microbenches() {
		res := testing.Benchmark(mb.Bench)
		if res.N == 0 {
			return nil, fmt.Errorf("benchmark %s did not run (failed inside testing.Benchmark)", mb.Name)
		}
		out = append(out, MicroResult{
			Name:        mb.Name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Iterations:  res.N,
		})
	}
	return out, nil
}

// initTestFlags registers the testing package's flags exactly once, so
// test.benchtime can be set programmatically from a non-test binary.
// testing.Init is a no-op when the process is already a test binary.
var initTestFlags sync.Once

// setBenchTime overrides the testing package's per-benchmark time budget
// and returns a restore func for the previous value.
func setBenchTime(d time.Duration) (restore func(), err error) {
	initTestFlags.Do(testing.Init)
	f := flag.Lookup("test.benchtime")
	if f == nil {
		return nil, errors.New("test.benchtime flag not registered")
	}
	prev := f.Value.String()
	if err := f.Value.Set(d.String()); err != nil {
		return nil, err
	}
	return func() {
		//lint:ignore no-dropped-error restoring a value the flag previously held cannot fail
		f.Value.Set(prev)
	}, nil
}
