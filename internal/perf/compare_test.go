package perf

import (
	"bytes"
	"strings"
	"testing"
)

// baseline builds a report pair-ready baseline with one load section and
// two kernels.
func baseline() *Report {
	r := goldenReport()
	r.Bench = 1
	return r
}

// deltaFor pulls one metric out of a comparison.
func deltaFor(t *testing.T, c *Comparison, metric string) MetricDelta {
	t.Helper()
	for _, d := range c.Deltas {
		if d.Metric == metric {
			return d
		}
	}
	t.Fatalf("metric %s not compared; have %v", metric, c.Deltas)
	return MetricDelta{}
}

// TestCompareSelfIsClean pins the acceptance criterion: a report compared
// against itself has zero regressions and every delta within noise.
func TestCompareSelfIsClean(t *testing.T) {
	r := baseline()
	c := Compare(r, r, CompareOptions{})
	if c.HasRegression() {
		t.Fatalf("self-compare found regressions: %+v", c.Regressions())
	}
	for _, d := range c.Deltas {
		if d.Verdict != VerdictWithinNoise || d.Delta != 0 {
			t.Errorf("%s: self-compare delta %v verdict %s, want 0 within-noise", d.Metric, d.Delta, d.Verdict)
		}
	}
	if len(c.OnlyOld) != 0 || len(c.OnlyNew) != 0 || len(c.EnvMismatch) != 0 {
		t.Errorf("self-compare reported asymmetries: %+v", c)
	}
}

// TestCompareVerdicts injects movements in every direction and checks the
// classification, including the orientation of higher-is-better metrics.
func TestCompareVerdicts(t *testing.T) {
	oldR, newR := baseline(), baseline()
	newR.Micro[0].NsPerOp *= 2.0             // kernel 2x slower: regression
	newR.Micro[1].NsPerOp *= 0.5             // kernel 2x faster: improvement
	newR.Micro[1].AllocsPerOp = 0            // fewer allocs: improvement
	newR.Load.QPS *= 0.5                     // throughput halved: regression
	newR.Load.Client.P99 *= 1.05             // +5%: inside the 25% load band
	newR.Load.Server.P95 *= 3.0              // tail blowup: regression
	c := Compare(oldR, newR, CompareOptions{})

	for metric, want := range map[string]Verdict{
		"micro/opt/dp/n=100/ns_per_op":           VerdictRegression,
		"micro/noise/gaussian/d=90/ns_per_op":    VerdictImprovement,
		"micro/noise/gaussian/d=90/allocs_per_op": VerdictImprovement,
		"load/qps":        VerdictRegression,
		"load/client/p99": VerdictWithinNoise,
		"load/server/p95": VerdictRegression,
	} {
		if got := deltaFor(t, c, metric); got.Verdict != want {
			t.Errorf("%s: verdict %s (delta %+.3f), want %s", metric, got.Verdict, got.Delta, want)
		}
	}
	if !c.HasRegression() {
		t.Error("injected regressions not detected")
	}

	// QPS orientation: the drop must read as a positive (bad) delta.
	if d := deltaFor(t, c, "load/qps"); d.Delta <= 0 {
		t.Errorf("qps drop delta = %v, want positive (oriented to worse)", d.Delta)
	}
}

// TestCompareThresholdConfigurable checks the bands actually move.
func TestCompareThresholdConfigurable(t *testing.T) {
	oldR, newR := baseline(), baseline()
	newR.Micro[0].NsPerOp *= 1.15 // +15%
	if c := Compare(oldR, newR, CompareOptions{Threshold: 0.10}); !c.HasRegression() {
		t.Error("+15% not flagged under a 10% threshold")
	}
	if c := Compare(oldR, newR, CompareOptions{Threshold: 0.20}); c.HasRegression() {
		t.Error("+15% flagged under a 20% threshold")
	}
}

// TestCompareZeroBaselineAllocs pins the zero-anchor rule: allocations
// appearing on a previously allocation-free kernel is a regression, and
// staying at zero is clean.
func TestCompareZeroBaselineAllocs(t *testing.T) {
	oldR, newR := baseline(), baseline()
	oldR.Micro[1].AllocsPerOp = 0
	newR.Micro[1].AllocsPerOp = 0
	c := Compare(oldR, newR, CompareOptions{})
	if d := deltaFor(t, c, "micro/noise/gaussian/d=90/allocs_per_op"); d.Verdict != VerdictWithinNoise {
		t.Errorf("0 -> 0 allocs verdict %s, want within-noise", d.Verdict)
	}
	newR.Micro[1].AllocsPerOp = 3
	c = Compare(oldR, newR, CompareOptions{})
	if d := deltaFor(t, c, "micro/noise/gaussian/d=90/allocs_per_op"); d.Verdict != VerdictRegression {
		t.Errorf("0 -> 3 allocs verdict %s, want regression", d.Verdict)
	}
}

// TestCompareAsymmetricKernels checks renamed kernels surface on both
// sides instead of being silently skipped.
func TestCompareAsymmetricKernels(t *testing.T) {
	oldR, newR := baseline(), baseline()
	newR.Micro[1].Name = "noise/gaussian/d=128"
	c := Compare(oldR, newR, CompareOptions{})
	if len(c.OnlyOld) != 1 || c.OnlyOld[0] != "noise/gaussian/d=90" {
		t.Errorf("OnlyOld = %v", c.OnlyOld)
	}
	if len(c.OnlyNew) != 1 || c.OnlyNew[0] != "noise/gaussian/d=128" {
		t.Errorf("OnlyNew = %v", c.OnlyNew)
	}
}

// TestCompareEnvMismatchWarns checks cross-environment comparisons carry
// the weather warning in both the struct and the text rendering.
func TestCompareEnvMismatchWarns(t *testing.T) {
	oldR, newR := baseline(), baseline()
	newR.Env.NumCPU = 128
	newR.Env.GoVersion = "go1.99"
	c := Compare(oldR, newR, CompareOptions{})
	if len(c.EnvMismatch) != 2 {
		t.Fatalf("EnvMismatch = %v, want 2 entries", c.EnvMismatch)
	}
	var buf bytes.Buffer
	c.WriteText(&buf)
	if !strings.Contains(buf.String(), "environment mismatch") {
		t.Errorf("text rendering missing env warning:\n%s", buf.String())
	}
}

// TestWriteTextTallies smoke-checks the human rendering.
func TestWriteTextTallies(t *testing.T) {
	oldR, newR := baseline(), baseline()
	newR.Micro[0].NsPerOp *= 2
	var buf bytes.Buffer
	Compare(oldR, newR, CompareOptions{}).WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"regression(s)", "within noise", "micro/opt/dp/n=100/ns_per_op"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}
