package perf

import (
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// CaptureEnv stamps the environment fingerprint for a report: numbers are
// only comparable against numbers from the same fingerprint, so every
// report records where it came from.
func CaptureEnv() Env {
	return Env{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		GitSHA:    gitSHA(),
		UnixTime:  time.Now().Unix(),
	}
}

// gitSHA resolves the commit the binary was built from: the embedded VCS
// stamp when the build has one, otherwise the working tree's HEAD (the
// common case under `go run` and `go test`, which do not stamp). Best
// effort — outside a checkout it returns "".
func gitSHA() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
