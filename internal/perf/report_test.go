package perf

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// goldenReport is the fixed report the schema golden test pins. Every field
// of every section is populated so an accidental json-tag rename, type
// change or dropped field shows up as a golden diff.
func goldenReport() *Report {
	return &Report{
		SchemaVersion: 1,
		Bench:         6,
		GeneratedBy:   "nimbus-bench -perf run",
		Env: Env{
			GOOS:      "linux",
			GOARCH:    "amd64",
			NumCPU:    8,
			GoVersion: "go1.22.0",
			GitSHA:    "0123456789abcdef0123456789abcdef01234567",
			UnixTime:  1754550000,
		},
		Load: &LoadResult{
			Concurrency:    8,
			Seed:           42,
			Requests:       4000,
			Errors:         0,
			ElapsedSeconds: 5.002,
			QPS:            799.68,
			Revenue:        123456.78,
			Client: LatencySummary{
				Min: 0.0004, Mean: 0.0021, P50: 0.0018, P95: 0.0042, P99: 0.0077, Max: 0.031,
			},
			Server: &LatencySummary{P50: 0.0017, P95: 0.0040, P99: 0.0074},
		},
		Micro: []MicroResult{
			{Name: "opt/dp/n=100", NsPerOp: 152340.5, AllocsPerOp: 12, BytesPerOp: 82432, Iterations: 7890},
			{Name: "noise/gaussian/d=90", NsPerOp: 2210.25, AllocsPerOp: 1, BytesPerOp: 768, Iterations: 543210},
		},
	}
}

// TestReportGoldenRoundTrip pins the wire format: the golden JSON on disk
// is exactly what WriteFile emits for the golden report, and reading it
// back reproduces the struct value for value. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/perf -run Golden — and treat any diff
// as a schema change that needs a SchemaVersion bump decision.
func TestReportGoldenRoundTrip(t *testing.T) {
	golden := filepath.Join("testdata", "golden_report.json")
	rep := goldenReport()
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteFile(golden); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden missing (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if string(got) != string(want) {
		t.Errorf("marshaled report diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	back, err := ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rep) {
		t.Errorf("round-trip mismatch:\ngot  %+v\nwant %+v", back, rep)
	}
}

// TestValidateRejects enumerates the schema gate's refusals.
func TestValidateRejects(t *testing.T) {
	mutate := func(f func(*Report)) *Report {
		r := goldenReport()
		f(r)
		return r
	}
	for _, tc := range []struct {
		name string
		rep  *Report
		want string
	}{
		{"nil", nil, "nil report"},
		{"wrong version", mutate(func(r *Report) { r.SchemaVersion = 99 }), "schema_version"},
		{"no goos", mutate(func(r *Report) { r.Env.GOOS = "" }), "fingerprint"},
		{"no cpus", mutate(func(r *Report) { r.Env.NumCPU = 0 }), "num_cpu"},
		{"empty", mutate(func(r *Report) { r.Load = nil; r.Micro = nil }), "neither"},
		{"no requests", mutate(func(r *Report) { r.Load.Requests = 0 }), "requests"},
		{"zero qps", mutate(func(r *Report) { r.Load.QPS = 0 }), "qps"},
		{"percentile order", mutate(func(r *Report) { r.Load.Client.P95 = r.Load.Client.P50 / 2 }), "monotone"},
		{"dup micro", mutate(func(r *Report) { r.Micro = append(r.Micro, r.Micro[0]) }), "duplicate"},
		{"unnamed micro", mutate(func(r *Report) { r.Micro[0].Name = "" }), "empty name"},
		{"zero ns", mutate(func(r *Report) { r.Micro[0].NsPerOp = 0 }), "ns_per_op"},
		{"zero iterations", mutate(func(r *Report) { r.Micro[0].Iterations = 0 }), "iterations"},
	} {
		err := tc.rep.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted an invalid report", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if err := goldenReport().Validate(); err != nil {
		t.Errorf("golden report invalid: %v", err)
	}
}

// TestReadFileRejects covers the file-level failure paths.
func TestReadFileRejects(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("ReadFile accepted a missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Error("ReadFile accepted malformed JSON")
	}
	invalid := filepath.Join(t.TempDir(), "invalid.json")
	if err := os.WriteFile(invalid, []byte(`{"schema_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(invalid); err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Errorf("ReadFile err = %v, want schema_version refusal", err)
	}
}

// TestCommittedTrajectoryPoint validates the BENCH_<n>.json actually
// committed at the repository root — the trajectory's recorded points must
// always parse under the current schema.
func TestCommittedTrajectoryPoint(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no BENCH_*.json at the repository root; the perf trajectory must have at least one recorded point")
	}
	for _, path := range matches {
		rep, err := ReadFile(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if rep.Bench <= 0 {
			t.Errorf("%s: bench number %d, want positive", path, rep.Bench)
		}
		if rep.Load == nil || len(rep.Micro) == 0 {
			t.Errorf("%s: trajectory points must record both load and micro sections", path)
		}
	}
}
