package perf

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// shortLoad is the CI-friendly harness shape: a small market and an exact
// request count so the test is bounded by work, not wall clock.
func shortLoad() LoadOptions {
	return LoadOptions{
		Concurrency: 4,
		Count:       60,
		Seed:        42,
		Rows:        150,
		Grid:        10,
		Samples:     30,
	}
}

// TestRunLoadInProcess drives the full in-process harness — seeded market,
// journal in a temp dir, middleware stack, loadgen — and checks the load
// section is complete from both vantage points.
func TestRunLoadInProcess(t *testing.T) {
	res, err := RunLoad(context.Background(), shortLoad())
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 60 || res.Errors != 0 {
		t.Errorf("requests=%d errors=%d, want 60 and 0", res.Requests, res.Errors)
	}
	if res.QPS <= 0 {
		t.Errorf("qps = %v, want > 0", res.QPS)
	}
	if res.Revenue <= 0 {
		t.Errorf("revenue = %v, want > 0", res.Revenue)
	}
	if res.Client.P50 <= 0 || res.Client.P95 < res.Client.P50 || res.Client.P99 < res.Client.P95 {
		t.Errorf("client percentiles out of order: %+v", res.Client)
	}
	if res.Server == nil {
		t.Fatal("in-process run missing the server-side histogram view")
	}
	if res.Server.P50 <= 0 || res.Server.P95 < res.Server.P50 || res.Server.P99 < res.Server.P95 {
		t.Errorf("server percentiles out of order: %+v", res.Server)
	}
	if err := res.validate(); err != nil {
		t.Errorf("harness load result invalid: %v", err)
	}
}

// TestRunMultiLoadInProcess drives the Markets > 1 harness shape — a
// registry under a temp root, tenant routes, round-robin traffic — and
// checks the multi point is complete and correctly stamped.
func TestRunMultiLoadInProcess(t *testing.T) {
	opts := shortLoad()
	opts.Markets = 3
	res, err := RunLoad(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 60 || res.Errors != 0 {
		t.Errorf("requests=%d errors=%d, want 60 and 0", res.Requests, res.Errors)
	}
	if res.Markets != 3 || res.Offerings != 3 {
		t.Errorf("markets=%d offerings=%d, want 3 and 3", res.Markets, res.Offerings)
	}
	if res.Server == nil || res.Server.P50 <= 0 {
		t.Fatalf("tenant buy route histogram not read back: %+v", res.Server)
	}
	if err := res.validate(); err != nil {
		t.Errorf("multi-market load result invalid: %v", err)
	}
}

// TestRunRecordsMultiLoadSection checks the trajectory pipeline stores the
// second load pass as multi_load and that the point survives a JSON
// round-trip through the schema gate.
func TestRunRecordsMultiLoadSection(t *testing.T) {
	rep, err := Run(context.Background(), RunOptions{
		Load:        shortLoad(),
		Markets:     2,
		Micro:       MicroOptions{BenchTime: 2 * time.Millisecond},
		GeneratedBy: "perf test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MultiLoad == nil || rep.MultiLoad.Markets != 2 {
		t.Fatalf("multi_load section missing or unstamped: %+v", rep.MultiLoad)
	}
	if rep.Load.Markets != 0 {
		t.Errorf("single-market load stamped markets=%d, want 0", rep.Load.Markets)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report with multi_load fails the schema gate: %v", err)
	}
	// Self-compare covers the multi_load deltas too.
	c := Compare(rep, rep, CompareOptions{})
	if c.HasRegression() {
		t.Errorf("self-compare found regressions: %+v", c.Regressions())
	}
	var multiDeltas int
	for _, d := range c.Deltas {
		if len(d.Metric) > 10 && d.Metric[:10] == "multi_load" {
			multiDeltas++
		}
	}
	if multiDeltas == 0 {
		t.Error("Compare produced no multi_load deltas for two reports that both carry the section")
	}
}

// TestRunMicroShort runs the kernel suite at a tiny benchtime and checks
// every kernel reports positive measurements.
func TestRunMicroShort(t *testing.T) {
	micro, err := RunMicro(MicroOptions{BenchTime: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(micro) != len(Microbenches()) {
		t.Fatalf("got %d results, want %d", len(micro), len(Microbenches()))
	}
	for _, m := range micro {
		if m.NsPerOp <= 0 || m.Iterations <= 0 {
			t.Errorf("%s: ns/op %v iterations %d, want positive", m.Name, m.NsPerOp, m.Iterations)
		}
		if m.AllocsPerOp < 0 || m.BytesPerOp < 0 {
			t.Errorf("%s: negative alloc stats", m.Name)
		}
	}
}

// TestRunFullTrajectoryPoint records a complete short-mode point and
// checks it passes the schema gate and carries the fingerprint — the exact
// pipeline the CI perf-smoke job and BENCH_<n>.json production run.
func TestRunFullTrajectoryPoint(t *testing.T) {
	rep, err := Run(context.Background(), RunOptions{
		Load:        shortLoad(),
		Micro:       MicroOptions{BenchTime: 2 * time.Millisecond},
		Bench:       99,
		GeneratedBy: "perf test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("harness produced an invalid report: %v", err)
	}
	if rep.Bench != 99 || rep.GeneratedBy != "perf test" {
		t.Errorf("provenance not stamped: %+v", rep)
	}
	if rep.Env.GOOS != runtime.GOOS || rep.Env.NumCPU != runtime.NumCPU() {
		t.Errorf("fingerprint mismatch: %+v", rep.Env)
	}
	if rep.Env.GitSHA == "" {
		t.Error("git SHA not resolved inside the repository")
	}
	// A freshly recorded point must self-compare clean — the trajectory's
	// base invariant.
	c := Compare(rep, rep, CompareOptions{})
	if c.HasRegression() {
		t.Errorf("self-compare of a fresh report found regressions: %+v", c.Regressions())
	}
}

// TestRunUsesMicroRunner checks the kernel-sweep override hook: when a
// runner is supplied (cmd/nimbus-bench re-execs into a child process),
// Run must take the sweep from it, options passed through intact.
func TestRunUsesMicroRunner(t *testing.T) {
	canned := []MicroResult{{Name: "opt/fake/n=1", NsPerOp: 1, AllocsPerOp: 0, Iterations: 1}}
	var gotOpts MicroOptions
	rep, err := Run(context.Background(), RunOptions{
		Load:  shortLoad(),
		Micro: MicroOptions{BenchTime: 7 * time.Millisecond},
		MicroRunner: func(mo MicroOptions) ([]MicroResult, error) {
			gotOpts = mo
			return canned, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotOpts.BenchTime != 7*time.Millisecond {
		t.Errorf("runner got options %+v, want the configured benchtime", gotOpts)
	}
	if len(rep.Micro) != 1 || rep.Micro[0].Name != "opt/fake/n=1" {
		t.Errorf("micro section %+v, want the runner's result", rep.Micro)
	}
}
