package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestStreamCSVValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := StreamCSV(&buf, "Simulated1", 0, 1); err == nil {
		t.Fatal("zero rows accepted")
	}
	if err := StreamCSV(&buf, "Unknown", 10, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestStreamCSVRoundTrips(t *testing.T) {
	for name, task := range map[string]Task{
		"Simulated1": Regression,
		"Simulated2": Classification,
		"YearMSD":    Regression,
		"CovType":    Classification,
	} {
		var buf bytes.Buffer
		if err := StreamCSV(&buf, name, 50, 9); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ds, err := ReadCSV(&buf, name, task, "target")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.N() != 50 {
			t.Fatalf("%s: %d rows", name, ds.N())
		}
	}
}

func TestStreamMatchesBatchGenerator(t *testing.T) {
	// Same name + seed: the streamed rows must equal the in-memory
	// generator's rows exactly (same recipe, same stream consumption)
	// for the pure-Gaussian datasets.
	const rows = 40
	batch := Simulated1(GenConfig{Rows: rows, Seed: 17})
	var buf bytes.Buffer
	if err := StreamCSV(&buf, "Simulated1", rows, 17); err != nil {
		t.Fatal(err)
	}
	streamed, err := ReadCSV(&buf, "s", Regression, "target")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		bx, by := batch.Row(i)
		sx, sy := streamed.Row(i)
		for j := range bx {
			if bx[j] != sx[j] {
				t.Fatalf("row %d col %d: %v vs %v", i, j, bx[j], sx[j])
			}
		}
		if by != sy {
			t.Fatalf("row %d target: %v vs %v", i, by, sy)
		}
	}
}

func TestStreamDimensions(t *testing.T) {
	var buf bytes.Buffer
	if err := StreamCSV(&buf, "SUSY", 3, 1); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	if got := len(strings.Split(header, ",")); got != 19 { // 18 features + target
		t.Fatalf("SUSY header has %d columns", got)
	}
}
