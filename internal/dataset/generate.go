package dataset

import (
	"fmt"
	"math"

	"nimbus/internal/rng"
	"nimbus/internal/vec"
)

// The paper's evaluation uses six datasets (Table 3): two synthetic ones it
// defines precisely (Simulated1, Simulated2) and four UCI datasets. The UCI
// files are not redistributable here, so this file provides generators that
// reproduce Simulated1/2 exactly as described and synthetic stand-ins for
// YearMSD, CASP, CovType and SUSY with the real datasets' dimensionality and
// qualitatively matched noise levels (see DESIGN.md, "Substitutions").

// GenConfig controls a synthetic generator run.
type GenConfig struct {
	// Rows is the total number of examples to generate (train+test).
	Rows int
	// Seed drives the deterministic generator stream.
	Seed int64
}

// randomHyperplane draws the ground-truth weight vector used by a generator.
func randomHyperplane(d int, src *rng.Source) []float64 {
	w := make([]float64, d)
	for i := range w {
		w[i] = src.Normal(0, 1)
	}
	return w
}

// gaussianDesign fills an n x d design matrix with IID N(0,1) features.
func gaussianDesign(n, d int, src *rng.Source) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = src.Normal(0, 1)
	}
	return m
}

// Simulated1 reproduces the paper's regression dataset: feature vectors from
// a normal distribution and targets that are the inner product of the
// feature vector with a hidden hyperplane (d = 20).
func Simulated1(cfg GenConfig) *Dataset {
	const d = 20
	src := rng.New(cfg.Seed)
	w := randomHyperplane(d, src)
	x := gaussianDesign(cfg.Rows, d, src)
	y := make([]float64, cfg.Rows)
	for i := range y {
		y[i] = vec.Dot(x.Row(i), w)
	}
	return &Dataset{Name: "Simulated1", Task: Regression, Features: x, Target: y}
}

// Simulated2 reproduces the paper's classification dataset: a point above
// the hidden hyperplane is labeled +1 with probability 0.95 (otherwise -1),
// and symmetrically below it (d = 20).
func Simulated2(cfg GenConfig) *Dataset {
	const d = 20
	const flip = 0.05
	src := rng.New(cfg.Seed)
	w := randomHyperplane(d, src)
	x := gaussianDesign(cfg.Rows, d, src)
	y := make([]float64, cfg.Rows)
	for i := range y {
		label := 1.0
		if vec.Dot(x.Row(i), w) < 0 {
			label = -1
		}
		if src.Float64() < flip {
			label = -label
		}
		y[i] = label
	}
	return &Dataset{Name: "Simulated2", Task: Classification, Features: x, Target: y}
}

// standIn captures what a UCI stand-in needs to mimic: dimensionality and
// how noisy the relationship between features and target is.
type standIn struct {
	name string
	task Task
	d    int
	// noise: for regression the std-dev of additive label noise relative to
	// the signal; for classification the label-flip probability. These are
	// tuned so that the optimal model's error sits in the same qualitative
	// regime as the real dataset (YearMSD and CovType are hard, CASP and
	// SUSY moderately so).
	noise float64
	// sparsity zeroes out this fraction of feature entries, mimicking the
	// one-hot-heavy UCI encodings (CovType especially).
	sparsity float64
}

var standIns = map[string]standIn{
	"YearMSD": {name: "YearMSD", task: Regression, d: 90, noise: 0.8, sparsity: 0},
	"CASP":    {name: "CASP", task: Regression, d: 9, noise: 0.6, sparsity: 0},
	"CovType": {name: "CovType", task: Classification, d: 54, noise: 0.12, sparsity: 0.5},
	"SUSY":    {name: "SUSY", task: Classification, d: 18, noise: 0.2, sparsity: 0},
}

// StandInNames lists the UCI stand-in generators in Table 3 order.
func StandInNames() []string { return []string{"YearMSD", "CASP", "CovType", "SUSY"} }

// StandIn generates the synthetic stand-in for the named UCI dataset.
// It returns an error for unknown names.
func StandIn(name string, cfg GenConfig) (*Dataset, error) {
	s, ok := standIns[name]
	if !ok {
		return nil, fmt.Errorf("dataset: unknown stand-in %q (have %v)", name, StandInNames())
	}
	src := rng.New(cfg.Seed)
	w := randomHyperplane(s.d, src)
	x := gaussianDesign(cfg.Rows, s.d, src)
	if s.sparsity > 0 {
		for i := range x.Data {
			if src.Float64() < s.sparsity {
				x.Data[i] = 0
			}
		}
	}
	y := make([]float64, cfg.Rows)
	signal := vec.Norm2(w)
	for i := range y {
		raw := vec.Dot(x.Row(i), w)
		switch s.task {
		case Regression:
			y[i] = raw + src.Normal(0, s.noise*signal)
		case Classification:
			label := 1.0
			if raw < 0 {
				label = -1
			}
			if src.Float64() < s.noise {
				label = -label
			}
			y[i] = label
		}
	}
	return &Dataset{Name: s.name, Task: s.task, Features: x, Target: y}, nil
}

// Table3Rows is the paper's Table 3 scaled by scale (1.0 = paper size).
// Generating the paper-scale 10M-row Simulated1 takes minutes; the
// experiment harness defaults to scale = 1e-3.
func Table3Rows(name string, scale float64) int {
	paper := map[string]int{
		"Simulated1": 10000000,
		"YearMSD":    515345,
		"CASP":       45731,
		"Simulated2": 10000000,
		"CovType":    581012,
		"SUSY":       5000000,
	}
	n := int(math.Round(float64(paper[name]) * scale))
	if n < 64 {
		n = 64
	}
	return n
}

// Suite generates all six Table 3 datasets at the given row scale, split
// 75/25 into train/test like the paper's n1/n2 columns.
func Suite(scale float64, seed int64) ([]*Pair, error) {
	src := rng.New(seed)
	names := []string{"Simulated1", "YearMSD", "CASP", "Simulated2", "CovType", "SUSY"}
	pairs := make([]*Pair, 0, len(names))
	for _, name := range names {
		cfg := GenConfig{Rows: Table3Rows(name, scale), Seed: src.Int63()}
		var d *Dataset
		var err error
		switch name {
		case "Simulated1":
			d = Simulated1(cfg)
		case "Simulated2":
			d = Simulated2(cfg)
		default:
			d, err = StandIn(name, cfg)
			if err != nil {
				return nil, err
			}
		}
		p, err := NewPair(d, src)
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, p)
	}
	return pairs, nil
}
