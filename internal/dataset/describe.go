package dataset

import (
	"fmt"
	"io"
	"math"
)

// ColumnSummary holds per-column descriptive statistics.
type ColumnSummary struct {
	Name   string  `json:"name"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"std_dev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Summary describes a relation: per-feature statistics plus the target.
type Summary struct {
	Name    string          `json:"name"`
	Task    string          `json:"task"`
	Rows    int             `json:"rows"`
	Columns []ColumnSummary `json:"columns"`
	Target  ColumnSummary   `json:"target"`
}

// Describe computes descriptive statistics for the relation — the seller's
// first look at what they are listing.
func (d *Dataset) Describe() (*Summary, error) {
	if d.N() == 0 {
		return nil, ErrEmpty
	}
	n := float64(d.N())
	cols := make([]ColumnSummary, d.D())
	for j := range cols {
		name := fmt.Sprintf("f%d", j)
		if d.Columns != nil && j < len(d.Columns) {
			name = d.Columns[j]
		}
		cols[j] = ColumnSummary{Name: name, Min: math.Inf(1), Max: math.Inf(-1)}
	}
	for i := 0; i < d.N(); i++ {
		x, _ := d.Row(i)
		for j, v := range x {
			cols[j].Mean += v / n
			cols[j].Min = math.Min(cols[j].Min, v)
			cols[j].Max = math.Max(cols[j].Max, v)
		}
	}
	for i := 0; i < d.N(); i++ {
		x, _ := d.Row(i)
		for j, v := range x {
			dlt := v - cols[j].Mean
			cols[j].StdDev += dlt * dlt / n
		}
	}
	for j := range cols {
		cols[j].StdDev = math.Sqrt(cols[j].StdDev)
	}

	target := ColumnSummary{Name: "target", Min: math.Inf(1), Max: math.Inf(-1)}
	for _, y := range d.Target {
		target.Mean += y / n
		target.Min = math.Min(target.Min, y)
		target.Max = math.Max(target.Max, y)
	}
	for _, y := range d.Target {
		dlt := y - target.Mean
		target.StdDev += dlt * dlt / n
	}
	target.StdDev = math.Sqrt(target.StdDev)

	return &Summary{
		Name:    d.Name,
		Task:    d.Task.String(),
		Rows:    d.N(),
		Columns: cols,
		Target:  target,
	}, nil
}

// Write renders the summary as a fixed-width table.
func (s *Summary) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s (%s, %d rows)\n%-12s %12s %12s %12s %12s\n",
		s.Name, s.Task, s.Rows, "column", "mean", "std", "min", "max"); err != nil {
		return err
	}
	rows := append(append([]ColumnSummary(nil), s.Columns...), s.Target)
	for _, c := range rows {
		if _, err := fmt.Fprintf(w, "%-12s %12.4g %12.4g %12.4g %12.4g\n",
			c.Name, c.Mean, c.StdDev, c.Min, c.Max); err != nil {
			return err
		}
	}
	return nil
}
