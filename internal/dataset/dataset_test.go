package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"nimbus/internal/rng"
	"nimbus/internal/vec"
)

func TestNewValidation(t *testing.T) {
	m := vec.NewMatrix(2, 3)
	if _, err := New("x", Regression, m, []float64{1}); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := New("x", Regression, vec.NewMatrix(0, 3), nil); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := New("x", Classification, m, []float64{1, 0.5}); err == nil {
		t.Fatal("expected label validation error")
	}
	if _, err := New("x", Classification, m, []float64{1, -1}); err != nil {
		t.Fatalf("valid classification rejected: %v", err)
	}
}

func TestSplitSizesAndDisjoint(t *testing.T) {
	d := Simulated1(GenConfig{Rows: 100, Seed: 1})
	train, test, err := d.Split(0.75, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if train.N() != 75 || test.N() != 25 {
		t.Fatalf("split sizes %d/%d", train.N(), test.N())
	}
	if train.D() != 20 || test.D() != 20 {
		t.Fatal("split changed dimensionality")
	}
	// Rows must be copies, not aliases.
	train.Features.Set(0, 0, 12345)
	found := false
	for i := 0; i < d.N(); i++ {
		if d.Features.At(i, 0) == 12345 {
			found = true
		}
	}
	if found {
		t.Fatal("split aliases parent storage")
	}
}

func TestSplitRejectsBadFrac(t *testing.T) {
	d := Simulated1(GenConfig{Rows: 10, Seed: 1})
	for _, f := range []float64{0, 1, -0.5, 1.5} {
		if _, _, err := d.Split(f, rng.New(1)); err == nil {
			t.Fatalf("split accepted frac %v", f)
		}
	}
}

func TestSimulated1IsNoiselessLinear(t *testing.T) {
	d := Simulated1(GenConfig{Rows: 500, Seed: 3})
	if d.Task != Regression || d.D() != 20 {
		t.Fatalf("bad shape: task=%v d=%d", d.Task, d.D())
	}
	// Targets are an exact linear function: solving the normal equations on
	// any 20 independent rows recovers a w that predicts all rows exactly.
	sub := d.Subset("head", seq(40))
	g := sub.Features.Gram()
	rhs := sub.Features.TMulVec(sub.Target)
	w, err := vec.SolveSPD(g, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.N(); i++ {
		x, y := d.Row(i)
		if math.Abs(vec.Dot(x, w)-y) > 1e-6 {
			t.Fatalf("row %d not on hyperplane: pred %v vs %v", i, vec.Dot(x, w), y)
		}
	}
}

func TestSimulated2LabelNoiseRate(t *testing.T) {
	d := Simulated2(GenConfig{Rows: 100000, Seed: 4})
	if d.Task != Classification || d.D() != 20 {
		t.Fatal("bad shape")
	}
	pos := 0
	for _, y := range d.Target {
		if y == 1 {
			pos++
		} else if y != -1 {
			t.Fatalf("label %v not ±1", y)
		}
	}
	frac := float64(pos) / float64(d.N())
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("positive fraction %v, want ~0.5", frac)
	}
}

func TestStandInsMatchTable3Dims(t *testing.T) {
	want := map[string]struct {
		task Task
		d    int
	}{
		"YearMSD": {Regression, 90},
		"CASP":    {Regression, 9},
		"CovType": {Classification, 54},
		"SUSY":    {Classification, 18},
	}
	for name, w := range want {
		ds, err := StandIn(name, GenConfig{Rows: 200, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if ds.Task != w.task || ds.D() != w.d {
			t.Fatalf("%s: task=%v d=%d, want task=%v d=%d", name, ds.Task, ds.D(), w.task, w.d)
		}
	}
	if _, err := StandIn("nope", GenConfig{Rows: 10, Seed: 1}); err == nil {
		t.Fatal("unknown stand-in accepted")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Simulated1(GenConfig{Rows: 50, Seed: 9})
	b := Simulated1(GenConfig{Rows: 50, Seed: 9})
	if vec.MaxAbsDiff(a.Features.Data, b.Features.Data) != 0 || vec.MaxAbsDiff(a.Target, b.Target) != 0 {
		t.Fatal("same seed produced different data")
	}
	c := Simulated1(GenConfig{Rows: 50, Seed: 10})
	if vec.MaxAbsDiff(a.Target, c.Target) == 0 {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSuiteProducesTable3(t *testing.T) {
	pairs, err := Suite(0.001, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 6 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for _, p := range pairs {
		s := p.Stats()
		if s.N1 == 0 || s.N2 == 0 || s.D == 0 {
			t.Fatalf("degenerate stats %+v", s)
		}
		if got := float64(s.N1) / float64(s.N1+s.N2); math.Abs(got-0.75) > 0.02 {
			t.Fatalf("%s: train fraction %v", s.Name, got)
		}
		if !strings.Contains(s.String(), s.Name) {
			t.Fatal("Stats.String misses name")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := Simulated2(GenConfig{Rows: 30, Seed: 6})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "round", Classification, "target")
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != d.N() || back.D() != d.D() {
		t.Fatalf("shape changed: %dx%d -> %dx%d", d.N(), d.D(), back.N(), back.D())
	}
	if vec.MaxAbsDiff(back.Target, d.Target) != 0 {
		t.Fatal("targets changed in round trip")
	}
	if vec.MaxAbsDiff(back.Features.Data, d.Features.Data) > 1e-12 {
		t.Fatal("features changed in round trip")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"missing target": "a,b\n1,2\n",
		"bad float":      "a,target\nx,1\n",
		"empty body":     "a,target\n",
	}
	for name, body := range cases {
		if _, err := ReadCSV(strings.NewReader(body), "t", Regression, "target"); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadCSVNormalizesZeroLabels(t *testing.T) {
	body := "a,target\n1,0\n2,1\n"
	d, err := ReadCSV(strings.NewReader(body), "t", Classification, "target")
	if err != nil {
		t.Fatal(err)
	}
	if d.Target[0] != -1 || d.Target[1] != 1 {
		t.Fatalf("labels %v, want [-1 1]", d.Target)
	}
}

func TestTable3RowsScaling(t *testing.T) {
	if Table3Rows("Simulated1", 1) != 10000000 {
		t.Fatal("paper scale wrong")
	}
	if Table3Rows("CASP", 1e-6) != 64 {
		t.Fatal("floor not applied")
	}
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
