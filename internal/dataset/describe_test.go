package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"nimbus/internal/vec"
)

func TestDescribeKnownStats(t *testing.T) {
	m := vec.NewMatrix(4, 2)
	copy(m.Data, []float64{
		1, 10,
		2, 10,
		3, 10,
		4, 10,
	})
	d, err := New("toy", Regression, m, []float64{0, 2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	d.Columns = []string{"a", "b"}
	s, err := d.Describe()
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows != 4 || s.Task != "regression" {
		t.Fatalf("header %+v", s)
	}
	a := s.Columns[0]
	if a.Name != "a" || a.Mean != 2.5 || a.Min != 1 || a.Max != 4 {
		t.Fatalf("column a %+v", a)
	}
	if math.Abs(a.StdDev-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("std %v", a.StdDev)
	}
	b := s.Columns[1]
	if b.StdDev != 0 || b.Mean != 10 {
		t.Fatalf("constant column %+v", b)
	}
	if s.Target.Mean != 3 || s.Target.Min != 0 || s.Target.Max != 6 {
		t.Fatalf("target %+v", s.Target)
	}
}

func TestDescribeEmpty(t *testing.T) {
	d := Simulated1(GenConfig{Rows: 10, Seed: 1}).Subset("empty", nil)
	if _, err := d.Describe(); err == nil {
		t.Fatal("empty dataset described")
	}
}

func TestSummaryWrite(t *testing.T) {
	d := Simulated1(GenConfig{Rows: 50, Seed: 2})
	s, err := d.Describe()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Simulated1", "f0", "f19", "target", "mean", "std"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
