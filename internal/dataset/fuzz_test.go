package dataset

import (
	"strings"
	"testing"
)

// FuzzReadCSV throws arbitrary bytes at the CSV loader: it must never
// panic, and anything it accepts must be structurally sound.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,target\n1,2\n")
	f.Add("a,b,target\n1,2,0\nx,y,z\n")
	f.Add("")
	f.Add("target\n1\n\n5\n")
	f.Add("a,target\n1e308,1\n-1e308,0\n")
	f.Fuzz(func(t *testing.T, body string) {
		for _, task := range []Task{Regression, Classification} {
			ds, err := ReadCSV(strings.NewReader(body), "fuzz", task, "target")
			if err != nil {
				continue
			}
			if ds.N() == 0 {
				t.Fatal("accepted empty dataset")
			}
			if ds.Features.Rows != len(ds.Target) {
				t.Fatalf("rows %d vs targets %d", ds.Features.Rows, len(ds.Target))
			}
			if task == Classification {
				for _, y := range ds.Target {
					if y != 1 && y != -1 {
						t.Fatalf("classification label %v", y)
					}
				}
			}
		}
	})
}
