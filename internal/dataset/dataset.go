// Package dataset implements the relational-data substrate of the Nimbus
// marketplace: typed labeled relations, train/test splits, CSV
// import/export, and the synthetic data generators behind the paper's six
// evaluation datasets (Table 3).
//
// A Dataset is a single relation whose rows are labeled examples
// z = (x, y): the feature vector x = z[X] and the target y = z[Y], exactly
// the setup of Section 2 of the paper. Classification targets are stored as
// ±1 internally; generators and the CSV loader normalize 0/1 labels.
package dataset

import (
	"errors"
	"fmt"

	"nimbus/internal/rng"
	"nimbus/internal/vec"
)

// Task distinguishes the two supervised settings the paper prices.
type Task int

const (
	// Regression targets are real-valued.
	Regression Task = iota
	// Classification targets are ±1.
	Classification
)

// String implements fmt.Stringer.
func (t Task) String() string {
	switch t {
	case Regression:
		return "regression"
	case Classification:
		return "classification"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// ErrEmpty is returned when an operation needs at least one example.
var ErrEmpty = errors.New("dataset: empty dataset")

// Dataset is a labeled relation: one row per example, Features[i] the
// feature vector and Target[i] the label of example i.
type Dataset struct {
	// Name identifies the relation in stats output and the market menu.
	Name string
	// Task is the supervised task the relation supports.
	Task Task
	// Columns optionally names the feature columns; may be nil.
	Columns []string
	// Features is the n x d design matrix.
	Features *vec.Matrix
	// Target holds the n labels (±1 for classification).
	Target []float64
}

// New constructs a dataset and validates shapes.
func New(name string, task Task, features *vec.Matrix, target []float64) (*Dataset, error) {
	if features == nil || features.Rows == 0 {
		return nil, fmt.Errorf("dataset %q: %w", name, ErrEmpty)
	}
	if features.Rows != len(target) {
		return nil, fmt.Errorf("dataset %q: %d rows but %d targets: %w",
			name, features.Rows, len(target), vec.ErrDimension)
	}
	if task == Classification {
		for i, y := range target {
			if y != 1 && y != -1 {
				return nil, fmt.Errorf("dataset %q: row %d has classification label %v, want ±1", name, i, y)
			}
		}
	}
	return &Dataset{Name: name, Task: task, Features: features, Target: target}, nil
}

// N returns the number of examples.
func (d *Dataset) N() int { return d.Features.Rows }

// D returns the number of features.
func (d *Dataset) D() int { return d.Features.Cols }

// Row returns (x, y) for example i; x aliases the dataset storage.
func (d *Dataset) Row(i int) ([]float64, float64) {
	return d.Features.Row(i), d.Target[i]
}

// Subset returns a new dataset containing the given row indexes (copied).
func (d *Dataset) Subset(name string, idx []int) *Dataset {
	m := vec.NewMatrix(len(idx), d.D())
	y := make([]float64, len(idx))
	for r, i := range idx {
		copy(m.Row(r), d.Features.Row(i))
		y[r] = d.Target[i]
	}
	return &Dataset{Name: name, Task: d.Task, Columns: d.Columns, Features: m, Target: y}
}

// Split shuffles the rows with src and splits them into a train set with
// trainFrac of the examples and a test set with the remainder, mirroring the
// seller's (Dtrain, Dtest) pair from Section 3.1.
func (d *Dataset) Split(trainFrac float64, src *rng.Source) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: trainFrac %v outside (0,1)", trainFrac)
	}
	n := d.N()
	perm := src.Perm(n)
	cut := int(float64(n) * trainFrac)
	if cut == 0 || cut == n {
		return nil, nil, fmt.Errorf("dataset: split of %d rows at %v leaves an empty side", n, trainFrac)
	}
	train = d.Subset(d.Name+"/train", perm[:cut])
	test = d.Subset(d.Name+"/test", perm[cut:])
	return train, test, nil
}

// Pair is the seller's product: a dataset already split into the train set
// used to fit model instances and the test set used for error reporting.
type Pair struct {
	Name  string
	Train *Dataset
	Test  *Dataset
}

// NewPair splits d 75/25 (the ratio behind Table 3's n1/n2 columns).
func NewPair(d *Dataset, src *rng.Source) (*Pair, error) {
	train, test, err := d.Split(0.75, src)
	if err != nil {
		return nil, err
	}
	return &Pair{Name: d.Name, Train: train, Test: test}, nil
}

// Stats is one row of the paper's Table 3.
type Stats struct {
	Name string
	Task Task
	N1   int // train examples
	N2   int // test examples
	D    int // features
}

// Stats reports the Table 3 row for the pair.
func (p *Pair) Stats() Stats {
	return Stats{Name: p.Name, Task: p.Train.Task, N1: p.Train.N(), N2: p.Test.N(), D: p.Train.D()}
}

// String renders the stats row in Table 3's layout.
func (s Stats) String() string {
	return fmt.Sprintf("%-12s %-14s n1=%-8d n2=%-8d d=%d", s.Name, s.Task, s.N1, s.N2, s.D)
}
