package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"nimbus/internal/rng"
	"nimbus/internal/vec"
)

// Streaming generation: the paper-scale datasets (Simulated1/2 at 10M rows)
// need ~1.6 GB as an in-memory matrix. StreamCSV writes any of the six
// generators row by row with O(d) memory, producing files byte-identical
// in distribution to the in-memory generators (same per-row recipe, same
// seeded stream).

// StreamCSV writes `rows` examples of the named Table 3 dataset as CSV.
// Supported names: Simulated1, Simulated2, YearMSD, CASP, CovType, SUSY.
func StreamCSV(w io.Writer, name string, rows int, seed int64) error {
	if rows <= 0 {
		return fmt.Errorf("dataset: StreamCSV needs a positive row count, got %d", rows)
	}
	gen, err := rowGenerator(name, seed)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := make([]string, gen.d+1)
	for j := 0; j < gen.d; j++ {
		header[j] = fmt.Sprintf("f%d", j)
	}
	header[gen.d] = "target"
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing stream header: %w", err)
	}
	rec := make([]string, gen.d+1)
	x := make([]float64, gen.d)
	for i := 0; i < rows; i++ {
		y := gen.next(x)
		for j, v := range x {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		rec[gen.d] = strconv.FormatFloat(y, 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing stream row %d: %w", i, err)
		}
		if i%4096 == 4095 {
			cw.Flush()
			if err := cw.Error(); err != nil {
				return fmt.Errorf("dataset: flushing stream: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// streamGen emits one example per call; next fills x and returns the label.
type streamGen struct {
	d    int
	next func(x []float64) float64
}

// rowGenerator builds the per-row recipe for a Table 3 dataset. It mirrors
// the batch generators in generate.go: a hidden hyperplane drawn first,
// then IID feature rows.
func rowGenerator(name string, seed int64) (*streamGen, error) {
	src := rng.New(seed)
	fill := func(x []float64) {
		for j := range x {
			x[j] = src.Normal(0, 1)
		}
	}
	switch name {
	case "Simulated1":
		const d = 20
		w := randomHyperplane(d, src)
		return &streamGen{d: d, next: func(x []float64) float64 {
			fill(x)
			return vec.Dot(x, w)
		}}, nil
	case "Simulated2":
		const d = 20
		const flip = 0.05
		w := randomHyperplane(d, src)
		return &streamGen{d: d, next: func(x []float64) float64 {
			fill(x)
			label := 1.0
			if vec.Dot(x, w) < 0 {
				label = -1
			}
			if src.Float64() < flip {
				label = -label
			}
			return label
		}}, nil
	default:
		s, ok := standIns[name]
		if !ok {
			return nil, fmt.Errorf("dataset: unknown stream dataset %q", name)
		}
		w := randomHyperplane(s.d, src)
		signal := vec.Norm2(w)
		return &streamGen{d: s.d, next: func(x []float64) float64 {
			fill(x)
			if s.sparsity > 0 {
				for j := range x {
					if src.Float64() < s.sparsity {
						x[j] = 0
					}
				}
			}
			raw := vec.Dot(x, w)
			if s.task == Regression {
				return raw + src.Normal(0, s.noise*signal)
			}
			label := 1.0
			if raw < 0 {
				label = -1
			}
			if src.Float64() < s.noise {
				label = -label
			}
			return label
		}}, nil
	}
}
