package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"nimbus/internal/vec"
)

// ReadCSV parses a labeled relation from CSV. The first record must be a
// header; targetCol names the label column and every other column is parsed
// as a float64 feature. Classification labels may be 0/1 or ±1 in the file;
// 0 is normalized to -1. This is the drop-in path for running the Table 3
// experiments on the real UCI files instead of the synthetic stand-ins.
func ReadCSV(r io.Reader, name string, task Task, targetCol string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	target := -1
	cols := make([]string, 0, len(header)-1)
	for i, h := range header {
		if h == targetCol {
			target = i
			continue
		}
		cols = append(cols, h)
	}
	if target < 0 {
		return nil, fmt.Errorf("dataset: target column %q not in header %v", targetCol, header)
	}
	d := len(header) - 1
	var feats []float64
	var ys []float64
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV row %d: %w", row+1, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: row %d has %d fields, header has %d", row+1, len(rec), len(header))
		}
		for i, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d column %q: %w", row+1, header[i], err)
			}
			if i == target {
				if task == Classification && v == 0 {
					v = -1
				}
				ys = append(ys, v)
			} else {
				feats = append(feats, v)
			}
		}
		row++
	}
	if row == 0 {
		return nil, fmt.Errorf("dataset: CSV %q: %w", name, ErrEmpty)
	}
	m := &vec.Matrix{Rows: row, Cols: d, Data: feats}
	ds, err := New(name, task, m, ys)
	if err != nil {
		return nil, err
	}
	ds.Columns = cols
	return ds, nil
}

// WriteCSV writes the relation with a header row; the target column is
// named "target" (or the dataset's recorded name is ignored — callers can
// rename). Classification labels are written as ±1.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, d.D()+1)
	for i := 0; i < d.D(); i++ {
		if d.Columns != nil && i < len(d.Columns) {
			header[i] = d.Columns[i]
		} else {
			header[i] = fmt.Sprintf("f%d", i)
		}
	}
	header[d.D()] = "target"
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	rec := make([]string, d.D()+1)
	for i := 0; i < d.N(); i++ {
		x, y := d.Row(i)
		for j, v := range x {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		rec[d.D()] = strconv.FormatFloat(y, 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
