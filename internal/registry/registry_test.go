package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"nimbus/internal/journal"
	"nimbus/internal/market"
	"nimbus/internal/telemetry"
)

// cheapSpec is a listing small enough that tests can build several
// markets: the same CASP stand-in sizing the market package's shard tests
// use.
func cheapSpec(id string, seed int64) Spec {
	return Spec{
		ID:        id,
		Owner:     "seller-" + id,
		Generator: "CASP",
		Rows:      150,
		Grid:      8,
		Samples:   24,
		Seed:      seed,
	}
}

// offeringOf is the single offering a cheapSpec market lists: CASP is a
// regression stand-in, so the task-default model is linear regression.
func offeringOf(id string) string { return id + "/linear-regression" }

// testCSV renders a small deterministic regression relation.
func testCSV(rows int) []byte {
	var sb strings.Builder
	sb.WriteString("x1,x2,y\n")
	for i := 0; i < rows; i++ {
		x1 := float64(i % 11)
		x2 := float64((i * 3) % 7)
		y := 2*x1 - x2 + 0.01*float64(i%5)
		fmt.Fprintf(&sb, "%g,%g,%g\n", x1, x2, y)
	}
	return []byte(sb.String())
}

func TestListBuyDelist(t *testing.T) {
	reg := telemetry.NewRegistry()
	r, err := Open(Config{Commission: 0.1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.List(cheapSpec("acme", 7), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.Menu(), []string{offeringOf("acme")}; !reflect.DeepEqual(got, want) {
		t.Fatalf("menu %v, want %v", got, want)
	}
	for _, option := range []string{"quality", "error-budget", "price-budget"} {
		value := 2.0
		if option != "quality" {
			value = 1e9 // budget large enough to always clear
		}
		p, err := m.Buy(offeringOf("acme"), "squared", option, value)
		if err != nil {
			t.Fatalf("%s: %v", option, err)
		}
		if p.Price <= 0 {
			t.Fatalf("%s: non-positive price %v", option, p.Price)
		}
	}
	if _, err := m.Buy(offeringOf("acme"), "squared", "bulk-discount", 1); !errors.Is(err, ErrBadOption) {
		t.Fatalf("bad option: %v", err)
	}
	// The registry-wide buy routes by global offering name.
	if _, err := r.Buy(offeringOf("acme"), "squared", "quality", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Buy("nobody/linear-regression", "squared", "quality", 3); !errors.Is(err, market.ErrUnknownOffering) {
		t.Fatalf("unknown offering: %v", err)
	}

	st := r.Stats()
	if st.Markets != 1 || st.Offerings != 1 || st.Sales != 4 {
		t.Fatalf("stats %+v", st)
	}
	if st.Gross <= 0 || st.Gross != st.PerMarket[0].Gross {
		t.Fatalf("stats totals %+v", st)
	}

	final, err := r.Delist("acme")
	if err != nil {
		t.Fatal(err)
	}
	if final.Sales != 4 {
		t.Fatalf("final statement %+v", final)
	}
	if _, err := r.Get("acme"); !errors.Is(err, ErrUnknownMarket) {
		t.Fatalf("get after delist: %v", err)
	}
	if _, err := r.Buy(offeringOf("acme"), "squared", "quality", 2); !errors.Is(err, market.ErrUnknownOffering) {
		t.Fatalf("buy after delist: %v", err)
	}
	if _, err := r.Delist("acme"); !errors.Is(err, ErrUnknownMarket) {
		t.Fatalf("double delist: %v", err)
	}
	if got := r.Count(); got != 0 {
		t.Fatalf("count %d after delist", got)
	}
}

func TestListValidation(t *testing.T) {
	r, err := Open(Config{MaxMarkets: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Spec{
		{ID: "", Generator: "CASP"},
		{ID: ".hidden", Generator: "CASP"},
		{ID: "space name", Generator: "CASP"},
		{ID: strings.Repeat("x", 65), Generator: "CASP"},
		{ID: "a/b", Generator: "CASP"},
		{ID: "ok"},                                                    // no source
		{ID: "ok", Generator: "NoSuchSet"},                            // unknown generator
		{ID: "ok", Generator: "CASP", CSV: true},                      // both sources
		{ID: "ok", CSV: true, Task: "ranking", Target: "y"},           // bad task
		{ID: "ok", CSV: true, Task: "regression"},                     // no target
		{ID: "ok", Generator: "CASP", Model: "gradient-boosted-trees"}, // unknown model
	} {
		if _, err := r.List(bad, nil); err == nil {
			t.Fatalf("spec %+v accepted", bad)
		}
	}
	if _, err := r.List(cheapSpec("one", 1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.List(cheapSpec("one", 2), nil); !errors.Is(err, ErrMarketExists) {
		t.Fatalf("duplicate id: %v", err)
	}
	if _, err := r.List(cheapSpec("two", 3), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.List(cheapSpec("three", 4), nil); !errors.Is(err, ErrTooManyMarkets) {
		t.Fatalf("over limit: %v", err)
	}
	// Delisting frees a slot.
	if _, err := r.Delist("one"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.List(cheapSpec("three", 4), nil); err != nil {
		t.Fatalf("list after freeing a slot: %v", err)
	}
}

func TestCSVMarketAndRecovery(t *testing.T) {
	root := t.TempDir()
	cfg := Config{Root: root, Commission: 0.2, Sync: journal.SyncAlways, Logf: t.Logf}
	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		ID:      "uploads",
		Owner:   "csv-seller",
		CSV:     true,
		Task:    "regression",
		Target:  "y",
		Grid:    8,
		Samples: 24,
		Seed:    11,
	}
	m, err := r.List(spec, testCSV(120))
	if err != nil {
		t.Fatal(err)
	}
	want := offeringOf("uploads")
	if got := m.Broker.Menu(); !reflect.DeepEqual(got, []string{want}) {
		t.Fatalf("csv market menu %v", got)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.Buy(want, "squared", "quality", float64(1+i%4)); err != nil {
			t.Fatal(err)
		}
	}
	sales := m.Broker.Sales()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// A closed registry refuses work.
	if _, err := r.List(cheapSpec("late", 9), nil); err == nil {
		t.Fatal("list on closed registry accepted")
	}

	// Restart: the tenant comes back from manifest + dataset.csv + journal,
	// with the identical ledger.
	r2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	m2, err := r2.Get("uploads")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Spec.Owner != "csv-seller" || !m2.Spec.CSV {
		t.Fatalf("recovered spec %+v", m2.Spec)
	}
	if !reflect.DeepEqual(m2.Broker.Sales(), sales) {
		t.Fatal("recovered ledger differs")
	}
	// The recovered market keeps selling and journaling.
	if _, err := m2.Buy(want, "squared", "quality", 2); err != nil {
		t.Fatal(err)
	}
}

func TestDelistDrainsThenRejects(t *testing.T) {
	r, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.List(cheapSpec("drainme", 21), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Buy(offeringOf("drainme"), "squared", "quality", 2); err != nil {
		t.Fatal(err)
	}

	// Hold one purchase in flight, then delist: Delist must block in drain
	// until the purchase releases, and new purchases must be rejected while
	// it drains.
	if err := m.acquire(); err != nil {
		t.Fatal(err)
	}
	done := make(chan *market.Statement, 1)
	go func() {
		st, err := r.Delist("drainme")
		if err != nil {
			t.Error(err)
		}
		done <- st
	}()
	// Wait until the delist has flipped the market to draining.
	for {
		m.mu.Lock()
		s := m.state
		m.mu.Unlock()
		if s != stateOpen {
			break
		}
	}
	if _, err := m.Buy(offeringOf("drainme"), "squared", "quality", 2); !errors.Is(err, ErrDelisting) {
		t.Fatalf("buy while draining: %v", err)
	}
	select {
	case <-done:
		t.Fatal("Delist returned with a purchase still in flight")
	default:
	}
	m.release()
	st := <-done
	if st.Sales != 1 {
		t.Fatalf("final statement %+v", st)
	}
}

// TestConcurrentLifecycle churns one market through delist/list cycles
// while buyers hammer the whole marketplace. Run with -race in CI: the
// invariant is that buyers only ever see clean outcomes — a purchase, an
// unknown-offering miss, or a drain rejection — never a torn market.
func TestConcurrentLifecycle(t *testing.T) {
	r, err := Open(Config{Commission: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []string{"alpha", "beta"} {
		if _, err := r.List(cheapSpec(id, int64(100+10*i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	churnSpec := cheapSpec("churn", 300)
	if _, err := r.List(churnSpec, nil); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var buyers sync.WaitGroup
	offerings := []string{offeringOf("alpha"), offeringOf("beta"), offeringOf("churn")}
	for w := 0; w < 4; w++ {
		buyers.Add(1)
		go func(w int) {
			defer buyers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := offerings[(w+i)%len(offerings)]
				_, err := r.Buy(name, "squared", "quality", float64(1+i%5))
				switch {
				case err == nil:
				case errors.Is(err, market.ErrUnknownOffering):
				case errors.Is(err, ErrDelisting):
				default:
					t.Errorf("buy %s: %v", name, err)
					return
				}
				r.Stats()
				r.Menu()
			}
		}(w)
	}
	for cycle := 0; cycle < 3; cycle++ {
		if _, err := r.Delist("churn"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.List(churnSpec, nil); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	buyers.Wait()

	st := r.Stats()
	if st.Markets != 3 {
		t.Fatalf("stats %+v", st)
	}
	for _, id := range []string{"alpha", "beta", "churn"} {
		m, err := r.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		// The running books must still balance against a full rescan after
		// all the concurrent churn.
		if got, want := m.Broker.TotalFees()+sumPayouts(m.Broker.Payouts()), m.Broker.TotalRevenue(); !close9(got, want) {
			t.Fatalf("market %s books unbalanced: fees+payouts %v, revenue %v", id, got, want)
		}
	}
}

func sumPayouts(p map[string]float64) float64 {
	var s float64
	for _, v := range p {
		s += v
	}
	return s
}

func close9(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}

// TestTwoTenantTornTailRecovery kills the daemon mid-commit, figuratively:
// two tenants take sales under SyncAlways, the registry is abandoned
// without Close (no compaction), and each tenant's newest journal segment
// gets garbage appended — a torn tail. A fresh Open must truncate each
// tenant's tail independently and recover both ledgers exactly.
func TestTwoTenantTornTailRecovery(t *testing.T) {
	root := t.TempDir()
	cfg := Config{Root: root, Commission: 0.1, Sync: journal.SyncAlways, Logf: t.Logf}
	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ledgers := map[string][]market.Purchase{}
	for i, id := range []string{"north", "south"} {
		m, err := r.List(cheapSpec(id, int64(400+10*i)), nil)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 4+i; k++ {
			if _, err := m.Buy(offeringOf(id), "squared", "quality", float64(1+k%4)); err != nil {
				t.Fatal(err)
			}
		}
		ledgers[id] = m.Broker.Sales()
	}
	// Abandon r without Close: journals stay uncompacted, like kill -9.
	for _, id := range []string{"north", "south"} {
		segs, err := filepath.Glob(filepath.Join(root, id, "journal", "seg-*.wal"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("tenant %s journal segments: %v %v", id, segs, err)
		}
		tail := segs[len(segs)-1]
		f, err := os.OpenFile(tail, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	r2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.Count(); got != 2 {
		t.Fatalf("recovered %d markets, want 2", got)
	}
	for id, want := range ledgers {
		m, err := r2.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m.Broker.Sales(), want) {
			t.Fatalf("tenant %s: recovered ledger differs", id)
		}
	}
	// Both survivors keep trading after recovery.
	if _, err := r2.Buy(offeringOf("north"), "squared", "quality", 2); err != nil {
		t.Fatal(err)
	}
}

// TestDelistArchivesTenantDir checks the durable delist path: the tenant
// directory moves to the archive (never deleted), the ID becomes
// relistable, and a second delist of the same ID lands in the next
// archive slot.
func TestDelistArchivesTenantDir(t *testing.T) {
	root := t.TempDir()
	r, err := Open(Config{Root: root, Sync: journal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for cycle := 1; cycle <= 2; cycle++ {
		m, err := r.List(cheapSpec("phoenix", int64(cycle)), nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Buy(offeringOf("phoenix"), "squared", "quality", 2); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Delist("phoenix"); err != nil {
			t.Fatal(err)
		}
		arch := filepath.Join(root, ".delisted", fmt.Sprintf("phoenix-%d", cycle))
		if _, err := os.Stat(filepath.Join(arch, "manifest.json")); err != nil {
			t.Fatalf("cycle %d: archived manifest: %v", cycle, err)
		}
		if _, err := os.Stat(filepath.Join(root, "phoenix")); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("cycle %d: live dir still present: %v", cycle, err)
		}
	}
	// The archive must be invisible to recovery.
	r2, err := Open(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.Count(); got != 0 {
		t.Fatalf("recovered %d markets from an archive-only root", got)
	}
}

func TestFailedRecoveryClosesRecoveredTenants(t *testing.T) {
	root := t.TempDir()
	// SyncInterval gives every open journal a flusher goroutine, so a
	// leaked journal is observable as a goroutine that never exits.
	cfg := Config{Root: root, Commission: 0.1, Sync: journal.SyncInterval, SyncEvery: time.Hour, Logf: t.Logf}
	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two tenants; ReadDir recovers in name order, so "aaa" is recovered
	// and published before "zzz" fails.
	for _, id := range []string{"aaa", "zzz"} {
		if _, err := r.List(cheapSpec(id, 1), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "zzz", "manifest.json"), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}

	base := runtime.NumGoroutine()
	r2, err := Open(cfg)
	if err == nil {
		r2.Close()
		t.Fatal("Open succeeded despite a corrupt tenant manifest")
	}
	if !strings.Contains(err.Error(), "zzz") {
		t.Fatalf("error does not name the failing tenant: %v", err)
	}
	// The recovered tenant's journal must have been closed on the error
	// path: its flusher goroutine exits, returning the count to baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d at Open, %d now — recovered tenant's journal flusher leaked",
				base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
