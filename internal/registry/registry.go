// Package registry turns the single-market Nimbus broker into a
// multi-tenant marketplace: one daemon serving many sellers, many
// datasets, one registry. Each listed dataset gets its own Market — a
// dedicated sharded broker with its own pricing curves and, when the
// registry has a root directory, its own write-ahead journal — keyed by a
// dataset ID. The registry owns the lifecycle: List trains and prices a
// new market, Delist drains in-flight purchases, compacts the journal and
// archives the tenant directory, and Open recovers every live tenant
// after a restart.
package registry

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"nimbus/internal/journal"
	"nimbus/internal/market"
	"nimbus/internal/telemetry"
)

// Config tunes a registry.
type Config struct {
	// Root is the registry's data directory, one subdirectory per tenant.
	// Empty means memory-only: no manifests, no journals, nothing survives
	// the process.
	Root string
	// Commission is the broker's cut applied to every tenant market.
	Commission float64
	// MaxMarkets caps the number of live markets (default 64). Together
	// with ID validation this bounds the cardinality of the per-market
	// telemetry label.
	MaxMarkets int
	// Sync, SyncEvery and SegmentBytes configure each tenant's journal;
	// zero values take the journal package defaults (Sync's zero value is
	// SyncAlways).
	Sync         journal.SyncPolicy
	SyncEvery    time.Duration
	SegmentBytes int64
	// Telemetry, when non-nil, receives registry gauges plus per-market
	// purchase and revenue series.
	Telemetry *telemetry.Registry
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// DefaultMaxMarkets caps live markets when Config.MaxMarkets is zero.
const DefaultMaxMarkets = 64

// Registry is the concurrent map of live markets. All methods are safe
// for concurrent use; the slow parts of List and Delist (training,
// draining, compaction) run outside the registry lock so other tenants
// keep trading.
type Registry struct {
	cfg Config

	mu        sync.RWMutex
	markets   map[string]*Market // guarded by mu; live, purchasable markets
	offerings map[string]string  // guarded by mu; offering name -> market ID
	pending   map[string]bool    // guarded by mu; IDs mid-List or mid-Delist
	closed    bool               // guarded by mu

	listed   *telemetry.Counter // nil without telemetry
	delisted *telemetry.Counter
}

// Open builds a registry and, when cfg.Root is set, recovers every live
// tenant found there (manifest rebuild + per-tenant journal replay).
func Open(cfg Config) (*Registry, error) {
	if cfg.MaxMarkets <= 0 {
		cfg.MaxMarkets = DefaultMaxMarkets
	}
	r := &Registry{
		cfg:       cfg,
		markets:   make(map[string]*Market),
		offerings: make(map[string]string),
		pending:   make(map[string]bool),
	}
	if reg := cfg.Telemetry; reg != nil {
		reg.GaugeFunc("nimbus_registry_markets", func() float64 {
			r.mu.RLock()
			defer r.mu.RUnlock()
			return float64(len(r.markets))
		})
		reg.Help("nimbus_registry_markets", "Live tenant markets.")
		r.listed = reg.Counter("nimbus_registry_listed_total")
		reg.Help("nimbus_registry_listed_total", "Datasets listed since startup.")
		r.delisted = reg.Counter("nimbus_registry_delisted_total")
		reg.Help("nimbus_registry_delisted_total", "Datasets delisted since startup.")
	}
	if cfg.Root != "" {
		if err := os.MkdirAll(cfg.Root, 0o755); err != nil {
			return nil, fmt.Errorf("registry: creating root %s: %w", cfg.Root, err)
		}
		if err := r.recoverTenants(); err != nil {
			// Tenants recovered before the failure are already published
			// with open journals (and, under SyncInterval, live flusher
			// goroutines). The caller gets no Registry back, so nothing
			// downstream can release them — close them here.
			if cerr := r.Close(); cerr != nil {
				r.logf("registry: cleanup after failed recovery: %v", cerr)
			}
			return nil, err
		}
	}
	return r, nil
}

func (r *Registry) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// List trains, prices and opens a market for one dataset. csvData carries
// the uploaded file for CSV-sourced specs and must be nil otherwise. The
// ID is reserved up front so concurrent Lists of the same ID race safely,
// but the expensive build runs outside the registry lock.
func (r *Registry) List(spec Spec, csvData []byte) (*Market, error) {
	spec, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	if spec.CSV && len(csvData) == 0 {
		return nil, fmt.Errorf("registry: market %s: csv source with no data", spec.ID)
	}
	if !spec.CSV && csvData != nil {
		return nil, fmt.Errorf("registry: market %s: csv data supplied for a generator source", spec.ID)
	}
	if err := r.reserve(spec.ID); err != nil {
		return nil, err
	}
	m, err := r.build(spec, csvData)
	if err != nil {
		r.unreserve(spec.ID)
		if r.cfg.Root != "" {
			//lint:ignore no-dropped-error best-effort cleanup of a half-created tenant dir; the build failure is what gets reported
			removeTenantDir(r.cfg.Root, spec.ID)
		}
		return nil, err
	}
	r.publish(m)
	if r.listed != nil {
		r.listed.Inc()
	}
	r.logf("registry: listed market %s (%s): offerings %v", m.ID, spec.Source(), m.Broker.Menu())
	return m, nil
}

// reserve claims an ID for a lifecycle transition.
func (r *Registry) reserve(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("registry: closed")
	}
	if r.markets[id] != nil || r.pending[id] {
		return fmt.Errorf("%w: %s", ErrMarketExists, id)
	}
	if len(r.markets)+r.pendingLists() >= r.cfg.MaxMarkets {
		return fmt.Errorf("%w (max %d)", ErrTooManyMarkets, r.cfg.MaxMarkets)
	}
	r.pending[id] = true
	return nil
}

// pendingLists counts reservations that are not also live markets — i.e.
// Lists in progress; a Delist's reservation shadows a market it already
// removed, so counting all of pending would double-charge nothing, but
// being precise keeps the MaxMarkets arithmetic obvious.
//
//lint:holds mu
func (r *Registry) pendingLists() int { return len(r.pending) }

func (r *Registry) unreserve(id string) {
	r.mu.Lock()
	delete(r.pending, id)
	r.mu.Unlock()
}

// build runs the expensive part of List: train and price the offering,
// persist the tenant directory, open its journal.
func (r *Registry) build(spec Spec, csvData []byte) (*Market, error) {
	b, err := buildBroker(spec, csvData, r.cfg.Commission)
	if err != nil {
		return nil, err
	}
	if r.cfg.Telemetry != nil {
		b.SetTelemetry(r.cfg.Telemetry)
	}
	var jnl *journal.Journal
	if r.cfg.Root != "" {
		if err := persistTenant(r.cfg.Root, spec, csvData); err != nil {
			return nil, err
		}
		jnl, err = r.openTenantJournal(b, tenantDir(r.cfg.Root, spec.ID))
		if err != nil {
			return nil, err
		}
	}
	return newMarket(spec, b, jnl, r.cfg.Telemetry), nil
}

// publish makes a market purchasable: releases its reservation and indexes
// its offerings.
func (r *Registry) publish(m *Market) {
	r.mu.Lock()
	delete(r.pending, m.ID)
	r.markets[m.ID] = m
	for _, name := range m.Broker.Menu() {
		r.offerings[name] = m.ID
	}
	r.mu.Unlock()
}

// Delist removes a market: it disappears from lookups immediately, new
// purchases are rejected, in-flight purchases drain, the journal gets a
// final compaction and the tenant directory is archived (never deleted).
// Returns the tenant's final statement.
func (r *Registry) Delist(id string) (*market.Statement, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, fmt.Errorf("registry: closed")
	}
	m := r.markets[id]
	if m == nil {
		busy := r.pending[id]
		r.mu.Unlock()
		if busy {
			return nil, fmt.Errorf("%w: %s", ErrDelisting, id)
		}
		return nil, fmt.Errorf("%w: %s", ErrUnknownMarket, id)
	}
	delete(r.markets, id)
	for _, name := range m.Broker.Menu() {
		delete(r.offerings, name)
	}
	r.pending[id] = true
	r.mu.Unlock()

	m.drain()
	st := m.Broker.Statement()
	if err := r.retire(m); err != nil {
		r.unreserve(id)
		return st, err
	}
	r.unreserve(id)
	if r.delisted != nil {
		r.delisted.Inc()
	}
	r.logf("registry: delisted market %s: %d sales, revenue %.2f", id, st.Sales, st.Gross)
	return st, nil
}

// retire compacts and closes a drained market's journal and archives its
// directory.
func (r *Registry) retire(m *Market) error {
	defer m.setClosed()
	if m.jnl != nil {
		if err := m.jnl.Compact(m.Broker.SaveLedger); err != nil {
			// Compaction is an optimization; the appended records are
			// already durable in the segments being archived.
			r.logf("registry: market %s: final compaction failed (ledger remains in segments): %v", m.ID, err)
		}
		if err := m.jnl.Close(); err != nil {
			return fmt.Errorf("registry: closing journal for %s: %w", m.ID, err)
		}
	}
	if r.cfg.Root != "" {
		return archiveTenant(r.cfg.Root, m.ID)
	}
	return nil
}

// Get returns a live market by dataset ID.
func (r *Registry) Get(id string) (*Market, error) {
	r.mu.RLock()
	m := r.markets[id]
	r.mu.RUnlock()
	if m == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownMarket, id)
	}
	return m, nil
}

// IDs lists the live market IDs, sorted.
func (r *Registry) IDs() []string {
	r.mu.RLock()
	ids := make([]string, 0, len(r.markets))
	for id := range r.markets {
		ids = append(ids, id)
	}
	r.mu.RUnlock()
	sort.Strings(ids)
	return ids
}

// Count reports the number of live markets.
func (r *Registry) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.markets)
}

// Menu is the cross-tenant union of every live market's offerings, sorted
// — the single-market menu generalized to the whole marketplace.
func (r *Registry) Menu() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.offerings))
	for name := range r.offerings {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// ResolveOffering maps a global offering name to its market. Offering
// names embed the dataset ID ("<id>/<model>"), so they are unique across
// tenants and the legacy single-market routes keep working against the
// union menu. Unknown names return market.ErrUnknownOffering so callers
// map them exactly like a single broker would.
func (r *Registry) ResolveOffering(name string) (*Market, error) {
	r.mu.RLock()
	id, ok := r.offerings[name]
	m := r.markets[id]
	r.mu.RUnlock()
	if !ok || m == nil {
		return nil, fmt.Errorf("%w: %s", market.ErrUnknownOffering, name)
	}
	return m, nil
}

// Buy purchases across the whole marketplace by global offering name,
// routing to the owning market's drain-aware buy path.
func (r *Registry) Buy(offering, loss, option string, value float64) (*market.Purchase, error) {
	m, err := r.ResolveOffering(offering)
	if err != nil {
		return nil, err
	}
	return m.Buy(offering, loss, option, value)
}

// MarketStats is one tenant's row in the cross-tenant statement.
type MarketStats struct {
	ID        string   `json:"id"`
	Owner     string   `json:"owner,omitempty"`
	Source    string   `json:"source"`
	Offerings []string `json:"offerings"`
	Sales     int      `json:"sales"`
	Gross     float64  `json:"gross"`
	Fees      float64  `json:"fees"`
	Payouts   float64  `json:"payouts"`
}

// Stats is the marketplace-wide revenue statement: per-tenant rows (from
// each broker's running books, so this is O(markets), not O(ledger)) plus
// the cross-tenant totals.
type Stats struct {
	Markets   int           `json:"markets"`
	Offerings int           `json:"offerings"`
	Sales     int           `json:"sales"`
	Gross     float64       `json:"gross"`
	Fees      float64       `json:"fees"`
	Payouts   float64       `json:"payouts"`
	PerMarket []MarketStats `json:"per_market"`
}

// Stats aggregates every live market's statement.
func (r *Registry) Stats() Stats {
	r.mu.RLock()
	markets := make([]*Market, 0, len(r.markets))
	for _, m := range r.markets {
		markets = append(markets, m)
	}
	offerings := len(r.offerings)
	r.mu.RUnlock()
	sort.Slice(markets, func(i, j int) bool { return markets[i].ID < markets[j].ID })

	st := Stats{Markets: len(markets), Offerings: offerings}
	for _, m := range markets {
		ms := m.Broker.Statement()
		row := MarketStats{
			ID:        m.ID,
			Owner:     m.Spec.Owner,
			Source:    m.Spec.Source(),
			Offerings: m.Broker.Menu(),
			Sales:     ms.Sales,
			Gross:     ms.Gross,
			Fees:      ms.BrokerFees,
			Payouts:   ms.Payouts,
		}
		st.PerMarket = append(st.PerMarket, row)
		st.Sales += row.Sales
		st.Gross += row.Gross
		st.Fees += row.Fees
		st.Payouts += row.Payouts
	}
	return st
}

// Close drains every market and compacts and closes every journal, but
// leaves the tenant directories live so the next Open recovers them.
// The registry accepts no new work afterwards.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	markets := make([]*Market, 0, len(r.markets))
	for _, m := range r.markets {
		markets = append(markets, m)
	}
	r.mu.Unlock()

	var firstErr error
	for _, m := range markets {
		m.drain()
		if m.jnl != nil {
			if err := m.jnl.Compact(m.Broker.SaveLedger); err != nil {
				r.logf("registry: market %s: shutdown compaction failed (ledger remains in segments): %v", m.ID, err)
			}
			if err := m.jnl.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("registry: closing journal for %s: %w", m.ID, err)
			}
		}
		m.setClosed()
	}
	return firstErr
}
