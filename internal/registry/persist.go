package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"nimbus/internal/journal"
	"nimbus/internal/market"
)

// On-disk layout, one directory per tenant under Config.Root:
//
//	<root>/<id>/manifest.json  - the normalized Spec (rebuild recipe)
//	<root>/<id>/dataset.csv    - raw upload, CSV-sourced tenants only
//	<root>/<id>/journal/       - the tenant's own write-ahead journal
//	<root>/.delisted/<id>-<n>  - archived tenants (renamed, never deleted)
//
// Journals are isolated per tenant on purpose: one tenant's fsync cadence,
// segment churn or corruption cannot stall or poison another's, Delist can
// compact and archive a single directory atomically, and recovery is an
// independent per-tenant replay — a torn tail in one journal truncates
// that tenant only. The price is one open segment file per live market,
// bounded by Config.MaxMarkets.

const (
	manifestFile = "manifest.json"
	datasetFile  = "dataset.csv"
	journalDir   = "journal"
	archiveRoot  = ".delisted"
)

// tenantDir is the live directory for a tenant.
func tenantDir(root, id string) string { return filepath.Join(root, id) }

// writeManifest persists the normalized spec atomically (temp file, fsync,
// rename) so a crash mid-write leaves the old manifest or the new one.
func writeManifest(dir string, spec Spec) error {
	return journal.WriteFileAtomic(journal.OSFS{}, filepath.Join(dir, manifestFile), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(spec)
	})
}

// readManifest loads and re-validates a tenant's spec.
func readManifest(dir string) (Spec, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return Spec{}, err
	}
	var spec Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return Spec{}, fmt.Errorf("registry: parsing %s: %w", filepath.Join(dir, manifestFile), err)
	}
	if spec.Version != specVersion {
		return Spec{}, fmt.Errorf("registry: %s: manifest version %d, this build reads %d", dir, spec.Version, specVersion)
	}
	return spec.normalize()
}

// persistTenant creates the tenant directory and writes the manifest plus,
// for CSV sources, the raw dataset bytes.
func persistTenant(root string, spec Spec, csvData []byte) error {
	dir := tenantDir(root, spec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("registry: creating %s: %w", dir, err)
	}
	if spec.CSV {
		err := journal.WriteFileAtomic(journal.OSFS{}, filepath.Join(dir, datasetFile), func(w io.Writer) error {
			_, werr := w.Write(csvData)
			return werr
		})
		if err != nil {
			return err
		}
	}
	return writeManifest(dir, spec)
}

// removeTenantDir erases a half-created tenant directory after a failed
// List; live tenants are archived by archiveTenant, never removed.
func removeTenantDir(root, id string) error {
	return os.RemoveAll(tenantDir(root, id))
}

// archiveTenant moves a delisted tenant's directory under
// <root>/.delisted/, picking the first free "<id>-<n>" slot rather than a
// timestamp so the registry stays wall-clock free and repeated
// list/delist cycles of the same ID keep every ledger. The rename is
// atomic within the filesystem, so a crash leaves the tenant either live
// or archived, never both.
func archiveTenant(root, id string) error {
	arch := filepath.Join(root, archiveRoot)
	if err := os.MkdirAll(arch, 0o755); err != nil {
		return fmt.Errorf("registry: creating archive dir: %w", err)
	}
	for n := 1; ; n++ {
		dst := filepath.Join(arch, fmt.Sprintf("%s-%d", id, n))
		if _, err := os.Stat(dst); err == nil {
			continue
		} else if !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("registry: probing archive slot: %w", err)
		}
		if err := os.Rename(tenantDir(root, id), dst); err != nil {
			return fmt.Errorf("registry: archiving %s: %w", id, err)
		}
		return nil
	}
}

// openTenantJournal opens (and recovers) one tenant's journal: restore the
// compacted snapshot into the broker, replay the record tail, then switch
// the broker's sale path onto the journal. Mirrors nimbusd's single-market
// recovery, scoped to this tenant's directory.
func (r *Registry) openTenantJournal(b *market.Broker, dir string) (*journal.Journal, error) {
	j, err := journal.Open(filepath.Join(dir, journalDir), journal.Options{
		SegmentBytes: r.cfg.SegmentBytes,
		Sync:         r.cfg.Sync,
		SyncEvery:    r.cfg.SyncEvery,
		Telemetry:    r.cfg.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	closeOnErr := func(err error) (*journal.Journal, error) {
		//lint:ignore no-dropped-error best-effort cleanup; the recovery failure is what gets reported
		j.Close()
		return nil, err
	}
	if snap, ok, err := j.Snapshot(); err != nil {
		return closeOnErr(err)
	} else if ok {
		err := b.RestoreLedger(snap)
		if cerr := snap.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return closeOnErr(fmt.Errorf("registry: restoring journal snapshot: %w", err))
		}
	}
	if err := j.Replay(func(rec []byte) error {
		p, err := market.UnmarshalSale(rec)
		if err != nil {
			return err
		}
		b.ReplaySale(p)
		return nil
	}); err != nil {
		return closeOnErr(fmt.Errorf("registry: replaying journal: %w", err))
	}
	b.SetJournal(j)
	return j, nil
}

// recoverTenants rebuilds every live tenant found under root. Dot-prefixed
// entries (the archive) and stray files are skipped; a tenant that fails
// to recover fails Open — better a loud restart than silently trading
// without a tenant's ledger.
func (r *Registry) recoverTenants() error {
	entries, err := os.ReadDir(r.cfg.Root)
	if err != nil {
		return fmt.Errorf("registry: scanning %s: %w", r.cfg.Root, err)
	}
	for _, e := range entries {
		if !e.IsDir() || !ValidID(e.Name()) {
			continue
		}
		m, err := r.recoverTenant(e.Name())
		if err != nil {
			return fmt.Errorf("registry: recovering tenant %s: %w", e.Name(), err)
		}
		r.publish(m)
		r.logf("registry: recovered market %s (%s): %d sales, revenue %.2f",
			m.ID, m.Spec.Source(), m.Broker.SaleCount(), m.Broker.TotalRevenue())
	}
	return nil
}

// recoverTenant rebuilds one market from its directory: re-run the listing
// pipeline from the manifest (datasets and curves are reproducible from
// the spec), then recover the ledger from the tenant's journal.
func (r *Registry) recoverTenant(id string) (*Market, error) {
	dir := tenantDir(r.cfg.Root, id)
	spec, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if spec.ID != id {
		return nil, fmt.Errorf("manifest id %q does not match directory %q", spec.ID, id)
	}
	var csvData []byte
	if spec.CSV {
		csvData, err = os.ReadFile(filepath.Join(dir, datasetFile))
		if err != nil {
			return nil, err
		}
	}
	b, err := buildBroker(spec, csvData, r.cfg.Commission)
	if err != nil {
		return nil, err
	}
	if r.cfg.Telemetry != nil {
		b.SetTelemetry(r.cfg.Telemetry)
	}
	jnl, err := r.openTenantJournal(b, dir)
	if err != nil {
		return nil, err
	}
	return newMarket(spec, b, jnl, r.cfg.Telemetry), nil
}
