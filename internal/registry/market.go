package registry

import (
	"errors"
	"fmt"
	"sync"

	"nimbus/internal/journal"
	"nimbus/internal/market"
	"nimbus/internal/telemetry"
)

// Errors the registry reports; the server layer maps them onto HTTP codes.
var (
	// ErrBadID rejects a dataset ID that fails ValidID.
	ErrBadID = errors.New("registry: invalid dataset id")
	// ErrUnknownMarket means no live market has the requested ID.
	ErrUnknownMarket = errors.New("registry: unknown market")
	// ErrMarketExists rejects listing a dataset ID already live (or being
	// listed/delisted right now).
	ErrMarketExists = errors.New("registry: market already exists")
	// ErrDelisting rejects purchases on a market that is draining or gone;
	// in-flight buys complete, new ones get this.
	ErrDelisting = errors.New("registry: market is being delisted")
	// ErrTooManyMarkets enforces Config.MaxMarkets — the bound that keeps
	// the per-market telemetry label cardinality finite.
	ErrTooManyMarkets = errors.New("registry: market limit reached")
	// ErrBadOption rejects a purchase option outside the paper's three
	// interaction modes.
	ErrBadOption = errors.New("registry: unknown purchase option (want quality, error-budget or price-budget)")
)

// marketState is the lifecycle of one tenant market.
type marketState int

const (
	// stateOpen accepts purchases.
	stateOpen marketState = iota
	// stateDraining rejects new purchases while in-flight ones finish;
	// entered by Delist and Close.
	stateDraining
	// stateClosed is terminal: drained, journal compacted and closed.
	stateClosed
)

// Market is one tenant's live marketplace: its own sharded broker, pricing
// curves, and (when the registry is durable) its own journal directory.
// Markets are created by Registry.List or recovered by Open, and torn down
// by Delist — callers outside the package interact with the exported
// fields read-only and purchase through Buy, which participates in the
// drain protocol.
type Market struct {
	// ID is the dataset ID the market is keyed by.
	ID string
	// Spec is the normalized listing the market was built from.
	Spec Spec
	// Broker is the tenant's own sharded broker, carrying exactly the
	// offerings this tenant listed.
	Broker *market.Broker

	jnl *journal.Journal // nil when the registry is memory-only

	mu       sync.Mutex
	cond     *sync.Cond  // signaled when inflight drops to 0 while draining
	inflight int         // guarded by mu; purchases between acquire and release
	state    marketState // guarded by mu

	sales   *telemetry.Counter      // per-market purchase count; nil without telemetry
	revenue *telemetry.FloatCounter // per-market gross revenue
}

// newMarket wires the lifecycle plumbing around a freshly built broker.
//
//lint:transfers the Market owns the journal from here; Market.close is the release path
func newMarket(spec Spec, b *market.Broker, jnl *journal.Journal, reg *telemetry.Registry) *Market {
	m := &Market{ID: spec.ID, Spec: spec, Broker: b, jnl: jnl, state: stateOpen}
	m.cond = sync.NewCond(&m.mu)
	if reg != nil {
		// The market label is buyer-invisible: IDs pass ValidID and the
		// live set is capped at Config.MaxMarkets, so the series set is
		// bounded by listings, not by request traffic.
		//lint:ignore telemetry-label-literal market IDs pass ValidID and the live set is capped at Config.MaxMarkets, so label cardinality is bounded by listings, not requests
		m.sales = reg.Counter("nimbus_market_purchases_total", "market", spec.ID)
		//lint:ignore telemetry-label-literal market IDs pass ValidID and the live set is capped at Config.MaxMarkets, so label cardinality is bounded by listings, not requests
		m.revenue = reg.FloatCounter("nimbus_market_revenue_total", "market", spec.ID)
		reg.Help("nimbus_market_purchases_total", "Completed purchases per tenant market.")
		reg.Help("nimbus_market_revenue_total", "Gross sale revenue per tenant market.")
	}
	return m
}

// acquire registers an in-flight purchase; it fails once the market has
// started draining so Delist can guarantee the ledger is quiescent before
// the final compaction.
func (m *Market) acquire() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != stateOpen {
		return fmt.Errorf("%w: %s", ErrDelisting, m.ID)
	}
	m.inflight++
	return nil
}

// release retires an in-flight purchase and wakes the drainer when the
// last one finishes.
func (m *Market) release() {
	m.mu.Lock()
	m.inflight--
	if m.inflight == 0 && m.state != stateOpen {
		m.cond.Broadcast()
	}
	m.mu.Unlock()
}

// drain flips the market to draining and blocks until every in-flight
// purchase has released. Idempotent; callers then own the quiescent
// broker and journal.
func (m *Market) drain() {
	m.mu.Lock()
	if m.state == stateOpen {
		m.state = stateDraining
	}
	for m.inflight > 0 {
		m.cond.Wait()
	}
	m.mu.Unlock()
}

// closed marks the market terminally closed (journal compacted and shut).
func (m *Market) setClosed() {
	m.mu.Lock()
	m.state = stateClosed
	m.mu.Unlock()
}

// Buy executes one purchase in the tenant's market. option selects the
// paper's interaction mode: "quality" (value is the offered grid point),
// "error-budget" or "price-budget" (value is the budget). The purchase is
// tracked in-flight so a concurrent Delist drains rather than races.
func (m *Market) Buy(offering, loss, option string, value float64) (*market.Purchase, error) {
	if !validOption(option) {
		return nil, fmt.Errorf("%w: %q", ErrBadOption, option)
	}
	if err := m.acquire(); err != nil {
		return nil, err
	}
	defer m.release()
	var p *market.Purchase
	var err error
	switch option {
	case "quality":
		p, err = m.Broker.BuyAtQuality(offering, loss, value)
	case "error-budget":
		p, err = m.Broker.BuyWithErrorBudget(offering, loss, value)
	default: // price-budget; validOption already vetted the set
		p, err = m.Broker.BuyWithPriceBudget(offering, loss, value)
	}
	if err != nil {
		return nil, err
	}
	if m.sales != nil {
		m.sales.Inc()
		m.revenue.Add(p.Price)
	}
	return p, nil
}

// Statement reports the tenant's accounting from its broker's running
// books.
func (m *Market) Statement() *market.Statement { return m.Broker.Statement() }
