package registry

import (
	"bytes"
	"fmt"

	"nimbus/internal/dataset"
	"nimbus/internal/market"
	"nimbus/internal/ml"
	"nimbus/internal/pricing"
	"nimbus/internal/rng"
)

// Spec describes how one tenant market is built: which dataset backs it
// (a named generator or seller-uploaded CSV), which model is sold, and the
// listing parameters of the Figure 2 pipeline. The spec is the tenant's
// manifest — it is persisted verbatim in the tenant directory so a restart
// can rebuild the market from source (datasets and trained models are
// reproducible; only the sale ledger, which the journal carries, is not).
type Spec struct {
	// Version guards the on-disk manifest format.
	Version int `json:"version,omitempty"`
	// ID is the dataset ID the market is keyed by: a URL- and
	// directory-safe name, unique among live markets.
	ID string `json:"id"`
	// Owner names the seller the market's payouts accrue to.
	Owner string `json:"owner,omitempty"`

	// Generator names a built-in dataset source: Simulated1, Simulated2,
	// or one of the UCI stand-ins (dataset.StandInNames). Mutually
	// exclusive with CSV.
	Generator string `json:"generator,omitempty"`
	// Rows sizes a generated dataset (default 500).
	Rows int `json:"rows,omitempty"`

	// CSV indicates the dataset was uploaded as CSV; the raw bytes live in
	// the tenant directory's dataset.csv (not in the manifest). Task and
	// Target describe how to parse it.
	CSV bool `json:"csv,omitempty"`
	// Task is "regression" or "classification" (CSV sources only).
	Task string `json:"task,omitempty"`
	// Target names the CSV label column (required for CSV sources).
	Target string `json:"target,omitempty"`

	// Model picks what is sold: "linear-regression",
	// "logistic-regression", "auto" (cross-validated selection), or empty
	// for the task default.
	Model string `json:"model,omitempty"`
	// Grid is the offered quality-grid size (default 20).
	Grid int `json:"grid,omitempty"`
	// Samples is the Monte-Carlo sample count per grid point (default 60).
	Samples int `json:"samples,omitempty"`
	// Seed drives the dataset generation, split, and curve estimation.
	Seed int64 `json:"seed,omitempty"`
	// ValueScale parameterizes the seller's market research — buyers value
	// an error-e model at ValueScale/(1+e) with unit demand (default 100).
	// The demo cannot ship a closure over HTTP, so research is this one
	// documented parametric family.
	ValueScale float64 `json:"value_scale,omitempty"`
}

// specVersion is the current manifest format.
const specVersion = 1

// maxIDLen bounds tenant IDs; with Config.MaxMarkets it is what keeps the
// telemetry `market` label finite and the tenant directory names sane.
const maxIDLen = 64

// ValidID reports whether id is usable as a market key: non-empty, at most
// maxIDLen bytes, letters/digits/dot/dash/underscore only, not starting
// with a dot (dot-prefixed names are reserved for registry bookkeeping,
// e.g. the archive directory).
func ValidID(id string) bool {
	if id == "" || len(id) > maxIDLen || id[0] == '.' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '.' || c == '-' || c == '_':
		default:
			return false
		}
	}
	return true
}

// normalize validates the spec and fills defaults. It returns the filled
// copy so the persisted manifest records the effective parameters.
func (s Spec) normalize() (Spec, error) {
	if !ValidID(s.ID) {
		return s, fmt.Errorf("%w: %q (want 1-%d letters, digits, '.', '-' or '_', not starting with '.')", ErrBadID, s.ID, maxIDLen)
	}
	s.Version = specVersion
	if s.CSV && s.Generator != "" {
		return s, fmt.Errorf("registry: market %s: generator and csv sources are mutually exclusive", s.ID)
	}
	if !s.CSV && s.Generator == "" {
		return s, fmt.Errorf("registry: market %s: need a dataset source (generator or csv)", s.ID)
	}
	if s.CSV {
		switch s.Task {
		case "regression", "classification":
		default:
			return s, fmt.Errorf("registry: market %s: csv task %q (want regression or classification)", s.ID, s.Task)
		}
		if s.Target == "" {
			return s, fmt.Errorf("registry: market %s: csv source needs a target column", s.ID)
		}
	}
	if s.Generator != "" && !knownGenerator(s.Generator) {
		return s, fmt.Errorf("registry: market %s: unknown generator %q (have %v)", s.ID, s.Generator, GeneratorNames())
	}
	switch s.Model {
	case "", "auto", "linear-regression", "logistic-regression":
	default:
		return s, fmt.Errorf("registry: market %s: unknown model %q (want linear-regression, logistic-regression or auto)", s.ID, s.Model)
	}
	if s.Rows <= 0 {
		s.Rows = 500
	}
	if s.Grid <= 0 {
		s.Grid = 20
	}
	if s.Samples <= 0 {
		s.Samples = 60
	}
	if s.ValueScale <= 0 {
		s.ValueScale = 100
	}
	return s, nil
}

// GeneratorNames lists the built-in dataset sources a Spec may name.
func GeneratorNames() []string {
	return append([]string{"Simulated1", "Simulated2"}, dataset.StandInNames()...)
}

func knownGenerator(name string) bool {
	for _, n := range GeneratorNames() {
		if n == name {
			return true
		}
	}
	return false
}

// buildDataset materializes the spec's dataset. csvData is the uploaded
// file for CSV sources (nil otherwise). The dataset is renamed to the
// market ID so offering names — "<id>/<model>" — stay unique across
// tenants.
func buildDataset(spec Spec, csvData []byte) (*dataset.Dataset, error) {
	if spec.CSV {
		task := dataset.Regression
		if spec.Task == "classification" {
			task = dataset.Classification
		}
		d, err := dataset.ReadCSV(bytes.NewReader(csvData), spec.ID, task, spec.Target)
		if err != nil {
			return nil, fmt.Errorf("registry: market %s: parsing csv: %w", spec.ID, err)
		}
		return d, nil
	}
	cfg := dataset.GenConfig{Rows: spec.Rows, Seed: spec.Seed}
	var d *dataset.Dataset
	var err error
	switch spec.Generator {
	case "Simulated1":
		d = dataset.Simulated1(cfg)
	case "Simulated2":
		d = dataset.Simulated2(cfg)
	default:
		d, err = dataset.StandIn(spec.Generator, cfg)
		if err != nil {
			return nil, fmt.Errorf("registry: market %s: %w", spec.ID, err)
		}
	}
	d.Name = spec.ID
	return d, nil
}

// buildBroker runs the full listing pipeline for the spec on a fresh
// sharded broker: generate/parse the dataset, split it, train, transform,
// optimize prices, and list the offering. This is the slow part of List —
// the registry runs it outside its lock.
func buildBroker(spec Spec, csvData []byte, commission float64) (*market.Broker, error) {
	d, err := buildDataset(spec, csvData)
	if err != nil {
		return nil, err
	}
	pair, err := dataset.NewPair(d, rng.New(spec.Seed+1))
	if err != nil {
		return nil, fmt.Errorf("registry: market %s: %w", spec.ID, err)
	}
	scale := spec.ValueScale
	seller, err := market.NewSeller(pair, market.Research{
		Value:  func(e float64) float64 { return scale / (1 + e) },
		Demand: func(e float64) float64 { return 1 },
	})
	if err != nil {
		return nil, fmt.Errorf("registry: market %s: %w", spec.ID, err)
	}
	cfg := market.OfferingConfig{
		Seller:  seller,
		Grid:    pricing.DefaultGrid(spec.Grid),
		Samples: spec.Samples,
		Seed:    spec.Seed + 3,
	}
	switch spec.Model {
	case "auto":
		cfg.AutoSelect = true
	case "linear-regression":
		cfg.Model = ml.LinearRegression{Ridge: 1e-4}
	case "logistic-regression":
		cfg.Model = ml.LogisticRegression{Ridge: 1e-4}
	default: // task default
		switch pair.Train.Task {
		case dataset.Regression:
			cfg.Model = ml.LinearRegression{Ridge: 1e-4}
		case dataset.Classification:
			cfg.Model = ml.LogisticRegression{Ridge: 1e-4}
		}
	}
	b := market.NewBroker(spec.Seed + 2)
	if err := b.SetCommission(commission); err != nil {
		return nil, fmt.Errorf("registry: market %s: %w", spec.ID, err)
	}
	if _, err := b.List(cfg); err != nil {
		return nil, fmt.Errorf("registry: listing market %s: %w", spec.ID, err)
	}
	return b, nil
}

// Source renders the spec's dataset source for logs and API responses:
// "generator:CASP" or "csv:regression".
func (s Spec) Source() string {
	if s.CSV {
		return "csv:" + s.Task
	}
	return "generator:" + s.Generator
}

// optionModes maps the API's purchase-option strings onto the broker's
// three buy entry points; shared by Market.Buy and the server handlers.
var optionModes = []string{"quality", "error-budget", "price-budget"}

// validOption reports whether the purchase option is one of the paper's
// three interaction modes.
func validOption(option string) bool {
	for _, o := range optionModes {
		if o == option {
			return true
		}
	}
	return false
}

