package aggregate

import (
	"math"
	"testing"

	"nimbus/internal/dataset"
	"nimbus/internal/rng"
	"nimbus/internal/vec"
)

func fixture(t *testing.T) *dataset.Dataset {
	t.Helper()
	// A tiny relation with a known column-0 average of 2.5.
	m := vec.NewMatrix(4, 2)
	copy(m.Data, []float64{1, 9, 2, 9, 3, 9, 4, 9})
	d, err := dataset.New("toy", dataset.Regression, m, []float64{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func research() (func(float64) float64, func(float64) float64) {
	return func(e float64) float64 { return 10 / (1 + e) },
		func(e float64) float64 { return 1 }
}

func TestNewValidation(t *testing.T) {
	v, d := research()
	if _, err := New(Config{Column: 0, Value: v, Demand: d}); err == nil {
		t.Fatal("nil data accepted")
	}
	data := fixture(t)
	if _, err := New(Config{Data: data, Column: 5, Value: v, Demand: d}); err == nil {
		t.Fatal("bad column accepted")
	}
	if _, err := New(Config{Data: data, Column: 0}); err == nil {
		t.Fatal("missing research accepted")
	}
	if _, err := New(Config{Data: data, Column: 0, Value: v, Demand: d, Grid: []float64{-1, 1}}); err == nil {
		t.Fatal("bad grid accepted")
	}
}

func TestTrueAverage(t *testing.T) {
	v, d := research()
	o, err := New(Config{Data: fixture(t), Column: 0, Value: v, Demand: d})
	if err != nil {
		t.Fatal(err)
	}
	if o.TrueAverage != 2.5 {
		t.Fatalf("average %v, want 2.5", o.TrueAverage)
	}
	o2, err := New(Config{Data: fixture(t), Column: 1, Value: v, Demand: d})
	if err != nil {
		t.Fatal(err)
	}
	if o2.TrueAverage != 9 {
		t.Fatalf("column 1 average %v, want 9", o2.TrueAverage)
	}
}

func TestPricingIsArbitrageFree(t *testing.T) {
	v, d := research()
	for _, mech := range []Mechanism{Additive, Multiplicative} {
		o, err := New(Config{Data: fixture(t), Column: 0, Mechanism: mech, Value: v, Demand: d})
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		if err := o.PriceFunc.Validate(); err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
	}
}

func TestErrorCurveMatchesClosedForm(t *testing.T) {
	v, d := research()
	grid := []float64{1, 2, 10}
	o, err := New(Config{Data: fixture(t), Column: 0, Grid: grid, Value: v, Demand: d})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range grid {
		delta := 1 / x
		want := delta * delta / 3
		if got := o.Curve.ErrorAt(x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("additive error at %v: %v, want %v", x, got, want)
		}
	}
	om, err := New(Config{Data: fixture(t), Column: 0, Mechanism: Multiplicative, Grid: grid, Value: v, Demand: d})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range grid {
		delta := 1 / x
		want := 2.5 * 2.5 * delta * delta / 3
		if got := om.Curve.ErrorAt(x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("multiplicative error at %v: %v, want %v", x, got, want)
		}
	}
}

func TestSellUnbiasedAndCalibrated(t *testing.T) {
	v, d := research()
	src := rng.New(5)
	for _, mech := range []Mechanism{Additive, Multiplicative} {
		o, err := New(Config{Data: fixture(t), Column: 0, Mechanism: mech, Value: v, Demand: d})
		if err != nil {
			t.Fatal(err)
		}
		const trials = 200000
		const x = 2.0 // δ = 0.5
		var sum, sqErr float64
		for i := 0; i < trials; i++ {
			got, price, err := o.Sell(x, src)
			if err != nil {
				t.Fatal(err)
			}
			if price != o.PriceFunc.Price(x) {
				t.Fatal("price mismatch")
			}
			sum += got
			sqErr += (got - o.TrueAverage) * (got - o.TrueAverage)
		}
		mean := sum / trials
		if math.Abs(mean-o.TrueAverage) > 0.01*math.Abs(o.TrueAverage)+0.005 {
			t.Fatalf("%v: biased mean %v vs %v", mech, mean, o.TrueAverage)
		}
		want := o.Curve.ErrorAt(x)
		if got := sqErr / trials; math.Abs(got-want)/want > 0.05 {
			t.Fatalf("%v: E[sq err] %v vs closed form %v", mech, got, want)
		}
	}
}

func TestSellRejectsBadQuality(t *testing.T) {
	v, d := research()
	o, err := New(Config{Data: fixture(t), Column: 0, Value: v, Demand: d})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.Sell(0, rng.New(1)); err == nil {
		t.Fatal("zero quality accepted")
	}
}

func TestMechanismString(t *testing.T) {
	if Additive.String() != "additive-uniform" || Multiplicative.String() != "multiplicative-uniform" {
		t.Fatal("mechanism names")
	}
}
