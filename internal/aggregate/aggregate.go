// Package aggregate implements the paper's Example 1: pricing a SQL-style
// aggregate — the average of a column — instead of a full ML model. The
// hypothesis space is simply ℝ, and the two randomized mechanisms are the
// ones the example defines:
//
//	K₁(h*, w) = h* + w,  w ~ U[−δ, δ]        (additive uniform)
//	K₂(h*, w) = h* · w,  w ~ U[1−δ, 1+δ]     (multiplicative uniform)
//
// Both are unbiased and their expected squared error is monotone in the
// NCP δ, so the same arbitrage-free pricing machinery applies with
// x = 1/δ as the quality knob. Because the error laws are known in closed
// form (δ²/3 and h*²·δ²/3 respectively), the error curves here are exact
// rather than Monte-Carlo.
package aggregate

import (
	"errors"
	"fmt"

	"nimbus/internal/dataset"
	"nimbus/internal/opt"
	"nimbus/internal/pricing"
	"nimbus/internal/rng"
)

// Mechanism selects one of Example 1's randomized mechanisms.
type Mechanism int

const (
	// Additive is K₁: h* + U[−δ, δ].
	Additive Mechanism = iota
	// Multiplicative is K₂: h* · U[1−δ, 1+δ].
	Multiplicative
)

// String implements fmt.Stringer.
func (m Mechanism) String() string {
	switch m {
	case Additive:
		return "additive-uniform"
	case Multiplicative:
		return "multiplicative-uniform"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// Offering prices the average of one column of a dataset.
type Offering struct {
	// Column is the priced feature column index.
	Column int
	// Mechanism is the Example 1 noise mechanism in use.
	Mechanism Mechanism
	// TrueAverage is the optimal "model instance" h*: the exact column
	// average on the train set.
	TrueAverage float64
	// PriceFunc is the arbitrage-free pricing function over x = 1/δ.
	PriceFunc *pricing.Function
	// Curve is the buyer-facing price–error menu (squared error).
	Curve *pricing.PriceErrorCurve

	grid []float64
}

// Config configures an aggregate offering.
type Config struct {
	// Data supplies the column; the average is computed on the whole
	// relation (an aggregate has no train/test split).
	Data *dataset.Dataset
	// Column is the feature column to average.
	Column int
	// Mechanism picks K₁ or K₂ (default K₁).
	Mechanism Mechanism
	// Grid is the offered quality grid over x = 1/δ; empty means the
	// default 100-point grid. For the multiplicative mechanism δ ≤ 1 keeps
	// the noise sign-preserving, which the default grid satisfies.
	Grid []float64
	// Research prices the versions; value/demand are functions of the
	// expected squared error.
	Value  func(err float64) float64
	Demand func(err float64) float64
}

// New computes the aggregate, derives the exact error curve and optimizes
// prices with the same DP used for ML models.
func New(cfg Config) (*Offering, error) {
	if cfg.Data == nil {
		return nil, errors.New("aggregate: nil dataset")
	}
	if cfg.Column < 0 || cfg.Column >= cfg.Data.D() {
		return nil, fmt.Errorf("aggregate: column %d out of range [0, %d)", cfg.Column, cfg.Data.D())
	}
	if cfg.Value == nil || cfg.Demand == nil {
		return nil, errors.New("aggregate: value and demand curves are required")
	}
	grid := cfg.Grid
	if len(grid) == 0 {
		grid = pricing.DefaultGrid(100)
	}

	var sum float64
	n := cfg.Data.N()
	for i := 0; i < n; i++ {
		x, _ := cfg.Data.Row(i)
		sum += x[cfg.Column]
	}
	avg := sum / float64(n)

	// Exact expected squared error per quality.
	errs := make([]float64, len(grid))
	for i, x := range grid {
		if x <= 0 {
			return nil, fmt.Errorf("aggregate: non-positive grid quality %v", x)
		}
		delta := 1 / x
		errs[i] = expectedSquaredError(cfg.Mechanism, avg, delta)
	}
	curve, err := exactCurve(cfg.Mechanism.String(), grid, errs)
	if err != nil {
		return nil, err
	}

	// Research → buyer points → DP, as for ML offerings.
	points := make([]opt.BuyerPoint, len(grid))
	for i, x := range grid {
		v := cfg.Value(errs[i])
		m := cfg.Demand(errs[i])
		if v < 0 {
			v = 0
		}
		if m < 0 {
			m = 0
		}
		points[i] = opt.BuyerPoint{X: x, Value: v, Mass: m}
	}
	prob, err := opt.NewProblem(opt.Monotonize(points))
	if err != nil {
		return nil, fmt.Errorf("aggregate: building revenue problem: %w", err)
	}
	priceFn, _, err := opt.MaximizeRevenueDP(prob)
	if err != nil {
		return nil, fmt.Errorf("aggregate: revenue optimization: %w", err)
	}
	pec, err := pricing.NewPriceErrorCurve("aggregate-average", curve, priceFn)
	if err != nil {
		return nil, err
	}
	return &Offering{
		Column:      cfg.Column,
		Mechanism:   cfg.Mechanism,
		TrueAverage: avg,
		PriceFunc:   priceFn,
		Curve:       pec,
		grid:        grid,
	}, nil
}

// expectedSquaredError is the closed-form E[(h_δ − h*)²] of Example 1.
func expectedSquaredError(m Mechanism, avg, delta float64) float64 {
	switch m {
	case Multiplicative:
		// h*(w−1), w−1 ~ U[−δ, δ]: variance h*²·δ²/3.
		return avg * avg * delta * delta / 3
	default:
		// w ~ U[−δ, δ]: variance δ²/3.
		return delta * delta / 3
	}
}

// exactCurve wraps a known-exact error sequence in an ErrorCurve via the
// standard constructor (which validates monotonicity).
func exactCurve(name string, xs, errs []float64) (*pricing.ErrorCurve, error) {
	// pricing's constructor is unexported; rebuild through the public
	// Monte-Carlo-free path: the sequence is already monotone so the
	// isotonic projection inside is a no-op.
	return pricing.ExactCurve(name, xs, errs)
}

// Sell draws one noisy aggregate at quality x and returns (value, price).
func (o *Offering) Sell(x float64, src *rng.Source) (float64, float64, error) {
	if x <= 0 {
		return 0, 0, fmt.Errorf("aggregate: non-positive quality %v", x)
	}
	delta := 1 / x
	price := o.PriceFunc.Price(x)
	switch o.Mechanism {
	case Multiplicative:
		return o.TrueAverage * src.Uniform(1-delta, 1+delta), price, nil
	default:
		return o.TrueAverage + src.Uniform(-delta, delta), price, nil
	}
}
