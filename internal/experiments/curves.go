// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6 and Appendix D): the error-transformation curves of
// Figure 6, the revenue/affordability comparisons of Figures 7, 8, 11 and
// 12, the runtime studies of Figures 9, 10, 13 and 14, the dataset table
// (Table 3) and the Figure 5 worked example, plus the ablations DESIGN.md
// calls out.
//
// The buyer value and demand curve families below are parameterized to the
// same qualitative regimes the paper draws: values in [0, 100] over the
// quality axis x = 1/NCP ∈ [1, 100], and demand distributions that are
// uniform, centered on medium accuracy, concentrated at the extremes, or
// skewed toward one end.
package experiments

import (
	"fmt"
	"math"

	"nimbus/internal/opt"
)

// CurveSpec names a scalar curve over the quality axis.
type CurveSpec struct {
	// Name labels the curve in experiment output.
	Name string
	// F evaluates the curve at quality x ∈ [1, 100].
	F func(x float64) float64
}

// maxValue is the top buyer valuation in all curve families, matching the
// paper's 0–100 value axis.
const maxValue = 100.0

// ValueCurves returns the buyer-value curve families used by Figures 7 and
// 11 (the paper varies the value curve with the demand fixed): convex,
// concave, sigmoid and linear, all monotone non-decreasing in quality.
func ValueCurves() []CurveSpec {
	return []CurveSpec{
		{Name: "convex", F: func(x float64) float64 {
			t := x / 100
			return maxValue * t * t
		}},
		{Name: "concave", F: func(x float64) float64 {
			return maxValue * math.Sqrt(x/100)
		}},
		{Name: "sigmoid", F: func(x float64) float64 {
			return maxValue / (1 + math.Exp(-(x-50)/12))
		}},
		{Name: "linear", F: func(x float64) float64 {
			return maxValue * x / 100
		}},
	}
}

// DemandCurves returns the buyer-demand families used by Figures 8 and 12
// (the paper varies the demand with the value fixed).
func DemandCurves() []CurveSpec {
	gauss := func(mu, sigma float64) func(float64) float64 {
		return func(x float64) float64 {
			d := (x - mu) / sigma
			return math.Exp(-d * d / 2)
		}
	}
	return []CurveSpec{
		{Name: "uniform", F: func(x float64) float64 { return 1 }},
		{Name: "center", F: gauss(50, 15)},
		{Name: "extremes", F: func(x float64) float64 {
			lo, hi := gauss(5, 10), gauss(95, 10)
			return lo(x) + hi(x)
		}},
		{Name: "increasing", F: func(x float64) float64 { return x / 100 }},
		{Name: "decreasing", F: func(x float64) float64 { return (101 - x) / 100 }},
	}
}

// curveByName finds a curve in a family.
func curveByName(family []CurveSpec, name string) (CurveSpec, error) {
	for _, c := range family {
		if c.Name == name {
			return c, nil
		}
	}
	names := make([]string, len(family))
	for i, c := range family {
		names[i] = c.Name
	}
	return CurveSpec{}, fmt.Errorf("experiments: unknown curve %q (have %v)", name, names)
}

// ValueCurve looks up a value curve family member by name.
func ValueCurve(name string) (CurveSpec, error) { return curveByName(ValueCurves(), name) }

// DemandCurve looks up a demand curve family member by name.
func DemandCurve(name string) (CurveSpec, error) { return curveByName(DemandCurves(), name) }

// GridPoints samples a (value, demand) pair on n evenly spaced qualities in
// [1, 100] and normalizes the demand to total mass 1, producing the buyer
// points the revenue optimizers consume. Valuations are monotonized to
// absorb any non-monotone curve family member.
func GridPoints(value, demand CurveSpec, n int) ([]opt.BuyerPoint, error) {
	if n < 1 {
		return nil, fmt.Errorf("experiments: need at least 1 grid point, got %d", n)
	}
	pts := make([]opt.BuyerPoint, n)
	var total float64
	for i := 0; i < n; i++ {
		x := 1.0
		if n > 1 {
			x = 1 + 99*float64(i)/float64(n-1)
		}
		v := value.F(x)
		m := demand.F(x)
		if v < 0 {
			v = 0
		}
		if m < 0 {
			m = 0
		}
		pts[i] = opt.BuyerPoint{X: x, Value: v, Mass: m}
		total += m
	}
	if total > 0 {
		for i := range pts {
			pts[i].Mass /= total
		}
	}
	return opt.Monotonize(pts), nil
}
