package experiments

import (
	"math"
	"testing"

	"nimbus/internal/opt"
	"nimbus/internal/rng"
)

func TestSimulatePopulationValidation(t *testing.T) {
	v, _ := ValueCurve("linear")
	d, _ := DemandCurve("uniform")
	pts, err := GridPoints(v, d, 5)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := opt.NewProblem(pts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimulatePopulation(prob, func(float64) float64 { return 1 }, 0, rng.New(1)); err == nil {
		t.Fatal("zero buyers accepted")
	}
}

func TestSimulatePopulationConvergesToExpectation(t *testing.T) {
	res, err := RunPopulation("sigmoid", "center", 50, 200000, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.RelativeError > 0.02 {
		t.Fatalf("realized revenue %v vs expected %v (rel %v)",
			res.RealizedRevenue, res.ExpectedRevenue, res.RelativeError)
	}
	if math.Abs(res.RealizedAfford-res.ExpectedAfford) > 0.02 {
		t.Fatalf("realized affordability %v vs expected %v", res.RealizedAfford, res.ExpectedAfford)
	}
	if res.Sales == 0 || res.Sales > res.Buyers {
		t.Fatalf("sales %d of %d", res.Sales, res.Buyers)
	}
}

func TestSimulatePopulationFreePricesSellToAll(t *testing.T) {
	v, _ := ValueCurve("convex")
	d, _ := DemandCurve("uniform")
	pts, err := GridPoints(v, d, 20)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := opt.NewProblem(pts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulatePopulation(prob, func(float64) float64 { return 0 }, 5000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sales != res.Buyers || res.RealizedRevenue != 0 {
		t.Fatalf("free prices: %+v", res)
	}
}

func TestSimulatePopulationImpossiblePrices(t *testing.T) {
	v, _ := ValueCurve("convex")
	d, _ := DemandCurve("uniform")
	pts, err := GridPoints(v, d, 20)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := opt.NewProblem(pts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulatePopulation(prob, func(float64) float64 { return 1e9 }, 5000, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sales != 0 || res.RealizedRevenue != 0 {
		t.Fatalf("unaffordable prices: %+v", res)
	}
}

func TestRunPopulationUnknownCurves(t *testing.T) {
	if _, err := RunPopulation("??", "uniform", 10, 100, 1); err == nil {
		t.Fatal("unknown value curve accepted")
	}
	if _, err := RunPopulation("convex", "??", 10, 100, 1); err == nil {
		t.Fatal("unknown demand curve accepted")
	}
}
