package experiments

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
)

func TestCurveFamilies(t *testing.T) {
	for _, v := range ValueCurves() {
		prev := -1.0
		for x := 1.0; x <= 100; x++ {
			val := v.F(x)
			if val < 0 || val > maxValue+1e-9 {
				t.Fatalf("%s: value %v at x=%v outside [0, 100]", v.Name, val, x)
			}
			if val < prev-1e-9 {
				t.Fatalf("%s: value curve not monotone at x=%v", v.Name, x)
			}
			prev = val
		}
	}
	for _, d := range DemandCurves() {
		for x := 1.0; x <= 100; x++ {
			if d.F(x) < 0 {
				t.Fatalf("%s: negative demand at x=%v", d.Name, x)
			}
		}
	}
	if _, err := ValueCurve("convex"); err != nil {
		t.Fatal(err)
	}
	if _, err := DemandCurve("uniform"); err != nil {
		t.Fatal(err)
	}
	if _, err := ValueCurve("nope"); err == nil {
		t.Fatal("unknown value curve accepted")
	}
	if _, err := DemandCurve("nope"); err == nil {
		t.Fatal("unknown demand curve accepted")
	}
}

func TestGridPoints(t *testing.T) {
	v, _ := ValueCurve("convex")
	d, _ := DemandCurve("uniform")
	pts, err := GridPoints(v, d, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 || pts[0].X != 1 || pts[9].X != 100 {
		t.Fatalf("grid endpoints: %+v", pts)
	}
	var mass float64
	for _, p := range pts {
		mass += p.Mass
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Fatalf("mass %v, want 1", mass)
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Value <= pts[j].Value }) {
		t.Fatal("values not monotone")
	}
	if _, err := GridPoints(v, d, 0); err == nil {
		t.Fatal("zero-point grid accepted")
	}
	one, err := GridPoints(v, d, 1)
	if err != nil || len(one) != 1 {
		t.Fatalf("single point grid: %v %v", one, err)
	}
}

func TestCompareMethodsOrderingAndGains(t *testing.T) {
	v, _ := ValueCurve("convex")
	d, _ := DemandCurve("uniform")
	panels, err := RunRevenueGain([]CurveSpec{v}, []CurveSpec{d}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 1 {
		t.Fatalf("%d panels", len(panels))
	}
	p := panels[0]
	if len(p.Results) != 5 {
		t.Fatalf("%d methods", len(p.Results))
	}
	var mbp float64
	for _, r := range p.Results {
		if r.Method == "MBP" {
			mbp = r.Revenue
		}
	}
	// The paper's headline: MBP dominates every baseline in revenue.
	for _, r := range p.Results {
		if r.Revenue > mbp+1e-9 {
			t.Fatalf("%s revenue %v beats MBP %v", r.Method, r.Revenue, mbp)
		}
	}
	// Convex value + Lin is the paper's blow-up case: the gain must be
	// large (paper: 33.6x on its curves).
	g, err := p.Gain("Lin", "revenue")
	if err != nil {
		t.Fatal(err)
	}
	if g < 2 {
		t.Fatalf("convex/Lin revenue gain only %.2fx", g)
	}
	ga, err := p.Gain("Lin", "affordability")
	if err != nil {
		t.Fatal(err)
	}
	if ga < 2 {
		t.Fatalf("convex/Lin affordability gain only %.2fx", ga)
	}
	if _, err := p.Gain("??", "revenue"); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := p.Gain("Lin", "??"); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestConcaveValueLinCompetitive(t *testing.T) {
	// Figure 7(b): with a concave value curve the linear baseline becomes
	// competitive (concave ⇒ subadditive ⇒ MBP can match the whole curve,
	// but Lin also affords most buyers). MBP must still be at least as good.
	v, _ := ValueCurve("concave")
	d, _ := DemandCurve("uniform")
	panels, err := RunRevenueGain([]CurveSpec{v}, []CurveSpec{d}, 50)
	if err != nil {
		t.Fatal(err)
	}
	g, err := panels[0].Gain("Lin", "revenue")
	if err != nil {
		t.Fatal(err)
	}
	if g < 1-1e-9 || g > 2 {
		t.Fatalf("concave/Lin gain %.2fx, want [1, 2]", g)
	}
	// MBP should extract nearly the full surplus for a concave curve.
	var mbp MethodResult
	for _, r := range panels[0].Results {
		if r.Method == "MBP" {
			mbp = r
		}
	}
	var surplus float64
	for _, pt := range panels[0].Points {
		surplus += pt.Mass * pt.Value
	}
	if mbp.Revenue < 0.95*surplus {
		t.Fatalf("MBP revenue %v far below concave surplus %v", mbp.Revenue, surplus)
	}
	if mbp.Affordability < 0.99 {
		t.Fatalf("MBP affordability %v on concave curve", mbp.Affordability)
	}
}

func TestRunRuntimeIncludesMILP(t *testing.T) {
	v, _ := ValueCurve("sigmoid")
	d, _ := DemandCurve("center")
	panels, err := RunRuntime(v, d, []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 3 {
		t.Fatalf("%d panels", len(panels))
	}
	for _, p := range panels {
		var mbpRev, milpRev float64
		seen := map[string]bool{}
		for _, r := range p.Results {
			seen[r.Method] = true
			switch r.Method {
			case "MBP":
				mbpRev = r.Revenue
			case "MILP":
				milpRev = r.Revenue
			}
		}
		for _, m := range append(MethodNames, "MILP") {
			if !seen[m] {
				t.Fatalf("n=%d missing method %s", p.N, m)
			}
		}
		// Proposition 3 bound and exactness ordering.
		if mbpRev > milpRev+1e-6*(1+milpRev) {
			t.Fatalf("n=%d: MBP %v above exact %v", p.N, mbpRev, milpRev)
		}
		if mbpRev < milpRev/2-1e-9 {
			t.Fatalf("n=%d: MBP %v below half exact %v", p.N, mbpRev, milpRev)
		}
	}
}

func TestRunFig6Shapes(t *testing.T) {
	// YearMSD (d=90) needs enough rows to be well-conditioned and enough
	// Monte-Carlo samples for the noise signal to rise above estimation
	// error; these are the smallest settings where every panel's shape is
	// meaningful.
	series, err := RunFig6(Fig6Config{Scale: 1e-3, GridN: 8, Samples: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// 3 regression datasets × 1 loss + 3 classification × 2 losses = 9.
	if len(series) != 9 {
		t.Fatalf("%d series", len(series))
	}
	byLoss := map[string]int{}
	for _, s := range series {
		byLoss[s.Loss]++
		// Monotone non-increasing with real improvement across the grid.
		for i := 1; i < len(s.Errs); i++ {
			if s.Errs[i] > s.Errs[i-1]+1e-12 {
				t.Fatalf("%s/%s not monotone", s.Dataset, s.Loss)
			}
		}
		if !(s.Errs[len(s.Errs)-1] < s.Errs[0]) {
			t.Fatalf("%s/%s error does not decrease: %v", s.Dataset, s.Loss, s.Errs)
		}
	}
	if byLoss["squared"] != 3 || byLoss["logistic"] != 3 || byLoss["zero-one"] != 3 {
		t.Fatalf("loss panel counts: %v", byLoss)
	}
}

func TestRunTable3(t *testing.T) {
	stats, err := RunTable3(1e-3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 6 {
		t.Fatalf("%d rows", len(stats))
	}
	var buf bytes.Buffer
	if err := WriteTable3(&buf, stats); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"Simulated1", "YearMSD", "CASP", "Simulated2", "CovType", "SUSY"} {
		if !strings.Contains(out, name) {
			t.Fatalf("table output missing %s:\n%s", name, out)
		}
	}
}

func TestRunFig5(t *testing.T) {
	results, err := RunFig5()
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string]Fig5Result{}
	for _, r := range results {
		byMethod[r.Method] = r
	}
	if byMethod["naive"].ArbitrageFree {
		t.Fatal("naive must show arbitrage")
	}
	if math.Abs(byMethod["optimal(MILP)"].Revenue-200) > 1e-9 {
		t.Fatalf("MILP revenue %v", byMethod["optimal(MILP)"].Revenue)
	}
	if math.Abs(byMethod["approx(MBP)"].Revenue-193.75) > 1e-9 {
		t.Fatalf("MBP revenue %v", byMethod["approx(MBP)"].Revenue)
	}
	var buf bytes.Buffer
	if err := WriteFig5(&buf, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "HAS ARBITRAGE") {
		t.Fatal("rendering misses arbitrage flag")
	}
}

func TestRunRelaxationGap(t *testing.T) {
	results, err := RunRelaxationGap(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ValueCurves())*len(DemandCurves()) {
		t.Fatalf("%d results", len(results))
	}
	for _, r := range results {
		if r.Ratio < 0.5-1e-9 || r.Ratio > 1+1e-6 {
			t.Fatalf("%s/%s ratio %v outside [0.5, 1]", r.ValueCurve, r.DemandCurve, r.Ratio)
		}
		// The paper's empirical finding: the gap is negligible.
		if r.Ratio < 0.8 {
			t.Logf("note: %s/%s ratio %v below 0.8 (allowed but unusual)", r.ValueCurve, r.DemandCurve, r.Ratio)
		}
	}
}

func TestRunErrorInverseAblation(t *testing.T) {
	results, err := RunErrorInverseAblation(2e-4, 400, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 { // three regression datasets
		t.Fatalf("%d results", len(results))
	}
	for _, r := range results {
		if r.MaxRelDiff > 0.15 {
			t.Fatalf("%s: MC vs analytic diff %v", r.Dataset, r.MaxRelDiff)
		}
	}
}

func TestRunTrainerAblation(t *testing.T) {
	results, err := RunTrainerAblation(2e-4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 12 { // 6 datasets × 2 trainers
		t.Fatalf("%d results", len(results))
	}
	// Exact/Newton fits must never lose badly to plain GD on the objective.
	byKey := map[string]float64{}
	for _, r := range results {
		byKey[r.Dataset+"/"+r.Trainer] = r.FinalLoss
	}
	for _, ds := range []string{"Simulated1", "YearMSD", "CASP"} {
		if byKey[ds+"/normal-equations"] > byKey[ds+"/gradient-descent"]+1e-6 {
			t.Fatalf("%s: closed form %v worse than GD %v", ds, byKey[ds+"/normal-equations"], byKey[ds+"/gradient-descent"])
		}
	}
}

func TestWriters(t *testing.T) {
	v, _ := ValueCurve("convex")
	d, _ := DemandCurve("uniform")
	panels, err := RunRevenueGain([]CurveSpec{v}, []CurveSpec{d}, 10)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRevenuePanels(&buf, "Figure 7", panels); err != nil {
		t.Fatal(err)
	}
	for _, m := range MethodNames {
		if !strings.Contains(buf.String(), m) {
			t.Fatalf("revenue rendering misses %s", m)
		}
	}
	rt, err := RunRuntime(v, d, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteRuntimePanels(&buf, "Figure 9", rt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MILP") {
		t.Fatal("runtime rendering misses MILP")
	}
	series, err := RunFig6(Fig6Config{Scale: 2e-4, GridN: 4, Samples: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteFig6(&buf, series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CovType") {
		t.Fatal("fig6 rendering misses dataset names")
	}
}
