package experiments

import "testing"

func TestRunABTestValidation(t *testing.T) {
	if _, err := RunABTest(ABConfig{BaselineName: "Quantum"}); err == nil {
		t.Fatal("unknown baseline accepted")
	}
}

func TestRunABTestMBPWins(t *testing.T) {
	for _, baseline := range []string{"OptC", "MaxC"} {
		res, err := RunABTest(ABConfig{Buyers: 3000, BaselineName: baseline, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		if res.Buyers != 3000 || res.Baseline != baseline {
			t.Fatalf("result header %+v", res)
		}
		if res.SalesMBP == 0 {
			t.Fatal("MBP made no sales")
		}
		// The DP never loses revenue to a constant baseline on the same
		// buyer stream (both price the same curves; DP is the optimizer).
		if res.RevenueMBP < res.RevenueBase-1e-9 {
			t.Fatalf("%s beat MBP live: %v vs %v", baseline, res.RevenueBase, res.RevenueMBP)
		}
		// Ledger-level accounting is consistent.
		if res.SalesMBP < res.SalesBase && res.RevenueMBP < res.RevenueBase {
			t.Fatalf("inconsistent A/B outcome %+v", res)
		}
	}
}

func TestRunABTestStrategyActuallyDiffers(t *testing.T) {
	res, err := RunABTest(ABConfig{Buyers: 2000, BaselineName: "MaxC", Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	// MaxC prices everything at the top valuation so it sells to almost
	// nobody; the ratio must be large.
	if res.RevenueRatio < 1.5 && res.RevenueBase > 0 {
		t.Fatalf("expected a big live gain over MaxC, got ratio %v (%+v)", res.RevenueRatio, res)
	}
}
