package experiments

import "testing"

func TestMechanismAblationCurvesCoincide(t *testing.T) {
	series, err := RunMechanismAblation(300, 6, 800, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("%d series", len(series))
	}
	names := map[string]bool{}
	for _, s := range series {
		names[s.Mechanism] = true
		// Each is monotone decreasing.
		for i := 1; i < len(s.Errs); i++ {
			if s.Errs[i] > s.Errs[i-1]+1e-12 {
				t.Fatalf("%s not monotone", s.Mechanism)
			}
		}
	}
	for _, want := range []string{"gaussian", "laplace", "uniform"} {
		if !names[want] {
			t.Fatalf("missing mechanism %s", want)
		}
	}
	// Equal-variance mechanisms give the same expected squared loss; 800
	// Monte-Carlo samples keep the spread within a few percent.
	if spread := MaxMechanismSpread(series); spread > 0.08 {
		t.Fatalf("mechanism spread %v", spread)
	}
}

func TestMaxMechanismSpreadEdgeCases(t *testing.T) {
	if MaxMechanismSpread(nil) != 0 {
		t.Fatal("nil series")
	}
	one := []MechanismSeries{{Mechanism: "g", Xs: []float64{1}, Errs: []float64{1}}}
	if MaxMechanismSpread(one) != 0 {
		t.Fatal("single series")
	}
	two := []MechanismSeries{
		{Mechanism: "a", Xs: []float64{1}, Errs: []float64{1}},
		{Mechanism: "b", Xs: []float64{1}, Errs: []float64{1.5}},
	}
	if got := MaxMechanismSpread(two); got != 0.5 {
		t.Fatalf("spread %v, want 0.5", got)
	}
}
