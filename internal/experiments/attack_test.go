package experiments

import (
	"math"
	"testing"

	"nimbus/internal/opt"
)

func TestAttackValidation(t *testing.T) {
	if _, err := RunArbitrageAttack(AttackConfig{Dim: 3}); err == nil {
		t.Fatal("nil price accepted")
	}
	price := func(x float64) float64 { return x }
	if _, err := RunArbitrageAttack(AttackConfig{Price: price}); err == nil {
		t.Fatal("zero dim accepted")
	}
	if _, err := RunArbitrageAttack(AttackConfig{Price: price, Dim: 3, Ks: []int{0}}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := RunArbitrageAttack(AttackConfig{Price: price, Dim: 3, Xs: []float64{-1}}); err == nil {
		t.Fatal("x<0 accepted")
	}
}

func TestAttackFailsAgainstDPPrices(t *testing.T) {
	// Price the Figure 5 market with the DP and mount the attack: no (k, x)
	// pair may profit.
	prob, err := opt.NewProblem([]opt.BuyerPoint{
		{X: 1, Value: 100, Mass: 0.25},
		{X: 2, Value: 150, Mass: 0.25},
		{X: 3, Value: 280, Mass: 0.25},
		{X: 4, Value: 350, Mass: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := opt.MaximizeRevenueDP(prob)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunArbitrageAttack(AttackConfig{
		Price: f.Price, Dim: 10,
		Ks: []int{2, 3, 4}, Xs: []float64{0.5, 1, 2}, Rounds: 100, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := MaxProfit(results); p > 1e-9 {
		t.Fatalf("arbitrage profit %v against DP prices", p)
	}
	// The averaged model really does hit the honest version's error.
	for _, r := range results {
		if math.Abs(r.MeasuredError-r.TargetError)/r.TargetError > 0.35 {
			t.Fatalf("k=%d x=%v: measured %v vs target %v", r.K, r.X, r.MeasuredError, r.TargetError)
		}
	}
}

func TestAttackSucceedsAgainstSuperadditivePrices(t *testing.T) {
	// A quadratic price is superadditive: buying two halves is cheaper than
	// one whole, so the attack must show positive profit somewhere.
	price := func(x float64) float64 { return x * x }
	results, err := RunArbitrageAttack(AttackConfig{
		Price: price, Dim: 5, Ks: []int{2}, Xs: []float64{1, 2}, Rounds: 50, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := MaxProfit(results); p <= 0 {
		t.Fatalf("no profit against superadditive prices: %+v", results)
	}
}

func TestAttackAveragingReducesError(t *testing.T) {
	price := func(x float64) float64 { return x }
	results, err := RunArbitrageAttack(AttackConfig{
		Price: price, Dim: 20, Ks: []int{1, 10}, Xs: []float64{1}, Rounds: 400, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var single, averaged float64
	for _, r := range results {
		switch r.K {
		case 1:
			single = r.MeasuredError
		case 10:
			averaged = r.MeasuredError
		}
	}
	if averaged >= single/5 {
		t.Fatalf("averaging 10 instances only improved %v -> %v", single, averaged)
	}
}
