package experiments

import (
	"fmt"
	"io"

	"nimbus/internal/dataset"
)

// The writers render each experiment in the layout of the paper's tables
// and figure annotations, so `nimbus-bench` output can be eyeballed against
// the original.

// WriteTable3 renders the dataset-statistics table.
func WriteTable3(w io.Writer, stats []dataset.Stats) error {
	if _, err := fmt.Fprintf(w, "Table 3: Dataset Statistics\n%-10s %-14s %10s %10s %6s\n",
		"DataSet", "Task", "n1", "n2", "d"); err != nil {
		return err
	}
	for _, s := range stats {
		if _, err := fmt.Fprintf(w, "%-10s %-14s %10d %10d %6d\n", s.Name, s.Task, s.N1, s.N2, s.D); err != nil {
			return err
		}
	}
	return nil
}

// WriteFig6 renders the error-transformation series, one block per panel.
func WriteFig6(w io.Writer, series []ErrorTransformSeries) error {
	if _, err := fmt.Fprintln(w, "Figure 6: Error Transformation Curves (expected error vs 1/NCP)"); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "\n%s / %s / %s loss\n  1/NCP:", s.Dataset, s.Model, s.Loss); err != nil {
			return err
		}
		for _, x := range s.Xs {
			if _, err := fmt.Fprintf(w, " %8.2f", x); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "\n  error:"); err != nil {
			return err
		}
		for _, e := range s.Errs {
			if _, err := fmt.Fprintf(w, " %8.4f", e); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteRevenuePanels renders Figure 7/8-style panels with gain multipliers.
func WriteRevenuePanels(w io.Writer, title string, panels []RevenuePanel) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	for _, p := range panels {
		if _, err := fmt.Fprintf(w, "\nvalue=%s demand=%s (%d price points)\n", p.ValueCurve, p.DemandCurve, len(p.Points)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  %-6s %12s %14s %10s\n", "method", "revenue", "affordability", "runtime"); err != nil {
			return err
		}
		for _, r := range p.Results {
			gainNote := ""
			if r.Method != "MBP" {
				if g, err := p.Gain(r.Method, "revenue"); err == nil {
					gainNote = fmt.Sprintf("  (MBP gain %.1fx)", g)
				}
			}
			if _, err := fmt.Fprintf(w, "  %-6s %12.4f %14.4f %9.2gs%s\n",
				r.Method, r.Revenue, r.Affordability, r.Seconds, gainNote); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteRuntimePanels renders Figure 9/10-style sweeps.
func WriteRuntimePanels(w io.Writer, title string, panels []RuntimePanel) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%4s %-6s %14s %12s %14s\n", "n", "method", "runtime(s)", "revenue", "affordability"); err != nil {
		return err
	}
	for _, p := range panels {
		for _, r := range p.Results {
			if _, err := fmt.Fprintf(w, "%4d %-6s %14.3g %12.4f %14.4f\n",
				p.N, r.Method, r.Seconds, r.Revenue, r.Affordability); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteFig5 renders the worked example.
func WriteFig5(w io.Writer, results []Fig5Result) error {
	if _, err := fmt.Fprintln(w, "Figure 5: Revenue optimization example (a=1..4, b=0.25, v=100/150/280/350)"); err != nil {
		return err
	}
	for _, r := range results {
		flag := "arbitrage-free"
		if !r.ArbitrageFree {
			flag = "HAS ARBITRAGE"
		}
		if _, err := fmt.Fprintf(w, "  %-14s prices=%v revenue=%.2f [%s]\n", r.Method, r.Prices, r.Revenue, flag); err != nil {
			return err
		}
	}
	return nil
}
