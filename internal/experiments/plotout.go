package experiments

import (
	"fmt"
	"io"

	"nimbus/internal/plot"
)

// Terminal-chart renderers for the figure experiments
// (`nimbus-bench -format plot`).

// PlotFig6 renders the error-transformation curves as one chart per
// reporting loss, overlaying the datasets — the terminal version of the
// paper's 3×3 panel grid.
func PlotFig6(w io.Writer, series []ErrorTransformSeries) error {
	byLoss := map[string][]ErrorTransformSeries{}
	var order []string
	for _, s := range series {
		if _, seen := byLoss[s.Loss]; !seen {
			order = append(order, s.Loss)
		}
		byLoss[s.Loss] = append(byLoss[s.Loss], s)
	}
	for _, loss := range order {
		var ps []plot.Series
		for _, s := range byLoss[loss] {
			ps = append(ps, plot.Series{Name: s.Dataset, Xs: s.Xs, Ys: s.Errs})
		}
		err := plot.Render(w, plot.Config{
			Title:  fmt.Sprintf("Figure 6: expected %s error vs 1/NCP", loss),
			XLabel: "1/NCP",
			YLabel: "expected error",
		}, ps...)
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// PlotRuntime renders a Figure 9/10-style log-scale runtime chart: one
// series per method over the number of price points.
func PlotRuntime(w io.Writer, title string, panels []RuntimePanel) error {
	byMethod := map[string]*plot.Series{}
	var order []string
	for _, p := range panels {
		for _, r := range p.Results {
			s, ok := byMethod[r.Method]
			if !ok {
				s = &plot.Series{Name: r.Method}
				byMethod[r.Method] = s
				order = append(order, r.Method)
			}
			sec := r.Seconds
			if sec <= 0 {
				sec = 1e-9 // clock resolution floor keeps the log axis valid
			}
			s.Xs = append(s.Xs, float64(p.N))
			s.Ys = append(s.Ys, sec)
		}
	}
	ps := make([]plot.Series, 0, len(order))
	for _, m := range order {
		ps = append(ps, *byMethod[m])
	}
	return plot.Render(w, plot.Config{
		Title:  title,
		XLabel: "number of price points",
		YLabel: "runtime seconds",
		LogY:   true,
	}, ps...)
}

// PlotPriceCurves renders the Figure 7/8 price panels: the per-method knot
// prices over the quality axis for each workload.
func PlotPriceCurves(w io.Writer, panels []RevenuePanel) error {
	for _, p := range panels {
		xs := make([]float64, len(p.Points))
		vals := make([]float64, len(p.Points))
		for i, pt := range p.Points {
			xs[i] = pt.X
			vals[i] = pt.Value
		}
		ps := []plot.Series{{Name: "buyer value", Xs: xs, Ys: vals}}
		for _, r := range p.Results {
			ps = append(ps, plot.Series{Name: r.Method, Xs: xs, Ys: r.Prices})
		}
		err := plot.Render(w, plot.Config{
			Title:  fmt.Sprintf("prices: value=%s demand=%s", p.ValueCurve, p.DemandCurve),
			XLabel: "quality 1/NCP",
			YLabel: "price",
		}, ps...)
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
