package experiments

import (
	"fmt"

	"nimbus/internal/noise"
	"nimbus/internal/rng"
	"nimbus/internal/vec"
)

// Arbitrage attack simulation: the averaging adversary of Theorem 5's proof
// made concrete. An attacker buys k independent noisy instances at quality
// x (total cost k·p(x)) and averages them. By unbiasedness the average has
// expected squared distance δ/k = 1/(k·x) from the optimal model — exactly
// the error of the honest version at quality k·x. The attack is profitable
// iff k·p(x) < p(k·x), i.e. iff p is NOT subadditive. Running the attack
// against a pricing function is therefore an end-to-end, empirical check of
// arbitrage-freeness.

// AttackResult is one (k, x) attack attempt.
type AttackResult struct {
	K int     `json:"k"`
	X float64 `json:"x"`
	// AttackCost is k·p(x), what the adversary pays.
	AttackCost float64 `json:"attack_cost"`
	// HonestCost is p(k·x), the price of the equivalent honest version.
	HonestCost float64 `json:"honest_cost"`
	// Profit is HonestCost − AttackCost; positive means arbitrage.
	Profit float64 `json:"profit"`
	// MeasuredError is the Monte-Carlo squared distance of the averaged
	// model from the optimum.
	MeasuredError float64 `json:"measured_error"`
	// TargetError is the honest version's expected error 1/(k·x).
	TargetError float64 `json:"target_error"`
}

// AttackConfig configures the simulation.
type AttackConfig struct {
	// Price is the pricing function under attack.
	Price func(float64) float64
	// Dim is the model dimensionality (noise is what matters; the optimal
	// model itself is irrelevant by translation invariance).
	Dim int
	// Ks are the purchase counts to try; empty means {2, 3, 5, 10}.
	Ks []int
	// Xs are the purchase qualities to try; empty means {1, 2, 5, 10}.
	Xs []float64
	// Rounds is the Monte-Carlo round count per attempt; 0 means 300.
	Rounds int
	// Seed drives the noise.
	Seed int64
}

// RunArbitrageAttack mounts the averaging attack against every (k, x) pair
// and reports costs and measured errors.
func RunArbitrageAttack(cfg AttackConfig) ([]AttackResult, error) {
	if cfg.Price == nil {
		return nil, fmt.Errorf("experiments: attack needs a pricing function")
	}
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("experiments: attack needs a positive dimension, got %d", cfg.Dim)
	}
	ks := cfg.Ks
	if len(ks) == 0 {
		ks = []int{2, 3, 5, 10}
	}
	xs := cfg.Xs
	if len(xs) == 0 {
		xs = []float64{1, 2, 5, 10}
	}
	rounds := cfg.Rounds
	if rounds == 0 {
		rounds = 300
	}
	src := rng.New(cfg.Seed)
	mech := noise.Gaussian{}
	optimal := vec.Zeros(cfg.Dim) // translation-invariant; origin suffices

	var out []AttackResult
	for _, k := range ks {
		if k < 1 {
			return nil, fmt.Errorf("experiments: attack needs k ≥ 1, got %d", k)
		}
		for _, x := range xs {
			if x <= 0 {
				return nil, fmt.Errorf("experiments: attack needs x > 0, got %v", x)
			}
			delta := 1 / x
			var errSum float64
			for r := 0; r < rounds; r++ {
				avg := vec.Zeros(cfg.Dim)
				for i := 0; i < k; i++ {
					vec.AXPY(avg, 1.0/float64(k), mech.Perturb(optimal, delta, src))
				}
				errSum += vec.SqNorm2(avg)
			}
			attackCost := float64(k) * cfg.Price(x)
			honestCost := cfg.Price(float64(k) * x)
			out = append(out, AttackResult{
				K:             k,
				X:             x,
				AttackCost:    attackCost,
				HonestCost:    honestCost,
				Profit:        honestCost - attackCost,
				MeasuredError: errSum / float64(rounds),
				TargetError:   delta / float64(k),
			})
		}
	}
	return out, nil
}

// MaxProfit returns the largest attack profit in the results (≤ 0 means
// the pricing survived every attempt).
func MaxProfit(results []AttackResult) float64 {
	best := 0.0
	first := true
	for _, r := range results {
		if first || r.Profit > best {
			best = r.Profit
			first = false
		}
	}
	return best
}
