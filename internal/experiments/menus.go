package experiments

import (
	"fmt"
	"io"

	"nimbus/internal/opt"
)

// Menu-size study: how much revenue does a short storefront menu retain
// compared with the full price grid? This extends the paper's
// number-of-price-values axis (Figures 9/10) from runtime to revenue.

// MenuPoint is one entry of the retention curve.
type MenuPoint struct {
	K               int     `json:"k"`
	RolledUpRevenue float64 `json:"rolled_up_revenue"`
	FullRevenue     float64 `json:"full_revenue"`
	Retention       float64 `json:"retention"`
}

// RunMenuStudy compresses a (value, demand) workload to each menu size.
func RunMenuStudy(valueName, demandName string, gridN int, ks []int) ([]MenuPoint, error) {
	value, err := ValueCurve(valueName)
	if err != nil {
		return nil, err
	}
	demand, err := DemandCurve(demandName)
	if err != nil {
		return nil, err
	}
	pts, err := GridPoints(value, demand, gridN)
	if err != nil {
		return nil, err
	}
	prob, err := opt.NewProblem(pts)
	if err != nil {
		return nil, err
	}
	out := make([]MenuPoint, 0, len(ks))
	for _, k := range ks {
		c, err := opt.CompressMenu(prob, k)
		if err != nil {
			return nil, fmt.Errorf("experiments: menu k=%d: %w", k, err)
		}
		out = append(out, MenuPoint{
			K:               len(c.Points),
			RolledUpRevenue: c.RolledUpRevenue,
			FullRevenue:     c.FullRevenue,
			Retention:       c.Retention(),
		})
	}
	return out, nil
}

// WriteMenuStudy renders the retention curve.
func WriteMenuStudy(w io.Writer, title string, points []MenuPoint) error {
	if _, err := fmt.Fprintf(w, "%s\n%6s %16s %16s %10s\n", title, "k", "menu revenue", "full revenue", "retention"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%6d %16.4f %16.4f %9.1f%%\n",
			p.K, p.RolledUpRevenue, p.FullRevenue, 100*p.Retention); err != nil {
			return err
		}
	}
	return nil
}
