package experiments

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	records, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return records
}

func TestWriteTable3CSV(t *testing.T) {
	stats, err := RunTable3(2e-4, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable3CSV(&buf, stats); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 7 { // header + 6 datasets
		t.Fatalf("%d records", len(records))
	}
	if records[0][0] != "dataset" {
		t.Fatalf("header %v", records[0])
	}
	for _, r := range records[1:] {
		if _, err := strconv.Atoi(r[2]); err != nil {
			t.Fatalf("n1 not an int: %v", r)
		}
	}
}

func TestWriteFig6CSV(t *testing.T) {
	series := []ErrorTransformSeries{
		{Dataset: "A", Model: "m", Loss: "squared", Xs: []float64{1, 2}, Errs: []float64{0.5, 0.25}},
	}
	var buf bytes.Buffer
	if err := WriteFig6CSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 3 {
		t.Fatalf("%d records", len(records))
	}
	if records[1][3] != "1" || records[2][4] != "0.25" {
		t.Fatalf("rows %v", records)
	}
}

func TestWriteRevenueAndRuntimeCSV(t *testing.T) {
	v, _ := ValueCurve("convex")
	d, _ := DemandCurve("uniform")
	panels, err := RunRevenueGain([]CurveSpec{v}, []CurveSpec{d}, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRevenuePanelsCSV(&buf, panels); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 1+5 { // header + 5 methods
		t.Fatalf("%d revenue records", len(records))
	}

	rt, err := RunRuntime(v, d, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteRuntimePanelsCSV(&buf, rt); err != nil {
		t.Fatal(err)
	}
	records = parseCSV(t, &buf)
	if len(records) != 1+2*6 { // header + 2 panels × 6 methods (incl MILP)
		t.Fatalf("%d runtime records", len(records))
	}
}

func TestWriteFig5CSV(t *testing.T) {
	results, err := RunFig5()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFig5CSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 1+5*4 { // header + 5 methods × 4 qualities
		t.Fatalf("%d records", len(records))
	}
}
