package experiments

import "time"

// Clock is the time source the experiment harness stamps solver timings
// with (the Seconds/Micros fields of the Figure 7–14 results). Replays
// inject a fake via SetClock so a rerun of a recorded experiment is
// byte-for-byte reproducible; everything else in this package is already
// deterministic given a seed.
type Clock func() time.Time

// clock is the package's injected time source. This is the single place
// the experiment harness is allowed to touch the wall clock; every timing
// in the package flows through it via stopwatch.
//
//lint:ignore no-wallclock the one sanctioned wall-clock binding; replays swap it out with SetClock
var clock Clock = time.Now

// SetClock installs c as the package time source and returns a function
// that restores the previous one. A nil c leaves the current source in
// place. Typical replay/test use:
//
//	defer experiments.SetClock(fake)()
//
// SetClock is not safe for use concurrently with running experiments; it
// is a harness-setup knob, not a runtime switch.
func SetClock(c Clock) (restore func()) {
	prev := clock
	if c != nil {
		clock = c
	}
	return func() { clock = prev }
}

// stopwatch starts timing on the package clock and returns a function that
// reports the elapsed duration, replacing the t0 := time.Now() /
// time.Since(t0) pattern at every solver-timing call site.
func stopwatch() func() time.Duration {
	start := clock()
	return func() time.Duration { return clock().Sub(start) }
}
