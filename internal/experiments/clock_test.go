package experiments

import (
	"testing"
	"time"

	"nimbus/internal/opt"
)

// tickingClock advances a fixed step per reading, making every stopwatch
// interval exactly one step regardless of host speed.
func tickingClock(step time.Duration) Clock {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestSetClockRestores(t *testing.T) {
	fake := tickingClock(time.Second)
	restore := SetClock(fake)
	if got := stopwatch()(); got != time.Second {
		restore()
		t.Fatalf("stopwatch under fake clock = %v, want 1s", got)
	}
	restore()
	// Back on the real clock a stopwatch interval is tiny, not a clean
	// fake-clock second.
	if got := stopwatch()(); got < 0 || got == time.Second {
		t.Fatalf("stopwatch after restore = %v, want a real (sub-second) reading", got)
	}
	// A nil clock is a no-op, not a panic source.
	SetClock(nil)()
}

// TestCompareMethodsDeterministicTimings replays the Figure 5 workload
// under an injected clock: every solver's Seconds field must come out as
// exactly one fake-clock step, proving the harness timings flow through
// the clock and nothing reads time.Now behind its back.
func TestCompareMethodsDeterministicTimings(t *testing.T) {
	defer SetClock(tickingClock(250 * time.Millisecond))()
	prob, err := opt.NewProblem([]opt.BuyerPoint{
		{X: 1, Value: 100, Mass: 0.25},
		{X: 2, Value: 150, Mass: 0.25},
		{X: 3, Value: 280, Mass: 0.25},
		{X: 4, Value: 350, Mass: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := CompareMethods(prob, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(MethodNames)+1 {
		t.Fatalf("got %d results, want %d methods plus MILP", len(results), len(MethodNames))
	}
	for _, r := range results {
		if r.Seconds != 0.25 {
			t.Errorf("%s Seconds = %v under a 250ms ticking clock, want exactly 0.25", r.Method, r.Seconds)
		}
	}
}
