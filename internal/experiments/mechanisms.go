package experiments

import (
	"fmt"

	"nimbus/internal/dataset"
	"nimbus/internal/ml"
	"nimbus/internal/noise"
	"nimbus/internal/pricing"
	"nimbus/internal/rng"
)

// Mechanism ablation: Section 4 fixes the Gaussian mechanism for its
// theory, but Examples 1-2 note that Laplace or uniform noise calibrated to
// the same variance also satisfy the framework's restrictions. This
// experiment overlays the three mechanisms' error curves on the same model
// and dataset: with equal total variance δ, the expected squared loss is
// mechanism-independent (it only depends on second moments), so the curves
// should coincide — which is why the market can swap mechanisms without
// re-deriving prices.

// MechanismSeries is one mechanism's error curve.
type MechanismSeries struct {
	Mechanism string    `json:"mechanism"`
	Xs        []float64 `json:"xs"`
	Errs      []float64 `json:"errs"`
}

// RunMechanismAblation trains linear regression on the CASP stand-in and
// measures the squared-loss error curve under each mechanism.
func RunMechanismAblation(rows, gridN, samples int, seed int64) ([]MechanismSeries, error) {
	if rows == 0 {
		rows = 400
	}
	if gridN == 0 {
		gridN = 10
	}
	if samples == 0 {
		samples = 500
	}
	d, err := dataset.StandIn("CASP", dataset.GenConfig{Rows: rows, Seed: seed})
	if err != nil {
		return nil, err
	}
	pair, err := dataset.NewPair(d, rng.New(seed+1))
	if err != nil {
		return nil, err
	}
	optimal, err := ml.LinearRegression{Ridge: 1e-3}.Fit(pair.Train)
	if err != nil {
		return nil, err
	}
	grid := pricing.DefaultGrid(gridN)
	mechs := []noise.Mechanism{noise.Gaussian{}, noise.Laplace{}, noise.Uniform{}}
	out := make([]MechanismSeries, 0, len(mechs))
	for i, mech := range mechs {
		curve, err := pricing.MonteCarloTransform(pricing.TransformConfig{
			Optimal:   optimal,
			Loss:      ml.SquaredLoss{},
			Data:      pair.Test,
			Mechanism: mech,
			Xs:        grid,
			Samples:   samples,
			Seed:      seed + int64(i) + 2,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: mechanism %s: %w", mech.Name(), err)
		}
		out = append(out, MechanismSeries{Mechanism: mech.Name(), Xs: curve.Xs, Errs: curve.Errs})
	}
	return out, nil
}

// MaxMechanismSpread returns the largest relative disagreement between the
// mechanisms' curves at any shared grid point.
func MaxMechanismSpread(series []MechanismSeries) float64 {
	if len(series) < 2 {
		return 0
	}
	spread := 0.0
	for i := range series[0].Xs {
		lo, hi := series[0].Errs[i], series[0].Errs[i]
		for _, s := range series[1:] {
			if s.Errs[i] < lo {
				lo = s.Errs[i]
			}
			if s.Errs[i] > hi {
				hi = s.Errs[i]
			}
		}
		if lo > 0 {
			if r := (hi - lo) / lo; r > spread {
				spread = r
			}
		}
	}
	return spread
}
