package experiments

import (
	"math"

	"nimbus/internal/dataset"
	"nimbus/internal/ml"
	"nimbus/internal/opt"
	"nimbus/internal/pricing"
)

// The ablations DESIGN.md calls out: how much the subadditivity relaxation
// costs, how the analytic error-inverse compares with Monte Carlo, and how
// the trainers trade off.

// RelaxationGapResult reports the DP-vs-exact revenue ratio for one
// workload (Proposition 3 guarantees ≥ 0.5; the paper observes ≈ 1).
type RelaxationGapResult struct {
	ValueCurve  string  `json:"value_curve"`
	DemandCurve string  `json:"demand_curve"`
	N           int     `json:"n"`
	DPRevenue   float64 `json:"dp_revenue"`
	ExactRev    float64 `json:"exact_revenue"`
	Ratio       float64 `json:"ratio"`
}

// RunRelaxationGap measures the relaxation gap across the curve families at
// a brute-force-feasible point count.
func RunRelaxationGap(n int) ([]RelaxationGapResult, error) {
	var out []RelaxationGapResult
	for _, v := range ValueCurves() {
		for _, d := range DemandCurves() {
			pts, err := GridPoints(v, d, n)
			if err != nil {
				return nil, err
			}
			prob, err := opt.NewProblem(pts)
			if err != nil {
				return nil, err
			}
			_, dpRev, err := opt.MaximizeRevenueDP(prob)
			if err != nil {
				return nil, err
			}
			_, exact, err := opt.MaximizeRevenueBruteForce(prob)
			if err != nil {
				return nil, err
			}
			ratio := 1.0
			if exact > 0 {
				ratio = dpRev / exact
			}
			out = append(out, RelaxationGapResult{
				ValueCurve: v.Name, DemandCurve: d.Name, N: n,
				DPRevenue: dpRev, ExactRev: exact, Ratio: ratio,
			})
		}
	}
	return out, nil
}

// ErrorInverseResult compares the analytic squared-loss transformation with
// the Monte-Carlo estimate on the same grid.
type ErrorInverseResult struct {
	Dataset        string  `json:"dataset"`
	MaxRelDiff     float64 `json:"max_rel_diff"`
	AnalyticMicros float64 `json:"analytic_micros"`
	MonteCarloMs   float64 `json:"monte_carlo_ms"`
}

// RunErrorInverseAblation measures accuracy and speed of the analytic
// transformation against Monte Carlo on the regression datasets.
func RunErrorInverseAblation(scale float64, samples int, seed int64) ([]ErrorInverseResult, error) {
	if scale == 0 {
		scale = 1e-3
	}
	if samples == 0 {
		samples = 500
	}
	pairs, err := dataset.Suite(scale, seed)
	if err != nil {
		return nil, err
	}
	grid := pricing.DefaultGrid(20)
	var out []ErrorInverseResult
	for _, pair := range pairs {
		if pair.Train.Task != dataset.Regression {
			continue
		}
		loss := ml.SquaredLoss{}
		optimal, err := ml.LinearRegression{Ridge: 1e-6}.Fit(pair.Train)
		if err != nil {
			return nil, err
		}
		analyticElapsed := stopwatch()
		analytic, err := pricing.AnalyticSquaredTransform(optimal, loss, pair.Test, grid)
		analyticTime := analyticElapsed()
		if err != nil {
			return nil, err
		}
		mcElapsed := stopwatch()
		mc, err := pricing.MonteCarloTransform(pricing.TransformConfig{
			Optimal: optimal, Loss: loss, Data: pair.Test,
			Xs: grid, Samples: samples, Seed: seed,
		})
		mcTime := mcElapsed()
		if err != nil {
			return nil, err
		}
		var maxRel float64
		for i := range grid {
			if analytic.Errs[i] > 0 {
				rel := math.Abs(mc.Errs[i]-analytic.Errs[i]) / analytic.Errs[i]
				if rel > maxRel {
					maxRel = rel
				}
			}
		}
		out = append(out, ErrorInverseResult{
			Dataset:        pair.Name,
			MaxRelDiff:     maxRel,
			AnalyticMicros: float64(analyticTime.Microseconds()),
			MonteCarloMs:   float64(mcTime.Milliseconds()),
		})
	}
	return out, nil
}

// TrainerResult compares two trainers for the same objective.
type TrainerResult struct {
	Dataset   string  `json:"dataset"`
	Model     string  `json:"model"`
	Trainer   string  `json:"trainer"`
	FinalLoss float64 `json:"final_loss"`
	Seconds   float64 `json:"seconds"`
}

// RunTrainerAblation times Newton/closed-form fits against plain gradient
// descent on the suite.
func RunTrainerAblation(scale float64, seed int64) ([]TrainerResult, error) {
	if scale == 0 {
		scale = 1e-3
	}
	pairs, err := dataset.Suite(scale, seed)
	if err != nil {
		return nil, err
	}
	var out []TrainerResult
	for _, pair := range pairs {
		switch pair.Train.Task {
		case dataset.Regression:
			loss := ml.SquaredLoss{Reg: 1e-4}
			fitElapsed := stopwatch()
			w, err := ml.LinearRegression{Ridge: 1e-4}.Fit(pair.Train)
			if err != nil {
				return nil, err
			}
			out = append(out, TrainerResult{pair.Name, "linear-regression", "normal-equations", loss.Eval(w, pair.Train), fitElapsed().Seconds()})
			gdElapsed := stopwatch()
			wg, err := ml.GradientDescent{MaxIter: 500, Step: 0.5}.Minimize(loss, pair.Train)
			if err != nil {
				return nil, err
			}
			out = append(out, TrainerResult{pair.Name, "linear-regression", "gradient-descent", loss.Eval(wg, pair.Train), gdElapsed().Seconds()})
		case dataset.Classification:
			loss := ml.LogisticLoss{Reg: 1e-4}
			fitElapsed := stopwatch()
			w, err := ml.LogisticRegression{Ridge: 1e-4}.Fit(pair.Train)
			if err != nil {
				return nil, err
			}
			out = append(out, TrainerResult{pair.Name, "logistic-regression", "newton", loss.Eval(w, pair.Train), fitElapsed().Seconds()})
			gdElapsed := stopwatch()
			wg, err := ml.GradientDescent{MaxIter: 500, Step: 0.5}.Minimize(loss, pair.Train)
			if err != nil {
				return nil, err
			}
			out = append(out, TrainerResult{pair.Name, "logistic-regression", "gradient-descent", loss.Eval(wg, pair.Train), gdElapsed().Seconds()})
		}
	}
	return out, nil
}

// Fig5Result is the worked example of Figure 5 rendered as numbers.
type Fig5Result struct {
	Method  string    `json:"method"`
	Prices  []float64 `json:"prices"`
	Revenue float64   `json:"revenue"`
	// ArbitrageFree reports whether the knots satisfy the Theorem 5 chain.
	ArbitrageFree bool `json:"arbitrage_free"`
}

// RunFig5 reproduces the paper's illustrating example: four versions at
// qualities 1..4, valuations 100/150/280/350, uniform mass.
func RunFig5() ([]Fig5Result, error) {
	prob, err := opt.NewProblem([]opt.BuyerPoint{
		{X: 1, Value: 100, Mass: 0.25},
		{X: 2, Value: 150, Mass: 0.25},
		{X: 3, Value: 280, Mass: 0.25},
		{X: 4, Value: 350, Mass: 0.25},
	})
	if err != nil {
		return nil, err
	}
	var out []Fig5Result

	knots := func(f *pricing.Function) []float64 {
		pts := f.Points()
		zs := make([]float64, len(pts))
		for i, p := range pts {
			zs[i] = p.Price
		}
		return zs
	}

	naive, err := opt.Naive(prob)
	if err != nil {
		return nil, err
	}
	out = append(out, Fig5Result{
		Method: "naive", Prices: knots(naive),
		Revenue:       prob.Revenue(naive.Price),
		ArbitrageFree: naive.Validate() == nil,
	})
	for _, b := range []struct {
		name  string
		build func(*opt.Problem) (*pricing.Function, error)
	}{{"constant(OptC)", opt.OptC}, {"linear", opt.Lin}} {
		f, err := b.build(prob)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig5Result{
			Method: b.name, Prices: knots(f),
			Revenue:       prob.Revenue(f.Price),
			ArbitrageFree: f.Validate() == nil,
		})
	}
	bfPrices, bfRev, err := opt.MaximizeRevenueBruteForce(prob)
	if err != nil {
		return nil, err
	}
	out = append(out, Fig5Result{Method: "optimal(MILP)", Prices: bfPrices, Revenue: bfRev, ArbitrageFree: true})
	dp, dpRev, err := opt.MaximizeRevenueDP(prob)
	if err != nil {
		return nil, err
	}
	out = append(out, Fig5Result{
		Method: "approx(MBP)", Prices: knots(dp), Revenue: dpRev,
		ArbitrageFree: dp.Validate() == nil,
	})
	return out, nil
}
