package experiments

import (
	"fmt"

	"nimbus/internal/dataset"
	"nimbus/internal/market"
	"nimbus/internal/ml"
	"nimbus/internal/opt"
	"nimbus/internal/pricing"
	"nimbus/internal/rng"
)

// Live A/B test: two brokers list the same dataset and model, one priced by
// the MBP dynamic program and one by a baseline strategy, and the same
// stream of simulated buyers shops at both. Unlike the analytic comparison
// of Figures 7/8 this runs through the full market machinery — error
// transformation, price–error curves, actual purchases and ledgers — so it
// validates the whole pipe, not just the optimizer.

// ABConfig configures the live comparison.
type ABConfig struct {
	// Buyers is the number of simulated buyers (0 means 5000).
	Buyers int
	// BaselineName picks the B side: "Lin", "MaxC", "MedC" or "OptC"
	// (default "OptC").
	BaselineName string
	// Rows sizes the listed dataset (0 means 400).
	Rows int
	// Seed drives everything.
	Seed int64
}

// ABResult is the outcome of a live A/B run.
type ABResult struct {
	Baseline     string  `json:"baseline"`
	Buyers       int     `json:"buyers"`
	SalesMBP     int     `json:"sales_mbp"`
	SalesBase    int     `json:"sales_baseline"`
	RevenueMBP   float64 `json:"revenue_mbp"`
	RevenueBase  float64 `json:"revenue_baseline"`
	RevenueRatio float64 `json:"revenue_ratio"` // MBP / baseline
}

// RunABTest lists the two offerings and runs the shared buyer stream.
func RunABTest(cfg ABConfig) (*ABResult, error) {
	if cfg.Buyers == 0 {
		cfg.Buyers = 5000
	}
	if cfg.Rows == 0 {
		cfg.Rows = 400
	}
	if cfg.BaselineName == "" {
		cfg.BaselineName = "OptC"
	}
	strategies := map[string]func(*opt.Problem) (*pricing.Function, error){
		"Lin": opt.Lin, "MaxC": opt.MaxC, "MedC": opt.MedC, "OptC": opt.OptC,
	}
	baseline, ok := strategies[cfg.BaselineName]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown baseline %q", cfg.BaselineName)
	}

	d, err := dataset.StandIn("CASP", dataset.GenConfig{Rows: cfg.Rows, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	pair, err := dataset.NewPair(d, rng.New(cfg.Seed+1))
	if err != nil {
		return nil, err
	}
	research := market.Research{
		Value:  func(e float64) float64 { return 100 / (1 + e*e/4) },
		Demand: func(e float64) float64 { return 1 },
	}
	list := func(b *market.Broker, strategy func(*opt.Problem) (*pricing.Function, error)) (*market.Offering, error) {
		seller, err := market.NewSeller(pair, research)
		if err != nil {
			return nil, err
		}
		return b.List(market.OfferingConfig{
			Seller:   seller,
			Model:    ml.LinearRegression{Ridge: 1e-3},
			Grid:     pricing.DefaultGrid(25),
			Samples:  120,
			Seed:     cfg.Seed + 2, // identical curves on both sides
			Strategy: strategy,
		})
	}
	brokerA := market.NewBroker(cfg.Seed + 3)
	offerA, err := list(brokerA, nil) // MBP DP
	if err != nil {
		return nil, err
	}
	brokerB := market.NewBroker(cfg.Seed + 3)
	offerB, err := list(brokerB, baseline)
	if err != nil {
		return nil, err
	}

	// The shared buyer stream: each buyer samples a desired version
	// uniformly from the offered grid and holds the research valuation for
	// the version's expected error; they buy wherever they can afford it.
	curveA, err := offerA.Curve("squared")
	if err != nil {
		return nil, err
	}
	curveB, err := offerB.Curve("squared")
	if err != nil {
		return nil, err
	}
	ptsA := curveA.Points()
	src := rng.New(cfg.Seed + 4)
	for i := 0; i < cfg.Buyers; i++ {
		idx := src.Intn(len(ptsA))
		want := ptsA[idx]
		valuation := research.Value(want.Error)
		if curveA.PriceAt(want.X) <= valuation {
			if _, err := brokerA.BuyAtQuality(offerA.Name, "squared", want.X); err != nil {
				return nil, err
			}
		}
		if curveB.PriceAt(want.X) <= valuation {
			if _, err := brokerB.BuyAtQuality(offerB.Name, "squared", want.X); err != nil {
				return nil, err
			}
		}
	}

	res := &ABResult{
		Baseline:    cfg.BaselineName,
		Buyers:      cfg.Buyers,
		SalesMBP:    len(brokerA.Sales()),
		SalesBase:   len(brokerB.Sales()),
		RevenueMBP:  brokerA.TotalRevenue(),
		RevenueBase: brokerB.TotalRevenue(),
	}
	if res.RevenueBase > 0 {
		res.RevenueRatio = res.RevenueMBP / res.RevenueBase
	}
	return res, nil
}
