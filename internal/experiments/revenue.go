package experiments

import (
	"fmt"

	"nimbus/internal/opt"
	"nimbus/internal/pricing"
)

// MethodResult is one bar of a revenue/affordability panel: how a pricing
// method performed on one buyer-curve workload.
type MethodResult struct {
	Method        string    `json:"method"`
	Revenue       float64   `json:"revenue"`
	Affordability float64   `json:"affordability"`
	Seconds       float64   `json:"seconds"`
	Prices        []float64 `json:"prices"` // knot prices over the quality grid
}

// MethodNames lists the comparison order used throughout the figures.
var MethodNames = []string{"MBP", "Lin", "MaxC", "MedC", "OptC"}

// CompareMethods prices the problem with MBP (the DP) and the four
// baselines, optionally also the exact exponential MILP search, timing each
// solver. This is the engine behind Figures 7–14.
func CompareMethods(p *opt.Problem, includeMILP bool) ([]MethodResult, error) {
	var out []MethodResult
	knots := func(price func(float64) float64) []float64 {
		zs := make([]float64, p.N())
		for i, pt := range p.Points() {
			zs[i] = price(pt.X)
		}
		return zs
	}

	dpElapsed := stopwatch()
	dpFunc, _, err := opt.MaximizeRevenueDP(p)
	dpTime := dpElapsed()
	if err != nil {
		return nil, fmt.Errorf("experiments: MBP: %w", err)
	}
	out = append(out, MethodResult{
		Method:        "MBP",
		Revenue:       p.Revenue(dpFunc.Price),
		Affordability: p.Affordability(dpFunc.Price),
		Seconds:       dpTime.Seconds(),
		Prices:        knots(dpFunc.Price),
	})

	baselines := []struct {
		name  string
		build func(*opt.Problem) (*pricing.Function, error)
	}{
		{"Lin", opt.Lin},
		{"MaxC", opt.MaxC},
		{"MedC", opt.MedC},
		{"OptC", opt.OptC},
	}
	for _, b := range baselines {
		buildElapsed := stopwatch()
		f, err := b.build(p)
		elapsed := buildElapsed()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", b.name, err)
		}
		out = append(out, MethodResult{
			Method:        b.name,
			Revenue:       p.Revenue(f.Price),
			Affordability: p.Affordability(f.Price),
			Seconds:       elapsed.Seconds(),
			Prices:        knots(f.Price),
		})
	}

	if includeMILP {
		milpElapsed := stopwatch()
		prices, rev, err := opt.MaximizeRevenueBruteForce(p)
		elapsed := milpElapsed()
		if err != nil {
			return nil, fmt.Errorf("experiments: MILP: %w", err)
		}
		aff := 0.0
		var total float64
		for i, pt := range p.Points() {
			total += pt.Mass
			if prices[i] <= pt.Value+1e-9 {
				aff += pt.Mass
			}
		}
		if total > 0 {
			aff /= total
		}
		out = append(out, MethodResult{
			Method:        "MILP",
			Revenue:       rev,
			Affordability: aff,
			Seconds:       elapsed.Seconds(),
			Prices:        prices,
		})
	}
	return out, nil
}

// RevenuePanel is one column of Figures 7/8/11/12: a (value, demand)
// workload with the per-method outcomes and the MBP gain multipliers.
type RevenuePanel struct {
	ValueCurve  string           `json:"value_curve"`
	DemandCurve string           `json:"demand_curve"`
	Points      []opt.BuyerPoint `json:"points"`
	Results     []MethodResult   `json:"results"`
}

// Gain returns MBP's multiplier over the named method for the given metric
// ("revenue" or "affordability"), the headline numbers of Figures 7/8
// ("up to 81.2x revenue gains and up to 121.1x affordability gains").
func (p *RevenuePanel) Gain(method, metric string) (float64, error) {
	var mbp, other float64
	found := false
	for _, r := range p.Results {
		var v float64
		switch metric {
		case "revenue":
			v = r.Revenue
		case "affordability":
			v = r.Affordability
		default:
			return 0, fmt.Errorf("experiments: unknown metric %q", metric)
		}
		if r.Method == "MBP" {
			mbp = v
		}
		if r.Method == method {
			other = v
			found = true
		}
	}
	if !found {
		return 0, fmt.Errorf("experiments: method %q not in panel", method)
	}
	if other == 0 {
		if mbp == 0 {
			return 1, nil
		}
		return 0, fmt.Errorf("experiments: %s has zero %s; gain unbounded", method, metric)
	}
	return mbp / other, nil
}

// RunRevenueGain runs the Figure 7/8-style study: one panel per
// (value, demand) combination over an n-point quality grid.
func RunRevenueGain(values, demands []CurveSpec, n int) ([]RevenuePanel, error) {
	var panels []RevenuePanel
	for _, v := range values {
		for _, d := range demands {
			pts, err := GridPoints(v, d, n)
			if err != nil {
				return nil, err
			}
			prob, err := opt.NewProblem(pts)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", v.Name, d.Name, err)
			}
			results, err := CompareMethods(prob, false)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", v.Name, d.Name, err)
			}
			panels = append(panels, RevenuePanel{
				ValueCurve:  v.Name,
				DemandCurve: d.Name,
				Points:      pts,
				Results:     results,
			})
		}
	}
	return panels, nil
}

// RuntimePanel is one x-axis position of Figures 9/10/13/14: the solver
// outcomes at a given number of price points.
type RuntimePanel struct {
	N       int            `json:"n"`
	Results []MethodResult `json:"results"`
}

// RunRuntime runs the Figure 9/10-style study for one (value, demand) pair:
// sweep the number of price points and time every method including the
// exact MILP search.
func RunRuntime(value, demand CurveSpec, ns []int) ([]RuntimePanel, error) {
	var panels []RuntimePanel
	for _, n := range ns {
		pts, err := GridPoints(value, demand, n)
		if err != nil {
			return nil, err
		}
		prob, err := opt.NewProblem(pts)
		if err != nil {
			return nil, fmt.Errorf("experiments: n=%d: %w", n, err)
		}
		results, err := CompareMethods(prob, n <= 14)
		if err != nil {
			return nil, fmt.Errorf("experiments: n=%d: %w", n, err)
		}
		panels = append(panels, RuntimePanel{N: n, Results: results})
	}
	return panels, nil
}
