package experiments

import (
	"fmt"

	"nimbus/internal/dataset"
	"nimbus/internal/ml"
	"nimbus/internal/pricing"
	"nimbus/internal/rng"
)

// ErrorTransformSeries is one panel of Figure 6: the expected error of a
// model on one dataset as a function of 1/NCP, for one reporting loss.
type ErrorTransformSeries struct {
	Dataset string    `json:"dataset"`
	Model   string    `json:"model"`
	Loss    string    `json:"loss"`
	Xs      []float64 `json:"xs"`
	Errs    []float64 `json:"errs"`
}

// Fig6Config controls the Figure 6 reproduction.
type Fig6Config struct {
	// Scale scales the Table 3 dataset sizes; 0 means 1e-3 (laptop scale).
	Scale float64
	// GridN is the number of 1/NCP grid points; 0 means 20.
	GridN int
	// Samples is the Monte-Carlo model count per grid point; 0 means 200
	// (the paper uses 2000; the shape converges much earlier).
	Samples int
	// Seed drives dataset generation and the Monte Carlo.
	Seed int64
}

// RunFig6 trains the paper's model on each of the six Table 3 datasets and
// measures the expected test error against 1/NCP under every reporting loss
// of Table 2: square loss for the regression datasets (row 1 of the
// figure), logistic loss (row 2) and 0/1 error (row 3) for the
// classification datasets.
func RunFig6(cfg Fig6Config) ([]ErrorTransformSeries, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1e-3
	}
	if cfg.GridN == 0 {
		cfg.GridN = 20
	}
	if cfg.Samples == 0 {
		cfg.Samples = 200
	}
	pairs, err := dataset.Suite(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed + 1)
	grid := pricing.DefaultGrid(cfg.GridN)

	var out []ErrorTransformSeries
	for _, pair := range pairs {
		var model ml.Model
		switch pair.Train.Task {
		case dataset.Regression:
			model = ml.LinearRegression{Ridge: 1e-4}
		case dataset.Classification:
			model = ml.LogisticRegression{Ridge: 1e-4}
		}
		optimal, err := model.Fit(pair.Train)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig6 %s: %w", pair.Name, err)
		}
		for _, loss := range ml.DefaultReportLosses(model) {
			curve, err := pricing.MonteCarloTransform(pricing.TransformConfig{
				Optimal: optimal,
				Loss:    loss,
				Data:    pair.Test,
				Xs:      grid,
				Samples: cfg.Samples,
				Seed:    src.Int63(),
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: fig6 %s/%s: %w", pair.Name, loss.Name(), err)
			}
			out = append(out, ErrorTransformSeries{
				Dataset: pair.Name,
				Model:   model.Name(),
				Loss:    loss.Name(),
				Xs:      curve.Xs,
				Errs:    curve.Errs,
			})
		}
	}
	return out, nil
}

// RunTable3 generates the six datasets and reports their statistics.
func RunTable3(scale float64, seed int64) ([]dataset.Stats, error) {
	if scale == 0 {
		scale = 1e-3
	}
	pairs, err := dataset.Suite(scale, seed)
	if err != nil {
		return nil, err
	}
	stats := make([]dataset.Stats, len(pairs))
	for i, p := range pairs {
		stats[i] = p.Stats()
	}
	return stats, nil
}
