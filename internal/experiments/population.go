package experiments

import (
	"fmt"
	"math"

	"nimbus/internal/opt"
	"nimbus/internal/rng"
)

// Population simulation: an end-to-end validation that the expected revenue
// the DP optimizes for is what a stream of simulated buyers actually pays.
// Each simulated buyer samples a desired version from the demand
// distribution and purchases it iff the posted price is within their
// valuation — exactly the T_BV buying model of Section 5.

// PopulationResult summarizes one simulation run.
type PopulationResult struct {
	Buyers          int     `json:"buyers"`
	Sales           int     `json:"sales"`
	RealizedRevenue float64 `json:"realized_revenue"`
	ExpectedRevenue float64 `json:"expected_revenue"` // per unit mass × buyers
	RelativeError   float64 `json:"relative_error"`
	RealizedAfford  float64 `json:"realized_affordability"`
	ExpectedAfford  float64 `json:"expected_affordability"`
}

// SimulatePopulation draws buyers from the problem's demand distribution
// and sells to them with the given pricing function.
func SimulatePopulation(p *opt.Problem, price func(float64) float64, buyers int, src *rng.Source) (*PopulationResult, error) {
	if buyers <= 0 {
		return nil, fmt.Errorf("experiments: need a positive buyer count, got %d", buyers)
	}
	pts := p.Points()
	var total float64
	for _, pt := range pts {
		total += pt.Mass
	}
	if total == 0 {
		return nil, fmt.Errorf("experiments: zero total demand mass")
	}
	// Cumulative distribution over versions.
	cum := make([]float64, len(pts))
	run := 0.0
	for i, pt := range pts {
		run += pt.Mass / total
		cum[i] = run
	}

	var revenue float64
	sales := 0
	for b := 0; b < buyers; b++ {
		u := src.Float64()
		idx := len(pts) - 1
		for i, c := range cum {
			if u <= c {
				idx = i
				break
			}
		}
		want := pts[idx]
		if cost := price(want.X); cost <= want.Value+1e-9 {
			revenue += cost
			sales++
		}
	}
	return &PopulationResult{
		Buyers:          buyers,
		Sales:           sales,
		RealizedRevenue: revenue,
		ExpectedRevenue: p.Revenue(price) / total * float64(buyers),
		RelativeError:   relErr(revenue, p.Revenue(price)/total*float64(buyers)),
		RealizedAfford:  float64(sales) / float64(buyers),
		ExpectedAfford:  p.Affordability(price),
	}, nil
}

func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// RunPopulation builds the (value, demand) workload, prices it with the
// DP, and simulates the buyer stream.
func RunPopulation(valueName, demandName string, gridN, buyers int, seed int64) (*PopulationResult, error) {
	value, err := ValueCurve(valueName)
	if err != nil {
		return nil, err
	}
	demand, err := DemandCurve(demandName)
	if err != nil {
		return nil, err
	}
	pts, err := GridPoints(value, demand, gridN)
	if err != nil {
		return nil, err
	}
	prob, err := opt.NewProblem(pts)
	if err != nil {
		return nil, err
	}
	f, _, err := opt.MaximizeRevenueDP(prob)
	if err != nil {
		return nil, err
	}
	return SimulatePopulation(prob, f.Price, buyers, rng.New(seed))
}
