package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"nimbus/internal/dataset"
)

// CSV emitters: every figure's series in machine-readable form, so the
// plots can be regenerated with any external tool
// (`nimbus-bench -format csv`).

func writeRows(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: writing CSV header: %w", err)
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return fmt.Errorf("experiments: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteTable3CSV emits the dataset statistics.
func WriteTable3CSV(w io.Writer, stats []dataset.Stats) error {
	rows := make([][]string, len(stats))
	for i, s := range stats {
		rows[i] = []string{s.Name, s.Task.String(), strconv.Itoa(s.N1), strconv.Itoa(s.N2), strconv.Itoa(s.D)}
	}
	return writeRows(w, []string{"dataset", "task", "n1", "n2", "d"}, rows)
}

// WriteFig6CSV emits one row per (panel, grid point).
func WriteFig6CSV(w io.Writer, series []ErrorTransformSeries) error {
	var rows [][]string
	for _, s := range series {
		for i := range s.Xs {
			rows = append(rows, []string{s.Dataset, s.Model, s.Loss, ftoa(s.Xs[i]), ftoa(s.Errs[i])})
		}
	}
	return writeRows(w, []string{"dataset", "model", "loss", "inv_ncp", "expected_error"}, rows)
}

// WriteRevenuePanelsCSV emits one row per (panel, method).
func WriteRevenuePanelsCSV(w io.Writer, panels []RevenuePanel) error {
	var rows [][]string
	for _, p := range panels {
		for _, r := range p.Results {
			rows = append(rows, []string{
				p.ValueCurve, p.DemandCurve, r.Method,
				ftoa(r.Revenue), ftoa(r.Affordability), ftoa(r.Seconds),
			})
		}
	}
	return writeRows(w, []string{"value_curve", "demand_curve", "method", "revenue", "affordability", "seconds"}, rows)
}

// WriteRuntimePanelsCSV emits one row per (n, method).
func WriteRuntimePanelsCSV(w io.Writer, panels []RuntimePanel) error {
	var rows [][]string
	for _, p := range panels {
		for _, r := range p.Results {
			rows = append(rows, []string{
				strconv.Itoa(p.N), r.Method,
				ftoa(r.Seconds), ftoa(r.Revenue), ftoa(r.Affordability),
			})
		}
	}
	return writeRows(w, []string{"n", "method", "seconds", "revenue", "affordability"}, rows)
}

// WriteFig5CSV emits the worked example.
func WriteFig5CSV(w io.Writer, results []Fig5Result) error {
	var rows [][]string
	for _, r := range results {
		for i, price := range r.Prices {
			rows = append(rows, []string{
				r.Method, strconv.Itoa(i + 1), ftoa(price),
				ftoa(r.Revenue), strconv.FormatBool(r.ArbitrageFree),
			})
		}
	}
	return writeRows(w, []string{"method", "quality", "price", "revenue", "arbitrage_free"}, rows)
}
