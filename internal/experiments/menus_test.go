package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunMenuStudy(t *testing.T) {
	points, err := RunMenuStudy("concave", "uniform", 30, []int{1, 3, 6, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("%d points", len(points))
	}
	// Full menu retains everything.
	if points[3].Retention != 1 {
		t.Fatalf("full menu retention %v", points[3].Retention)
	}
	// A handful of versions already captures most of a concave market.
	if points[1].Retention < 0.6 {
		t.Fatalf("k=3 retention %v", points[1].Retention)
	}
	// All entries reference the same full-menu ceiling.
	for _, p := range points[1:] {
		if p.FullRevenue != points[0].FullRevenue {
			t.Fatalf("inconsistent full revenue: %+v", points)
		}
	}
}

func TestRunMenuStudyUnknownCurve(t *testing.T) {
	if _, err := RunMenuStudy("??", "uniform", 10, []int{1}); err == nil {
		t.Fatal("unknown value curve accepted")
	}
	if _, err := RunMenuStudy("convex", "??", 10, []int{1}); err == nil {
		t.Fatal("unknown demand curve accepted")
	}
}

func TestWriteMenuStudy(t *testing.T) {
	points, err := RunMenuStudy("linear", "uniform", 10, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMenuStudy(&buf, "Menu study", points); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "retention") || !strings.Contains(out, "%") {
		t.Fatalf("rendering:\n%s", out)
	}
}
