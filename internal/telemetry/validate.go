package telemetry

import (
	"fmt"
	"regexp"
	"strings"
)

// promLine matches one Prometheus text-format sample line: a metric name,
// an optional label block, and a float value.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ` +
		`(-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]?Inf|NaN)$`)

// ValidateText checks that every line of a Prometheus text exposition is a
// well-formed HELP/TYPE comment or sample line, returning the number of
// sample lines. Scrape consumers are strict line parsers, so tests use
// this to guarantee the exposition stays machine-readable.
func ValidateText(text string) (samples int, err error) {
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			return samples, fmt.Errorf("telemetry: invalid exposition line %q", line)
		}
		samples++
	}
	return samples, nil
}
