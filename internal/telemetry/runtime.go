package telemetry

import "runtime"

// RegisterRuntimeMetrics adds Go runtime gauges (goroutines, heap, GC) to
// the registry. The memory statistics are read once per scrape via an
// OnScrape hook — runtime.ReadMemStats briefly stops the world, so it must
// not run per-gauge or per-request.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.Help("go_goroutines", "Number of live goroutines.")
	r.Help("go_heap_alloc_bytes", "Bytes of allocated heap objects.")
	r.Help("go_heap_sys_bytes", "Bytes of heap memory obtained from the OS.")
	r.Help("go_gc_cycles_total", "Completed GC cycles.")
	r.Help("go_gc_pause_last_seconds", "Duration of the most recent GC stop-the-world pause.")
	r.Help("go_gc_pause_total_seconds", "Cumulative GC stop-the-world pause time.")

	r.GaugeFunc("go_goroutines", func() float64 { return float64(runtime.NumGoroutine()) })

	heapAlloc := r.Gauge("go_heap_alloc_bytes")
	heapSys := r.Gauge("go_heap_sys_bytes")
	gcCycles := r.Gauge("go_gc_cycles_total")
	gcPauseLast := r.Gauge("go_gc_pause_last_seconds")
	gcPauseTotal := r.Gauge("go_gc_pause_total_seconds")
	r.OnScrape(func() {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		heapAlloc.Set(float64(m.HeapAlloc))
		heapSys.Set(float64(m.HeapSys))
		gcCycles.Set(float64(m.NumGC))
		if m.NumGC > 0 {
			gcPauseLast.Set(float64(m.PauseNs[(m.NumGC+255)%256]) / 1e9)
		}
		gcPauseTotal.Set(float64(m.PauseTotalNs) / 1e9)
	})
}
