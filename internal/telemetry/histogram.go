package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets are the default latency buckets in seconds: 50µs to 10s, the
// span of the broker's serving path (a menu render is tens of microseconds,
// a cold buy with a large model is milliseconds, and anything beyond a
// second is pathological and only needs coarse resolution).
var DefBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets. Observations and reads
// are lock-free; a concurrent read may see a sum slightly ahead of or
// behind the bucket counts, which is the standard Prometheus trade-off.
type Histogram struct {
	// bounds are the sorted bucket upper bounds; counts has one extra
	// trailing slot for the overflow (+Inf) bucket.
	bounds []float64
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// newHistogram builds a histogram with the given upper bounds (defaulting
// to DefBuckets), sorted and deduplicated.
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	uniq := bs[:0]
	for _, b := range bs {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			continue
		}
		if len(uniq) == 0 || b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	return &Histogram{bounds: uniq, counts: make([]atomic.Uint64, len(uniq)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Buckets are few (≤ ~20): linear scan beats binary search through
	// better branch prediction on the common low buckets.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// inside the bucket containing the target rank. Values in the overflow
// bucket report the largest finite bound — the histogram cannot resolve
// beyond its range. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts, total := h.loadCounts()
	return h.quantileFrom(counts, total, q)
}

// Quantiles estimates several quantiles from a single snapshot of the
// bucket counts, so the returned values are mutually consistent (three
// separate Quantile calls under concurrent writes can each see a different
// distribution; an exported p50 > p95 reads as corruption downstream).
// The result is parallel to qs. A nil or empty histogram returns zeros.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if h == nil {
		return out
	}
	counts, total := h.loadCounts()
	for i, q := range qs {
		out[i] = h.quantileFrom(counts, total, q)
	}
	return out
}

// quantileFrom interpolates the q-quantile inside an already-loaded bucket
// snapshot.
func (h *Histogram) quantileFrom(counts []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(counts)-1 {
			if i >= len(h.bounds) {
				// Overflow bucket: clamp to the largest finite bound.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

// loadCounts snapshots the per-bucket counts and their total.
func (h *Histogram) loadCounts() ([]uint64, uint64) {
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		counts[i] = c
		total += c
	}
	return counts, total
}

// Bounds returns the finite bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}
