package telemetry

import (
	"math"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	if got, want := h.Sum(), 5.565; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum %v want %v", got, want)
	}
	snap := h.snapshot()
	// Cumulative: ≤0.01 holds 2 (0.005 and the boundary 0.01), ≤0.1 holds 3,
	// ≤1 holds 4; the 5.0 observation lives in the overflow bucket.
	wantCum := []uint64{2, 3, 4}
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d: cum %d want %d", i, b.Count, wantCum[i])
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 3, 4})
	// 100 observations uniform over (0, 4]: 25 per bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 25.0)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 2.0, 0.05},
		{0.25, 1.0, 0.05},
		{0.95, 3.8, 0.05},
		{0.99, 3.96, 0.05},
		{1.00, 4.0, 1e-9},
		{0.00, 0.0, 0.05},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%v = %v, want %v±%v", tc.q, got, tc.want, tc.tol)
		}
	}
}

// TestHistogramQuantilesBatch checks the multi-quantile export agrees with
// the single-quantile path and stays monotone, including on nil/empty
// histograms.
func TestHistogramQuantilesBatch(t *testing.T) {
	h := newHistogram([]float64{1, 2, 3, 4})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 25.0)
	}
	qs := []float64{0.50, 0.95, 0.99}
	got := h.Quantiles(qs...)
	if len(got) != len(qs) {
		t.Fatalf("Quantiles returned %d values, want %d", len(got), len(qs))
	}
	for i, q := range qs {
		if want := h.Quantile(q); math.Abs(got[i]-want) > 1e-12 {
			t.Errorf("Quantiles[%d] (q=%v) = %v, Quantile = %v", i, q, got[i], want)
		}
	}
	if !(got[0] <= got[1] && got[1] <= got[2]) {
		t.Errorf("quantiles not monotone: %v", got)
	}
	var nilH *Histogram
	for _, v := range nilH.Quantiles(0.5, 0.99) {
		if v != 0 {
			t.Errorf("nil histogram quantile = %v, want 0", v)
		}
	}
	empty := newHistogram(nil)
	for _, v := range empty.Quantiles(0.5, 0.99) {
		if v != 0 {
			t.Errorf("empty histogram quantile = %v, want 0", v)
		}
	}
}

func TestHistogramOverflowClamps(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile %v, want clamp to 2", got)
	}
}

func TestHistogramEmptyAndNaN(t *testing.T) {
	h := newHistogram(nil)
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Fatal("NaN was observed")
	}
}

func TestHistogramBoundsSortedDeduped(t *testing.T) {
	h := newHistogram([]float64{3, 1, 2, 2, math.Inf(1), math.NaN()})
	got := h.Bounds()
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("bounds %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bounds %v", got)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", nil)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.0042)
		}
	})
}

func BenchmarkRegistryLookup(b *testing.B) {
	reg := NewRegistry()
	reg.Counter("requests_total", "route", "/api/v1/buy", "class", "2xx")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			reg.Counter("requests_total", "route", "/api/v1/buy", "class", "2xx").Inc()
		}
	})
}
