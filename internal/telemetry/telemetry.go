// Package telemetry is a dependency-free, lock-light metrics registry for
// the Nimbus broker's hot paths. It provides atomically-updated counters,
// gauges and fixed-bucket latency histograms (with quantile estimation),
// Prometheus-text-format exposition, and a structured snapshot API for
// tests, CLIs and the JSON metrics endpoint.
//
// Design constraints, in order:
//
//  1. The write path (Inc/Add/Observe) must be safe for heavy concurrent
//     use and must never block on the read path: all values are single
//     atomic words, and metric handles are resolved through a sync.Map so
//     steady-state lookups are lock-free.
//  2. A nil *Registry is a valid no-op registry: every constructor returns
//     a nil handle and every handle method tolerates a nil receiver, so
//     instrumented code needs no "is telemetry on?" branches and the
//     overhead of disabled telemetry is a single pointer test.
//  3. No dependencies beyond the standard library.
//
// Series are identified Prometheus-style by a base name plus optional
// label pairs; the same (name, labels) always resolves to the same handle:
//
//	reg := telemetry.NewRegistry()
//	sales := reg.Counter("nimbus_purchases_total", "offering", "CASP/linreg")
//	sales.Inc()
//	reg.WritePrometheus(os.Stdout)
package telemetry

import (
	"fmt"
	"strings"
	"sync"
)

// Registry holds a set of named metrics. The zero value is not usable; use
// NewRegistry. A nil *Registry is a valid no-op registry.
type Registry struct {
	metrics sync.Map // series key -> *Counter | *FloatCounter | *Gauge | *gaugeFunc | *Histogram

	mu       sync.Mutex
	help     map[string]string // guarded by mu; base name -> HELP text
	onScrape []func()          // guarded by mu; collectors run before every exposition/snapshot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{help: make(map[string]string)}
}

// Help sets the Prometheus HELP text for a base metric name.
func (r *Registry) Help(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// OnScrape registers a collector invoked (in registration order) before
// every WritePrometheus and Snapshot, so gauges derived from expensive
// sources — runtime.ReadMemStats, pool sizes — refresh once per scrape
// instead of once per gauge.
func (r *Registry) OnScrape(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.onScrape = append(r.onScrape, fn)
	r.mu.Unlock()
}

// collect runs the scrape hooks.
func (r *Registry) collect() {
	r.mu.Lock()
	hooks := append([]func(){}, r.onScrape...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// Counter returns the integer counter for (name, labels), creating it on
// first use. Labels are alternating key, value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	//lint:allocok the closure captures nothing (a static func value) and the metric is built once per series
	return getOrCreate(r, name, labels, func() *Counter { return &Counter{} })
}

// FloatCounter returns the float counter (monotone sum, e.g. revenue) for
// (name, labels), creating it on first use.
func (r *Registry) FloatCounter(name string, labels ...string) *FloatCounter {
	if r == nil {
		return nil
	}
	return getOrCreate(r, name, labels, func() *FloatCounter { return &FloatCounter{} })
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return getOrCreate(r, name, labels, func() *Gauge { return &Gauge{} })
}

// GaugeFunc registers a gauge whose value is fn() at scrape time. It
// replaces any previous func registered under the same series.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	if r == nil || fn == nil {
		return
	}
	r.metrics.Store(seriesKey(name, labels), &gaugeFunc{fn: fn})
}

// Histogram returns the histogram for (name, labels), creating it on first
// use with the given bucket upper bounds (nil means DefBuckets). Bounds are
// fixed at creation; later calls for the same series ignore the argument.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return getOrCreate(r, name, labels, func() *Histogram { return newHistogram(buckets) })
}

// getOrCreate resolves the series key to a handle of type M, creating one
// with mk on first use. A series re-requested as a different metric kind is
// a programming error and panics.
func getOrCreate[M any](r *Registry, name string, labels []string, mk func() M) M {
	key := seriesKey(name, labels)
	//lint:allocok sync.Map keys are interface values; hot callers resolve handles once and cache them
	if v, ok := r.metrics.Load(key); ok {
		return assertKind[M](key, v)
	}
	//lint:allocok first-use slow path: the series is being created
	v, _ := r.metrics.LoadOrStore(key, mk())
	return assertKind[M](key, v)
}

func assertKind[M any](key string, v any) M {
	m, ok := v.(M)
	if !ok {
		//lint:allocok panic on a programming error, not a steady-state allocation
		panic(fmt.Sprintf("telemetry: series %s already registered as %T", key, v))
	}
	return m
}

// seriesKey renders the canonical series identity: the base name plus a
// sorted, escaped label block, e.g. `http_requests_total{route="/buy"}`.
func seriesKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		//lint:allocok panic on a programming error, not a steady-state allocation
		panic(fmt.Sprintf("telemetry: odd label list for %s: %v", name, labels))
	}
	type kv struct{ k, v string }
	//lint:allocok a handful of label pairs, rendered once per series lookup
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		//lint:allocok stays within the capacity reserved above
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	// Insertion sort: label lists are one or two pairs, and sort.Slice
	// would box the slice and allocate its less-closure on every lookup.
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j].k < pairs[j-1].k; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	var b strings.Builder
	b.Grow(len(name) + 16*len(pairs))
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		escapeLabel(&b, p.v)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel writes v with Prometheus label escaping (backslash, quote,
// newline).
func escapeLabel(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
}

// baseName returns the series key's metric name without the label block.
func baseName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// labelBlock returns the series key's label block including braces, or "".
func labelBlock(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[i:]
	}
	return ""
}
