package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing integer. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// FloatCounter is a monotonically increasing float sum (revenue, seconds).
// Adds use a compare-and-swap loop on the float's bit pattern; under write
// contention this retries but never blocks readers.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add accumulates delta. Negative deltas are ignored to keep the counter
// monotone (use a Gauge for values that go down).
func (c *FloatCounter) Add(delta float64) {
	if c == nil || delta < 0 || math.IsNaN(delta) {
		return
	}
	addFloat(&c.bits, delta)
}

// Value returns the accumulated sum.
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is an instantaneous float value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add accumulates delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, delta)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// gaugeFunc is a callback-valued gauge, evaluated at scrape time.
type gaugeFunc struct {
	fn func() float64
}

// addFloat CAS-adds delta to the float64 stored in bits.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}
