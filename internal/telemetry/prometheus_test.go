package telemetry

import (
	"fmt"
	"strings"
	"testing"
)

// ValidatePrometheusText checks that every line of a text exposition is a
// well-formed comment or sample line, returning the sample count.
func ValidatePrometheusText(t *testing.T, text string) int {
	t.Helper()
	samples, err := ValidateText(text)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Help("requests_total", "Requests served.")
	reg.Counter("requests_total", "route", "/buy", "class", "2xx").Add(3)
	reg.Counter("requests_total", "route", "/menu", "class", "2xx").Add(1)
	reg.FloatCounter("revenue_total").Add(12.5)
	reg.Gauge("inflight").Set(2)
	reg.GaugeFunc("temperature", func() float64 { return 20.5 })
	h := reg.Histogram("latency_seconds", []float64{0.1, 1}, "route", "/buy")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	ValidatePrometheusText(t, text)

	for _, want := range []string{
		"# HELP requests_total Requests served.",
		"# TYPE requests_total counter",
		`requests_total{class="2xx",route="/buy"} 3`,
		`requests_total{class="2xx",route="/menu"} 1`,
		"# TYPE revenue_total counter",
		"revenue_total 12.5",
		"# TYPE inflight gauge",
		"inflight 2",
		"temperature 20.5",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{route="/buy",le="0.1"} 1`,
		`latency_seconds_bucket{route="/buy",le="1"} 2`,
		`latency_seconds_bucket{route="/buy",le="+Inf"} 3`,
		`latency_seconds_sum{route="/buy"} 5.55`,
		`latency_seconds_count{route="/buy"} 3`,
	} {
		if !strings.Contains(text, want+"\n") && !strings.HasSuffix(text, want) {
			t.Errorf("missing %q in exposition:\n%s", want, text)
		}
	}
}

func TestWritePrometheusStableOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total").Inc()
	reg.Counter("a_total").Inc()
	reg.Gauge("c")
	var first strings.Builder
	if err := reg.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	if ai, bi := strings.Index(first.String(), "a_total"), strings.Index(first.String(), "b_total"); ai > bi {
		t.Fatalf("output not sorted:\n%s", first.String())
	}
	var second strings.Builder
	if err := reg.WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("exposition not stable across scrapes")
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("odd", "path", "a\"b\\c\nd").Inc()
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	want := `odd{path="a\"b\\c\nd"} 1`
	if !strings.Contains(out.String(), want) {
		t.Fatalf("escaping: got %q want %q", out.String(), want)
	}
	ValidatePrometheusText(t, out.String())
}

func TestSnapshotHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{0.001, 0.01, 0.1, 1})
	for i := 0; i < 100; i++ {
		h.Observe(0.005)
	}
	snap := reg.Snapshot()
	hs, ok := snap.HistogramValue("lat")
	if !ok {
		t.Fatalf("histogram missing: %v", snap.SeriesNames())
	}
	if hs.Count != 100 {
		t.Fatalf("count %d", hs.Count)
	}
	if hs.P50 <= 0.001 || hs.P50 > 0.01 {
		t.Fatalf("p50 %v outside bucket", hs.P50)
	}
	if hs.P99 < hs.P50 || hs.P95 < hs.P50 {
		t.Fatalf("quantiles not ordered: %+v", hs)
	}
}

func ExampleRegistry_WritePrometheus() {
	reg := NewRegistry()
	reg.Counter("nimbus_purchases_total", "offering", "CASP/linear-regression").Add(2)
	reg.FloatCounter("nimbus_revenue_total").Add(51.75)
	var out strings.Builder
	reg.WritePrometheus(&out)
	fmt.Print(out.String())
	// Output:
	// # TYPE nimbus_purchases_total counter
	// nimbus_purchases_total{offering="CASP/linear-regression"} 2
	// # TYPE nimbus_revenue_total counter
	// nimbus_revenue_total 51.75
}
