package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("requests_total", "route", "/buy")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter %d", got)
	}
	// Same (name, labels) — in any label order — resolves to the same handle.
	if reg.Counter("requests_total", "route", "/buy") != c {
		t.Fatal("handle not shared")
	}

	fc := reg.FloatCounter("revenue_total")
	fc.Add(1.5)
	fc.Add(2.25)
	fc.Add(-7) // ignored: counters are monotone
	if got := fc.Value(); got != 3.75 {
		t.Fatalf("float counter %v", got)
	}

	g := reg.Gauge("inflight")
	g.Add(2)
	g.Add(-1)
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge %v", got)
	}
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("gauge after set %v", got)
	}
}

func TestLabelOrderCanonicalized(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("m", "b", "2", "a", "1")
	b := reg.Counter("m", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order changed series identity")
	}
	snap := reg.Snapshot()
	if _, ok := snap.Counters[`m{a="1",b="2"}`]; !ok {
		t.Fatalf("canonical key missing: %v", snap.SeriesNames())
	}
}

func TestKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind conflict")
		}
	}()
	reg.Gauge("dual")
}

func TestNilRegistryIsNoop(t *testing.T) {
	var reg *Registry
	reg.Counter("a").Inc()
	reg.FloatCounter("b").Add(1)
	reg.Gauge("c").Set(1)
	reg.GaugeFunc("d", func() float64 { return 1 })
	reg.Histogram("e", nil).Observe(1)
	reg.Help("a", "help")
	reg.OnScrape(func() { t.Fatal("scrape hook ran on nil registry") })
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if len(snap.SeriesNames()) != 0 {
		t.Fatalf("nil registry has series %v", snap.SeriesNames())
	}
	// Nil handles are also inert.
	var (
		c *Counter
		f *FloatCounter
		g *Gauge
		h *Histogram
	)
	c.Inc()
	f.Add(1)
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || f.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil handles not zero")
	}
}

func TestGaugeFuncAndOnScrape(t *testing.T) {
	reg := NewRegistry()
	v := 1.0
	reg.GaugeFunc("dynamic", func() float64 { return v })
	scrapes := 0
	refreshed := reg.Gauge("refreshed")
	reg.OnScrape(func() {
		scrapes++
		refreshed.Set(float64(scrapes))
	})

	snap := reg.Snapshot()
	if snap.GaugeValue("dynamic") != 1 || snap.GaugeValue("refreshed") != 1 {
		t.Fatalf("snapshot %v", snap.Gauges)
	}
	v = 7
	snap = reg.Snapshot()
	if snap.GaugeValue("dynamic") != 7 || snap.GaugeValue("refreshed") != 2 {
		t.Fatalf("snapshot after update %v", snap.Gauges)
	}
}

func TestConcurrentWrites(t *testing.T) {
	reg := NewRegistry()
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				reg.Counter("c").Inc()
				reg.FloatCounter("f").Add(0.5)
				reg.Gauge("g").Add(1)
				reg.Histogram("h", nil).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	const n = goroutines * perG
	if got := reg.Counter("c").Value(); got != n {
		t.Fatalf("counter %d want %d", got, n)
	}
	if got := reg.FloatCounter("f").Value(); got != n/2 {
		t.Fatalf("float counter %v", got)
	}
	if got := reg.Gauge("g").Value(); got != n {
		t.Fatalf("gauge %v", got)
	}
	if got := reg.Histogram("h", nil).Count(); got != n {
		t.Fatalf("histogram count %d", got)
	}
}

func TestRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	snap := reg.Snapshot()
	if snap.GaugeValue("go_goroutines") < 1 {
		t.Fatalf("goroutines %v", snap.GaugeValue("go_goroutines"))
	}
	if snap.GaugeValue("go_heap_alloc_bytes") <= 0 {
		t.Fatalf("heap alloc %v", snap.GaugeValue("go_heap_alloc_bytes"))
	}
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# TYPE go_goroutines gauge", "go_heap_sys_bytes", "go_gc_pause_total_seconds"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in:\n%s", want, out.String())
		}
	}
}
