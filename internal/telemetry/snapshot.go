package telemetry

import "sort"

// Snapshot is a point-in-time, JSON-friendly view of every metric, for the
// /api/v1/metrics endpoint, CLIs and tests. Map keys are full series keys
// including the label block.
type Snapshot struct {
	Counters   map[string]float64           `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot summarizes one histogram: totals, estimated quantiles,
// and the cumulative bucket counts.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	P50     float64       `json:"p50"`
	P95     float64       `json:"p95"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets"`
}

// BucketCount is one cumulative histogram bucket: observations ≤ LE.
type BucketCount struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Snapshot runs the scrape hooks and captures every metric. A nil registry
// returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.collect()
	r.metrics.Range(func(k, v any) bool {
		key := k.(string)
		switch m := v.(type) {
		case *Counter:
			snap.Counters[key] = float64(m.Value())
		case *FloatCounter:
			snap.Counters[key] = m.Value()
		case *Gauge:
			snap.Gauges[key] = m.Value()
		case *gaugeFunc:
			snap.Gauges[key] = m.fn()
		case *Histogram:
			snap.Histograms[key] = m.snapshot()
		}
		return true
	})
	return snap
}

// snapshot captures one histogram with cumulative buckets and quantiles.
func (h *Histogram) snapshot() HistogramSnapshot {
	counts, total := h.loadCounts()
	buckets := make([]BucketCount, len(h.bounds))
	var cum uint64
	for i, bound := range h.bounds {
		cum += counts[i]
		buckets[i] = BucketCount{LE: bound, Count: cum}
	}
	return HistogramSnapshot{
		Count:   total,
		Sum:     h.Sum(),
		P50:     h.quantileFrom(counts, total, 0.50),
		P95:     h.quantileFrom(counts, total, 0.95),
		P99:     h.quantileFrom(counts, total, 0.99),
		Buckets: buckets,
	}
}

// CounterValue is a convenience lookup of a counter (integer or float) by
// name and labels; it returns 0 for unknown series. Intended for tests.
func (s Snapshot) CounterValue(name string, labels ...string) float64 {
	return s.Counters[seriesKey(name, labels)]
}

// GaugeValue looks up a gauge by name and labels, 0 when unknown.
func (s Snapshot) GaugeValue(name string, labels ...string) float64 {
	return s.Gauges[seriesKey(name, labels)]
}

// HistogramValue looks up a histogram summary by name and labels.
func (s Snapshot) HistogramValue(name string, labels ...string) (HistogramSnapshot, bool) {
	h, ok := s.Histograms[seriesKey(name, labels)]
	return h, ok
}

// SeriesNames returns every series key in the snapshot, sorted — handy for
// asserting exposition coverage in tests.
func (s Snapshot) SeriesNames() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for k := range s.Counters {
		names = append(names, k)
	}
	for k := range s.Gauges {
		names = append(names, k)
	}
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
