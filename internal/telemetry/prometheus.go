package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus renders every metric in Prometheus text exposition format
// (version 0.0.4), grouped by base name with HELP/TYPE headers and sorted
// for stable output. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.collect()

	type series struct {
		key string
		m   any
	}
	groups := make(map[string][]series)
	var names []string
	r.metrics.Range(func(k, v any) bool {
		key := k.(string)
		base := baseName(key)
		if _, seen := groups[base]; !seen {
			names = append(names, base)
		}
		groups[base] = append(groups[base], series{key, v})
		return true
	})
	sort.Strings(names)

	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	for _, base := range names {
		ss := groups[base]
		sort.Slice(ss, func(i, j int) bool { return ss[i].key < ss[j].key })
		if h := help[base]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, h); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, promType(ss[0].m)); err != nil {
			return err
		}
		for _, s := range ss {
			if err := writeSeries(w, s.key, s.m); err != nil {
				return err
			}
		}
	}
	return nil
}

// promType maps a metric handle to its Prometheus TYPE keyword.
func promType(m any) string {
	switch m.(type) {
	case *Counter, *FloatCounter:
		return "counter"
	case *Histogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// writeSeries renders one series (all lines of a histogram, or the single
// sample line of a scalar metric).
func writeSeries(w io.Writer, key string, m any) error {
	switch v := m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s %d\n", key, v.Value())
		return err
	case *FloatCounter:
		_, err := fmt.Fprintf(w, "%s %s\n", key, formatFloat(v.Value()))
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s %s\n", key, formatFloat(v.Value()))
		return err
	case *gaugeFunc:
		_, err := fmt.Fprintf(w, "%s %s\n", key, formatFloat(v.fn()))
		return err
	case *Histogram:
		return writeHistogram(w, key, v)
	default:
		return fmt.Errorf("telemetry: unknown metric type %T for %s", m, key)
	}
}

// writeHistogram renders the classic cumulative _bucket/_sum/_count lines.
func writeHistogram(w io.Writer, key string, h *Histogram) error {
	base, labels := baseName(key), labelBlock(key)
	counts, total := h.loadCounts()
	var cum uint64
	for i, bound := range h.bounds {
		cum += counts[i]
		if err := writeBucket(w, base, labels, formatFloat(bound), cum); err != nil {
			return err
		}
	}
	if err := writeBucket(w, base, labels, "+Inf", total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labels, total)
	return err
}

// writeBucket renders one cumulative bucket line, splicing le into any
// existing label block.
func writeBucket(w io.Writer, base, labels, le string, cum uint64) error {
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", base, le, cum)
		return err
	}
	// labels is "{...}": insert le before the closing brace.
	_, err := fmt.Fprintf(w, "%s_bucket%s,le=%q} %d\n", base, labels[:len(labels)-1], le, cum)
	return err
}

// formatFloat renders a float in the shortest round-trippable form.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
