package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"nimbus/internal/dataset"
	"nimbus/internal/market"
	"nimbus/internal/ml"
	"nimbus/internal/pricing"
	"nimbus/internal/rng"
	"nimbus/internal/telemetry"
)

// newInstrumentedServer builds a one-offering broker served through the
// full production stack — middleware, rate limiter, telemetry — exactly as
// nimbusd wires it.
func newInstrumentedServer(tb testing.TB, reg *telemetry.Registry, rate float64) (*httptest.Server, string) {
	tb.Helper()
	d, err := dataset.StandIn("CASP", dataset.GenConfig{Rows: 250, Seed: 61})
	if err != nil {
		tb.Fatal(err)
	}
	pair, err := dataset.NewPair(d, rng.New(62))
	if err != nil {
		tb.Fatal(err)
	}
	seller, err := market.NewSeller(pair, market.Research{
		Value:  func(e float64) float64 { return 80 / (1 + e) },
		Demand: func(e float64) float64 { return 1 },
	})
	if err != nil {
		tb.Fatal(err)
	}
	broker := market.NewBroker(63)
	broker.SetTelemetry(reg)
	o, err := broker.List(market.OfferingConfig{
		Seller:  seller,
		Model:   ml.LinearRegression{Ridge: 1e-3},
		Grid:    pricing.DefaultGrid(15),
		Samples: 60,
		Seed:    64,
	})
	if err != nil {
		tb.Fatal(err)
	}
	quiet := func(string, ...any) {}
	var handler http.Handler = New(broker, WithLogger(quiet), WithTelemetry(reg))
	if rate > 0 {
		rl := NewRateLimiter(rate, int(2*rate))
		rl.SetTelemetry(reg)
		handler = rl.Wrap(handler)
	}
	srv := httptest.NewServer(WithMiddleware(handler, quiet, reg))
	tb.Cleanup(srv.Close)
	return srv, o.Name
}

// TestTelemetryRoundTrip drives a menu fetch and a buy through the full
// stack and asserts the matching series increment, then checks both
// exposition endpoints.
func TestTelemetryRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(reg)
	srv, name := newInstrumentedServer(t, reg, 50)
	c := NewClient(srv.URL)
	ctx := context.Background()

	if _, err := c.Menu(ctx); err != nil {
		t.Fatal(err)
	}
	p, err := c.Buy(ctx, BuyRequest{Offering: name, Loss: "squared", Option: "quality", Value: 5})
	if err != nil {
		t.Fatal(err)
	}
	// A refused purchase (unattainable error budget) must count as a
	// reject, not a sale.
	if _, err := c.Buy(ctx, BuyRequest{Offering: name, Loss: "squared", Option: "error-budget", Value: 0}); err == nil {
		t.Fatal("impossible error budget accepted")
	}

	snap := reg.Snapshot()
	if got := snap.CounterValue("nimbus_http_requests_total", "route", "GET /api/v1/menu", "class", "2xx"); got != 1 {
		t.Fatalf("menu counter %v; series %v", got, snap.SeriesNames())
	}
	if got := snap.CounterValue("nimbus_http_requests_total", "route", "POST /api/v1/buy", "class", "2xx"); got != 1 {
		t.Fatalf("buy 2xx counter %v", got)
	}
	if got := snap.CounterValue("nimbus_http_requests_total", "route", "POST /api/v1/buy", "class", "4xx"); got != 1 {
		t.Fatalf("buy 4xx counter %v", got)
	}
	if got := snap.CounterValue("nimbus_purchases_total", "offering", name); got != 1 {
		t.Fatalf("purchases %v", got)
	}
	if got := snap.CounterValue("nimbus_revenue_total"); got != p.Price {
		t.Fatalf("revenue %v want %v", got, p.Price)
	}
	if got := snap.CounterValue("nimbus_broker_fees_total"); got != p.BrokerFee {
		t.Fatalf("fees %v want %v", got, p.BrokerFee)
	}
	if got := snap.CounterValue("nimbus_purchase_rejects_total", "reason", "unattainable"); got != 1 {
		t.Fatalf("rejects %v", got)
	}
	if h, ok := snap.HistogramValue("nimbus_noise_draw_seconds"); !ok || h.Count != 1 {
		t.Fatalf("noise draw histogram %+v ok=%v", h, ok)
	}
	if h, ok := snap.HistogramValue("nimbus_http_request_seconds", "route", "POST /api/v1/buy"); !ok || h.Count != 2 {
		t.Fatalf("buy latency histogram %+v ok=%v", h, ok)
	}

	// GET /metrics must be valid Prometheus text covering every hot-path
	// series family.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	samples, err := telemetry.ValidateText(string(body))
	if err != nil {
		t.Fatalf("%v\nfull exposition:\n%s", err, body)
	}
	if samples == 0 {
		t.Fatal("empty exposition")
	}
	for _, want := range []string{
		"nimbus_http_requests_total{",
		"nimbus_http_request_seconds_bucket{",
		"nimbus_purchases_total{",
		"nimbus_revenue_total ",
		"nimbus_purchase_rejects_total{",
		"nimbus_noise_draw_seconds_count ",
		"nimbus_http_inflight ",
		"go_goroutines ",
		"go_heap_alloc_bytes ",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// GET /api/v1/metrics returns the same state as JSON.
	remote, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := remote.CounterValue("nimbus_purchases_total", "offering", name); got != 1 {
		t.Fatalf("remote snapshot purchases %v", got)
	}
	if remote.GaugeValue("go_goroutines") < 1 {
		t.Fatal("runtime gauges missing from JSON snapshot")
	}
}

// TestMetricsEndpointWithoutRegistry: a server with no registry still
// answers both endpoints (empty exposition, empty snapshot).
func TestMetricsEndpointWithoutRegistry(t *testing.T) {
	srv, _, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Fatalf("bare /metrics: %d %q", resp.StatusCode, body)
	}
	resp, err = http.Get(srv.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(snap.SeriesNames()); n != 0 {
		t.Fatalf("bare snapshot has %d series", n)
	}
}

// TestThrottleTelemetryThroughStack: hammering one client past the limit
// shows up in the throttle counter and as 4xx on the route.
func TestThrottleTelemetryThroughStack(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, _ := newInstrumentedServer(t, reg, 0.001) // ~2 request budget
	var throttled int
	for i := 0; i < 10; i++ {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			throttled++
		}
	}
	if throttled == 0 {
		t.Fatal("rate limit never engaged")
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue("nimbus_http_throttled_total"); got != float64(throttled) {
		t.Fatalf("throttled counter %v want %d", got, throttled)
	}
	if got := snap.CounterValue("nimbus_http_requests_total", "route", "GET /healthz", "class", "4xx"); got != float64(throttled) {
		t.Fatalf("throttled requests not attributed to route: %v", got)
	}
}
