package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nimbus/internal/telemetry"
)

func TestMiddlewareLogsRequests(t *testing.T) {
	var logs []string
	logf := func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	srv := httptest.NewServer(WithMiddleware(inner, logf, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/brew")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(logs) != 1 || !strings.Contains(logs[0], "GET /brew -> 418") {
		t.Fatalf("logs %v", logs)
	}
}

func TestMiddlewareRecoversPanics(t *testing.T) {
	var logs []string
	logf := func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}
	inner := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	srv := httptest.NewServer(WithMiddleware(inner, logf, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d", resp.StatusCode)
	}
	joined := strings.Join(logs, "\n")
	if !strings.Contains(joined, "panic serving GET /boom: kaboom") {
		t.Fatalf("logs %v", logs)
	}
}

// TestStatusRecorderPassesThroughFlusher is the regression test for the
// middleware swallowing interface upgrades: a streaming handler must still
// reach the real http.Flusher through the status recorder.
func TestStatusRecorderPassesThroughFlusher(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("middleware hides http.Flusher")
			return
		}
		w.Write([]byte("chunk"))
		f.Flush()
	})
	rec := httptest.NewRecorder()
	WithMiddleware(inner, func(string, ...any) {}, nil).
		ServeHTTP(rec, httptest.NewRequest("GET", "/stream", nil))
	if !rec.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}
}

// readFromRecorder counts ReadFrom delegations to prove io.Copy fast paths
// survive the wrapper.
type readFromRecorder struct {
	httptest.ResponseRecorder
	readFroms int
}

func (r *readFromRecorder) ReadFrom(src io.Reader) (int64, error) {
	r.readFroms++
	return io.Copy(r.ResponseRecorder.Body, src)
}

// onlyReader hides WriteTo from io.Copy so the copy is forced through the
// destination's ReadFrom.
type onlyReader struct{ io.Reader }

func TestStatusRecorderDelegatesReadFrom(t *testing.T) {
	under := &readFromRecorder{ResponseRecorder: *httptest.NewRecorder()}
	rec := &statusRecorder{ResponseWriter: under}
	n, err := io.Copy(rec, onlyReader{strings.NewReader("payload")})
	if err != nil || n != 7 {
		t.Fatalf("copy %d %v", n, err)
	}
	if under.readFroms != 1 {
		t.Fatalf("ReadFrom not delegated (calls=%d)", under.readFroms)
	}
	if rec.status != http.StatusOK {
		t.Fatalf("implicit status %d", rec.status)
	}
}

// TestStatusRecorderReadFromFallback covers the underlying writer NOT
// implementing io.ReaderFrom: the copy must still complete (without
// recursing into the recorder's own ReadFrom).
func TestStatusRecorderReadFromFallback(t *testing.T) {
	under := httptest.NewRecorder()
	rec := &statusRecorder{ResponseWriter: under}
	n, err := io.Copy(rec, onlyReader{strings.NewReader("fallback")})
	if err != nil || n != 8 {
		t.Fatalf("copy %d %v", n, err)
	}
	if got := under.Body.String(); got != "fallback" {
		t.Fatalf("body %q", got)
	}
}

func TestStatusRecorderUnwrap(t *testing.T) {
	under := httptest.NewRecorder()
	rec := &statusRecorder{ResponseWriter: under}
	if rec.Unwrap() != http.ResponseWriter(under) {
		t.Fatal("Unwrap does not expose the underlying writer")
	}
}

func TestMiddlewareRecordsTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(WithMiddleware(mux, func(string, ...any) {}, reg))
	defer srv.Close()

	// Two hits on a known route, one scanner probe on an unknown path.
	for _, path := range []string{"/healthz", "/healthz", "/wp-admin/setup.php"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue("nimbus_http_requests_total", "route", "GET /healthz", "class", "2xx"); got != 2 {
		t.Fatalf("2xx count %v; series %v", got, snap.SeriesNames())
	}
	// Unknown paths collapse into one bounded-cardinality series.
	if got := snap.CounterValue("nimbus_http_requests_total", "route", "(other)", "class", "4xx"); got != 1 {
		t.Fatalf("(other) 4xx count %v; series %v", got, snap.SeriesNames())
	}
	h, ok := snap.HistogramValue("nimbus_http_request_seconds", "route", "GET /healthz")
	if !ok || h.Count != 2 || h.Sum <= 0 {
		t.Fatalf("latency histogram %+v ok=%v", h, ok)
	}
	if got := snap.GaugeValue("nimbus_http_inflight"); got != 0 {
		t.Fatalf("inflight settled at %v", got)
	}
}

func TestMiddlewareDefaultStatusIs200(t *testing.T) {
	var logs []string
	logf := func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok")) // implicit 200
	})
	srv := httptest.NewServer(WithMiddleware(inner, logf, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(logs) != 1 || !strings.Contains(logs[0], "-> 200") {
		t.Fatalf("logs %v", logs)
	}
}
