package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareLogsRequests(t *testing.T) {
	var logs []string
	logf := func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	srv := httptest.NewServer(WithMiddleware(inner, logf))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/brew")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(logs) != 1 || !strings.Contains(logs[0], "GET /brew -> 418") {
		t.Fatalf("logs %v", logs)
	}
}

func TestMiddlewareRecoversPanics(t *testing.T) {
	var logs []string
	logf := func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}
	inner := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	srv := httptest.NewServer(WithMiddleware(inner, logf))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d", resp.StatusCode)
	}
	joined := strings.Join(logs, "\n")
	if !strings.Contains(joined, "panic serving GET /boom: kaboom") {
		t.Fatalf("logs %v", logs)
	}
}

func TestMiddlewareDefaultStatusIs200(t *testing.T) {
	var logs []string
	logf := func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok")) // implicit 200
	})
	srv := httptest.NewServer(WithMiddleware(inner, logf))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(logs) != 1 || !strings.Contains(logs[0], "-> 200") {
		t.Fatalf("logs %v", logs)
	}
}
