package server

import (
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
)

func getBody(t *testing.T, rawURL string) (int, string) {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestUIMenuPage(t *testing.T) {
	srv, _, name := newTestServer(t)
	code, body := getBody(t, srv.URL+"/ui")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"Nimbus", name, "linear-regression", "squared", "expected revenue"} {
		if !strings.Contains(body, want) {
			t.Fatalf("menu page missing %q:\n%s", want, body[:min(400, len(body))])
		}
	}
	// Root redirects to the dashboard.
	code, _ = getBody(t, srv.URL+"/")
	if code != http.StatusOK { // after following the redirect
		t.Fatalf("root status %d", code)
	}
}

func TestUIOfferingPage(t *testing.T) {
	srv, _, name := newTestServer(t)
	code, body := getBody(t, srv.URL+"/ui/offering?name="+url.QueryEscape(name))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"price–error curve", "quality 1/NCP", "Buy a version", "price-budget"} {
		if !strings.Contains(body, want) {
			t.Fatalf("offering page missing %q", want)
		}
	}
	// The curve table is trimmed to at most 12 rows.
	if rows := strings.Count(body, "<tr><td>"); rows > 13 {
		t.Fatalf("curve table too long: %d rows", rows)
	}
	code, _ = getBody(t, srv.URL+"/ui/offering?name=ghost")
	if code != http.StatusNotFound {
		t.Fatalf("ghost offering status %d", code)
	}
}

func TestUIBuyFlow(t *testing.T) {
	srv, broker, name := newTestServer(t)
	form := url.Values{
		"offering": {name},
		"loss":     {"squared"},
		"option":   {"quality"},
		"value":    {"5"},
	}
	resp, err := http.PostForm(srv.URL+"/ui/buy", form)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "sold at") || !strings.Contains(string(body), "coefficients") {
		t.Fatalf("buy page missing receipt:\n%s", string(body)[:min(500, len(body))])
	}
	if len(broker.Sales()) != 1 {
		t.Fatalf("ledger has %d sales", len(broker.Sales()))
	}

	// Failed purchases render an error message, not a 500.
	form.Set("option", "price-budget")
	form.Set("value", "0")
	resp, err = http.PostForm(srv.URL+"/ui/buy", form)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "err") {
		t.Fatalf("error purchase: status %d", resp.StatusCode)
	}
	// Bad numeric value.
	form.Set("value", "banana")
	resp, err = http.PostForm(srv.URL+"/ui/buy", form)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "bad value") {
		t.Fatal("bad value not reported")
	}
	// Unknown offering.
	form.Set("offering", "ghost")
	resp, err = http.PostForm(srv.URL+"/ui/buy", form)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost buy status %d", resp.StatusCode)
	}
}
