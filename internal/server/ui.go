package server

import (
	"fmt"
	"html/template"
	"net/http"
	"strconv"

	"nimbus/internal/market"
	"nimbus/internal/pricing"
)

// The demo surface: Nimbus was shown at SIGMOD as an interactive system
// where the audience browses price–error curves and buys model instances.
// This file serves that demonstration as a server-rendered HTML dashboard
// (no JavaScript, stdlib html/template): the menu at /ui, one page per
// offering with its curves, and a purchase form.

const uiBase = `<!DOCTYPE html>
<html><head><title>Nimbus — model-based pricing</title><style>
body { font-family: system-ui, sans-serif; margin: 2rem; max-width: 64rem; }
table { border-collapse: collapse; margin: 1rem 0; }
td, th { border: 1px solid #999; padding: 0.3rem 0.7rem; text-align: right; }
th { background: #eee; }
td:first-child, th:first-child { text-align: left; }
h1 a { text-decoration: none; color: inherit; }
form { margin: 1rem 0; padding: 1rem; border: 1px solid #ccc; }
.err { color: #a00; }
.ok { color: #070; }
code { background: #f4f4f4; padding: 0 0.2rem; }
</style></head><body>
<h1><a href="/ui">Nimbus</a> — model-based pricing demo</h1>
{{block "body" .}}{{end}}
</body></html>`

var (
	uiMenuTmpl = template.Must(template.Must(template.New("menu").Parse(uiBase)).Parse(`{{define "body"}}
<p>The broker trains the optimal model once and sells noisy versions at
arbitrage-free prices. Pick an offering:</p>
<table>
<tr><th>offering</th><th>model</th><th>train rows</th><th>test rows</th><th>d</th><th>losses</th><th>expected revenue</th></tr>
{{range .Offerings}}
<tr><td><a href="/ui/offering?name={{.Name}}">{{.Name}}</a></td><td>{{.Model}}</td>
<td>{{.TrainRows}}</td><td>{{.TestRows}}</td><td>{{.Features}}</td>
<td>{{range .Losses}}<code>{{.}}</code> {{end}}</td><td>{{printf "%.2f" .ExpectedRevenue}}</td></tr>
{{end}}
</table>
<p>Broker books: {{.Stats.Sales}} sales, revenue {{printf "%.2f" .Stats.TotalRevenue}}.</p>
{{end}}`))

	uiOfferingTmpl = template.Must(template.Must(template.New("offering").Parse(uiBase)).Parse(`{{define "body"}}
<h2>{{.Name}}</h2>
{{if .Message}}<p class="{{.MessageClass}}">{{.Message}}</p>{{end}}
{{range .Curves}}
<h3>price–error curve under the <code>{{.Loss}}</code> loss</h3>
<table>
<tr><th>quality 1/NCP</th><th>expected error</th><th>price</th></tr>
{{range .Points}}<tr><td>{{printf "%.2f" .X}}</td><td>{{printf "%.6f" .Error}}</td><td>{{printf "%.2f" .Price}}</td></tr>{{end}}
</table>
{{end}}
<form method="post" action="/ui/buy">
<input type="hidden" name="offering" value="{{.Name}}">
<b>Buy a version</b><br><br>
loss:
<select name="loss">{{range .LossNames}}<option>{{.}}</option>{{end}}</select>
option:
<select name="option">
<option value="quality">quality (1/NCP)</option>
<option value="error-budget">error budget</option>
<option value="price-budget">price budget</option>
</select>
value: <input name="value" size="8" value="10">
<button type="submit">buy</button>
</form>
{{if .Purchase}}
<h3>purchased</h3>
<table>
<tr><th>quality</th><th>NCP δ</th><th>price</th><th>expected error</th><th>weights</th></tr>
<tr><td>{{printf "%.4f" .Purchase.X}}</td><td>{{printf "%.6f" .Purchase.NCP}}</td>
<td>{{printf "%.2f" .Purchase.Price}}</td><td>{{printf "%.6f" .Purchase.ExpectedError}}</td>
<td>{{len .Purchase.Weights}} coefficients</td></tr>
</table>
{{end}}
{{end}}`))
)

type uiCurve struct {
	Loss   string
	Points []pricing.PriceErrorPoint
}

type uiOfferingPage struct {
	Name         string
	LossNames    []string
	Curves       []uiCurve
	Message      string
	MessageClass string
	Purchase     *market.Purchase
}

// registerUI adds the dashboard routes; called from New.
func (s *Server) registerUI() {
	s.mux.HandleFunc("GET /ui", s.handleUIMenu)
	s.mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "/ui", http.StatusFound)
	})
	s.mux.HandleFunc("GET /ui/offering", s.handleUIOffering)
	s.mux.HandleFunc("POST /ui/buy", s.handleUIBuy)
}

func (s *Server) handleUIMenu(w http.ResponseWriter, _ *http.Request) {
	page := struct {
		Offerings []MenuEntry
		Stats     StatsResponse
	}{
		Offerings: menuEntries(s.menuNames(), s.offering),
		Stats:     s.statsResponse(),
	}
	s.renderUI(w, uiMenuTmpl, page)
}

// uiOfferingData assembles the offering page (shared between GET and the
// post-purchase render).
func (s *Server) uiOfferingData(name string) (*uiOfferingPage, error) {
	o, err := s.offering(name)
	if err != nil {
		return nil, err
	}
	page := &uiOfferingPage{Name: o.Name, LossNames: o.LossNames()}
	for _, lossName := range o.LossNames() {
		c, err := o.Curve(lossName)
		if err != nil {
			continue
		}
		pts := c.Points()
		// Keep the table short: at most 12 evenly spaced rows.
		if len(pts) > 12 {
			step := float64(len(pts)-1) / 11
			trimmed := make([]pricing.PriceErrorPoint, 0, 12)
			for i := 0; i < 12; i++ {
				trimmed = append(trimmed, pts[int(float64(i)*step+0.5)])
			}
			pts = trimmed
		}
		page.Curves = append(page.Curves, uiCurve{Loss: lossName, Points: pts})
	}
	return page, nil
}

func (s *Server) handleUIOffering(w http.ResponseWriter, r *http.Request) {
	page, err := s.uiOfferingData(r.URL.Query().Get("name"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	s.renderUI(w, uiOfferingTmpl, page)
}

func (s *Server) handleUIBuy(w http.ResponseWriter, r *http.Request) {
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	offering := r.PostFormValue("offering")
	page, err := s.uiOfferingData(offering)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	value, err := strconv.ParseFloat(r.PostFormValue("value"), 64)
	if err != nil {
		page.Message = fmt.Sprintf("bad value: %v", err)
		page.MessageClass = "err"
		s.renderUI(w, uiOfferingTmpl, page)
		return
	}
	loss := r.PostFormValue("loss")
	var p *market.Purchase
	p, err = s.doBuy(offering, loss, r.PostFormValue("option"), value)
	if err != nil {
		page.Message = err.Error()
		page.MessageClass = "err"
	} else {
		page.Message = fmt.Sprintf("sold at %.2f — the noisy instance is below", p.Price)
		page.MessageClass = "ok"
		page.Purchase = p
	}
	s.renderUI(w, uiOfferingTmpl, page)
}

func (s *Server) renderUI(w http.ResponseWriter, tmpl *template.Template, data any) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := tmpl.Execute(w, data); err != nil {
		s.logf("nimbus: rendering UI: %v", err)
	}
}
