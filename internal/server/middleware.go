package server

import (
	"fmt"
	"net/http"
	"time"
)

// Middleware: the broker daemon fronts real buyers, so every request is
// access-logged and handler panics become 500s instead of dropped
// connections.

// statusRecorder captures the response code for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// WithMiddleware wraps a handler with panic recovery and access logging.
// The broker daemon applies it to the whole API; it is exported so other
// embedders can reuse it.
func WithMiddleware(h http.Handler, logf func(format string, args ...any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				logf("nimbus: panic serving %s %s: %v", r.Method, r.URL.Path, p)
				if rec.status == 0 {
					writeJSON(rec, http.StatusInternalServerError, ErrorResponse{
						Error: fmt.Sprintf("internal error: %v", p),
					})
				}
			}
			logf("nimbus: %s %s -> %d (%s)", r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
		}()
		h.ServeHTTP(rec, r)
	})
}
