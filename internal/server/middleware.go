package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"nimbus/internal/telemetry"
)

// Middleware: the broker daemon fronts real buyers, so every request is
// access-logged, measured, and handler panics become 500s instead of
// dropped connections.

// statusRecorder captures the response code for the access log and the
// request metrics. It passes interface upgrades through to the underlying
// ResponseWriter: Flush reaches the real http.Flusher (streaming handlers
// keep working behind the middleware), ReadFrom delegates to the
// underlying io.ReaderFrom so sendfile-style copies are not forced through
// a userspace buffer, and Unwrap supports http.ResponseController.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Flush implements http.Flusher when the underlying writer does; otherwise
// it is a no-op, matching net/http's own recorder behaviour.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ReadFrom delegates bulk copies to the underlying io.ReaderFrom (net/http
// response writers implement it for sendfile/splice), falling back to a
// plain io.Copy. Either way the implicit 200 is recorded first.
func (r *statusRecorder) ReadFrom(src io.Reader) (int64, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	if rf, ok := r.ResponseWriter.(io.ReaderFrom); ok {
		return rf.ReadFrom(src)
	}
	// onlyWriter hides this ReadFrom from io.Copy so it cannot recurse.
	return io.Copy(onlyWriter{r.ResponseWriter}, src)
}

type onlyWriter struct{ io.Writer }

// Unwrap exposes the underlying writer to http.ResponseController
// (SetReadDeadline, EnableFullDuplex, ...).
func (r *statusRecorder) Unwrap() http.ResponseWriter {
	return r.ResponseWriter
}

// WithMiddleware wraps a handler with panic recovery, access logging and —
// when reg is non-nil — request telemetry: per-route request counts by
// status class, an in-flight gauge, and per-route latency histograms. The
// broker daemon applies it to the whole API; it is exported so other
// embedders can reuse it. Routes are labelled via a fixed table of the
// served API surface (bounded cardinality), not the raw URL path.
func WithMiddleware(h http.Handler, logf func(format string, args ...any), reg *telemetry.Registry) http.Handler {
	reg.Help("nimbus_http_requests_total", "HTTP requests by route pattern and status class.")
	reg.Help("nimbus_http_request_seconds", "HTTP request latency by route pattern.")
	reg.Help("nimbus_http_inflight", "HTTP requests currently being served.")
	reg.Help("nimbus_http_panics_total", "Handler panics recovered by the middleware.")
	inflight := reg.Gauge("nimbus_http_inflight")
	panics := reg.Counter("nimbus_http_panics_total")
	// Metric handles are resolved once per (method, route) and cached, so
	// the per-request cost is one RLock'd map hit instead of registry key
	// building; the registry's own lookup path stays out of the hot loop.
	var routes routeCache
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				panics.Inc()
				logf("nimbus: panic serving %s %s: %v", r.Method, r.URL.Path, p)
				if rec.status == 0 {
					writeJSON(rec, http.StatusInternalServerError, ErrorResponse{
						Error: fmt.Sprintf("internal error: %v", p),
					})
				}
			}
			elapsed := time.Since(start)
			inflight.Add(-1)
			if reg != nil {
				rs := routes.get(reg, r.Method, r.URL.Path)
				rs.class(rec.status).Inc()
				rs.latency.Observe(elapsed.Seconds())
			}
			logf("nimbus: %s %s -> %d (%s)", r.Method, r.URL.Path, rec.status, elapsed.Round(time.Microsecond))
		}()
		h.ServeHTTP(rec, r)
	})
}

// routeStats caches one route's metric handles: a counter per status class
// and the latency histogram.
type routeStats struct {
	classes [6]*telemetry.Counter // index status/100 (1xx..5xx); 0 = other
	latency *telemetry.Histogram
}

// class picks the status-class counter.
func (rs *routeStats) class(status int) *telemetry.Counter {
	if status < 100 || status > 599 {
		return rs.classes[0]
	}
	return rs.classes[status/100]
}

// routeCache resolves (method, path) to cached routeStats. Unknown paths
// and exotic methods collapse into a single "(other)" entry, so the cache
// and the label space stay bounded under scanner traffic.
type routeCache struct {
	mu    sync.RWMutex
	stats map[[2]string]*routeStats // guarded by mu
}

func (rc *routeCache) get(reg *telemetry.Registry, method, path string) *routeStats {
	key := [2]string{method, path}
	if norm, ok := normalizeRoute(path); ok && knownMethods[method] {
		key[1] = norm
	} else {
		key = [2]string{"", "(other)"}
	}
	// Manual RUnlock: an RWMutex cannot upgrade, so the miss path below
	// must re-acquire in write mode after releasing the read lock.
	rc.mu.RLock()
	rs := rc.stats[key]
	rc.mu.RUnlock()
	if rs != nil {
		return rs
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rs = rc.stats[key]; rs != nil {
		return rs
	}
	label := "(other)"
	if key[0] != "" {
		label = key[0] + " " + key[1]
	}
	//lint:ignore telemetry-label-literal label is clamped to the fixed knownRoutes×knownMethods table (everything else collapses to "(other)"), so cardinality is bounded
	rs = &routeStats{latency: reg.Histogram("nimbus_http_request_seconds", nil, "route", label)}
	for i, class := range [...]string{"other", "1xx", "2xx", "3xx", "4xx", "5xx"} {
		//lint:ignore telemetry-label-literal label is clamped to the fixed knownRoutes×knownMethods table (everything else collapses to "(other)"), so cardinality is bounded
		rs.classes[i] = reg.Counter("nimbus_http_requests_total", "route", label, "class", class)
	}
	if rc.stats == nil {
		rc.stats = make(map[[2]string]*routeStats)
	}
	rc.stats[key] = rs
	return rs
}

// knownRoutes is the served API surface. Metrics are labelled only with
// these fixed patterns — scanners probing random paths all collapse into
// one "(other)" series, keeping label cardinality bounded no matter what
// the internet throws at a public broker.
var knownRoutes = map[string]bool{
	"/":                 true,
	"/healthz":          true,
	"/metrics":          true,
	"/ui":               true,
	"/ui/offering":      true,
	"/ui/buy":           true,
	"/api/v1/menu":      true,
	"/api/v1/curve":     true,
	"/api/v1/buy":       true,
	"/api/v1/stats":     true,
	"/api/v1/statement": true,
	"/api/v1/offerings": true,
	"/api/v1/metrics":   true,
	"/api/v1/datasets":  true,
}

// tenantSubRoutes are the per-dataset sub-resources; any dataset ID in the
// path collapses into the "{id}" pattern so tenant churn cannot grow the
// route label set.
var tenantSubRoutes = map[string]bool{
	"menu": true, "curve": true, "buy": true, "stats": true, "statement": true,
}

const datasetsPrefix = "/api/v1/datasets/"

// normalizeRoute maps a request path onto its route pattern: exact matches
// from knownRoutes, and /api/v1/datasets/<id>[/<sub>] onto the wildcard
// patterns the mux serves. Everything else is unknown, which the caller
// collapses into "(other)".
func normalizeRoute(path string) (string, bool) {
	if knownRoutes[path] {
		return path, true
	}
	rest, ok := strings.CutPrefix(path, datasetsPrefix)
	if !ok || rest == "" {
		return "", false
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		sub := rest[i+1:]
		if rest[:i] != "" && tenantSubRoutes[sub] {
			return datasetsPrefix + "{id}/" + sub, true
		}
		return "", false
	}
	return datasetsPrefix + "{id}", true
}

// knownMethods bounds the method axis of the route label the same way.
var knownMethods = map[string]bool{
	http.MethodGet: true, http.MethodPost: true, http.MethodHead: true,
	http.MethodPut: true, http.MethodDelete: true, http.MethodOptions: true,
	http.MethodPatch: true,
}
