package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"testing"

	"nimbus/internal/telemetry"
)

// BenchmarkServerBuy is the serving baseline for the BENCH trajectory:
// end-to-end POST /api/v1/buy through the full middleware + rate-limiter
// stack against an httptest server, with concurrent buyers. The two
// sub-benchmarks bound the telemetry overhead — "telemetry" runs a live
// registry, "noop" a nil one — and must stay within a few percent of each
// other (the acceptance bar is <5%).
func BenchmarkServerBuy(b *testing.B) {
	for _, tc := range []struct {
		name string
		reg  *telemetry.Registry
	}{
		{"telemetry", telemetry.NewRegistry()},
		{"noop", nil},
	} {
		b.Run(tc.name, func(b *testing.B) {
			srv, name := newInstrumentedServer(b, tc.reg, 0) // no rate limit: measure the buy path
			body := []byte(fmt.Sprintf(`{"offering":%q,"loss":"squared","option":"quality","value":5}`, name))
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// One client per goroutine so connection reuse, not pool
				// contention, is what's measured.
				client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
				for pb.Next() {
					resp, err := client.Post(srv.URL+"/api/v1/buy", "application/json", bytes.NewReader(body))
					if err != nil {
						b.Fatal(err)
					}
					if _, err := io.Copy(io.Discard, resp.Body); err != nil {
						b.Fatal(err)
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						b.Fatalf("status %d", resp.StatusCode)
					}
				}
			})
		})
	}
}
