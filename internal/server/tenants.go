package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"nimbus/internal/registry"
)

// The multi-tenant API surface (NewMulti only). Dataset IDs are path
// segments, matched by Go 1.22 ServeMux wildcards:
//
//	POST   /api/v1/datasets                 list a dataset (train + price + open)
//	GET    /api/v1/datasets                 all live datasets with their books
//	GET    /api/v1/datasets/{id}            one dataset's spec, offerings and books
//	DELETE /api/v1/datasets/{id}            delist: drain, compact, archive
//	GET    /api/v1/datasets/{id}/menu       the tenant's own menu
//	GET    /api/v1/datasets/{id}/curve      price–error curve, tenant-scoped
//	POST   /api/v1/datasets/{id}/buy        purchase inside one tenant market
//	GET    /api/v1/datasets/{id}/stats      the tenant's books
//	GET    /api/v1/datasets/{id}/statement  the tenant's accounting report

// WithTenantRate gives every tenant market its own purchase budget: a
// token bucket per dataset ID (not per client), so one tenant's flash
// crowd cannot starve the rest of the marketplace. Applies to the
// tenant-scoped buy route in multi mode.
func WithTenantRate(rate float64, burst int) Option {
	return func(s *Server) { s.tenantRL = NewRateLimiter(rate, burst) }
}

// registerTenantRoutes mounts the dataset lifecycle API; called from
// NewMulti only.
func (s *Server) registerTenantRoutes() {
	s.mux.HandleFunc("POST /api/v1/datasets", s.handleListDataset)
	s.mux.HandleFunc("GET /api/v1/datasets", s.handleDatasets)
	s.mux.HandleFunc("GET /api/v1/datasets/{id}", s.handleDataset)
	s.mux.HandleFunc("DELETE /api/v1/datasets/{id}", s.handleDelistDataset)
	s.mux.HandleFunc("GET /api/v1/datasets/{id}/menu", s.handleTenantMenu)
	s.mux.HandleFunc("GET /api/v1/datasets/{id}/curve", s.handleTenantCurve)
	s.mux.HandleFunc("POST /api/v1/datasets/{id}/buy", s.handleTenantBuy)
	s.mux.HandleFunc("GET /api/v1/datasets/{id}/stats", s.handleTenantStats)
	s.mux.HandleFunc("GET /api/v1/datasets/{id}/statement", s.handleTenantStatement)
}

// ListDatasetRequest is the POST /api/v1/datasets body: the listing spec
// plus, for CSV sources, the file contents inline.
type ListDatasetRequest struct {
	registry.Spec
	// Data is the raw CSV text for CSV-sourced specs.
	Data string `json:"data,omitempty"`
}

// DatasetResponse describes one live dataset market.
type DatasetResponse struct {
	Spec      registry.Spec `json:"spec"`
	Offerings []string      `json:"offerings"`
	Sales     int           `json:"sales"`
	Gross     float64       `json:"gross"`
}

// DatasetsResponse is the GET /api/v1/datasets payload: one row per live
// market, plus the marketplace totals.
type DatasetsResponse struct {
	Datasets []registry.MarketStats `json:"datasets"`
	Markets  int                    `json:"markets"`
	Sales    int                    `json:"sales"`
	Gross    float64                `json:"gross"`
}

func datasetResponse(m *registry.Market) DatasetResponse {
	st := m.Statement()
	return DatasetResponse{
		Spec:      m.Spec,
		Offerings: m.Broker.Menu(),
		Sales:     st.Sales,
		Gross:     st.Gross,
	}
}

func (s *Server) handleListDataset(w http.ResponseWriter, r *http.Request) {
	var req ListDatasetRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding list request: %w", err))
		return
	}
	var csvData []byte
	if req.CSV {
		csvData = []byte(req.Data)
	} else if req.Data != "" {
		s.fail(w, http.StatusBadRequest, errors.New("data supplied for a generator source"))
		return
	}
	m, err := s.registry.List(req.Spec, csvData)
	if err != nil {
		switch {
		case errors.Is(err, registry.ErrMarketExists), errors.Is(err, registry.ErrDelisting):
			s.fail(w, http.StatusConflict, err)
		case errors.Is(err, registry.ErrTooManyMarkets):
			s.fail(w, http.StatusServiceUnavailable, err)
		default:
			s.fail(w, http.StatusBadRequest, err)
		}
		return
	}
	s.logf("nimbus: listed dataset %s (%d offerings)", m.ID, len(m.Broker.Menu()))
	writeJSON(w, http.StatusCreated, datasetResponse(m))
}

func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	st := s.registry.Stats()
	resp := DatasetsResponse{
		Datasets: st.PerMarket,
		Markets:  st.Markets,
		Sales:    st.Sales,
		Gross:    st.Gross,
	}
	if resp.Datasets == nil {
		resp.Datasets = []registry.MarketStats{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// tenant resolves the {id} path segment to a live market, answering 404
// on a miss.
func (s *Server) tenant(w http.ResponseWriter, r *http.Request) *registry.Market {
	m, err := s.registry.Get(r.PathValue("id"))
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return nil
	}
	return m
}

func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	m := s.tenant(w, r)
	if m == nil {
		return
	}
	writeJSON(w, http.StatusOK, datasetResponse(m))
}

func (s *Server) handleDelistDataset(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.registry.Delist(id)
	if err != nil {
		switch {
		case errors.Is(err, registry.ErrUnknownMarket):
			s.fail(w, http.StatusNotFound, err)
		case errors.Is(err, registry.ErrDelisting):
			s.fail(w, http.StatusConflict, err)
		default:
			s.fail(w, http.StatusBadRequest, err)
		}
		return
	}
	s.logf("nimbus: delisted dataset %s (%d sales, gross %.2f)", id, st.Sales, st.Gross)
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleTenantMenu(w http.ResponseWriter, r *http.Request) {
	m := s.tenant(w, r)
	if m == nil {
		return
	}
	writeJSON(w, http.StatusOK, MenuResponse{Offerings: menuEntries(m.Broker.Menu(), m.Broker.Offering)})
}

func (s *Server) handleTenantCurve(w http.ResponseWriter, r *http.Request) {
	m := s.tenant(w, r)
	if m == nil {
		return
	}
	offering := r.URL.Query().Get("offering")
	loss := r.URL.Query().Get("loss")
	if offering == "" || loss == "" {
		s.fail(w, http.StatusBadRequest, errors.New("offering and loss query parameters are required"))
		return
	}
	o, err := m.Broker.Offering(offering)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	c, err := o.Curve(loss)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, CurveResponse{Offering: offering, Loss: loss, Points: c.Points()})
}

func (s *Server) handleTenantBuy(w http.ResponseWriter, r *http.Request) {
	m := s.tenant(w, r)
	if m == nil {
		return
	}
	if s.tenantRL != nil && !s.tenantRL.allow(m.ID) {
		if s.reg != nil {
			// m.ID names a live market (the Get above proved it), so the
			// label set is bounded by the registry's MaxMarkets cap.
			//lint:ignore telemetry-label-literal the market label names a live market resolved above; the registry caps live markets at MaxMarkets
			s.reg.Counter("nimbus_market_throttled_total", "market", m.ID).Inc()
			s.reg.Help("nimbus_market_throttled_total", "Purchases rejected by the per-tenant rate budget.")
		}
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: "tenant rate budget exceeded"})
		return
	}
	var req BuyRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding buy request: %w", err))
		return
	}
	p, err := m.Buy(req.Offering, req.Loss, req.Option, req.Value)
	if err != nil {
		s.failBuy(w, err)
		return
	}
	s.logf("nimbus: sold %s (%s) at x=%.3f for %.2f [market %s]", p.Offering, p.Loss, p.X, p.Price, m.ID)
	writeJSON(w, http.StatusOK, p)
}

func (s *Server) handleTenantStats(w http.ResponseWriter, r *http.Request) {
	m := s.tenant(w, r)
	if m == nil {
		return
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Offerings:    len(m.Broker.Menu()),
		Sales:        m.Broker.SaleCount(),
		TotalRevenue: m.Broker.TotalRevenue(),
		BrokerFees:   m.Broker.TotalFees(),
		Payouts:      m.Broker.Payouts(),
	})
}

func (s *Server) handleTenantStatement(w http.ResponseWriter, r *http.Request) {
	m := s.tenant(w, r)
	if m == nil {
		return
	}
	writeJSON(w, http.StatusOK, m.Statement())
}
