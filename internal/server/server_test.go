package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"nimbus/internal/dataset"
	"nimbus/internal/market"
	"nimbus/internal/ml"
	"nimbus/internal/pricing"
	"nimbus/internal/rng"
)

// newTestServer lists one regression offering and serves it via httptest.
func newTestServer(t *testing.T) (*httptest.Server, *market.Broker, string) {
	t.Helper()
	d, err := dataset.StandIn("CASP", dataset.GenConfig{Rows: 250, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := dataset.NewPair(d, rng.New(62))
	if err != nil {
		t.Fatal(err)
	}
	seller, err := market.NewSeller(pair, market.Research{
		Value:  func(e float64) float64 { return 80 / (1 + e) },
		Demand: func(e float64) float64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	broker := market.NewBroker(63)
	o, err := broker.List(market.OfferingConfig{
		Seller:  seller,
		Model:   ml.LinearRegression{Ridge: 1e-3},
		Grid:    pricing.DefaultGrid(15),
		Samples: 60,
		Seed:    64,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(broker, WithLogger(func(string, ...any) {})))
	t.Cleanup(srv.Close)
	return srv, broker, o.Name
}

func TestHealthz(t *testing.T) {
	srv, _, _ := newTestServer(t)
	c := NewClient(srv.URL)
	if !c.Healthy(context.Background()) {
		t.Fatal("healthz failed")
	}
}

func TestMenuEndpoint(t *testing.T) {
	srv, _, name := newTestServer(t)
	c := NewClient(srv.URL)
	menu, err := c.Menu(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(menu.Offerings) != 1 {
		t.Fatalf("menu %+v", menu)
	}
	e := menu.Offerings[0]
	if e.Name != name || e.Model != "linear-regression" || e.Features != 9 {
		t.Fatalf("entry %+v", e)
	}
	if len(e.Losses) != 1 || e.Losses[0] != "squared" {
		t.Fatalf("losses %v", e.Losses)
	}
	if e.ExpectedRevenue <= 0 {
		t.Fatal("expected revenue missing")
	}
}

func TestCurveEndpoint(t *testing.T) {
	srv, _, name := newTestServer(t)
	c := NewClient(srv.URL)
	curve, err := c.Curve(context.Background(), name, "squared")
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 15 {
		t.Fatalf("got %d points", len(curve.Points))
	}
	for i := 1; i < len(curve.Points); i++ {
		if curve.Points[i].Price < curve.Points[i-1].Price-1e-9 {
			t.Fatal("curve prices not monotone")
		}
		if curve.Points[i].Error > curve.Points[i-1].Error+1e-9 {
			t.Fatal("curve errors not anti-monotone")
		}
	}
	// Error cases.
	if _, err := c.Curve(context.Background(), "ghost", "squared"); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("want 404, got %v", err)
	}
	if _, err := c.Curve(context.Background(), name, "hinge"); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("want 404, got %v", err)
	}
	resp, err := http.Get(srv.URL + "/api/v1/curve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing params: %d", resp.StatusCode)
	}
}

func TestBuyOptions(t *testing.T) {
	srv, broker, name := newTestServer(t)
	c := NewClient(srv.URL)
	ctx := context.Background()

	q, err := c.Buy(ctx, BuyRequest{Offering: name, Loss: "squared", Option: "quality", Value: 5})
	if err != nil {
		t.Fatal(err)
	}
	if q.X != 5 || len(q.Weights) != 9 {
		t.Fatalf("purchase %+v", q)
	}

	eb, err := c.Buy(ctx, BuyRequest{Offering: name, Loss: "squared", Option: "error-budget", Value: q.ExpectedError * 2})
	if err != nil {
		t.Fatal(err)
	}
	if eb.ExpectedError > q.ExpectedError*2+1e-9 {
		t.Fatalf("error budget violated: %v", eb.ExpectedError)
	}

	pb, err := c.Buy(ctx, BuyRequest{Offering: name, Loss: "squared", Option: "price-budget", Value: q.Price})
	if err != nil {
		t.Fatal(err)
	}
	if pb.Price > q.Price+1e-6 {
		t.Fatalf("price budget violated: %v > %v", pb.Price, q.Price)
	}

	if got := len(broker.Sales()); got != 3 {
		t.Fatalf("ledger has %d sales", got)
	}
}

func TestBuyErrors(t *testing.T) {
	srv, _, name := newTestServer(t)
	c := NewClient(srv.URL)
	ctx := context.Background()

	cases := []struct {
		req  BuyRequest
		want int
	}{
		{BuyRequest{Offering: "ghost", Loss: "squared", Option: "quality", Value: 1}, http.StatusNotFound},
		{BuyRequest{Offering: name, Loss: "squared", Option: "teleport", Value: 1}, http.StatusBadRequest},
		{BuyRequest{Offering: name, Loss: "squared", Option: "error-budget", Value: 0}, http.StatusUnprocessableEntity},
		{BuyRequest{Offering: name, Loss: "squared", Option: "price-budget", Value: 0}, http.StatusUnprocessableEntity},
	}
	for i, tc := range cases {
		if _, err := c.Buy(ctx, tc.req); !isStatus(err, tc.want) {
			t.Errorf("case %d: want %d, got %v", i, tc.want, err)
		}
	}

	// Malformed JSON and unknown fields.
	resp, err := http.Post(srv.URL+"/api/v1/buy", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/api/v1/buy", "application/json", strings.NewReader(`{"surprise": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", resp.StatusCode)
	}
}

func TestBuyResponseIsValidJSON(t *testing.T) {
	srv, _, name := newTestServer(t)
	body := strings.NewReader(`{"offering":"` + name + `","loss":"squared","option":"quality","value":3}`)
	resp, err := http.Post(srv.URL+"/api/v1/buy", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"offering", "loss", "x", "ncp", "price", "expected_error", "weights"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("response missing %q: %v", key, m)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, broker, name := newTestServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewClient(srv.URL)
			for i := 0; i < 4; i++ {
				if _, err := c.Buy(context.Background(), BuyRequest{
					Offering: name, Loss: "squared", Option: "quality", Value: 2,
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(broker.Sales()) != 24 {
		t.Fatalf("ledger %d", len(broker.Sales()))
	}
}

func TestStatsAndOfferingsEndpoints(t *testing.T) {
	srv, broker, name := newTestServer(t)
	c := NewClient(srv.URL)
	ctx := context.Background()

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Offerings != 1 || stats.Sales != 0 || stats.TotalRevenue != 0 {
		t.Fatalf("fresh stats %+v", stats)
	}
	if _, err := c.Buy(ctx, BuyRequest{Offering: name, Loss: "squared", Option: "quality", Value: 4}); err != nil {
		t.Fatal(err)
	}
	stats, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sales != 1 || stats.TotalRevenue != broker.TotalRevenue() {
		t.Fatalf("stats after sale %+v", stats)
	}

	snaps, err := c.Offerings(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].Name != name || !snaps[0].ArbitrageFree {
		t.Fatalf("offerings %+v", snaps)
	}

	st, err := c.Statement(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sales != 1 || len(st.Lines) != 1 || st.Lines[0].Offering != name {
		t.Fatalf("statement %+v", st)
	}
}

func isStatus(err error, code int) bool {
	apiErr, ok := err.(*APIError)
	return ok && apiErr.StatusCode == code
}
