package server

import (
	"net"
	"net/http"
	"sync"
	"time"

	"nimbus/internal/telemetry"
)

// A public marketplace endpoint needs per-client rate limiting: model
// purchases are cheap for the broker but each one hands out a fresh noisy
// instance, and an unthrottled scraper could hoard instances faster than
// the pricing assumes. (Averaging them still cannot beat the arbitrage-free
// prices — see the attack experiment — but the broker shouldn't hand out
// free compute either.)

// DefaultBucketTTL is how long an idle client keeps its token bucket; a
// bucket idle longer than this refills to the full burst anyway, so
// dropping it changes nothing for the client while keeping the bucket map
// proportional to the *active* client set rather than every address ever
// seen — the property that matters at millions-of-users scale.
const DefaultBucketTTL = time.Minute

// RateLimiter is a per-client token bucket keyed by remote IP.
type RateLimiter struct {
	mu sync.Mutex
	// rate is tokens added per second; burst the bucket capacity.
	rate, burst float64            // guarded by mu
	buckets     map[string]*bucket // guarded by mu
	// ttl is the idle eviction horizon; lastSweep gates how often the map
	// is swept (at most once per sweepEvery) so eviction stays O(1)
	// amortized on the allow path.
	ttl        time.Duration    // guarded by mu
	sweepEvery time.Duration    // guarded by mu
	lastSweep  time.Time        // guarded by mu
	now        func() time.Time // guarded by mu; injectable clock for tests

	throttled *telemetry.Counter // guarded by mu
	evicted   *telemetry.Counter // guarded by mu
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter allows `rate` requests per second with bursts up to
// `burst` per client IP. Idle buckets are evicted after DefaultBucketTTL
// (tunable via SetTTL).
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	if rate <= 0 {
		rate = 10
	}
	if burst < 1 {
		burst = 1
	}
	rl := &RateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
	rl.SetTTL(DefaultBucketTTL)
	return rl
}

// SetTTL changes the idle-bucket eviction horizon. Sweeps run lazily on
// Allow, at most once per ttl/4.
func (rl *RateLimiter) SetTTL(ttl time.Duration) {
	if ttl <= 0 {
		ttl = DefaultBucketTTL
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	rl.ttl = ttl
	rl.sweepEvery = ttl / 4
}

// SetTelemetry points the limiter's throttle/eviction counters at reg.
func (rl *RateLimiter) SetTelemetry(reg *telemetry.Registry) {
	reg.Help("nimbus_http_throttled_total", "Requests rejected by the per-client rate limiter.")
	reg.Help("nimbus_ratelimit_evicted_total", "Idle client buckets evicted by the TTL sweep.")
	// Manual unlock: GaugeFunc below must run outside the lock (its closure
	// takes rl.mu on every scrape); the unlock-path rule checks the release.
	rl.mu.Lock()
	rl.throttled = reg.Counter("nimbus_http_throttled_total")
	rl.evicted = reg.Counter("nimbus_ratelimit_evicted_total")
	rl.mu.Unlock()
	reg.GaugeFunc("nimbus_ratelimit_buckets", func() float64 { return float64(rl.Len()) })
}

// Len reports the number of live client buckets.
func (rl *RateLimiter) Len() int {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return len(rl.buckets)
}

// allow reports whether the client may proceed and debits a token if so.
func (rl *RateLimiter) allow(client string) bool {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.now()
	rl.sweepLocked(now)
	b, ok := rl.buckets[client]
	if !ok {
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * rl.rate
	if b.tokens > rl.burst {
		b.tokens = rl.burst
	}
	b.last = now
	if b.tokens < 1 {
		rl.throttled.Inc() // under mu: SetTelemetry may race otherwise
		return false
	}
	b.tokens--
	return true
}

// sweepLocked evicts buckets idle longer than the TTL, at most once per
// sweepEvery. Callers hold rl.mu.
//
//lint:holds mu
func (rl *RateLimiter) sweepLocked(now time.Time) {
	if now.Sub(rl.lastSweep) < rl.sweepEvery {
		return
	}
	rl.lastSweep = now
	for k, b := range rl.buckets {
		if now.Sub(b.last) > rl.ttl {
			delete(rl.buckets, k)
			rl.evicted.Inc()
		}
	}
}

// Wrap applies the limiter to a handler, answering 429 when a client
// exceeds its budget.
func (rl *RateLimiter) Wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		client, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			client = r.RemoteAddr
		}
		if !rl.allow(client) {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: "rate limit exceeded"})
			return
		}
		h.ServeHTTP(w, r)
	})
}
