package server

import (
	"net"
	"net/http"
	"sync"
	"time"
)

// A public marketplace endpoint needs per-client rate limiting: model
// purchases are cheap for the broker but each one hands out a fresh noisy
// instance, and an unthrottled scraper could hoard instances faster than
// the pricing assumes. (Averaging them still cannot beat the arbitrage-free
// prices — see the attack experiment — but the broker shouldn't hand out
// free compute either.)

// RateLimiter is a per-client token bucket keyed by remote IP.
type RateLimiter struct {
	mu sync.Mutex
	// rate is tokens added per second; burst the bucket capacity.
	rate, burst float64
	buckets     map[string]*bucket
	now         func() time.Time // injectable clock for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter allows `rate` requests per second with bursts up to
// `burst` per client IP.
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	if rate <= 0 {
		rate = 10
	}
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow reports whether the client may proceed and debits a token if so.
func (rl *RateLimiter) allow(client string) bool {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.now()
	b, ok := rl.buckets[client]
	if !ok {
		// Opportunistic cleanup keeps the map from growing without bound
		// under address churn.
		if len(rl.buckets) > 10000 {
			for k, old := range rl.buckets {
				if now.Sub(old.last) > time.Minute {
					delete(rl.buckets, k)
				}
			}
		}
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * rl.rate
	if b.tokens > rl.burst {
		b.tokens = rl.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Wrap applies the limiter to a handler, answering 429 when a client
// exceeds its budget.
func (rl *RateLimiter) Wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		client, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			client = r.RemoteAddr
		}
		if !rl.allow(client) {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: "rate limit exceeded"})
			return
		}
		h.ServeHTTP(w, r)
	})
}
