package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"nimbus/internal/market"
	"nimbus/internal/telemetry"
)

// Client is the Go client for the Nimbus broker API.
type Client struct {
	// BaseURL is the broker root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTPClient: http.DefaultClient}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// APIError is a non-2xx response from the broker.
type APIError struct {
	StatusCode int
	Message    string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("nimbus API: HTTP %d: %s", e.StatusCode, e.Message)
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rdr io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("encoding request: %w", err)
		}
		rdr = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rdr)
	if err != nil {
		return fmt.Errorf("building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("calling broker: %w", err)
	}
	//lint:ignore no-dropped-error a failed close of a fully-read response body has nothing for the client to act on
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e ErrorResponse
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	return nil
}

// Menu fetches the broker's offerings.
func (c *Client) Menu(ctx context.Context) (*MenuResponse, error) {
	var out MenuResponse
	if err := c.do(ctx, http.MethodGet, "/api/v1/menu", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Curve fetches a price–error curve.
func (c *Client) Curve(ctx context.Context, offering, loss string) (*CurveResponse, error) {
	var out CurveResponse
	q := url.Values{"offering": {offering}, "loss": {loss}}
	if err := c.do(ctx, http.MethodGet, "/api/v1/curve?"+q.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Buy executes a purchase.
func (c *Client) Buy(ctx context.Context, req BuyRequest) (*market.Purchase, error) {
	var out market.Purchase
	if err := c.do(ctx, http.MethodPost, "/api/v1/buy", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the broker's books.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.do(ctx, http.MethodGet, "/api/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Statement fetches the per-offering accounting report.
func (c *Client) Statement(ctx context.Context) (*market.Statement, error) {
	var out market.Statement
	if err := c.do(ctx, http.MethodGet, "/api/v1/statement", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Offerings fetches the audit snapshots of every listing.
func (c *Client) Offerings(ctx context.Context) ([]market.OfferingSnapshot, error) {
	var out []market.OfferingSnapshot
	if err := c.do(ctx, http.MethodGet, "/api/v1/offerings", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Metrics fetches the broker's telemetry snapshot.
func (c *Client) Metrics(ctx context.Context) (*telemetry.Snapshot, error) {
	var out telemetry.Snapshot
	if err := c.do(ctx, http.MethodGet, "/api/v1/metrics", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthy reports whether the broker responds to the liveness probe.
func (c *Client) Healthy(ctx context.Context) bool {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil) == nil
}
