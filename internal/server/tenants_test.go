package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"nimbus/internal/registry"
	"nimbus/internal/telemetry"
)

// newMultiServer serves an empty multi-tenant registry (memory-only) with
// the full middleware stack, mirroring how nimbusd assembles it.
func newMultiServer(t *testing.T, opts ...Option) (*httptest.Server, *registry.Registry, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	r, err := registry.Open(registry.Config{Commission: 0.1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	logf := func(string, ...any) {}
	opts = append([]Option{WithLogger(logf), WithTelemetry(reg)}, opts...)
	h := WithMiddleware(NewMulti(r, opts...), logf, reg)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, r, reg
}

// cheapListRequest is a small generator-backed listing for HTTP tests.
func cheapListRequest(id string, seed int64) ListDatasetRequest {
	return ListDatasetRequest{Spec: registry.Spec{
		ID:        id,
		Owner:     "seller-" + id,
		Generator: "CASP",
		Rows:      150,
		Grid:      8,
		Samples:   24,
		Seed:      seed,
	}}
}

func TestDatasetCRUDOverHTTP(t *testing.T) {
	srv, _, _ := newMultiServer(t)
	c := NewClient(srv.URL)
	ctx := context.Background()

	// Empty marketplace.
	ds, err := c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Markets != 0 || len(ds.Datasets) != 0 {
		t.Fatalf("fresh marketplace %+v", ds)
	}

	// Create.
	created, err := c.ListDataset(ctx, cheapListRequest("acme", 7))
	if err != nil {
		t.Fatal(err)
	}
	offering := "acme/linear-regression"
	if !reflect.DeepEqual(created.Offerings, []string{offering}) {
		t.Fatalf("created %+v", created)
	}
	// Duplicate ID conflicts.
	if _, err := c.ListDataset(ctx, cheapListRequest("acme", 8)); !isStatus(err, http.StatusConflict) {
		t.Fatalf("duplicate list: %v", err)
	}
	// Bad spec is a 400.
	if _, err := c.ListDataset(ctx, cheapListRequest(".hidden", 9)); !isStatus(err, http.StatusBadRequest) {
		t.Fatalf("bad id: %v", err)
	}

	// Read: collection, detail, tenant-scoped browsing.
	ds, err = c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Markets != 1 || ds.Datasets[0].ID != "acme" || ds.Datasets[0].Owner != "seller-acme" {
		t.Fatalf("datasets %+v", ds)
	}
	detail, err := c.Dataset(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if detail.Spec.ID != "acme" || detail.Spec.Generator != "CASP" {
		t.Fatalf("detail %+v", detail)
	}
	menu, err := c.TenantMenu(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if len(menu.Offerings) != 1 || menu.Offerings[0].Name != offering {
		t.Fatalf("tenant menu %+v", menu)
	}
	curve, err := c.TenantCurve(ctx, "acme", offering, "squared")
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) == 0 {
		t.Fatal("empty curve")
	}

	// Buy inside the tenant, then via the legacy union route.
	p, err := c.TenantBuy(ctx, "acme", BuyRequest{Offering: offering, Loss: "squared", Option: "quality", Value: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.Price <= 0 {
		t.Fatalf("purchase %+v", p)
	}
	if _, err := c.Buy(ctx, BuyRequest{Offering: offering, Loss: "squared", Option: "quality", Value: 3}); err != nil {
		t.Fatal(err)
	}
	// The union menu and stats see the tenant.
	union, err := c.Menu(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(union.Offerings) != 1 || union.Offerings[0].Name != offering {
		t.Fatalf("union menu %+v", union)
	}
	stats, err := c.TenantStats(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sales != 2 {
		t.Fatalf("tenant stats %+v", stats)
	}
	global, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if global.Sales != 2 || global.TotalRevenue != stats.TotalRevenue {
		t.Fatalf("global stats %+v vs tenant %+v", global, stats)
	}
	st, err := c.TenantStatement(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if st.Sales != 2 || len(st.Lines) != 1 {
		t.Fatalf("tenant statement %+v", st)
	}

	// Delete: final statement comes back, then everything 404s.
	final, err := c.DelistDataset(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if final.Sales != 2 {
		t.Fatalf("final statement %+v", final)
	}
	if _, err := c.Dataset(ctx, "acme"); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("detail after delist: %v", err)
	}
	if _, err := c.TenantBuy(ctx, "acme", BuyRequest{Offering: offering, Loss: "squared", Option: "quality", Value: 2}); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("tenant buy after delist: %v", err)
	}
	if _, err := c.Buy(ctx, BuyRequest{Offering: offering, Loss: "squared", Option: "quality", Value: 2}); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("union buy after delist: %v", err)
	}
	if _, err := c.DelistDataset(ctx, "acme"); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("double delist: %v", err)
	}
}

func TestTenantIsolation(t *testing.T) {
	srv, r, reg := newMultiServer(t)
	c := NewClient(srv.URL)
	ctx := context.Background()
	for i, id := range []string{"north", "south"} {
		if _, err := c.ListDataset(ctx, cheapListRequest(id, int64(20+10*i))); err != nil {
			t.Fatal(err)
		}
	}
	// A tenant-scoped buy cannot reach another tenant's offering even with
	// a valid global name.
	if _, err := c.TenantBuy(ctx, "north", BuyRequest{Offering: "south/linear-regression", Loss: "squared", Option: "quality", Value: 2}); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("cross-tenant buy: %v", err)
	}
	// Sales land in the right market's books and telemetry.
	for i := 0; i < 3; i++ {
		if _, err := c.TenantBuy(ctx, "north", BuyRequest{Offering: "north/linear-regression", Loss: "squared", Option: "quality", Value: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.TenantBuy(ctx, "south", BuyRequest{Offering: "south/linear-regression", Loss: "squared", Option: "quality", Value: 2}); err != nil {
		t.Fatal(err)
	}
	north, _ := r.Get("north")
	south, _ := r.Get("south")
	if north.Broker.SaleCount() != 3 || south.Broker.SaleCount() != 1 {
		t.Fatalf("ledgers: north %d, south %d", north.Broker.SaleCount(), south.Broker.SaleCount())
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue("nimbus_market_purchases_total", "market", "north"); got != 3 {
		t.Fatalf("north purchase counter %v", got)
	}
	if got := snap.CounterValue("nimbus_market_purchases_total", "market", "south"); got != 1 {
		t.Fatalf("south purchase counter %v", got)
	}
}

func TestTenantRateBudget(t *testing.T) {
	srv, _, reg := newMultiServer(t, WithTenantRate(1, 2))
	c := NewClient(srv.URL)
	ctx := context.Background()
	if _, err := c.ListDataset(ctx, cheapListRequest("busy", 31)); err != nil {
		t.Fatal(err)
	}
	req := BuyRequest{Offering: "busy/linear-regression", Loss: "squared", Option: "quality", Value: 2}
	var throttled int
	for i := 0; i < 5; i++ {
		if _, err := c.TenantBuy(ctx, "busy", req); isStatus(err, http.StatusTooManyRequests) {
			throttled++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if throttled != 3 {
		t.Fatalf("throttled %d of 5 with burst 2", throttled)
	}
	if got := reg.Snapshot().CounterValue("nimbus_market_throttled_total", "market", "busy"); got != 3 {
		t.Fatalf("throttle counter %v", got)
	}
	// The budget is per tenant, not global: an unknown tenant 404s before
	// touching the budget.
	if _, err := c.TenantBuy(ctx, "nobody", req); !isStatus(err, http.StatusNotFound) {
		t.Fatalf("unknown tenant: %v", err)
	}
}
