package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestRateLimiterAllowsBurstThenBlocks(t *testing.T) {
	rl := NewRateLimiter(1, 3)
	clock := time.Unix(1000, 0)
	rl.now = func() time.Time { return clock }
	for i := 0; i < 3; i++ {
		if !rl.allow("1.2.3.4") {
			t.Fatalf("burst request %d blocked", i)
		}
	}
	if rl.allow("1.2.3.4") {
		t.Fatal("over-burst request allowed")
	}
	// A different client has its own bucket.
	if !rl.allow("5.6.7.8") {
		t.Fatal("independent client blocked")
	}
	// Tokens refill with time.
	clock = clock.Add(2 * time.Second)
	if !rl.allow("1.2.3.4") {
		t.Fatal("refilled request blocked")
	}
}

func TestRateLimiterRefillCap(t *testing.T) {
	rl := NewRateLimiter(100, 2)
	clock := time.Unix(0, 0)
	rl.now = func() time.Time { return clock }
	if !rl.allow("a") || !rl.allow("a") {
		t.Fatal("burst blocked")
	}
	// A long idle period must not accumulate more than `burst` tokens.
	clock = clock.Add(time.Hour)
	if !rl.allow("a") || !rl.allow("a") {
		t.Fatal("post-idle burst blocked")
	}
	if rl.allow("a") {
		t.Fatal("bucket exceeded burst after idle")
	}
}

func TestRateLimiterDefaults(t *testing.T) {
	rl := NewRateLimiter(-1, 0)
	if rl.rate != 10 || rl.burst != 1 {
		t.Fatalf("defaults %v %v", rl.rate, rl.burst)
	}
}

func TestRateLimiterWrapHTTP(t *testing.T) {
	rl := NewRateLimiter(0.001, 1) // effectively one request
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(rl.Wrap(inner))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("missing Retry-After")
	}
}

func TestRateLimiterCleanup(t *testing.T) {
	rl := NewRateLimiter(1, 1)
	clock := time.Unix(0, 0)
	rl.now = func() time.Time { return clock }
	for i := 0; i < 10001; i++ {
		rl.allow(string(rune(i)))
	}
	clock = clock.Add(2 * time.Minute)
	rl.allow("fresh") // triggers cleanup of stale buckets
	rl.mu.Lock()
	n := len(rl.buckets)
	rl.mu.Unlock()
	if n > 2 {
		t.Fatalf("cleanup left %d buckets", n)
	}
}
