package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"nimbus/internal/telemetry"
)

func TestRateLimiterAllowsBurstThenBlocks(t *testing.T) {
	rl := NewRateLimiter(1, 3)
	clock := time.Unix(1000, 0)
	rl.now = func() time.Time { return clock }
	for i := 0; i < 3; i++ {
		if !rl.allow("1.2.3.4") {
			t.Fatalf("burst request %d blocked", i)
		}
	}
	if rl.allow("1.2.3.4") {
		t.Fatal("over-burst request allowed")
	}
	// A different client has its own bucket.
	if !rl.allow("5.6.7.8") {
		t.Fatal("independent client blocked")
	}
	// Tokens refill with time.
	clock = clock.Add(2 * time.Second)
	if !rl.allow("1.2.3.4") {
		t.Fatal("refilled request blocked")
	}
}

func TestRateLimiterRefillCap(t *testing.T) {
	rl := NewRateLimiter(100, 2)
	clock := time.Unix(0, 0)
	rl.now = func() time.Time { return clock }
	if !rl.allow("a") || !rl.allow("a") {
		t.Fatal("burst blocked")
	}
	// A long idle period must not accumulate more than `burst` tokens.
	clock = clock.Add(time.Hour)
	if !rl.allow("a") || !rl.allow("a") {
		t.Fatal("post-idle burst blocked")
	}
	if rl.allow("a") {
		t.Fatal("bucket exceeded burst after idle")
	}
}

func TestRateLimiterDefaults(t *testing.T) {
	rl := NewRateLimiter(-1, 0)
	if rl.rate != 10 || rl.burst != 1 {
		t.Fatalf("defaults %v %v", rl.rate, rl.burst)
	}
}

func TestRateLimiterWrapHTTP(t *testing.T) {
	rl := NewRateLimiter(0.001, 1) // effectively one request
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(rl.Wrap(inner))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("missing Retry-After")
	}
}

func TestRateLimiterCleanup(t *testing.T) {
	rl := NewRateLimiter(1, 1)
	clock := time.Unix(0, 0)
	rl.now = func() time.Time { return clock }
	for i := 0; i < 10001; i++ {
		rl.allow(string(rune(i)))
	}
	clock = clock.Add(2 * time.Minute)
	rl.allow("fresh") // triggers cleanup of stale buckets
	if n := rl.Len(); n > 2 {
		t.Fatalf("cleanup left %d buckets", n)
	}
}

// TestRateLimiterTTLEviction proves the bucket map shrinks back to the
// active client set: address churn must not grow memory without bound.
func TestRateLimiterTTLEviction(t *testing.T) {
	rl := NewRateLimiter(100, 2)
	rl.SetTTL(10 * time.Second)
	clock := time.Unix(0, 0)
	rl.now = func() time.Time { return clock }

	// 5000 distinct clients churn through, spread over time so no single
	// sweep sees them all as fresh.
	for i := 0; i < 5000; i++ {
		rl.allow(fmt.Sprintf("10.0.%d.%d", i/250, i%250))
		if i%100 == 0 {
			clock = clock.Add(time.Second)
		}
	}
	if rl.Len() >= 5000 {
		t.Fatalf("no eviction during churn: %d buckets", rl.Len())
	}

	// After everyone goes idle past the TTL, one active client's request
	// sweeps the rest away.
	clock = clock.Add(time.Minute)
	rl.allow("10.9.9.9")
	if n := rl.Len(); n != 1 {
		t.Fatalf("idle buckets survived the TTL: %d", n)
	}

	// The surviving client still has correct token state (not reset by
	// sweeps it survived).
	if !rl.allow("10.9.9.9") {
		t.Fatal("active client throttled after sweep")
	}
}

func TestRateLimiterSweepKeepsActiveBuckets(t *testing.T) {
	rl := NewRateLimiter(1, 5)
	rl.SetTTL(10 * time.Second)
	clock := time.Unix(0, 0)
	rl.now = func() time.Time { return clock }
	for i := 0; i < 4; i++ {
		if !rl.allow("busy") {
			t.Fatalf("request %d throttled within burst", i)
		}
		clock = clock.Add(3 * time.Second) // always inside the TTL
	}
	if rl.Len() != 1 {
		t.Fatalf("active bucket evicted (len=%d)", rl.Len())
	}
}

func TestRateLimiterTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	rl := NewRateLimiter(0.001, 1)
	rl.SetTelemetry(reg)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(rl.Wrap(inner))
	defer srv.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	snap := reg.Snapshot()
	if got := snap.CounterValue("nimbus_http_throttled_total"); got != 2 {
		t.Fatalf("throttled %v", got)
	}
	if got := snap.GaugeValue("nimbus_ratelimit_buckets"); got != 1 {
		t.Fatalf("bucket gauge %v", got)
	}
}
