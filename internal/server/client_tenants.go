package server

import (
	"context"
	"net/http"
	"net/url"

	"nimbus/internal/market"
)

// Client methods for the multi-tenant dataset API (NewMulti servers).
// Dataset IDs are path-escaped, so callers can pass them verbatim.

func datasetPath(id string, sub string) string {
	p := "/api/v1/datasets/" + url.PathEscape(id)
	if sub != "" {
		p += "/" + sub
	}
	return p
}

// Datasets lists every live dataset market with its books.
func (c *Client) Datasets(ctx context.Context) (*DatasetsResponse, error) {
	var out DatasetsResponse
	if err := c.do(ctx, http.MethodGet, "/api/v1/datasets", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ListDataset trains, prices and opens a market for a new dataset.
func (c *Client) ListDataset(ctx context.Context, req ListDatasetRequest) (*DatasetResponse, error) {
	var out DatasetResponse
	if err := c.do(ctx, http.MethodPost, "/api/v1/datasets", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Dataset fetches one live dataset market.
func (c *Client) Dataset(ctx context.Context, id string) (*DatasetResponse, error) {
	var out DatasetResponse
	if err := c.do(ctx, http.MethodGet, datasetPath(id, ""), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DelistDataset drains and archives a dataset market, returning its final
// accounting statement.
func (c *Client) DelistDataset(ctx context.Context, id string) (*market.Statement, error) {
	var out market.Statement
	if err := c.do(ctx, http.MethodDelete, datasetPath(id, ""), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TenantMenu fetches one tenant's offerings.
func (c *Client) TenantMenu(ctx context.Context, id string) (*MenuResponse, error) {
	var out MenuResponse
	if err := c.do(ctx, http.MethodGet, datasetPath(id, "menu"), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TenantCurve fetches a price–error curve inside one tenant market.
func (c *Client) TenantCurve(ctx context.Context, id, offering, loss string) (*CurveResponse, error) {
	var out CurveResponse
	q := url.Values{"offering": {offering}, "loss": {loss}}
	if err := c.do(ctx, http.MethodGet, datasetPath(id, "curve")+"?"+q.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TenantBuy purchases inside one tenant market.
func (c *Client) TenantBuy(ctx context.Context, id string, req BuyRequest) (*market.Purchase, error) {
	var out market.Purchase
	if err := c.do(ctx, http.MethodPost, datasetPath(id, "buy"), req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TenantStats fetches one tenant's books.
func (c *Client) TenantStats(ctx context.Context, id string) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.do(ctx, http.MethodGet, datasetPath(id, "stats"), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TenantStatement fetches one tenant's accounting report.
func (c *Client) TenantStatement(ctx context.Context, id string) (*market.Statement, error) {
	var out market.Statement
	if err := c.do(ctx, http.MethodGet, datasetPath(id, "statement"), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
