// Package server exposes a Nimbus broker over HTTP — the interactive
// marketplace surface of the SIGMOD demo. Buyers browse the menu, fetch
// price–error curves and purchase noisy model instances as JSON.
//
//	GET  /healthz                         liveness probe
//	GET  /metrics                         Prometheus text-format telemetry
//	GET  /api/v1/menu                     offerings with supported losses
//	GET  /api/v1/curve?offering=&loss=    the price–error curve
//	POST /api/v1/buy                      execute a purchase
//	GET  /api/v1/metrics                  telemetry snapshot as JSON
//
// The buy request body selects one of the paper's three purchase options:
//
//	{"offering": "...", "loss": "...", "option": "quality",      "value": 10}
//	{"offering": "...", "loss": "...", "option": "error-budget", "value": 0.5}
//	{"offering": "...", "loss": "...", "option": "price-budget", "value": 25}
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"

	"nimbus/internal/market"
	"nimbus/internal/pricing"
	"nimbus/internal/telemetry"
)

// Server is an http.Handler serving a broker.
type Server struct {
	broker *market.Broker
	mux    *http.ServeMux
	logf   func(format string, args ...any)
	reg    *telemetry.Registry
}

// Option customizes a Server.
type Option func(*Server)

// WithLogger routes request logging; the default is log.Printf.
func WithLogger(logf func(format string, args ...any)) Option {
	return func(s *Server) { s.logf = logf }
}

// WithTelemetry exposes the registry at GET /metrics (Prometheus text
// format) and GET /api/v1/metrics (JSON snapshot). The same registry is
// typically shared with WithMiddleware, the rate limiter and the broker so
// one scrape covers the whole serving stack.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// New wraps the broker in an HTTP API.
func New(b *market.Broker, opts ...Option) *Server {
	s := &Server{broker: b, mux: http.NewServeMux(), logf: log.Printf}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetricsProm)
	s.mux.HandleFunc("GET /api/v1/metrics", s.handleMetricsJSON)
	s.mux.HandleFunc("GET /api/v1/menu", s.handleMenu)
	s.mux.HandleFunc("GET /api/v1/curve", s.handleCurve)
	s.mux.HandleFunc("POST /api/v1/buy", s.handleBuy)
	s.mux.HandleFunc("GET /api/v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/v1/statement", s.handleStatement)
	s.mux.HandleFunc("GET /api/v1/offerings", s.handleOfferings)
	s.registerUI()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// MenuEntry is one offering in the menu response.
type MenuEntry struct {
	Name            string   `json:"name"`
	Model           string   `json:"model"`
	Losses          []string `json:"losses"`
	Dataset         string   `json:"dataset"`
	TrainRows       int      `json:"train_rows"`
	TestRows        int      `json:"test_rows"`
	Features        int      `json:"features"`
	ExpectedRevenue float64  `json:"expected_revenue"`
}

// MenuResponse is the GET /api/v1/menu payload.
type MenuResponse struct {
	Offerings []MenuEntry `json:"offerings"`
}

// CurveResponse is the GET /api/v1/curve payload.
type CurveResponse struct {
	Offering string                    `json:"offering"`
	Loss     string                    `json:"loss"`
	Points   []pricing.PriceErrorPoint `json:"points"`
}

// BuyRequest is the POST /api/v1/buy body.
type BuyRequest struct {
	Offering string  `json:"offering"`
	Loss     string  `json:"loss"`
	Option   string  `json:"option"` // "quality", "error-budget" or "price-budget"
	Value    float64 `json:"value"`
}

// ErrorResponse is the error payload for all endpoints.
type ErrorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMenu(w http.ResponseWriter, _ *http.Request) {
	names := s.broker.Menu()
	resp := MenuResponse{Offerings: make([]MenuEntry, 0, len(names))}
	for _, name := range names {
		o, err := s.broker.Offering(name)
		if err != nil {
			continue // raced with a concurrent relisting; skip
		}
		stats := o.Pair.Stats()
		resp.Offerings = append(resp.Offerings, MenuEntry{
			Name:            o.Name,
			Model:           o.Model.Name(),
			Losses:          o.LossNames(),
			Dataset:         o.Pair.Name,
			TrainRows:       stats.N1,
			TestRows:        stats.N2,
			Features:        stats.D,
			ExpectedRevenue: o.ExpectedRevenue,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCurve(w http.ResponseWriter, r *http.Request) {
	offering := r.URL.Query().Get("offering")
	loss := r.URL.Query().Get("loss")
	if offering == "" || loss == "" {
		s.fail(w, http.StatusBadRequest, errors.New("offering and loss query parameters are required"))
		return
	}
	o, err := s.broker.Offering(offering)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	c, err := o.Curve(loss)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, CurveResponse{Offering: offering, Loss: loss, Points: c.Points()})
}

func (s *Server) handleBuy(w http.ResponseWriter, r *http.Request) {
	var req BuyRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding buy request: %w", err))
		return
	}
	var p *market.Purchase
	var err error
	switch req.Option {
	case "quality":
		p, err = s.broker.BuyAtQuality(req.Offering, req.Loss, req.Value)
	case "error-budget":
		p, err = s.broker.BuyWithErrorBudget(req.Offering, req.Loss, req.Value)
	case "price-budget":
		p, err = s.broker.BuyWithPriceBudget(req.Offering, req.Loss, req.Value)
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown option %q (want quality, error-budget or price-budget)", req.Option))
		return
	}
	if err != nil {
		switch {
		case errors.Is(err, market.ErrUnknownOffering):
			s.fail(w, http.StatusNotFound, err)
		case errors.Is(err, pricing.ErrUnattainable), errors.Is(err, pricing.ErrOverBudget):
			s.fail(w, http.StatusUnprocessableEntity, err)
		default:
			s.fail(w, http.StatusBadRequest, err)
		}
		return
	}
	s.logf("nimbus: sold %s (%s) at x=%.3f for %.2f", p.Offering, p.Loss, p.X, p.Price)
	writeJSON(w, http.StatusOK, p)
}

// StatsResponse is the GET /api/v1/stats payload: the broker's books.
type StatsResponse struct {
	Offerings    int     `json:"offerings"`
	Sales        int     `json:"sales"`
	TotalRevenue float64 `json:"total_revenue"`
	// BrokerFees is the commission kept by the broker; Payouts is what
	// each offering's seller is owed.
	BrokerFees float64            `json:"broker_fees"`
	Payouts    map[string]float64 `json:"payouts"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Offerings:    len(s.broker.Menu()),
		Sales:        s.broker.SaleCount(),
		TotalRevenue: s.broker.TotalRevenue(),
		BrokerFees:   s.broker.TotalFees(),
		Payouts:      s.broker.Payouts(),
	})
}

// handleStatement serves the per-offering accounting report.
func (s *Server) handleStatement(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.broker.Statement())
}

// handleOfferings serves the audit snapshots of every listing.
func (s *Server) handleOfferings(w http.ResponseWriter, _ *http.Request) {
	snaps := make([]market.OfferingSnapshot, 0)
	for _, name := range s.broker.Menu() {
		o, err := s.broker.Offering(name)
		if err != nil {
			continue
		}
		snaps = append(snaps, o.Snapshot())
	}
	writeJSON(w, http.StatusOK, snaps)
}

// handleMetricsProm serves the shared registry in Prometheus text format.
// With no registry configured the body is empty but still scrapeable.
func (s *Server) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.logf("nimbus: writing metrics: %v", err)
	}
}

// handleMetricsJSON serves the registry snapshot as JSON for dashboards
// and the load generator.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing to do but note it server-side.
		log.Printf("nimbus: encoding response: %v", err)
	}
}
