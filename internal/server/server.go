// Package server exposes a Nimbus broker over HTTP — the interactive
// marketplace surface of the SIGMOD demo. Buyers browse the menu, fetch
// price–error curves and purchase noisy model instances as JSON.
//
//	GET  /healthz                         liveness probe
//	GET  /metrics                         Prometheus text-format telemetry
//	GET  /api/v1/menu                     offerings with supported losses
//	GET  /api/v1/curve?offering=&loss=    the price–error curve
//	POST /api/v1/buy                      execute a purchase
//	GET  /api/v1/metrics                  telemetry snapshot as JSON
//
// The buy request body selects one of the paper's three purchase options:
//
//	{"offering": "...", "loss": "...", "option": "quality",      "value": 10}
//	{"offering": "...", "loss": "...", "option": "error-budget", "value": 0.5}
//	{"offering": "...", "loss": "...", "option": "price-budget", "value": 25}
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"

	"nimbus/internal/market"
	"nimbus/internal/pricing"
	"nimbus/internal/registry"
	"nimbus/internal/telemetry"
)

// Server is an http.Handler serving a broker — either one market (New) or
// a whole multi-tenant registry of them (NewMulti). The single-market API
// works identically in both modes; multi mode adds the tenant-scoped
// /api/v1/datasets surface and treats the legacy routes as the union
// across tenants (offering names embed the dataset ID, so they stay
// globally unique).
type Server struct {
	broker   *market.Broker     // single-market mode; nil under NewMulti
	registry *registry.Registry // multi-tenant mode; nil under New
	tenantRL *RateLimiter       // per-tenant purchase budget; nil unless WithTenantRate
	mux      *http.ServeMux
	logf     func(format string, args ...any)
	reg      *telemetry.Registry
}

// Option customizes a Server.
type Option func(*Server)

// WithLogger routes request logging; the default is log.Printf.
func WithLogger(logf func(format string, args ...any)) Option {
	return func(s *Server) { s.logf = logf }
}

// WithTelemetry exposes the registry at GET /metrics (Prometheus text
// format) and GET /api/v1/metrics (JSON snapshot). The same registry is
// typically shared with WithMiddleware, the rate limiter and the broker so
// one scrape covers the whole serving stack.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// New wraps a single broker in an HTTP API.
func New(b *market.Broker, opts ...Option) *Server {
	s := &Server{broker: b, mux: http.NewServeMux(), logf: log.Printf}
	for _, o := range opts {
		o(s)
	}
	s.registerCommon()
	return s
}

// NewMulti serves a multi-tenant registry: the single-market API becomes
// the cross-tenant union, and the /api/v1/datasets routes add listing,
// delisting and tenant-scoped browsing and buying.
func NewMulti(r *registry.Registry, opts ...Option) *Server {
	s := &Server{registry: r, mux: http.NewServeMux(), logf: log.Printf}
	for _, o := range opts {
		o(s)
	}
	s.registerCommon()
	s.registerTenantRoutes()
	return s
}

// registerCommon mounts the mode-independent API surface.
func (s *Server) registerCommon() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetricsProm)
	s.mux.HandleFunc("GET /api/v1/metrics", s.handleMetricsJSON)
	s.mux.HandleFunc("GET /api/v1/menu", s.handleMenu)
	s.mux.HandleFunc("GET /api/v1/curve", s.handleCurve)
	s.mux.HandleFunc("POST /api/v1/buy", s.handleBuy)
	s.mux.HandleFunc("GET /api/v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/v1/statement", s.handleStatement)
	s.mux.HandleFunc("GET /api/v1/offerings", s.handleOfferings)
	s.registerUI()
}

// menuNames lists the purchasable offerings: the broker's menu, or in
// multi mode the union across every live market.
func (s *Server) menuNames() []string {
	if s.registry != nil {
		return s.registry.Menu()
	}
	return s.broker.Menu()
}

// offering resolves an offering by its global name in either mode.
func (s *Server) offering(name string) (*market.Offering, error) {
	if s.registry != nil {
		m, err := s.registry.ResolveOffering(name)
		if err != nil {
			return nil, err
		}
		return m.Broker.Offering(name)
	}
	return s.broker.Offering(name)
}

// doBuy executes one purchase in either mode. In multi mode the registry
// routes by offering name and participates in the delist drain protocol.
func (s *Server) doBuy(offering, loss, option string, value float64) (*market.Purchase, error) {
	if s.registry != nil {
		return s.registry.Buy(offering, loss, option, value)
	}
	switch option {
	case "quality":
		return s.broker.BuyAtQuality(offering, loss, value)
	case "error-budget":
		return s.broker.BuyWithErrorBudget(offering, loss, value)
	case "price-budget":
		return s.broker.BuyWithPriceBudget(offering, loss, value)
	default:
		return nil, fmt.Errorf("unknown option %q (want quality, error-budget or price-budget)", option)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// MenuEntry is one offering in the menu response.
type MenuEntry struct {
	Name            string   `json:"name"`
	Model           string   `json:"model"`
	Losses          []string `json:"losses"`
	Dataset         string   `json:"dataset"`
	TrainRows       int      `json:"train_rows"`
	TestRows        int      `json:"test_rows"`
	Features        int      `json:"features"`
	ExpectedRevenue float64  `json:"expected_revenue"`
}

// MenuResponse is the GET /api/v1/menu payload.
type MenuResponse struct {
	Offerings []MenuEntry `json:"offerings"`
}

// CurveResponse is the GET /api/v1/curve payload.
type CurveResponse struct {
	Offering string                    `json:"offering"`
	Loss     string                    `json:"loss"`
	Points   []pricing.PriceErrorPoint `json:"points"`
}

// BuyRequest is the POST /api/v1/buy body.
type BuyRequest struct {
	Offering string  `json:"offering"`
	Loss     string  `json:"loss"`
	Option   string  `json:"option"` // "quality", "error-budget" or "price-budget"
	Value    float64 `json:"value"`
}

// ErrorResponse is the error payload for all endpoints.
type ErrorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// menuEntries assembles menu rows from offering names, skipping names
// that raced with a concurrent relisting or delisting.
func menuEntries(names []string, lookup func(string) (*market.Offering, error)) []MenuEntry {
	entries := make([]MenuEntry, 0, len(names))
	for _, name := range names {
		o, err := lookup(name)
		if err != nil {
			continue
		}
		stats := o.Pair.Stats()
		entries = append(entries, MenuEntry{
			Name:            o.Name,
			Model:           o.Model.Name(),
			Losses:          o.LossNames(),
			Dataset:         o.Pair.Name,
			TrainRows:       stats.N1,
			TestRows:        stats.N2,
			Features:        stats.D,
			ExpectedRevenue: o.ExpectedRevenue,
		})
	}
	return entries
}

func (s *Server) handleMenu(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, MenuResponse{Offerings: menuEntries(s.menuNames(), s.offering)})
}

func (s *Server) handleCurve(w http.ResponseWriter, r *http.Request) {
	offering := r.URL.Query().Get("offering")
	loss := r.URL.Query().Get("loss")
	if offering == "" || loss == "" {
		s.fail(w, http.StatusBadRequest, errors.New("offering and loss query parameters are required"))
		return
	}
	o, err := s.offering(offering)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	c, err := o.Curve(loss)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, CurveResponse{Offering: offering, Loss: loss, Points: c.Points()})
}

func (s *Server) handleBuy(w http.ResponseWriter, r *http.Request) {
	var req BuyRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding buy request: %w", err))
		return
	}
	p, err := s.doBuy(req.Offering, req.Loss, req.Option, req.Value)
	if err != nil {
		s.failBuy(w, err)
		return
	}
	s.logf("nimbus: sold %s (%s) at x=%.3f for %.2f", p.Offering, p.Loss, p.X, p.Price)
	writeJSON(w, http.StatusOK, p)
}

// failBuy maps purchase errors onto status codes; shared by the legacy
// and tenant-scoped buy handlers.
func (s *Server) failBuy(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, market.ErrUnknownOffering), errors.Is(err, registry.ErrUnknownMarket):
		s.fail(w, http.StatusNotFound, err)
	case errors.Is(err, registry.ErrDelisting):
		s.fail(w, http.StatusConflict, err)
	case errors.Is(err, pricing.ErrUnattainable), errors.Is(err, pricing.ErrOverBudget):
		s.fail(w, http.StatusUnprocessableEntity, err)
	default:
		s.fail(w, http.StatusBadRequest, err)
	}
}

// StatsResponse is the GET /api/v1/stats payload: the broker's books.
type StatsResponse struct {
	Offerings    int     `json:"offerings"`
	Sales        int     `json:"sales"`
	TotalRevenue float64 `json:"total_revenue"`
	// BrokerFees is the commission kept by the broker; Payouts is what
	// each offering's seller is owed.
	BrokerFees float64            `json:"broker_fees"`
	Payouts    map[string]float64 `json:"payouts"`
}

// statsResponse assembles the books in either mode; multi mode sums the
// per-market running aggregates and unions the payout maps (offering
// names are globally unique, so the union is collision-free).
func (s *Server) statsResponse() StatsResponse {
	if s.registry == nil {
		return StatsResponse{
			Offerings:    len(s.broker.Menu()),
			Sales:        s.broker.SaleCount(),
			TotalRevenue: s.broker.TotalRevenue(),
			BrokerFees:   s.broker.TotalFees(),
			Payouts:      s.broker.Payouts(),
		}
	}
	st := s.registry.Stats()
	payouts := make(map[string]float64)
	for _, id := range s.registry.IDs() {
		m, err := s.registry.Get(id)
		if err != nil {
			continue // delisted since IDs(); its rows are gone from the union too
		}
		for name, v := range m.Broker.Payouts() {
			payouts[name] = v
		}
	}
	return StatsResponse{
		Offerings:    st.Offerings,
		Sales:        st.Sales,
		TotalRevenue: st.Gross,
		BrokerFees:   st.Fees,
		Payouts:      payouts,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.statsResponse())
}

// statement builds the accounting report; multi mode concatenates the
// per-market statements (each O(offerings) from the running books) into
// one marketplace-wide report.
func (s *Server) statement() *market.Statement {
	if s.registry == nil {
		return s.broker.Statement()
	}
	merged := &market.Statement{}
	for _, id := range s.registry.IDs() {
		m, err := s.registry.Get(id)
		if err != nil {
			continue
		}
		st := m.Broker.Statement()
		merged.Lines = append(merged.Lines, st.Lines...)
		merged.Sales += st.Sales
		merged.Gross += st.Gross
		merged.BrokerFees += st.BrokerFees
		merged.Payouts += st.Payouts
	}
	sort.Slice(merged.Lines, func(i, j int) bool { return merged.Lines[i].Offering < merged.Lines[j].Offering })
	return merged
}

// handleStatement serves the per-offering accounting report.
func (s *Server) handleStatement(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.statement())
}

// handleOfferings serves the audit snapshots of every listing.
func (s *Server) handleOfferings(w http.ResponseWriter, _ *http.Request) {
	snaps := make([]market.OfferingSnapshot, 0)
	for _, name := range s.menuNames() {
		o, err := s.offering(name)
		if err != nil {
			continue
		}
		snaps = append(snaps, o.Snapshot())
	}
	writeJSON(w, http.StatusOK, snaps)
}

// handleMetricsProm serves the shared registry in Prometheus text format.
// With no registry configured the body is empty but still scrapeable.
func (s *Server) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.logf("nimbus: writing metrics: %v", err)
	}
}

// handleMetricsJSON serves the registry snapshot as JSON for dashboards
// and the load generator.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing to do but note it server-side.
		log.Printf("nimbus: encoding response: %v", err)
	}
}
