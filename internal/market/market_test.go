package market

import (
	"errors"
	"math"
	"sync"
	"testing"

	"nimbus/internal/dataset"
	"nimbus/internal/ml"
	"nimbus/internal/opt"
	"nimbus/internal/pricing"
	"nimbus/internal/rng"
	"nimbus/internal/telemetry"
	"nimbus/internal/vec"
)

// testResearch is a simple decreasing value curve with uniform demand.
func testResearch() Research {
	return Research{
		Value:  func(e float64) float64 { return 100 / (1 + e) },
		Demand: func(e float64) float64 { return 1 },
	}
}

func regSeller(t *testing.T) *Seller {
	t.Helper()
	d, err := dataset.StandIn("CASP", dataset.GenConfig{Rows: 300, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := dataset.NewPair(d, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSeller(pair, testResearch())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func clsSeller(t *testing.T) *Seller {
	t.Helper()
	d := dataset.Simulated2(dataset.GenConfig{Rows: 400, Seed: 43})
	pair, err := dataset.NewPair(d, rng.New(44))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSeller(pair, testResearch())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func listRegression(t *testing.T, b *Broker) *Offering {
	t.Helper()
	o, err := b.List(OfferingConfig{
		Seller:  regSeller(t),
		Model:   ml.LinearRegression{Ridge: 1e-3},
		Grid:    pricing.DefaultGrid(20),
		Samples: 100,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestNewSellerValidation(t *testing.T) {
	if _, err := NewSeller(nil, testResearch()); err == nil {
		t.Fatal("nil pair accepted")
	}
	s := regSeller(t)
	if _, err := NewSeller(s.Pair, Research{}); err == nil {
		t.Fatal("missing curves accepted")
	}
}

func TestListValidation(t *testing.T) {
	b := NewBroker(1)
	if _, err := b.List(OfferingConfig{Model: ml.LinearRegression{}}); err == nil {
		t.Fatal("nil seller accepted")
	}
	if _, err := b.List(OfferingConfig{Seller: regSeller(t)}); err == nil {
		t.Fatal("nil model accepted")
	}
	// Task mismatch bubbles up from training.
	if _, err := b.List(OfferingConfig{Seller: regSeller(t), Model: ml.LogisticRegression{}}); !errors.Is(err, ml.ErrTaskMismatch) {
		t.Fatalf("want ErrTaskMismatch, got %v", err)
	}
}

func TestListAndMenu(t *testing.T) {
	b := NewBroker(2)
	o := listRegression(t, b)
	if o.Name != "CASP/linear-regression" {
		t.Fatalf("offering name %q", o.Name)
	}
	menu := b.Menu()
	if len(menu) != 1 || menu[0] != o.Name {
		t.Fatalf("menu %v", menu)
	}
	if _, err := b.Offering(o.Name); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Offering("nope"); !errors.Is(err, ErrUnknownOffering) {
		t.Fatalf("want ErrUnknownOffering, got %v", err)
	}
	// Duplicate listing rejected.
	if _, err := b.List(OfferingConfig{
		Seller: regSeller(t), Model: ml.LinearRegression{Ridge: 1e-3},
		Grid: pricing.DefaultGrid(20), Samples: 100, Seed: 7,
	}); err == nil {
		t.Fatal("duplicate listing accepted")
	}
}

func TestOfferingPipeline(t *testing.T) {
	b := NewBroker(3)
	o := listRegression(t, b)
	// The optimal instance really is near-optimal.
	g := ml.SquaredLoss{Reg: 1e-3}.Grad(o.Optimal, o.Pair.Train)
	if vec.Norm2(g) > 1e-5 {
		t.Fatalf("optimal instance gradient norm %v", vec.Norm2(g))
	}
	// SLA: arbitrage-free prices.
	if err := o.VerifySLA(); err != nil {
		t.Fatal(err)
	}
	if err := o.PriceFunc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Buyer points are a valid problem and revenue matches the evaluation.
	prob, err := opt.NewProblem(o.BuyerPoints)
	if err != nil {
		t.Fatal(err)
	}
	if got := prob.Revenue(o.PriceFunc.Price); math.Abs(got-o.ExpectedRevenue) > 1e-6*(1+o.ExpectedRevenue) {
		t.Fatalf("revenue %v vs expected %v", got, o.ExpectedRevenue)
	}
	// Supported losses.
	if _, err := o.Curve("squared"); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Curve("zero-one"); err == nil {
		t.Fatal("regression offering must not expose zero-one")
	}
	if len(o.LossNames()) != 1 {
		t.Fatalf("loss names %v", o.LossNames())
	}
}

func TestClassificationOfferingSupportsZeroOne(t *testing.T) {
	b := NewBroker(4)
	o, err := b.List(OfferingConfig{
		Seller:  clsSeller(t),
		Model:   ml.LogisticRegression{Ridge: 1e-4},
		Grid:    pricing.DefaultGrid(10),
		Samples: 60,
		Seed:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	names := o.LossNames()
	if len(names) != 2 || names[0] != "logistic" || names[1] != "zero-one" {
		t.Fatalf("loss names %v", names)
	}
	c, err := o.Curve("zero-one")
	if err != nil {
		t.Fatal(err)
	}
	pts := c.Points()
	if pts[len(pts)-1].Error >= pts[0].Error {
		t.Fatal("zero-one curve not decreasing")
	}
}

func TestAutoSelectModel(t *testing.T) {
	b := NewBroker(18)
	o, err := b.List(OfferingConfig{
		Seller:     clsSeller(t),
		AutoSelect: true,
		Grid:       pricing.DefaultGrid(8),
		Samples:    40,
		Seed:       19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Model == nil || o.Model.Task() != dataset.Classification {
		t.Fatalf("selected model %v", o.Model)
	}
	if err := o.VerifySLA(); err != nil {
		t.Fatal(err)
	}
	// Without AutoSelect, a nil model is still an error.
	if _, err := b.List(OfferingConfig{Seller: regSeller(t)}); err == nil {
		t.Fatal("nil model without AutoSelect accepted")
	}
}

func TestExtraLossesAndStrategy(t *testing.T) {
	b := NewBroker(14)
	o, err := b.List(OfferingConfig{
		Seller:      regSeller(t),
		Model:       ml.LinearRegression{Ridge: 1e-3},
		Grid:        pricing.DefaultGrid(12),
		Samples:     60,
		Seed:        15,
		ExtraLosses: []ml.Loss{ml.SquaredLoss{Reg: 0.5}},
		Strategy:    opt.OptC,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The extra loss is deduplicated by name against the default "squared"
	// loss, so the offering still has exactly one loss.
	if names := o.LossNames(); len(names) != 1 {
		t.Fatalf("loss names %v", names)
	}
	// A genuinely distinct extra loss gets a curve.
	b2 := NewBroker(16)
	o2, err := b2.List(OfferingConfig{
		Seller:      clsSeller(t),
		Model:       ml.LogisticRegression{Ridge: 1e-4},
		Grid:        pricing.DefaultGrid(8),
		Samples:     40,
		Seed:        17,
		ExtraLosses: []ml.Loss{ml.HingeLoss{Reg: 1e-4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	names := o2.LossNames()
	if len(names) != 3 || names[2] != "hinge" {
		t.Fatalf("loss names %v", names)
	}
	if _, err := o2.Curve("hinge"); err != nil {
		t.Fatal(err)
	}
	// The custom OptC strategy really was used: the price function is a
	// constant.
	pts := o.PriceFunc.Points()
	for _, p := range pts {
		if p.Price != pts[0].Price {
			t.Fatalf("OptC strategy should give constant prices: %v", pts)
		}
	}
	if err := o.VerifySLA(); err != nil {
		t.Fatal(err)
	}
}

func TestBuyAtQuality(t *testing.T) {
	b := NewBroker(5)
	o := listRegression(t, b)
	p, err := b.BuyAtQuality(o.Name, "squared", 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.X != 10 || p.NCP != 0.1 {
		t.Fatalf("purchase point %v / %v", p.X, p.NCP)
	}
	if len(p.Weights) != o.Pair.Train.D() {
		t.Fatalf("weights dim %d", len(p.Weights))
	}
	if vec.MaxAbsDiff(p.Weights, o.Optimal) == 0 {
		t.Fatal("noisy instance identical to optimal")
	}
	c, _ := o.Curve("squared")
	if math.Abs(p.Price-c.PriceAt(10)) > 1e-9 {
		t.Fatalf("price %v vs curve %v", p.Price, c.PriceAt(10))
	}
	// Ledger.
	if len(b.Sales()) != 1 || b.TotalRevenue() != p.Price {
		t.Fatalf("ledger %v, revenue %v", b.Sales(), b.TotalRevenue())
	}
}

func TestBuyWithBudgets(t *testing.T) {
	b := NewBroker(6)
	o := listRegression(t, b)
	c, _ := o.Curve("squared")
	mid := c.Points()[10]

	pe, err := b.BuyWithErrorBudget(o.Name, "squared", mid.Error*1.01)
	if err != nil {
		t.Fatal(err)
	}
	if pe.ExpectedError > mid.Error*1.01+1e-9 {
		t.Fatalf("error %v over budget", pe.ExpectedError)
	}

	pp, err := b.BuyWithPriceBudget(o.Name, "squared", mid.Price)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Price > mid.Price+1e-6 {
		t.Fatalf("price %v over budget", pp.Price)
	}

	// Impossible budgets.
	if _, err := b.BuyWithErrorBudget(o.Name, "squared", 0); !errors.Is(err, pricing.ErrUnattainable) {
		t.Fatalf("want ErrUnattainable, got %v", err)
	}
	if _, err := b.BuyWithPriceBudget(o.Name, "squared", 0); !errors.Is(err, pricing.ErrOverBudget) {
		t.Fatalf("want ErrOverBudget, got %v", err)
	}
	// Unknown loss and offering.
	if _, err := b.BuyAtQuality(o.Name, "hinge", 1); err == nil {
		t.Fatal("unknown loss accepted")
	}
	if _, err := b.BuyAtQuality("nope", "squared", 1); !errors.Is(err, ErrUnknownOffering) {
		t.Fatal("unknown offering accepted")
	}
}

func TestPurchaseRandomness(t *testing.T) {
	// Two purchases of the same version must receive different noise.
	b := NewBroker(7)
	o := listRegression(t, b)
	p1, err := b.BuyAtQuality(o.Name, "squared", 5)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b.BuyAtQuality(o.Name, "squared", 5)
	if err != nil {
		t.Fatal(err)
	}
	if vec.MaxAbsDiff(p1.Weights, p2.Weights) == 0 {
		t.Fatal("identical noise across purchases")
	}
}

func TestBuyerBudgetFlow(t *testing.T) {
	b := NewBroker(8)
	o := listRegression(t, b)
	c, _ := o.Curve("squared")
	top := c.Points()[len(c.Points())-1]

	buyer, err := NewBuyer("alice", top.Price*1.5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := buyer.BuyBest(b, o.Name, "squared")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Price-top.Price) > 1e-6 {
		t.Fatalf("rich buyer should buy top version: %v vs %v", p.Price, top.Price)
	}
	if math.Abs(buyer.Budget-(top.Price*1.5-p.Price)) > 1e-9 {
		t.Fatalf("budget not debited: %v", buyer.Budget)
	}
	if len(buyer.Purchases()) != 1 {
		t.Fatal("purchase not recorded")
	}

	// A purchase at a fixed quality that exceeds the remaining budget fails.
	poor, err := NewBuyer("bob", 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := poor.BuyAtQuality(b, o.Name, "squared", top.X); !errors.Is(err, ErrInsufficientBudget) {
		t.Fatalf("want ErrInsufficientBudget, got %v", err)
	}
	if _, err := NewBuyer("carol", -5); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestBrokerCommission(t *testing.T) {
	b := NewBroker(20)
	o := listRegression(t, b)
	if err := b.SetCommission(0.2); err != nil {
		t.Fatal(err)
	}
	p, err := b.BuyAtQuality(o.Name, "squared", 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.BrokerFee-0.2*p.Price) > 1e-9 {
		t.Fatalf("fee %v of price %v", p.BrokerFee, p.Price)
	}
	if math.Abs(p.SellerProceeds+p.BrokerFee-p.Price) > 1e-9 {
		t.Fatal("fee + proceeds != price")
	}
	payouts := b.Payouts()
	if math.Abs(payouts[o.Name]-p.SellerProceeds) > 1e-9 {
		t.Fatalf("payouts %v", payouts)
	}
	if math.Abs(b.TotalFees()-p.BrokerFee) > 1e-9 {
		t.Fatalf("fees %v", b.TotalFees())
	}
	// Invalid rates rejected; zero rate means the seller gets everything.
	if err := b.SetCommission(1); err == nil {
		t.Fatal("rate 1 accepted")
	}
	if err := b.SetCommission(-0.1); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := b.SetCommission(0); err != nil {
		t.Fatal(err)
	}
	p2, err := b.BuyAtQuality(o.Name, "squared", 5)
	if err != nil {
		t.Fatal(err)
	}
	if p2.BrokerFee != 0 || p2.SellerProceeds != p2.Price {
		t.Fatalf("zero-commission sale %+v", p2)
	}
}

func TestConcurrentPurchases(t *testing.T) {
	b := NewBroker(9)
	o := listRegression(t, b)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := b.BuyAtQuality(o.Name, "squared", 3); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(b.Sales()) != 32 {
		t.Fatalf("ledger has %d sales", len(b.Sales()))
	}
}

func TestBuyerPointsFromResearch(t *testing.T) {
	ec, err := pricing.SquaredToOptimalCurve([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	pts := BuyerPointsFromResearch(ec, Research{
		Value:  func(e float64) float64 { return 10 - 100*e }, // negative at e=1
		Demand: func(e float64) float64 { return 1 },
	})
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, p := range pts {
		if p.Value < 0 || p.Mass < 0 {
			t.Fatalf("negative field at %d: %+v", i, p)
		}
		if i > 0 && p.Value < pts[i-1].Value {
			t.Fatal("values not monotone")
		}
	}
	if _, err := opt.NewProblem(pts); err != nil {
		t.Fatalf("research points not a valid problem: %v", err)
	}
}

func TestBrokerTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := NewBroker(9)
	b.SetTelemetry(reg)
	o := listRegression(t, b)

	p, err := b.BuyAtQuality(o.Name, "squared", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.BuyAtQuality("ghost", "squared", 4); err == nil {
		t.Fatal("unknown offering accepted")
	}
	if _, err := b.BuyAtQuality(o.Name, "hinge", 4); err == nil {
		t.Fatal("unknown loss accepted")
	}
	if _, err := b.BuyWithErrorBudget(o.Name, "squared", 0); err == nil {
		t.Fatal("impossible budget accepted")
	}
	if _, err := b.BuyWithPriceBudget(o.Name, "squared", 0); err == nil {
		t.Fatal("zero budget accepted")
	}

	snap := reg.Snapshot()
	if got := snap.CounterValue("nimbus_purchases_total", "offering", o.Name); got != 1 {
		t.Fatalf("purchases %v; series %v", got, snap.SeriesNames())
	}
	if got := snap.CounterValue("nimbus_revenue_total"); got != p.Price {
		t.Fatalf("revenue %v want %v", got, p.Price)
	}
	if got := snap.CounterValue("nimbus_purchase_rejects_total", "reason", "unknown-offering"); got != 1 {
		t.Fatalf("unknown-offering rejects %v", got)
	}
	if got := snap.CounterValue("nimbus_purchase_rejects_total", "reason", "unattainable"); got != 1 {
		t.Fatalf("unattainable rejects %v", got)
	}
	if got := snap.CounterValue("nimbus_purchase_rejects_total", "reason", "over-budget"); got != 1 {
		t.Fatalf("over-budget rejects %v", got)
	}
	if got := snap.CounterValue("nimbus_purchase_rejects_total", "reason", "invalid"); got != 1 {
		t.Fatalf("invalid rejects %v", got)
	}
	if h, ok := snap.HistogramValue("nimbus_noise_draw_seconds"); !ok || h.Count != 1 {
		t.Fatalf("noise histogram %+v ok=%v", h, ok)
	}
}

// TestBrokerTelemetryConcurrent buys from many goroutines with telemetry
// on: the counters must add up exactly and the race detector stays quiet.
func TestBrokerTelemetryConcurrent(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := NewBroker(10)
	b.SetTelemetry(reg)
	o := listRegression(t, b)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := b.BuyAtQuality(o.Name, "squared", 3); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	snap := reg.Snapshot()
	if got := snap.CounterValue("nimbus_purchases_total", "offering", o.Name); got != 40 {
		t.Fatalf("purchases %v", got)
	}
	if got := snap.CounterValue("nimbus_revenue_total"); math.Abs(got-b.TotalRevenue()) > 1e-9 {
		t.Fatalf("revenue %v vs ledger %v", got, b.TotalRevenue())
	}
}
