package market

import (
	"errors"
	"fmt"
)

// Buyer is the third agent of Figure 1: it holds a budget and buys model
// instances from a broker, tracking what it spent and received.
type Buyer struct {
	// Name labels the buyer in receipts.
	Name string
	// Budget is the remaining money.
	Budget float64

	purchases []Purchase
}

// ErrInsufficientBudget is returned when a purchase would overdraw the
// buyer.
var ErrInsufficientBudget = errors.New("market: insufficient budget")

// NewBuyer returns a buyer with the given budget.
func NewBuyer(name string, budget float64) (*Buyer, error) {
	if budget < 0 {
		return nil, fmt.Errorf("market: negative budget %v", budget)
	}
	return &Buyer{Name: name, Budget: budget}, nil
}

// pay debits the budget and records the purchase.
func (b *Buyer) pay(p *Purchase, err error) (*Purchase, error) {
	if err != nil {
		return nil, err
	}
	if p.Price > b.Budget+1e-9 {
		return nil, fmt.Errorf("market: %s needs %v but has %v: %w", b.Name, p.Price, b.Budget, ErrInsufficientBudget)
	}
	b.Budget -= p.Price
	b.purchases = append(b.purchases, *p)
	return p, nil
}

// BuyAtQuality purchases the version at quality x, debiting the budget.
func (b *Buyer) BuyAtQuality(broker *Broker, offering, loss string, x float64) (*Purchase, error) {
	return b.pay(broker.BuyAtQuality(offering, loss, x))
}

// BuyWithErrorBudget purchases the cheapest version meeting the error
// budget, debiting the buyer's budget.
func (b *Buyer) BuyWithErrorBudget(broker *Broker, offering, loss string, errBudget float64) (*Purchase, error) {
	return b.pay(broker.BuyWithErrorBudget(offering, loss, errBudget))
}

// BuyBest spends (up to) the buyer's whole remaining budget on the most
// accurate version it can afford.
func (b *Buyer) BuyBest(broker *Broker, offering, loss string) (*Purchase, error) {
	return b.pay(broker.BuyWithPriceBudget(offering, loss, b.Budget))
}

// Purchases returns the buyer's receipt history.
func (b *Buyer) Purchases() []Purchase {
	return append([]Purchase(nil), b.purchases...)
}
