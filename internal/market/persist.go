package market

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"nimbus/internal/pricing"
)

// Persistence: the broker's financial state (the sale ledger) and the
// audit-relevant shape of each offering can be saved and restored as JSON,
// so a production broker survives restarts without losing its books. The
// heavy, reproducible parts — datasets and trained models — are relisted
// from source on startup (see cmd/nimbusd); only the ledger is
// irreplaceable state.

// LedgerSnapshot is the serialized sale ledger.
type LedgerSnapshot struct {
	// Version guards the on-disk format.
	Version int        `json:"version"`
	Sales   []Purchase `json:"sales"`
}

// ledgerVersion is the current snapshot format.
const ledgerVersion = 1

// SaveLedger writes the sale ledger as JSON.
func (b *Broker) SaveLedger(w io.Writer) error {
	snap := LedgerSnapshot{Version: ledgerVersion, Sales: b.Sales()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("market: saving ledger: %w", err)
	}
	return nil
}

// RestoreLedger replaces the broker's ledger with a previously saved
// snapshot. It refuses snapshots from unknown format versions and refuses
// to clobber a non-empty ledger (restore belongs at startup).
func (b *Broker) RestoreLedger(r io.Reader) error {
	var snap LedgerSnapshot
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&snap); err != nil {
		return fmt.Errorf("market: reading ledger snapshot: %w", err)
	}
	if snap.Version != ledgerVersion {
		return fmt.Errorf("market: ledger snapshot version %d, want %d", snap.Version, ledgerVersion)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.sales) > 0 {
		return errors.New("market: refusing to restore over a non-empty ledger")
	}
	b.sales = append([]Purchase(nil), snap.Sales...)
	return nil
}

// OfferingSnapshot is the audit view of one listing: everything a
// regulator (or the seller) needs to verify what was offered at which
// price, without the raw dataset.
type OfferingSnapshot struct {
	Name            string          `json:"name"`
	Model           string          `json:"model"`
	Mechanism       string          `json:"mechanism"`
	Losses          []string        `json:"losses"`
	PricePoints     []pricing.Point `json:"price_points"`
	ExpectedRevenue float64         `json:"expected_revenue"`
	ArbitrageFree   bool            `json:"arbitrage_free"`
}

// Snapshot captures the offering's audit view.
func (o *Offering) Snapshot() OfferingSnapshot {
	return OfferingSnapshot{
		Name:            o.Name,
		Model:           o.Model.Name(),
		Mechanism:       o.Mechanism.Name(),
		Losses:          o.LossNames(),
		PricePoints:     o.PriceFunc.Points(),
		ExpectedRevenue: o.ExpectedRevenue,
		ArbitrageFree:   o.PriceFunc.Validate() == nil,
	}
}

// SaveOfferings writes the audit snapshot of every listing as JSON.
func (b *Broker) SaveOfferings(w io.Writer) error {
	names := b.Menu()
	snaps := make([]OfferingSnapshot, 0, len(names))
	for _, name := range names {
		o, err := b.Offering(name)
		if err != nil {
			continue
		}
		snaps = append(snaps, o.Snapshot())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snaps); err != nil {
		return fmt.Errorf("market: saving offerings: %w", err)
	}
	return nil
}
