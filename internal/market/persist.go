package market

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"nimbus/internal/pricing"
)

// Persistence: the broker's financial state (the sale ledger) and the
// audit-relevant shape of each offering can be saved and restored as JSON,
// so a production broker survives restarts without losing its books. The
// heavy, reproducible parts — datasets and trained models — are relisted
// from source on startup (see cmd/nimbusd); only the ledger is
// irreplaceable state.

// LedgerSnapshot is the serialized sale ledger.
type LedgerSnapshot struct {
	// Version guards the on-disk format.
	Version int        `json:"version"`
	Sales   []Purchase `json:"sales"`
}

// ledgerVersion is the current snapshot format.
const ledgerVersion = 1

// SaveLedger writes the sale ledger as JSON.
func (b *Broker) SaveLedger(w io.Writer) error {
	snap := LedgerSnapshot{Version: ledgerVersion, Sales: b.Sales()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("market: saving ledger: %w", err)
	}
	return nil
}

// RestoreLedger replaces the broker's ledger with a previously saved
// snapshot. It refuses snapshots from unknown format versions and refuses
// to clobber a non-empty ledger (restore belongs at startup).
func (b *Broker) RestoreLedger(r io.Reader) error {
	var snap LedgerSnapshot
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&snap); err != nil {
		return fmt.Errorf("market: reading ledger snapshot: %w", err)
	}
	if snap.Version != ledgerVersion {
		return fmt.Errorf("market: ledger snapshot version %d, want %d", snap.Version, ledgerVersion)
	}
	// Hold every shard lock so the emptiness check and the routed inserts
	// are one atomic step; restore runs at startup, so the locks are
	// uncontended.
	for i := range b.shards {
		b.shards[i].mu.Lock()
	}
	defer func() {
		for i := range b.shards {
			b.shards[i].mu.Unlock()
		}
	}()
	for i := range b.shards {
		if len(b.shards[i].sales) > 0 {
			return errors.New("market: refusing to restore over a non-empty ledger")
		}
	}
	// Route each sale to its offering's shard; per-shard relative order is
	// preserved, so a save→restore round-trip reproduces Sales() exactly.
	for _, p := range snap.Sales {
		b.shard(p.Offering).recordLocked(p)
	}
	return nil
}

// saleRecord is the envelope for one journaled purchase. The version
// field guards the record format the same way LedgerSnapshot.Version
// guards the snapshot format.
type saleRecord struct {
	Version  int      `json:"v"`
	Purchase Purchase `json:"purchase"`
}

// saleRecordVersion is the current journal record format.
const saleRecordVersion = 1

// MarshalSale encodes one purchase as a journal record.
//
//lint:allocok the encoded record is the function's product; json.Marshal boxes its argument by contract
func MarshalSale(p Purchase) ([]byte, error) {
	rec, err := json.Marshal(saleRecord{Version: saleRecordVersion, Purchase: p})
	if err != nil {
		return nil, fmt.Errorf("market: encoding sale record: %w", err)
	}
	return rec, nil
}

// UnmarshalSale decodes a journal record produced by MarshalSale. It
// refuses unknown format versions and unknown fields, mirroring
// RestoreLedger: replaying a record we do not fully understand could
// misstate the books.
func UnmarshalSale(rec []byte) (Purchase, error) {
	var sr saleRecord
	dec := json.NewDecoder(bytes.NewReader(rec))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sr); err != nil {
		return Purchase{}, fmt.Errorf("market: decoding sale record: %w", err)
	}
	if sr.Version != saleRecordVersion {
		return Purchase{}, fmt.Errorf("market: sale record version %d, want %d", sr.Version, saleRecordVersion)
	}
	return sr.Purchase, nil
}

// OfferingSnapshot is the audit view of one listing: everything a
// regulator (or the seller) needs to verify what was offered at which
// price, without the raw dataset.
type OfferingSnapshot struct {
	Name            string          `json:"name"`
	Model           string          `json:"model"`
	Mechanism       string          `json:"mechanism"`
	Losses          []string        `json:"losses"`
	PricePoints     []pricing.Point `json:"price_points"`
	ExpectedRevenue float64         `json:"expected_revenue"`
	ArbitrageFree   bool            `json:"arbitrage_free"`
}

// Snapshot captures the offering's audit view.
func (o *Offering) Snapshot() OfferingSnapshot {
	return OfferingSnapshot{
		Name:            o.Name,
		Model:           o.Model.Name(),
		Mechanism:       o.Mechanism.Name(),
		Losses:          o.LossNames(),
		PricePoints:     o.PriceFunc.Points(),
		ExpectedRevenue: o.ExpectedRevenue,
		ArbitrageFree:   o.PriceFunc.Validate() == nil,
	}
}

// SaveOfferings writes the audit snapshot of every listing as JSON.
func (b *Broker) SaveOfferings(w io.Writer) error {
	names := b.Menu()
	snaps := make([]OfferingSnapshot, 0, len(names))
	for _, name := range names {
		o, err := b.Offering(name)
		if err != nil {
			continue
		}
		snaps = append(snaps, o.Snapshot())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snaps); err != nil {
		return fmt.Errorf("market: saving offerings: %w", err)
	}
	return nil
}
