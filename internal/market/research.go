package market

import (
	"errors"
	"fmt"
	"sort"

	"nimbus/internal/isotone"
)

// Real market research does not arrive as smooth closed-form curves: it is
// survey points — "(observed error, what buyers said they'd pay)" — with
// noise. ResearchFromSamples turns such samples into the Research curves
// the broker needs, using isotonic regression to enforce the only
// structural assumption the framework makes: value is non-increasing in
// error. Demand keeps its sampled shape (any non-negative form is allowed)
// and is interpolated piecewise-linearly.

// ResearchSample is one market-research observation at a given expected
// model error.
type ResearchSample struct {
	// Error is the expected model error the respondents were shown.
	Error float64 `json:"error"`
	// Value is the stated willingness to pay.
	Value float64 `json:"value"`
	// Demand is the estimated buyer mass at this error level.
	Demand float64 `json:"demand"`
}

// ResearchFromSamples fits Research curves to survey samples. At least two
// samples with distinct error levels are required; duplicate error levels
// are averaged.
func ResearchFromSamples(samples []ResearchSample) (Research, error) {
	if len(samples) < 2 {
		return Research{}, errors.New("market: need at least 2 research samples")
	}
	// Sort by error and merge duplicates.
	s := append([]ResearchSample(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i].Error < s[j].Error })
	merged := s[:1]
	counts := []int{1}
	for _, sm := range s[1:] {
		last := &merged[len(merged)-1]
		if sm.Error == last.Error {
			n := float64(counts[len(counts)-1])
			last.Value = (last.Value*n + sm.Value) / (n + 1)
			last.Demand = (last.Demand*n + sm.Demand) / (n + 1)
			counts[len(counts)-1]++
			continue
		}
		merged = append(merged, sm)
		counts = append(counts, 1)
	}
	if len(merged) < 2 {
		return Research{}, errors.New("market: need at least 2 distinct error levels")
	}
	for i, sm := range merged {
		if sm.Error < 0 || sm.Value < 0 || sm.Demand < 0 {
			return Research{}, fmt.Errorf("market: sample %d has negative fields %+v", i, sm)
		}
	}

	errs := make([]float64, len(merged))
	values := make([]float64, len(merged))
	demands := make([]float64, len(merged))
	for i, sm := range merged {
		errs[i] = sm.Error
		values[i] = sm.Value
		demands[i] = sm.Demand
	}
	// Value must be non-increasing in error (better models are worth at
	// least as much); project the survey noise away.
	fitValues, err := isotone.RegressAntitonic(values, nil)
	if err != nil {
		return Research{}, err
	}
	return Research{
		Value:  interpolator(errs, fitValues),
		Demand: interpolator(errs, demands),
	}, nil
}

// interpolator returns a piecewise-linear function through (xs, ys) with
// constant extension outside the sampled range.
func interpolator(xs, ys []float64) Curve {
	return func(x float64) float64 {
		if x <= xs[0] {
			return ys[0]
		}
		last := len(xs) - 1
		if x >= xs[last] {
			return ys[last]
		}
		i := sort.SearchFloat64s(xs, x)
		if xs[i] == x {
			return ys[i]
		}
		t := (x - xs[i-1]) / (xs[i] - xs[i-1])
		return ys[i-1] + t*(ys[i]-ys[i-1])
	}
}
