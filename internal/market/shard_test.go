package market

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"nimbus/internal/dataset"
	"nimbus/internal/journal"
	"nimbus/internal/ml"
	"nimbus/internal/pricing"
	"nimbus/internal/rng"
)

// listSmall lists a small named offering — cheap enough that a test can
// build several and spread purchases across broker shards.
func listSmall(t *testing.T, b *Broker, name string, seed int64) *Offering {
	t.Helper()
	d, err := dataset.StandIn("CASP", dataset.GenConfig{Rows: 150, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	d.Name = name
	pair, err := dataset.NewPair(d, rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSeller(pair, testResearch())
	if err != nil {
		t.Fatal(err)
	}
	o, err := b.List(OfferingConfig{
		Seller:  s,
		Model:   ml.LinearRegression{Ridge: 1e-3},
		Grid:    pricing.DefaultGrid(8),
		Samples: 24,
		Seed:    seed + 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// assertAggregatesMatchRescan is the regression check for the running
// per-offering aggregates: Payouts, TotalFees and TotalRevenue must equal
// a full rescan of the ledger. The rescan accumulates per shard and then
// combines shard subtotals in index order — the same floating-point
// association the aggregates use — so the sums are bit-identical, not
// merely close.
func assertAggregatesMatchRescan(t *testing.T, b *Broker) {
	t.Helper()
	wantPayouts := make(map[string]float64)
	var wantFees, wantRevenue float64
	for i := range b.shards {
		sh := &b.shards[i]
		var fees, revenue float64
		sh.mu.RLock()
		for _, p := range sh.sales {
			wantPayouts[p.Offering] += p.SellerProceeds
			fees += p.BrokerFee
			revenue += p.Price
		}
		sh.mu.RUnlock()
		wantFees += fees
		wantRevenue += revenue
	}
	gotPayouts := b.Payouts()
	if len(gotPayouts) != len(wantPayouts) || (len(wantPayouts) > 0 && !reflect.DeepEqual(gotPayouts, wantPayouts)) {
		t.Fatalf("Payouts() %v != ledger rescan %v", gotPayouts, wantPayouts)
	}
	if got := b.TotalFees(); got != wantFees {
		t.Fatalf("TotalFees() %v != ledger rescan %v", got, wantFees)
	}
	if got := b.TotalRevenue(); got != wantRevenue {
		t.Fatalf("TotalRevenue() %v != ledger rescan %v", got, wantRevenue)
	}
	// The statement now reads the running books; the ledger rescan is the
	// test-only cross-check, and the two must agree bit for bit — both
	// accumulate per shard in ledger order and merge in shard index order.
	if got, want := b.Statement(), b.rescanStatement(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Statement() from running books %+v\n!= ledger rescan %+v", got, want)
	}
}

// TestConcurrentBuyAcrossShards hammers the sharded buy path from every
// side at once — purchases on four offerings, menu browsing, commission
// changes, aggregate reads — then checks the books balance and that the
// journal replays into an identical ledger. Run with -race in CI.
func TestConcurrentBuyAcrossShards(t *testing.T) {
	b := NewBroker(97)
	if err := b.SetCommission(0.1); err != nil {
		t.Fatal(err)
	}
	var names []string
	for i, n := range []string{"alpha", "beta", "gamma", "delta"} {
		o := listSmall(t, b, n, int64(100+10*i))
		names = append(names, o.Name)
	}
	dir := t.TempDir()
	j, err := journal.Open(dir, journal.Options{Sync: journal.SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	b.SetJournal(j)

	const buyersPerOffering, buys = 3, 8
	var wg sync.WaitGroup
	for _, name := range names {
		for w := 0; w < buyersPerOffering; w++ {
			wg.Add(1)
			go func(name string, w int) {
				defer wg.Done()
				for i := 0; i < buys; i++ {
					if _, err := b.BuyAtQuality(name, "squared", float64(1+(w+i)%5)); err != nil {
						t.Error(err)
						return
					}
				}
			}(name, w)
		}
	}
	// Browse and admin churn while the buyers run: the lock-free menu path
	// and the snapshot writers must never block or corrupt a purchase.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		rates := []float64{0.05, 0.1, 0.15}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if got := len(b.Menu()); got != len(names) {
				t.Errorf("menu has %d offerings, want %d", got, len(names))
				return
			}
			if _, err := b.Offering(names[i%len(names)]); err != nil {
				t.Error(err)
				return
			}
			if err := b.SetCommission(rates[i%len(rates)]); err != nil {
				t.Error(err)
				return
			}
			b.Payouts()
			b.TotalFees()
			b.Statement()
		}
	}()
	wg.Wait()
	close(stop)
	churn.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	want := len(names) * buyersPerOffering * buys
	if got := b.SaleCount(); got != want {
		t.Fatalf("SaleCount %d, want %d", got, want)
	}
	assertAggregatesMatchRescan(t, b)

	// Crash-recovery equivalence: replaying the journal routes every sale
	// back to its offering's shard in per-shard journal order, so the
	// recovered ledger is the original, shard for shard.
	fresh := recoverInto(t, dir)
	if !reflect.DeepEqual(fresh.Sales(), b.Sales()) {
		t.Fatal("journal replay does not reproduce the sharded ledger")
	}
	assertAggregatesMatchRescan(t, fresh)
}

// TestAggregatesSurviveRestore checks the running aggregates through the
// save/restore path: a restored broker must report the same payouts, fees
// and revenue as the one that earned them, and its Statement (a true
// rescan) must agree with the aggregates.
func TestAggregatesSurviveRestore(t *testing.T) {
	b := NewBroker(98)
	if err := b.SetCommission(0.2); err != nil {
		t.Fatal(err)
	}
	east := listSmall(t, b, "east", 300)
	west := listSmall(t, b, "west", 310)
	for i := 0; i < 5; i++ {
		if _, err := b.BuyAtQuality(east.Name, "squared", float64(1+i%4)); err != nil {
			t.Fatal(err)
		}
		if _, err := b.BuyAtQuality(west.Name, "squared", float64(1+(i+2)%4)); err != nil {
			t.Fatal(err)
		}
	}
	assertAggregatesMatchRescan(t, b)

	var buf bytes.Buffer
	if err := b.SaveLedger(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewBroker(1)
	if err := fresh.RestoreLedger(&buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Sales(), b.Sales()) {
		t.Fatal("restored ledger differs from the saved one")
	}
	assertAggregatesMatchRescan(t, fresh)

	st := fresh.Statement()
	if st.Sales != fresh.SaleCount() {
		t.Fatalf("statement sales %d, SaleCount %d", st.Sales, fresh.SaleCount())
	}
	if st.BrokerFees != fresh.TotalFees() || st.Gross != fresh.TotalRevenue() {
		t.Fatalf("statement totals (fees %v, gross %v) disagree with aggregates (%v, %v)",
			st.BrokerFees, st.Gross, fresh.TotalFees(), fresh.TotalRevenue())
	}
}
