// Package market wires the Nimbus agents together: the seller who provides
// a dataset and market research, the broker who trains the optimal model
// once and sells noisy versions at arbitrage-free prices, and the buyer who
// purchases through the three interaction options of Section 3.2.
//
// The end-to-end flow mirrors Figure 2 of the paper:
//
//	seller research (value/demand over error)
//	  → error transformation (error ↔ 1/NCP)
//	  → revenue optimization (DP over buyer points)
//	  → price–error curve presented to buyers
//	  → noisy model instance delivered per purchase.
package market

import (
	"errors"
	"fmt"
	"math"

	"nimbus/internal/dataset"
	"nimbus/internal/ml"
	"nimbus/internal/noise"
	"nimbus/internal/opt"
	"nimbus/internal/pricing"
	"nimbus/internal/rng"
	"nimbus/internal/telemetry"
)

// Curve is a market-research curve: a value (monetary worth) or demand
// (buyer mass) as a function of the expected model error.
type Curve func(err float64) float64

// Research is the seller's market research for one dataset: how much buyers
// value a model at a given error, and how much buyer mass wants it.
type Research struct {
	// Value maps expected error to buyer valuation; it should be
	// non-increasing in the error (better models are worth more).
	Value Curve
	// Demand maps expected error to buyer mass; any non-negative shape.
	Demand Curve
}

// Seller owns a dataset pair and its market research.
type Seller struct {
	// Pair is the (Dtrain, Dtest) product for sale.
	Pair *dataset.Pair
	// Research drives the broker's price setting.
	Research Research
}

// NewSeller validates and builds a seller.
func NewSeller(pair *dataset.Pair, research Research) (*Seller, error) {
	if pair == nil || pair.Train == nil || pair.Test == nil {
		return nil, errors.New("market: seller needs a train/test pair")
	}
	if research.Value == nil || research.Demand == nil {
		return nil, errors.New("market: seller needs value and demand curves")
	}
	return &Seller{Pair: pair, Research: research}, nil
}

// OfferingConfig configures one entry of the broker's menu.
type OfferingConfig struct {
	// Seller provides the data and research.
	Seller *Seller
	// Model is the ML model whose instances are sold. Leave nil with
	// AutoSelect to let the broker cross-validate its menu and pick.
	Model ml.Model
	// AutoSelect, with a nil Model, cross-validates ml.DefaultCandidates
	// for the dataset's task under the task's reporting loss and lists the
	// winner — the paper's model-selection future-work item, in the broker.
	AutoSelect bool
	// SelectFolds is the CV fold count for AutoSelect (0 means 3).
	SelectFolds int
	// Mechanism injects noise; nil means Gaussian.
	Mechanism noise.Mechanism
	// Grid is the offered quality grid (x = 1/NCP); empty means the
	// paper's grid of 100 points in [1, 100].
	Grid []float64
	// Samples is the Monte-Carlo sample count per grid point for the error
	// transformation; 0 means 500. (The paper uses 2000; the default trades
	// a little smoothness for setup latency, and the isotonic projection
	// removes the extra jitter.)
	Samples int
	// Seed drives the error-transformation Monte Carlo.
	Seed int64
	// Strategy optionally overrides how prices are set from the buyer
	// points; nil means the revenue-maximizing DP. Baselines like opt.OptC
	// plug in here (the experiments use this for live A/B comparisons).
	// Whatever the strategy returns must pass the SLA validation.
	Strategy func(*opt.Problem) (*pricing.Function, error)
	// ExtraLosses adds reporting error functions ε beyond the model's
	// defaults (Table 2 allows the buyer to pick ε independently of the
	// training loss λ); each gets its own price–error curve.
	ExtraLosses []ml.Loss
}

// Offering is a sellable entry of the broker's menu: a model trained on a
// dataset with its per-loss price–error curves and an arbitrage-free
// pricing function.
type Offering struct {
	// Name identifies the offering ("<dataset>/<model>").
	Name string
	// Model and Pair describe what is being sold.
	Model ml.Model
	Pair  *dataset.Pair
	// Mechanism is the noise mechanism used at sale time.
	Mechanism noise.Mechanism
	// Optimal is h*_λ(D), trained once when the offering is listed.
	Optimal []float64
	// PriceFunc is the revenue-optimized arbitrage-free pricing function
	// over the quality axis.
	PriceFunc *pricing.Function
	// ExpectedRevenue is the DP's optimal objective on the research points.
	ExpectedRevenue float64
	// BuyerPoints are the transformed research points the prices were
	// optimized against.
	BuyerPoints []opt.BuyerPoint

	curves    map[string]*pricing.PriceErrorCurve
	lossOrder []string
	// sales is the broker's per-offering purchase counter, attached when
	// the owning broker is instrumented (nil and inert otherwise).
	sales *telemetry.Counter
}

// newOffering runs the full Figure 2 pipeline.
func newOffering(cfg OfferingConfig) (*Offering, error) {
	if cfg.Seller == nil {
		return nil, errors.New("market: offering needs a seller")
	}
	if cfg.Model == nil && cfg.AutoSelect {
		folds := cfg.SelectFolds
		if folds == 0 {
			folds = 3
		}
		train := cfg.Seller.Pair.Train
		candidates := ml.DefaultCandidates(train.Task)
		var selectLoss ml.Loss
		switch train.Task {
		case dataset.Regression:
			selectLoss = ml.SquaredLoss{}
		default:
			selectLoss = ml.ZeroOneLoss{}
		}
		best, _, err := ml.SelectModel(train, candidates, selectLoss, folds, rng.New(cfg.Seed))
		if err != nil {
			return nil, fmt.Errorf("market: auto-selecting model: %w", err)
		}
		cfg.Model = best
	}
	if cfg.Model == nil {
		return nil, errors.New("market: offering needs a model (or AutoSelect)")
	}
	mech := cfg.Mechanism
	if mech == nil {
		mech = noise.Gaussian{}
	}
	grid := cfg.Grid
	if len(grid) == 0 {
		grid = pricing.DefaultGrid(100)
	}
	samples := cfg.Samples
	if samples == 0 {
		samples = 500
	}

	pair := cfg.Seller.Pair
	optimal, err := cfg.Model.Fit(pair.Train)
	if err != nil {
		return nil, fmt.Errorf("market: training optimal instance: %w", err)
	}

	// One error curve per supported reporting loss, estimated on the test
	// set (the buyer may later pick any of them).
	curves := make(map[string]*pricing.PriceErrorCurve)
	losses := ml.DefaultReportLosses(cfg.Model)
	for _, extra := range cfg.ExtraLosses {
		dup := false
		for _, l := range losses {
			if l.Name() == extra.Name() {
				dup = true
				break
			}
		}
		if !dup {
			losses = append(losses, extra)
		}
	}
	errCurves := make(map[string]*pricing.ErrorCurve, len(losses))
	seed := cfg.Seed
	for _, loss := range losses {
		ec, err := pricing.MonteCarloTransform(pricing.TransformConfig{
			Optimal:   optimal,
			Loss:      loss,
			Data:      pair.Test,
			Mechanism: mech,
			Xs:        grid,
			Samples:   samples,
			Seed:      seed,
		})
		if err != nil {
			return nil, fmt.Errorf("market: error transformation for %s: %w", loss.Name(), err)
		}
		errCurves[loss.Name()] = ec
		seed++
	}

	// Transform the seller's research from the error axis to the quality
	// axis using the primary (training-loss) error curve, then optimize.
	primary := errCurves[cfg.Model.TrainLoss().Name()]
	points := BuyerPointsFromResearch(primary, cfg.Seller.Research)
	prob, err := opt.NewProblem(points)
	if err != nil {
		return nil, fmt.Errorf("market: building revenue problem: %w", err)
	}
	var priceFn *pricing.Function
	var revenue float64
	if cfg.Strategy != nil {
		priceFn, err = cfg.Strategy(prob)
		if err != nil {
			return nil, fmt.Errorf("market: pricing strategy: %w", err)
		}
		revenue = prob.Revenue(priceFn.Price)
	} else {
		priceFn, revenue, err = opt.MaximizeRevenueDP(prob)
		if err != nil {
			return nil, fmt.Errorf("market: revenue optimization: %w", err)
		}
	}

	name := pair.Name + "/" + cfg.Model.Name()
	order := make([]string, len(losses))
	for i, l := range losses {
		order[i] = l.Name()
	}
	o := &Offering{
		Name:            name,
		Model:           cfg.Model,
		Pair:            pair,
		Mechanism:       mech,
		Optimal:         optimal,
		PriceFunc:       priceFn,
		ExpectedRevenue: revenue,
		BuyerPoints:     points,
		curves:          curves,
		lossOrder:       order,
	}
	for lossName, ec := range errCurves {
		pec, err := pricing.NewPriceErrorCurve(cfg.Model.Name(), ec, priceFn)
		if err != nil {
			return nil, err
		}
		o.curves[lossName] = pec
	}
	if err := o.VerifySLA(); err != nil {
		return nil, err
	}
	return o, nil
}

// Curve returns the price–error curve for the given reporting loss.
func (o *Offering) Curve(lossName string) (*pricing.PriceErrorCurve, error) {
	c, ok := o.curves[lossName]
	if !ok {
		//lint:allocok refusal path: the request is being rejected, not served
		return nil, fmt.Errorf("market: offering %s has no loss %q (have %v)", o.Name, lossName, o.LossNames())
	}
	return c, nil
}

// LossNames lists the reporting losses the offering supports, defaults
// first, in listing order.
//
//lint:allocok the defensive copy is the function's product; hot callers only reach it on refusal paths
func (o *Offering) LossNames() []string {
	return append([]string(nil), o.lossOrder...)
}

// VerifySLA checks the pricing desiderata of Section 3.3 (Definitions 1–5):
// non-negativity and arbitrage-freeness of the pricing function.
func (o *Offering) VerifySLA() error {
	if o.PriceFunc == nil {
		return errors.New("market: offering has no pricing function")
	}
	if err := o.PriceFunc.Validate(); err != nil {
		return fmt.Errorf("market: SLA violation on %s: %w", o.Name, err)
	}
	for _, p := range o.PriceFunc.Points() {
		if p.Price < 0 {
			return fmt.Errorf("market: SLA violation on %s: negative price %v", o.Name, p.Price)
		}
	}
	return nil
}

// BuyerPointsFromResearch transforms seller research from the error axis to
// the quality axis (Figure 2(a)→(b)): for each offered quality x, evaluate
// the expected error, then read value and demand off the research curves.
// Valuations are monotonized upward to repair research noise.
func BuyerPointsFromResearch(ec *pricing.ErrorCurve, research Research) []opt.BuyerPoint {
	pts := make([]opt.BuyerPoint, len(ec.Xs))
	for i, x := range ec.Xs {
		e := ec.Errs[i]
		v := research.Value(e)
		m := research.Demand(e)
		if v < 0 || math.IsNaN(v) {
			v = 0
		}
		if m < 0 || math.IsNaN(m) {
			m = 0
		}
		pts[i] = opt.BuyerPoint{X: x, Value: v, Mass: m}
	}
	return opt.Monotonize(pts)
}
