package market

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestStatementAggregation(t *testing.T) {
	b := NewBroker(21)
	o := listRegression(t, b)
	if err := b.SetCommission(0.25); err != nil {
		t.Fatal(err)
	}
	var gross float64
	for i := 0; i < 3; i++ {
		p, err := b.BuyAtQuality(o.Name, "squared", 4)
		if err != nil {
			t.Fatal(err)
		}
		gross += p.Price
	}
	st := b.Statement()
	if st.Sales != 3 || len(st.Lines) != 1 {
		t.Fatalf("statement %+v", st)
	}
	if math.Abs(st.Gross-gross) > 1e-9 {
		t.Fatalf("gross %v vs %v", st.Gross, gross)
	}
	if math.Abs(st.BrokerFees-0.25*gross) > 1e-9 {
		t.Fatalf("fees %v", st.BrokerFees)
	}
	if math.Abs(st.BrokerFees+st.Payouts-st.Gross) > 1e-9 {
		t.Fatal("fees + payouts != gross")
	}
	line := st.Lines[0]
	if line.Offering != o.Name || line.Sales != 3 {
		t.Fatalf("line %+v", line)
	}
	if want := b.rescanStatement(); !reflect.DeepEqual(st, want) {
		t.Fatalf("aggregate statement %+v != ledger rescan %+v", st, want)
	}

	var buf bytes.Buffer
	if err := st.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "TOTAL") || !strings.Contains(out, o.Name) {
		t.Fatalf("rendering:\n%s", out)
	}
}

func TestStatementEmptyLedger(t *testing.T) {
	b := NewBroker(22)
	st := b.Statement()
	if st.Sales != 0 || len(st.Lines) != 0 || st.Gross != 0 {
		t.Fatalf("empty statement %+v", st)
	}
	var buf bytes.Buffer
	if err := st.Write(&buf); err != nil {
		t.Fatal(err)
	}
}
