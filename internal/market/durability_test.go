package market

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"nimbus/internal/journal"
	"nimbus/internal/telemetry"
)

func TestSaleRecordRoundTrip(t *testing.T) {
	b := NewBroker(91)
	o := listRegression(t, b)
	p, err := b.BuyAtQuality(o.Name, "squared", 4)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := MarshalSale(*p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSale(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, *p) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", back, *p)
	}
}

func TestUnmarshalSaleRejects(t *testing.T) {
	for _, rec := range []string{
		`{nope`,
		`{"v": 99, "purchase": {}}`,
		`{"v": 1, "purchase": {}, "extra": true}`,
		`{"v": 1, "purchase": {"offering": "x", "bogus_field": 1}}`,
	} {
		if _, err := UnmarshalSale([]byte(rec)); err == nil {
			t.Errorf("record %q accepted", rec)
		}
	}
}

// recordingJournal captures appends; fail makes every append refuse.
type recordingJournal struct {
	mu   sync.Mutex
	recs [][]byte
	fail error
}

func (r *recordingJournal) Append(rec []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fail != nil {
		return r.fail
	}
	r.recs = append(r.recs, append([]byte(nil), rec...))
	return nil
}

func TestJournalAppendFailureRejectsSale(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := NewBroker(92)
	b.SetTelemetry(reg)
	o := listRegression(t, b)
	rj := &recordingJournal{fail: errors.New("disk full")}
	b.SetJournal(rj)

	if _, err := b.BuyAtQuality(o.Name, "squared", 3); !errors.Is(err, ErrJournal) {
		t.Fatalf("want ErrJournal, got %v", err)
	}
	if n := len(b.Sales()); n != 0 {
		t.Fatalf("unjournaled sale became visible: %d ledger entries", n)
	}
	if b.TotalRevenue() != 0 {
		t.Fatal("unjournaled sale charged revenue")
	}
	if got := reg.Counter("nimbus_purchase_rejects_total", "reason", "journal").Value(); got != 1 {
		t.Fatalf("journal reject not counted: %d", got)
	}

	// Journal heals: the next sale goes through and is appended.
	rj.mu.Lock()
	rj.fail = nil
	rj.mu.Unlock()
	if _, err := b.BuyAtQuality(o.Name, "squared", 3); err != nil {
		t.Fatal(err)
	}
	if len(rj.recs) != 1 || len(b.Sales()) != 1 {
		t.Fatalf("recovered journal: %d records, %d sales", len(rj.recs), len(b.Sales()))
	}
}

// TestJournalOrderMatchesLedger hammers the buy path concurrently and
// checks the invariant the write-ahead design promises: the journal's
// record sequence is exactly the ledger's sale sequence.
func TestJournalOrderMatchesLedger(t *testing.T) {
	b := NewBroker(93)
	o := listRegression(t, b)
	rj := &recordingJournal{}
	b.SetJournal(rj)

	const workers, buys = 4, 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < buys; i++ {
				if _, err := b.BuyAtQuality(o.Name, "squared", float64(1+(w+i)%5)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	sales := b.Sales()
	if len(sales) != workers*buys || len(rj.recs) != len(sales) {
		t.Fatalf("%d sales, %d journal records", len(sales), len(rj.recs))
	}
	for i, rec := range rj.recs {
		p, err := UnmarshalSale(rec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, sales[i]) {
			t.Fatalf("journal record %d does not match ledger entry %d", i, i)
		}
	}
}

// buyN makes n purchases at varying qualities and returns the ledger.
func buyN(t *testing.T, b *Broker, name string, n int) []Purchase {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := b.BuyAtQuality(name, "squared", float64(1+i%5)); err != nil {
			t.Fatal(err)
		}
	}
	return b.Sales()
}

// recoverInto replays a journal directory into a fresh broker, exactly as
// cmd/nimbusd does at startup: snapshot first, then the record tail.
func recoverInto(t *testing.T, dir string) *Broker {
	t.Helper()
	j, err := journal.Open(dir, journal.Options{Sync: journal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	fresh := NewBroker(1)
	if snap, ok, err := j.Snapshot(); err != nil {
		t.Fatal(err)
	} else if ok {
		if err := fresh.RestoreLedger(snap); err != nil {
			t.Fatal(err)
		}
		if err := snap.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Replay(func(rec []byte) error {
		p, err := UnmarshalSale(rec)
		if err != nil {
			return err
		}
		fresh.ReplaySale(p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return fresh
}

// TestEveryJournalPrefixRecoversALedgerPrefix is the crash-recovery
// acceptance property: journal N purchases, then for every prefix
// truncation of the journal bytes, recovery yields a ledger equal to some
// prefix of the sales sequence, with TotalRevenue matching the replayed
// receipts exactly.
func TestEveryJournalPrefixRecoversALedgerPrefix(t *testing.T) {
	master := t.TempDir()
	j, err := journal.Open(master, journal.Options{Sync: journal.SyncNever, SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBroker(94)
	if err := b.SetCommission(0.1); err != nil {
		t.Fatal(err)
	}
	o := listRegression(t, b)
	b.SetJournal(j)
	sales := buyN(t, b, o.Name, 6)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(master, "seg-*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs)
	if len(segs) < 2 {
		t.Fatalf("want the journal spread over segments, got %v", segs)
	}
	bodies := make([][]byte, len(segs))
	for i, s := range segs {
		if bodies[i], err = os.ReadFile(s); err != nil {
			t.Fatal(err)
		}
	}

	prevK := -1
	for segIdx := range segs {
		for cut := 0; cut <= len(bodies[segIdx]); cut++ {
			dir := t.TempDir()
			for i := 0; i < segIdx; i++ {
				if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[i])), bodies[i], 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[segIdx])), bodies[segIdx][:cut], 0o644); err != nil {
				t.Fatal(err)
			}

			fresh := recoverInto(t, dir)
			got := fresh.Sales()
			k := len(got)
			if k > 0 && !reflect.DeepEqual(got, sales[:k]) {
				t.Fatalf("seg %d cut %d: recovered ledger is not a prefix of the sales sequence", segIdx, cut)
			}
			var receipts float64
			for _, p := range got {
				receipts += p.Price
			}
			if fresh.TotalRevenue() != receipts {
				t.Fatalf("seg %d cut %d: TotalRevenue %v != replayed receipts %v", segIdx, cut, fresh.TotalRevenue(), receipts)
			}
			if k < prevK {
				t.Fatalf("seg %d cut %d: recovered %d sales, previously %d", segIdx, cut, k, prevK)
			}
			prevK = k
		}
	}
	if prevK != len(sales) {
		t.Fatalf("full journal recovered %d of %d sales", prevK, len(sales))
	}
}

// TestSnapshotPlusTailRecovery covers the compacted case: some sales live
// in the snapshot, later ones in the journal tail, and recovery stitches
// them back together.
func TestSnapshotPlusTailRecovery(t *testing.T) {
	dir := t.TempDir()
	j, err := journal.Open(dir, journal.Options{Sync: journal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBroker(95)
	o := listRegression(t, b)
	b.SetJournal(j)
	buyN(t, b, o.Name, 3)
	if err := j.Compact(b.SaveLedger); err != nil {
		t.Fatal(err)
	}
	buyN(t, b, o.Name, 2)
	sales := b.Sales()
	if len(sales) != 5 {
		t.Fatalf("%d sales", len(sales))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	fresh := recoverInto(t, dir)
	if !reflect.DeepEqual(fresh.Sales(), sales) {
		t.Fatal("snapshot+tail recovery does not reproduce the ledger")
	}
	if fresh.TotalRevenue() != b.TotalRevenue() {
		t.Fatalf("revenue %v vs %v", fresh.TotalRevenue(), b.TotalRevenue())
	}
}
