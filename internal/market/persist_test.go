package market

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestLedgerSaveRestoreRoundTrip(t *testing.T) {
	b := NewBroker(81)
	o := listRegression(t, b)
	for i := 0; i < 3; i++ {
		if _, err := b.BuyAtQuality(o.Name, "squared", 5); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := b.SaveLedger(&buf); err != nil {
		t.Fatal(err)
	}

	fresh := NewBroker(82)
	if err := fresh.RestoreLedger(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if len(fresh.Sales()) != 3 {
		t.Fatalf("restored %d sales", len(fresh.Sales()))
	}
	if fresh.TotalRevenue() != b.TotalRevenue() {
		t.Fatalf("revenue %v vs %v", fresh.TotalRevenue(), b.TotalRevenue())
	}
	// Weights survive exactly.
	if len(fresh.Sales()[0].Weights) != 9 {
		t.Fatal("weights lost")
	}
}

func TestRestoreLedgerRejects(t *testing.T) {
	b := NewBroker(83)
	// Bad JSON.
	if err := b.RestoreLedger(strings.NewReader("{nope")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	// Empty input (zero-byte snapshot file).
	if err := b.RestoreLedger(strings.NewReader("")); err == nil {
		t.Fatal("empty snapshot accepted")
	}
	// Truncated JSON: a syntactically valid prefix of a real snapshot,
	// as left by a crash mid-write of a non-atomic save.
	whole := `{"version": 1, "sales": [{"offering": "CASP/linear-regression", "loss": "squared", "x": 2, "ncp": 0.5, "price": 10, "broker_fee": 1, "seller_proceeds": 9, "expected_error": 0.1, "weights": [1, 2]}]}`
	for _, cut := range []int{len(whole) / 4, len(whole) / 2, len(whole) - 1} {
		if err := b.RestoreLedger(strings.NewReader(whole[:cut])); err == nil {
			t.Fatalf("truncated snapshot (%d of %d bytes) accepted", cut, len(whole))
		}
	}
	if len(b.Sales()) != 0 {
		t.Fatal("failed restores must leave the ledger empty")
	}
	// Wrong version.
	if err := b.RestoreLedger(strings.NewReader(`{"version": 99, "sales": []}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
	// Unknown fields.
	if err := b.RestoreLedger(strings.NewReader(`{"version": 1, "sales": [], "extra": true}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	// Non-empty ledger.
	withSales := NewBroker(84)
	o := listRegression(t, withSales)
	if _, err := withSales.BuyAtQuality(o.Name, "squared", 2); err != nil {
		t.Fatal(err)
	}
	if err := withSales.RestoreLedger(strings.NewReader(`{"version": 1, "sales": []}`)); err == nil {
		t.Fatal("restore over non-empty ledger accepted")
	}
}

func TestOfferingSnapshot(t *testing.T) {
	b := NewBroker(85)
	o := listRegression(t, b)
	snap := o.Snapshot()
	if snap.Name != o.Name || snap.Model != "linear-regression" || snap.Mechanism != "gaussian" {
		t.Fatalf("snapshot %+v", snap)
	}
	if !snap.ArbitrageFree {
		t.Fatal("snapshot must confirm arbitrage-freeness")
	}
	if len(snap.PricePoints) != 20 {
		t.Fatalf("%d price points", len(snap.PricePoints))
	}

	var buf bytes.Buffer
	if err := b.SaveOfferings(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []OfferingSnapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0].Name != o.Name {
		t.Fatalf("decoded %+v", decoded)
	}
}
