package market

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"nimbus/internal/pricing"
	"nimbus/internal/rng"
)

// Broker mediates between sellers and buyers: it lists offerings, serves
// price–error curves, and executes purchases by perturbing the pre-trained
// optimal instance — no retraining per sale, which is what makes the
// marketplace real-time (Section 1, "Our Solution").
//
// A Broker is safe for concurrent use.
type Broker struct {
	mu         sync.RWMutex
	offerings  map[string]*Offering
	src        *rng.Locked
	sales      []Purchase
	commission float64
}

// Purchase is a completed sale: the sold instance plus its receipt.
type Purchase struct {
	// Offering and Loss identify what was bought.
	Offering string  `json:"offering"`
	Loss     string  `json:"loss"`
	X        float64 `json:"x"`     // purchased quality (1/NCP)
	NCP      float64 `json:"ncp"`   // noise control parameter δ
	Price    float64 `json:"price"` // amount charged
	// BrokerFee is the broker's commission (Figure 1: the broker "gets a
	// cut from the seller for each sale"); SellerProceeds is the rest.
	BrokerFee      float64 `json:"broker_fee"`
	SellerProceeds float64 `json:"seller_proceeds"`
	// ExpectedError is the curve's expected reporting error at X.
	ExpectedError float64 `json:"expected_error"`
	// Weights is the noisy model instance delivered to the buyer.
	Weights []float64 `json:"weights"`
}

// ErrUnknownOffering is wrapped when a buyer names an unlisted offering.
var ErrUnknownOffering = errors.New("market: unknown offering")

// NewBroker returns an empty broker whose sale-time noise is seeded with
// seed.
func NewBroker(seed int64) *Broker {
	return &Broker{
		offerings: make(map[string]*Offering),
		src:       rng.NewLocked(seed),
	}
}

// SetCommission sets the broker's cut of every sale as a fraction in
// [0, 1). It applies to subsequent purchases; existing ledger entries keep
// the rate they were sold under.
func (b *Broker) SetCommission(rate float64) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("market: commission %v outside [0, 1)", rate)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.commission = rate
	return nil
}

// List runs the full pipeline for a new offering and adds it to the menu.
// The returned offering is also retrievable by name.
func (b *Broker) List(cfg OfferingConfig) (*Offering, error) {
	o, err := newOffering(cfg)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.offerings[o.Name]; dup {
		return nil, fmt.Errorf("market: offering %s already listed", o.Name)
	}
	b.offerings[o.Name] = o
	return o, nil
}

// Menu returns the listed offering names, sorted.
func (b *Broker) Menu() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.offerings))
	for name := range b.offerings {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Offering looks up a listed offering by name.
func (b *Broker) Offering(name string) (*Offering, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	o, ok := b.offerings[name]
	if !ok {
		return nil, fmt.Errorf("market: %q: %w", name, ErrUnknownOffering)
	}
	return o, nil
}

// BuyAtQuality executes the buyer's first option: purchase the version at
// quality x on the (offering, loss) curve.
func (b *Broker) BuyAtQuality(offering, loss string, x float64) (*Purchase, error) {
	o, err := b.Offering(offering)
	if err != nil {
		return nil, err
	}
	c, err := o.Curve(loss)
	if err != nil {
		return nil, err
	}
	return b.finalize(o, loss, c.PointAt(x))
}

// BuyWithErrorBudget executes the buyer's second option: the cheapest
// version whose expected error is at most budget.
func (b *Broker) BuyWithErrorBudget(offering, loss string, budget float64) (*Purchase, error) {
	o, err := b.Offering(offering)
	if err != nil {
		return nil, err
	}
	c, err := o.Curve(loss)
	if err != nil {
		return nil, err
	}
	pt, err := c.PointForErrorBudget(budget)
	if err != nil {
		return nil, err
	}
	return b.finalize(o, loss, pt)
}

// BuyWithPriceBudget executes the buyer's third option: the most accurate
// version whose price is within budget.
func (b *Broker) BuyWithPriceBudget(offering, loss string, budget float64) (*Purchase, error) {
	o, err := b.Offering(offering)
	if err != nil {
		return nil, err
	}
	c, err := o.Curve(loss)
	if err != nil {
		return nil, err
	}
	pt, err := c.PointForPriceBudget(budget)
	if err != nil {
		return nil, err
	}
	return b.finalize(o, loss, pt)
}

// finalize samples the noisy instance with a fresh noise stream, records
// the sale and returns the purchase.
func (b *Broker) finalize(o *Offering, loss string, pt pricing.PriceErrorPoint) (*Purchase, error) {
	if pt.X <= 0 {
		return nil, fmt.Errorf("market: purchase at non-positive quality %v", pt.X)
	}
	delta := 1 / pt.X
	weights := o.Mechanism.Perturb(o.Optimal, delta, b.src.Split())
	b.mu.Lock()
	fee := b.commission * pt.Price
	p := Purchase{
		Offering:       o.Name,
		Loss:           loss,
		X:              pt.X,
		NCP:            delta,
		Price:          pt.Price,
		BrokerFee:      fee,
		SellerProceeds: pt.Price - fee,
		ExpectedError:  pt.Error,
		Weights:        weights,
	}
	b.sales = append(b.sales, p)
	b.mu.Unlock()
	return &p, nil
}

// Payouts returns the seller proceeds accumulated per offering — what the
// broker owes each seller after taking its cut.
func (b *Broker) Payouts() map[string]float64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make(map[string]float64)
	for _, p := range b.sales {
		out[p.Offering] += p.SellerProceeds
	}
	return out
}

// TotalFees sums the broker's commission earnings.
func (b *Broker) TotalFees() float64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var s float64
	for _, p := range b.sales {
		s += p.BrokerFee
	}
	return s
}

// Sales returns a copy of the sale ledger.
func (b *Broker) Sales() []Purchase {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]Purchase(nil), b.sales...)
}

// TotalRevenue sums the ledger.
func (b *Broker) TotalRevenue() float64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var s float64
	for _, p := range b.sales {
		s += p.Price
	}
	return s
}
