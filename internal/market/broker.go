package market

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nimbus/internal/pricing"
	"nimbus/internal/rng"
	"nimbus/internal/telemetry"
)

// Broker mediates between sellers and buyers: it lists offerings, serves
// price–error curves, and executes purchases by perturbing the pre-trained
// optimal instance — no retraining per sale, which is what makes the
// marketplace real-time (Section 1, "Our Solution").
//
// A Broker is safe for concurrent use, and built so purchases scale with
// offering count: the ledger is partitioned into brokerShards shards keyed
// by offering hash, so sales of different offerings never share a lock,
// and the read-heavy browse path (Menu, Offering, saleTerms) is lock-free —
// it loads one atomically-published immutable snapshot.
type Broker struct {
	// menu is the browse-path state: offerings, the sorted menu, the
	// commission rate and the journal handle, published as an immutable
	// snapshot. Readers pay one atomic load; writers clone-and-swap under
	// regmu.
	menu atomic.Pointer[menuSnapshot]

	// regmu serializes snapshot writers (List, SetCommission, SetJournal,
	// SetTelemetry). Readers never take it.
	regmu sync.Mutex

	// shards partition the sale ledger and its running aggregates by
	// offering hash; see Broker.shard.
	shards [brokerShards]shard

	// tel is the broker's sale-path instrumentation; brokerTelemetry's
	// handles are nil-safe, so an uninstrumented broker pays only nil
	// checks on the hot path. Deliberately not lock-guarded: SetTelemetry
	// runs at startup before the broker serves.
	tel brokerTelemetry
}

// brokerShards is the ledger partition count. Offerings hash onto shards,
// so the worst case — every buyer hammering one offering — degrades to the
// old single-lock behavior for that offering only, while a multi-offering
// mix spreads across independent locks, journal queues and noise sources.
const brokerShards = 16

// shard is one ledger partition: the sales of the offerings that hash
// here, their running financial aggregates, a noise source, and the
// commit queue that group-orders journal appends with ledger appends.
type shard struct {
	mu      sync.RWMutex
	sales   []Purchase                // guarded by mu
	books   map[string]*offeringBooks // guarded by mu; running per-offering totals
	fees    float64                   // guarded by mu; commission running total
	revenue float64                   // guarded by mu; gross running total
	payout  float64                   // guarded by mu; seller-proceeds running total

	// src is this shard's sale-time noise source. Per-shard streams keep
	// draws replayable (seeded at NewBroker) without a global rng lock.
	src *rng.Locked

	// jmu guards the shard's commit queue. The queue exists so that the
	// write-ahead pair (journal append, then ledger append) keeps one
	// order per shard without holding any lock across the journal I/O:
	// concurrent sales enqueue under jmu, one caller becomes the batch's
	// leader, journals the whole batch with jmu released, then appends the
	// batch to the ledger in enqueue order. jmu is never held together
	// with mu, but the declared order documents that jmu work precedes mu
	// work on the sale path:
	//
	//lint:lockorder jmu < mu
	jmu      sync.Mutex
	jcond    *sync.Cond   // signals batch completion; waiters re-check their batch
	jbatch   *commitBatch // guarded by jmu; the batch accumulating sales
	jleading bool         // guarded by jmu; a leader is journaling a batch
}

// offeringBooks is one offering's running financial totals. An offering
// hashes onto exactly one shard, so its books live whole in that shard —
// Statement merges them without ever rescanning the ledger.
type offeringBooks struct {
	sales  int
	gross  float64
	fees   float64
	payout float64
}

// commitBatch is one shard's in-flight group of sales. Its fields are
// owned by jmu until the batch is stolen by its leader; recs and sales
// are then read only by that leader until done is set.
type commitBatch struct {
	recs  [][]byte
	sales []Purchase
	// err is the whole-batch verdict (batch journals are all-or-nothing);
	// errs holds per-record verdicts from the per-record fallback path.
	err  error
	errs []error
	done bool
}

// result returns the verdict for the record enqueued at idx.
func (bt *commitBatch) result(idx int) error {
	if bt.err != nil {
		return bt.err
	}
	if bt.errs != nil {
		return bt.errs[idx]
	}
	return nil
}

// menuSnapshot is the immutable browse-path state. A published snapshot
// is never mutated; writers build a fresh one and swap the pointer, so
// Menu/Offering/saleTerms never block on a lock and never observe a
// partial update.
// The snapshot is immutable once Stored: writers clone it (cloneMenu),
// mutate the clone, and republish, so readers on the Buy path never see
// a half-updated menu.
//
//lint:immutable published via b.menu (atomic.Pointer); clone-mutate-Store only
type menuSnapshot struct {
	offerings  map[string]*Offering
	names      []string // sorted menu, precomputed at publish time
	commission float64
	journal    SaleJournal
}

// SaleJournal is the broker's durability hook: an append-only log that
// must acknowledge each encoded Purchase before the sale becomes visible
// in the ledger. internal/journal's *Journal satisfies it directly.
type SaleJournal interface {
	Append(rec []byte) error
}

// BatchJournal is the optional batching extension of SaleJournal: a
// journal that can make a run of records durable in one call (one frame
// write, one fsync under the always/group policies). internal/journal's
// *Journal satisfies it. The shard commit queue uses it to flush a whole
// batch at once; a plain SaleJournal falls back to per-record appends.
type BatchJournal interface {
	SaleJournal
	AppendMany(recs [][]byte) error
}

// ErrJournal wraps a failure to make a sale durable. The sale is refused:
// a purchase the crash-recovery story cannot replay must not be handed to
// the buyer.
var ErrJournal = errors.New("market: sale journal append failed")

// SetJournal directs every subsequent purchase through j (write-ahead:
// append first, then ledger). A nil j turns journaling back off. Set it
// at startup, after replaying recovered sales.
func (b *Broker) SetJournal(j SaleJournal) {
	b.regmu.Lock()
	defer b.regmu.Unlock()
	next := b.cloneMenu()
	next.journal = j
	b.menu.Store(next)
}

// ReplaySale appends a recovered purchase to its shard's ledger — and its
// running aggregates — without drawing noise, charging, or re-journaling:
// it is the restart-time inverse of finalize, fed from the journal.
// Per-offering sale counters are not re-incremented — telemetry counts
// this process's sales, the ledger counts all of them.
func (b *Broker) ReplaySale(p Purchase) {
	b.shard(p.Offering).record(p)
}

// brokerTelemetry bundles the broker's metric handles so the hot path
// never goes through registry lookups.
type brokerTelemetry struct {
	reg       *telemetry.Registry
	revenue   *telemetry.FloatCounter
	fees      *telemetry.FloatCounter
	noiseDraw *telemetry.Histogram
}

// SetTelemetry points the broker's sale metrics at reg: purchase counts
// per offering, revenue and commission totals, rejected purchases by
// reason, and the noise-draw latency histogram. Call before serving; the
// handles are swapped under regmu.
func (b *Broker) SetTelemetry(reg *telemetry.Registry) {
	reg.Help("nimbus_purchases_total", "Completed sales by offering.")
	reg.Help("nimbus_revenue_total", "Gross revenue across all sales.")
	reg.Help("nimbus_broker_fees_total", "Commission kept by the broker.")
	reg.Help("nimbus_purchase_rejects_total", "Purchases refused, by reason.")
	reg.Help("nimbus_noise_draw_seconds", "Latency of per-sale noise perturbation.")
	b.regmu.Lock()
	defer b.regmu.Unlock()
	b.tel = brokerTelemetry{
		reg:       reg,
		revenue:   reg.FloatCounter("nimbus_revenue_total"),
		fees:      reg.FloatCounter("nimbus_broker_fees_total"),
		noiseDraw: reg.Histogram("nimbus_noise_draw_seconds", nil),
	}
	// Existing listings get their per-offering sale counter attached now;
	// later listings get theirs in List. Caching the handle on the
	// offering keeps registry lookups off the sale path. The offerings in
	// the published snapshot are read concurrently by the Buy path, so
	// each gets the counter on a clone and the whole menu is republished.
	next := b.cloneMenu()
	for name, o := range next.offerings {
		oc := *o
		//lint:ignore telemetry-label-literal offering names come from the seller-curated menu, not from buyer requests, so the series set is bounded by listings
		oc.sales = reg.Counter("nimbus_purchases_total", "offering", o.Name)
		next.offerings[name] = &oc
	}
	b.menu.Store(next)
}

// recordReject classifies a failed purchase for telemetry. It keeps label
// cardinality bounded by mapping errors onto a fixed reason set.
func (b *Broker) recordReject(err error) {
	if b.tel.reg == nil || err == nil {
		return
	}
	reason := "invalid"
	switch {
	case errors.Is(err, ErrUnknownOffering):
		reason = "unknown-offering"
	case errors.Is(err, pricing.ErrUnattainable):
		reason = "unattainable"
	case errors.Is(err, pricing.ErrOverBudget):
		reason = "over-budget"
	case errors.Is(err, ErrJournal):
		reason = "journal"
	}
	//lint:ignore telemetry-label-literal reason is mapped onto the fixed four-value set above before it reaches the registry
	b.tel.reg.Counter("nimbus_purchase_rejects_total", "reason", reason).Inc()
}

// Purchase is a completed sale: the sold instance plus its receipt.
type Purchase struct {
	// Offering and Loss identify what was bought.
	Offering string  `json:"offering"`
	Loss     string  `json:"loss"`
	X        float64 `json:"x"`     // purchased quality (1/NCP)
	NCP      float64 `json:"ncp"`   // noise control parameter δ
	Price    float64 `json:"price"` // amount charged
	// BrokerFee is the broker's commission (Figure 1: the broker "gets a
	// cut from the seller for each sale"); SellerProceeds is the rest.
	BrokerFee      float64 `json:"broker_fee"`
	SellerProceeds float64 `json:"seller_proceeds"`
	// ExpectedError is the curve's expected reporting error at X.
	ExpectedError float64 `json:"expected_error"`
	// Weights is the noisy model instance delivered to the buyer.
	Weights []float64 `json:"weights"`
}

// ErrUnknownOffering is wrapped when a buyer names an unlisted offering.
var ErrUnknownOffering = errors.New("market: unknown offering")

// NewBroker returns an empty broker whose sale-time noise is seeded with
// seed. Each shard derives its own stream from the seed, so draws stay
// replayable without a broker-global rng lock.
func NewBroker(seed int64) *Broker {
	b := &Broker{}
	for i := range b.shards {
		sh := &b.shards[i]
		sh.src = rng.NewLocked(seed + int64(i))
		sh.jcond = sync.NewCond(&sh.jmu)
		// No other goroutine can reach b yet, but books is mu-guarded, so
		// honor the contract anyway — one uncontended lock at startup.
		sh.mu.Lock()
		sh.books = make(map[string]*offeringBooks)
		sh.mu.Unlock()
	}
	b.menu.Store(&menuSnapshot{offerings: map[string]*Offering{}})
	return b
}

// shard maps an offering name onto its ledger partition (FNV-1a).
func (b *Broker) shard(offering string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(offering); i++ {
		h ^= uint32(offering[i])
		h *= 16777619
	}
	return &b.shards[h%brokerShards]
}

// cloneMenu copies the published snapshot so a writer can mutate the copy
// and publish it. Caller holds regmu (which is what makes read-copy-update
// safe against concurrent writers).
func (b *Broker) cloneMenu() *menuSnapshot {
	cur := b.menu.Load()
	next := &menuSnapshot{
		offerings:  make(map[string]*Offering, len(cur.offerings)+1),
		names:      cur.names,
		commission: cur.commission,
		journal:    cur.journal,
	}
	for k, v := range cur.offerings {
		next.offerings[k] = v
	}
	return next
}

// SetCommission sets the broker's cut of every sale as a fraction in
// [0, 1). It applies to subsequent purchases; existing ledger entries keep
// the rate they were sold under.
func (b *Broker) SetCommission(rate float64) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("market: commission %v outside [0, 1)", rate)
	}
	b.regmu.Lock()
	defer b.regmu.Unlock()
	next := b.cloneMenu()
	next.commission = rate
	b.menu.Store(next)
	return nil
}

// List runs the full pipeline for a new offering and adds it to the menu.
// The returned offering is also retrievable by name.
func (b *Broker) List(cfg OfferingConfig) (*Offering, error) {
	o, err := newOffering(cfg)
	if err != nil {
		return nil, err
	}
	b.regmu.Lock()
	defer b.regmu.Unlock()
	next := b.cloneMenu()
	if _, dup := next.offerings[o.Name]; dup {
		return nil, fmt.Errorf("market: offering %s already listed", o.Name)
	}
	if b.tel.reg != nil {
		//lint:ignore telemetry-label-literal offering names come from the seller-curated menu, not from buyer requests, so the series set is bounded by listings
		o.sales = b.tel.reg.Counter("nimbus_purchases_total", "offering", o.Name)
	}
	next.offerings[o.Name] = o
	names := make([]string, 0, len(next.offerings))
	for name := range next.offerings {
		names = append(names, name)
	}
	sort.Strings(names)
	next.names = names
	b.menu.Store(next)
	return o, nil
}

// Menu returns the listed offering names, sorted. Lock-free: one atomic
// snapshot load plus a copy of the precomputed menu.
func (b *Broker) Menu() []string {
	return append([]string(nil), b.menu.Load().names...)
}

// Offering looks up a listed offering by name. Lock-free.
func (b *Broker) Offering(name string) (*Offering, error) {
	o, ok := b.menu.Load().offerings[name]
	if !ok {
		//lint:allocok refusal path: the request is being rejected, not served
		return nil, fmt.Errorf("market: %q: %w", name, ErrUnknownOffering)
	}
	return o, nil
}

// buyMode selects which of the paper's three purchase options buy
// executes. An enum instead of a pick-closure keeps the per-request
// path free of closure allocations.
type buyMode uint8

const (
	buyAtQuality buyMode = iota
	buyErrorBudget
	buyPriceBudget
)

// BuyAtQuality executes the buyer's first option: purchase the version at
// quality x on the (offering, loss) curve.
func (b *Broker) BuyAtQuality(offering, loss string, x float64) (*Purchase, error) {
	return b.buy(offering, loss, buyAtQuality, x)
}

// BuyWithErrorBudget executes the buyer's second option: the cheapest
// version whose expected error is at most budget.
func (b *Broker) BuyWithErrorBudget(offering, loss string, budget float64) (*Purchase, error) {
	return b.buy(offering, loss, buyErrorBudget, budget)
}

// BuyWithPriceBudget executes the buyer's third option: the most accurate
// version whose price is within budget.
func (b *Broker) BuyWithPriceBudget(offering, loss string, budget float64) (*Purchase, error) {
	return b.buy(offering, loss, buyPriceBudget, budget)
}

// buy resolves the offering and curve, picks the purchase point per the
// buyer's option, and finalizes the sale, recording any refusal for
// telemetry.
//
//lint:hotpath per-request purchase path; Figure 1's interactive loop
func (b *Broker) buy(offering, loss string, mode buyMode, arg float64) (*Purchase, error) {
	o, err := b.Offering(offering)
	if err != nil {
		b.recordReject(err)
		return nil, err
	}
	c, err := o.Curve(loss)
	if err != nil {
		b.recordReject(err)
		return nil, err
	}
	var pt pricing.PriceErrorPoint
	switch mode {
	case buyAtQuality:
		pt = c.PointAt(arg)
	case buyErrorBudget:
		pt, err = c.PointForErrorBudget(arg)
	default:
		pt, err = c.PointForPriceBudget(arg)
	}
	if err != nil {
		b.recordReject(err)
		return nil, err
	}
	return b.finalize(o, loss, pt)
}

// finalize samples the noisy instance from the offering's shard stream,
// makes the sale durable (when a journal is set, the encoded purchase is
// appended and acknowledged before it becomes visible), records it in the
// shard ledger and returns the purchase. The purchase record is marshalled
// here, outside every lock — only the journal I/O and the ledger append
// are serialized, and only within the offering's shard.
//
//lint:hotpath per-sale critical section between quote and acknowledgment
func (b *Broker) finalize(o *Offering, loss string, pt pricing.PriceErrorPoint) (*Purchase, error) {
	if pt.X <= 0 {
		//lint:allocok refusal path: the request is being rejected, not served
		err := fmt.Errorf("market: purchase at non-positive quality %v", pt.X)
		b.recordReject(err)
		return nil, err
	}
	sh := b.shard(o.Name)
	delta := 1 / pt.X
	drawStart := time.Now()
	weights := o.Mechanism.Perturb(o.Optimal, delta, sh.src.Split())
	b.tel.noiseDraw.Observe(time.Since(drawStart).Seconds())
	fee, j := b.saleTerms(pt.Price)
	p := Purchase{
		Offering:       o.Name,
		Loss:           loss,
		X:              pt.X,
		NCP:            delta,
		Price:          pt.Price,
		BrokerFee:      fee,
		SellerProceeds: pt.Price - fee,
		ExpectedError:  pt.Error,
		Weights:        weights,
	}
	if j != nil {
		rec, err := MarshalSale(p)
		if err == nil {
			err = sh.commit(j, rec, p)
		}
		if err != nil {
			//lint:allocok failure path: the sale did not go through
			err = fmt.Errorf("%w: %v", ErrJournal, err)
			b.recordReject(err)
			return nil, err
		}
	} else {
		sh.record(p)
	}
	o.sales.Inc()
	b.tel.revenue.Add(pt.Price)
	b.tel.fees.Add(fee)
	return &p, nil
}

// saleTerms snapshots the commission owed on price and the journal handle
// from one menu snapshot, so a concurrent SetCommission/SetJournal cannot
// split the pair. Lock-free.
func (b *Broker) saleTerms(price float64) (fee float64, j SaleJournal) {
	snap := b.menu.Load()
	return snap.commission * price, snap.journal
}

// commit runs one sale through the shard's group-commit queue: write-ahead
// (journal append acknowledged first), then visible (ledger append), with
// per-shard journal order equal to per-shard ledger order. The sale joins
// the forming batch; the first caller that finds no flush in flight leads
// the batch — one journal call and one ledger splice for everyone —
// while later arrivals accumulate the next batch. No lock is held across
// the journal I/O.
//
//lint:hotpath every durable sale serializes through the shard's commit queue
func (sh *shard) commit(j SaleJournal, rec []byte, p Purchase) error {
	sh.jmu.Lock()
	if sh.jbatch == nil {
		//lint:allocok one batch header per flush window, amortized over every sale in the batch
		sh.jbatch = &commitBatch{}
	}
	bt := sh.jbatch
	idx := len(bt.recs)
	//lint:allocok batch slices grow toward the flush window's size; the doubling amortizes across the batch
	bt.recs = append(bt.recs, rec)
	//lint:allocok same amortized growth as recs above
	bt.sales = append(bt.sales, p)
	for sh.jleading && !bt.done {
		sh.jcond.Wait()
	}
	if bt.done {
		// Another caller led our batch while we waited; its verdict on our
		// record is ours.
		err := bt.result(idx)
		sh.jmu.Unlock()
		return err
	}
	// No leader in flight and our batch not yet flushed: lead it.
	sh.jleading = true
	sh.jbatch = nil
	sh.jmu.Unlock()

	sh.flush(j, bt)

	sh.jmu.Lock()
	bt.done = true
	sh.jleading = false
	sh.jcond.Broadcast()
	sh.jmu.Unlock()
	return bt.result(idx)
}

// flush makes one batch durable and, on success, visible. A BatchJournal
// takes the whole batch in one call with all-or-nothing semantics; the
// per-record fallback gives each record its own verdict, and the records
// the journal accepted still enter the ledger in journal order.
func (sh *shard) flush(j SaleJournal, bt *commitBatch) {
	if bj, ok := j.(BatchJournal); ok {
		if err := bj.AppendMany(bt.recs); err != nil {
			bt.err = err
			return
		}
		sh.recordBatch(bt.sales)
		return
	}
	//lint:allocok per-record fallback only: one verdict slot per batched sale
	bt.errs = make([]error, len(bt.recs))
	accepted := bt.sales[:0:0]
	for i, rec := range bt.recs {
		if err := j.Append(rec); err != nil {
			bt.errs[i] = err
			continue
		}
		//lint:allocok per-record fallback only; grows to at most the batch size
		accepted = append(accepted, bt.sales[i])
	}
	if len(accepted) > 0 {
		sh.recordBatch(accepted)
	}
}

// record appends one purchase to the shard ledger and aggregates.
func (sh *shard) record(p Purchase) {
	sh.mu.Lock()
	sh.recordLocked(p)
	sh.mu.Unlock()
}

// recordBatch appends a run of purchases under one lock acquisition.
func (sh *shard) recordBatch(ps []Purchase) {
	sh.mu.Lock()
	for _, p := range ps {
		sh.recordLocked(p)
	}
	sh.mu.Unlock()
}

// recordLocked appends the purchase to the ledger and folds it into the
// running aggregates, so Payouts/TotalFees/TotalRevenue never rescan the
// ledger. Caller holds mu.
//
//lint:holds mu
func (sh *shard) recordLocked(p Purchase) {
	//lint:allocok the ledger is the product; slice doubling amortizes across the shard's sale history
	sh.sales = append(sh.sales, p)
	bk := sh.books[p.Offering]
	if bk == nil {
		//lint:allocok one books entry per offering for the shard's lifetime, amortized over every sale of that offering
		bk = &offeringBooks{}
		sh.books[p.Offering] = bk
	}
	bk.sales++
	bk.gross += p.Price
	bk.fees += p.BrokerFee
	bk.payout += p.SellerProceeds
	sh.fees += p.BrokerFee
	sh.revenue += p.Price
	sh.payout += p.SellerProceeds
}

// Payouts returns the seller proceeds accumulated per offering — what the
// broker owes each seller after taking its cut. The result is a fresh map
// merged from the shards' running books; no ledger rescan.
func (b *Broker) Payouts() map[string]float64 {
	out := make(map[string]float64)
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		for name, bk := range sh.books {
			out[name] += bk.payout
		}
		sh.mu.RUnlock()
	}
	return out
}

// TotalFees sums the broker's commission earnings from the shard
// aggregates.
func (b *Broker) TotalFees() float64 {
	var s float64
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		s += sh.fees
		sh.mu.RUnlock()
	}
	return s
}

// TotalRevenue sums gross revenue from the shard aggregates.
func (b *Broker) TotalRevenue() float64 {
	var s float64
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		s += sh.revenue
		sh.mu.RUnlock()
	}
	return s
}

// Sales returns a copy of the sale ledger: each shard's sales in order,
// shards concatenated in index order. Within a shard the order is exactly
// the order sales were acknowledged (and journaled); across shards there
// is no global order — concurrent sales of different offerings never
// synchronized with each other in the first place.
func (b *Broker) Sales() []Purchase {
	out := make([]Purchase, 0, b.SaleCount())
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		out = append(out, sh.sales...)
		sh.mu.RUnlock()
	}
	return out
}

// SaleCount reports the ledger length without copying the ledger.
func (b *Broker) SaleCount() int {
	n := 0
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		n += len(sh.sales)
		sh.mu.RUnlock()
	}
	return n
}
