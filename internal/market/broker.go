package market

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"nimbus/internal/pricing"
	"nimbus/internal/rng"
	"nimbus/internal/telemetry"
)

// Broker mediates between sellers and buyers: it lists offerings, serves
// price–error curves, and executes purchases by perturbing the pre-trained
// optimal instance — no retraining per sale, which is what makes the
// marketplace real-time (Section 1, "Our Solution").
//
// A Broker is safe for concurrent use.
type Broker struct {
	mu         sync.RWMutex
	offerings  map[string]*Offering // guarded by mu
	src        *rng.Locked
	sales      []Purchase // guarded by mu
	commission float64    // guarded by mu

	// jmu serializes the journal-append + ledger-append pair, so the
	// on-disk record order is exactly the ledger order. When both locks
	// are needed, jmu comes first:
	//
	//lint:lockorder jmu < mu
	jmu     sync.Mutex
	journal SaleJournal // guarded by mu

	// tel is the broker's sale-path instrumentation; brokerTelemetry's
	// handles are nil-safe, so an uninstrumented broker pays only nil
	// checks on the hot path. Deliberately not lock-guarded: SetTelemetry
	// runs at startup before the broker serves (the swap still happens
	// under mu only to order it against a concurrent List).
	tel brokerTelemetry
}

// SaleJournal is the broker's durability hook: an append-only log that
// must acknowledge each encoded Purchase before the sale becomes visible
// in the ledger. internal/journal's *Journal satisfies it directly.
type SaleJournal interface {
	Append(rec []byte) error
}

// ErrJournal wraps a failure to make a sale durable. The sale is refused:
// a purchase the crash-recovery story cannot replay must not be handed to
// the buyer.
var ErrJournal = errors.New("market: sale journal append failed")

// SetJournal directs every subsequent purchase through j (write-ahead:
// append first, then ledger). A nil j turns journaling back off. Set it
// at startup, after replaying recovered sales.
func (b *Broker) SetJournal(j SaleJournal) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.journal = j
}

// ReplaySale appends a recovered purchase to the ledger without drawing
// noise, charging, or re-journaling: it is the restart-time inverse of
// finalize, fed from the journal. Per-offering sale counters are not
// re-incremented — telemetry counts this process's sales, the ledger
// counts all of them.
func (b *Broker) ReplaySale(p Purchase) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sales = append(b.sales, p)
}

// brokerTelemetry bundles the broker's metric handles so the hot path
// never goes through registry lookups.
type brokerTelemetry struct {
	reg       *telemetry.Registry
	revenue   *telemetry.FloatCounter
	fees      *telemetry.FloatCounter
	noiseDraw *telemetry.Histogram
}

// SetTelemetry points the broker's sale metrics at reg: purchase counts
// per offering, revenue and commission totals, rejected purchases by
// reason, and the noise-draw latency histogram. Call before serving; the
// handles are swapped under the broker lock.
func (b *Broker) SetTelemetry(reg *telemetry.Registry) {
	reg.Help("nimbus_purchases_total", "Completed sales by offering.")
	reg.Help("nimbus_revenue_total", "Gross revenue across all sales.")
	reg.Help("nimbus_broker_fees_total", "Commission kept by the broker.")
	reg.Help("nimbus_purchase_rejects_total", "Purchases refused, by reason.")
	reg.Help("nimbus_noise_draw_seconds", "Latency of per-sale noise perturbation.")
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tel = brokerTelemetry{
		reg:       reg,
		revenue:   reg.FloatCounter("nimbus_revenue_total"),
		fees:      reg.FloatCounter("nimbus_broker_fees_total"),
		noiseDraw: reg.Histogram("nimbus_noise_draw_seconds", nil),
	}
	// Existing listings get their per-offering sale counter attached now;
	// later listings get theirs in List. Caching the handle on the
	// offering keeps registry lookups off the sale path.
	for _, o := range b.offerings {
		//lint:ignore telemetry-label-literal offering names come from the seller-curated menu, not from buyer requests, so the series set is bounded by listings
		o.sales = reg.Counter("nimbus_purchases_total", "offering", o.Name)
	}
}

// recordReject classifies a failed purchase for telemetry. It keeps label
// cardinality bounded by mapping errors onto a fixed reason set.
func (b *Broker) recordReject(err error) {
	if b.tel.reg == nil || err == nil {
		return
	}
	reason := "invalid"
	switch {
	case errors.Is(err, ErrUnknownOffering):
		reason = "unknown-offering"
	case errors.Is(err, pricing.ErrUnattainable):
		reason = "unattainable"
	case errors.Is(err, pricing.ErrOverBudget):
		reason = "over-budget"
	case errors.Is(err, ErrJournal):
		reason = "journal"
	}
	//lint:ignore telemetry-label-literal reason is mapped onto the fixed four-value set above before it reaches the registry
	b.tel.reg.Counter("nimbus_purchase_rejects_total", "reason", reason).Inc()
}

// Purchase is a completed sale: the sold instance plus its receipt.
type Purchase struct {
	// Offering and Loss identify what was bought.
	Offering string  `json:"offering"`
	Loss     string  `json:"loss"`
	X        float64 `json:"x"`     // purchased quality (1/NCP)
	NCP      float64 `json:"ncp"`   // noise control parameter δ
	Price    float64 `json:"price"` // amount charged
	// BrokerFee is the broker's commission (Figure 1: the broker "gets a
	// cut from the seller for each sale"); SellerProceeds is the rest.
	BrokerFee      float64 `json:"broker_fee"`
	SellerProceeds float64 `json:"seller_proceeds"`
	// ExpectedError is the curve's expected reporting error at X.
	ExpectedError float64 `json:"expected_error"`
	// Weights is the noisy model instance delivered to the buyer.
	Weights []float64 `json:"weights"`
}

// ErrUnknownOffering is wrapped when a buyer names an unlisted offering.
var ErrUnknownOffering = errors.New("market: unknown offering")

// NewBroker returns an empty broker whose sale-time noise is seeded with
// seed.
func NewBroker(seed int64) *Broker {
	return &Broker{
		offerings: make(map[string]*Offering),
		src:       rng.NewLocked(seed),
	}
}

// SetCommission sets the broker's cut of every sale as a fraction in
// [0, 1). It applies to subsequent purchases; existing ledger entries keep
// the rate they were sold under.
func (b *Broker) SetCommission(rate float64) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("market: commission %v outside [0, 1)", rate)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.commission = rate
	return nil
}

// List runs the full pipeline for a new offering and adds it to the menu.
// The returned offering is also retrievable by name.
func (b *Broker) List(cfg OfferingConfig) (*Offering, error) {
	o, err := newOffering(cfg)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.offerings[o.Name]; dup {
		return nil, fmt.Errorf("market: offering %s already listed", o.Name)
	}
	if b.tel.reg != nil {
		//lint:ignore telemetry-label-literal offering names come from the seller-curated menu, not from buyer requests, so the series set is bounded by listings
		o.sales = b.tel.reg.Counter("nimbus_purchases_total", "offering", o.Name)
	}
	b.offerings[o.Name] = o
	return o, nil
}

// Menu returns the listed offering names, sorted.
func (b *Broker) Menu() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.offerings))
	for name := range b.offerings {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Offering looks up a listed offering by name.
func (b *Broker) Offering(name string) (*Offering, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	o, ok := b.offerings[name]
	if !ok {
		return nil, fmt.Errorf("market: %q: %w", name, ErrUnknownOffering)
	}
	return o, nil
}

// BuyAtQuality executes the buyer's first option: purchase the version at
// quality x on the (offering, loss) curve.
func (b *Broker) BuyAtQuality(offering, loss string, x float64) (*Purchase, error) {
	return b.buy(offering, loss, func(c *pricing.PriceErrorCurve) (pricing.PriceErrorPoint, error) {
		return c.PointAt(x), nil
	})
}

// BuyWithErrorBudget executes the buyer's second option: the cheapest
// version whose expected error is at most budget.
func (b *Broker) BuyWithErrorBudget(offering, loss string, budget float64) (*Purchase, error) {
	return b.buy(offering, loss, func(c *pricing.PriceErrorCurve) (pricing.PriceErrorPoint, error) {
		return c.PointForErrorBudget(budget)
	})
}

// BuyWithPriceBudget executes the buyer's third option: the most accurate
// version whose price is within budget.
func (b *Broker) BuyWithPriceBudget(offering, loss string, budget float64) (*Purchase, error) {
	return b.buy(offering, loss, func(c *pricing.PriceErrorCurve) (pricing.PriceErrorPoint, error) {
		return c.PointForPriceBudget(budget)
	})
}

// buy resolves the offering and curve, picks the purchase point, and
// finalizes the sale, recording any refusal for telemetry.
func (b *Broker) buy(offering, loss string, pick func(*pricing.PriceErrorCurve) (pricing.PriceErrorPoint, error)) (*Purchase, error) {
	o, err := b.Offering(offering)
	if err != nil {
		b.recordReject(err)
		return nil, err
	}
	c, err := o.Curve(loss)
	if err != nil {
		b.recordReject(err)
		return nil, err
	}
	pt, err := pick(c)
	if err != nil {
		b.recordReject(err)
		return nil, err
	}
	return b.finalize(o, loss, pt)
}

// finalize samples the noisy instance with a fresh noise stream, makes
// the sale durable (when a journal is set, the encoded purchase is
// appended and acknowledged before it becomes visible), records it in
// the ledger and returns the purchase.
func (b *Broker) finalize(o *Offering, loss string, pt pricing.PriceErrorPoint) (*Purchase, error) {
	if pt.X <= 0 {
		err := fmt.Errorf("market: purchase at non-positive quality %v", pt.X)
		b.recordReject(err)
		return nil, err
	}
	delta := 1 / pt.X
	drawStart := time.Now()
	weights := o.Mechanism.Perturb(o.Optimal, delta, b.src.Split())
	b.tel.noiseDraw.Observe(time.Since(drawStart).Seconds())
	fee, j := b.saleTerms(pt.Price)
	p := Purchase{
		Offering:       o.Name,
		Loss:           loss,
		X:              pt.X,
		NCP:            delta,
		Price:          pt.Price,
		BrokerFee:      fee,
		SellerProceeds: pt.Price - fee,
		ExpectedError:  pt.Error,
		Weights:        weights,
	}
	if j != nil {
		if err := b.journalAndRecord(j, p); err != nil {
			b.recordReject(err)
			return nil, err
		}
	} else {
		b.recordSale(p)
	}
	o.sales.Inc()
	b.tel.revenue.Add(pt.Price)
	b.tel.fees.Add(fee)
	return &p, nil
}

// saleTerms snapshots the commission owed on price and the journal handle
// under one read lock, so a concurrent SetCommission/SetJournal cannot
// split the pair.
func (b *Broker) saleTerms(price float64) (fee float64, j SaleJournal) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.commission * price, b.journal
}

// journalAndRecord makes the sale durable, then visible: write-ahead
// under jmu, so journal order is ledger order and a sale the journal did
// not accept never reaches the ledger. jmu is taken before mu, matching
// the declared lock order.
func (b *Broker) journalAndRecord(j SaleJournal, p Purchase) error {
	b.jmu.Lock()
	defer b.jmu.Unlock()
	rec, err := MarshalSale(p)
	if err == nil {
		err = j.Append(rec)
	}
	if err != nil {
		return fmt.Errorf("%w: %v", ErrJournal, err)
	}
	b.recordSale(p)
	return nil
}

// recordSale appends the purchase to the ledger.
func (b *Broker) recordSale(p Purchase) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sales = append(b.sales, p)
}

// Payouts returns the seller proceeds accumulated per offering — what the
// broker owes each seller after taking its cut.
func (b *Broker) Payouts() map[string]float64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make(map[string]float64)
	for _, p := range b.sales {
		out[p.Offering] += p.SellerProceeds
	}
	return out
}

// TotalFees sums the broker's commission earnings.
func (b *Broker) TotalFees() float64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var s float64
	for _, p := range b.sales {
		s += p.BrokerFee
	}
	return s
}

// Sales returns a copy of the sale ledger.
func (b *Broker) Sales() []Purchase {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]Purchase(nil), b.sales...)
}

// TotalRevenue sums the ledger.
func (b *Broker) TotalRevenue() float64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var s float64
	for _, p := range b.sales {
		s += p.Price
	}
	return s
}
