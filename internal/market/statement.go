package market

import (
	"fmt"
	"io"
	"sort"
)

// Statement is the broker's periodic accounting report: per-offering sales,
// gross revenue, commission and the payout owed to the seller.
type Statement struct {
	Lines      []StatementLine `json:"lines"`
	Sales      int             `json:"sales"`
	Gross      float64         `json:"gross"`
	BrokerFees float64         `json:"broker_fees"`
	Payouts    float64         `json:"payouts"`
}

// StatementLine is one offering's row.
type StatementLine struct {
	Offering string  `json:"offering"`
	Sales    int     `json:"sales"`
	Gross    float64 `json:"gross"`
	Fees     float64 `json:"fees"`
	Payout   float64 `json:"payout"`
}

// Statement aggregates the ledger, one shard at a time. This is the slow
// audit path — it deliberately rescans sales rather than trusting the
// running aggregates, so the two can be cross-checked in tests.
func (b *Broker) Statement() *Statement {
	byOffering := map[string]*StatementLine{}
	st := &Statement{}
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		for _, p := range sh.sales {
			line, ok := byOffering[p.Offering]
			if !ok {
				line = &StatementLine{Offering: p.Offering}
				byOffering[p.Offering] = line
			}
			line.Sales++
			line.Gross += p.Price
			line.Fees += p.BrokerFee
			line.Payout += p.SellerProceeds
			st.Sales++
			st.Gross += p.Price
			st.BrokerFees += p.BrokerFee
			st.Payouts += p.SellerProceeds
		}
		sh.mu.RUnlock()
	}
	names := make([]string, 0, len(byOffering))
	for name := range byOffering {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st.Lines = append(st.Lines, *byOffering[name])
	}
	return st
}

// Write renders the statement as a fixed-width report.
func (s *Statement) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-40s %8s %12s %12s %12s\n",
		"offering", "sales", "gross", "fees", "payout"); err != nil {
		return err
	}
	for _, l := range s.Lines {
		if _, err := fmt.Fprintf(w, "%-40s %8d %12.2f %12.2f %12.2f\n",
			l.Offering, l.Sales, l.Gross, l.Fees, l.Payout); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-40s %8d %12.2f %12.2f %12.2f\n",
		"TOTAL", s.Sales, s.Gross, s.BrokerFees, s.Payouts)
	return err
}
