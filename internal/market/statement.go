package market

import (
	"fmt"
	"io"
	"sort"
)

// Statement is the broker's periodic accounting report: per-offering sales,
// gross revenue, commission and the payout owed to the seller.
type Statement struct {
	Lines      []StatementLine `json:"lines"`
	Sales      int             `json:"sales"`
	Gross      float64         `json:"gross"`
	BrokerFees float64         `json:"broker_fees"`
	Payouts    float64         `json:"payouts"`
}

// StatementLine is one offering's row.
type StatementLine struct {
	Offering string  `json:"offering"`
	Sales    int     `json:"sales"`
	Gross    float64 `json:"gross"`
	Fees     float64 `json:"fees"`
	Payout   float64 `json:"payout"`
}

// Statement builds the accounting report from the shards' running books —
// O(offerings), never a ledger rescan. An offering hashes onto exactly one
// shard, so each line is a copy of that shard's books entry; the totals sum
// the shard running totals in index order, the same floating-point
// association recordLocked used to build them. rescanStatement (test-only)
// rebuilds the identical report from the raw ledger so the two stay
// bit-for-bit cross-checkable.
func (b *Broker) Statement() *Statement {
	st := &Statement{}
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		for name, bk := range sh.books {
			st.Lines = append(st.Lines, StatementLine{
				Offering: name,
				Sales:    bk.sales,
				Gross:    bk.gross,
				Fees:     bk.fees,
				Payout:   bk.payout,
			})
		}
		st.Sales += len(sh.sales)
		st.Gross += sh.revenue
		st.BrokerFees += sh.fees
		st.Payouts += sh.payout
		sh.mu.RUnlock()
	}
	sort.Slice(st.Lines, func(i, j int) bool { return st.Lines[i].Offering < st.Lines[j].Offering })
	return st
}

// rescanStatement rebuilds the statement from the raw ledger, one shard at
// a time. It exists only as the audit cross-check for the running books:
// per shard it replays the sales in ledger order — the order recordLocked
// folded them into the books — and combines shard subtotals in index
// order, so a correct broker produces a bit-identical Statement both ways.
// Production reads go through Statement; tests assert the equivalence.
func (b *Broker) rescanStatement() *Statement {
	st := &Statement{}
	for i := range b.shards {
		sh := &b.shards[i]
		lines := map[string]*StatementLine{}
		var sales int
		var gross, fees, payout float64
		sh.mu.RLock()
		for _, p := range sh.sales {
			line, ok := lines[p.Offering]
			if !ok {
				line = &StatementLine{Offering: p.Offering}
				lines[p.Offering] = line
			}
			line.Sales++
			line.Gross += p.Price
			line.Fees += p.BrokerFee
			line.Payout += p.SellerProceeds
			sales++
			gross += p.Price
			fees += p.BrokerFee
			payout += p.SellerProceeds
		}
		sh.mu.RUnlock()
		for _, line := range lines {
			st.Lines = append(st.Lines, *line)
		}
		st.Sales += sales
		st.Gross += gross
		st.BrokerFees += fees
		st.Payouts += payout
	}
	sort.Slice(st.Lines, func(i, j int) bool { return st.Lines[i].Offering < st.Lines[j].Offering })
	return st
}

// Write renders the statement as a fixed-width report.
func (s *Statement) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-40s %8s %12s %12s %12s\n",
		"offering", "sales", "gross", "fees", "payout"); err != nil {
		return err
	}
	for _, l := range s.Lines {
		if _, err := fmt.Fprintf(w, "%-40s %8d %12.2f %12.2f %12.2f\n",
			l.Offering, l.Sales, l.Gross, l.Fees, l.Payout); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-40s %8d %12.2f %12.2f %12.2f\n",
		"TOTAL", s.Sales, s.Gross, s.BrokerFees, s.Payouts)
	return err
}
