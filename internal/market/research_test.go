package market

import (
	"math"
	"testing"

	"nimbus/internal/ml"
	"nimbus/internal/pricing"
)

func TestResearchFromSamplesValidation(t *testing.T) {
	if _, err := ResearchFromSamples(nil); err == nil {
		t.Fatal("empty samples accepted")
	}
	if _, err := ResearchFromSamples([]ResearchSample{{Error: 1, Value: 1, Demand: 1}}); err == nil {
		t.Fatal("single sample accepted")
	}
	dup := []ResearchSample{
		{Error: 1, Value: 5, Demand: 1},
		{Error: 1, Value: 7, Demand: 1},
	}
	if _, err := ResearchFromSamples(dup); err == nil {
		t.Fatal("only-duplicate errors accepted")
	}
	neg := []ResearchSample{
		{Error: 0, Value: -1, Demand: 1},
		{Error: 1, Value: 1, Demand: 1},
	}
	if _, err := ResearchFromSamples(neg); err == nil {
		t.Fatal("negative value accepted")
	}
}

func TestResearchFromSamplesCleanData(t *testing.T) {
	r, err := ResearchFromSamples([]ResearchSample{
		{Error: 0.1, Value: 90, Demand: 1},
		{Error: 0.5, Value: 50, Demand: 2},
		{Error: 1.0, Value: 10, Demand: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exact at sample points.
	if r.Value(0.1) != 90 || r.Value(1.0) != 10 || r.Demand(0.5) != 2 {
		t.Fatalf("values at samples: %v %v %v", r.Value(0.1), r.Value(1.0), r.Demand(0.5))
	}
	// Interpolated between.
	if got := r.Value(0.3); math.Abs(got-70) > 1e-12 {
		t.Fatalf("Value(0.3) = %v, want 70", got)
	}
	// Clamped outside.
	if r.Value(0.01) != 90 || r.Value(5) != 10 {
		t.Fatal("clamping outside range broken")
	}
}

func TestResearchFromSamplesRepairsNoise(t *testing.T) {
	// Survey noise makes value rise with error at one point; the fit must
	// be non-increasing everywhere.
	r, err := ResearchFromSamples([]ResearchSample{
		{Error: 0.1, Value: 80, Demand: 1},
		{Error: 0.2, Value: 85, Demand: 1}, // noise: higher error, higher value
		{Error: 0.5, Value: 40, Demand: 1},
		{Error: 1.0, Value: 45, Demand: 1}, // noise again
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for e := 0.05; e <= 1.2; e += 0.01 {
		v := r.Value(e)
		if v > prev+1e-9 {
			t.Fatalf("fitted value increases at error %v", e)
		}
		prev = v
	}
}

func TestResearchFromSamplesAveragesDuplicates(t *testing.T) {
	r, err := ResearchFromSamples([]ResearchSample{
		{Error: 0.1, Value: 80, Demand: 2},
		{Error: 0.1, Value: 100, Demand: 4},
		{Error: 1.0, Value: 10, Demand: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Value(0.1); got != 90 {
		t.Fatalf("duplicate value average %v, want 90", got)
	}
	if got := r.Demand(0.1); got != 3 {
		t.Fatalf("duplicate demand average %v, want 3", got)
	}
}

func TestResearchFromSamplesDrivesOffering(t *testing.T) {
	// End to end: survey samples → research → listing.
	research, err := ResearchFromSamples([]ResearchSample{
		{Error: 0.5, Value: 90, Demand: 1},
		{Error: 2, Value: 60, Demand: 2},
		{Error: 5, Value: 20, Demand: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	seller := regSeller(t)
	seller.Research = research
	b := NewBroker(91)
	o, err := b.List(OfferingConfig{
		Seller:  seller,
		Model:   ml.LinearRegression{Ridge: 1e-3},
		Grid:    pricing.DefaultGrid(20),
		Samples: 60,
		Seed:    92,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.VerifySLA(); err != nil {
		t.Fatal(err)
	}
	if o.ExpectedRevenue <= 0 {
		t.Fatal("no expected revenue from survey-driven research")
	}
}
