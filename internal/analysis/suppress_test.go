package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseForIgnores compiles a snippet far enough to scan its comments.
func parseForIgnores(t *testing.T, src string) *ignoreSet {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "snippet.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return collectIgnores(fset, []*ast.File{f})
}

func TestIgnoreDirectiveForms(t *testing.T) {
	s := parseForIgnores(t, `package p

//lint:ignore rule-a covered above
var a = 1

var b = 2 //lint:ignore rule-b trailing

//lint:ignore rule-c,rule-d two rules at once
var cd = 3
`)
	if len(s.malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", s.malformed)
	}
	cases := []struct {
		rule string
		line int
		want bool
	}{
		{"rule-a", 4, true},   // line-above form
		{"rule-b", 6, true},   // trailing form
		{"rule-c", 9, true},   // first of a comma list
		{"rule-d", 9, true},   // second of a comma list
		{"rule-a", 6, false},  // wrong line
		{"rule-x", 4, false},  // unnamed rule
		{"rule-b", 10, false}, // far away
	}
	for _, c := range cases {
		d := Diagnostic{Rule: c.rule, File: "snippet.go", Line: c.line}
		if got := s.suppresses(d); got != c.want {
			t.Errorf("suppresses(%s at line %d) = %v, want %v", c.rule, c.line, got, c.want)
		}
	}
}

func TestIgnoreDirectiveMalformed(t *testing.T) {
	s := parseForIgnores(t, `package p

//lint:ignore no-wallclock
var a = 1

//lint:ignore
var b = 2

//lint:ignored is a different word entirely
var c = 3
`)
	if len(s.malformed) != 2 {
		t.Fatalf("got %d malformed directives (%v), want 2", len(s.malformed), s.malformed)
	}
	for _, d := range s.malformed {
		if d.Rule != "lint-ignore" {
			t.Errorf("malformed directive reported under rule %q, want lint-ignore", d.Rule)
		}
		if !strings.Contains(d.Message, "//lint:ignore") {
			t.Errorf("message %q does not explain the grammar", d.Message)
		}
	}
	if s.malformed[0].Line != 3 || s.malformed[1].Line != 6 {
		t.Errorf("malformed directive lines = %d, %d; want 3, 6", s.malformed[0].Line, s.malformed[1].Line)
	}
	// A reasonless directive suppresses nothing.
	if s.suppresses(Diagnostic{Rule: "no-wallclock", File: "snippet.go", Line: 4}) {
		t.Error("malformed directive suppressed a diagnostic")
	}
}
