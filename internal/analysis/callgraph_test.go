package analysis

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// graphFor builds the call graph over the callgraph golden package.
func graphFor(t *testing.T) *CallGraph {
	t.Helper()
	pkg := loadGolden(t, "callgraph")
	return BuildCallGraph([]*Package{pkg})
}

// short strips the package-path prefix from a node name for readable
// assertions.
func short(name string) string {
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	return strings.TrimPrefix(name, "callgraph.")
}

// edgeStrings renders every edge as "caller -kind-> callee".
func edgeStrings(g *CallGraph) map[string]bool {
	out := make(map[string]bool)
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			out[fmt.Sprintf("%s -%s-> %s", short(e.Caller.Name), e.Kind, short(e.Callee.Name))] = true
		}
	}
	return out
}

func TestCallGraphEdges(t *testing.T) {
	g := graphFor(t)
	edges := edgeStrings(g)
	for _, want := range []string{
		// Interface dispatch fans out to every implementation.
		"Announce -dynamic-> (Dog).Speak",
		"Announce -dynamic-> (*Cat).Speak",
		// Method value: a ref edge, not a call.
		"MethodValue -ref-> (*Counter).Inc",
		// Deferred method call.
		"DeferredMethod -defer-> (*Counter).Inc",
		// go-stmt closure: a go edge to the literal, then a static call
		// from the literal's own node.
		"Spawn -go-> Spawn$1",
		"Spawn$1 -call-> helper",
		// Recursion, mutual and direct.
		"Even -call-> Odd",
		"Odd -call-> Even",
		"Self -call-> Self",
		"Chain -call-> Even",
	} {
		if !edges[want] {
			t.Errorf("missing edge %q\nhave: %v", want, keys(edges))
		}
	}
	if edges["Spawn -call-> helper"] {
		t.Error("helper call must belong to the goroutine literal, not Spawn")
	}
}

// TestDynamicDispatchNarrowing pins the embedded-interface fix: a method
// declared on an embedded interface must be dispatched against the call
// site's static interface, not the method's defining interface.
func TestDynamicDispatchNarrowing(t *testing.T) {
	edges := edgeStrings(graphFor(t))
	for _, want := range []string{
		// Narrow dispatch fans out to both implementations.
		"ShutNarrow -dynamic-> (ShutOnly).Shut",
		"ShutNarrow -dynamic-> (FullWide).Shut",
		// Wide dispatch reaches the full implementer.
		"ShutWide -dynamic-> (FullWide).Shut",
	} {
		if !edges[want] {
			t.Errorf("missing edge %q", want)
		}
	}
	// The regression: Shut is declared on the embedded Shutter, so
	// resolving against the defining interface would admit ShutOnly here.
	if edges["ShutWide -dynamic-> (ShutOnly).Shut"] {
		t.Error("ShutWide dispatched to ShutOnly: dispatch used the defining interface, not the call site's")
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestCallGraphSCCs(t *testing.T) {
	g := graphFor(t)
	sccIndex := make(map[string]int)
	for i, scc := range g.SCCs() {
		for _, n := range scc {
			sccIndex[short(n.Name)] = i
		}
	}
	if sccIndex["Even"] != sccIndex["Odd"] {
		t.Errorf("Even and Odd should share an SCC: %d vs %d", sccIndex["Even"], sccIndex["Odd"])
	}
	if sccIndex["Even"] == sccIndex["Chain"] {
		t.Error("Chain must not join the Even/Odd SCC")
	}
	// Bottom-up: callees' components come before callers'.
	if sccIndex["Even"] > sccIndex["Chain"] {
		t.Errorf("callee SCC (%d) must precede caller SCC (%d)", sccIndex["Even"], sccIndex["Chain"])
	}
	if sccIndex["helper"] > sccIndex["Spawn$1"] || sccIndex["Spawn$1"] > sccIndex["Spawn"] {
		t.Errorf("expected helper ≤ Spawn$1 ≤ Spawn, got %d, %d, %d",
			sccIndex["helper"], sccIndex["Spawn$1"], sccIndex["Spawn"])
	}
}

// TestSummaryConvergence computes a transitive-reachability summary over
// the graph: each function's summary is the sorted set of functions it
// can reach. The recursive SCCs force the fixpoint loop to iterate.
func TestSummaryConvergence(t *testing.T) {
	g := graphFor(t)
	type reach map[string]bool
	summaries := ComputeSummaries(g,
		func(n *FuncNode, get func(*FuncNode) reach) reach {
			out := make(reach)
			for _, e := range n.Out {
				out[short(e.Callee.Name)] = true
				for name := range get(e.Callee) {
					out[name] = true
				}
			}
			return out
		},
		func(a, b reach) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		})
	byName := make(map[string]reach)
	for n, s := range summaries {
		byName[short(n.Name)] = s
	}
	// Mutual recursion: each of Even/Odd reaches both.
	for _, fn := range []string{"Even", "Odd"} {
		for _, want := range []string{"Even", "Odd"} {
			if !byName[fn][want] {
				t.Errorf("%s should reach %s, got %v", fn, want, keys(byName[fn]))
			}
		}
	}
	// Transitivity through an SCC boundary.
	if !byName["Chain"]["Odd"] {
		t.Errorf("Chain should transitively reach Odd, got %v", keys(byName["Chain"]))
	}
	// Through go-closures.
	if !byName["Spawn"]["helper"] {
		t.Errorf("Spawn should reach helper through its goroutine literal, got %v", keys(byName["Spawn"]))
	}
	// Interface fan-out.
	if !byName["Announce"]["(Dog).Speak"] || !byName["Announce"]["(*Cat).Speak"] {
		t.Errorf("Announce should reach both Speak implementations, got %v", keys(byName["Announce"]))
	}
}
