package analysis

// resource-lifecycle generalizes unlock-path from mutexes to Close-shaped
// resources: a journal, a file, a connection. A constructor annotated
//
//	//lint:owns <why>
//
// hands ownership of its closeable results to the caller, who must, on
// every path out of the function — returns, panics, the fall-off-the-end
// path — either Close the resource (a deferred Close counts and is the
// only thing that survives a panic), return it (ownership moves to the
// caller's caller), or transfer it: store it into a field, hand it to a
// callee that keeps it, or launch a goroutine that closes it.
//
// "A callee that keeps it" is decided interprocedurally: every function
// gets a bottom-up summary over the group call graph saying which of its
// parameters it takes ownership of (stores, returns, closes, or forwards
// to another taker) and which of its results carry ownership out (it
// returns something it acquired, or it is annotated //lint:owns itself —
// so a wrapper around an owning constructor is owning without any
// annotation). //lint:transfers <why> on a function declares all its
// parameters taken, for handoffs the summary cannot see.
//
// Calls the analysis cannot resolve — builtins, the standard library,
// interface dispatch, function-typed variables — are assumed to take the
// argument: the rule never guesses toward a finding. The one deliberate
// sharpness is the error-return excuse: `return ..., err` is excused only
// while err is still the error produced by the acquisition itself; once
// err is reassigned (or a different error variable is returned) the
// excuse lapses, which is exactly the "second error return leaks the
// journal" bug class this rule exists for.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ResourceLifecycle is the group rule.
type ResourceLifecycle struct{}

func (ResourceLifecycle) Name() string { return "resource-lifecycle" }

func (ResourceLifecycle) Doc() string {
	return "resources from a //lint:owns constructor must be closed, returned " +
		"or transferred (//lint:transfers, a storing callee, a closing defer " +
		"or goroutine) on every return and panic path"
}

// Inspect is a no-op: the rule needs the group call graph.
func (ResourceLifecycle) Inspect(*Pass) {}

const (
	ownsPrefix      = "//lint:owns"
	transfersPrefix = "//lint:transfers"
)

// resSummary is one function's ownership summary. Bits index the
// receiver-then-parameters vector for takes and the result tuple for
// owns.
type resSummary struct {
	owns  uint64
	takes uint64
}

func (r ResourceLifecycle) InspectGroup(gp *GroupPass) {
	an := &resAnalysis{
		gp:        gp,
		ownsDecl:  make(map[*FuncNode]bool),
		transfers: make(map[*FuncNode]bool),
	}
	an.collectDirectives()
	an.summaries = ComputeSummaries(gp.Graph,
		func(n *FuncNode, get func(*FuncNode) resSummary) resSummary {
			return an.summarize(n, get)
		},
		func(a, b resSummary) bool { return a == b })
	for _, n := range gp.Graph.Nodes {
		an.check(n)
	}
}

type resAnalysis struct {
	gp        *GroupPass
	ownsDecl  map[*FuncNode]bool
	transfers map[*FuncNode]bool
	summaries map[*FuncNode]resSummary
}

// collectDirectives parses //lint:owns and //lint:transfers on function
// docs, reporting directives with no justification or no closeable
// result to carry.
func (an *resAnalysis) collectDirectives() {
	for _, n := range an.gp.Graph.Nodes {
		if n.Decl == nil || n.Decl.Doc == nil {
			continue
		}
		for _, c := range n.Decl.Doc.List {
			if reason, ok := directiveRest(c.Text, ownsPrefix); ok {
				switch {
				case reason == "":
					an.gp.Reportf(n.Decl.Name.Pos(), "%s needs a reason: %s <why the caller must close the result>", ownsPrefix, ownsPrefix)
				case an.ownedResultBits(n) == 0:
					an.gp.Reportf(n.Decl.Name.Pos(), "%s on a function with no closeable result; give it a result with a Close method or drop the directive", ownsPrefix)
				default:
					an.ownsDecl[n] = true
				}
			}
			if reason, ok := directiveRest(c.Text, transfersPrefix); ok {
				if reason == "" {
					an.gp.Reportf(n.Decl.Name.Pos(), "%s needs a reason: %s <who closes the parameters now>", transfersPrefix, transfersPrefix)
				} else {
					an.transfers[n] = true
				}
			}
		}
	}
}

// ownedResultBits is the bit set of n's closer-shaped results.
func (an *resAnalysis) ownedResultBits(n *FuncNode) uint64 {
	sig := nodeSignature(n)
	if sig == nil {
		return 0
	}
	var bits uint64
	for i := 0; i < sig.Results().Len() && i < 64; i++ {
		if hasCloseMethod(sig.Results().At(i).Type()) {
			bits |= 1 << i
		}
	}
	return bits
}

func nodeSignature(n *FuncNode) *types.Signature {
	if n.Obj != nil {
		sig, _ := n.Obj.Type().(*types.Signature)
		return sig
	}
	if n.Lit != nil {
		sig, _ := n.Pkg.Info.TypeOf(n.Lit).(*types.Signature)
		return sig
	}
	return nil
}

// hasCloseMethod reports whether t (or *t) has a Close method —
// io.Closer-shaped, the gate for ownership tracking.
func hasCloseMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.NewMethodSet(t).Lookup(nil, "Close") != nil {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			return types.NewMethodSet(types.NewPointer(t)).Lookup(nil, "Close") != nil
		}
	}
	return false
}

// calleeOwns is the effective owned-result bits of a call's resolved
// static callee, or 0 when unresolvable.
func (an *resAnalysis) calleeOwns(info *types.Info, call *ast.CallExpr, get func(*FuncNode) resSummary) (uint64, *FuncNode) {
	callee := an.gp.Graph.StaticCallee(info, call)
	if callee == nil {
		return 0, nil
	}
	owns := get(callee).owns
	if an.ownsDecl[callee] {
		owns |= an.ownedResultBits(callee)
	}
	return owns, callee
}

// acquisition is one statement that binds owned results to locals.
type acquisition struct {
	objs   map[types.Object]int // local → result index
	blank  []int                // owned result indexes assigned to _
	errObj types.Object
	callee string
	pos    token.Pos
}

// resFuncState is the per-function machinery shared by the summary pass
// and the reporting pass.
type resFuncState struct {
	an     *resAnalysis
	node   *FuncNode
	info   *types.Info
	get    func(*FuncNode) resSummary
	params map[types.Object]int
	// acq indexes acquisition statements by their AST node, for the
	// transfer function.
	acq map[ast.Node]*acquisition
	// discards are bare calls whose owned results vanish.
	discards []*acquisition
	// closureCloses maps a local closure variable to the outer objects
	// its body closes (the closeOnErr pattern).
	closureCloses map[types.Object]map[types.Object]bool
	// resultObjs are named result parameters, released by a bare return.
	resultObjs map[types.Object]bool
	// nilGuard maps an `if x != nil` condition node to the objects the
	// guarded body releases: after that statement x is released on both
	// arms — closed in the body, or nil with nothing to close — so the
	// transfer function kills the pending at the condition itself.
	nilGuard map[ast.Node][]types.Object
}

func (an *resAnalysis) newFuncState(n *FuncNode, get func(*FuncNode) resSummary) *resFuncState {
	st := &resFuncState{
		an:            an,
		node:          n,
		info:          n.Pkg.Info,
		get:           get,
		params:        paramIndexes(n),
		acq:           make(map[ast.Node]*acquisition),
		closureCloses: make(map[types.Object]map[types.Object]bool),
		resultObjs:    make(map[types.Object]bool),
		nilGuard:      make(map[ast.Node][]types.Object),
	}
	st.collect(n.Body())
	return st
}

// collect walks the body once for acquisitions, discards, closure-close
// bindings and named results.
func (st *resFuncState) collect(body *ast.BlockStmt) {
	var results *ast.FieldList
	if st.node.Decl != nil {
		results = st.node.Decl.Type.Results
	} else {
		results = st.node.Lit.Type.Results
	}
	if results != nil {
		for _, f := range results.List {
			for _, name := range f.Names {
				if obj := st.info.Defs[name]; obj != nil {
					st.resultObjs[obj] = true
				}
			}
		}
	}
	var ifs []*ast.IfStmt
	ast.Inspect(body, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				if lit, ok := ast.Unparen(s.Rhs[0]).(*ast.FuncLit); ok && len(s.Lhs) == 1 {
					st.bindClosure(s.Lhs[0], lit)
					return true
				}
				if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
					st.recordAcquisition(s, s.Lhs, call)
				}
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				st.recordAcquisition(s, nil, call)
			}
		case *ast.IfStmt:
			ifs = append(ifs, s)
		}
		return true
	})
	// Nil guards are classified after the walk so closure-close bindings
	// appearing anywhere in the body are already known.
	for _, s := range ifs {
		st.recordNilGuard(s)
	}
}

// recordNilGuard recognizes `if x != nil { ...release x... }` (no else)
// and registers the condition as a release point for x.
func (st *resFuncState) recordNilGuard(s *ast.IfStmt) {
	if s.Else != nil {
		return
	}
	be, isBinary := s.Cond.(*ast.BinaryExpr)
	if !isBinary || be.Op != token.NEQ {
		return
	}
	var target ast.Expr
	switch {
	case st.isNilExpr(be.Y):
		target = be.X
	case st.isNilExpr(be.X):
		target = be.Y
	default:
		return
	}
	id, isIdent := ast.Unparen(target).(*ast.Ident)
	if !isIdent {
		return
	}
	obj := st.objOf(id)
	if obj == nil {
		return
	}
	released := false
	ast.Inspect(s.Body, func(nd ast.Node) bool {
		if released {
			return false
		}
		switch x := nd.(type) {
		case *ast.CallExpr:
			if _, ok := st.callReleases(x, func(o types.Object) bool { return o == obj }, st.get)[obj]; ok {
				released = true
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if rid, isID := unwrapAddr(res); isID && st.objOf(rid) == obj {
					released = true
				}
			}
		}
		return !released
	})
	if released {
		st.nilGuard[s.Cond] = append(st.nilGuard[s.Cond], obj)
	}
}

func (st *resFuncState) isNilExpr(e ast.Expr) bool {
	tv, ok := st.info.Types[e]
	return ok && tv.IsNil()
}

// bindClosure records which outer objects a local closure closes when
// called, so `return closeOnErr(err)` releases them.
func (st *resFuncState) bindClosure(lhs ast.Expr, lit *ast.FuncLit) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	obj := st.info.Defs[id]
	if obj == nil {
		obj = st.info.Uses[id]
	}
	if obj == nil {
		return
	}
	closes := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		if target, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if tobj := st.info.Uses[target]; tobj != nil {
				closes[tobj] = true
			}
		}
		return true
	})
	if len(closes) > 0 {
		st.closureCloses[obj] = closes
	}
}

// recordAcquisition classifies one call statement against the owning
// summaries. lhs is nil for a bare expression call.
func (st *resFuncState) recordAcquisition(stmt ast.Node, lhs []ast.Expr, call *ast.CallExpr) {
	owns, callee := st.an.calleeOwns(st.info, call, st.get)
	if owns == 0 {
		return
	}
	a := &acquisition{
		objs:   make(map[types.Object]int),
		callee: shortFuncName(callee.Name),
		pos:    call.Pos(),
	}
	for i := 0; i < len(lhs) && i < 64; i++ {
		id, ok := ast.Unparen(lhs[i]).(*ast.Ident)
		if !ok {
			continue // stored straight into a field: transferred already
		}
		obj := st.info.Defs[id]
		if obj == nil {
			obj = st.info.Uses[id]
		}
		if owns&(1<<i) != 0 {
			if id.Name == "_" {
				a.blank = append(a.blank, i)
				continue
			}
			if obj == nil || isPackageLevel(obj) {
				continue // a global keeps the resource alive; out of scope
			}
			a.objs[obj] = i
		} else if obj != nil && types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
			a.errObj = obj
		}
	}
	if lhs == nil {
		nres := 0
		if sig := nodeSignature(callee); sig != nil {
			nres = sig.Results().Len()
		}
		for i := 0; i < nres && i < 64; i++ {
			if owns&(1<<i) != 0 {
				a.blank = append(a.blank, i)
			}
		}
	}
	if len(a.objs) > 0 || len(a.blank) > 0 {
		st.acq[stmt] = a
		if len(a.blank) > 0 {
			st.discards = append(st.discards, a)
		}
	}
}

func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// --- summary computation -------------------------------------------------

// summarize computes one function's {owns, takes} summary.
func (an *resAnalysis) summarize(n *FuncNode, get func(*FuncNode) resSummary) resSummary {
	body := n.Body()
	if body == nil {
		return resSummary{}
	}
	var sum resSummary
	if an.ownsDecl[n] {
		sum.owns |= an.ownedResultBits(n)
	}
	st := an.newFuncState(n, get)
	owned := make(map[types.Object]bool)
	for _, a := range st.acq {
		for obj := range a.objs {
			owned[obj] = true
		}
	}
	if an.transfers[n] {
		for _, idx := range st.params {
			if idx < 64 {
				sum.takes |= 1 << idx
			}
		}
	}
	nresults := 0
	if sig := nodeSignature(n); sig != nil {
		nresults = sig.Results().Len()
	}
	ast.Inspect(body, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if len(s.Results) == 1 && nresults > 1 {
				if call, ok := ast.Unparen(s.Results[0]).(*ast.CallExpr); ok {
					if owns, _ := an.calleeOwns(st.info, call, get); owns != 0 {
						sum.owns |= owns
					}
				}
				return true
			}
			for i, res := range s.Results {
				if i >= 64 {
					break
				}
				switch e := ast.Unparen(res).(type) {
				case *ast.Ident:
					if obj := st.objOf(e); obj != nil {
						if owned[obj] {
							sum.owns |= 1 << i
						}
						if idx, ok := st.params[obj]; ok && idx < 64 {
							sum.takes |= 1 << idx
						}
					}
				case *ast.CallExpr:
					if owns, _ := an.calleeOwns(st.info, e, get); owns&1 != 0 {
						sum.owns |= 1 << i
					}
				}
			}
		case *ast.AssignStmt:
			// A parameter stored anywhere (field, index, alias) is taken.
			for _, rhs := range s.Rhs {
				st.markParamTaken(rhs, &sum)
			}
		case *ast.CompositeLit:
			for _, elt := range s.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				st.markParamTaken(elt, &sum)
			}
		case *ast.CallExpr:
			st.paramTakenByCall(s, &sum, get)
		case *ast.DeferStmt:
			st.paramTakenByCall(s.Call, &sum, get)
		case *ast.GoStmt:
			st.paramTakenByCall(s.Call, &sum, get)
		}
		return true
	})
	return sum
}

func (st *resFuncState) objOf(id *ast.Ident) types.Object {
	if obj := st.info.Uses[id]; obj != nil {
		return obj
	}
	return st.info.Defs[id]
}

// markParamTaken sets the takes bit when e is directly a parameter (or
// its address): the value escapes the frame.
func (st *resFuncState) markParamTaken(e ast.Expr, sum *resSummary) {
	if id, ok := unwrapAddr(e); ok {
		if obj := st.objOf(id); obj != nil {
			if idx, ok := st.params[obj]; ok && idx < 64 {
				sum.takes |= 1 << idx
			}
		}
	}
}

// paramTakenByCall propagates takes bits through call sites: a parameter
// closed here, or handed to a callee that takes it (or that the analysis
// cannot resolve), is taken.
func (st *resFuncState) paramTakenByCall(call *ast.CallExpr, sum *resSummary, get func(*FuncNode) resSummary) {
	for obj := range st.callReleases(call, func(o types.Object) bool {
		_, isParam := st.params[o]
		return isParam
	}, get) {
		if idx, ok := st.params[obj]; ok && idx < 64 {
			sum.takes |= 1 << idx
		}
	}
}

// unwrapAddr strips parens and a leading & down to an identifier.
func unwrapAddr(e ast.Expr) (*ast.Ident, bool) {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	return id, ok
}

// callReleases returns the tracked objects this one call releases —
// closed, or passed to a taker. interesting filters which objects are
// tracked; the map values are the released objects keyed by a stable
// token position for reporting.
func (st *resFuncState) callReleases(call *ast.CallExpr, interesting func(types.Object) bool, get func(*FuncNode) resSummary) map[types.Object]token.Pos {
	out := make(map[types.Object]token.Pos)
	callee := st.an.gp.Graph.StaticCallee(st.info, call)
	calleeTakes := func(bit int) bool {
		if callee == nil {
			return true // unresolvable: assume the callee keeps it
		}
		if st.an.transfers[callee] {
			return true
		}
		return bit < 64 && get(callee).takes&(1<<bit) != 0
	}
	// Receiver position.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if recv, ok := unwrapAddr(sel.X); ok {
			if obj := st.objOf(recv); obj != nil && interesting(obj) {
				if sel.Sel.Name == "Close" {
					out[obj] = call.Pos()
				} else if callee != nil && callee.Decl != nil && callee.Decl.Recv != nil && calleeTakes(0) {
					out[obj] = call.Pos()
				}
			}
		}
	}
	// Closure-variable call: fail(err) closes what its body closes.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := st.objOf(id); obj != nil {
			for closed := range st.closureCloses[obj] {
				if interesting(closed) {
					out[closed] = call.Pos()
				}
			}
		}
	}
	// Argument positions.
	argOffset := 0
	if callee != nil && callee.Decl != nil && callee.Decl.Recv != nil {
		argOffset = 1
	}
	for i, arg := range call.Args {
		id, ok := unwrapAddr(arg)
		if !ok {
			continue
		}
		obj := st.objOf(id)
		if obj == nil || !interesting(obj) {
			continue
		}
		if calleeTakes(i + argOffset) {
			out[obj] = arg.Pos()
		}
	}
	return out
}

// --- the per-function leak check ----------------------------------------

// resPending is one live obligation.
type resPending struct {
	pos      token.Pos
	from     string
	errObj   types.Object
	errLive  bool
	deferred bool
}

type resFact map[types.Object]resPending

// resFlow is the Flow implementation.
type resFlow struct {
	st *resFuncState
}

func (rf *resFlow) Entry() resFact { return resFact{} }

func (rf *resFlow) Transfer(f resFact, n ast.Node) resFact {
	st := rf.st
	out := make(resFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	pendingOnly := func(o types.Object) bool { _, ok := out[o]; return ok }
	if objs, guarded := st.nilGuard[n]; guarded {
		for _, obj := range objs {
			delete(out, obj)
		}
	}
	switch s := n.(type) {
	case *ast.DeferStmt:
		for obj := range deferCloses(st, s.Call) {
			if p, ok := out[obj]; ok {
				p.deferred = true
				out[obj] = p
			}
		}
		for obj := range st.callReleases(s.Call, pendingOnly, st.get) {
			p := out[obj]
			p.deferred = true
			out[obj] = p
		}
		return out
	case *ast.GoStmt:
		// Ownership moves to the goroutine: it either closes the value
		// in its body or received it as an argument.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			for obj := range closesIn(st, lit.Body) {
				delete(out, obj)
			}
		}
		for obj := range st.callReleases(s.Call, pendingOnly, st.get) {
			delete(out, obj)
		}
		return out
	}
	// Error-variable reassignment breaks the acquisition correlation.
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := st.objOf(id)
			if obj == nil {
				continue
			}
			for tracked, p := range out {
				if p.errObj == obj {
					p.errLive = false
					out[tracked] = p
				}
			}
		}
	}
	// Releases anywhere in the node: calls, aliases, stores, returns.
	ast.Inspect(n, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			for obj := range st.callReleases(x, pendingOnly, st.get) {
				delete(out, obj)
			}
		case *ast.AssignStmt:
			for _, rhs := range x.Rhs {
				if id, ok := unwrapAddr(rhs); ok {
					if obj := st.objOf(id); obj != nil {
						delete(out, obj)
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if id, ok := unwrapAddr(elt); ok {
					if obj := st.objOf(id); obj != nil {
						delete(out, obj)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if id, ok := unwrapAddr(res); ok {
					if obj := st.objOf(id); obj != nil {
						delete(out, obj)
					}
				}
			}
			if len(x.Results) == 0 {
				for obj := range st.resultObjs {
					delete(out, obj)
				}
			}
		}
		return true
	})
	// Finally the acquisition itself, if this node is one.
	if a, ok := st.acq[n]; ok {
		for obj := range a.objs {
			out[obj] = resPending{
				pos:     a.pos,
				from:    a.callee,
				errObj:  a.errObj,
				errLive: a.errObj != nil,
			}
		}
	}
	return out
}

func (rf *resFlow) Join(a, b resFact) resFact {
	out := make(resFact, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if prev, ok := out[k]; ok {
			if v.pos < prev.pos {
				prev.pos = v.pos
				prev.from = v.from
			}
			if prev.errObj != v.errObj {
				prev.errLive = false
			} else {
				prev.errLive = prev.errLive && v.errLive
			}
			prev.deferred = prev.deferred && v.deferred
			out[k] = prev
		} else {
			out[k] = v
		}
	}
	return out
}

func (rf *resFlow) Equal(a, b resFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		if vb, ok := b[k]; !ok || va != vb {
			return false
		}
	}
	return true
}

// deferCloses returns the objects a deferred call will close at exit:
// obj.Close(), a closure variable that closes them, or a deferred
// literal whose body closes them.
func deferCloses(st *resFuncState, call *ast.CallExpr) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
		if id, ok := unwrapAddr(sel.X); ok {
			if obj := st.objOf(id); obj != nil {
				out[obj] = true
			}
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := st.objOf(id); obj != nil {
			for closed := range st.closureCloses[obj] {
				out[closed] = true
			}
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		for obj := range closesIn(st, lit.Body) {
			out[obj] = true
		}
	}
	return out
}

// closesIn finds objects closed anywhere under root.
func closesIn(st *resFuncState, root ast.Node) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(root, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		if id, ok := unwrapAddr(sel.X); ok {
			if obj := st.objOf(id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// check runs the leak analysis over one function and reports findings.
func (an *resAnalysis) check(n *FuncNode) {
	body := n.Body()
	if body == nil {
		return
	}
	get := func(m *FuncNode) resSummary { return an.summaries[m] }
	st := an.newFuncState(n, get)
	for _, a := range st.discards {
		an.gp.Reportf(a.pos, "the result of %s is owned by the caller (//lint:owns); discarding it leaks the resource — assign it and Close it", a.callee)
	}
	if len(st.acq) == 0 {
		return
	}
	cfg := BuildCFG(body, CFGOptions{IsExit: func(c *ast.CallExpr) bool { return isPanicCall(st.info, c) }})
	res := Forward(cfg, &resFlow{st: st})
	for _, blk := range cfg.Blocks {
		if !hasSucc(blk, cfg.Exit) {
			continue
		}
		fact, reached := res.After(blk)
		if !reached {
			continue
		}
		pos, kind := exitPoint(st.info, blk, body)
		var leaked []types.Object
		for obj, p := range fact {
			if p.deferred {
				continue
			}
			if p.errLive && exitMentions(blk, p.errObj, st) {
				continue // the acquisition's own error path: the resource is nil
			}
			leaked = append(leaked, obj)
		}
		sort.Slice(leaked, func(i, j int) bool {
			if leaked[i].Name() != leaked[j].Name() {
				return leaked[i].Name() < leaked[j].Name()
			}
			return leaked[i].Pos() < leaked[j].Pos()
		})
		for _, obj := range leaked {
			p := fact[obj]
			an.gp.Reportf(pos, "%s acquired at line %d (owned result of %s) is not closed, returned or transferred on this %s; close it on every path or defer the Close",
				obj.Name(), an.gp.Fset.Position(p.pos).Line, p.from, kind)
		}
	}
}

// exitMentions reports whether the block's terminating return or panic
// references obj — the error produced by the acquisition — anywhere in
// its expressions.
func exitMentions(blk *Block, obj types.Object, st *resFuncState) bool {
	if obj == nil || len(blk.Nodes) == 0 {
		return false
	}
	last := blk.Nodes[len(blk.Nodes)-1]
	switch last.(type) {
	case *ast.ReturnStmt, *ast.ExprStmt:
	default:
		return false
	}
	found := false
	ast.Inspect(last, func(nd ast.Node) bool {
		if id, ok := nd.(*ast.Ident); ok && st.objOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
