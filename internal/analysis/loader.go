package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for rule inspection.
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Dir is the absolute directory the files came from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects any errors the type checker reported. A package
	// with type errors is still analyzable — rules skip expressions whose
	// types are unknown — but callers may want to surface them.
	TypeErrors []error
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		gomod := filepath.Join(d, "go.mod")
		if _, statErr := os.Stat(gomod); statErr == nil {
			p, pErr := readModulePath(gomod)
			if pErr != nil {
				return "", "", pErr
			}
			return d, p, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	f, err := os.Open(gomod)
	if err != nil {
		return "", err
	}
	//lint:ignore no-dropped-error go.mod is only read; a close failure cannot lose data
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Loader parses and type-checks packages inside one module using only the
// standard library. Imports — both module-internal and standard-library —
// are type-checked from source with function bodies skipped, so the loader
// needs no export data, no GOPATH layout and no external tooling. Results
// are cached per Loader, so loading a whole tree checks each import once.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset      *token.FileSet
	imports   map[string]*types.Package
	importing map[string]bool
}

// NewLoader returns a loader rooted at the given module.
func NewLoader(moduleRoot, modulePath string) *Loader {
	return &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: modulePath,
		fset:       token.NewFileSet(),
		imports:    make(map[string]*types.Package),
		importing:  make(map[string]bool),
	}
}

// Load resolves go-tool-style patterns — a directory, or a directory
// followed by /... for the subtree — to package directories inside the
// module and fully type-checks each one. Directories named "testdata",
// hidden directories and "_"-prefixed directories are skipped during
// recursive expansion, matching the go tool. Walked directories whose files
// are all excluded by build constraints are skipped silently; an explicitly
// named directory with no buildable files is an error.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	seen := make(map[string]bool)
	var targets []loadTarget
	add := func(dir string, explicit bool) {
		if !seen[dir] {
			seen[dir] = true
			targets = append(targets, loadTarget{dir: dir, explicit: explicit})
		}
	}
	for _, pat := range patterns {
		recursive := false
		base := pat
		if pat == "..." {
			recursive, base = true, "."
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, base = true, rest
		}
		abs, err := filepath.Abs(base)
		if err != nil {
			return nil, err
		}
		if _, err := l.pkgPathFor(abs); err != nil {
			return nil, fmt.Errorf("analysis: pattern %q: %w", pat, err)
		}
		if !recursive {
			add(abs, true)
			continue
		}
		err = filepath.WalkDir(abs, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			name := d.Name()
			if d.IsDir() {
				if p != abs && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
				add(filepath.Dir(p), false)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].dir < targets[j].dir })
	var pkgs []*Package
	for _, t := range l.dependencyOrder(targets) {
		pkg, err := l.LoadDir(t.dir)
		if err != nil {
			if _, noGo := err.(*build.NoGoError); noGo && !t.explicit {
				continue
			}
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	// Callers see packages in directory order regardless of the
	// dependency-driven load order above.
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Dir < pkgs[j].Dir })
	return pkgs, nil
}

// dependencyOrder arranges load targets so that every target is loaded
// after the targets it imports. LoadDir registers each fully checked
// package as an importable dependency, so loading in dependency order
// makes a target's view of its in-group imports *the same
// types.Package* the group analyzed — cross-package types.Object
// identities then line up, which the interprocedural call graph and
// summaries depend on. Import cycles between targets (invalid Go, but
// possible in broken trees) degrade gracefully to the alphabetical
// order.
func (l *Loader) dependencyOrder(targets []loadTarget) []loadTarget {
	byPath := make(map[string]int, len(targets))
	imports := make([][]string, len(targets))
	for i, t := range targets {
		pkgPath, err := l.pkgPathFor(t.dir)
		if err != nil {
			continue
		}
		byPath[pkgPath] = i
		if bp, err := build.ImportDir(t.dir, 0); err == nil {
			imports[i] = bp.Imports
		}
	}
	ordered := make([]loadTarget, 0, len(targets))
	state := make([]int, len(targets)) // 0 unvisited, 1 visiting, 2 done
	var visit func(i int)
	visit = func(i int) {
		if state[i] != 0 {
			return // done, or a cycle — fall back to encounter order
		}
		state[i] = 1
		for _, imp := range imports[i] {
			if j, ok := byPath[imp]; ok {
				visit(j)
			}
		}
		state[i] = 2
		ordered = append(ordered, targets[i])
	}
	for i := range targets {
		visit(i)
	}
	return ordered
}

// loadTarget is one directory Load resolved from its patterns.
type loadTarget struct {
	dir      string
	explicit bool
}

// LoadDir parses and fully type-checks the single package in dir, which
// must live inside the loader's module.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkgPath, err := l.pkgPathFor(abs)
	if err != nil {
		return nil, err
	}
	bp, err := build.ImportDir(abs, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	//lint:ignore no-dropped-error the checker's first error is already captured, with all the others, by the Error handler above
	tpkg, _ := conf.Check(pkgPath, l.fset, files, info)
	if tpkg != nil {
		// Register the fully checked package as the importable version so
		// packages loaded after this one resolve their imports of it to the
		// same *types.Package — object identities unify across the group.
		l.imports[pkgPath] = tpkg
	}
	return &Package{
		Path:       pkgPath,
		Dir:        abs,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: typeErrs,
	}, nil
}

// pkgPathFor maps an absolute directory inside the module to its import
// path.
func (l *Loader) pkgPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("directory %s is outside module %s", dir, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return path.Join(l.ModulePath, filepath.ToSlash(rel)), nil
}

// Import type-checks the package with the given import path for use as a
// dependency: declarations only, function bodies skipped. Module-internal
// paths resolve relative to the module root; everything else resolves
// through go/build (GOROOT for the standard library, with a fallback into
// GOROOT's vendored golang.org/x packages). Import never fails hard on a
// resolvable package: partially checked dependencies are returned as-is and
// rules simply see less type information.
func (l *Loader) Import(importPath string) (*types.Package, error) {
	if importPath == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.imports[importPath]; ok {
		return pkg, nil
	}
	if l.importing[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %q", importPath)
	}
	l.importing[importPath] = true
	defer delete(l.importing, importPath)

	bp, err := l.resolve(importPath)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(bp.Dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer:         l,
		IgnoreFuncBodies: true,
		FakeImportC:      true,
		Error:            func(error) {}, // tolerate partial dependencies
	}
	pkg, err := conf.Check(importPath, l.fset, files, nil)
	if pkg == nil {
		return nil, err
	}
	l.imports[importPath] = pkg
	return pkg, nil
}

// resolve locates the source directory for an import path.
func (l *Loader) resolve(importPath string) (*build.Package, error) {
	if importPath == l.ModulePath || strings.HasPrefix(importPath, l.ModulePath+"/") {
		rel := strings.TrimPrefix(importPath, l.ModulePath)
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
		return build.ImportDir(dir, 0)
	}
	bp, err := build.Import(importPath, l.ModuleRoot, 0)
	if err == nil {
		return bp, nil
	}
	// The standard library vendors golang.org/x packages under
	// GOROOT/src/vendor; go/build only resolves them for importers inside
	// GOROOT, so retry under the vendor prefix.
	if vbp, verr := build.Import(path.Join("vendor", importPath), "", 0); verr == nil {
		return vbp, nil
	}
	return nil, err
}
