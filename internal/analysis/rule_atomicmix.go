package analysis

// atomic-plain-mix flags variables that are touched both through the
// old-style sync/atomic package functions (atomic.AddInt64(&s.hits, 1))
// and by plain reads or writes. Mixing the two is the classic torn
// counter: the atomic side establishes a happens-before edge the plain
// side ignores, so the race detector fires and, on weaker memory
// models, readers see stale or half-updated values. The rule tracks
// every variable whose address feeds an atomic package function's first
// argument and reports any other access to the same variable that is
// not itself under atomic — including a plain read smuggled into a
// later argument of an atomic call, as in
// atomic.StoreInt64(&s.last, s.last+1).
//
// The typed wrappers (atomic.Int64, atomic.Pointer) make this mistake
// unrepresentable, which is why the message suggests them; code already
// on wrappers never trips the rule.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicPlainMix is the rule.
type AtomicPlainMix struct{}

func (AtomicPlainMix) Name() string { return "atomic-plain-mix" }

func (AtomicPlainMix) Doc() string {
	return "a variable updated through sync/atomic package functions must " +
		"never be read or written plainly; use atomic for every access or " +
		"migrate to the typed wrappers"
}

// atomicOpPrefixes are the sync/atomic package-function families.
var atomicOpPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"}

// atomicPkgFunc recognizes a call to an old-style sync/atomic package
// function (not a method on the typed wrappers).
func atomicPkgFunc(info *types.Info, call *ast.CallExpr) bool {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	if sig, isSig := fn.Type().(*types.Signature); !isSig || sig.Recv() != nil {
		return false
	}
	for _, prefix := range atomicOpPrefixes {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// atomicTarget resolves an atomic call's first argument (&x, &s.f) to
// the variable object it addresses and the identifier naming it.
func atomicTarget(info *types.Info, call *ast.CallExpr) (types.Object, *ast.Ident) {
	if len(call.Args) == 0 {
		return nil, nil
	}
	unary, isUnary := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !isUnary || unary.Op != token.AND {
		return nil, nil
	}
	var id *ast.Ident
	switch e := ast.Unparen(unary.X).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil, nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return nil, nil
	}
	return obj, id
}

func (r AtomicPlainMix) Inspect(p *Pass) {
	// Pass 1: every variable addressed by an atomic package function,
	// with its earliest atomic site and the identifier occurrences that
	// are sanctioned (the &x inside the atomic calls themselves).
	tracked := make(map[types.Object]token.Pos)
	sanctioned := make(map[token.Pos]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall || !atomicPkgFunc(p.Info, call) {
				return true
			}
			obj, id := atomicTarget(p.Info, call)
			if obj == nil {
				return true
			}
			sanctioned[id.Pos()] = true
			if prev, seen := tracked[obj]; !seen || call.Pos() < prev {
				tracked[obj] = call.Pos()
			}
			return true
		})
	}
	if len(tracked) == 0 {
		return
	}
	// Pass 2: any other use of a tracked variable is a plain access.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, isIdent := n.(*ast.Ident)
			if !isIdent || sanctioned[id.Pos()] {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil {
				return true
			}
			if site, isTracked := tracked[obj]; isTracked {
				p.Reportf(id.Pos(), "%s is accessed through sync/atomic at line %d but plainly here; every access must be atomic — or migrate the field to a typed wrapper like atomic.Int64",
					id.Name, p.Fset.Position(site).Line)
			}
			return true
		})
	}
}
