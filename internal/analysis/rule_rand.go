package analysis

import "strings"

// NoNakedRand reports imports of math/rand (v1 or v2) outside the allowed
// packages. Every sanctioned draw in Nimbus flows through internal/rng,
// whose sources are seeded centrally: a purchase's Gaussian perturbation
// (Lemma 3) and the Monte-Carlo error transformation (Figure 6) must both
// be replayable from a recorded seed, and a naked math/rand import — which
// defaults to a process-global, time-seeded source — silently breaks that.
// Test files are never analyzed, so tests may use math/rand freely.
type NoNakedRand struct {
	// Allow lists package paths (subtrees included) where the import is
	// legitimate; internal/rng itself is the canonical entry.
	Allow []string
}

func (NoNakedRand) Name() string { return "no-naked-rand" }

func (NoNakedRand) Doc() string {
	return "math/rand may only be imported by internal/rng; everything else draws " +
		"through a seeded rng.Source so noise and traffic are replayable"
}

func (r NoNakedRand) Inspect(p *Pass) {
	if matchScope(r.Allow, p.Path) {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "import of %s bypasses the centrally seeded internal/rng streams; take an *rng.Source (or a seed) instead", path)
			}
		}
	}
}
