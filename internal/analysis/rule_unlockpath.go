package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// UnlockPath reports locks acquired inside a function that are still
// held when some path leaves it — the classic early-return-while-locked
// bug, which in a serving loop doesn't crash anything: the next request
// just blocks forever on the poisoned mutex. Every CFG edge into the
// synthetic exit block is checked: explicit returns, explicit panic
// calls (a manual unlock does not run during a panic; only a defer
// does), and the fall-off-the-end path. A lock is credited as released
// when the must-lockset shows it gone or a defer has scheduled its
// unlock on that path. Locks held on entry by //lint:holds contract are
// the caller's to release and are never reported.
type UnlockPath struct{}

func (UnlockPath) Name() string { return "unlock-path" }

func (UnlockPath) Doc() string {
	return "every lock acquired in a function must be released on all " +
		"return and panic paths (a deferred unlock counts; only a defer " +
		"survives a panic)"
}

func (r UnlockPath) Inspect(p *Pass) {
	for _, fb := range funcBodies(p) {
		cfg := lockCFG(p, fb.body)
		res := Forward(cfg, &lockFlow{info: p.Info, entry: entryFact(fb)})
		for _, blk := range cfg.Blocks {
			if !hasSucc(blk, cfg.Exit) {
				continue
			}
			fact, reached := res.After(blk)
			if !reached {
				continue
			}
			var leaked []string
			for key, h := range fact.held {
				if h.pos != token.NoPos && !fact.deferred[key] {
					leaked = append(leaked, key)
				}
			}
			sort.Strings(leaked)
			pos, kind := exitPoint(p.Info, blk, fb.body)
			for _, key := range leaked {
				p.Reportf(pos, "%s acquired at line %d is still held at this %s; release it on every path or defer the unlock",
					key, p.Fset.Position(fact.held[key].pos).Line, kind)
			}
		}
	}
}

func hasSucc(b, target *Block) bool {
	for _, s := range b.Succs {
		if s == target {
			return true
		}
	}
	return false
}

// exitPoint names the way blk leaves the function and where to report it.
func exitPoint(info *types.Info, blk *Block, body *ast.BlockStmt) (token.Pos, string) {
	if len(blk.Nodes) > 0 {
		switch last := blk.Nodes[len(blk.Nodes)-1].(type) {
		case *ast.ReturnStmt:
			return last.Pos(), "return"
		case *ast.ExprStmt:
			if call, isCall := last.X.(*ast.CallExpr); isCall && isPanicCall(info, call) {
				return last.Pos(), "panic"
			}
		}
	}
	return body.Rbrace, "end of the function"
}
