package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq reports == and != between floating-point operands in the scoped
// packages. The pricing pipeline's curves are Monte-Carlo estimates
// projected onto monotone cones (Theorem 4) and its solvers walk quality
// grids; in that world two floats that are "the same point" rarely share a
// bit pattern, so exact equality is either a latent bug or an invariant
// (e.g. an exact grid hit) that must be expressed through an index or an
// ordered comparison instead. Comparisons folded at compile time (both
// operands constant) are exempt.
type FloatEq struct {
	// Scope lists the package paths (subtrees included) the rule applies
	// to; empty means every package.
	Scope []string
}

func (FloatEq) Name() string { return "no-float-eq" }

func (FloatEq) Doc() string {
	return "curve and grid code must not compare floats with == or !=; use an " +
		"epsilon, an ordered comparison against a known bound, or a grid index"
}

func (r FloatEq) Inspect(p *Pass) {
	if len(r.Scope) > 0 && !matchScope(r.Scope, p.Path) {
		return
	}
	isFloat := func(e ast.Expr) bool {
		t := p.Info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	isConst := func(e ast.Expr) bool {
		return p.Info.Types[e].Value != nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(be.X) && !isFloat(be.Y) {
				return true
			}
			if isConst(be.X) && isConst(be.Y) {
				return true
			}
			p.Reportf(be.OpPos, "floating-point %s comparison; compare with an epsilon or by grid index", be.Op)
			return true
		})
	}
}
