package analysis

import "strings"

// DefaultRules is the rule set cmd/nimbus-lint runs over the tree, with
// each rule scoped to the packages whose invariants it protects:
//
//   - no-naked-rand everywhere except internal/rng, whose seeded sources
//     are the only sanctioned randomness (Lemma 3's calibrated mechanisms
//     must be replayable from one seed);
//   - no-float-eq in the curve/grid packages, where Monte-Carlo jitter
//     makes bitwise float equality meaningless (Theorems 4–7 reason about
//     monotone curves up to epsilon);
//   - no-wallclock in the deterministic solver and experiment packages, so
//     Figure 6–14 replays are reproducible under an injected clock;
//   - no-dropped-error everywhere;
//   - telemetry-label-literal everywhere internal/telemetry is used;
//   - the four CFG/dataflow concurrency rules (mutex-discipline,
//     lock-order, goroutine-leak, unlock-path) everywhere: their
//     contracts are opt-in per annotation (`guarded by`, //lint:lockorder,
//     //lint:holds), so unannotated packages pay nothing, and the rules
//     stay silent where type information is missing;
//   - the three interprocedural group rules: noise-taint tracks raw
//     optimal models (market.Offering.Optimal, //lint:source fields,
//     ml Fit outputs) to release sinks across the whole group,
//     lock-contract verifies //lint:holds and //lint:lockorder across
//     call and package boundaries, and hotpath-alloc budgets
//     allocations under the //lint:hotpath roots on the Buy path;
//   - the publication-and-lifecycle family everywhere, annotation- and
//     shape-gated like the concurrency rules: snapshot-immutability
//     (atomic.Pointer-published and //lint:immutable values are
//     write-once), resource-lifecycle (//lint:owns results must be
//     closed, returned or transferred on every exit path),
//     waitgroup-balance (Add/Done/Wait discipline), and
//     atomic-plain-mix (no variable both atomic and plain).
func DefaultRules(modulePath string) []Rule {
	internal := func(pkg string) string { return modulePath + "/internal/" + pkg }
	deterministic := []string{
		internal("pricing"),
		internal("isotone"),
		internal("opt"),
		internal("lp"),
		internal("experiments"),
	}
	return []Rule{
		NoNakedRand{Allow: []string{internal("rng")}},
		FloatEq{Scope: []string{
			internal("pricing"),
			internal("isotone"),
			internal("opt"),
			internal("lp"),
		}},
		WallClock{Scope: deterministic},
		DroppedError{},
		TelemetryLabel{TelemetryPath: internal("telemetry")},
		MutexDiscipline{},
		LockOrder{},
		GoroutineLeak{},
		UnlockPath{},
		NoiseTaint{
			SourceFields: []FieldRef{
				{Pkg: internal("market"), Type: "Offering", Field: "Optimal"},
			},
			SourceFuncs:   []FuncRef{{Pkg: internal("ml"), Name: "Fit"}},
			Sanitizers:    []FuncRef{{Pkg: internal("noise"), Name: "Perturb"}},
			SanitizerName: "noise.Mechanism.Perturb",
			Scope: []string{
				internal("market"),
				internal("server"),
				internal("journal"),
				internal("pricing"),
				internal("ml"),
				internal("noise"),
				modulePath + "/cmd",
			},
		},
		LockContract{},
		HotPathAlloc{},
		SnapshotImmutability{},
		ResourceLifecycle{},
		WaitGroupBalance{},
		AtomicPlainMix{},
	}
}

// matchScope reports whether pkgPath is pkgs[i] or beneath pkgs[i] for some
// i. An empty list matches nothing.
func matchScope(pkgs []string, pkgPath string) bool {
	for _, p := range pkgs {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}
