package analysis

import (
	"strings"
	"testing"
)

func TestHotPathAllocGolden(t *testing.T) {
	checkGolden(t, "hotpath", []Rule{HotPathAlloc{}})
}

// TestHotPathAllocMalformedAllocok checks the directive contract: a
// bare //lint:allocok is reported and excuses nothing. The case lives
// outside the want-comment golden because the finding sits on the
// directive's own line.
func TestHotPathAllocMalformedAllocok(t *testing.T) {
	pkg := loadGolden(t, "hotpathbad")
	diags := Run([]*Package{pkg}, []Rule{HotPathAlloc{}})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (malformed directive + uncovered make): %v", len(diags), diags)
	}
	var sawMalformed, sawMake bool
	for _, d := range diags {
		if strings.Contains(d.Message, "missing justification") {
			sawMalformed = true
		}
		if strings.Contains(d.Message, "make allocates") {
			sawMake = true
		}
	}
	if !sawMalformed || !sawMake {
		t.Errorf("missing expected findings in %v", diags)
	}
}

// TestHotPathAllocQuietWithoutRoots makes sure an unannotated tree is
// never scanned.
func TestHotPathAllocQuietWithoutRoots(t *testing.T) {
	pkg := loadGolden(t, "callgraph")
	if diags := Run([]*Package{pkg}, []Rule{HotPathAlloc{}}); len(diags) != 0 {
		t.Errorf("root-free package produced %v", diags)
	}
}
