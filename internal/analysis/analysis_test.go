package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// sharedLoader is reused across tests so the standard-library closure is
// type-checked once per test binary, not once per golden package.
var sharedLoader = sync.OnceValues(func() (*Loader, error) {
	root, modPath, err := FindModule(".")
	if err != nil {
		return nil, err
	}
	return NewLoader(root, modPath), nil
})

// loadGolden type-checks one testdata package and fails the test on any
// parse or type error — golden inputs must be valid Go so that rule
// behaviour, not checker noise, is what the test observes.
func loadGolden(t *testing.T, name string) *Package {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading %s: %v", name, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("golden package %s has type errors: %v", name, pkg.TypeErrors)
	}
	return pkg
}

// wantRe matches a golden expectation comment: `// want <rule> [<rule>...]`.
var wantRe = regexp.MustCompile(`//\s*want\s+([a-z][a-z0-9-]*(?:\s+[a-z][a-z0-9-]*)*)\s*$`)

// expectations scans the golden sources for want-comments and renders each
// expected diagnostic as "file:line:rule".
func expectations(t *testing.T, pkg *Package) []string {
	t.Helper()
	var want []string
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		src, err := os.ReadFile(filename)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, rule := range strings.Fields(m[1]) {
				want = append(want, fmt.Sprintf("%s:%d:%s", filepath.Base(filename), i+1, rule))
			}
		}
	}
	sort.Strings(want)
	return want
}

// checkGolden runs rules over one golden package and requires the produced
// diagnostics to match the want-comments exactly: same rule, file and line,
// nothing missing, nothing extra.
func checkGolden(t *testing.T, name string, rules []Rule) {
	t.Helper()
	pkg := loadGolden(t, name)
	var got []string
	for _, d := range Run([]*Package{pkg}, rules) {
		got = append(got, fmt.Sprintf("%s:%d:%s", filepath.Base(d.File), d.Line, d.Rule))
	}
	sort.Strings(got)
	want := expectations(t, pkg)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("diagnostics mismatch for %s\n got: %v\nwant: %v", name, got, want)
	}
}

func TestNoNakedRandGolden(t *testing.T) {
	checkGolden(t, "nakedrand", []Rule{NoNakedRand{}})
}

func TestNoNakedRandAllowlist(t *testing.T) {
	pkg := loadGolden(t, "nakedrand")
	rule := NoNakedRand{Allow: []string{pkg.Path}}
	if diags := Run([]*Package{pkg}, []Rule{rule}); len(diags) != 0 {
		t.Errorf("allowlisted package still produced %v", diags)
	}
}

func TestFloatEqGolden(t *testing.T) {
	pkg := loadGolden(t, "floateq")
	checkGolden(t, "floateq", []Rule{FloatEq{Scope: []string{pkg.Path}}})
}

func TestFloatEqOutOfScope(t *testing.T) {
	pkg := loadGolden(t, "floateq")
	rule := FloatEq{Scope: []string{"nimbus/internal/pricing"}}
	if diags := Run([]*Package{pkg}, []Rule{rule}); len(diags) != 0 {
		t.Errorf("out-of-scope package still produced %v", diags)
	}
}

func TestWallClockGolden(t *testing.T) {
	pkg := loadGolden(t, "wallclock")
	checkGolden(t, "wallclock", []Rule{WallClock{Scope: []string{pkg.Path}}})
}

func TestDroppedErrorGolden(t *testing.T) {
	checkGolden(t, "droppederr", []Rule{DroppedError{}})
}

func TestTelemetryLabelGolden(t *testing.T) {
	checkGolden(t, "telemetrylabels", []Rule{TelemetryLabel{TelemetryPath: "nimbus/internal/telemetry"}})
}

func TestMutexDisciplineGolden(t *testing.T) {
	checkGolden(t, "mutexguard", []Rule{MutexDiscipline{}})
}

func TestLockOrderGolden(t *testing.T) {
	checkGolden(t, "lockorder", []Rule{LockOrder{}})
}

func TestGoroutineLeakGolden(t *testing.T) {
	checkGolden(t, "goroleak", []Rule{GoroutineLeak{}})
}

func TestUnlockPathGolden(t *testing.T) {
	checkGolden(t, "unlockpath", []Rule{UnlockPath{}})
}

func TestSuppressionGolden(t *testing.T) {
	// Both rules run so the multi-rule //lint:ignore a,b form is exercised
	// end to end through Run(): one directive must silence two different
	// rules' findings on the covered line, while a directive naming other
	// rules leaves the float-eq finding alone.
	pkg := loadGolden(t, "suppress")
	scope := []string{pkg.Path}
	checkGolden(t, "suppress", []Rule{WallClock{Scope: scope}, FloatEq{Scope: scope}})
}

func TestLoaderSkipsBuildConstrainedFiles(t *testing.T) {
	pkg := loadGolden(t, "buildtags")
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (excluded.go is constrained away)", len(pkg.Files))
	}
	if name := filepath.Base(pkg.Fset.Position(pkg.Files[0].Pos()).Filename); name != "buildtags.go" {
		t.Errorf("loaded %s, want buildtags.go", name)
	}
	checkGolden(t, "buildtags", []Rule{WallClock{Scope: []string{pkg.Path}}})
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "no-float-eq", File: "a.go", Line: 3, Col: 7, Message: "m"}
	if got, want := d.String(), "a.go:3:7: no-float-eq: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestDefaultRulesCoverTheSuite(t *testing.T) {
	names := make(map[string]bool)
	for _, r := range DefaultRules("nimbus") {
		if r.Doc() == "" {
			t.Errorf("rule %s has no doc", r.Name())
		}
		names[r.Name()] = true
	}
	for _, want := range []string{
		"no-naked-rand", "no-float-eq", "no-wallclock", "no-dropped-error", "telemetry-label-literal",
		"mutex-discipline", "lock-order", "goroutine-leak", "unlock-path",
		"noise-taint", "lock-contract", "hotpath-alloc",
		"snapshot-immutability", "resource-lifecycle", "waitgroup-balance", "atomic-plain-mix",
	} {
		if !names[want] {
			t.Errorf("DefaultRules is missing %s", want)
		}
	}
}
