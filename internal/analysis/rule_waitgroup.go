package analysis

// waitgroup-balance checks the sync.WaitGroup protocol three ways:
//
//  1. Every Add must be balanced by a reachable Done: a Done (direct or
//     deferred) in the same function, a Done inside any function literal
//     the function builds (the `go func() { defer wg.Done() }` idiom), a
//     Done in the body of a same-package function the Add's function
//     calls or launches (`wg.Add(1); go j.syncLoop()`), or an escape —
//     the group passed to some call as an argument, at which point the
//     balancing Done is someone else's contract and the rule stays
//     silent.
//  2. Wait must not be called while holding a mutex that some
//     Done-calling function also acquires: the waited-for goroutine can
//     block on the lock the waiter holds, and neither ever advances. The
//     lockset at the Wait comes from the same must-join dataflow the
//     lock rules use, so a lock released (even manually) before the Wait
//     is not charged.
//  3. Add must not run inside a go-launched literal while the enclosing
//     function Waits on the same group: Wait can observe the counter
//     before the goroutine is scheduled, return early, and race the Add.
//     The fix is mechanical — Add before the go statement.
//
// Groups are matched by access path ("wg", "j.wg") within one function
// and by the path's final component across functions, mirroring how the
// lock rules correlate "b.mu" in a method with "mu" in its helpers.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WaitGroupBalance is the rule.
type WaitGroupBalance struct{}

func (WaitGroupBalance) Name() string { return "waitgroup-balance" }

func (WaitGroupBalance) Doc() string {
	return "WaitGroup Adds need a reachable Done, Wait must not hold a " +
		"mutex a Done path acquires, and Add must not race a concurrent " +
		"Wait from inside the launched goroutine"
}

// wgMethodCall recognizes call as (*sync.WaitGroup).Add/Done/Wait and
// returns the receiver's access path and the method name.
func wgMethodCall(info *types.Info, call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Add", "Done", "Wait":
	default:
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	rt := sig.Recv().Type()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed || named.Obj().Name() != "WaitGroup" {
		return "", "", false
	}
	k, keyOK := exprKey(sel.X)
	if !keyOK {
		return "", "", false
	}
	return k, fn.Name(), true
}

// wgSite is one recognized WaitGroup call.
type wgSite struct {
	key string
	pos token.Pos
}

func (r WaitGroupBalance) Inspect(p *Pass) {
	bodies := funcBodies(p)

	// Package-wide index: per body, the final components of the groups it
	// Dones and the locks it acquires — anywhere, including nested
	// literals, since a launched worker's Done often sits in a closure.
	doneComps := make(map[*ast.BlockStmt]map[string]bool, len(bodies))
	lockComps := make(map[*ast.BlockStmt]map[string]bool, len(bodies))
	for _, fb := range bodies {
		dc, lc := make(map[string]bool), make(map[string]bool)
		ast.Inspect(fb.body, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			if key, method, ok := wgMethodCall(p.Info, call); ok && method == "Done" {
				dc[lastComponent(key)] = true
			}
			if recv, kind, ok := lockMethodCall(p.Info, call); ok && (kind == opAcquireW || kind == opAcquireR) {
				if key, keyOK := exprKey(recv); keyOK {
					lc[lastComponent(key)] = true
				}
			}
			return true
		})
		doneComps[fb.body] = dc
		lockComps[fb.body] = lc
	}

	// declBody resolves a same-package function object to its body.
	declBody := make(map[types.Object]*ast.BlockStmt)
	for _, fb := range bodies {
		if fb.decl != nil {
			if obj := p.Info.Defs[fb.decl.Name]; obj != nil {
				declBody[obj] = fb.decl.Body
			}
		}
	}

	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			p.Reportf(pos, format, args...)
		}
	}

	for _, fb := range bodies {
		r.checkBody(p, fb, doneComps, lockComps, declBody, report)
	}
}

// checkBody runs all three checks over one function body.
func (r WaitGroupBalance) checkBody(p *Pass, fb funcBody,
	doneComps, lockComps map[*ast.BlockStmt]map[string]bool,
	declBody map[types.Object]*ast.BlockStmt,
	report func(pos token.Pos, format string, args ...any)) {

	var adds, waits []wgSite
	credited := make(map[string]bool) // final components with a reachable Done
	var goLits []*ast.FuncLit

	// Surface scan: this function's own statements, not nested literals.
	ast.Inspect(fb.body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// Any literal built here can carry the Done — launched,
			// deferred, or stored as a callback.
			for comp := range doneComps[x.Body] {
				credited[comp] = true
			}
			return false
		case *ast.GoStmt:
			if lit, isLit := ast.Unparen(x.Call.Fun).(*ast.FuncLit); isLit {
				goLits = append(goLits, lit)
			}
			return true
		case *ast.CallExpr:
			if key, method, ok := wgMethodCall(p.Info, x); ok {
				switch method {
				case "Add":
					adds = append(adds, wgSite{key: key, pos: x.Pos()})
				case "Done":
					credited[lastComponent(key)] = true
				case "Wait":
					waits = append(waits, wgSite{key: key, pos: x.Pos()})
				}
				return true
			}
			// A same-package callee whose body Dones balances the Add;
			// launched or called directly makes no difference here.
			if callee := staticCalleeObj(p.Info, x); callee != nil {
				for comp := range doneComps[declBody[callee]] {
					credited[comp] = true
				}
			}
			// The group escaping as an argument hands the Done obligation
			// to the callee: stay silent rather than guess.
			for _, arg := range x.Args {
				if key, keyOK := exprKey(arg); keyOK {
					credited[lastComponent(key)] = true
				}
			}
		}
		return true
	})

	// Check 1: every Add needs a reachable Done.
	for _, a := range adds {
		if !credited[lastComponent(a.key)] {
			report(a.pos, "%s.Add has no reachable %s.Done: no Done in this function, in a literal it builds, or in a callee — the Wait can never return",
				a.key, a.key)
		}
	}

	// Check 3: Add inside a launched literal races the enclosing Wait.
	for _, lit := range goLits {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			if key, method, ok := wgMethodCall(p.Info, call); ok && method == "Add" {
				for _, w := range waits {
					if lastComponent(w.key) == lastComponent(key) {
						report(call.Pos(), "%s.Add inside a go statement races the enclosing %s.Wait: Wait can observe the counter before this goroutine runs; Add before launching",
							key, w.key)
						break
					}
				}
			}
			return true
		})
	}

	// Check 2: Wait under a lock some Done path acquires.
	if len(waits) == 0 {
		return
	}
	cfg := lockCFG(p, fb.body)
	res := Forward(cfg, &lockFlow{info: p.Info, entry: entryFact(fb)})
	res.Walk(func(_ *Block, n ast.Node, before lockFact) {
		call, isCall := waitCallIn(p.Info, n)
		if !isCall || len(before.held) == 0 {
			return
		}
		waitKey, _, _ := wgMethodCall(p.Info, call)
		for heldKey := range before.held {
			heldComp := lastComponent(heldKey)
			for body, dc := range doneComps {
				if body == fb.body || !dc[lastComponent(waitKey)] {
					continue
				}
				if lockComps[body][heldComp] {
					report(call.Pos(), "%s.Wait while holding %s, which a %s.Done path also acquires: the waited-for goroutine can block on the lock held here; release %s before waiting",
						waitKey, heldKey, waitKey, heldKey)
					return
				}
			}
		}
	})
}

// staticCalleeObj resolves a call to the *types.Func it names, for
// same-package body lookup; nil for builtins, literals and variables.
func staticCalleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && !IsInterfaceMethod(fn) {
			return fn
		}
	}
	return nil
}

// waitCallIn finds a surface-level WaitGroup.Wait call in one CFG node.
func waitCallIn(info *types.Info, n ast.Node) (*ast.CallExpr, bool) {
	var found *ast.CallExpr
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if _, method, ok := wgMethodCall(info, x); ok && method == "Wait" && found == nil {
				found = x
			}
		}
		return found == nil
	})
	return found, found != nil
}
