package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestFindModule(t *testing.T) {
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if modPath != "nimbus" {
		t.Errorf("module path = %q, want nimbus", modPath)
	}
	here, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	if rel, err := filepath.Rel(root, here); err != nil || strings.HasPrefix(rel, "..") {
		t.Errorf("module root %q does not contain the test dir %q", root, here)
	}
}

func TestLoadRecursiveSkipsTestdata(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	// "./..." from this package's directory covers internal/analysis only;
	// the testdata tree below it must be invisible to pattern expansion.
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		paths := make([]string, len(pkgs))
		for i, p := range pkgs {
			paths[i] = p.Path
		}
		t.Fatalf("Load(./...) = %v, want just this package", paths)
	}
	pkg := pkgs[0]
	if pkg.Path != "nimbus/internal/analysis" {
		t.Errorf("package path = %q, want nimbus/internal/analysis", pkg.Path)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Errorf("type errors in own package: %v", pkg.TypeErrors)
	}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("test file %s was loaded for analysis", name)
		}
		if strings.Contains(name, "testdata") {
			t.Errorf("testdata file %s was loaded for analysis", name)
		}
	}
}

func TestLoadRejectsOutsideModule(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load("/"); err == nil {
		t.Error("loading a directory outside the module did not fail")
	}
}

func TestLoadDirTypeChecksDependencies(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	// The telemetry golden imports nimbus/internal/telemetry, which pulls
	// in a realistic stdlib closure; a full load proves the source
	// importer resolves module-internal and GOROOT packages.
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "telemetrylabels"))
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types == nil || pkg.Types.Scope().Lookup("Register") == nil {
		t.Fatal("telemetrylabels did not type-check to a usable package")
	}
	if len(pkg.TypeErrors) > 0 {
		t.Errorf("type errors: %v", pkg.TypeErrors)
	}
}
