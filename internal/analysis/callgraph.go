package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds a conservative call graph over a *package group* — the
// set of packages handed to one Run — so rules can reason across function
// boundaries. Resolution is deliberately simple and sound-for-our-rules
// rather than precise:
//
//   - calls to named functions and to methods with a concrete receiver
//     resolve statically through go/types (EdgeCall);
//   - calls through an interface fan out to every loaded type that
//     implements the interface (EdgeDynamic) — an over-approximation,
//     which is the safe direction for taint, lock and allocation checks;
//   - go and defer statements produce EdgeGo/EdgeDefer edges so rules can
//     distinguish same-goroutine from concurrent execution;
//   - closure literals, method values and function values referenced
//     without being called produce EdgeRef edges to the function they
//     denote, which keeps their bodies reachable from whoever built them.
//
// Calls through plain function-typed variables stay unresolved: the value
// that flowed into the variable already produced an EdgeRef at its
// creation site, so reachability-style analyses (hot-path budgets) still
// see the body, and value-sensitive analyses (taint) treat the call
// conservatively at the call site.

// CallEdgeKind classifies how a caller reaches a callee.
type CallEdgeKind uint8

const (
	// EdgeCall is a direct static call to a declared function or method.
	EdgeCall CallEdgeKind = iota
	// EdgeDynamic is one conservative candidate for an interface-method
	// dispatch: the callee is a loaded implementation of the interface.
	EdgeDynamic
	// EdgeGo is a call launched on a new goroutine.
	EdgeGo
	// EdgeDefer is a deferred call.
	EdgeDefer
	// EdgeRef is a function value being created or mentioned without a
	// call: a closure literal, a method value or a function value.
	EdgeRef
)

func (k CallEdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeDynamic:
		return "dynamic"
	case EdgeGo:
		return "go"
	case EdgeDefer:
		return "defer"
	case EdgeRef:
		return "ref"
	}
	return fmt.Sprintf("edge(%d)", k)
}

// CallEdge is one caller→callee edge, anchored at the syntax that
// produced it.
type CallEdge struct {
	Caller *FuncNode
	Callee *FuncNode
	Site   ast.Node
	Kind   CallEdgeKind
}

// FuncNode is one function with a body in the package group: a declared
// function or method (Decl/Obj set) or a function literal (Lit set).
type FuncNode struct {
	Pkg  *Package
	Decl *ast.FuncDecl // nil for function literals
	Lit  *ast.FuncLit  // nil for declared functions
	Obj  *types.Func   // nil for function literals
	// Name is a stable display name: "pkg.Func", "pkg.(T).Method", or the
	// enclosing function's name with a "$n" suffix for literals.
	Name string
	// Out lists this function's outgoing edges in source order.
	Out []*CallEdge
}

// Body returns the function's body block.
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Pos returns the function's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// CallGraph is the package group's call graph.
type CallGraph struct {
	// Nodes lists every function with a body, in deterministic order
	// (package, file, position).
	Nodes []*FuncNode

	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
	impls map[implKey][]*FuncNode
	named []*types.Named
	sccs  [][]*FuncNode
}

// implKey caches dynamic-dispatch candidates per (method, static
// interface) pair. The same *types.Func resolves through different
// interfaces at different call sites when it comes from an embedded
// interface: f.Close() on a File dispatches only to File implementations,
// even though the method object belongs to io.Closer.
type implKey struct {
	m     *types.Func
	iface *types.Interface
}

// NodeFor returns the node for a declared function or method, or nil if
// the function has no body in the group.
func (g *CallGraph) NodeFor(obj types.Object) *FuncNode {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return g.byObj[fn]
}

// LitNode returns the node for a function literal in the group.
func (g *CallGraph) LitNode(lit *ast.FuncLit) *FuncNode { return g.byLit[lit] }

// SCCs returns the strongly connected components in bottom-up order:
// every component appears after the components it calls into, so a
// summary pass that walks the slice front to back sees callees before
// callers and only iterates within a component.
func (g *CallGraph) SCCs() [][]*FuncNode { return g.sccs }

// DynamicTargets returns the loaded implementations an interface-method
// call could dispatch to, sorted by name. The method may come from any
// package, including declaration-only imports like the standard library;
// candidates are always group members with bodies. Resolution uses the
// interface the method is declared on; call sites that know a narrower
// static interface should use DynamicTargetsVia.
func (g *CallGraph) DynamicTargets(m *types.Func) []*FuncNode {
	var iface *types.Interface
	if sig, ok := m.Type().(*types.Signature); ok {
		if recv := sig.Recv(); recv != nil {
			iface, _ = recv.Type().Underlying().(*types.Interface)
		}
	}
	return g.DynamicTargetsVia(m, iface)
}

// DynamicTargetsVia resolves an interface-method dispatch against the
// static interface type seen at the call site, which may be narrower than
// the interface declaring m (a method reached through an embedded
// io.Closer must still be dispatched against the embedding interface's
// full method set, or every type with a Close method becomes a
// candidate). A nil iface yields no targets.
func (g *CallGraph) DynamicTargetsVia(m *types.Func, iface *types.Interface) []*FuncNode {
	key := implKey{m: m, iface: iface}
	if targets, ok := g.impls[key]; ok {
		return targets
	}
	var targets []*FuncNode
	if iface != nil {
		seen := make(map[*FuncNode]bool)
		for _, n := range g.named {
			if !types.Implements(n, iface) && !types.Implements(types.NewPointer(n), iface) {
				continue
			}
			sel := types.NewMethodSet(types.NewPointer(n)).Lookup(m.Pkg(), m.Name())
			if sel == nil {
				continue
			}
			impl, _ := sel.Obj().(*types.Func)
			if node := g.byObj[impl]; node != nil && !seen[node] {
				seen[node] = true
				targets = append(targets, node)
			}
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i].Name < targets[j].Name })
	}
	g.impls[key] = targets
	return targets
}

// StaticCallee resolves a call expression to the single in-group function
// it must reach, or nil for dynamic dispatch, builtins, function-typed
// variables and out-of-group targets. Rules that must not guess
// (provenance, ownership) use this instead of the fan-out edges.
func (g *CallGraph) StaticCallee(info *types.Info, call *ast.CallExpr) *FuncNode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok && !IsInterfaceMethod(fn) {
			return g.byObj[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && !IsInterfaceMethod(fn) {
			return g.byObj[fn]
		}
	case *ast.FuncLit:
		return g.byLit[fun]
	}
	return nil
}

// IsInterfaceMethod reports whether fn is declared on an interface type,
// i.e. a call through it dispatches dynamically.
func IsInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	recv := sig.Recv()
	if recv == nil {
		return false
	}
	_, isIface := recv.Type().Underlying().(*types.Interface)
	return isIface
}

// BuildCallGraph constructs the call graph for a package group.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		byObj: make(map[*types.Func]*FuncNode),
		byLit: make(map[*ast.FuncLit]*FuncNode),
		impls: make(map[implKey][]*FuncNode),
	}
	// Named (non-interface) types seed the interface-dispatch candidates.
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			g.named = append(g.named, named)
		}
	}
	// Nodes: declared functions first, then their nested literals, in
	// source order.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
					node := &FuncNode{Pkg: pkg, Decl: d, Obj: obj, Name: declName(pkg, d)}
					g.Nodes = append(g.Nodes, node)
					if obj != nil {
						g.byObj[obj] = node
					}
					g.addLits(pkg, node.Name, d.Body)
				case *ast.GenDecl:
					// Literals in var initializers hang off a synthetic
					// "init" scope name.
					g.addLits(pkg, pkg.Path+".init", d)
				}
			}
		}
	}
	for _, n := range g.Nodes {
		g.scanBody(n)
	}
	g.sccs = tarjanSCC(g.Nodes)
	return g
}

// addLits creates nodes for every function literal under root (which is
// itself already owned by a node or a var declaration), naming literals
// by nesting: parent$1, parent$1$2, ...
func (g *CallGraph) addLits(pkg *Package, parent string, root ast.Node) {
	counter := 0
	ast.Inspect(root, func(n ast.Node) bool {
		if root != n {
			if lit, ok := n.(*ast.FuncLit); ok {
				counter++
				name := fmt.Sprintf("%s$%d", parent, counter)
				node := &FuncNode{Pkg: pkg, Lit: lit, Name: name}
				g.Nodes = append(g.Nodes, node)
				g.byLit[lit] = node
				g.addLits(pkg, name, lit.Body)
				return false
			}
		}
		return true
	})
}

func declName(pkg *Package, d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return pkg.Path + "." + d.Name.Name
	}
	recv := d.Recv.List[0].Type
	return fmt.Sprintf("%s.(%s).%s", pkg.Path, types.ExprString(recv), d.Name.Name)
}

// scanBody walks one function body — without descending into nested
// literals, which are scanned as their own nodes — and records outgoing
// edges.
func (g *CallGraph) scanBody(n *FuncNode) {
	info := n.Pkg.Info
	callKind := make(map[*ast.CallExpr]CallEdgeKind)
	consumed := make(map[ast.Node]bool)
	addEdge := func(callee *FuncNode, site ast.Node, kind CallEdgeKind) {
		if callee != nil {
			n.Out = append(n.Out, &CallEdge{Caller: n, Callee: callee, Site: site, Kind: kind})
		}
	}
	// resolve adds edges for a use of fn at site: a static edge when the
	// method set pins the target, a fan-out when fn is an interface
	// method. via, when non-nil, is the static interface of the selection's
	// receiver — narrower than fn's declaring interface when fn comes from
	// an embedded interface — and bounds the fan-out.
	resolve := func(fn *types.Func, via *types.Interface, site ast.Node, kind CallEdgeKind) {
		if IsInterfaceMethod(fn) {
			dynKind := kind
			if kind == EdgeCall {
				dynKind = EdgeDynamic
			}
			targets := g.DynamicTargets(fn)
			if via != nil {
				targets = g.DynamicTargetsVia(fn, via)
			}
			for _, target := range targets {
				addEdge(target, site, dynKind)
			}
			return
		}
		addEdge(g.byObj[fn], site, kind)
	}
	// recvIface returns the static interface type of a selection's
	// receiver, or nil when the receiver is concrete (or sel is not a
	// method selection).
	recvIface := func(sel *ast.SelectorExpr) *types.Interface {
		s := info.Selections[sel]
		if s == nil {
			return nil
		}
		iface, _ := s.Recv().Underlying().(*types.Interface)
		return iface
	}
	ast.Inspect(n.Body(), func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.DeferStmt:
			callKind[x.Call] = EdgeDefer
		case *ast.GoStmt:
			callKind[x.Call] = EdgeGo
		case *ast.CallExpr:
			kind, known := callKind[x]
			if !known {
				kind = EdgeCall
			}
			switch fun := ast.Unparen(x.Fun).(type) {
			case *ast.FuncLit:
				consumed[fun] = true
				addEdge(g.byLit[fun], x, kind)
				// The literal's body is its own node; an immediately
				// invoked literal contributes only the call edge here.
			case *ast.Ident:
				if fn, ok := info.Uses[fun].(*types.Func); ok {
					consumed[fun] = true
					resolve(fn, nil, x, kind)
				}
			case *ast.SelectorExpr:
				if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
					consumed[fun.Sel] = true
					resolve(fn, recvIface(fun), x, kind)
				}
			}
		case *ast.FuncLit:
			if !consumed[x] {
				addEdge(g.byLit[x], x, EdgeRef)
			}
			return false // nested literal bodies are separate nodes
		case *ast.SelectorExpr:
			if fn, ok := info.Uses[x.Sel].(*types.Func); ok && !consumed[x] {
				// Method value or method expression: the function escapes
				// as a value.
				consumed[x.Sel] = true
				resolve(fn, recvIface(x), x, EdgeRef)
			}
		case *ast.Ident:
			if fn, ok := info.Uses[x].(*types.Func); ok && !consumed[x] {
				if _, isSig := fn.Type().(*types.Signature); isSig {
					resolve(fn, nil, x, EdgeRef)
				}
			}
		}
		return true
	})
}

// tarjanSCC computes strongly connected components over all edge kinds.
// Tarjan's algorithm emits each component only after every component it
// can reach, which is exactly the bottom-up (callee-first) order the
// summary driver wants.
func tarjanSCC(nodes []*FuncNode) [][]*FuncNode {
	type state struct {
		index, lowlink int
		onStack        bool
	}
	st := make(map[*FuncNode]*state, len(nodes))
	var stack []*FuncNode
	var sccs [][]*FuncNode
	next := 0
	var strongconnect func(v *FuncNode)
	strongconnect = func(v *FuncNode) {
		sv := &state{index: next, lowlink: next, onStack: true}
		st[v] = sv
		next++
		stack = append(stack, v)
		for _, e := range v.Out {
			w := e.Callee
			sw, seen := st[w]
			if !seen {
				strongconnect(w)
				if st[w].lowlink < sv.lowlink {
					sv.lowlink = st[w].lowlink
				}
			} else if sw.onStack && sw.index < sv.lowlink {
				sv.lowlink = sw.index
			}
		}
		if sv.lowlink == sv.index {
			var comp []*FuncNode
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				st[w].onStack = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for _, v := range nodes {
		if _, seen := st[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}
