package analysis

// noise-taint: the noise-before-release invariant, machine-checked.
// A buyer pays p(δ) for a model *perturbed* with noise δ (paper §4);
// the raw optimal model must never reach a release point — an HTTP
// response, a journal payload, a persisted ledger — without passing
// through the noise mechanism. This rule tracks raw-model values
// interprocedurally (see taint.go) and reports any unsanitized flow.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// NoiseTaint is the noise-before-release taint rule.
type NoiseTaint struct {
	// SourceFields are struct fields holding raw optimal models, in
	// addition to any //lint:source directives found in the group.
	SourceFields []FieldRef
	// SourceFuncs are functions whose []float64 results are raw models
	// (training routines).
	SourceFuncs []FuncRef
	// Sanitizers scrub values: results are clean regardless of inputs.
	Sanitizers []FuncRef
	// SanitizerName is how messages refer to the sanitizer.
	SanitizerName string
	// Sinks are release points in addition to the built-in
	// encoding/json marshaling, net/http response writes and
	// os.WriteFile.
	Sinks []FuncRef
	// Scope restricts reporting to these package paths (and their
	// subtrees). Summaries are still computed for the whole group so
	// flows that cross out-of-scope code are followed. Empty means
	// report everywhere.
	Scope []string
}

func (NoiseTaint) Name() string { return "noise-taint" }

func (NoiseTaint) Doc() string {
	return "Raw optimal-model values (training outputs, //lint:source fields) must pass " +
		"through the noise mechanism before reaching a release sink: HTTP response " +
		"marshaling, journal payloads, or persisted files. Flows are tracked across " +
		"function and package boundaries via call-graph summaries; //lint:declassify " +
		"exempts safe scalar aggregates."
}

// Inspect is a no-op: the rule works on the whole group.
func (NoiseTaint) Inspect(*Pass) {}

// builtinSinks release bytes to buyers or disk.
var builtinSinks = []FuncRef{
	{Pkg: "encoding/json", Name: "Marshal"},
	{Pkg: "encoding/json", Name: "MarshalIndent"},
	{Pkg: "encoding/json", Name: "Encode"},
	{Pkg: "net/http", Name: "Write"},
	{Pkg: "os", Name: "WriteFile"},
}

// InspectGroup runs the two-phase analysis: bottom-up summaries over
// the SCCs, then a reporting pass per in-scope function.
func (r NoiseTaint) InspectGroup(gp *GroupPass) {
	sanName := r.SanitizerName
	if sanName == "" {
		sanName = "the sanitizer"
	}
	sinks := append(append([]FuncRef{}, builtinSinks...), r.Sinks...)
	w := &taintWorld{
		graph:    gp.Graph,
		marked:   collectSourceFields(gp, r.SourceFields, gp.Reportf),
		declass:  collectDeclassified(gp, gp.Reportf),
		isSource: func(fn *types.Func) bool { return matchRef(r.SourceFuncs, fn) },
		isSan:    func(fn *types.Func) bool { return matchRef(r.Sanitizers, fn) },
		isSink:   func(fn *types.Func) bool { return matchRef(sinks, fn) },
	}
	if len(w.marked) == 0 && len(r.SourceFuncs) == 0 {
		return // nothing can be tainted
	}
	cfgs := make(map[*FuncNode]*CFG)
	cfgFor := func(n *FuncNode) *CFG {
		if g, ok := cfgs[n]; ok {
			return g
		}
		g := BuildCFG(n.Body(), CFGOptions{IsExit: func(c *ast.CallExpr) bool { return isPanicCall(n.Pkg.Info, c) }})
		cfgs[n] = g
		return g
	}

	// Phase A: summaries, callee-first.
	summaries := ComputeSummaries(gp.Graph,
		func(n *FuncNode, get func(*FuncNode) *taintSummary) *taintSummary {
			w.lookup = get
			return computeTaintSummary(w, n, cfgFor(n), sanName, gp.Fset)
		},
		taintSummaryEqual)
	w.lookup = func(n *FuncNode) *taintSummary { return summaries[n] }

	// Phase B: report unsanitized flows in scoped packages. Parameters
	// start clean — a leaky parameter is the *caller's* finding, made at
	// the call site through the callee's summary.
	for _, n := range gp.Graph.Nodes {
		if len(r.Scope) > 0 && !matchScope(r.Scope, n.Pkg.Path) {
			continue
		}
		tf := newTaintFlow(w, n, taintFact{}, true)
		res := Forward(cfgFor(n), tf)
		nres, named := resultObjs(n)
		report := func(pos token.Pos, msg, _ string) { gp.Reportf(pos, "%s", msg) }
		scanTaint(tf, res, nres, named, sanName, gp.Fset, taintEvents{
			sink:     report,
			store:    report,
			callLeak: report,
		})
	}
}

// computeTaintSummary derives one function's summary: a per-parameter
// run (sources off) finds param→result flows and parameter leaks, and
// one internal run (sources on) finds results tainted from within.
func computeTaintSummary(w *taintWorld, n *FuncNode, cfg *CFG, sanName string, fset *token.FileSet) *taintSummary {
	params := paramObjs(n)
	nres, named := resultObjs(n)
	s := &taintSummary{
		nparams: len(params),
		flows:   make([]uint64, len(params)),
		leaks:   make([]*taintLeak, len(params)),
	}
	for i, p := range params {
		if p == nil {
			continue
		}
		i := i
		tf := newTaintFlow(w, n, taintFact{p: true}, false)
		res := Forward(cfg, tf)
		leak := func(pos token.Pos, _ string, clause string) {
			if s.leaks[i] == nil {
				s.leaks[i] = &taintLeak{pos: pos, what: truncateClause(clause)}
			}
		}
		scanTaint(tf, res, nres, named, sanName, fset, taintEvents{
			ret:      func(bits uint64) { s.flows[i] |= bits },
			sink:     leak,
			store:    leak,
			callLeak: leak,
		})
	}
	tf := newTaintFlow(w, n, taintFact{}, true)
	res := Forward(cfg, tf)
	scanTaint(tf, res, nres, named, sanName, fset, taintEvents{
		ret: func(bits uint64) { s.resultTainted |= bits },
	})
	return s
}

// taintEvents are the callbacks scanTaint fires; nil members are
// skipped. Each event carries a full diagnostic message (for reports)
// and a short verb clause (for leak summaries that chain through call
// sites: "raw model value passed to f, which <clause>").
type taintEvents struct {
	// ret fires at each return with the bitset of tainted results.
	ret func(bits uint64)
	// sink fires when a tainted value (or a marked-field-carrying type)
	// is passed to a sink call.
	sink func(pos token.Pos, msg, clause string)
	// store fires when a tainted value is stored into an unmarked field.
	store func(pos token.Pos, msg, clause string)
	// callLeak fires when a tainted value is passed to a callee whose
	// summary says the parameter escapes.
	callLeak func(pos token.Pos, msg, clause string)
}

// scanTaint replays the dataflow solution and fires events at returns,
// sink calls, unmarked-field stores and leaking call sites.
func scanTaint(tf *taintFlow, res *FlowResult[taintFact], nres int, named []types.Object, sanName string, fset *token.FileSet, ev taintEvents) {
	info := tf.pkg.Info
	at := func(pos token.Pos) string {
		p := fset.Position(pos)
		return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
	}
	res.Walk(func(_ *Block, n ast.Node, before taintFact) {
		if ret, ok := n.(*ast.ReturnStmt); ok && ev.ret != nil && nres > 0 {
			var bits uint64
			switch {
			case len(ret.Results) == 1 && nres > 1:
				bits = tf.multiValueBits(before, ret.Results[0])
			case len(ret.Results) > 0:
				for i, e := range ret.Results {
					if i < 64 && tf.tainted(before, e) {
						bits |= 1 << uint(i)
					}
				}
			default: // bare return: named results carry the values
				for i, obj := range named {
					if obj != nil && i < 64 && before[obj] {
						bits |= 1 << uint(i)
					}
				}
			}
			if bits != 0 {
				ev.ret(bits)
			}
		}
		if as, ok := n.(*ast.AssignStmt); ok && ev.store != nil {
			for i, lhs := range as.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				var rhsTainted bool
				if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
					rhsTainted = tf.multiValueBits(before, as.Rhs[0])&(1<<uint(i)) != 0
				} else if i < len(as.Rhs) {
					rhsTainted = tf.tainted(before, as.Rhs[i])
				}
				if !rhsTainted {
					continue
				}
				obj := info.Uses[sel.Sel]
				if obj == nil || tf.w.marked[obj] {
					continue
				}
				if _, isVar := obj.(*types.Var); !isVar {
					continue
				}
				ev.store(lhs.Pos(), fmt.Sprintf(
					"raw model value stored in field %s, which is not marked //lint:source — mark it or sanitize with %s first",
					obj.Name(), sanName),
					fmt.Sprintf("stores it in unmarked field %s", obj.Name()))
			}
		}
		ast.Inspect(n, func(x ast.Node) bool {
			if isFuncLit(x) {
				return false
			}
			switch x := x.(type) {
			case *ast.CallExpr:
				scanCall(tf, before, x, sanName, at, ev)
			case *ast.CompositeLit:
				scanComposite(tf, before, x, sanName, ev)
			}
			return true
		})
	})
}

// scanCall checks one call site for sink hits and leaking callees.
func scanCall(tf *taintFlow, before taintFact, call *ast.CallExpr, sanName string, at func(token.Pos) string, ev taintEvents) {
	info := tf.pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	fn, recv, lit := calleeOf(info, call)
	if fn != nil {
		if tf.w.isSan(fn) || tf.w.declass[fn] {
			return
		}
		if tf.w.isSink(fn) && ev.sink != nil {
			for _, a := range call.Args {
				if tf.tainted(before, a) {
					ev.sink(a.Pos(), fmt.Sprintf(
						"raw model value reaches %s without passing through %s", fnDisplay(fn), sanName),
						fmt.Sprintf("releases it via %s", fnDisplay(fn)))
				} else if tf.sourcesActive {
					// Type-based exposure: marshaling a type that carries a
					// marked field serializes the raw model even without a
					// tracked flow. Only meaningful when sources are active
					// (phase B) — it is independent of any single parameter.
					if field, exposed := typeExposesMarked(tf.w.marked, info.TypeOf(a)); exposed {
						ev.sink(a.Pos(), fmt.Sprintf(
							"%s serializes source field %s (marked //lint:source) — use a sanitized snapshot type or perturb with %s",
							fnDisplay(fn), field, sanName),
							fmt.Sprintf("serializes source field %s via %s", field, fnDisplay(fn)))
					}
				}
			}
			return
		}
	}
	if ev.callLeak == nil {
		return
	}
	var targets []*FuncNode
	if fn != nil {
		targets = tf.calleeNodes(fn, lit)
	} else if lit != nil {
		if node := tf.w.graph.LitNode(lit); node != nil {
			targets = []*FuncNode{node}
		}
	}
	for _, target := range targets {
		s := tf.w.lookup(target)
		if s == nil {
			continue
		}
		reported := false
		forEachTaintedArg(tf, before, call, recv, s.nparams, func(idx int) {
			if reported || idx >= len(s.leaks) || s.leaks[idx] == nil {
				return
			}
			reported = true
			leak := s.leaks[idx]
			clause := fmt.Sprintf("passes it to %s, which %s (%s)", target.Name, leak.what, at(leak.pos))
			ev.callLeak(call.Pos(), fmt.Sprintf(
				"raw model value passed to %s, which %s (%s)", target.Name, leak.what, at(leak.pos)), clause)
		})
	}
}

// scanComposite checks struct literals for tainted values landing in
// unmarked fields.
func scanComposite(tf *taintFlow, before taintFact, lit *ast.CompositeLit, sanName string, ev taintEvents) {
	if ev.store == nil {
		return
	}
	info := tf.pkg.Info
	t := info.TypeOf(lit)
	if t == nil {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, el := range lit.Elts {
		var field *types.Var
		value := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			value = kv.Value
			if id, ok := kv.Key.(*ast.Ident); ok {
				field, _ = info.Uses[id].(*types.Var)
			}
		} else if i < st.NumFields() {
			field = st.Field(i)
		}
		if field == nil || tf.w.marked[field] {
			continue
		}
		if tf.tainted(before, value) {
			ev.store(value.Pos(), fmt.Sprintf(
				"raw model value stored in field %s, which is not marked //lint:source — mark it or sanitize with %s first",
				field.Name(), sanName),
				fmt.Sprintf("stores it in unmarked field %s", field.Name()))
		}
	}
}
