package analysis

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// checkGoldenGroup runs rules over a multi-package golden subtree as one
// interprocedural group and requires the diagnostics to match the
// want-comments across every package in the subtree.
func checkGoldenGroup(t *testing.T, subtree string, rules []Rule) {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := l.Load(filepath.Join("testdata", "src", subtree) + "/...")
	if err != nil {
		t.Fatalf("loading %s: %v", subtree, err)
	}
	var want []string
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("golden package %s has type errors: %v", pkg.Path, pkg.TypeErrors)
		}
		want = append(want, expectations(t, pkg)...)
	}
	sort.Strings(want)
	var got []string
	for _, d := range Run(pkgs, rules) {
		got = append(got, fmt.Sprintf("%s:%d:%s", filepath.Base(d.File), d.Line, d.Rule))
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("diagnostics mismatch for %s\n got: %v\nwant: %v", subtree, got, want)
	}
}

func TestNoiseTaintGolden(t *testing.T) {
	pkg := loadGolden(t, "taint")
	rule := NoiseTaint{
		SourceFuncs:   []FuncRef{{Pkg: pkg.Path, Name: "Fit"}},
		Sanitizers:    []FuncRef{{Pkg: pkg.Path, Name: "Perturb"}},
		SanitizerName: "Perturb",
	}
	checkGolden(t, "taint", []Rule{rule})
}

// TestNoiseTaintCrossPackage proves taint summaries and marked-field
// identity survive a package boundary: the source field lives in
// taintipa/model, the leak in taintipa/web.
func TestNoiseTaintCrossPackage(t *testing.T) {
	rule := NoiseTaint{
		Sanitizers:    []FuncRef{{Pkg: "nimbus/internal/analysis/testdata/src/taintipa/model", Name: "Scrub"}},
		SanitizerName: "model.Scrub",
	}
	checkGoldenGroup(t, "taintipa", []Rule{rule})
}

// TestNoiseTaintScope checks that a scoped rule only reports inside the
// named packages even though summaries are computed over the whole group.
func TestNoiseTaintScope(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := l.Load(filepath.Join("testdata", "src", "taintipa") + "/...")
	if err != nil {
		t.Fatalf("loading taintipa: %v", err)
	}
	rule := NoiseTaint{
		Sanitizers:    []FuncRef{{Pkg: "nimbus/internal/analysis/testdata/src/taintipa/model", Name: "Scrub"}},
		SanitizerName: "model.Scrub",
		Scope:         []string{"nimbus/internal/analysis/testdata/src/taintipa/model"},
	}
	if diags := Run(pkgs, []Rule{rule}); len(diags) != 0 {
		t.Errorf("scoped out of the leaking package, still produced %v", diags)
	}
}
