package analysis

// Intra-procedural control-flow graphs. The per-expression AST rules in
// this package cannot see path-sensitive properties — "is b.mu held on
// every path reaching this field access", "does any path re-acquire jmu
// after mu" — so the concurrency rules build a CFG per function body and
// run dataflow over it (dataflow.go). The construction is deliberately
// syntactic and stdlib-only: blocks hold the original ast.Node values
// (simple statements plus the control expressions that guard edges), and
// nested function literals are *not* inlined — a FuncLit is analyzed as
// its own function by whoever cares.

import (
	"go/ast"
	"go/token"
)

// Block is one straight-line run of nodes. Nodes contains simple
// statements (assignments, calls, defer/go/return, declarations) and the
// control expressions evaluated on entry to a construct (an if/for
// condition, a switch tag, a range operand); compound statements never
// appear — the builder decomposes them into edges.
type Block struct {
	// Index is the block's position in CFG.Blocks, in construction order
	// (entry first); useful as a stable map key in tests.
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body. Exit is a single
// synthetic block every return, every checked panic and the fall-off-end
// path feed into; it holds no nodes.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// CFGOptions tunes construction.
type CFGOptions struct {
	// IsExit reports whether a call terminates the function abnormally
	// (the builder wires an edge to Exit after it). The concurrency rules
	// pass a type-informed panic detector; nil means no call exits.
	IsExit func(*ast.CallExpr) bool
}

// BuildCFG constructs the CFG of body. A nil body yields a trivial
// entry→exit graph.
func BuildCFG(body *ast.BlockStmt, opts CFGOptions) *CFG {
	b := &cfgBuilder{opts: opts}
	b.cfg = &CFG{}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(b.cfg.Exit) // implicit return at the closing brace
	return b.cfg
}

// ReachableFromEntry returns the blocks reachable from Entry.
func (g *CFG) ReachableFromEntry() map[*Block]bool {
	seen := make(map[*Block]bool)
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// ReachesExit returns the blocks from which Exit is reachable, via a
// reverse walk over Preds.
func (g *CFG) ReachesExit() map[*Block]bool {
	seen := make(map[*Block]bool)
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, p := range b.Preds {
			walk(p)
		}
	}
	walk(g.Exit)
	return seen
}

// loopFrame records where break and continue land for one enclosing
// breakable construct. continueTo is nil for switch/select frames.
type loopFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block
}

type cfgBuilder struct {
	cfg  *CFG
	opts CFGOptions
	// cur is the block under construction; nil after a terminator, in
	// which case the next statement starts a fresh (unreachable unless
	// jumped to by a label) block.
	cur    *Block
	frames []loopFrame
	// labels maps a label name to the block its statement starts in, for
	// goto; created on first reference so forward gotos resolve.
	labels map[string]*Block
	// fallTo is the next case's body block while building a switch case,
	// the target of a fallthrough statement.
	fallTo *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block, starting a fresh one if the
// previous statement terminated control flow (dead code keeps a block so
// facts and positions stay well defined; it just has no preds).
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	b.ensure()
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) ensure() {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
}

// jump terminates the current block with an edge to target.
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		edge(b.cur, target)
		b.cur = nil
	}
}

// start makes target the current block, linking it from cur when cur is
// still open (fallthrough into a label, loop head, etc).
func (b *cfgBuilder) start(target *Block) {
	if b.cur != nil {
		edge(b.cur, target)
	}
	b.cur = target
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	if b.labels == nil {
		b.labels = make(map[string]*Block)
	}
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// frame finds the break/continue target frame: the innermost one, or the
// one with the given label.
func (b *cfgBuilder) frame(label string, needContinue bool) (loopFrame, bool) {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if needContinue && f.continueTo == nil {
			continue
		}
		if label == "" || f.label == label {
			return f, true
		}
	}
	return loopFrame{}, false
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt wires one statement. label is the pending label when s is the
// body of a LabeledStmt, so labeled loops register break/continue targets.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		blk := b.labelBlock(s.Label.Name)
		b.start(blk)
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		then, after := b.newBlock(), b.newBlock()
		els := after
		if s.Else != nil {
			els = b.newBlock()
		}
		if b.cur != nil {
			edge(b.cur, then)
			edge(b.cur, els)
		}
		b.cur = then
		b.stmtList(s.Body.List)
		b.jump(after)
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else, "")
			b.jump(after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		body, after := b.newBlock(), b.newBlock()
		b.start(head)
		var post *Block
		continueTo := head
		if s.Post != nil {
			post = b.newBlock()
			continueTo = post
		}
		if s.Cond != nil {
			b.add(s.Cond)
			edge(b.cur, after)
		}
		edge(b.cur, body)
		b.cur = body
		b.frames = append(b.frames, loopFrame{label: label, breakTo: after, continueTo: continueTo})
		b.stmtList(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		if post != nil {
			b.jump(post)
			b.cur = post
			b.add(s.Post)
		}
		b.jump(head)
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		body, after := b.newBlock(), b.newBlock()
		b.start(head)
		b.add(s.X) // the ranged operand is evaluated at the head
		edge(b.cur, body)
		edge(b.cur, after)
		b.cur = body
		b.frames = append(b.frames, loopFrame{label: label, breakTo: after, continueTo: head})
		b.stmtList(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.jump(head)
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body.List, label, func(c *ast.CaseClause) ([]ast.Node, []ast.Stmt, bool) {
			nodes := make([]ast.Node, 0, len(c.List))
			for _, e := range c.List {
				nodes = append(nodes, e)
			}
			return nodes, c.Body, c.List == nil
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, label, func(c *ast.CaseClause) ([]ast.Node, []ast.Stmt, bool) {
			return nil, c.Body, c.List == nil
		})

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, breakTo: after})
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock()
			if head != nil {
				edge(head, blk)
			}
			b.cur = blk
			if comm.Comm != nil {
				b.add(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.jump(after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		// A select with no clauses blocks forever: after keeps no edge
		// from head, so everything past it is unreachable — exactly the
		// semantics goroutine-leak wants to see.
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if f, ok := b.frame(label, false); ok {
				b.jump(f.breakTo)
			} else {
				b.cur = nil
			}
		case token.CONTINUE:
			if f, ok := b.frame(label, true); ok {
				b.jump(f.continueTo)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			b.jump(b.labelBlock(label))
		case token.FALLTHROUGH:
			if b.fallTo != nil {
				b.jump(b.fallTo)
			} else {
				b.cur = nil
			}
		}

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.opts.IsExit != nil && b.opts.IsExit(call) {
			b.jump(b.cfg.Exit)
		}

	default:
		// Assignments, declarations, send/incdec, defer, go, empty:
		// straight-line nodes.
		b.add(s)
	}
}

// caseClauses wires the shared switch/type-switch shape: the head branches
// to every case body, the default (if any) absorbs the no-match path, and
// fallthrough chains case i into case i+1.
func (b *cfgBuilder) caseClauses(list []ast.Stmt, label string, split func(*ast.CaseClause) (guards []ast.Node, body []ast.Stmt, isDefault bool)) {
	head := b.cur
	after := b.newBlock()
	blocks := make([]*Block, len(list))
	for i := range list {
		blocks[i] = b.newBlock()
	}
	hasDefault := false
	b.frames = append(b.frames, loopFrame{label: label, breakTo: after})
	for i, cs := range list {
		c := cs.(*ast.CaseClause)
		guards, body, isDefault := split(c)
		if isDefault {
			hasDefault = true
		}
		if head != nil {
			edge(head, blocks[i])
		}
		b.cur = blocks[i]
		for _, g := range guards {
			b.add(g)
		}
		savedFall := b.fallTo
		if i+1 < len(list) {
			b.fallTo = blocks[i+1]
		} else {
			b.fallTo = nil
		}
		b.stmtList(body)
		b.fallTo = savedFall
		b.jump(after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault && head != nil {
		edge(head, after)
	}
	b.cur = after
}
