// Package analysis is a dependency-free static-analysis framework for the
// Nimbus tree. It exists because the invariants Nimbus's correctness rests
// on are semantic, not type-level: arbitrage-freeness needs monotone and
// subadditive price curves (Theorems 5–7), the Gaussian mechanism needs
// centrally seeded randomness (Lemma 3), and the experiment replays behind
// Figures 6–14 need determinism. `go vet` can see none of that, so this
// package encodes each invariant as a machine-checked rule and cmd/nimbus-lint
// runs the rule set over the tree on every CI build.
//
// The framework is built only on the standard library's go/parser, go/ast,
// go/build and go/types — no golang.org/x/tools — so go.mod stays empty.
//
// A Rule inspects one type-checked package at a time through a Pass and
// reports file/line-accurate diagnostics. Findings can be suppressed at the
// offending line (or the line directly above it) with a justified directive:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// A directive without a reason is itself a diagnostic, so every suppression
// in the tree carries an argument a reviewer can audit.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: a rule name, a position, and a message. File is
// the path as recorded in the loader's FileSet (absolute unless the caller
// relativizes it).
type Diagnostic struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Rule is one invariant check. Name is the stable identifier used in output
// and //lint:ignore directives; Doc is a one-paragraph statement of the
// invariant the rule protects; Inspect reports findings through the Pass.
type Rule interface {
	Name() string
	Doc() string
	Inspect(*Pass)
}

// Pass hands a rule one fully type-checked package. Info always has Types
// and Uses populated; rules must tolerate missing type information (a nil
// TypeOf result) and stay silent rather than guess, so that a partially
// checked package can never produce a false positive.
type Pass struct {
	// Path is the import path of the package under analysis.
	Path string
	// Fset positions every node in Files.
	Fset *token.FileSet
	// Files are the package's non-test source files, parsed with comments.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info holds expression types, constant values and identifier uses.
	Info *types.Info

	rule  Rule
	diags *[]Diagnostic
}

// Reportf records a finding for the rule this pass is bound to.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Rule:    p.rule.Name(),
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// GroupRule is a rule that analyzes the whole package group at once —
// needed when the invariant crosses package boundaries. A GroupRule is
// still a Rule (its per-package Inspect is typically a no-op) so rule
// sets stay homogeneous; Run detects the extended interface, builds the
// group call graph once, and hands it to every group rule.
type GroupRule interface {
	Rule
	InspectGroup(*GroupPass)
}

// GroupPass hands a GroupRule the whole package group and its call
// graph. All packages loaded by one Loader share a FileSet, so a single
// Fset positions every node in the group.
type GroupPass struct {
	Pkgs  []*Package
	Graph *CallGraph
	Fset  *token.FileSet

	rule  Rule
	diags *[]Diagnostic
}

// Reportf records a finding for the group rule this pass is bound to.
func (p *GroupPass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Rule:    p.rule.Name(),
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Run applies every rule to every package, filters the findings through the
// packages' //lint:ignore directives, and returns the survivors sorted by
// file, line, column and rule. Malformed directives are returned as
// diagnostics themselves (rule "lint-ignore") and cannot be suppressed.
// Rules implementing GroupRule additionally run once over the whole group
// with a shared call graph.
func Run(pkgs []*Package, rules []Rule) []Diagnostic {
	var out []Diagnostic
	allIgnores := make([]*ignoreSet, 0, len(pkgs))
	for _, pkg := range pkgs {
		var found []Diagnostic
		for _, r := range rules {
			pass := &Pass{
				Path:  pkg.Path,
				Fset:  pkg.Fset,
				Files: pkg.Files,
				Pkg:   pkg.Types,
				Info:  pkg.Info,
				rule:  r,
				diags: &found,
			}
			r.Inspect(pass)
		}
		ignores := collectIgnores(pkg.Fset, pkg.Files)
		allIgnores = append(allIgnores, ignores)
		for _, d := range found {
			if !ignores.suppresses(d) {
				out = append(out, d)
			}
		}
		out = append(out, ignores.malformed...)
	}
	var groupRules []GroupRule
	for _, r := range rules {
		if gr, ok := r.(GroupRule); ok {
			groupRules = append(groupRules, gr)
		}
	}
	if len(groupRules) > 0 && len(pkgs) > 0 {
		graph := BuildCallGraph(pkgs)
		var found []Diagnostic
		for _, gr := range groupRules {
			gp := &GroupPass{
				Pkgs:  pkgs,
				Graph: graph,
				Fset:  pkgs[0].Fset,
				rule:  gr,
				diags: &found,
			}
			gr.InspectGroup(gp)
		}
		for _, d := range found {
			suppressed := false
			for _, ig := range allIgnores {
				if ig.suppresses(d) {
					suppressed = true
					break
				}
			}
			if !suppressed {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return out
}
