package analysis

// Lockset dataflow shared by the concurrency rules. The lattice element
// is a map from a lock's access path (rendered like "b.mu") to how it is
// held (read or write) plus where it was acquired; defer-scheduled
// releases are tracked alongside so unlock-path can credit them at every
// exit. Two join disciplines are offered: must (intersection — a lock
// counts as held only when every incoming path holds it; what guarded
// field accesses and exit checks need) and may (union — a lock counts if
// any path might hold it; what lock-order violations need).
//
// The rules read three source-level contracts:
//
//	n int // guarded by mu              field annotation, struct siblings
//	//lint:lockorder jmu < mu [< ...]   package-level acquisition order
//	//lint:holds mu[,mu2]               func doc: caller holds these locks
//
// Lock operations are recognized through go/types: a call to a method
// named Lock/RLock/Unlock/RUnlock whose *types.Func lives in package sync
// (Mutex, RWMutex, or the Locker interface). Function literals are never
// scanned as part of the enclosing function — their bodies run at some
// other time, so each literal is analyzed as its own function.

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

type lockMode uint8

const (
	lockR lockMode = 1 // shared (RLock)
	lockW lockMode = 2 // exclusive (Lock)
)

func (m lockMode) String() string {
	if m == lockR {
		return "read-locked"
	}
	return "locked"
}

// heldLock is how one lock is held: the weakest mode guaranteed on all
// joined paths (or strongest possible on any path, under may-join) and
// the earliest acquisition position. pos is token.NoPos for locks the
// function holds on entry via //lint:holds.
type heldLock struct {
	mode lockMode
	pos  token.Pos
}

// lockFact is the lattice element. Maps are treated as immutable; the
// transfer function copies before writing.
type lockFact struct {
	held     map[string]heldLock
	deferred map[string]bool // keys with a defer-scheduled unlock
}

func (f lockFact) clone() lockFact {
	g := lockFact{held: make(map[string]heldLock, len(f.held)), deferred: make(map[string]bool, len(f.deferred))}
	for k, v := range f.held {
		g.held[k] = v
	}
	for k := range f.deferred {
		g.deferred[k] = true
	}
	return g
}

// lockOpKind classifies a recognized sync call.
type lockOpKind uint8

const (
	opAcquireW lockOpKind = iota
	opAcquireR
	opReleaseW
	opReleaseR
)

// lockOp is one recognized acquisition or release.
type lockOp struct {
	kind lockOpKind
	key  string // access path of the lock, e.g. "b.mu"
	pos  token.Pos
}

func (op lockOp) acquire() bool { return op.kind == opAcquireW || op.kind == opAcquireR }

func (op lockOp) mode() lockMode {
	if op.kind == opAcquireR || op.kind == opReleaseR {
		return lockR
	}
	return lockW
}

// exprKey renders a lock or receiver access path (identifier/selector
// chains, through parens and derefs). Anything dynamic — an index, a call
// result — is untrackable and reported as !ok; the analyses then ignore
// that lock rather than guess.
func exprKey(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := exprKey(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprKey(e.X)
		}
	}
	return "", false
}

// lastComponent is the field name of an access path: "b.mu" → "mu".
func lastComponent(key string) string {
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// lockMethodCall recognizes call as a sync lock/unlock method call and
// returns the receiver expression and operation kind.
func lockMethodCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, kind lockOpKind, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, 0, false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, 0, false
	}
	switch fn.Name() {
	case "Lock":
		kind = opAcquireW
	case "RLock":
		kind = opAcquireR
	case "Unlock":
		kind = opReleaseW
	case "RUnlock":
		kind = opReleaseR
	default:
		return nil, 0, false
	}
	return sel.X, kind, true
}

// lockOpsIn collects the trackable lock operations in one CFG node, in
// source order, skipping function literals (deferred/other-time bodies)
// and go statements (the spawned call runs concurrently).
func lockOpsIn(info *types.Info, n ast.Node) []lockOp {
	var ops []lockOp
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			recv, kind, ok := lockMethodCall(info, x)
			if !ok {
				return true
			}
			if key, ok := exprKey(recv); ok {
				ops = append(ops, lockOp{kind: kind, key: key, pos: x.Pos()})
			}
			return true
		}
		return true
	})
	return ops
}

// applyLockOp folds one operation into the fact.
func applyLockOp(f lockFact, op lockOp) lockFact {
	g := f.clone()
	if op.acquire() {
		h, exists := g.held[op.key]
		if !exists {
			h = heldLock{mode: op.mode(), pos: op.pos}
		} else if op.mode() > h.mode {
			h.mode = op.mode()
		}
		g.held[op.key] = h
	} else {
		delete(g.held, op.key)
	}
	return g
}

// lockFlow implements Flow[lockFact] for one function.
type lockFlow struct {
	info *types.Info
	// entry is the lockset on function entry (from //lint:holds).
	entry lockFact
	// union selects may-join (lock-order) over must-join (discipline,
	// unlock-path).
	union bool
}

func (lf *lockFlow) Entry() lockFact { return lf.entry }

func (lf *lockFlow) Transfer(f lockFact, n ast.Node) lockFact {
	if d, isDefer := n.(*ast.DeferStmt); isDefer {
		recv, kind, ok := lockMethodCall(lf.info, d.Call)
		if ok && (kind == opReleaseW || kind == opReleaseR) {
			if key, keyOK := exprKey(recv); keyOK {
				g := f.clone()
				g.deferred[key] = true
				return g
			}
		}
		return f
	}
	for _, op := range lockOpsIn(lf.info, n) {
		f = applyLockOp(f, op)
	}
	return f
}

func (lf *lockFlow) Join(a, b lockFact) lockFact {
	out := lockFact{held: make(map[string]heldLock), deferred: make(map[string]bool)}
	if lf.union {
		for k, v := range a.held {
			out.held[k] = v
		}
		for k, v := range b.held {
			if prev, ok := out.held[k]; ok {
				if v.mode > prev.mode {
					prev.mode = v.mode
				}
				if prev.pos == token.NoPos || (v.pos != token.NoPos && v.pos < prev.pos) {
					prev.pos = v.pos
				}
				out.held[k] = prev
			} else {
				out.held[k] = v
			}
		}
		for k := range a.deferred {
			out.deferred[k] = true
		}
		for k := range b.deferred {
			out.deferred[k] = true
		}
		return out
	}
	for k, va := range a.held {
		vb, ok := b.held[k]
		if !ok {
			continue
		}
		m := va.mode
		if vb.mode < m {
			m = vb.mode
		}
		p := va.pos
		if vb.pos != token.NoPos && (p == token.NoPos || vb.pos < p) {
			p = vb.pos
		}
		out.held[k] = heldLock{mode: m, pos: p}
	}
	for k := range a.deferred {
		if b.deferred[k] {
			out.deferred[k] = true
		}
	}
	return out
}

func (lf *lockFlow) Equal(a, b lockFact) bool {
	if len(a.held) != len(b.held) || len(a.deferred) != len(b.deferred) {
		return false
	}
	for k, va := range a.held {
		if vb, ok := b.held[k]; !ok || va != vb {
			return false
		}
	}
	for k := range a.deferred {
		if !b.deferred[k] {
			return false
		}
	}
	return true
}

// isPanicCall reports whether call invokes the panic builtin.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// funcBody is one analyzable function: a declaration or a literal.
type funcBody struct {
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	body *ast.BlockStmt
}

func (fb funcBody) recvName() string {
	if fb.decl == nil || fb.decl.Recv == nil || len(fb.decl.Recv.List) == 0 {
		return ""
	}
	names := fb.decl.Recv.List[0].Names
	if len(names) == 0 {
		return ""
	}
	return names[0].Name
}

// funcBodies enumerates every function body in the pass: declarations and
// all function literals (each literal exactly once, as its own function).
func funcBodies(p *Pass) []funcBody {
	var out []funcBody
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, funcBody{decl: fd, body: fd.Body})
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				out = append(out, funcBody{lit: fl, body: fl.Body})
			}
			return true
		})
	}
	return out
}

// lockCFG builds the CFG for one body with panic edges wired to Exit.
func lockCFG(p *Pass, body *ast.BlockStmt) *CFG {
	return BuildCFG(body, CFGOptions{IsExit: func(c *ast.CallExpr) bool { return isPanicCall(p.Info, c) }})
}

// --- contract directives ------------------------------------------------

// guardedRe matches a field annotation: the comment must lead with the
// phrase so prose that merely mentions a guard does not bind a contract.
var guardedRe = regexp.MustCompile(`^//\s*guarded by ([A-Za-z_][A-Za-z0-9_]*)\s*(?:[.;].*)?$`)

// collectGuards maps each annotated struct field object to the name of
// its guarding sibling. Annotations may sit on the field's line comment
// or its doc comment. A guard that names no sibling field is reported
// through report (the annotation is dead otherwise, which is worse than
// noisy).
func collectGuards(p *Pass, report func(pos token.Pos, format string, args ...any)) map[types.Object]string {
	guards := make(map[types.Object]string)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			siblings := make(map[string]bool)
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					siblings[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				guard := guardAnnotation(fld)
				if guard == "" {
					continue
				}
				if !siblings[guard] {
					report(fld.Pos(), "guarded-by annotation names %q, which is not a sibling field", guard)
					continue
				}
				for _, name := range fld.Names {
					if obj := p.Info.Defs[name]; obj != nil {
						guards[obj] = guard
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the guard name from a field's comments.
func guardAnnotation(fld *ast.Field) string {
	for _, group := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if group == nil {
			continue
		}
		for _, c := range group.List {
			if m := guardedRe.FindStringSubmatch(c.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

// lockOrderPrefix declares a package-wide acquisition order between lock
// field names: //lint:lockorder a < b [< c ...]. Multiple directives
// compose; the relation is closed transitively.
const lockOrderPrefix = "//lint:lockorder"

// lockOrder is the declared partial order: before[a][b] means a must be
// acquired before b on any path holding both.
type lockOrder struct {
	before map[string]map[string]bool
	decls  map[string]token.Pos // "a<b" → directive position, for messages
}

func (lo *lockOrder) add(a, b string, pos token.Pos) {
	if lo.before == nil {
		lo.before = make(map[string]map[string]bool)
		lo.decls = make(map[string]token.Pos)
	}
	if lo.before[a] == nil {
		lo.before[a] = make(map[string]bool)
	}
	lo.before[a][b] = true
	if _, ok := lo.decls[a+"<"+b]; !ok {
		lo.decls[a+"<"+b] = pos
	}
}

// close computes the transitive closure and reports any cycle (an order
// that demands a before a is unsatisfiable).
func (lo *lockOrder) close(report func(pos token.Pos, format string, args ...any)) {
	changed := true
	for changed {
		changed = false
		for a, bs := range lo.before {
			for b := range bs {
				for c := range lo.before[b] {
					if !lo.before[a][c] {
						lo.add(a, c, lo.decls[a+"<"+b])
						changed = true
					}
				}
			}
		}
	}
	for a, bs := range lo.before {
		if bs[a] {
			report(lo.decls[a+"<"+a], "lock order declarations form a cycle through %q", a)
			return
		}
	}
}

// collectLockOrder parses every //lint:lockorder directive in the pass.
// Malformed directives are reported and skipped.
func collectLockOrder(p *Pass, report func(pos token.Pos, format string, args ...any)) *lockOrder {
	lo := &lockOrder{}
	ident := regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)
	for _, f := range p.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, lockOrderPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, lockOrderPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				parts := strings.Split(rest, "<")
				valid := len(parts) >= 2
				names := make([]string, 0, len(parts))
				for _, part := range parts {
					name := strings.TrimSpace(part)
					if !ident.MatchString(name) {
						valid = false
						break
					}
					names = append(names, name)
				}
				if !valid {
					report(c.Pos(), "malformed directive: want //lint:lockorder <lock> < <lock> [< <lock> ...]")
					continue
				}
				for i := 0; i+1 < len(names); i++ {
					lo.add(names[i], names[i+1], c.Pos())
				}
			}
		}
	}
	lo.close(report)
	return lo
}

// holdsPrefix marks a function whose caller is contractually holding
// locks on entry: //lint:holds mu[,mu2]. Names are resolved against the
// receiver (holds "mu" on a method with receiver b means "b.mu"); a name
// containing a dot is taken verbatim.
const holdsPrefix = "//lint:holds"

// holdsAnnotation parses the directive from a function's doc comment.
// The second result reports whether a directive was present (possibly
// malformed — then names is nil and pos points at it).
func holdsAnnotation(fd *ast.FuncDecl) (names []string, pos token.Pos, found bool) {
	if fd.Doc == nil {
		return nil, token.NoPos, false
	}
	for _, c := range fd.Doc.List {
		if !strings.HasPrefix(c.Text, holdsPrefix) {
			continue
		}
		rest := strings.TrimPrefix(c.Text, holdsPrefix)
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) != 1 {
			return nil, c.Pos(), true
		}
		return strings.Split(fields[0], ","), c.Pos(), true
	}
	return nil, token.NoPos, false
}

// resolveHolds renders the entry lockset keys for a function's holds
// directive. Locks held by contract carry token.NoPos so unlock-path
// never demands the callee release them.
func resolveHolds(names []string, recvName string) lockFact {
	f := lockFact{held: make(map[string]heldLock), deferred: make(map[string]bool)}
	for _, name := range names {
		key := name
		if !strings.Contains(name, ".") && recvName != "" {
			key = recvName + "." + name
		}
		f.held[key] = heldLock{mode: lockW, pos: token.NoPos}
	}
	return f
}

// collectHolds indexes every declared function's holds contract by its
// type object, so call sites can be checked. Malformed directives are
// reported.
func collectHolds(p *Pass, report func(pos token.Pos, format string, args ...any)) map[types.Object][]string {
	holds := make(map[types.Object][]string)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			names, pos, found := holdsAnnotation(fd)
			if !found {
				continue
			}
			if names == nil {
				report(pos, "malformed directive: want %s <lock>[,<lock>...]", holdsPrefix)
				continue
			}
			if obj := p.Info.Defs[fd.Name]; obj != nil {
				holds[obj] = names
			}
		}
	}
	return holds
}

// entryFact computes a body's entry lockset from its holds directive.
func entryFact(fb funcBody) lockFact {
	if fb.decl != nil {
		if names, _, found := holdsAnnotation(fb.decl); found && names != nil {
			return resolveHolds(names, fb.recvName())
		}
	}
	return lockFact{}
}
